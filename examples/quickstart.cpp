/**
 * @file
 * Quickstart: build the Table 2 baseline system, run one workload under
 * the baseline and under full NetCrafter, and print the speedup — the
 * library's whole public API in ~40 lines.
 *
 * Usage: example_quickstart [workload] [scale]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/config/system_config.hh"
#include "src/harness/runner.hh"
#include "src/harness/table.hh"

int
main(int argc, char **argv)
{
    using namespace netcrafter;

    const std::string workload = argc > 1 ? argv[1] : "GUPS";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    // Table 2 baseline: 4 GPUs in 2 clusters, 128 GB/s intra-cluster,
    // 16 GB/s inter-cluster, no NetCrafter.
    config::SystemConfig baseline = config::baselineConfig();

    // The full NetCrafter design point: Stitching + Selective Flit
    // Pooling (32 cycles) + Trimming (16B) + Sequencing.
    config::SystemConfig crafted = config::netcrafterConfig();

    std::cout << "Simulating " << workload << " (scale " << scale
              << ") on the baseline non-uniform system...\n";
    harness::RunResult base =
        harness::runWorkload(workload, baseline, scale);

    std::cout << "Simulating " << workload << " with NetCrafter...\n\n";
    harness::RunResult nc = harness::runWorkload(workload, crafted, scale);

    harness::Table table({"metric", "baseline", "netcrafter"});
    table.addRow({"cycles", std::to_string(base.cycles),
                  std::to_string(nc.cycles)});
    table.addRow({"speedup", "1.00",
                  harness::Table::fmt(
                      static_cast<double>(base.cycles) /
                      static_cast<double>(nc.cycles))});
    table.addRow({"inter-cluster flits", std::to_string(base.interFlits),
                  std::to_string(nc.interFlits)});
    table.addRow({"inter-cluster wire bytes",
                  std::to_string(base.interWireBytes),
                  std::to_string(nc.interWireBytes)});
    table.addRow({"link utilization",
                  harness::Table::pct(base.interUtilization),
                  harness::Table::pct(nc.interUtilization)});
    table.addRow({"avg inter-cluster read latency (cyc)",
                  harness::Table::fmt(base.avgInterReadLatency, 0),
                  harness::Table::fmt(nc.avgInterReadLatency, 0)});
    table.addRow({"stitched flit fraction",
                  harness::Table::pct(base.stitchedFraction),
                  harness::Table::pct(nc.stitchedFraction)});
    table.addRow({"trimmed packets", std::to_string(base.trimmedPackets),
                  std::to_string(nc.trimmedPackets)});
    table.addRow({"PTW byte fraction",
                  harness::Table::pct(base.ptwByteFraction),
                  harness::Table::pct(nc.ptwByteFraction)});
    table.addRow({"L1 MPKI", harness::Table::fmt(base.l1Mpki),
                  harness::Table::fmt(nc.l1Mpki)});
    table.print(std::cout);

    std::cout << "\n(sim wall time: baseline "
              << harness::Table::fmt(base.wallSeconds) << "s, netcrafter "
              << harness::Table::fmt(nc.wallSeconds) << "s)\n";
    return 0;
}
