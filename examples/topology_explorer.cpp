/**
 * @file
 * Example: exploring topologies and bandwidth points beyond the paper's
 * 2x2 baseline. Builds 2-, 3- and 4-cluster systems at several
 * inter-cluster bandwidths and reports how a random-access workload
 * scales — illustrating that the SystemConfig topology knobs compose.
 */

#include <iostream>

#include "src/config/system_config.hh"
#include "src/gpu/system.hh"
#include "src/harness/table.hh"
#include "src/workloads/workload.hh"

int
main()
{
    using namespace netcrafter;

    std::cout << "Topology explorer: SPMV across cluster counts and "
                 "inter-cluster bandwidths\n"
                 "(smaller per-GPU CU count so the sweep stays quick)\n\n";

    harness::Table table({"clusters x gpus", "inter GB/s", "cycles",
                          "inter-cluster util", "NetCrafter speedup"});

    for (std::uint32_t clusters : {2u, 3u, 4u}) {
        for (double inter_bw : {16.0, 32.0}) {
            config::SystemConfig base = config::baselineConfig();
            base.numClusters = clusters;
            base.gpusPerCluster = 2;
            base.interClusterGBps = inter_bw;
            base.cusPerGpu = 16;

            config::SystemConfig crafted = config::netcrafterConfig();
            crafted.numClusters = clusters;
            crafted.gpusPerCluster = 2;
            crafted.interClusterGBps = inter_bw;
            crafted.cusPerGpu = 16;

            auto wl1 = workloads::makeWorkload("SPMV");
            gpu::MultiGpuSystem sys_base(base);
            sys_base.run(*wl1, 0.5);

            auto wl2 = workloads::makeWorkload("SPMV");
            gpu::MultiGpuSystem sys_nc(crafted);
            sys_nc.run(*wl2, 0.5);

            table.addRow(
                {std::to_string(clusters) + " x 2",
                 harness::Table::fmt(inter_bw, 0),
                 std::to_string(sys_base.cycles()),
                 harness::Table::pct(
                     sys_base.network().interClusterUtilization()),
                 harness::Table::fmt(
                     static_cast<double>(sys_base.cycles()) /
                     static_cast<double>(sys_nc.cycles()))});
        }
    }
    table.print(std::cout);
    std::cout << "\nNetCrafter's win tracks inter-cluster utilization: "
                 "the 2x2/16GB/s point is\nsaturated and gains the "
                 "most, while adding clusters (more aggregate "
                 "inter-cluster\nbandwidth for this fixed-size problem) "
                 "or widening the links drains the\nbottleneck away - "
                 "gains need the congestion the paper's scaling "
                 "argument predicts.\n";
    return 0;
}
