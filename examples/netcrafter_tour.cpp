/**
 * @file
 * Example: a guided tour of the NetCrafter mechanisms at flit level,
 * using the core components directly (no full system). Demonstrates
 * Table 1 segmentation, Stitching with ID+Size metadata, Trimming, and
 * Sequencing through the controller + un-stitcher pair — mirroring the
 * Figure 11 walkthrough.
 */

#include <iostream>

#include "src/core/controller.hh"
#include "src/sim/engine.hh"

int
main()
{
    using namespace netcrafter;
    using noc::PacketType;

    std::cout << "== 1. Segmentation (Table 1) ==\n";
    auto rsp = noc::makePacket(PacketType::ReadRsp, 0, 2, 0x1000);
    auto rsp_flits = noc::segmentPacket(rsp, 16);
    std::cout << "A read response (" << rsp->totalBytes()
              << "B) segments into " << rsp_flits.size()
              << " flits; the tail carries "
              << rsp_flits.back()->occupiedBytes << "B and wastes "
              << rsp_flits.back()->freeBytes() << "B of padding.\n\n";

    std::cout << "== 2. Stitching (Section 4.2) ==\n";
    core::StitchEngine stitcher;
    auto req = noc::makePacket(PacketType::ReadReq, 1, 3, 0x2000);
    auto req_flit = noc::segmentPacket(req, 16).front();
    std::cout << "A 12B read request fits the tail's "
              << rsp_flits.back()->freeBytes() << " free bytes: ";
    stitcher.stitch(*rsp_flits.back(), req_flit);
    std::cout << "stitched. The wire flit now carries "
              << rsp_flits.back()->usedBytes() << "/16 bytes.\n";
    auto restored = stitcher.unstitch(rsp_flits.back());
    std::cout << "Un-stitching restores " << restored.size()
              << " flits at the receiving cluster switch.\n\n";

    std::cout << "== 3. Trimming (Section 4.3) ==\n";
    core::TrimEngine trimmer(16);
    auto fat = noc::makePacket(PacketType::ReadRsp, 0, 2, 0x3000);
    fat->interCluster = true;
    fat->trimEligible = true; // the wavefront needed 8B of the line
    fat->bytesNeeded = 8;
    fat->neededOffset = 32;
    std::cout << "Before: " << fat->totalBytes() << "B ("
              << noc::flitsForBytes(fat->totalBytes(), 16)
              << " flits). ";
    trimmer.trim(*fat);
    std::cout << "After trimming to sector "
              << static_cast<int>(fat->trimSector) << ": "
              << fat->totalBytes() << "B ("
              << noc::flitsForBytes(fat->totalBytes(), 16)
              << " flits).\n\n";

    std::cout << "== 4. Sequencing (Section 4.3) ==\n";
    sim::Engine engine;
    noc::FlitBuffer out(256);
    config::NetCrafterConfig cfg;
    cfg.sequencing = config::SequencingMode::PrioritizePtw;
    core::NetCrafterController ctrl(
        engine, "demo", cfg, [](GpuId g) { return g / 2; },
        std::vector<ClusterId>{1}, out, 1, nullptr);

    // A bulky write queued ahead of a latency-critical PTW request.
    for (auto &f : noc::segmentPacket(
             noc::makePacket(PacketType::WriteReq, 0, 2, 0x4000), 16))
        ctrl.tryAccept(std::move(f));
    auto pt = noc::makePacket(PacketType::PageTableReq, 0, 3, 0x5000);
    pt->latencyCritical = true;
    ctrl.tryAccept(noc::segmentPacket(pt, 16).front());
    engine.run();

    std::cout << "Ejection order with PTW priority:";
    while (!out.empty()) {
        auto f = out.pop();
        std::cout << " " << noc::packetTypeName(f->pkt->type);
    }
    std::cout << "\n(the page-table request overtakes the write's five "
                 "flits)\n";
    return 0;
}
