/**
 * @file
 * Example: defining your own workload against the public API.
 *
 * We model a halo-exchange stencil: each CTA streams over its own tile
 * (local after LASP chunk placement) and reads a halo ring owned by the
 * neighbouring GPU — a classic pattern that stresses the inter-cluster
 * links at tile boundaries. The example runs it on the baseline and
 * under NetCrafter and prints the outcome.
 */

#include <iostream>

#include "src/config/system_config.hh"
#include "src/gpu/system.hh"
#include "src/harness/table.hh"
#include "src/sched/lasp.hh"
#include "src/workloads/workload.hh"

namespace {

using namespace netcrafter;

/** One stencil sweep: mostly-local tile reads plus remote halo reads. */
class StencilKernel : public workloads::Kernel
{
  public:
    StencilKernel(Addr tile_base, Addr halo_base,
                  std::uint64_t tile_elems, std::uint64_t halo_elems,
                  workloads::KernelInfo shape)
        : tileBase_(tile_base), haloBase_(halo_base),
          tileElems_(tile_elems), haloElems_(halo_elems), shape_(shape)
    {}

    workloads::KernelInfo info() const override { return shape_; }

    bool
    generate(std::uint32_t cta, std::uint32_t wave, std::uint32_t idx,
             Pcg32 &rng, workloads::Instruction &out) const override
    {
        if (cta >= shape_.numCtas || wave >= shape_.wavesPerCta ||
            idx >= shape_.instructionsPerWave)
            return false;

        out = workloads::Instruction();
        out.elemBytes = 4;
        out.computeDelay = 6;

        if (rng.chance(0.75)) {
            // Interior: stream through this CTA's tile chunk.
            const std::uint64_t chunk = tileElems_ / shape_.numCtas;
            const std::uint64_t pos =
                (static_cast<std::uint64_t>(wave) *
                     shape_.instructionsPerWave +
                 idx) *
                kWavefrontSize % chunk;
            const Addr base =
                tileBase_ + (cta * chunk + pos) * out.elemBytes;
            for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane)
                out.addrs[lane] = base + lane * out.elemBytes;
        } else {
            // Halo: strided reads of the neighbour's boundary, a few
            // bytes per line — exactly what Trimming targets.
            const std::uint64_t start = rng.next64() % haloElems_;
            for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane) {
                const std::uint64_t e =
                    (start + lane * 64) % haloElems_;
                out.addrs[lane] = haloBase_ + e * out.elemBytes;
            }
        }
        return true;
    }

  private:
    Addr tileBase_;
    Addr haloBase_;
    std::uint64_t tileElems_;
    std::uint64_t haloElems_;
    workloads::KernelInfo shape_;
};

/** The workload: allocates the grid, places it, builds the kernel. */
class StencilWorkload : public workloads::Workload
{
  public:
    std::string name() const override { return "STENCIL"; }
    std::string pattern() const override { return "Adjacent+Halo"; }

    void
    build(workloads::BuildContext &ctx) override
    {
        const std::uint64_t tile_bytes = 32ull << 20;
        const std::uint64_t halo_bytes = 16ull << 20;
        const Addr tile = ctx.alloc(tile_bytes);
        const Addr halo = ctx.alloc(halo_bytes);

        // LASP: tiles chunked with their CTAs; the halo ring is shared
        // irregularly, so interleave it.
        sched::placeBuffer(*ctx.placement, tile, tile_bytes,
                           sched::BufferPattern::Chunked, ctx.numGpus);
        sched::placeBuffer(*ctx.placement, halo, halo_bytes,
                           sched::BufferPattern::Interleaved,
                           ctx.numGpus);

        workloads::KernelInfo shape;
        shape.numCtas = 128;
        shape.wavesPerCta = 2;
        shape.instructionsPerWave = static_cast<std::uint32_t>(
            10 * ctx.scale < 1 ? 1 : 10 * ctx.scale);
        kernels_.clear();
        kernels_.push_back(std::make_unique<StencilKernel>(
            tile, halo, tile_bytes / 4, halo_bytes / 4, shape));
    }

    const std::vector<std::unique_ptr<workloads::Kernel>> &
    kernels() const override
    {
        return kernels_;
    }

  private:
    std::vector<std::unique_ptr<workloads::Kernel>> kernels_;
};

} // namespace

int
main()
{
    using namespace netcrafter;

    std::cout << "Custom workload example: halo-exchange stencil\n\n";

    auto run = [](const config::SystemConfig &cfg) {
        StencilWorkload wl;
        gpu::MultiGpuSystem sys(cfg);
        sys.run(wl);
        return std::tuple<Tick, std::uint64_t, double>{
            sys.cycles(), sys.network().interClusterFlits(),
            sys.interClusterReadLatency().mean()};
    };

    auto [base_cycles, base_flits, base_lat] =
        run(config::baselineConfig());
    auto [nc_cycles, nc_flits, nc_lat] = run(config::netcrafterConfig());

    harness::Table table({"metric", "baseline", "netcrafter"});
    table.addRow({"cycles", std::to_string(base_cycles),
                  std::to_string(nc_cycles)});
    table.addRow({"speedup", "1.00",
                  harness::Table::fmt(double(base_cycles) / nc_cycles)});
    table.addRow({"inter-cluster flits", std::to_string(base_flits),
                  std::to_string(nc_flits)});
    table.addRow({"halo read latency (cyc)",
                  harness::Table::fmt(base_lat, 0),
                  harness::Table::fmt(nc_lat, 0)});
    table.print(std::cout);
    return 0;
}
