# Empty dependencies file for fig20_bytes_reduction.
# This may be replaced when dependencies are built.
