file(REMOVE_RECURSE
  "CMakeFiles/fig20_bytes_reduction.dir/fig20_bytes_reduction.cc.o"
  "CMakeFiles/fig20_bytes_reduction.dir/fig20_bytes_reduction.cc.o.d"
  "fig20_bytes_reduction"
  "fig20_bytes_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_bytes_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
