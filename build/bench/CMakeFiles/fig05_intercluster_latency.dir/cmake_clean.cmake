file(REMOVE_RECURSE
  "CMakeFiles/fig05_intercluster_latency.dir/fig05_intercluster_latency.cc.o"
  "CMakeFiles/fig05_intercluster_latency.dir/fig05_intercluster_latency.cc.o.d"
  "fig05_intercluster_latency"
  "fig05_intercluster_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_intercluster_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
