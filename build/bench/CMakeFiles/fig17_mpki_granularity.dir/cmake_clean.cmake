file(REMOVE_RECURSE
  "CMakeFiles/fig17_mpki_granularity.dir/fig17_mpki_granularity.cc.o"
  "CMakeFiles/fig17_mpki_granularity.dir/fig17_mpki_granularity.cc.o.d"
  "fig17_mpki_granularity"
  "fig17_mpki_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_mpki_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
