# Empty compiler generated dependencies file for fig17_mpki_granularity.
# This may be replaced when dependencies are built.
