file(REMOVE_RECURSE
  "CMakeFiles/fig21_flit_size.dir/fig21_flit_size.cc.o"
  "CMakeFiles/fig21_flit_size.dir/fig21_flit_size.cc.o.d"
  "fig21_flit_size"
  "fig21_flit_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_flit_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
