# Empty compiler generated dependencies file for fig21_flit_size.
# This may be replaced when dependencies are built.
