# Empty dependencies file for fig22_bandwidth_sweep.
# This may be replaced when dependencies are built.
