# Empty compiler generated dependencies file for fig04_network_utilization.
# This may be replaced when dependencies are built.
