# Empty compiler generated dependencies file for fig08_ptw_priority.
# This may be replaced when dependencies are built.
