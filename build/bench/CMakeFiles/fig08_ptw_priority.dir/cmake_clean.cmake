file(REMOVE_RECURSE
  "CMakeFiles/fig08_ptw_priority.dir/fig08_ptw_priority.cc.o"
  "CMakeFiles/fig08_ptw_priority.dir/fig08_ptw_priority.cc.o.d"
  "fig08_ptw_priority"
  "fig08_ptw_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ptw_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
