# Empty compiler generated dependencies file for fig19_selective_pooling.
# This may be replaced when dependencies are built.
