file(REMOVE_RECURSE
  "CMakeFiles/fig19_selective_pooling.dir/fig19_selective_pooling.cc.o"
  "CMakeFiles/fig19_selective_pooling.dir/fig19_selective_pooling.cc.o.d"
  "fig19_selective_pooling"
  "fig19_selective_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_selective_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
