# Empty dependencies file for fig18_pooling_sweep.
# This may be replaced when dependencies are built.
