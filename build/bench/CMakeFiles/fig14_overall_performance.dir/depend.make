# Empty dependencies file for fig14_overall_performance.
# This may be replaced when dependencies are built.
