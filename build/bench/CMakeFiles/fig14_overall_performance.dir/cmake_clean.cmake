file(REMOVE_RECURSE
  "CMakeFiles/fig14_overall_performance.dir/fig14_overall_performance.cc.o"
  "CMakeFiles/fig14_overall_performance.dir/fig14_overall_performance.cc.o.d"
  "fig14_overall_performance"
  "fig14_overall_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overall_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
