file(REMOVE_RECURSE
  "CMakeFiles/fig15_netcrafter_latency.dir/fig15_netcrafter_latency.cc.o"
  "CMakeFiles/fig15_netcrafter_latency.dir/fig15_netcrafter_latency.cc.o.d"
  "fig15_netcrafter_latency"
  "fig15_netcrafter_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_netcrafter_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
