# Empty dependencies file for fig15_netcrafter_latency.
# This may be replaced when dependencies are built.
