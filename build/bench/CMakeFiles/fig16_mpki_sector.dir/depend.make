# Empty dependencies file for fig16_mpki_sector.
# This may be replaced when dependencies are built.
