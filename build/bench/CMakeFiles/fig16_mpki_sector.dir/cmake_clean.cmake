file(REMOVE_RECURSE
  "CMakeFiles/fig16_mpki_sector.dir/fig16_mpki_sector.cc.o"
  "CMakeFiles/fig16_mpki_sector.dir/fig16_mpki_sector.cc.o.d"
  "fig16_mpki_sector"
  "fig16_mpki_sector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_mpki_sector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
