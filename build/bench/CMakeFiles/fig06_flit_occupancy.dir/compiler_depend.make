# Empty compiler generated dependencies file for fig06_flit_occupancy.
# This may be replaced when dependencies are built.
