file(REMOVE_RECURSE
  "CMakeFiles/fig06_flit_occupancy.dir/fig06_flit_occupancy.cc.o"
  "CMakeFiles/fig06_flit_occupancy.dir/fig06_flit_occupancy.cc.o.d"
  "fig06_flit_occupancy"
  "fig06_flit_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_flit_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
