file(REMOVE_RECURSE
  "CMakeFiles/fig03_ideal_vs_baseline.dir/fig03_ideal_vs_baseline.cc.o"
  "CMakeFiles/fig03_ideal_vs_baseline.dir/fig03_ideal_vs_baseline.cc.o.d"
  "fig03_ideal_vs_baseline"
  "fig03_ideal_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ideal_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
