# Empty dependencies file for fig12_stitch_rate.
# This may be replaced when dependencies are built.
