# Empty compiler generated dependencies file for table1_flit_census.
# This may be replaced when dependencies are built.
