# Empty compiler generated dependencies file for fig09_traffic_ratio.
# This may be replaced when dependencies are built.
