file(REMOVE_RECURSE
  "CMakeFiles/example_netcrafter_tour.dir/netcrafter_tour.cpp.o"
  "CMakeFiles/example_netcrafter_tour.dir/netcrafter_tour.cpp.o.d"
  "example_netcrafter_tour"
  "example_netcrafter_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netcrafter_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
