# Empty compiler generated dependencies file for example_netcrafter_tour.
# This may be replaced when dependencies are built.
