# Empty dependencies file for example_topology_explorer.
# This may be replaced when dependencies are built.
