# Empty dependencies file for netcrafter.
# This may be replaced when dependencies are built.
