file(REMOVE_RECURSE
  "libnetcrafter.a"
)
