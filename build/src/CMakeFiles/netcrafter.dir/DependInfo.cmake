
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/config_io.cc" "src/CMakeFiles/netcrafter.dir/config/config_io.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/config/config_io.cc.o.d"
  "/root/repo/src/config/system_config.cc" "src/CMakeFiles/netcrafter.dir/config/system_config.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/config/system_config.cc.o.d"
  "/root/repo/src/core/cluster_queue.cc" "src/CMakeFiles/netcrafter.dir/core/cluster_queue.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/core/cluster_queue.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/netcrafter.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/core/controller.cc.o.d"
  "/root/repo/src/core/stitch_engine.cc" "src/CMakeFiles/netcrafter.dir/core/stitch_engine.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/core/stitch_engine.cc.o.d"
  "/root/repo/src/gpu/coalescer.cc" "src/CMakeFiles/netcrafter.dir/gpu/coalescer.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/gpu/coalescer.cc.o.d"
  "/root/repo/src/gpu/compute_unit.cc" "src/CMakeFiles/netcrafter.dir/gpu/compute_unit.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/gpu/compute_unit.cc.o.d"
  "/root/repo/src/gpu/system.cc" "src/CMakeFiles/netcrafter.dir/gpu/system.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/gpu/system.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/netcrafter.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/netcrafter.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/harness/table.cc.o.d"
  "/root/repo/src/mem/l1_cache.cc" "src/CMakeFiles/netcrafter.dir/mem/l1_cache.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/mem/l1_cache.cc.o.d"
  "/root/repo/src/mem/l2_cache.cc" "src/CMakeFiles/netcrafter.dir/mem/l2_cache.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/mem/l2_cache.cc.o.d"
  "/root/repo/src/mem/tag_array.cc" "src/CMakeFiles/netcrafter.dir/mem/tag_array.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/mem/tag_array.cc.o.d"
  "/root/repo/src/noc/flit.cc" "src/CMakeFiles/netcrafter.dir/noc/flit.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/flit.cc.o.d"
  "/root/repo/src/noc/flit_trace.cc" "src/CMakeFiles/netcrafter.dir/noc/flit_trace.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/flit_trace.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/netcrafter.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/link.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/netcrafter.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/CMakeFiles/netcrafter.dir/noc/packet.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/packet.cc.o.d"
  "/root/repo/src/noc/rdma.cc" "src/CMakeFiles/netcrafter.dir/noc/rdma.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/rdma.cc.o.d"
  "/root/repo/src/noc/switch.cc" "src/CMakeFiles/netcrafter.dir/noc/switch.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/switch.cc.o.d"
  "/root/repo/src/noc/traffic_monitor.cc" "src/CMakeFiles/netcrafter.dir/noc/traffic_monitor.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/noc/traffic_monitor.cc.o.d"
  "/root/repo/src/sched/lasp.cc" "src/CMakeFiles/netcrafter.dir/sched/lasp.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/sched/lasp.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/netcrafter.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/netcrafter.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/sim/logging.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/netcrafter.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/stats/stats.cc.o.d"
  "/root/repo/src/vm/gmmu.cc" "src/CMakeFiles/netcrafter.dir/vm/gmmu.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/vm/gmmu.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/netcrafter.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/vm/page_table.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/CMakeFiles/netcrafter.dir/vm/tlb.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/vm/tlb.cc.o.d"
  "/root/repo/src/workloads/apps.cc" "src/CMakeFiles/netcrafter.dir/workloads/apps.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/workloads/apps.cc.o.d"
  "/root/repo/src/workloads/mix_kernel.cc" "src/CMakeFiles/netcrafter.dir/workloads/mix_kernel.cc.o" "gcc" "src/CMakeFiles/netcrafter.dir/workloads/mix_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
