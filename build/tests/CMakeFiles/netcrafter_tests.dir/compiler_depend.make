# Empty compiler generated dependencies file for netcrafter_tests.
# This may be replaced when dependencies are built.
