
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/config/config_io_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/config/config_io_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/config/config_io_test.cc.o.d"
  "/root/repo/tests/config/config_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/config/config_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/config/config_test.cc.o.d"
  "/root/repo/tests/core/cluster_queue_property_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/core/cluster_queue_property_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/core/cluster_queue_property_test.cc.o.d"
  "/root/repo/tests/core/cluster_queue_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/core/cluster_queue_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/core/cluster_queue_test.cc.o.d"
  "/root/repo/tests/core/controller_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/core/controller_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/core/controller_test.cc.o.d"
  "/root/repo/tests/core/stitch_engine_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/core/stitch_engine_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/core/stitch_engine_test.cc.o.d"
  "/root/repo/tests/core/stitch_stream_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/core/stitch_stream_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/core/stitch_stream_test.cc.o.d"
  "/root/repo/tests/core/trim_engine_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/core/trim_engine_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/core/trim_engine_test.cc.o.d"
  "/root/repo/tests/gpu/coalescer_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/gpu/coalescer_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/gpu/coalescer_test.cc.o.d"
  "/root/repo/tests/gpu/compute_unit_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/gpu/compute_unit_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/gpu/compute_unit_test.cc.o.d"
  "/root/repo/tests/gpu/system_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/gpu/system_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/gpu/system_test.cc.o.d"
  "/root/repo/tests/harness/harness_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/harness/harness_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/harness/harness_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/network_fuzz_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/integration/network_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/integration/network_fuzz_test.cc.o.d"
  "/root/repo/tests/mem/dram_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/mem/dram_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/mem/dram_test.cc.o.d"
  "/root/repo/tests/mem/l1_cache_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/mem/l1_cache_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/mem/l1_cache_test.cc.o.d"
  "/root/repo/tests/mem/l1_sector_sweep_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/mem/l1_sector_sweep_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/mem/l1_sector_sweep_test.cc.o.d"
  "/root/repo/tests/mem/l2_cache_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/mem/l2_cache_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/mem/l2_cache_test.cc.o.d"
  "/root/repo/tests/mem/mshr_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/mem/mshr_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/mem/mshr_test.cc.o.d"
  "/root/repo/tests/mem/tag_array_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/mem/tag_array_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/mem/tag_array_test.cc.o.d"
  "/root/repo/tests/noc/flit_buffer_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/flit_buffer_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/flit_buffer_test.cc.o.d"
  "/root/repo/tests/noc/flit_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/flit_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/flit_test.cc.o.d"
  "/root/repo/tests/noc/flit_trace_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/flit_trace_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/flit_trace_test.cc.o.d"
  "/root/repo/tests/noc/link_bandwidth_property_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/link_bandwidth_property_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/link_bandwidth_property_test.cc.o.d"
  "/root/repo/tests/noc/link_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/link_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/link_test.cc.o.d"
  "/root/repo/tests/noc/network_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/network_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/network_test.cc.o.d"
  "/root/repo/tests/noc/packet_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/packet_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/packet_test.cc.o.d"
  "/root/repo/tests/noc/rdma_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/rdma_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/rdma_test.cc.o.d"
  "/root/repo/tests/noc/switch_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/switch_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/switch_test.cc.o.d"
  "/root/repo/tests/noc/traffic_monitor_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/noc/traffic_monitor_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/noc/traffic_monitor_test.cc.o.d"
  "/root/repo/tests/sched/lasp_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/sched/lasp_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/sched/lasp_test.cc.o.d"
  "/root/repo/tests/sim/engine_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/sim/engine_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/sim/engine_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_property_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/sim/event_queue_property_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/sim/event_queue_property_test.cc.o.d"
  "/root/repo/tests/sim/logging_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/sim/logging_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/sim/logging_test.cc.o.d"
  "/root/repo/tests/stats/stats_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/stats/stats_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/stats/stats_test.cc.o.d"
  "/root/repo/tests/vm/gmmu_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/vm/gmmu_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/vm/gmmu_test.cc.o.d"
  "/root/repo/tests/vm/page_table_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/vm/page_table_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/vm/page_table_test.cc.o.d"
  "/root/repo/tests/vm/tlb_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/vm/tlb_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/vm/tlb_test.cc.o.d"
  "/root/repo/tests/workloads/workload_test.cc" "tests/CMakeFiles/netcrafter_tests.dir/workloads/workload_test.cc.o" "gcc" "tests/CMakeFiles/netcrafter_tests.dir/workloads/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netcrafter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
