/**
 * @file
 * Relaxed-sync accuracy auditor: runs a figure-style workload grid
 * under Strict and Relaxed synchronization (4 shards, one thread per
 * shard) and reports the relative error on every headline figure
 * metric, the observed-skew extrema against the bound, the late-slot
 * displacement census, and the trace-level FIFO / conservation audit
 * (obs::auditSkew over the merged stream).
 *
 * Exit status is the gate CI consumes: non-zero when any per-figure
 * relative error exceeds the tolerance (default 2%), when packet/byte
 * conservation or per-channel FIFO order is violated, when any run's
 * observed skew exceeds the bound, or when the skew-bound-0 run is not
 * bit-identical to Strict. The per-point table goes to stderr and a
 * machine-readable JSON summary to --out.
 *
 * Usage:
 *   audit-skew [--quick] [--scale S] [--tolerance PCT]
 *              [--skew-bound TICKS] [--out FILE]
 *
 *   --quick            fig03/fig14-style subset: base + full configs
 *   --scale S          problem-size multiplier (default 1.0)
 *   --tolerance P      max relative error, percent (default 2.0)
 *   --skew-bound S     relaxed skew bound in ticks (default 16, the
 *                      interLinkLatency — the largest bound measured
 *                      within the 2% budget; error grows steeply past
 *                      it, see BENCH_relaxed.json's accuracy column)
 *   --out FILE         JSON summary (default VALIDATE_relaxed.json)
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "src/config/system_config.hh"
#include "src/exp/export.hh"
#include "src/gpu/system.hh"
#include "src/harness/runner.hh"
#include "src/obs/skew_auditor.hh"
#include "src/obs/trace_buffer.hh"
#include "src/workloads/workload.hh"

namespace {

using netcrafter::Tick;
using netcrafter::config::SystemConfig;
using netcrafter::harness::RunResult;

/** One compared metric: name, strict value, relaxed value. */
struct Metric
{
    const char *name;
    double strict;
    double relaxed;

    double
    relError() const
    {
        const double denom = std::max(std::fabs(strict), 1e-9);
        return std::fabs(relaxed - strict) / denom;
    }
};

/**
 * The headline per-figure metrics, the same list validate-fidelity
 * gates on: execution time (fig 14/22), the inter-cluster census
 * (figs 4/6/9/20), remote-read latency (figs 5/15), and the L1
 * picture (figs 16/17). Count metrics that relaxation preserves
 * exactly (instructions, reads, walks) are compared too — a non-zero
 * delta there is a conservation bug, not an approximation.
 */
std::vector<Metric>
metricsOf(const RunResult &s, const RunResult &r)
{
    auto d = [](std::uint64_t v) { return static_cast<double>(v); };
    return {
        {"cycles", d(s.cycles), d(r.cycles)},
        {"instructions", d(s.instructions), d(r.instructions)},
        {"l1ReadMisses", d(s.l1ReadMisses), d(r.l1ReadMisses)},
        {"remoteReads", d(s.remoteReads), d(r.remoteReads)},
        {"localReads", d(s.localReads), d(r.localReads)},
        {"pageWalks", d(s.pageWalks), d(r.pageWalks)},
        {"interUsefulBytes", d(s.interUsefulBytes),
         d(r.interUsefulBytes)},
        {"interWireBytes", d(s.interWireBytes), d(r.interWireBytes)},
        {"avgInterReadLatency", s.avgInterReadLatency,
         r.avgInterReadLatency},
    };
}

/**
 * Run @p app under @p cfg with link-level tracing held in memory and
 * fold the skew audit over the merged stream.
 */
netcrafter::obs::SkewAuditReport
tracedAudit(const std::string &app, const SystemConfig &cfg,
            double scale, unsigned shards,
            const netcrafter::sim::ExecPolicy &exec,
            const netcrafter::sim::SyncPolicy &sync)
{
    using namespace netcrafter;
    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Links;
    auto workload = workloads::makeWorkload(app);
    gpu::MultiGpuSystem system(cfg, shards, trace, exec,
                               flow::Fidelity::Cycle, sync);
    system.run(*workload, scale * harness::envScale());
    return obs::auditSkew(system.traceSink()->merged());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netcrafter;

    std::string out_path = "VALIDATE_relaxed.json";
    bool quick = false;
    double scale = 1.0;
    double tolerance_pct = 2.0;
    Tick skew_bound = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::strtod(argv[++i], nullptr);
        } else if (arg == "--tolerance" && i + 1 < argc) {
            tolerance_pct = std::strtod(argv[++i], nullptr);
        } else if (arg == "--skew-bound" && i + 1 < argc) {
            skew_bound = config::parseSkewBoundEnv(argv[++i]);
        } else {
            std::cerr << "usage: audit-skew [--quick] [--scale S] "
                         "[--tolerance PCT] [--skew-bound TICKS] "
                         "[--out FILE]\n";
            return 2;
        }
    }

    sim::setDefaultLookaheadMode(sim::LookaheadMode::Adaptive);

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }
    // One GPU per cluster so 4 shards partition the system fully —
    // relaxation only exists where shards exist.
    for (auto &[name, cfg] : configs) {
        cfg.numClusters = 4;
        cfg.gpusPerCluster = 1;
    }

    const unsigned shards = 4;
    const obs::TraceOptions no_trace;
    const sim::ExecPolicy t4{0, false, 1};
    const sim::SyncPolicy strict{};
    const sim::SyncPolicy relaxed{sim::SyncMode::Relaxed, skew_bound};
    const double tol = tolerance_pct / 100.0;

    struct PointRow
    {
        std::string config;
        std::string workload;
        double worstErr = 0;
        std::string worstMetric;
        bool conserved = true;
        bool skewOk = true;
        std::uint64_t maxSkew = 0;
        double meanSkew = 0;
        std::uint64_t lateArrivals = 0;
        std::uint64_t lateCredits = 0;
        std::uint64_t lateDisplacement = 0;
        std::uint64_t maxLateDisplacement = 0;
    };
    std::vector<PointRow> rows;
    bool errors_ok = true;
    bool conservation_ok = true;
    bool skew_ok = true;
    double worst_err = 0;
    std::string worst_at;
    std::uint64_t max_skew_all = 0;
    double mean_skew_sum = 0;
    std::uint64_t mean_skew_points = 0;
    std::uint64_t late_total = 0;
    std::uint64_t late_displacement_total = 0;
    std::uint64_t max_late_displacement = 0;

    for (const auto &[cfg_name, cfg] : configs) {
        for (const auto &app : bench::apps()) {
            const RunResult s = harness::runWorkload(
                app, cfg, scale, shards, no_trace, t4,
                flow::Fidelity::Cycle, strict);
            const RunResult r = harness::runWorkload(
                app, cfg, scale, shards, no_trace, t4,
                flow::Fidelity::Cycle, relaxed);

            PointRow row;
            row.config = cfg_name;
            row.workload = app;
            for (const Metric &m : metricsOf(s, r)) {
                const double err = m.relError();
                if (err > row.worstErr) {
                    row.worstErr = err;
                    row.worstMetric = m.name;
                }
            }
            // Conservation is exact, not budgeted: instruction counts
            // must match Strict, and at cycle fidelity every
            // transferred inter-cluster flit must be delivered at a
            // wire head (within each run).
            row.conserved = r.instructions == s.instructions &&
                            r.wireFlitsDelivered == r.interFlits &&
                            s.wireFlitsDelivered == s.interFlits;
            row.skewOk = r.maxObservedSkew <=
                         static_cast<std::uint64_t>(skew_bound);
            row.maxSkew = r.maxObservedSkew;
            row.meanSkew = r.meanObservedSkew;
            row.lateArrivals = r.lateArrivals;
            row.lateCredits = r.lateCredits;
            row.lateDisplacement = r.lateDisplacementTicks;
            row.maxLateDisplacement = r.maxLateDisplacement;

            if (row.worstErr > tol)
                errors_ok = false;
            if (!row.conserved)
                conservation_ok = false;
            if (!row.skewOk)
                skew_ok = false;
            if (row.worstErr > worst_err) {
                worst_err = row.worstErr;
                worst_at =
                    cfg_name + "/" + app + " " + row.worstMetric;
            }
            max_skew_all = std::max(max_skew_all, row.maxSkew);
            if (row.meanSkew > 0) {
                mean_skew_sum += row.meanSkew;
                ++mean_skew_points;
            }
            late_total += row.lateArrivals;
            late_displacement_total += row.lateDisplacement;
            max_late_displacement = std::max(max_late_displacement,
                                             row.maxLateDisplacement);

            std::cerr << cfg_name << "/" << app << ": worst "
                      << row.worstMetric << " "
                      << 100 * row.worstErr << "%, skew "
                      << row.maxSkew << "/" << skew_bound << ", "
                      << row.lateArrivals << " late arrivals ("
                      << (row.conserved ? "conserved"
                                        : "NOT CONSERVED")
                      << ")\n";
            rows.push_back(std::move(row));
        }
    }

    // Trace-level audit on one point per config: per-channel FIFO
    // order and depart/arrive conservation must hold under both modes,
    // and Relaxed at skew bound 0 must reproduce the Strict stream
    // bit-for-bit (same digest, same record count).
    bool fifo_ok = true;
    bool zero_bound_identical = true;
    struct AuditRow
    {
        std::string config;
        obs::SkewAuditReport strict, relaxed;
        std::uint64_t strictDigest = 0, zeroDigest = 0;
    };
    std::vector<AuditRow> audits;
    for (const auto &[cfg_name, cfg] : configs) {
        const std::string app = bench::apps().front();
        AuditRow a;
        a.config = cfg_name;
        a.strict = tracedAudit(app, cfg, scale, shards, t4, strict);
        a.relaxed = tracedAudit(app, cfg, scale, shards, t4, relaxed);
        const obs::SkewAuditReport zero = tracedAudit(
            app, cfg, scale, shards, t4,
            sim::SyncPolicy{sim::SyncMode::Relaxed, 0});
        a.strictDigest = a.strict.digest;
        a.zeroDigest = zero.digest;
        if (!a.strict.clean() || !a.relaxed.clean()) {
            std::cerr << "audit-skew: FIFO/conservation audit FAILED "
                         "at "
                      << cfg_name << "/" << app << " ("
                      << a.relaxed.reorderedArrivals << " reorders, "
                      << a.relaxed.orphanArrivals << " orphans, "
                      << a.relaxed.undeliveredDeparts
                      << " undelivered)\n";
            fifo_ok = false;
        }
        if (zero.digest != a.strict.digest ||
            zero.records != a.strict.records) {
            std::cerr << "audit-skew: skew bound 0 NOT bit-identical "
                         "to strict at "
                      << cfg_name << "/" << app << "\n";
            zero_bound_identical = false;
        }
        std::cerr << cfg_name << " trace audit: "
                  << a.relaxed.wireArrives << " arrivals, "
                  << a.relaxed.reorderedArrivals << " reorders, S=0 "
                  << (zero.digest == a.strict.digest ? "identical"
                                                     : "DIVERGED")
                  << "\n";
        audits.push_back(std::move(a));
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"audit_skew\",\n";
    os << "  \"sync_mode\": \"relaxed\",\n";
    os << "  \"skew_bound\": "
       << static_cast<std::uint64_t>(skew_bound) << ",\n";
    os << "  \"shards\": " << shards << ",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"tolerance_pct\": " << tolerance_pct << ",\n";
    os << "  \"errors_within_tolerance\": "
       << (errors_ok ? "true" : "false") << ",\n";
    os << "  \"conservation_exact\": "
       << (conservation_ok ? "true" : "false") << ",\n";
    os << "  \"skew_within_bound\": " << (skew_ok ? "true" : "false")
       << ",\n";
    os << "  \"fifo_order_preserved\": "
       << (fifo_ok ? "true" : "false") << ",\n";
    os << "  \"zero_bound_identical_to_strict\": "
       << (zero_bound_identical ? "true" : "false") << ",\n";
    os << "  \"worst_error_pct\": " << 100 * worst_err << ",\n";
    os << "  \"worst_error_at\": \"" << exp::jsonEscape(worst_at)
       << "\",\n";
    os << "  \"max_observed_skew\": " << max_skew_all << ",\n";
    os << "  \"mean_observed_skew\": "
       << (mean_skew_points > 0
               ? mean_skew_sum / static_cast<double>(mean_skew_points)
               : 0.0)
       << ",\n";
    os << "  \"late_arrivals\": " << late_total << ",\n";
    os << "  \"late_displacement_ticks\": " << late_displacement_total
       << ",\n";
    os << "  \"max_late_displacement\": " << max_late_displacement
       << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PointRow &r = rows[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"config\": \"" << exp::jsonEscape(r.config) << "\", "
           << "\"workload\": \"" << exp::jsonEscape(r.workload)
           << "\", "
           << "\"worst_error_pct\": " << 100 * r.worstErr << ", "
           << "\"worst_metric\": \"" << exp::jsonEscape(r.worstMetric)
           << "\", "
           << "\"conserved\": " << (r.conserved ? "true" : "false")
           << ", "
           << "\"max_observed_skew\": " << r.maxSkew << ", "
           << "\"mean_observed_skew\": " << r.meanSkew << ", "
           << "\"skew_within_bound\": "
           << (r.skewOk ? "true" : "false") << ", "
           << "\"late_arrivals\": " << r.lateArrivals << ", "
           << "\"late_credits\": " << r.lateCredits << ", "
           << "\"late_displacement_ticks\": " << r.lateDisplacement
           << ", "
           << "\"max_late_displacement\": " << r.maxLateDisplacement
           << "}";
    }
    os << "\n  ],\n";
    os << "  \"trace_audits\": [";
    for (std::size_t i = 0; i < audits.size(); ++i) {
        const AuditRow &a = audits[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"config\": \"" << exp::jsonEscape(a.config) << "\", "
           << "\"strict_records\": " << a.strict.records << ", "
           << "\"relaxed_records\": " << a.relaxed.records << ", "
           << "\"wire_arrives\": " << a.relaxed.wireArrives << ", "
           << "\"reordered_arrivals\": "
           << a.relaxed.reorderedArrivals << ", "
           << "\"orphan_arrivals\": " << a.relaxed.orphanArrivals
           << ", "
           << "\"undelivered_departs\": "
           << a.relaxed.undeliveredDeparts << ", "
           << "\"max_wire_latency\": " << a.relaxed.maxWireLatency
           << ", "
           << "\"zero_bound_digest_match\": "
           << (a.zeroDigest == a.strictDigest ? "true" : "false")
           << "}";
    }
    os << "\n  ]\n}\n";

    const bool ok = errors_ok && conservation_ok && skew_ok &&
                    fifo_ok && zero_bound_identical;
    std::cout << "audit-skew (S=" << skew_bound
              << "): " << (ok ? "PASS" : "FAIL") << " — worst error "
              << 100 * worst_err << "% at " << worst_at
              << ", max skew " << max_skew_all << "/" << skew_bound
              << ", " << late_total << " late arrivals"
              << (conservation_ok ? ", conservation exact"
                                  : ", CONSERVATION VIOLATED")
              << (fifo_ok ? ", FIFO preserved" : ", FIFO VIOLATED")
              << (zero_bound_identical ? ", S=0 bit-identical"
                                       : ", S=0 DIVERGED")
              << " (JSON: " << out_path << ")\n";
    return ok ? 0 : 1;
}
