/**
 * @file
 * Hybrid-fidelity validation harness: runs a figure-style workload grid
 * at cycle fidelity and at a comparison fidelity (default hybrid) and
 * reports the relative error on every headline figure metric, plus the
 * exact packet/byte conservation check at the fidelity boundary.
 *
 * Exit status is the gate CI consumes: non-zero when any per-figure
 * relative error exceeds the tolerance (default 2%) or when flow-lane
 * conservation is violated. The per-point table goes to stderr and a
 * machine-readable JSON summary to --out.
 *
 * Usage:
 *   validate-fidelity [--fidelity flow|hybrid] [--quick] [--scale S]
 *                     [--tolerance PCT] [--out FILE]
 *
 *   --fidelity F   comparison fidelity (default hybrid)
 *   --quick        fig03/fig14-style subset: base + full configs only
 *   --scale S      problem-size multiplier (default 1.0)
 *   --tolerance P  max relative error, percent (default 2.0)
 *   --out FILE     JSON summary (default VALIDATE_fidelity.json)
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "src/config/system_config.hh"
#include "src/exp/export.hh"
#include "src/flow/fidelity.hh"
#include "src/harness/runner.hh"

namespace {

using netcrafter::config::SystemConfig;
using netcrafter::harness::RunResult;

/** One compared metric: name, cycle value, comparison value. */
struct Metric
{
    const char *name;
    double cycle;
    double other;

    double
    relError() const
    {
        const double denom = std::max(std::fabs(cycle), 1e-9);
        return std::fabs(other - cycle) / denom;
    }
};

/**
 * The headline per-figure metrics: execution time (fig 14/22), the
 * inter-cluster census (figs 4/6/9/20), remote-read latency (figs
 * 5/15), and the L1 picture (figs 16/17). Count-style metrics that
 * the fused path preserves exactly (instructions, reads, walks) are
 * compared too — they catch modelling bugs loudly.
 */
std::vector<Metric>
metricsOf(const RunResult &c, const RunResult &h)
{
    auto d = [](std::uint64_t v) { return static_cast<double>(v); };
    return {
        {"cycles", d(c.cycles), d(h.cycles)},
        {"instructions", d(c.instructions), d(h.instructions)},
        {"l1ReadMisses", d(c.l1ReadMisses), d(h.l1ReadMisses)},
        {"remoteReads", d(c.remoteReads), d(h.remoteReads)},
        {"localReads", d(c.localReads), d(h.localReads)},
        {"pageWalks", d(c.pageWalks), d(h.pageWalks)},
        {"interUsefulBytes", d(c.interUsefulBytes),
         d(h.interUsefulBytes)},
        {"interWireBytes", d(c.interWireBytes), d(h.interWireBytes)},
        {"avgInterReadLatency", c.avgInterReadLatency,
         h.avgInterReadLatency},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netcrafter;

    std::string out_path = "VALIDATE_fidelity.json";
    flow::Fidelity fidelity = flow::Fidelity::Hybrid;
    bool quick = false;
    double scale = 1.0;
    double tolerance_pct = 2.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--fidelity" && i + 1 < argc) {
            fidelity = flow::parseFidelityOrDie(argv[++i], "--fidelity");
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::strtod(argv[++i], nullptr);
        } else if (arg == "--tolerance" && i + 1 < argc) {
            tolerance_pct = std::strtod(argv[++i], nullptr);
        } else {
            std::cerr << "usage: validate-fidelity [--fidelity F] "
                         "[--quick] [--scale S] [--tolerance PCT] "
                         "[--out FILE]\n";
            return 2;
        }
    }
    if (fidelity == flow::Fidelity::Cycle) {
        std::cerr << "validate-fidelity: comparison fidelity must be "
                     "flow or hybrid\n";
        return 2;
    }

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }

    const obs::TraceOptions no_trace;
    const sim::ExecPolicy serial_exec{0, false, 1};
    const double tol = tolerance_pct / 100.0;

    struct PointRow
    {
        std::string config;
        std::string workload;
        double worstErr = 0;
        std::string worstMetric;
        bool conserved = true;
        std::uint64_t flowPackets = 0;
        std::uint64_t cyclePackets = 0;
        double speedup = 0;
    };
    std::vector<PointRow> rows;
    bool errors_ok = true;
    bool conservation_ok = true;
    double worst_err = 0;
    std::string worst_at;

    for (const auto &[cfg_name, cfg] : configs) {
        for (const auto &app : bench::apps()) {
            const RunResult c = harness::runWorkload(
                app, cfg, scale, 1, no_trace, serial_exec,
                flow::Fidelity::Cycle);
            const RunResult h = harness::runWorkload(
                app, cfg, scale, 1, no_trace, serial_exec, fidelity);

            PointRow row;
            row.config = cfg_name;
            row.workload = app;
            for (const Metric &m : metricsOf(c, h)) {
                const double err = m.relError();
                if (err > row.worstErr) {
                    row.worstErr = err;
                    row.worstMetric = m.name;
                }
            }
            row.conserved =
                h.flowPackets == h.flowPacketsDelivered &&
                h.flowBytesInjected == h.flowBytesDelivered;
            row.flowPackets = h.flowPackets;
            row.cyclePackets = h.flowCyclePackets;
            row.speedup = h.wallSeconds > 0
                              ? c.wallSeconds / h.wallSeconds
                              : 0;

            if (row.worstErr > tol)
                errors_ok = false;
            if (!row.conserved)
                conservation_ok = false;
            if (row.worstErr > worst_err) {
                worst_err = row.worstErr;
                worst_at = cfg_name + "/" + app + " " +
                           row.worstMetric;
            }
            std::cerr << cfg_name << "/" << app << ": worst "
                      << row.worstMetric << " "
                      << 100 * row.worstErr << "% ("
                      << row.flowPackets << " flow / "
                      << row.cyclePackets << " cycle pkts, "
                      << (row.conserved ? "conserved"
                                        : "NOT CONSERVED")
                      << ", " << row.speedup << "x wall)\n";
            rows.push_back(std::move(row));
        }
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"validate_fidelity\",\n";
    os << "  \"fidelity\": \"" << flow::fidelityName(fidelity)
       << "\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"tolerance_pct\": " << tolerance_pct << ",\n";
    os << "  \"errors_within_tolerance\": "
       << (errors_ok ? "true" : "false") << ",\n";
    os << "  \"conservation_exact\": "
       << (conservation_ok ? "true" : "false") << ",\n";
    os << "  \"worst_error_pct\": " << 100 * worst_err << ",\n";
    os << "  \"worst_error_at\": \"" << exp::jsonEscape(worst_at)
       << "\",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PointRow &r = rows[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"config\": \"" << exp::jsonEscape(r.config) << "\", "
           << "\"workload\": \"" << exp::jsonEscape(r.workload)
           << "\", "
           << "\"worst_error_pct\": " << 100 * r.worstErr << ", "
           << "\"worst_metric\": \"" << exp::jsonEscape(r.worstMetric)
           << "\", "
           << "\"conserved\": " << (r.conserved ? "true" : "false")
           << ", "
           << "\"flow_packets\": " << r.flowPackets << ", "
           << "\"cycle_packets\": " << r.cyclePackets << ", "
           << "\"wall_speedup\": " << r.speedup << "}";
    }
    os << "\n  ]\n}\n";

    const bool ok = errors_ok && conservation_ok;
    std::cout << "validate-fidelity ("
              << flow::fidelityName(fidelity) << "): "
              << (ok ? "PASS" : "FAIL") << " — worst error "
              << 100 * worst_err << "% at " << worst_at
              << (conservation_ok ? ", conservation exact"
                                  : ", CONSERVATION VIOLATED")
              << " (JSON: " << out_path << ")\n";
    return ok ? 0 : 1;
}
