/**
 * @file
 * heartbeat-validate: parse and schema-check an NDJSON heartbeat
 * stream emitted by the live-telemetry sampler (--heartbeat-out /
 * NETCRAFTER_HEARTBEAT_OUT). Checks per record: valid JSON, the
 * required top-level fields with the right types, a monotonically
 * increasing "seq", non-decreasing "host_seconds", per-run shard
 * arrays whose cells carry tick/events/backlog/next_tick, and the
 * five-phase profiling block. Prints a one-line summary and exits
 * non-zero on the first violation (or when --min-records is not met).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "src/obs/json_validate.hh"
#include "src/obs/progress_board.hh"

namespace {

using netcrafter::obs::JsonValue;

int
usage(int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: heartbeat-validate [--min-records N] "
          "<heartbeat.ndjson>\n";
    return code;
}

/** Fetch a required numeric member or fail with a located message. */
bool
wantNumber(const JsonValue &obj, const char *key, std::size_t line,
           double *out = nullptr)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber()) {
        std::cerr << "record " << line << ": missing or non-numeric \""
                  << key << "\"\n";
        return false;
    }
    if (out != nullptr)
        *out = v->number;
    return true;
}

bool
validateRecord(const JsonValue &root, std::size_t line,
               double *seq, double *host_seconds)
{
    if (!root.isObject()) {
        std::cerr << "record " << line << ": not a JSON object\n";
        return false;
    }
    if (!wantNumber(root, "seq", line, seq) ||
        !wantNumber(root, "host_seconds", line, host_seconds) ||
        !wantNumber(root, "events", line) ||
        !wantNumber(root, "backlog", line))
        return false;

    const JsonValue *runs = root.find("runs");
    if (runs == nullptr || !runs->isArray()) {
        std::cerr << "record " << line << ": missing \"runs\" array\n";
        return false;
    }
    for (const JsonValue &run : runs->array) {
        for (const char *key :
             {"round", "window_start", "window_end", "quanta",
              "stall_ticks", "steals_won", "idle_parks",
              "max_skew", "serve_inflight", "flow_lanes_active"}) {
            if (!wantNumber(run, key, line))
                return false;
        }
        const JsonValue *shards = run.find("shards");
        if (shards == nullptr || !shards->isArray() ||
            shards->array.empty()) {
            std::cerr << "record " << line
                      << ": run without a non-empty \"shards\" array\n";
            return false;
        }
        for (const JsonValue &cell : shards->array) {
            for (const char *key :
                 {"tick", "events", "backlog", "next_tick"}) {
                if (!wantNumber(cell, key, line))
                    return false;
            }
        }
    }

    const JsonValue *phases = root.find("phases");
    if (phases == nullptr || !phases->isObject()) {
        std::cerr << "record " << line
                  << ": missing \"phases\" object\n";
        return false;
    }
    for (unsigned p = 0; p < netcrafter::obs::kPhaseCount; ++p) {
        const char *key = netcrafter::obs::phaseName(
            static_cast<netcrafter::obs::Phase>(p));
        if (!wantNumber(*phases, key, line))
            return false;
    }

    // The sweep block is optional (only present under a Scheduler) but
    // typed when it appears.
    if (const JsonValue *sweep = root.find("sweep")) {
        if (!sweep->isObject()) {
            std::cerr << "record " << line
                      << ": \"sweep\" is not an object\n";
            return false;
        }
        for (const char *key :
             {"jobs_done", "jobs_total", "cache_hits", "eta_seconds"}) {
            if (!wantNumber(*sweep, key, line))
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    long min_records = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(0);
        if (arg == "--min-records") {
            if (i + 1 >= argc)
                return usage(1);
            char *end = nullptr;
            min_records = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || min_records < 0) {
                std::cerr << "--min-records must be a non-negative "
                             "integer\n";
                return usage(1);
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(1);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage(1);
        }
    }
    if (path.empty())
        return usage(1);

    std::ifstream is(path);
    if (!is) {
        std::cerr << path << ": cannot open\n";
        return 1;
    }

    std::size_t records = 0;
    double last_seq = 0, last_host = -1;
    std::string text;
    while (std::getline(is, text)) {
        if (text.empty())
            continue;
        ++records;
        std::string error;
        JsonValue root;
        if (!netcrafter::obs::parseJson(text, root, &error)) {
            std::cerr << path << ": record " << records
                      << ": INVALID JSON: " << error << "\n";
            return 1;
        }
        double seq = 0, host_seconds = 0;
        if (!validateRecord(root, records, &seq, &host_seconds))
            return 1;
        if (seq <= last_seq) {
            std::cerr << path << ": record " << records
                      << ": \"seq\" not increasing (" << seq
                      << " after " << last_seq << ")\n";
            return 1;
        }
        if (host_seconds < last_host) {
            std::cerr << path << ": record " << records
                      << ": \"host_seconds\" went backwards\n";
            return 1;
        }
        last_seq = seq;
        last_host = host_seconds;
    }

    if (records < static_cast<std::size_t>(min_records)) {
        std::cerr << path << ": only " << records
                  << " heartbeat record(s), wanted at least "
                  << min_records << "\n";
        return 1;
    }
    std::cout << path << ": ok (" << records
              << " heartbeat records, last seq " << last_seq
              << ", last host_seconds " << last_host << ")\n";
    return 0;
}
