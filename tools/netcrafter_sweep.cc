/**
 * @file
 * netcrafter-sweep: regenerate any subset of the paper's figures in one
 * invocation. All selected figures share one thread-pool scheduler and
 * one result cache, so design points common to several figures (the
 * baseline above all) are simulated exactly once per run, in parallel
 * across cores, with numbers bit-identical to the legacy serial
 * binaries. Results can additionally be exported as JSON or CSV.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/export.hh"
#include "src/exp/figures.hh"
#include "src/exp/result_cache.hh"
#include "src/exp/scheduler.hh"
#include "src/exp/serve_curve.hh"
#include "src/gpu/system.hh"
#include "src/harness/runner.hh"
#include "src/harness/table.hh"
#include "src/obs/chrome_trace.hh"
#include "src/obs/telemetry.hh"
#include "src/workloads/workload.hh"

namespace {

using namespace netcrafter;

int
usage(int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: netcrafter-sweep [options] <figure>... | all\n"
          "       netcrafter-sweep --serve [options]\n"
          "\n"
          "Regenerate paper figures through the parallel experiment\n"
          "orchestrator. Figures share one result cache: every unique\n"
          "(workload, config, scale) point is simulated once per run.\n"
          "With --serve, run the open-loop serving saturation curve\n"
          "(baseline vs full NetCrafter) instead of figures.\n"
          "\n"
          "options:\n"
          "  --serve           sweep offered load over an open-loop\n"
          "                    serving scenario and print per-class\n"
          "                    p50/p95/p99/p999 latency plus the knee\n"
          "  --offered-load A:B:STEP  offered-load range in requests\n"
          "                    per kilocycle (default 2:10:2)\n"
          "  --arrival KIND    poisson|uniform|bursty (default poisson;\n"
          "                    NETCRAFTER_SERVE_* env vars set the\n"
          "                    remaining serving knobs)\n"
          "  --list            list available figures and exit\n"
          "  --jobs N          worker threads (default: all cores;\n"
          "                    1 = serial)\n"
          "  --shards N        engine shards per simulation (default 1\n"
          "                    = serial; capped at the cluster count;\n"
          "                    results are bit-identical either way).\n"
          "                    The default worker count is divided by N\n"
          "                    so jobs x shards never oversubscribes\n"
          "  --scale X         set NETCRAFTER_SCALE for this run\n"
          "  --sync M          strict|relaxed shard synchronization\n"
          "                    (default: NETCRAFTER_SYNC or strict)\n"
          "  --skew-bound S    relaxed-mode clock-skew bound in ticks\n"
          "                    (default: NETCRAFTER_SKEW_BOUND or 16;\n"
          "                    ignored under --sync strict)\n"
          "  --fidelity F      cycle|flow|hybrid (default: the\n"
          "                    validated NETCRAFTER_FIDELITY env, else\n"
          "                    cycle). flow/hybrid approximate the\n"
          "                    cycle-accurate numbers (see\n"
          "                    validate-fidelity) and require\n"
          "                    --shards 1\n"
          "  --json FILE       export every simulated result as JSON\n"
          "  --csv FILE        export every simulated result as CSV\n"
          "  --timings         print a per-job wall-time table\n"
          "  --quiet           suppress per-job progress lines\n"
          "  --live            single-line live progress/ETA display\n"
          "                    instead of per-job lines (redrawn in\n"
          "                    place on stderr by the telemetry\n"
          "                    sampler)\n"
          "  --heartbeat-out FILE  append one NDJSON heartbeat record\n"
          "                    per interval (per-shard tick/event/\n"
          "                    backlog progress, phase times, sweep\n"
          "                    ETA); validate with heartbeat-validate.\n"
          "                    NETCRAFTER_HEARTBEAT_* set the same\n"
          "                    knobs\n"
          "  --heartbeat-interval MS  wall ms between heartbeats\n"
          "                    (default 500)\n"
          "  --watchdog SECS   dump a flight-recorder snapshot to\n"
          "                    stderr when no simulation progress is\n"
          "                    made for SECS host seconds\n"
          "                    (NETCRAFTER_WATCHDOG_{SECS,DUMP,ABORT}\n"
          "                    add a dump file / abort-on-hang)\n"
          "  --registry-json FILE  with --workload: run one workload\n"
          "                    under the baseline config and dump its\n"
          "                    full stats registry as JSON\n"
          "  --workload NAME   workload for --registry-json\n"
          "  --trace-out DIR   write per-run Chrome/Perfetto traces,\n"
          "                    time-series CSVs and stats JSON into DIR,\n"
          "                    plus DIR/scheduler.host.trace.json laying\n"
          "                    every job on the host timeline. Cached\n"
          "                    jobs simulate nothing and emit no files\n"
          "  --trace-level L   off|links|packets|full (default: packets\n"
          "                    once --trace-out or --sample-interval is\n"
          "                    given)\n"
          "  --sample-interval N  time-series row every N sim ticks\n";
    return code;
}

/**
 * Lay every scheduled job on the host timeline as pid-3 slices: jobs
 * are greedily packed onto the fewest lanes such that no lane overlaps
 * (lane count ~= peak worker concurrency).
 */
void
writeSchedulerHostTrace(const exp::Scheduler &scheduler,
                        std::ostream &os)
{
    std::vector<exp::JobTiming> jobs = scheduler.timingHistory();
    std::sort(jobs.begin(), jobs.end(),
              [](const exp::JobTiming &a, const exp::JobTiming &b) {
                  return a.startSeconds < b.startSeconds;
              });

    obs::ChromeTraceWriter writer;
    writer.processName(obs::kSchedulerPid, "scheduler jobs");
    std::vector<double> lane_free; // per-lane end of the last job, sec
    for (const auto &job : jobs) {
        std::size_t lane = lane_free.size();
        for (std::size_t l = 0; l < lane_free.size(); ++l) {
            if (lane_free[l] <= job.startSeconds) {
                lane = l;
                break;
            }
        }
        if (lane == lane_free.size()) {
            lane_free.push_back(0);
            writer.threadName(obs::kSchedulerPid,
                              static_cast<int>(lane),
                              "lane " + std::to_string(lane));
        }
        lane_free[lane] = job.startSeconds + job.seconds;
        writer.slice(obs::kSchedulerPid, static_cast<int>(lane),
                     job.name, job.startSeconds * 1e6,
                     job.seconds * 1e6,
                     std::string("{\"cache_hit\":") +
                         (job.cacheHit ? "true" : "false") + "}");
    }
    writer.write(os);
}

int
listFigures()
{
    std::cout << "available figures:\n";
    for (const auto &fig : exp::figureRegistry())
        std::cout << "  " << fig.name << "  " << fig.caption << "\n";
    return 0;
}

bool
writeFile(const std::string &path,
          const std::function<void(std::ostream &)> &write)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write '" << path << "'\n";
        return false;
    }
    write(os);
    return true;
}

int
dumpRegistry(const std::string &workload, const std::string &path)
{
    auto wl = workloads::makeWorkload(workload);
    gpu::MultiGpuSystem system(config::baselineConfig());
    system.run(*wl, harness::envScale());
    const stats::Registry reg = system.collectStats();
    return writeFile(path,
                     [&](std::ostream &os) {
                         exp::writeRegistryJson(reg, os);
                     })
               ? 0
               : 1;
}

/** Parse an --offered-load "A:B:STEP" range; exits on junk. */
void
parseLoadRange(const std::string &text, exp::ServeCurveSpec &spec)
{
    double vals[3];
    std::size_t pos = 0;
    for (int i = 0; i < 3; ++i) {
        const std::size_t sep = text.find(':', pos);
        const bool last = i == 2;
        if (last != (sep == std::string::npos)) {
            std::cerr << "--offered-load wants A:B:STEP, got '" << text
                      << "'\n";
            std::exit(usage(1));
        }
        const std::string field =
            text.substr(pos, last ? std::string::npos : sep - pos);
        char *end = nullptr;
        vals[i] = std::strtod(field.c_str(), &end);
        if (field.empty() || end == nullptr || *end != '\0' ||
            vals[i] <= 0) {
            std::cerr << "--offered-load values must be positive, got '"
                      << field << "' in '" << text << "'\n";
            std::exit(usage(1));
        }
        pos = sep + 1;
    }
    if (vals[1] < vals[0]) {
        std::cerr << "--offered-load range is empty: " << text << "\n";
        std::exit(usage(1));
    }
    spec.loadStart = vals[0];
    spec.loadStop = vals[1];
    spec.loadStep = vals[2];
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> want;
    std::string json_path, csv_path, registry_json, registry_workload;
    exp::Scheduler::Options opts;
    opts.progress = exp::ProgressMode::PerJob;
    bool timings = false;
    // Telemetry flags override the NETCRAFTER_HEARTBEAT_* /
    // NETCRAFTER_WATCHDOG_* environment.
    obs::TelemetryOptions telemetry = obs::TelemetryOptions::fromEnv();
    bool serve_mode = false;
    exp::ServeCurveSpec serve_spec;
    // NETCRAFTER_SERVE_* sets the scenario (arrival, mix, phases,
    // seed); the --arrival and --offered-load flags override it.
    harness::applyServeEnv(serve_spec.serve);
    // --shards overrides the NETCRAFTER_SHARDS environment.
    if (const char *env = std::getenv("NETCRAFTER_SHARDS"))
        opts.shards = harness::parseShardsEnv(env);
    // Flags below override the NETCRAFTER_TRACE_* environment.
    opts.trace = obs::TraceOptions::fromEnv();
    bool explicit_level = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                std::exit(usage(1));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(0);
        else if (arg == "--list")
            return listFigures();
        else if (arg == "--jobs") {
            const std::string text = value("--jobs");
            char *end = nullptr;
            const long n = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || n < 0) {
                std::cerr << "--jobs must be a non-negative integer "
                             "(0 = all cores), got '"
                          << text << "'\n";
                return usage(1);
            }
            opts.workers = static_cast<unsigned>(n);
        }
        else if (arg == "--shards") {
            const std::string text = value("--shards");
            char *end = nullptr;
            const long n = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || n < 1) {
                std::cerr << "--shards must be a positive integer, "
                             "got '"
                          << text << "'\n";
                return usage(1);
            }
            opts.shards = static_cast<unsigned>(n);
        }
        else if (arg == "--scale")
            setenv("NETCRAFTER_SCALE", value("--scale").c_str(), 1);
        else if (arg == "--fidelity") {
            opts.fidelity = flow::parseFidelityOrDie(
                value("--fidelity"), "--fidelity");
        }
        else if (arg == "--sync")
            opts.sync.mode =
                config::parseSyncModeEnv(value("--sync").c_str());
        else if (arg == "--skew-bound")
            opts.sync.skewBound = config::parseSkewBoundEnv(
                value("--skew-bound").c_str());
        else if (arg == "--json")
            json_path = value("--json");
        else if (arg == "--csv")
            csv_path = value("--csv");
        else if (arg == "--registry-json")
            registry_json = value("--registry-json");
        else if (arg == "--workload")
            registry_workload = value("--workload");
        else if (arg == "--trace-out")
            opts.trace.outDir = value("--trace-out");
        else if (arg == "--trace-level") {
            opts.trace.level =
                obs::TraceOptions::parseLevel(value("--trace-level"));
            explicit_level = true;
        }
        else if (arg == "--sample-interval") {
            const std::string text = value("--sample-interval");
            char *end = nullptr;
            const long long n = std::strtoll(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || n < 0) {
                std::cerr << "--sample-interval must be a non-negative "
                             "integer, got '"
                          << text << "'\n";
                return usage(1);
            }
            opts.trace.sampleInterval = static_cast<Tick>(n);
        }
        else if (arg == "--serve")
            serve_mode = true;
        else if (arg == "--offered-load")
            parseLoadRange(value("--offered-load"), serve_spec);
        else if (arg == "--arrival") {
            serve_spec.serve.arrival =
                serve::parseArrivalKind(value("--arrival"));
        }
        else if (arg == "--timings")
            timings = true;
        else if (arg == "--quiet")
            opts.progress = exp::ProgressMode::Off;
        else if (arg == "--live") {
            opts.progress = exp::ProgressMode::Live;
            telemetry.tty = true;
        }
        else if (arg == "--heartbeat-out")
            telemetry.heartbeatPath = value("--heartbeat-out");
        else if (arg == "--heartbeat-interval") {
            const std::string text = value("--heartbeat-interval");
            char *end = nullptr;
            const long n = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || n < 1 ||
                n > 3'600'000) {
                std::cerr << "--heartbeat-interval must be a wall "
                             "interval in [1, 3600000] ms, got '"
                          << text << "'\n";
                return usage(1);
            }
            telemetry.intervalMs = static_cast<unsigned>(n);
        }
        else if (arg == "--watchdog") {
            const std::string text = value("--watchdog");
            char *end = nullptr;
            const double secs = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || !(secs > 0)) {
                std::cerr << "--watchdog must be a positive host-"
                             "second threshold, got '"
                          << text << "'\n";
                return usage(1);
            }
            telemetry.watchdogSecs = secs;
        }
        else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(1);
        } else if (arg == "all") {
            want.clear();
            for (const auto &fig : exp::figureRegistry())
                want.push_back(fig.name);
        } else {
            want.push_back(arg);
        }
    }

    // As with figureMain: output or sampling without an explicit tier
    // implies the packet tier.
    if (!explicit_level && !opts.trace.enabled() &&
        (!opts.trace.outDir.empty() || opts.trace.sampleInterval > 0))
        opts.trace.level = obs::TraceLevel::Packets;

    if (opts.fidelity != flow::Fidelity::Cycle && opts.shards > 1) {
        std::cerr << "--fidelity "
                  << flow::fidelityName(opts.fidelity)
                  << " requires --shards 1 (the flow lane is a "
                     "single-engine fast path)\n";
        return usage(1);
    }

    if (!registry_json.empty()) {
        if (registry_workload.empty()) {
            std::cerr << "--registry-json requires --workload\n";
            return usage(1);
        }
        return dumpRegistry(registry_workload, registry_json);
    }
    if (want.empty() && !serve_mode)
        return usage(1);
    if (serve_mode && !want.empty()) {
        std::cerr << "--serve does not take figure names\n";
        return usage(1);
    }

    for (const auto &name : want) {
        if (exp::findFigure(name) == nullptr) {
            std::cerr << "unknown figure '" << name
                      << "' (try --list)\n";
            return 1;
        }
    }

    // Start the sampler before any job runs so every MultiGpuSystem
    // registers its progress board (the Scheduler's Live fallback only
    // covers the flagless NETCRAFTER_HEARTBEAT_* path).
    if (telemetry.enabled())
        obs::Telemetry::instance().start(telemetry);

    exp::ResultCache cache;
    exp::Scheduler scheduler(opts, &cache);

    if (serve_mode) {
        serve_spec.configs = {
            {"baseline", config::baselineConfig()},
            {"netcrafter", exp::fullNetcrafter()},
        };
        const exp::ServeCurveResult curve =
            exp::runServeCurve(scheduler, serve_spec);
        exp::printServeCurve(curve, std::cout);
        std::cout << "\n";
    }

    for (const auto &name : want) {
        const exp::Figure *fig = exp::findFigure(name);
        exp::FigureContext ctx{scheduler, std::cout};
        fig->run(ctx);
        std::cout << "\n";
    }

    // Join the sampler before printing the summary: emits the final
    // heartbeat and, with --live, terminates the TTY line cleanly.
    obs::Telemetry::instance().stop();

    // Per-job wall-time stats come from the cache snapshot: one entry
    // per unique simulated point.
    const auto unique_points = exp::recordsFromCache(cache);
    double sim_seconds = 0;
    for (const auto &r : unique_points)
        sim_seconds += r.result.wallSeconds;

    if (timings) {
        harness::Table table(
            {"workload", "config digest", "scale", "sim seconds"});
        for (const auto &r : unique_points)
            table.addRow({r.result.workload,
                          config::digestHex(r.configDigest),
                          harness::Table::fmt(r.scale, 2),
                          harness::Table::fmt(r.result.wallSeconds, 3)});
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "sweep summary: " << want.size() << " figure(s), "
              << cache.misses() << " unique point(s) simulated, "
              << cache.hits() << " cache hit(s), "
              << scheduler.workers() << " worker(s), "
              << scheduler.shards() << " shard(s), "
              << harness::Table::fmt(sim_seconds, 2)
              << "s total simulation time\n";

    if (!opts.trace.outDir.empty()) {
        std::filesystem::create_directories(opts.trace.outDir);
        const std::string path =
            opts.trace.outDir + "/scheduler.host.trace.json";
        if (!writeFile(path, [&](std::ostream &os) {
                writeSchedulerHostTrace(scheduler, os);
            }))
            return 1;
    }

    // Exports carry one row per figure job (sweep-qualified names);
    // points shared between figures repeat under each name and can be
    // deduplicated on (workload, config_digest, scale).
    const auto records = exp::recordsFromScheduler(scheduler);
    if (!json_path.empty() &&
        !writeFile(json_path,
                   [&](std::ostream &os) { exp::writeJson(records, os); }))
        return 1;
    if (!csv_path.empty() &&
        !writeFile(csv_path,
                   [&](std::ostream &os) { exp::writeCsv(records, os); }))
        return 1;
    return 0;
}
