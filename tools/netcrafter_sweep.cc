/**
 * @file
 * netcrafter-sweep: regenerate any subset of the paper's figures in one
 * invocation. All selected figures share one thread-pool scheduler and
 * one result cache, so design points common to several figures (the
 * baseline above all) are simulated exactly once per run, in parallel
 * across cores, with numbers bit-identical to the legacy serial
 * binaries. Results can additionally be exported as JSON or CSV.
 */

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/export.hh"
#include "src/exp/figures.hh"
#include "src/exp/result_cache.hh"
#include "src/exp/scheduler.hh"
#include "src/gpu/system.hh"
#include "src/harness/table.hh"
#include "src/workloads/workload.hh"

namespace {

using namespace netcrafter;

int
usage(int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: netcrafter-sweep [options] <figure>... | all\n"
          "\n"
          "Regenerate paper figures through the parallel experiment\n"
          "orchestrator. Figures share one result cache: every unique\n"
          "(workload, config, scale) point is simulated once per run.\n"
          "\n"
          "options:\n"
          "  --list            list available figures and exit\n"
          "  --jobs N          worker threads (default: all cores;\n"
          "                    1 = serial)\n"
          "  --shards N        engine shards per simulation (default 1\n"
          "                    = serial; capped at the cluster count;\n"
          "                    results are bit-identical either way).\n"
          "                    The default worker count is divided by N\n"
          "                    so jobs x shards never oversubscribes\n"
          "  --scale X         set NETCRAFTER_SCALE for this run\n"
          "  --json FILE       export every simulated result as JSON\n"
          "  --csv FILE        export every simulated result as CSV\n"
          "  --timings         print a per-job wall-time table\n"
          "  --quiet           suppress per-job progress lines\n"
          "  --registry-json FILE  with --workload: run one workload\n"
          "                    under the baseline config and dump its\n"
          "                    full stats registry as JSON\n"
          "  --workload NAME   workload for --registry-json\n";
    return code;
}

int
listFigures()
{
    std::cout << "available figures:\n";
    for (const auto &fig : exp::figureRegistry())
        std::cout << "  " << fig.name << "  " << fig.caption << "\n";
    return 0;
}

bool
writeFile(const std::string &path,
          const std::function<void(std::ostream &)> &write)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write '" << path << "'\n";
        return false;
    }
    write(os);
    return true;
}

int
dumpRegistry(const std::string &workload, const std::string &path)
{
    auto wl = workloads::makeWorkload(workload);
    gpu::MultiGpuSystem system(config::baselineConfig());
    system.run(*wl, harness::envScale());
    const stats::Registry reg = system.collectStats();
    return writeFile(path,
                     [&](std::ostream &os) {
                         exp::writeRegistryJson(reg, os);
                     })
               ? 0
               : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> want;
    std::string json_path, csv_path, registry_json, registry_workload;
    exp::Scheduler::Options opts;
    opts.progress = true;
    bool timings = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                std::exit(usage(1));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(0);
        else if (arg == "--list")
            return listFigures();
        else if (arg == "--jobs") {
            const std::string text = value("--jobs");
            char *end = nullptr;
            const long n = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || n < 0) {
                std::cerr << "--jobs must be a non-negative integer "
                             "(0 = all cores), got '"
                          << text << "'\n";
                return usage(1);
            }
            opts.workers = static_cast<unsigned>(n);
        }
        else if (arg == "--shards") {
            const std::string text = value("--shards");
            char *end = nullptr;
            const long n = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || n < 1) {
                std::cerr << "--shards must be a positive integer, "
                             "got '"
                          << text << "'\n";
                return usage(1);
            }
            opts.shards = static_cast<unsigned>(n);
        }
        else if (arg == "--scale")
            setenv("NETCRAFTER_SCALE", value("--scale").c_str(), 1);
        else if (arg == "--json")
            json_path = value("--json");
        else if (arg == "--csv")
            csv_path = value("--csv");
        else if (arg == "--registry-json")
            registry_json = value("--registry-json");
        else if (arg == "--workload")
            registry_workload = value("--workload");
        else if (arg == "--timings")
            timings = true;
        else if (arg == "--quiet")
            opts.progress = false;
        else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(1);
        } else if (arg == "all") {
            want.clear();
            for (const auto &fig : exp::figureRegistry())
                want.push_back(fig.name);
        } else {
            want.push_back(arg);
        }
    }

    if (!registry_json.empty()) {
        if (registry_workload.empty()) {
            std::cerr << "--registry-json requires --workload\n";
            return usage(1);
        }
        return dumpRegistry(registry_workload, registry_json);
    }
    if (want.empty())
        return usage(1);

    for (const auto &name : want) {
        if (exp::findFigure(name) == nullptr) {
            std::cerr << "unknown figure '" << name
                      << "' (try --list)\n";
            return 1;
        }
    }

    exp::ResultCache cache;
    exp::Scheduler scheduler(opts, &cache);

    for (const auto &name : want) {
        const exp::Figure *fig = exp::findFigure(name);
        exp::FigureContext ctx{scheduler, std::cout};
        fig->run(ctx);
        std::cout << "\n";
    }

    // Per-job wall-time stats come from the cache snapshot: one entry
    // per unique simulated point.
    const auto unique_points = exp::recordsFromCache(cache);
    double sim_seconds = 0;
    for (const auto &r : unique_points)
        sim_seconds += r.result.wallSeconds;

    if (timings) {
        harness::Table table(
            {"workload", "config digest", "scale", "sim seconds"});
        for (const auto &r : unique_points)
            table.addRow({r.result.workload,
                          config::digestHex(r.configDigest),
                          harness::Table::fmt(r.scale, 2),
                          harness::Table::fmt(r.result.wallSeconds, 3)});
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "sweep summary: " << want.size() << " figure(s), "
              << cache.misses() << " unique point(s) simulated, "
              << cache.hits() << " cache hit(s), "
              << scheduler.workers() << " worker(s), "
              << scheduler.shards() << " shard(s), "
              << harness::Table::fmt(sim_seconds, 2)
              << "s total simulation time\n";

    // Exports carry one row per figure job (sweep-qualified names);
    // points shared between figures repeat under each name and can be
    // deduplicated on (workload, config_digest, scale).
    const auto records = exp::recordsFromScheduler(scheduler);
    if (!json_path.empty() &&
        !writeFile(json_path,
                   [&](std::ostream &os) { exp::writeJson(records, os); }))
        return 1;
    if (!csv_path.empty() &&
        !writeFile(csv_path,
                   [&](std::ostream &os) { exp::writeCsv(records, os); }))
        return 1;
    return 0;
}
