/**
 * @file
 * trace-validate: parse and structurally validate Chrome-trace JSON
 * documents emitted by the observability layer (and, in CI, confirm
 * they will load in chrome://tracing / Perfetto). Prints a one-line
 * summary per file and exits non-zero on the first invalid document.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/obs/json_validate.hh"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: trace-validate <trace.json>...\n";
        return 2;
    }
    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        std::ifstream is(path);
        if (!is) {
            std::cerr << path << ": cannot open\n";
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << is.rdbuf();

        std::string error;
        netcrafter::obs::JsonValue root;
        if (!netcrafter::obs::parseJson(text.str(), root, &error)) {
            std::cerr << path << ": INVALID JSON: " << error << "\n";
            ++failures;
            continue;
        }
        netcrafter::obs::ChromeTraceSummary summary;
        if (!netcrafter::obs::validateChromeTrace(root, &error,
                                                  &summary)) {
            std::cerr << path << ": INVALID: " << error << "\n";
            ++failures;
            continue;
        }
        std::cout << path << ": ok (" << summary.events << " events, "
                  << summary.slices << " slices, " << summary.counters
                  << " counter points, " << summary.instants
                  << " instants, " << summary.asyncs << " asyncs, "
                  << summary.lanes << " lanes, " << summary.pids
                  << " pids)\n";
    }
    return failures == 0 ? 0 : 1;
}
