/** @file Unit tests for the wavefront memory coalescer. */

#include <gtest/gtest.h>

#include "src/gpu/coalescer.hh"

namespace netcrafter::gpu {
namespace {

using workloads::Instruction;

TEST(Coalescer, AdjacentLanesMergeIntoFullLines)
{
    Instruction instr;
    instr.elemBytes = 4;
    for (std::uint32_t i = 0; i < kWavefrontSize; ++i)
        instr.addrs[i] = 0x1000 + i * 4;
    auto accesses = coalesce(instr);
    // 64 lanes x 4B = 256B = 4 full lines.
    ASSERT_EQ(accesses.size(), 4u);
    for (const auto &a : accesses) {
        EXPECT_EQ(a.offset, 0u);
        EXPECT_EQ(a.bytes, 64u);
        EXPECT_FALSE(a.isWrite);
    }
}

TEST(Coalescer, StridedLanesNeedFewBytesPerLine)
{
    Instruction instr;
    instr.elemBytes = 4;
    for (std::uint32_t i = 0; i < kWavefrontSize; ++i)
        instr.addrs[i] = 0x10000 + static_cast<Addr>(i) * 1024;
    auto accesses = coalesce(instr);
    ASSERT_EQ(accesses.size(), kWavefrontSize);
    for (const auto &a : accesses)
        EXPECT_EQ(a.bytes, 4u);
}

TEST(Coalescer, DuplicateAddressesCollapse)
{
    Instruction instr;
    instr.elemBytes = 4;
    for (std::uint32_t i = 0; i < kWavefrontSize; ++i)
        instr.addrs[i] = 0x2000;
    auto accesses = coalesce(instr);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].bytes, 4u);
    EXPECT_EQ(accesses[0].offset, 0u);
}

TEST(Coalescer, SpanCoversFirstToLastTouchedByte)
{
    Instruction instr;
    instr.elemBytes = 4;
    instr.addrs[0] = 0x1000 + 8;
    instr.addrs[1] = 0x1000 + 40;
    auto accesses = coalesce(instr);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].offset, 8u);
    EXPECT_EQ(accesses[0].bytes, 36u); // 8 .. 43
}

TEST(Coalescer, InactiveLanesSkipped)
{
    Instruction instr;
    instr.elemBytes = 8;
    instr.addrs[0] = 0x4000;
    instr.addrs[5] = 0x8000;
    auto accesses = coalesce(instr);
    EXPECT_EQ(accesses.size(), 2u);
}

TEST(Coalescer, AllInactiveYieldsNothing)
{
    Instruction instr;
    EXPECT_TRUE(coalesce(instr).empty());
}

TEST(Coalescer, WriteFlagPropagates)
{
    Instruction instr;
    instr.isWrite = true;
    instr.elemBytes = 4;
    instr.addrs[0] = 0x40;
    auto accesses = coalesce(instr);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_TRUE(accesses[0].isWrite);
}

TEST(Coalescer, ElementAtLineEndClamps)
{
    Instruction instr;
    instr.elemBytes = 8;
    instr.addrs[0] = 0x1000 + 60; // 8B element would straddle
    auto accesses = coalesce(instr);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].offset, 60u);
    EXPECT_EQ(accesses[0].bytes, 4u); // clamped to the line
}

TEST(Coalescer, LinesAreAligned)
{
    Instruction instr;
    instr.elemBytes = 4;
    instr.addrs[0] = 0x12345;
    auto accesses = coalesce(instr);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].line % kCacheLineBytes, 0u);
    EXPECT_EQ(accesses[0].line, lineAddr(0x12345));
}

} // namespace
} // namespace netcrafter::gpu
