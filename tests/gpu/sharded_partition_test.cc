/**
 * @file
 * Shard-partition unit tests: every simulation component of a sharded
 * MultiGpuSystem must bind to the engine of its cluster's shard, each
 * component to exactly one shard.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/gpu/system.hh"

namespace netcrafter::gpu {
namespace {

config::SystemConfig
tinyConfig(std::uint32_t clusters)
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.numClusters = clusters;
    cfg.gpusPerCluster = 2;
    cfg.cusPerGpu = 2;
    cfg.maxWavesPerCu = 2;
    return cfg;
}

TEST(ShardedPartitionTest, ShardOfClusterRoundRobins)
{
    EXPECT_EQ(sim::shardOfCluster(0, 2), 0u);
    EXPECT_EQ(sim::shardOfCluster(1, 2), 1u);
    EXPECT_EQ(sim::shardOfCluster(2, 2), 0u);
    EXPECT_EQ(sim::shardOfCluster(3, 2), 1u);
    EXPECT_EQ(sim::shardOfCluster(3, 1), 0u);
}

TEST(ShardedPartitionTest, ShardCountZeroMeansSerial)
{
    MultiGpuSystem serial(tinyConfig(2), 0);
    EXPECT_EQ(serial.numShards(), 1u);
}

TEST(ShardedPartitionDeathTest, RejectsMoreShardsThanClusters)
{
    // Silent clamping used to hide topology/shard mismatches in sweep
    // scripts: asking for 16 shards on a 2-cluster system quietly ran
    // on 2. A mismatch is now a loud configuration error.
    EXPECT_DEATH({ MultiGpuSystem oversub(tinyConfig(2), 16); },
                 "exceeds the topology's 2 clusters");
}

TEST(ShardedPartitionTest, ComponentsBindToTheirClustersShard)
{
    const config::SystemConfig cfg = tinyConfig(2);
    MultiGpuSystem sys(cfg, 2);
    ASSERT_EQ(sys.numShards(), 2u);
    sim::ShardedEngine &eng = sys.engines();

    noc::Network &net = const_cast<noc::Network &>(sys.network());
    for (GpuId g = 0; g < cfg.numGpus(); ++g) {
        const unsigned shard = sim::shardOfCluster(cfg.clusterOf(g), 2);
        EXPECT_EQ(&net.rdma(g).engine(), &eng.shard(shard))
            << "gpu " << g;
    }
    for (ClusterId c = 0; c < cfg.numClusters; ++c) {
        const unsigned shard = sim::shardOfCluster(c, 2);
        EXPECT_EQ(&net.clusterSwitch(c).engine(), &eng.shard(shard))
            << "cluster " << c;
    }

    // Inter-cluster channels span shards; their egress side (and the
    // SimObject binding) lives on the source cluster's shard.
    const noc::WireChannel &ch01 = net.interClusterChannel(0, 1);
    EXPECT_TRUE(ch01.crossShard());
    EXPECT_EQ(ch01.srcShard(), 0u);
    EXPECT_EQ(ch01.dstShard(), 1u);
    EXPECT_EQ(&ch01.engine(), &eng.shard(0));
    const noc::WireChannel &ch10 = net.interClusterChannel(1, 0);
    EXPECT_TRUE(ch10.crossShard());
    EXPECT_EQ(ch10.srcShard(), 1u);
    EXPECT_EQ(ch10.dstShard(), 0u);
}

TEST(ShardedPartitionTest, EverySimObjectOnExactlyOneShard)
{
    const config::SystemConfig cfg = tinyConfig(3);
    MultiGpuSystem sharded(cfg, 3);
    ASSERT_EQ(sharded.numShards(), 3u);

    // The serial build attaches every component to the one engine; the
    // sharded build must attach the same set, partitioned disjointly.
    MultiGpuSystem serial(cfg, 1);
    std::multiset<std::string> expected(
        serial.engine().attachedObjectNames().begin(),
        serial.engine().attachedObjectNames().end());

    std::multiset<std::string> seen;
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        for (const std::string &name :
             sharded.engines().shard(s).attachedObjectNames()) {
            EXPECT_EQ(seen.count(name), 0u)
                << name << " attached to more than one shard";
            seen.insert(name);
        }
    }
    EXPECT_EQ(seen, expected);

    // And each GPU-prefixed component sits on its cluster's shard.
    for (GpuId g = 0; g < cfg.numGpus(); ++g) {
        const unsigned shard =
            sim::shardOfCluster(cfg.clusterOf(g), sharded.numShards());
        const std::string prefix = "gpu" + std::to_string(g) + ".";
        for (unsigned s = 0; s < sharded.numShards(); ++s) {
            for (const std::string &name :
                 sharded.engines().shard(s).attachedObjectNames()) {
                if (name.rfind(prefix, 0) == 0)
                    EXPECT_EQ(s, shard) << name;
            }
        }
    }
}

} // namespace
} // namespace netcrafter::gpu
