/** @file Unit tests for the CU wavefront execution model. */

#include <gtest/gtest.h>

#include <deque>

#include "src/gpu/compute_unit.hh"
#include "src/sim/engine.hh"

namespace netcrafter::gpu {
namespace {

/** A kernel issuing N adjacent read instructions per wavefront. */
struct StubKernel : workloads::Kernel
{
    std::uint32_t instrs = 3;
    mutable std::uint64_t generated = 0;

    workloads::KernelInfo
    info() const override
    {
        return workloads::KernelInfo{4, 2, instrs};
    }

    bool
    generate(std::uint32_t cta, std::uint32_t wave, std::uint32_t idx,
             Pcg32 &, workloads::Instruction &out) const override
    {
        if (idx >= instrs)
            return false;
        ++generated;
        out = workloads::Instruction();
        out.elemBytes = 4;
        out.computeDelay = 2;
        const Addr base = 0x1'0000'0000ull +
                          (static_cast<Addr>(cta) * 8 + wave) * 4096 +
                          idx * 256;
        for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane)
            out.addrs[lane] = base + lane * 4;
        return true;
    }
};

struct CuFixture : ::testing::Test
{
    sim::Engine engine;
    CuParams params;
    std::deque<mem::FillRequest> fills;
    int waveRetirements = 0;

    std::unique_ptr<ComputeUnit>
    makeCu()
    {
        params.maxResidentWaves = 4;
        return std::make_unique<ComputeUnit>(
            engine, "cu", params,
            [this](mem::FillRequest req) {
                fills.push_back(std::move(req));
            },
            [](Addr, vm::Tlb::Callback done) {
                // Instant translation (the L1 TLB still adds latency).
                done(vm::Translation{0});
            },
            [this](const WaveDesc &) { ++waveRetirements; });
    }

    void
    answerAll()
    {
        while (!fills.empty()) {
            auto req = std::move(fills.front());
            fills.pop_front();
            req.done(mem::fullMask(1));
        }
    }
};

TEST_F(CuFixture, ExecutesAllInstructionsAndRetires)
{
    auto cu = makeCu();
    StubKernel kernel;
    cu->startWavefront(WaveDesc{&kernel, 0, 0, 1});
    EXPECT_EQ(cu->residentWaves(), 1u);

    for (int round = 0; round < 50 && waveRetirements == 0; ++round) {
        engine.run();
        answerAll();
    }
    engine.run();
    EXPECT_EQ(waveRetirements, 1);
    EXPECT_EQ(cu->residentWaves(), 0u);
    EXPECT_EQ(cu->instructions(), 3u);
}

TEST_F(CuFixture, SlotsLimitResidency)
{
    auto cu = makeCu();
    StubKernel kernel;
    for (std::uint32_t w = 0; w < 4; ++w)
        cu->startWavefront(WaveDesc{&kernel, 0, w, 1});
    EXPECT_FALSE(cu->hasFreeSlot());
    EXPECT_DEATH(cu->startWavefront(WaveDesc{&kernel, 1, 0, 1}),
                 "no free wavefront slot");
}

TEST_F(CuFixture, L1CachesRepeatAccesses)
{
    auto cu = makeCu();
    StubKernel kernel;
    kernel.instrs = 1;
    cu->startWavefront(WaveDesc{&kernel, 0, 0, 1});
    for (int round = 0; round < 50 && waveRetirements == 0; ++round) {
        engine.run();
        answerAll();
    }
    const std::uint64_t first_misses = cu->l1().readMisses();
    EXPECT_GT(first_misses, 0u);

    // The same wavefront's addresses again: all hits.
    waveRetirements = 0;
    cu->startWavefront(WaveDesc{&kernel, 0, 0, 1});
    for (int round = 0; round < 50 && waveRetirements == 0; ++round) {
        engine.run();
        answerAll();
    }
    EXPECT_EQ(cu->l1().readMisses(), first_misses);
    EXPECT_GT(cu->l1().readHits(), 0u);
}

TEST_F(CuFixture, MultipleWavesInterleave)
{
    auto cu = makeCu();
    StubKernel kernel;
    for (std::uint32_t w = 0; w < 4; ++w)
        cu->startWavefront(WaveDesc{&kernel, 0, w, 1});
    for (int round = 0; round < 200 && waveRetirements < 4; ++round) {
        engine.run();
        answerAll();
    }
    engine.run();
    EXPECT_EQ(waveRetirements, 4);
    EXPECT_EQ(cu->instructions(), 12u);
}

TEST_F(CuFixture, FillRequestsCarrySpans)
{
    auto cu = makeCu();
    StubKernel kernel;
    kernel.instrs = 1;
    cu->startWavefront(WaveDesc{&kernel, 0, 0, 1});
    engine.run();
    ASSERT_FALSE(fills.empty());
    for (const auto &req : fills) {
        EXPECT_EQ(req.line % kCacheLineBytes, 0u);
        EXPECT_GT(req.bytes, 0u);
        EXPECT_FALSE(req.isWrite);
    }
}

} // namespace
} // namespace netcrafter::gpu
