/** @file Tests for MultiGpuSystem APIs beyond the end-to-end suite. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/gpu/system.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::gpu {
namespace {

config::SystemConfig
tiny()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.cusPerGpu = 4;
    cfg.maxWavesPerCu = 2;
    return cfg;
}

TEST(MultiGpuSystem, DumpStatsCoversSubsystems)
{
    auto wl = workloads::makeWorkload("SPMV");
    MultiGpuSystem sys(tiny());
    sys.run(*wl, 0.2);

    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"system.cycles", "system.instructions",
          "network.interClusterFlits", "gpu0.l1.readMisses",
          "gpu3.l2.accesses", "gpu0.gmmu.walks", "gpu2.dram.bytes",
          "gpu1.l2tlb.misses"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(MultiGpuSystem, DumpStatsIncludesControllersWhenEnabled)
{
    config::SystemConfig cfg = config::netcrafterConfig();
    cfg.cusPerGpu = 4;
    cfg.maxWavesPerCu = 2;
    auto wl = workloads::makeWorkload("GUPS");
    MultiGpuSystem sys(cfg);
    sys.run(*wl, 0.2);

    std::ostringstream os;
    sys.dumpStats(os);
    EXPECT_NE(os.str().find("netcrafter.0to1.flitsEjected"),
              std::string::npos);
    EXPECT_NE(os.str().find("netcrafter.1to0.trimmedPackets"),
              std::string::npos);
}

TEST(MultiGpuSystem, PlacementDirectoryFeedsPageTable)
{
    MultiGpuSystem sys(tiny());
    sys.place(0x9'0000'0000ull, 3);
    EXPECT_EQ(sys.pageTable().dataOwner(0x9'0000'0000ull), 3u);
}

TEST(MultiGpuSystem, LocalAndRemoteReadsBothHappen)
{
    auto wl = workloads::makeWorkload("SPMV");
    MultiGpuSystem sys(tiny());
    sys.run(*wl, 0.2);
    EXPECT_GT(sys.localReads(), 0u);
    EXPECT_GT(sys.remoteReads(), 0u);
    EXPECT_GT(sys.pageWalks(), 0u);
    EXPECT_GE(sys.meanWalkLength(), 1.0);
    EXPECT_LE(sys.meanWalkLength(), 4.0);
}

TEST(MultiGpuSystem, ThreadInstructionsScaleByWavefront)
{
    auto wl = workloads::makeWorkload("BS");
    MultiGpuSystem sys(tiny());
    sys.run(*wl, 0.2);
    EXPECT_EQ(sys.threadInstructions(),
              sys.totalInstructions() * kWavefrontSize);
}

TEST(MultiGpuSystem, CycleLimitIsFatal)
{
    auto wl = workloads::makeWorkload("GUPS");
    MultiGpuSystem sys(tiny());
    EXPECT_EXIT(sys.run(*wl, 0.2, /*max_cycles=*/10),
                ::testing::ExitedWithCode(1), "cycle limit");
}

} // namespace
} // namespace netcrafter::gpu
