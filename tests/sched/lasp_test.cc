/** @file Unit tests for LASP placement and CTA scheduling. */

#include <gtest/gtest.h>

#include <map>

#include "src/sched/lasp.hh"

namespace netcrafter::sched {
namespace {

struct RecordingPlacement : workloads::PlacementDirectory
{
    std::map<Addr, GpuId> pages;

    void
    place(Addr vaddr, GpuId owner) override
    {
        pages[pageAddr(vaddr)] = owner;
    }
};

TEST(Lasp, ChunkedPlacementSplitsEvenly)
{
    RecordingPlacement rec;
    const Addr base = 0x1'0000'0000ull;
    const std::uint64_t bytes = 16 * kPageBytes;
    placeBuffer(rec, base, bytes, BufferPattern::Chunked, 4);
    ASSERT_EQ(rec.pages.size(), 16u);
    // First quarter on GPU 0, last quarter on GPU 3.
    EXPECT_EQ(rec.pages[base], 0u);
    EXPECT_EQ(rec.pages[base + 3 * kPageBytes], 0u);
    EXPECT_EQ(rec.pages[base + 4 * kPageBytes], 1u);
    EXPECT_EQ(rec.pages[base + 15 * kPageBytes], 3u);
}

TEST(Lasp, InterleavedPlacementRoundRobins)
{
    RecordingPlacement rec;
    const Addr base = 0x2'0000'0000ull;
    placeBuffer(rec, base, 8 * kPageBytes, BufferPattern::Interleaved,
                4);
    for (std::uint64_t p = 0; p < 8; ++p)
        EXPECT_EQ(rec.pages[base + p * kPageBytes], p % 4);
}

TEST(Lasp, SharedPlacementPinsToOneGpu)
{
    RecordingPlacement rec;
    const Addr base = 0x3'0000'0000ull;
    placeBuffer(rec, base, 4 * kPageBytes, BufferPattern::Shared, 4, 2);
    for (std::uint64_t p = 0; p < 4; ++p)
        EXPECT_EQ(rec.pages[base + p * kPageBytes], 2u);
}

TEST(Lasp, PartialPagesStillPlaced)
{
    RecordingPlacement rec;
    placeBuffer(rec, 0x4'0000'0000ull, 100, BufferPattern::Chunked, 4);
    EXPECT_EQ(rec.pages.size(), 1u);
}

TEST(Lasp, BlockHomeDistributesCtas)
{
    // 16 CTAs over 4 GPUs: 4 per GPU.
    EXPECT_EQ(blockHome(0, 16, 4), 0u);
    EXPECT_EQ(blockHome(3, 16, 4), 0u);
    EXPECT_EQ(blockHome(4, 16, 4), 1u);
    EXPECT_EQ(blockHome(15, 16, 4), 3u);
}

TEST(Lasp, BlockHomeClampsTail)
{
    // 5 CTAs over 4 GPUs: per-GPU ceil = 2; CTA 4 -> GPU 2 (valid).
    EXPECT_LT(blockHome(4, 5, 4), 4u);
    // Degenerate: more GPUs than CTAs.
    EXPECT_EQ(blockHome(0, 1, 4), 0u);
}

TEST(Lasp, ChunkedAlignsWithBlockHome)
{
    // A CTA reading "its" chunk of a chunked buffer lands on the same
    // GPU the pages were placed on.
    RecordingPlacement rec;
    const Addr base = 0x5'0000'0000ull;
    const std::uint32_t num_ctas = 16;
    const std::uint64_t bytes = num_ctas * kPageBytes;
    placeBuffer(rec, base, bytes, BufferPattern::Chunked, 4);
    for (std::uint32_t cta = 0; cta < num_ctas; ++cta) {
        const Addr cta_page = base + cta * kPageBytes;
        EXPECT_EQ(rec.pages[cta_page], blockHome(cta, num_ctas, 4))
            << "cta " << cta;
    }
}

} // namespace
} // namespace netcrafter::sched
