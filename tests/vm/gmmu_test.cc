/** @file Unit tests for the GMMU, page walk cache, and walkers. */

#include <gtest/gtest.h>

#include <deque>

#include "src/sim/engine.hh"
#include "src/vm/gmmu.hh"

namespace netcrafter::vm {
namespace {

struct GmmuFixture : ::testing::Test
{
    sim::Engine engine;
    GmmuParams params;
    PageTable pt{4};
    std::deque<std::pair<WalkStep, std::function<void()>>> fetches;

    Gmmu::PteFetchFn
    fetcher()
    {
        return [this](const WalkStep &s, std::function<void()> done) {
            fetches.emplace_back(s, std::move(done));
        };
    }

    void
    answerAll()
    {
        while (!fetches.empty()) {
            auto [step, done] = std::move(fetches.front());
            fetches.pop_front();
            done();
        }
    }
};

TEST_F(GmmuFixture, ColdWalkTakesFourFetches)
{
    Gmmu gmmu(engine, "gmmu", params, pt, fetcher());
    bool done = false;
    gmmu.walk(0x100000, [&](Translation) { done = true; });
    engine.run();
    int fetched = 0;
    while (!done && fetched < 10) {
        ASSERT_FALSE(fetches.empty());
        answerAll();
        engine.run();
        ++fetched;
    }
    EXPECT_TRUE(done);
    EXPECT_EQ(gmmu.pteFetches(), 4u);
    EXPECT_DOUBLE_EQ(gmmu.meanWalkLength(), 4.0);
}

TEST_F(GmmuFixture, PwcShortensRepeatWalks)
{
    Gmmu gmmu(engine, "gmmu", params, pt, fetcher());
    bool done = false;
    gmmu.walk(0x100000, [&](Translation) { done = true; });
    for (int i = 0; i < 10 && !done; ++i) {
        engine.run();
        answerAll();
    }
    engine.run();
    ASSERT_TRUE(done);

    // A neighbouring page in the same 2MB region: levels 1-3 hit the
    // PWC; only the leaf PTE must be fetched.
    const std::uint64_t before = gmmu.pteFetches();
    done = false;
    gmmu.walk(0x100001, [&](Translation) { done = true; });
    for (int i = 0; i < 10 && !done; ++i) {
        engine.run();
        answerAll();
    }
    engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(gmmu.pteFetches() - before, 1u);
}

TEST_F(GmmuFixture, ConcurrentWalksForSameVpnMerge)
{
    Gmmu gmmu(engine, "gmmu", params, pt, fetcher());
    int done = 0;
    for (int i = 0; i < 3; ++i)
        gmmu.walk(0x200000, [&](Translation) { ++done; });
    for (int i = 0; i < 10 && done < 3; ++i) {
        engine.run();
        answerAll();
    }
    engine.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(gmmu.walksStarted(), 1u);
}

TEST_F(GmmuFixture, WalkerPoolBoundsParallelism)
{
    params.walkers = 2;
    Gmmu gmmu(engine, "gmmu", params, pt, fetcher());
    int done = 0;
    // Distinct regions: no PWC sharing.
    for (int i = 0; i < 5; ++i) {
        gmmu.walk((0x100ull + i) << 21 >> 12,
                  [&](Translation) { ++done; });
    }
    engine.run();
    // Only two walks active: at most two outstanding fetches.
    EXPECT_LE(fetches.size(), 2u);
    for (int i = 0; i < 40 && done < 5; ++i) {
        answerAll();
        engine.run();
    }
    EXPECT_EQ(done, 5);
}

TEST_F(GmmuFixture, TranslationReturnsDataOwner)
{
    pt.place(0x1'0000'0000ull, 3);
    Gmmu gmmu(engine, "gmmu", params, pt, fetcher());
    GpuId owner = 99;
    gmmu.walk(0x1'0000'0000ull / kPageBytes,
              [&](Translation t) { owner = t.owner; });
    for (int i = 0; i < 10 && owner == 99; ++i) {
        engine.run();
        answerAll();
    }
    engine.run();
    EXPECT_EQ(owner, 3u);
}

TEST(PageWalkCache, LruEvictsOldEntries)
{
    PageWalkCache pwc(2);
    pwc.insert(3, 0x1ull << 21);
    pwc.insert(3, 0x2ull << 21);
    EXPECT_EQ(pwc.deepestMatch(0x1ull << 21), 3);
    // Insert a third: evicts the LRU (0x2 region, since 0x1 was just
    // touched by the lookup above).
    pwc.insert(3, 0x3ull << 21);
    EXPECT_EQ(pwc.deepestMatch(0x2ull << 21), 0);
    EXPECT_EQ(pwc.deepestMatch(0x1ull << 21), 3);
}

TEST(PageWalkCache, DeepestMatchPrefersLowerLevels)
{
    PageWalkCache pwc(8);
    const Addr va = 0x1'2345'6000ull;
    pwc.insert(1, va);
    EXPECT_EQ(pwc.deepestMatch(va), 1);
    pwc.insert(2, va);
    EXPECT_EQ(pwc.deepestMatch(va), 2);
    pwc.insert(3, va);
    EXPECT_EQ(pwc.deepestMatch(va), 3);
}

} // namespace
} // namespace netcrafter::vm
