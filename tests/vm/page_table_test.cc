/** @file Unit tests for the radix page table and PTE placement. */

#include <gtest/gtest.h>

#include "src/vm/page_table.hh"

namespace netcrafter::vm {
namespace {

TEST(PageTable, PlacementIsPerPage)
{
    PageTable pt(4);
    pt.place(0x1'0000'0000ull, 2);
    EXPECT_EQ(pt.dataOwner(0x1'0000'0000ull), 2u);
    EXPECT_EQ(pt.dataOwner(0x1'0000'0FFFull), 2u); // same 4K page
    EXPECT_TRUE(pt.isPlaced(0x1'0000'0000ull));
    EXPECT_FALSE(pt.isPlaced(0x1'0000'1000ull));
}

TEST(PageTable, UnplacedPagesInterleave)
{
    PageTable pt(4);
    const GpuId o0 = pt.dataOwner(0x2'0000'0000ull);
    const GpuId o1 = pt.dataOwner(0x2'0000'1000ull);
    const GpuId o2 = pt.dataOwner(0x2'0000'2000ull);
    EXPECT_LT(o0, 4u);
    // Consecutive pages round-robin.
    EXPECT_EQ((o0 + 1) % 4, o1);
    EXPECT_EQ((o1 + 1) % 4, o2);
}

TEST(PageTable, LeafPtePageCoLocatedWithFirstDataPage)
{
    PageTable pt(4);
    const Addr region_base = 0x1'0000'0000ull; // 2MB-aligned
    pt.place(region_base, 3);
    // Later placements in the same 2MB region do not move the PTE page.
    pt.place(region_base + kPageBytes, 1);

    WalkStep leaf = pt.step(kPageTableLevels, region_base);
    EXPECT_EQ(leaf.owner, 3u);
    WalkStep leaf2 =
        pt.step(kPageTableLevels, region_base + 5 * kPageBytes);
    EXPECT_EQ(leaf2.owner, 3u); // same region -> same PTE page owner
}

TEST(PageTable, StepsHaveDistinctAddressesPerLevel)
{
    PageTable pt(4);
    const Addr va = 0x1'2345'6000ull;
    std::set<Addr> addrs;
    for (int level = 1; level <= kPageTableLevels; ++level) {
        WalkStep s = pt.step(level, va);
        EXPECT_GE(s.pteAddr, kPteRegionBase);
        EXPECT_LT(s.owner, 4u);
        addrs.insert(s.pteAddr);
    }
    EXPECT_EQ(addrs.size(), 4u);
}

TEST(PageTable, NeighbouringPagesSharePteCacheLine)
{
    PageTable pt(4);
    const Addr va = 0x1'0000'0000ull;
    WalkStep a = pt.step(kPageTableLevels, va);
    WalkStep b = pt.step(kPageTableLevels, va + kPageBytes);
    EXPECT_EQ(b.pteAddr - a.pteAddr, kPteBytes);
    EXPECT_EQ(lineAddr(a.pteAddr), lineAddr(b.pteAddr));
}

TEST(PageTable, PrefixShiftsNineBitsPerLevel)
{
    const Addr va = 0x0000'7FFF'FFFF'F000ull;
    EXPECT_EQ(PageTable::prefix(4, va), va >> 12);
    EXPECT_EQ(PageTable::prefix(3, va), va >> 21);
    EXPECT_EQ(PageTable::prefix(2, va), va >> 30);
    EXPECT_EQ(PageTable::prefix(1, va), va >> 39);
}

TEST(PageTable, DistinctRegionsGetDistinctLeafPages)
{
    PageTable pt(4);
    const Addr va1 = 0x1'0000'0000ull;
    const Addr va2 = va1 + (2ull << 20); // next 2MB region
    WalkStep a = pt.step(kPageTableLevels, va1);
    WalkStep b = pt.step(kPageTableLevels, va2);
    // 512 PTEs apart.
    EXPECT_EQ(b.pteAddr - a.pteAddr, 512 * kPteBytes);
}

TEST(PageTable, BadLevelPanics)
{
    PageTable pt(4);
    EXPECT_DEATH(pt.step(0, 0x1000), "bad page table level");
    EXPECT_DEATH(pt.step(5, 0x1000), "bad page table level");
}

} // namespace
} // namespace netcrafter::vm
