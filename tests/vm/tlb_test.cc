/** @file Unit tests for the TLB levels. */

#include <gtest/gtest.h>

#include <deque>

#include "src/sim/engine.hh"
#include "src/vm/tlb.hh"

namespace netcrafter::vm {
namespace {

struct TlbFixture : ::testing::Test
{
    sim::Engine engine;
    TlbParams params;
    std::deque<std::pair<Addr, Tlb::Callback>> misses;

    Tlb::MissHandler
    handler()
    {
        return [this](Addr vpn, Tlb::Callback done) {
            misses.emplace_back(vpn, std::move(done));
        };
    }

    void
    answer(GpuId owner)
    {
        ASSERT_FALSE(misses.empty());
        auto [vpn, done] = std::move(misses.front());
        misses.pop_front();
        done(Translation{owner});
    }
};

TEST_F(TlbFixture, MissFillsAndHits)
{
    Tlb tlb(engine, "tlb", params, handler());
    GpuId got = 99;
    tlb.access(0x100, [&](Translation t) { got = t.owner; });
    engine.run();
    ASSERT_EQ(misses.size(), 1u);
    EXPECT_EQ(misses.front().first, 0x100u);
    answer(2);
    engine.run();
    EXPECT_EQ(got, 2u);
    EXPECT_TRUE(tlb.contains(0x100));

    // Now a hit: no new miss below.
    got = 99;
    tlb.access(0x100, [&](Translation t) { got = t.owner; });
    engine.run();
    EXPECT_EQ(got, 2u);
    EXPECT_TRUE(misses.empty());
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST_F(TlbFixture, HitLatencyMatchesLookup)
{
    params.lookupLatency = 7;
    Tlb tlb(engine, "tlb", params, handler());
    tlb.insert(0x5, Translation{1});
    Tick done = 0;
    tlb.access(0x5, [&](Translation) { done = engine.now(); });
    engine.run();
    EXPECT_EQ(done, 7u);
}

TEST_F(TlbFixture, ConcurrentMissesMerge)
{
    Tlb tlb(engine, "tlb", params, handler());
    int done = 0;
    for (int i = 0; i < 5; ++i)
        tlb.access(0x42, [&](Translation) { ++done; });
    engine.run();
    EXPECT_EQ(misses.size(), 1u);
    answer(0);
    engine.run();
    EXPECT_EQ(done, 5);
}

TEST_F(TlbFixture, MshrBoundQueuesExcessMisses)
{
    params.mshrEntries = 2;
    Tlb tlb(engine, "tlb", params, handler());
    int done = 0;
    for (Addr vpn = 1; vpn <= 4; ++vpn)
        tlb.access(vpn, [&](Translation) { ++done; });
    engine.run();
    // Only two misses issued below; two queued.
    EXPECT_EQ(misses.size(), 2u);
    EXPECT_EQ(tlb.mshrQueued(), 2u);
    answer(0);
    answer(0);
    engine.run();
    EXPECT_EQ(misses.size(), 2u); // the queued pair advanced
    answer(0);
    answer(0);
    engine.run();
    EXPECT_EQ(done, 4);
}

TEST_F(TlbFixture, LruEvictionWithinSet)
{
    params.entries = 4;
    params.assoc = 4; // fully associative
    Tlb tlb(engine, "tlb", params, handler());
    for (Addr vpn = 0; vpn < 4; ++vpn)
        tlb.insert(vpn, Translation{0});
    tlb.insert(100, Translation{1}); // evicts vpn 0 (LRU)
    EXPECT_FALSE(tlb.contains(0));
    EXPECT_TRUE(tlb.contains(3));
    EXPECT_TRUE(tlb.contains(100));
}

TEST_F(TlbFixture, SetAssociativeMapping)
{
    params.entries = 8;
    params.assoc = 2; // 4 sets
    Tlb tlb(engine, "tlb", params, handler());
    // vpns 0, 4, 8 map to set 0 (2 ways): 0 evicted by 8.
    tlb.insert(0, Translation{0});
    tlb.insert(4, Translation{0});
    tlb.insert(8, Translation{0});
    EXPECT_FALSE(tlb.contains(0));
    EXPECT_TRUE(tlb.contains(4));
    EXPECT_TRUE(tlb.contains(8));
    // Other sets untouched.
    tlb.insert(1, Translation{0});
    EXPECT_TRUE(tlb.contains(1));
}

TEST_F(TlbFixture, InsertUpdatesExistingEntry)
{
    Tlb tlb(engine, "tlb", params, handler());
    tlb.insert(0x9, Translation{1});
    tlb.insert(0x9, Translation{3});
    GpuId got = 99;
    tlb.access(0x9, [&](Translation t) { got = t.owner; });
    engine.run();
    EXPECT_EQ(got, 3u);
}

} // namespace
} // namespace netcrafter::vm
