/** @file Tests for the rate-limited NC_WARN_ONCE path. */

#include <gtest/gtest.h>

#include "src/sim/logging.hh"

namespace netcrafter {
namespace {

TEST(WarnOnce, FirstHitWarnsLaterHitsAreCounted)
{
    const std::uint64_t before = suppressedWarnCount();
    for (int i = 0; i < 5; ++i)
        NC_WARN_ONCE("warn-once test message ", i);
    // One printed, four suppressed. The counter is process-wide, so
    // compare deltas rather than absolute values.
    EXPECT_EQ(suppressedWarnCount() - before, 4u);
}

TEST(WarnOnce, EachCallSiteHasItsOwnCounter)
{
    const std::uint64_t before = suppressedWarnCount();
    // A fresh call site: its first hit prints rather than counting,
    // regardless of how often other sites have fired.
    auto site = [] { NC_WARN_ONCE("warn-once second call site"); };
    site();
    EXPECT_EQ(suppressedWarnCount() - before, 0u);
    site();
    EXPECT_EQ(suppressedWarnCount() - before, 1u);
}

} // namespace
} // namespace netcrafter
