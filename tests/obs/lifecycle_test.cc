/** @file Tests for packet-lifecycle folding into the stats registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/json_validate.hh"
#include "src/obs/lifecycle.hh"

namespace netcrafter::obs {
namespace {

TraceRecord
stageRec(Tick tick, TraceStage stage, std::uint16_t lane,
         std::uint64_t id, std::uint32_t a = 0, std::uint32_t b = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.id = id;
    r.a = a;
    r.b = b;
    r.lane = lane;
    r.stage = static_cast<std::uint8_t>(stage);
    return r;
}

TEST(Lifecycle, FoldsLatencyPairsAndStageCounters)
{
    std::vector<TraceRecord> records = {
        stageRec(100, TraceStage::RdmaInject, 1, 7),
        stageRec(110, TraceStage::WireDepart, 2, 7, packFlitBytes(32, 24),
                 packFlitSeq(0, 0)),
        stageRec(150, TraceStage::WireArrive, 2, 7, packFlitBytes(32, 24),
                 packFlitSeq(0, 0)),
        stageRec(200, TraceStage::WalkStart, 3, 0x40),
        // Waiter-merged second walk on the same vpn: FIFO pairing.
        stageRec(210, TraceStage::WalkStart, 3, 0x40),
        stageRec(260, TraceStage::WalkEnd, 3, 0x40),
        stageRec(300, TraceStage::WalkEnd, 3, 0x40),
        stageRec(400, TraceStage::Complete, 1, 7, /*rsp flight=*/55),
    };

    stats::Registry reg;
    foldLifecycle(records, reg);

    EXPECT_EQ(reg.counters().at("obs.stage.rdmaInject").value(), 1u);
    EXPECT_EQ(reg.counters().at("obs.stage.wireDepart").value(), 1u);
    EXPECT_EQ(reg.counters().at("obs.stage.walkStart").value(), 2u);
    EXPECT_EQ(reg.counters().at("obs.stage.complete").value(), 1u);

    const auto &wire = reg.distributions().at("obs.wireFlightCycles");
    EXPECT_EQ(wire.total(), 1u); // one 40-cycle flight
    const auto &walks = reg.distributions().at("obs.walkCycles");
    EXPECT_EQ(walks.total(), 2u); // 60 and 90 cycles, FIFO-matched
    const auto &rtt = reg.distributions().at("obs.requestRoundTripCycles");
    EXPECT_EQ(rtt.total(), 1u); // inject@100 -> complete@400
    const auto &rsp = reg.distributions().at("obs.responseFlightCycles");
    EXPECT_EQ(rsp.total(), 1u);
}

TEST(Lifecycle, UnmatchedRecordsAreIgnoredNotFatal)
{
    std::vector<TraceRecord> records = {
        stageRec(10, TraceStage::WireArrive, 2, 1, 0, 0), // no depart
        stageRec(20, TraceStage::WalkEnd, 3, 9),          // no start
        stageRec(30, TraceStage::Complete, 1, 5, 12),     // no inject
    };
    stats::Registry reg;
    foldLifecycle(records, reg);
    EXPECT_EQ(reg.distributions().at("obs.wireFlightCycles").total(), 0u);
    EXPECT_EQ(reg.distributions().at("obs.walkCycles").total(), 0u);
    EXPECT_EQ(reg.distributions()
                  .at("obs.requestRoundTripCycles")
                  .total(),
              0u);
    // The orphan Complete still reports its response-flight latency.
    EXPECT_EQ(reg.distributions().at("obs.responseFlightCycles").total(),
              1u);
}

TEST(Lifecycle, RegistryJsonIsParseable)
{
    std::vector<TraceRecord> records = {
        stageRec(100, TraceStage::RdmaInject, 1, 7),
        stageRec(400, TraceStage::Complete, 1, 7, 55),
    };
    stats::Registry reg;
    foldLifecycle(records, reg);
    std::ostringstream os;
    writeRegistryJson(reg, os);

    std::string error;
    JsonValue root;
    ASSERT_TRUE(parseJson(os.str(), root, &error)) << error;
    ASSERT_TRUE(root.isObject());
    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("obs.stage.complete"), nullptr);
    const JsonValue *dists = root.find("distributions");
    ASSERT_NE(dists, nullptr);
    EXPECT_NE(dists->find("obs.requestRoundTripCycles"), nullptr);
}

} // namespace
} // namespace netcrafter::obs
