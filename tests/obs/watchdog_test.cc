/**
 * @file
 * Watchdog tests: the no-progress trigger driven by an injectable fake
 * host clock (no sleeps), the flight-recorder dump naming the stuck
 * shard and barrier round, and the abort-on-trigger death path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/gpu/system.hh"
#include "src/obs/watchdog.hh"
#include "src/workloads/workload.hh"

namespace netcrafter {
namespace {

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.is_open()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(Watchdog, FiresOnceAfterTheQuietPeriodAndDumps)
{
    const std::filesystem::path dump =
        std::filesystem::path(::testing::TempDir()) / "watchdog.txt";
    std::filesystem::remove(dump);

    double now = 0;
    std::uint64_t progress = 1;
    obs::Watchdog::Options opts;
    opts.noProgressSecs = 5.0;
    opts.dumpPath = dump.string();
    obs::Watchdog dog(
        opts, [&] { return now; }, [&] { return progress; },
        [](std::ostream &os) { os << "FLIGHT-RECORD-BODY\n"; });

    EXPECT_FALSE(dog.poll()); // baseline sample
    now = 3;
    EXPECT_FALSE(dog.poll()); // idle 3s < 5s
    now = 4;
    progress = 2; // forward progress resets the fuse
    EXPECT_FALSE(dog.poll());
    now = 8;
    EXPECT_FALSE(dog.poll()); // idle 4s since the reset
    EXPECT_DOUBLE_EQ(dog.idleSeconds(), 4.0);
    now = 10;
    EXPECT_TRUE(dog.poll()); // idle 6s >= 5s: fire
    EXPECT_TRUE(dog.triggered());
    now = 100;
    EXPECT_FALSE(dog.poll()); // at most once per watchdog

    const std::string record = slurp(dump);
    EXPECT_NE(record.find("NetCrafter watchdog"), std::string::npos);
    EXPECT_NE(record.find("no simulation progress for 6"),
              std::string::npos);
    EXPECT_NE(record.find("FLIGHT-RECORD-BODY"), std::string::npos);
}

TEST(Watchdog, ZeroProgressMeansNotStartedAndNeverFires)
{
    double now = 0;
    obs::Watchdog::Options opts;
    opts.noProgressSecs = 1.0;
    obs::Watchdog dog(
        opts, [&] { return now; }, [] { return std::uint64_t{0}; },
        obs::Watchdog::DumpFn{});
    for (now = 0; now < 1000; now += 100)
        EXPECT_FALSE(dog.poll());
    EXPECT_FALSE(dog.triggered());
}

TEST(WatchdogDeathTest, AbortOnTriggerDiesAfterTheDump)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            double now = 0;
            obs::Watchdog::Options opts;
            opts.noProgressSecs = 1.0;
            opts.abortOnTrigger = true;
            obs::Watchdog dog(
                opts, [&] { return now; },
                [] { return std::uint64_t{7}; },
                obs::Watchdog::DumpFn{});
            dog.poll(); // baseline
            now = 2;
            dog.poll(); // fires and aborts
            std::_Exit(0); // unreachable: fail the expectation loudly
        },
        "watchdog: aborting");
}

config::SystemConfig
tinyMeshConfig()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    return cfg;
}

TEST(WatchdogDeathTest, FlightRecordNamesTheStuckShardAndRound)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::filesystem::path path =
        std::filesystem::path(::testing::TempDir()) /
        "flight-record.txt";
    std::filesystem::remove(path);

    // Abort a 2-shard run mid-flight (undersized cycle cap), snapshot
    // the flight record while the backlog is still pending, then let
    // the teardown census kill the child — an aborted sharded system
    // must never be destroyed in the parent process.
    EXPECT_DEATH(
        {
            gpu::MultiGpuSystem system(tinyMeshConfig(), 2);
            auto wl = workloads::makeWorkload("GUPS");
            const sim::RunStatus status =
                system.runFor(*wl, 0.34, /*max_cycles=*/500);
            if (status == sim::RunStatus::Drained)
                std::_Exit(0); // mis-calibrated cap: fail loudly
            {
                std::ofstream os(path);
                system.engines().dumpFlightRecord(os);
            }
            system.auditTeardown(); // NC_PANIC: dies here
            std::_Exit(0);
        },
        "teardown census");

    const std::string record = slurp(path);
    EXPECT_NE(record.find("flight record: 2 shard(s)"),
              std::string::npos)
        << record;
    EXPECT_NE(record.find("shard 0:"), std::string::npos) << record;
    EXPECT_NE(record.find("shard 1:"), std::string::npos) << record;
    EXPECT_NE(record.find("suspect: shard"), std::string::npos)
        << record;
    EXPECT_NE(record.find("barrier round"), std::string::npos)
        << record;
}

} // namespace
} // namespace netcrafter
