/**
 * @file
 * Live-telemetry tests: heartbeat/profiling/watchdog sampling must not
 * perturb the measurement at any shard count or steal policy, the
 * NDJSON heartbeat stream must be schema-clean, the self-profiling
 * phase columns must fill once armed, and the new export columns must
 * land at the end of the header.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/exp/export.hh"
#include "src/harness/runner.hh"
#include "src/obs/json_validate.hh"
#include "src/obs/progress_board.hh"
#include "src/obs/telemetry.hh"

namespace netcrafter {
namespace {

constexpr double kTinyScale = 0.34;

config::SystemConfig
tinyMeshConfig()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    return cfg;
}

/** Every line of the heartbeat file parses and carries the schema's
 *  required fields; returns the record count. */
std::size_t
validateHeartbeatFile(const std::filesystem::path &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.is_open()) << path;
    std::size_t records = 0;
    double last_seq = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        ++records;
        std::string error;
        obs::JsonValue root;
        EXPECT_TRUE(obs::parseJson(line, root, &error))
            << "record " << records << ": " << error;
        EXPECT_TRUE(root.isObject());
        const obs::JsonValue *seq = root.find("seq");
        EXPECT_TRUE(seq != nullptr && seq->isNumber());
        if (seq != nullptr && seq->isNumber()) {
            EXPECT_GT(seq->number, last_seq);
            last_seq = seq->number;
        }
        for (const char *key :
             {"host_seconds", "events", "backlog"}) {
            const obs::JsonValue *v = root.find(key);
            EXPECT_TRUE(v != nullptr && v->isNumber()) << key;
        }
        const obs::JsonValue *runs = root.find("runs");
        EXPECT_TRUE(runs != nullptr && runs->isArray());
        const obs::JsonValue *phases = root.find("phases");
        EXPECT_TRUE(phases != nullptr && phases->isObject());
        if (phases != nullptr && phases->isObject()) {
            for (unsigned p = 0; p < obs::kPhaseCount; ++p) {
                EXPECT_NE(phases->find(obs::phaseName(
                              static_cast<obs::Phase>(p))),
                          nullptr);
            }
        }
    }
    return records;
}

TEST(TelemetrySharded, HeartbeatSamplingDoesNotPerturbTheMeasurement)
{
    const config::SystemConfig cfg = tinyMeshConfig();
    const std::string app = "GUPS";

    // Baselines with the sampler off.
    ASSERT_FALSE(obs::Telemetry::instance().running());
    const harness::RunResult off1 =
        harness::runWorkload(app, cfg, kTinyScale, 1);
    const harness::RunResult off2 =
        harness::runWorkload(app, cfg, kTinyScale, 2);
    EXPECT_TRUE(sameMeasurement(off1, off2));
    EXPECT_EQ(off1.phaseExecuteSeconds, 0.0); // profiling unarmed

    const std::filesystem::path heartbeat =
        std::filesystem::path(::testing::TempDir()) /
        "telemetry-test.ndjson";
    std::filesystem::remove(heartbeat);

    obs::TelemetryOptions opts;
    opts.heartbeatPath = heartbeat.string();
    opts.intervalMs = 10;
    obs::Telemetry::instance().start(opts);
    ASSERT_TRUE(obs::Telemetry::instance().running());

    // Same point at 1/2/4 shards with the sampler attached, plus a
    // 4-shard run with work stealing forced on (multiplexed so steals
    // actually migrate units).
    const harness::RunResult on1 =
        harness::runWorkload(app, cfg, kTinyScale, 1);
    const harness::RunResult on2 =
        harness::runWorkload(app, cfg, kTinyScale, 2);
    const harness::RunResult on4 =
        harness::runWorkload(app, cfg, kTinyScale, 4);
    const harness::RunResult on4_steal = harness::runWorkload(
        app, cfg, kTinyScale, 4, obs::TraceOptions{},
        sim::ExecPolicy{2, true, 1});

    obs::Telemetry::instance().stop();
    ASSERT_FALSE(obs::Telemetry::instance().running());

    EXPECT_TRUE(sameMeasurement(off1, on1));
    EXPECT_TRUE(sameMeasurement(off1, on2));
    EXPECT_TRUE(sameMeasurement(off1, on4));
    EXPECT_TRUE(sameMeasurement(off1, on4_steal));

    // A running sampler arms host-time self-profiling: the execute
    // phase accumulates real host time (diagnostics, not measurement).
    EXPECT_GT(on1.phaseExecuteSeconds, 0.0);
    EXPECT_GT(on2.phaseExecuteSeconds, 0.0);
    EXPECT_GT(on2.phaseBarrierWaitSeconds, 0.0);

    // stop() emits a final heartbeat even for sub-interval runs, and
    // every record in the stream is schema-clean.
    EXPECT_GE(obs::Telemetry::instance().heartbeats(), 1u);
    EXPECT_GE(validateHeartbeatFile(heartbeat), 1u);
}

TEST(TelemetrySharded, ProfileEnvArmsThePhaseClocks)
{
    // NETCRAFTER_PROFILE / tracing also arm profiling without the
    // sampler; exercised here via the tracing path (in-memory only).
    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Packets;
    const harness::RunResult traced = harness::runWorkload(
        "GUPS", tinyMeshConfig(), kTinyScale, 2, trace);
    EXPECT_GT(traced.phaseExecuteSeconds, 0.0);
    EXPECT_GT(traced.phaseExportSeconds, 0.0);
}

TEST(TelemetryExport, NewColumnsAppendAtTheEndOfTheHeader)
{
    std::ostringstream os;
    exp::writeCsv({}, os);
    const std::string header =
        os.str().substr(0, os.str().find('\n'));
    EXPECT_NE(header.find("warnings_suppressed"), std::string::npos);
    EXPECT_TRUE(header.find(
                    "warnings_suppressed,phase_execute_seconds,"
                    "phase_barrier_wait_seconds,phase_ingress_seconds,"
                    "phase_steal_scan_seconds,phase_export_seconds,"
                    "sync_mode,skew_bound,max_observed_skew,"
                    "mean_observed_skew,late_arrivals,late_credits,"
                    "late_displacement_ticks,max_late_displacement,"
                    "wire_flits_delivered,wire_bytes_delivered") !=
                std::string::npos)
        << header;
    // Appended at the end: existing prefix-keyed consumers keep
    // working.
    EXPECT_EQ(header.rfind("wire_bytes_delivered"),
              header.size() -
                  std::string("wire_bytes_delivered").size());
    EXPECT_EQ(header.rfind("job,workload,config_digest,scale,cycles"),
              0u);
}

} // namespace
} // namespace netcrafter
