/** @file Tests for per-shard trace buffers, lane interning, and merge. */

#include <gtest/gtest.h>

#include "src/obs/trace_buffer.hh"
#include "src/sim/engine.hh"

namespace netcrafter::obs {
namespace {

TraceRecord
rec(Tick tick, std::uint64_t id, std::uint16_t lane = 1,
    TraceStage stage = TraceStage::WireDepart)
{
    TraceRecord r;
    r.tick = tick;
    r.id = id;
    r.lane = lane;
    r.kind = static_cast<std::uint8_t>(TraceKind::FlitXfer);
    r.stage = static_cast<std::uint8_t>(stage);
    return r;
}

TEST(TraceBuffer, AppendsUpToCapThenCountsDrops)
{
    TraceBuffer buf(TraceLevel::Packets, 2);
    buf.append(rec(1, 10));
    buf.append(rec(2, 11));
    buf.append(rec(3, 12));
    buf.append(rec(4, 13));
    EXPECT_EQ(buf.records().size(), 2u);
    EXPECT_EQ(buf.dropped(), 2u);
    buf.clear();
    EXPECT_TRUE(buf.records().empty());
    EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, LevelGating)
{
    TraceBuffer buf(TraceLevel::Links, 16);
    EXPECT_TRUE(buf.wants(TraceLevel::Links));
    EXPECT_FALSE(buf.wants(TraceLevel::Packets));
    EXPECT_FALSE(buf.wants(TraceLevel::Full));
}

TEST(TraceSink, LaneZeroIsReservedAndInterningIsStable)
{
    TraceOptions opts;
    opts.level = TraceLevel::Links;
    TraceSink sink(opts, 2);
    EXPECT_EQ(sink.laneNames().at(0), "(unknown)");
    const std::uint16_t a = sink.internLane("gpu0.mem");
    const std::uint16_t b = sink.internLane("inter0to1");
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    // Re-interning returns the existing id.
    EXPECT_EQ(sink.internLane("gpu0.mem"), a);
    EXPECT_EQ(sink.laneNames().size(), 3u);
}

TEST(TraceSink, InternLaneHelperReturnsUnknownWithoutSink)
{
    sim::Engine engine;
    EXPECT_EQ(internLane(engine, "anything"), 0u);
}

TEST(Tracepoint, NullBufferAndLevelGate)
{
    sim::Engine engine;
    // No buffer attached: tracepoint is a no-op, not a crash.
    tracepoint(engine, TraceLevel::Links, TraceKind::FlitXfer,
               TraceStage::WireDepart, 1, 42);

    TraceOptions opts;
    opts.level = TraceLevel::Links;
    TraceSink sink(opts, 1);
    engine.setTrace(&sink, &sink.buffer(0));

    tracepoint(engine, TraceLevel::Full, TraceKind::PktStage,
               TraceStage::L2Lookup, 1, 42); // above level: skipped
    tracepoint(engine, TraceLevel::Links, TraceKind::FlitXfer,
               TraceStage::WireDepart, 1, 42, 7, 9); // recorded
    ASSERT_EQ(sink.totalRecords(), 1u);
    const TraceRecord &r = sink.buffer(0).records().front();
    EXPECT_EQ(r.id, 42u);
    EXPECT_EQ(r.a, 7u);
    EXPECT_EQ(r.b, 9u);
    EXPECT_EQ(r.stage, static_cast<std::uint8_t>(TraceStage::WireDepart));
}

// The core shard-invariance property: however records are distributed
// over per-shard buffers, merged() recovers the same canonical stream.
TEST(TraceSink, MergedStreamIsShardInvariant)
{
    TraceOptions opts;
    opts.level = TraceLevel::Full;

    const std::vector<TraceRecord> all = {
        rec(5, 1), rec(1, 2), rec(3, 3), rec(3, 1, 2), rec(9, 4),
        rec(2, 7), rec(2, 6), rec(7, 1), rec(1, 9, 3),
    };

    TraceSink one(opts, 1);
    for (const auto &r : all)
        one.buffer(0).append(r);

    TraceSink four(opts, 4);
    for (std::size_t i = 0; i < all.size(); ++i)
        four.buffer(static_cast<unsigned>(i % 4)).append(all[i]);

    const auto m1 = one.merged();
    const auto m4 = four.merged();
    ASSERT_EQ(m1.size(), all.size());
    ASSERT_EQ(m1.size(), m4.size());
    for (std::size_t i = 0; i < m1.size(); ++i)
        EXPECT_EQ(m1[i], m4[i]) << "record " << i;
    // And the merge is actually sorted by tick.
    for (std::size_t i = 1; i < m1.size(); ++i)
        EXPECT_LE(m1[i - 1].tick, m1[i].tick);
}

TEST(TraceOptions, ParseAndNameRoundTrip)
{
    EXPECT_EQ(TraceOptions::parseLevel("off"), TraceLevel::Off);
    EXPECT_EQ(TraceOptions::parseLevel("links"), TraceLevel::Links);
    EXPECT_EQ(TraceOptions::parseLevel("packets"), TraceLevel::Packets);
    EXPECT_EQ(TraceOptions::parseLevel("full"), TraceLevel::Full);
    EXPECT_STREQ(TraceOptions::levelName(TraceLevel::Packets), "packets");
    TraceOptions opts;
    EXPECT_FALSE(opts.enabled());
    opts.level = TraceLevel::Links;
    EXPECT_TRUE(opts.enabled());
}

} // namespace
} // namespace netcrafter::obs
