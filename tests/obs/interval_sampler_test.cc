/** @file Tests for the interval time-series sampler. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/interval_sampler.hh"

namespace netcrafter::obs {
namespace {

TraceRecord
stageRec(Tick tick, TraceStage stage, std::uint16_t lane,
         std::uint64_t id = 0, std::uint32_t a = 0, std::uint32_t b = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.id = id;
    r.a = a;
    r.b = b;
    r.lane = lane;
    r.kind = static_cast<std::uint8_t>(
        stage == TraceStage::WireDepart ? TraceKind::FlitXfer
                                        : TraceKind::PktStage);
    r.stage = static_cast<std::uint8_t>(stage);
    return r;
}

const std::vector<std::string> kLanes = {"(unknown)", "wire0", "gmmu0"};

TEST(IntervalSampler, EmptyWhenDisabledOrNoRecords)
{
    EXPECT_TRUE(IntervalSampler(0).sample({stageRec(1, TraceStage::WireDepart,
                                                    1)},
                                          kLanes)
                    .empty());
    EXPECT_TRUE(IntervalSampler(100).sample({}, kLanes).empty());
}

TEST(IntervalSampler, DerivesWireColumnsAndPerIntervalDeltas)
{
    std::vector<TraceRecord> records = {
        // interval [0,100): two flits, 32B capacity / 24B used each.
        stageRec(10, TraceStage::WireDepart, 1, 1, packFlitBytes(32, 24),
                 packFlitSeq(1, 0)),
        stageRec(20, TraceStage::WireDepart, 1, 2, packFlitBytes(32, 24),
                 packFlitSeq(0, 1)),
        // interval [200,300): one flit.
        stageRec(250, TraceStage::WireDepart, 1, 3, packFlitBytes(32, 8),
                 packFlitSeq(0, 2)),
    };
    const TimeSeries series = IntervalSampler(100).sample(records, kLanes);
    ASSERT_EQ(series.columns.size(), 4u);
    EXPECT_EQ(series.columns[0], "wire0.flits");
    EXPECT_EQ(series.columns[1], "wire0.wireBytes");
    EXPECT_EQ(series.columns[2], "wire0.usedBytes");
    EXPECT_EQ(series.columns[3], "wire0.stitchedPieces");
    // Rows cover every interval up to the last record, including the
    // empty middle one.
    ASSERT_EQ(series.rows.size(), 3u);
    EXPECT_EQ(series.rows[0].intervalStart, 0u);
    EXPECT_EQ(series.rows[0].values,
              (std::vector<std::uint64_t>{2, 64, 48, 1}));
    EXPECT_EQ(series.rows[1].values,
              (std::vector<std::uint64_t>{0, 0, 0, 0}));
    EXPECT_EQ(series.rows[2].values,
              (std::vector<std::uint64_t>{1, 32, 8, 0}));
}

TEST(IntervalSampler, WalkGaugeCarriesAcrossEmptyIntervals)
{
    std::vector<TraceRecord> records = {
        stageRec(10, TraceStage::WalkStart, 2, 100),
        stageRec(20, TraceStage::WalkStart, 2, 101),
        // Both walks stay in flight across [100,200) and [200,300).
        stageRec(310, TraceStage::WalkEnd, 2, 100),
        stageRec(320, TraceStage::WalkEnd, 2, 101),
    };
    const TimeSeries series = IntervalSampler(100).sample(records, kLanes);
    ASSERT_EQ(series.columns.size(), 3u);
    EXPECT_EQ(series.columns[0], "gmmu0.walksStarted");
    EXPECT_EQ(series.columns[1], "gmmu0.walksCompleted");
    EXPECT_EQ(series.columns[2], "gmmu0.walksInFlight");
    ASSERT_EQ(series.rows.size(), 4u);
    EXPECT_EQ(series.rows[0].values,
              (std::vector<std::uint64_t>{2, 0, 2}));
    EXPECT_EQ(series.rows[1].values,
              (std::vector<std::uint64_t>{0, 0, 2})); // gauge carried
    EXPECT_EQ(series.rows[2].values,
              (std::vector<std::uint64_t>{0, 0, 2}));
    EXPECT_EQ(series.rows[3].values,
              (std::vector<std::uint64_t>{0, 2, 0}));
}

TEST(IntervalSampler, CsvLayout)
{
    std::vector<TraceRecord> records = {
        stageRec(5, TraceStage::WireDepart, 1, 1, packFlitBytes(32, 16),
                 packFlitSeq(0, 0)),
    };
    const TimeSeries series = IntervalSampler(10).sample(records, kLanes);
    std::ostringstream os;
    writeTimeSeriesCsv(series, os);
    EXPECT_EQ(os.str(),
              "interval_start,wire0.flits,wire0.wireBytes,"
              "wire0.usedBytes,wire0.stitchedPieces\n"
              "0,1,32,16,0\n");
}

} // namespace
} // namespace netcrafter::obs
