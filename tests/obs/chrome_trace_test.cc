/** @file Tests for the Chrome-trace writer, exporter, and validator. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/chrome_trace.hh"
#include "src/obs/json_validate.hh"

namespace netcrafter::obs {
namespace {

TEST(ChromeTraceWriter, RoundTripsThroughValidator)
{
    ChromeTraceWriter writer;
    writer.processName(kSimPid, "sim \"time\""); // escaping exercised
    writer.threadName(kSimPid, 1, "wire0");
    writer.slice(kSimPid, 1, "flit", 1.5, 0.25, "{\"bytes\":32}");
    writer.instant(kSimPid, 1, "decision", 2.0);
    writer.counter(kSimPid, "stalls", 0.0, "ticks", 12.0);
    writer.asyncBegin(kSimPid, "ptw", "walk", 7, 1.0);
    writer.asyncEnd(kSimPid, "ptw", "walk", 7, 3.0);
    EXPECT_EQ(writer.events(), 7u);

    std::ostringstream os;
    writer.write(os);

    std::string error;
    JsonValue root;
    ASSERT_TRUE(parseJson(os.str(), root, &error)) << error;
    ChromeTraceSummary summary;
    ASSERT_TRUE(validateChromeTrace(root, &error, &summary)) << error;
    EXPECT_EQ(summary.events, 7u);
    EXPECT_EQ(summary.metadata, 2u);
    EXPECT_EQ(summary.slices, 1u);
    EXPECT_EQ(summary.counters, 1u);
    EXPECT_EQ(summary.instants, 1u);
    EXPECT_EQ(summary.asyncs, 2u);
}

TEST(ChromeTraceWriter, StableSortPutsMetadataFirst)
{
    ChromeTraceWriter writer;
    writer.slice(kSimPid, 2, "late", 5.0, 1.0);
    writer.slice(kSimPid, 1, "early", 0.0, 1.0);
    writer.processName(kSimPid, "sim");
    std::ostringstream os;
    writer.write(os);
    const std::string out = os.str();
    const auto meta = out.find("process_name");
    const auto early = out.find("early");
    const auto late = out.find("late");
    ASSERT_NE(meta, std::string::npos);
    ASSERT_NE(early, std::string::npos);
    ASSERT_NE(late, std::string::npos);
    EXPECT_LT(meta, early);
    EXPECT_LT(early, late);
}

TEST(Validator, RejectsMalformedDocuments)
{
    std::string error;
    JsonValue root;
    EXPECT_FALSE(parseJson("{\"traceEvents\": [", root, &error));

    ASSERT_TRUE(parseJson("{\"other\": []}", root, &error)) << error;
    EXPECT_FALSE(validateChromeTrace(root, &error, nullptr));

    // An event missing its "ph" is structurally invalid.
    ASSERT_TRUE(parseJson(
        "{\"traceEvents\": [{\"pid\": 1, \"tid\": 1, \"ts\": 0}]}", root,
        &error))
        << error;
    EXPECT_FALSE(validateChromeTrace(root, &error, nullptr));
}

TEST(SimChromeTrace, ExportsLanesSlicesAndInstants)
{
    std::vector<TraceRecord> records;
    auto push = [&](Tick tick, TraceKind kind, TraceStage stage,
                    std::uint16_t lane, std::uint64_t id, std::uint32_t a,
                    std::uint32_t b) {
        TraceRecord r;
        r.tick = tick;
        r.id = id;
        r.a = a;
        r.b = b;
        r.lane = lane;
        r.kind = static_cast<std::uint8_t>(kind);
        r.stage = static_cast<std::uint8_t>(stage);
        records.push_back(r);
    };
    // Flit crossing wire0: depart at 1000, arrive at 3000.
    push(1000, TraceKind::FlitXfer, TraceStage::WireDepart, 1, 42,
         packFlitBytes(32, 24), packFlitSeq(0, 0));
    push(3000, TraceKind::FlitXfer, TraceStage::WireArrive, 1, 42,
         packFlitBytes(32, 24), packFlitSeq(0, 0));
    // A PTW walk on gmmu0 overlapping the flit.
    push(1500, TraceKind::PktStage, TraceStage::WalkStart, 2, 7, 0, 0);
    push(2500, TraceKind::PktStage, TraceStage::WalkEnd, 2, 7, 0, 0);
    // A controller decision instant.
    push(2000, TraceKind::CtrlDecision, TraceStage::CtrlArm, 3, 42, 64, 1);

    const std::vector<std::string> lanes = {"(unknown)", "wire0", "gmmu0",
                                            "ctrl0"};
    std::ostringstream os;
    writeSimChromeTrace(records, lanes, os);

    std::string error;
    JsonValue root;
    ASSERT_TRUE(parseJson(os.str(), root, &error)) << error;
    ChromeTraceSummary summary;
    ASSERT_TRUE(validateChromeTrace(root, &error, &summary)) << error;
    EXPECT_GE(summary.slices, 1u);  // the wire-flight slice
    EXPECT_GE(summary.asyncs, 2u);  // walk begin/end
    EXPECT_GE(summary.instants, 1u);
    // Lanes count distinct (pid, tid) pairs with timed slice/instant
    // events: wire0 (the flit slice) and ctrl0 (the decision instant).
    EXPECT_GE(summary.lanes, 2u);
    EXPECT_NE(os.str().find("wire0"), std::string::npos);
    EXPECT_NE(os.str().find("gmmu0"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

} // namespace
} // namespace netcrafter::obs
