/**
 * @file
 * End-to-end validation of the Figure 11 flit-stream transformation:
 * a mixed stream of packets passes through the NetCrafter controller
 * (trim + stitch) and the receiving un-stitcher; every packet's bytes
 * arrive intact while the wire flit count shrinks.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/core/controller.hh"
#include "src/sim/engine.hh"
#include "src/sim/random.hh"

namespace netcrafter::core {
namespace {

using noc::FlitBuffer;
using noc::FlitPtr;
using noc::makePacket;
using noc::PacketPtr;
using noc::PacketType;
using noc::segmentPacket;

struct StreamFixture : ::testing::Test
{
    sim::Engine engine;
    FlitBuffer out{4096};
    config::NetCrafterConfig cfg;

    std::unique_ptr<NetCrafterController>
    makeController()
    {
        cfg.clusterQueueEntries = 4096;
        return std::make_unique<NetCrafterController>(
            engine, "ctrl", cfg, [](GpuId g) { return g / 2; },
            std::vector<ClusterId>{1}, out, 1, nullptr);
    }
};

TEST_F(StreamFixture, Figure11MixedStream)
{
    cfg.stitching = true;
    cfg.trimming = true;
    auto ctrl = makeController();

    Pcg32 rng(11);
    std::map<std::uint64_t, std::uint32_t> expected_bytes;
    std::uint32_t raw_flits = 0;

    // A paper-like mix: read responses (some trim-eligible), write
    // requests, write acks, reads and PTW traffic.
    for (int i = 0; i < 100; ++i) {
        PacketPtr pkt;
        switch (rng.below(6)) {
          case 0:
            pkt = makePacket(PacketType::ReadRsp, 0, 2, i * 64);
            if (rng.chance(0.5)) {
                pkt->trimEligible = true;
                pkt->bytesNeeded = 8;
                pkt->neededOffset =
                    static_cast<std::uint8_t>(16 * rng.below(4));
            }
            break;
          case 1:
            pkt = makePacket(PacketType::WriteReq, 0, 2, i * 64);
            break;
          case 2:
            pkt = makePacket(PacketType::WriteRsp, 0, 3, i * 64);
            break;
          case 3:
            pkt = makePacket(PacketType::ReadReq, 1, 3, i * 64);
            break;
          case 4:
            pkt = makePacket(PacketType::PageTableReq, 0, 2, i * 64);
            pkt->latencyCritical = true;
            break;
          default:
            pkt = makePacket(PacketType::PageTableRsp, 1, 2, i * 64);
            pkt->latencyCritical = true;
            break;
        }
        auto flits = segmentPacket(pkt, 16);
        raw_flits += flits.size();
        for (auto &f : flits)
            ASSERT_TRUE(ctrl->tryAccept(std::move(f)));
        // expected_bytes uses the post-trim size, recorded below after
        // the controller had a chance to trim; store the packet now.
        expected_bytes[pkt->id] = 0; // placeholder; updated after run
        engine.run();
    }
    engine.run();

    // Collect the wire stream and un-stitch it.
    Unstitcher unstitcher;
    std::vector<FlitPtr> restored;
    std::uint32_t wire_flits = 0;
    while (!out.empty()) {
        ++wire_flits;
        unstitcher.process(out.pop(), restored);
    }

    // Wire flits must be fewer than the raw segmentation (trimming and
    // stitching both shrink the stream).
    EXPECT_LT(wire_flits, raw_flits);

    // Reassemble: per packet, received bytes == totalBytes() exactly.
    std::map<std::uint64_t, std::uint32_t> received;
    std::map<std::uint64_t, PacketPtr> packets;
    for (const auto &f : restored) {
        EXPECT_FALSE(f->isStitched());
        received[f->pkt->id] += f->occupiedBytes;
        packets[f->pkt->id] = f->pkt;
    }
    EXPECT_EQ(received.size(), expected_bytes.size());
    for (const auto &[id, bytes] : received) {
        EXPECT_EQ(bytes, packets[id]->totalBytes())
            << packets[id]->toString();
    }
}

TEST_F(StreamFixture, BackToBackResponseTailsStitch)
{
    // The paper's first Figure 11 scenario: the tails of two
    // back-to-back read responses share one wire flit via ID+Size
    // metadata.
    cfg.stitching = true;
    auto ctrl = makeController();
    for (auto &f :
         segmentPacket(makePacket(PacketType::ReadRsp, 0, 2, 0x40), 16))
        ASSERT_TRUE(ctrl->tryAccept(std::move(f)));
    for (auto &f :
         segmentPacket(makePacket(PacketType::ReadRsp, 0, 2, 0x80), 16))
        ASSERT_TRUE(ctrl->tryAccept(std::move(f)));
    engine.run();

    std::uint32_t wire = 0;
    bool partial_piece = false;
    while (!out.empty()) {
        auto f = out.pop();
        ++wire;
        for (const auto &p : f->stitched)
            partial_piece |= !p.wholePacket;
    }
    EXPECT_EQ(wire, 9u); // 10 raw flits, tails merged
    EXPECT_TRUE(partial_piece);
}

} // namespace
} // namespace netcrafter::core
