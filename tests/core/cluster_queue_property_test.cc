/**
 * @file
 * Property tests on Cluster Queue invariants under randomized traffic:
 * per-class FIFO order is preserved, occupancy accounting is exact,
 * and candidate extraction never loses or duplicates flits.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/core/cluster_queue.hh"
#include "src/sim/random.hh"

namespace netcrafter::core {
namespace {

using noc::FlitPtr;
using noc::makePacket;
using noc::PacketType;
using noc::segmentPacket;

TEST(ClusterQueueProperty, PerClassFifoAndExactAccounting)
{
    Pcg32 rng(808);
    const PacketType types[] = {
        PacketType::ReadReq, PacketType::WriteReq, PacketType::ReadRsp,
        PacketType::WriteRsp, PacketType::PageTableReq,
    };

    for (int trial = 0; trial < 10; ++trial) {
        ClusterQueue cq(512, {1});
        // Per class: the sequence numbers pushed, to check FIFO pops.
        std::map<CqClass, std::deque<std::uint64_t>> expect;
        std::size_t in_queue = 0;
        std::uint64_t stamp = 0;
        std::map<const noc::Flit *, std::uint64_t> stamps;

        for (int op = 0; op < 3000; ++op) {
            const bool can_push = cq.hasSpace(1);
            if (can_push && (in_queue == 0 || rng.chance(0.55))) {
                auto pkt = makePacket(types[rng.below(5)], 0, 2,
                                      rng.next64() % (1 << 20) * 64);
                pkt->latencyCritical = pkt->isPtw();
                auto flits = segmentPacket(pkt, 16);
                auto &flit = flits[rng.below(
                    static_cast<std::uint32_t>(flits.size()))];
                const CqClass cls = cqClassOfPacket(*pkt);
                stamps[flit.get()] = stamp;
                expect[cls].push_back(stamp++);
                cq.push(1, std::move(flit));
                ++in_queue;
            } else if (in_queue > 0 && rng.chance(0.7)) {
                auto pick = cq.pickNext(op, false);
                ASSERT_TRUE(pick.has_value());
                FlitPtr f = cq.pop(*pick);
                auto &q = expect[pick->cls];
                ASSERT_FALSE(q.empty());
                EXPECT_EQ(stamps[f.get()], q.front()); // FIFO per class
                q.pop_front();
                --in_queue;
            } else if (in_queue > 0) {
                // Candidate extraction: removes exactly one fitting
                // flit from anywhere, never the excluded parent.
                FlitPtr cand =
                    cq.takeCandidate(1, 16, 64, nullptr);
                if (cand) {
                    auto &q = expect[cqClassOfPacket(*cand->pkt)];
                    // Remove its stamp wherever it sits.
                    auto it = std::find(q.begin(), q.end(),
                                        stamps[cand.get()]);
                    ASSERT_NE(it, q.end());
                    q.erase(it);
                    --in_queue;
                }
            }
            EXPECT_EQ(cq.occupancy(1), in_queue);
            EXPECT_EQ(cq.empty(), in_queue == 0);
        }
    }
}

TEST(ClusterQueueProperty, PickNextAlwaysServesNonEmptyQueue)
{
    // With soft timers, pickNext never returns nullopt while flits
    // remain, no matter how timers were armed — the no-idle invariant.
    Pcg32 rng(909);
    ClusterQueue cq(128, {1});
    for (int i = 0; i < 50; ++i) {
        auto pkt = makePacket(PacketType::ReadReq, 0, 2, i * 64);
        cq.push(1, segmentPacket(pkt, 16).front());
    }
    for (int t = 0; t < 200; ++t) {
        if (rng.chance(0.5)) {
            cq.blockUntil(CqPartitionId{1, CqClass::ReadReq},
                          t + rng.below(100));
        }
        if (cq.empty())
            break;
        auto pick = cq.pickNext(t, rng.chance(0.5));
        ASSERT_TRUE(pick.has_value()) << "idle with flits queued";
        if (rng.chance(0.8))
            cq.pop(*pick);
    }
}

} // namespace
} // namespace netcrafter::core
