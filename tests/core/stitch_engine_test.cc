/** @file Unit and property tests for the Stitching Engine. */

#include <gtest/gtest.h>

#include "src/core/stitch_engine.hh"
#include "src/sim/random.hh"

namespace netcrafter::core {
namespace {

using noc::Flit;
using noc::FlitPtr;
using noc::makePacket;
using noc::PacketType;
using noc::segmentPacket;

FlitPtr
tailOf(PacketType type)
{
    return segmentPacket(makePacket(type, 0, 2, 0x40), 16).back();
}

FlitPtr
wholeOf(PacketType type)
{
    auto flits = segmentPacket(makePacket(type, 0, 2, 0x80), 16);
    EXPECT_EQ(flits.size(), 1u);
    return flits.front();
}

TEST(StitchEngine, WholePacketStitchesWithoutMetadata)
{
    StitchEngine engine;
    auto parent = tailOf(PacketType::ReadRsp); // 4B used, 12 free
    auto cand = wholeOf(PacketType::ReadReq);  // 12B whole packet
    ASSERT_TRUE(StitchEngine::fits(*parent, *cand));
    engine.stitch(*parent, cand);
    EXPECT_EQ(parent->stitched.size(), 1u);
    EXPECT_TRUE(parent->stitched[0].wholePacket);
    EXPECT_EQ(parent->usedBytes(), 16u);
    EXPECT_EQ(parent->freeBytes(), 0u);
    EXPECT_EQ(engine.stats().candidatesAbsorbed, 1u);
    EXPECT_EQ(engine.stats().metadataBytes, 0u);
}

TEST(StitchEngine, PartialCandidateCarriesIdAndSize)
{
    StitchEngine engine;
    auto parent = tailOf(PacketType::ReadRsp); // 12 free
    auto cand = tailOf(PacketType::ReadRsp);   // 4B payload tail
    ASSERT_TRUE(StitchEngine::fits(*parent, *cand));
    engine.stitch(*parent, cand);
    EXPECT_FALSE(parent->stitched[0].wholePacket);
    // 4 + (4 + 3B ID+Size metadata) = 11 bytes used.
    EXPECT_EQ(parent->usedBytes(), 11u);
    EXPECT_EQ(engine.stats().metadataBytes,
              noc::kPartialStitchMetaBytes);
}

TEST(StitchEngine, OversizedCandidateDoesNotFit)
{
    auto parent = wholeOf(PacketType::ReadReq); // only 4 free
    auto cand = wholeOf(PacketType::PageTableReq); // 12B
    EXPECT_FALSE(StitchEngine::fits(*parent, *cand));

    auto small = wholeOf(PacketType::WriteRsp); // 4B
    EXPECT_TRUE(StitchEngine::fits(*parent, *small));
}

TEST(StitchEngine, HeadOfMultiFlitPacketNeverACandidate)
{
    auto parent = tailOf(PacketType::ReadRsp);
    auto head = segmentPacket(makePacket(PacketType::ReadRsp, 0, 2, 0),
                              16)[0];
    EXPECT_FALSE(StitchEngine::fits(*parent, *head));
}

TEST(StitchEngine, StitchedParentIsNotACandidate)
{
    StitchEngine engine;
    auto parent = tailOf(PacketType::ReadRsp);
    engine.stitch(*parent, wholeOf(PacketType::WriteRsp));
    auto other = tailOf(PacketType::ReadRsp);
    EXPECT_FALSE(StitchEngine::fits(*other, *parent));
}

TEST(StitchEngine, MultipleCandidatesUntilFull)
{
    StitchEngine engine;
    auto parent = tailOf(PacketType::ReadRsp); // 12 free
    engine.stitch(*parent, wholeOf(PacketType::WriteRsp)); // 4B
    engine.stitch(*parent, wholeOf(PacketType::WriteRsp)); // 4B
    engine.stitch(*parent, wholeOf(PacketType::WriteRsp)); // 4B
    EXPECT_EQ(parent->freeBytes(), 0u);
    EXPECT_EQ(parent->stitched.size(), 3u);
    EXPECT_EQ(engine.stats().parentsStitched, 1u);
    EXPECT_EQ(engine.stats().candidatesAbsorbed, 3u);
}

TEST(StitchEngine, UnstitchRestoresOriginalFlits)
{
    StitchEngine engine;
    auto parent = tailOf(PacketType::ReadRsp);
    auto cand_whole = wholeOf(PacketType::ReadReq);
    const noc::PacketPtr cand_pkt = cand_whole->pkt;
    engine.stitch(*parent, std::move(cand_whole));

    auto restored = engine.unstitch(parent);
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_FALSE(restored[0]->isStitched());
    EXPECT_EQ(restored[0]->occupiedBytes, 4u);
    EXPECT_EQ(restored[1]->pkt.get(), cand_pkt.get());
    EXPECT_EQ(restored[1]->occupiedBytes, 12u);
    EXPECT_EQ(restored[1]->numFlits, 1u);
    EXPECT_EQ(engine.stats().unstitched, 1u);
}

TEST(StitchEngine, UnstitchPassesPlainFlitsThrough)
{
    StitchEngine engine;
    auto flit = wholeOf(PacketType::ReadReq);
    const Flit *ptr = flit.get();
    auto out = engine.unstitch(std::move(flit));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get(), ptr);
    EXPECT_EQ(engine.stats().unstitched, 0u);
}

TEST(StitchEngine, PartialUnstitchKeepsSeqAndCount)
{
    StitchEngine engine;
    auto parent = tailOf(PacketType::ReadRsp);
    auto cand = tailOf(PacketType::WriteReq); // seq 4 of 5, 12B
    // WriteReq tail: 12B occupied, partial wire = 15 > 12 free; use an
    // 8B-capacity... instead stitch a ReadRsp tail (4B, wire 7).
    cand = tailOf(PacketType::ReadRsp);
    const std::uint32_t seq = cand->seq;
    const std::uint32_t num = cand->numFlits;
    engine.stitch(*parent, cand);
    auto out = engine.unstitch(parent);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1]->seq, seq);
    EXPECT_EQ(out[1]->numFlits, num);
    EXPECT_TRUE(out[1]->isTail());
}

/**
 * Property: for random stitch combinations, un-stitching restores every
 * byte of every packet exactly once.
 */
TEST(StitchEngineProperty, RandomRoundTripConservesBytes)
{
    Pcg32 rng(2024);
    StitchEngine engine;
    const PacketType kinds[] = {
        PacketType::ReadReq,  PacketType::WriteRsp,
        PacketType::PageTableReq, PacketType::PageTableRsp,
        PacketType::ReadRsp,
    };
    for (int trial = 0; trial < 200; ++trial) {
        auto parent = tailOf(PacketType::ReadRsp);
        std::uint32_t expected = parent->occupiedBytes;
        int absorbed = 0;
        for (int i = 0; i < 4; ++i) {
            auto type = kinds[rng.below(5)];
            auto cand = type == PacketType::ReadRsp ? tailOf(type)
                                                    : wholeOf(type);
            if (!StitchEngine::fits(*parent, *cand))
                continue;
            expected += cand->occupiedBytes;
            engine.stitch(*parent, std::move(cand));
            ++absorbed;
        }
        auto out = engine.unstitch(parent);
        ASSERT_EQ(out.size(), static_cast<std::size_t>(absorbed + 1));
        std::uint32_t got = 0;
        for (const auto &f : out) {
            EXPECT_FALSE(f->isStitched());
            got += f->occupiedBytes;
        }
        EXPECT_EQ(got, expected);
    }
}

} // namespace
} // namespace netcrafter::core
