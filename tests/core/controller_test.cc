/** @file Integration tests for the NetCrafter controller. */

#include <gtest/gtest.h>

#include "src/core/controller.hh"
#include "src/sim/engine.hh"

namespace netcrafter::core {
namespace {

using noc::FlitBuffer;
using noc::FlitPtr;
using noc::makePacket;
using noc::PacketPtr;
using noc::PacketType;
using noc::segmentPacket;

/** Cluster of a GPU id in the default 2x2 topology. */
ClusterId
clusterOf(GpuId g)
{
    return g / 2;
}

struct ControllerFixture : ::testing::Test
{
    sim::Engine engine;
    FlitBuffer out{1024};
    config::NetCrafterConfig cfg;
    int switchWakes = 0;

    std::unique_ptr<NetCrafterController>
    makeController()
    {
        return std::make_unique<NetCrafterController>(
            engine, "ctrl", cfg, [](GpuId g) { return clusterOf(g); },
            std::vector<ClusterId>{1}, out, 1,
            [this] { ++switchWakes; });
    }

    /** Feed every flit of @p pkt into the controller. */
    void
    feed(NetCrafterController &ctrl, const PacketPtr &pkt)
    {
        for (auto &f : segmentPacket(pkt, 16))
            ASSERT_TRUE(ctrl.tryAccept(std::move(f)));
    }

    std::vector<FlitPtr>
    drain()
    {
        std::vector<FlitPtr> flits;
        while (!out.empty())
            flits.push_back(out.pop());
        return flits;
    }
};

TEST_F(ControllerFixture, PassThroughWithoutMechanisms)
{
    cfg = config::NetCrafterConfig{};
    auto ctrl = makeController();
    feed(*ctrl, makePacket(PacketType::ReadRsp, 0, 2, 0x40));
    engine.run();
    EXPECT_EQ(drain().size(), 5u);
    EXPECT_EQ(ctrl->stats().flitsEjected, 5u);
}

TEST_F(ControllerFixture, EgressRateIsOneFlitPerCycle)
{
    cfg = config::NetCrafterConfig{};
    auto ctrl = makeController();
    feed(*ctrl, makePacket(PacketType::ReadRsp, 0, 2, 0x40));
    const Tick start = engine.now();
    engine.run();
    EXPECT_GE(engine.now() - start, 5u);
}

TEST_F(ControllerFixture, TrimsEligibleResponses)
{
    cfg.trimming = true;
    auto ctrl = makeController();
    auto pkt = makePacket(PacketType::ReadRsp, 0, 2, 0x40);
    pkt->trimEligible = true;
    pkt->bytesNeeded = 8;
    pkt->neededOffset = 32;
    feed(*ctrl, pkt);
    engine.run();
    auto flits = drain();
    EXPECT_EQ(flits.size(), 2u); // 20 bytes -> 2 flits
    EXPECT_TRUE(pkt->trimmed);
    EXPECT_EQ(ctrl->trimStats().packetsTrimmed, 1u);
    EXPECT_EQ(ctrl->trimStats().bytesTrimmed, 48u);
}

TEST_F(ControllerFixture, DoesNotTrimIneligible)
{
    cfg.trimming = true;
    auto ctrl = makeController();
    auto pkt = makePacket(PacketType::ReadRsp, 0, 2, 0x40);
    pkt->trimEligible = false; // wavefront needs > one sector
    feed(*ctrl, pkt);
    engine.run();
    EXPECT_EQ(drain().size(), 5u);
    EXPECT_FALSE(pkt->trimmed);
}

TEST_F(ControllerFixture, StitchesRequestsIntoResponseTails)
{
    cfg.stitching = true;
    auto ctrl = makeController();
    // A steady mix: response tails (12 free bytes) find 12B read
    // requests to absorb while both classes hold entries.
    std::uint32_t raw = 0;
    for (int i = 0; i < 6; ++i) {
        auto rsp = makePacket(PacketType::ReadRsp, 0, 2, 0x40 + i * 64);
        auto req = makePacket(PacketType::ReadReq, 1, 3, 0x80 + i * 64);
        raw += 5 + 1;
        feed(*ctrl, rsp);
        feed(*ctrl, req);
    }
    engine.run();
    auto flits = drain();
    EXPECT_LT(flits.size(), raw);
    std::size_t pieces = 0;
    for (const auto &f : flits)
        pieces += f->stitched.size();
    EXPECT_GT(pieces, 0u);
    EXPECT_EQ(flits.size() + pieces, raw);
    EXPECT_EQ(ctrl->stitchStats().candidatesAbsorbed, pieces);
}

TEST_F(ControllerFixture, SequencingEjectsPtwFirst)
{
    cfg.sequencing = config::SequencingMode::PrioritizePtw;
    auto ctrl = makeController();
    // Queue a large data packet, then a PTW request behind it.
    feed(*ctrl, makePacket(PacketType::WriteReq, 0, 2, 0x40));
    auto pt = makePacket(PacketType::PageTableReq, 0, 3, 0x80);
    pt->latencyCritical = true;
    feed(*ctrl, pt);
    engine.run();
    auto flits = drain();
    ASSERT_EQ(flits.size(), 6u);
    // The PTW flit overtakes the write packet's flits.
    EXPECT_TRUE(flits[0]->pkt->isPtw());
}

TEST_F(ControllerFixture, AdmissionControlRefusesWhenFull)
{
    cfg.clusterQueueEntries = 4;
    cfg.stitching = true;
    cfg.flitPooling = true; // keep flits inside briefly
    auto ctrl = makeController();
    int accepted = 0;
    for (int i = 0; i < 8; ++i) {
        auto pkt = makePacket(PacketType::ReadReq, 0, 2, 0x40 + i * 64);
        auto flit = segmentPacket(pkt, 16).front();
        accepted += ctrl->tryAccept(std::move(flit)) ? 1 : 0;
    }
    EXPECT_LE(accepted, 4);
    engine.run();
    EXPECT_GT(switchWakes, 0);
}

TEST_F(ControllerFixture, PoolingDefersUntilCandidateArrives)
{
    cfg.stitching = true;
    cfg.flitPooling = true;
    cfg.poolingWindow = 64;
    auto ctrl = makeController();

    // A response tail (12 free bytes) heads its partition while the
    // write-request class still has work: its tails (15B wire as
    // partial candidates) do not fit, so the response tail pools,
    // deferring while the writes keep the link busy.
    feed(*ctrl, makePacket(PacketType::ReadRsp, 0, 2, 0x40));
    feed(*ctrl, makePacket(PacketType::WriteReq, 0, 2, 0x80));
    feed(*ctrl, makePacket(PacketType::WriteReq, 0, 2, 0xC0));
    engine.run();
    auto flits = drain();
    // Everything is eventually ejected, possibly stitched together.
    std::uint32_t logical = 0;
    for (const auto &f : flits)
        logical += 1 + static_cast<std::uint32_t>(f->stitched.size());
    EXPECT_EQ(logical, 15u);
    EXPECT_GT(ctrl->stats().poolingArms, 0u);
}

TEST_F(ControllerFixture, SelectivePoolingNeverDefersPtw)
{
    cfg.stitching = true;
    cfg.flitPooling = true;
    cfg.selectivePooling = true;
    auto ctrl = makeController();
    auto pt = makePacket(PacketType::PageTableReq, 0, 2, 0x40);
    pt->latencyCritical = true;
    feed(*ctrl, pt);
    engine.run();
    EXPECT_EQ(drain().size(), 1u);
    EXPECT_EQ(ctrl->stats().poolingArms, 0u);
}

TEST_F(ControllerFixture, ReStitchingFillsRemainingSpace)
{
    cfg.stitching = true;
    auto ctrl = makeController();
    feed(*ctrl, makePacket(PacketType::ReadRsp, 0, 2, 0x40)); // tail 12 free
    // Three 4B write acks: whichever parent goes first (the ack at the
    // head of its partition or the response tail) absorbs the others —
    // a parent keeps stitching while free bytes remain (step 4h).
    for (int i = 0; i < 3; ++i)
        feed(*ctrl, makePacket(PacketType::WriteRsp, 0, 2, 0x80 + i * 64));
    engine.run();
    auto flits = drain();
    std::size_t pieces = 0;
    bool multi_piece_parent = false;
    for (const auto &f : flits) {
        pieces += f->stitched.size();
        multi_piece_parent |= f->stitched.size() >= 2;
    }
    EXPECT_EQ(flits.size() + pieces, 8u); // conservation
    EXPECT_GE(pieces, 2u);
    EXPECT_TRUE(multi_piece_parent);
}

TEST_F(ControllerFixture, UnstitcherReversesControllerOutput)
{
    cfg.stitching = true;
    auto ctrl = makeController();
    std::uint32_t expected_bytes = 0;
    for (int i = 0; i < 6; ++i) {
        auto rsp = makePacket(PacketType::ReadRsp, 0, 2, 0x40 + i * 64);
        auto req = makePacket(PacketType::ReadReq, 1, 3, 0x80 + i * 64);
        expected_bytes += rsp->totalBytes() + req->totalBytes();
        feed(*ctrl, rsp);
        feed(*ctrl, req);
    }
    engine.run();

    Unstitcher unstitcher;
    std::vector<FlitPtr> wire = drain();
    std::vector<FlitPtr> restored;
    for (auto &f : wire)
        unstitcher.process(std::move(f), restored);
    EXPECT_EQ(restored.size(), 36u); // 6 x (5 + 1) logical flits
    std::uint32_t bytes = 0;
    for (const auto &f : restored) {
        EXPECT_FALSE(f->isStitched());
        bytes += f->occupiedBytes;
    }
    EXPECT_EQ(bytes, expected_bytes);
    EXPECT_GT(unstitcher.stats().unstitched, 0u);
}

} // namespace
} // namespace netcrafter::core
