/** @file Unit tests for the two-level Cluster Queue. */

#include <gtest/gtest.h>

#include <set>

#include "src/core/cluster_queue.hh"

namespace netcrafter::core {
namespace {

using noc::FlitPtr;
using noc::makePacket;
using noc::PacketType;
using noc::segmentPacket;

FlitPtr
flitOf(PacketType type, bool latency_critical = false)
{
    static std::uint64_t addr = 0;
    auto pkt = makePacket(type, 0, 2, addr += 64);
    pkt->latencyCritical =
        latency_critical || noc::isPtwType(type);
    return segmentPacket(pkt, 16).front();
}

TEST(CqClass, MappingMatchesFigure13)
{
    EXPECT_EQ(cqClassOf(PacketType::ReadReq), CqClass::ReadReq);
    EXPECT_EQ(cqClassOf(PacketType::WriteReq), CqClass::WriteReq);
    EXPECT_EQ(cqClassOf(PacketType::ReadRsp), CqClass::ReadRsp);
    EXPECT_EQ(cqClassOf(PacketType::WriteRsp), CqClass::WriteRsp);
    EXPECT_EQ(cqClassOf(PacketType::PageTableReq), CqClass::Ptw);
    EXPECT_EQ(cqClassOf(PacketType::PageTableRsp), CqClass::Ptw);
}

TEST(CqClass, LatencyCriticalFlagOverridesType)
{
    auto data = makePacket(PacketType::ReadReq, 0, 2, 0x40);
    data->latencyCritical = true;
    EXPECT_EQ(cqClassOfPacket(*data), CqClass::Ptw);

    // Unflagged PT packets (PrioritizeData mode) queue with requests.
    auto pt = makePacket(PacketType::PageTableReq, 0, 2, 0x40);
    pt->latencyCritical = false;
    EXPECT_EQ(cqClassOfPacket(*pt), CqClass::ReadReq);
}

TEST(ClusterQueue, BudgetPerDestination)
{
    ClusterQueue cq(1024, {1, 2, 3});
    EXPECT_EQ(cq.budgetPerDst(), 1024u / 3u);
    EXPECT_TRUE(cq.hasSpace(1));
    EXPECT_TRUE(cq.empty());
}

TEST(ClusterQueue, PushPopFifoWithinPartition)
{
    ClusterQueue cq(64, {1});
    auto a = flitOf(PacketType::ReadReq);
    auto b = flitOf(PacketType::ReadReq);
    const noc::Flit *pa = a.get();
    const noc::Flit *pb = b.get();
    cq.push(1, std::move(a));
    cq.push(1, std::move(b));
    auto pick = cq.pickNext(0, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(cq.pop(*pick).get(), pa);
    pick = cq.pickNext(0, false);
    EXPECT_EQ(cq.pop(*pick).get(), pb);
    EXPECT_TRUE(cq.empty());
}

TEST(ClusterQueue, RoundRobinAcrossClasses)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadReq));
    cq.push(1, flitOf(PacketType::WriteRsp));
    std::set<CqClass> served;
    for (int i = 0; i < 2; ++i) {
        auto pick = cq.pickNext(0, false);
        ASSERT_TRUE(pick.has_value());
        served.insert(pick->cls);
        cq.pop(*pick);
    }
    EXPECT_EQ(served.size(), 2u);
}

TEST(ClusterQueue, SequencingPrioritizesPtw)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadReq));
    cq.push(1, flitOf(PacketType::PageTableReq));
    auto pick = cq.pickNext(0, true);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->cls, CqClass::Ptw);
}

TEST(ClusterQueue, NoSequencingTreatsPtwAsPeer)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::PageTableReq));
    cq.push(1, flitOf(PacketType::ReadReq));
    // Plain RR may pick either, but both must eventually be served.
    int served = 0;
    for (int i = 0; i < 2; ++i) {
        auto pick = cq.pickNext(0, false);
        ASSERT_TRUE(pick.has_value());
        cq.pop(*pick);
        ++served;
    }
    EXPECT_EQ(served, 2);
}

TEST(ClusterQueue, TimersBlockUntilExpiry)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadReq));
    cq.push(1, flitOf(PacketType::WriteRsp));
    auto pick = cq.pickNext(10, false);
    ASSERT_TRUE(pick.has_value());
    cq.blockUntil(*pick, 42);
    // The other partition is served while this one is blocked.
    auto other = cq.pickNext(10, false);
    ASSERT_TRUE(other.has_value());
    EXPECT_NE(other->cls, pick->cls);
    EXPECT_EQ(cq.earliestUnblock(10), 42u);
}

TEST(ClusterQueue, SoftTimersServeBlockedWhenNothingElse)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadReq));
    auto pick = cq.pickNext(10, false);
    cq.blockUntil(*pick, 100);
    // Only blocked work exists: the soft timer yields it anyway so the
    // link never idles.
    auto again = cq.pickNext(11, false);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->cls, CqClass::ReadReq);
}

TEST(ClusterQueue, SequencedPtwIgnoresTimers)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::PageTableReq));
    cq.blockUntil(CqPartitionId{1, CqClass::Ptw}, 1000);
    auto pick = cq.pickNext(5, true);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->cls, CqClass::Ptw);
}

TEST(ClusterQueue, CandidateArrivalCancelsTimer)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadRsp)); // head flit won't stitch,
    // but use a WriteRsp head: 4B used, 12 free - a poolable parent.
    ClusterQueue cq2(64, {1});
    cq2.push(1, flitOf(PacketType::WriteRsp));
    auto pick = cq2.pickNext(0, false);
    cq2.blockUntil(*pick, 500);
    // A fitting candidate (12B whole ReadReq) arrives: timer cancelled.
    cq2.push(1, flitOf(PacketType::ReadReq));
    auto again = cq2.pickNext(1, false);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(cq2.earliestUnblock(1), kTickNever);
}

TEST(ClusterQueue, TakeCandidatePicksLargestFitting)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::WriteRsp));      // 4B whole
    cq.push(1, flitOf(PacketType::ReadReq));       // 12B whole
    auto parent = flitOf(PacketType::ReadRsp);
    // Parent is outside the queue; 12 free bytes on a ReadRsp tail.
    auto tail =
        segmentPacket(makePacket(PacketType::ReadRsp, 0, 2, 0x40), 16)
            .back();
    auto cand = cq.takeCandidate(1, tail->freeBytes(), 64, tail.get());
    ASSERT_NE(cand, nullptr);
    EXPECT_EQ(cand->pkt->type, PacketType::ReadReq); // 12 > 4
    EXPECT_EQ(cq.occupancy(1), 1u);
}

TEST(ClusterQueue, TakeCandidateExcludesParent)
{
    ClusterQueue cq(64, {1});
    auto parent = flitOf(PacketType::ReadReq);
    const noc::Flit *p = parent.get();
    cq.push(1, std::move(parent));
    // Parent (12B, 4 free) is the only entry: excluding it, no hit.
    EXPECT_EQ(cq.takeCandidate(1, 16, 64, p), nullptr);
    EXPECT_EQ(cq.occupancy(1), 1u);
}

TEST(ClusterQueue, TakeCandidateRespectsSize)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadReq)); // 12B whole
    // Only 4 free bytes: 12B candidate must not be taken.
    EXPECT_EQ(cq.takeCandidate(1, 4, 64, nullptr), nullptr);
}

TEST(ClusterQueue, TakeCandidateRespectsSearchDepth)
{
    // Search depth applies within each class queue: a ReadRsp tail sits
    // at position 4 behind its packet's four full flits.
    ClusterQueue cq(64, {1});
    for (auto &f :
         segmentPacket(makePacket(PacketType::ReadRsp, 0, 2, 0x40), 16))
        cq.push(1, std::move(f));
    EXPECT_EQ(cq.takeCandidate(1, 12, 3, nullptr), nullptr);
    auto cand = cq.takeCandidate(1, 12, 64, nullptr);
    ASSERT_NE(cand, nullptr);
    EXPECT_TRUE(cand->isTail());
}

TEST(ClusterQueue, AnyOtherServable)
{
    ClusterQueue cq(64, {1});
    cq.push(1, flitOf(PacketType::ReadReq));
    CqPartitionId rr{1, CqClass::ReadReq};
    EXPECT_FALSE(cq.anyOtherServable(rr, 0));
    cq.push(1, flitOf(PacketType::WriteRsp));
    EXPECT_TRUE(cq.anyOtherServable(rr, 0));
}

TEST(ClusterQueue, MultiDestinationIsolation)
{
    ClusterQueue cq(64, {1, 2});
    cq.push(1, flitOf(PacketType::ReadReq));
    EXPECT_EQ(cq.occupancy(1), 1u);
    EXPECT_EQ(cq.occupancy(2), 0u);
    // Candidates never cross destinations.
    EXPECT_EQ(cq.takeCandidate(2, 16, 64, nullptr), nullptr);
}

TEST(ClusterQueue, OverflowPanics)
{
    ClusterQueue cq(2, {1, 2}); // budget 1 per destination
    cq.push(1, flitOf(PacketType::ReadReq));
    EXPECT_FALSE(cq.hasSpace(1));
    EXPECT_DEATH(cq.push(1, flitOf(PacketType::ReadReq)), "overflow");
}

} // namespace
} // namespace netcrafter::core
