/** @file Unit tests for the Trim Engine. */

#include <gtest/gtest.h>

#include "src/core/trim_engine.hh"

namespace netcrafter::core {
namespace {

using noc::makePacket;
using noc::PacketType;

noc::PacketPtr
eligibleRsp()
{
    auto pkt = makePacket(PacketType::ReadRsp, 0, 2, 0x40);
    pkt->interCluster = true;
    pkt->trimEligible = true;
    pkt->bytesNeeded = 8;
    pkt->neededOffset = 16;
    return pkt;
}

TEST(TrimEngine, TrimsEligibleInterClusterReadResponses)
{
    TrimEngine trim(16);
    auto pkt = eligibleRsp();
    ASSERT_TRUE(trim.shouldTrim(*pkt));
    trim.trim(*pkt);
    EXPECT_TRUE(pkt->trimmed);
    EXPECT_EQ(pkt->payloadBytes, 16u);
    EXPECT_EQ(pkt->totalBytes(), 20u);
    EXPECT_EQ(pkt->trimSector, 1u); // offset 16 / granularity 16
    EXPECT_EQ(trim.stats().packetsTrimmed, 1u);
    EXPECT_EQ(trim.stats().bytesTrimmed, 48u);
}

TEST(TrimEngine, OnlyReadResponses)
{
    TrimEngine trim(16);
    auto pkt = eligibleRsp();
    pkt->type = PacketType::WriteReq;
    EXPECT_FALSE(trim.shouldTrim(*pkt));
    pkt->type = PacketType::PageTableRsp;
    EXPECT_FALSE(trim.shouldTrim(*pkt));
}

TEST(TrimEngine, OnlyInterCluster)
{
    TrimEngine trim(16);
    auto pkt = eligibleRsp();
    pkt->interCluster = false;
    EXPECT_FALSE(trim.shouldTrim(*pkt));
}

TEST(TrimEngine, OnlyWhenRequesterFlaggedEligibility)
{
    TrimEngine trim(16);
    auto pkt = eligibleRsp();
    pkt->trimEligible = false;
    EXPECT_FALSE(trim.shouldTrim(*pkt));
}

TEST(TrimEngine, NeverTrimsTwice)
{
    TrimEngine trim(16);
    auto pkt = eligibleRsp();
    trim.trim(*pkt);
    EXPECT_FALSE(trim.shouldTrim(*pkt));
}

TEST(TrimEngine, NoTrimWhenPayloadAlreadySmall)
{
    TrimEngine trim(16);
    auto pkt = eligibleRsp();
    pkt->payloadBytes = 16;
    EXPECT_FALSE(trim.shouldTrim(*pkt));
}

TEST(TrimEngine, FitsOneSectorBoundaryCases)
{
    // Within the first 16B sector.
    EXPECT_TRUE(TrimEngine::fitsOneSector(0, 16, 16));
    EXPECT_TRUE(TrimEngine::fitsOneSector(12, 4, 16));
    // Straddles sectors 0 and 1.
    EXPECT_FALSE(TrimEngine::fitsOneSector(12, 8, 16));
    // Exactly one later sector.
    EXPECT_TRUE(TrimEngine::fitsOneSector(48, 16, 16));
    // Bigger than a sector.
    EXPECT_FALSE(TrimEngine::fitsOneSector(0, 17, 16));
    // Degenerate.
    EXPECT_FALSE(TrimEngine::fitsOneSector(0, 0, 16));
}

TEST(TrimEngine, GranularityFour)
{
    TrimEngine trim(4);
    auto pkt = eligibleRsp();
    pkt->bytesNeeded = 4;
    pkt->neededOffset = 60;
    ASSERT_TRUE(trim.shouldTrim(*pkt));
    trim.trim(*pkt);
    EXPECT_EQ(pkt->payloadBytes, 4u);
    EXPECT_EQ(pkt->trimSector, 15u);
    EXPECT_EQ(pkt->totalBytes(), 8u); // 4B header + 4B sector: 1 flit
}

TEST(TrimEngine, SectorIndexFromOffset)
{
    TrimEngine trim(16);
    for (std::uint32_t offset : {0u, 16u, 32u, 48u}) {
        auto pkt = eligibleRsp();
        pkt->neededOffset = static_cast<std::uint8_t>(offset);
        trim.trim(*pkt);
        EXPECT_EQ(pkt->trimSector, offset / 16);
    }
}

} // namespace
} // namespace netcrafter::core
