/** @file Tests for the Table 3 workload models and MixKernel. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/gpu/coalescer.hh"
#include "src/workloads/mix_kernel.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::workloads {
namespace {

struct RecordingPlacement : PlacementDirectory
{
    std::map<Addr, GpuId> pages;
    void
    place(Addr vaddr, GpuId owner) override
    {
        pages[pageAddr(vaddr)] = owner;
    }
};

BuildContext
ctx(RecordingPlacement &rec, double scale = 0.2)
{
    BuildContext c;
    c.numGpus = 4;
    c.scale = scale;
    c.seed = 7;
    c.placement = &rec;
    return c;
}

TEST(WorkloadRegistry, AllFifteenAppsExist)
{
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 15u);
    for (const auto &name : names) {
        auto wl = makeWorkload(name);
        ASSERT_NE(wl, nullptr) << name;
        EXPECT_EQ(wl->name(), name);
    }
    auto all = makeAllWorkloads();
    EXPECT_EQ(all.size(), 15u);
}

TEST(WorkloadRegistry, GemmWorkloadExists)
{
    auto gemm = makeGemmWorkload();
    EXPECT_EQ(gemm->name(), "GEMM");
    EXPECT_EQ(makeWorkload("GEMM")->name(), "GEMM");
}

TEST(WorkloadRegistry, UnknownNameDies)
{
    EXPECT_DEATH(makeWorkload("NOPE"), "unknown");
}

TEST(Workloads, BuildRegistersPlacementAndKernels)
{
    for (const auto &name : workloadNames()) {
        RecordingPlacement rec;
        auto c = ctx(rec);
        auto wl = makeWorkload(name);
        wl->build(c);
        EXPECT_FALSE(wl->kernels().empty()) << name;
        EXPECT_FALSE(rec.pages.empty()) << name;
        for (const auto &[page, owner] : rec.pages)
            EXPECT_LT(owner, 4u);
    }
}

TEST(Workloads, GenerationIsDeterministic)
{
    for (const auto &name : {"GUPS", "SYR2K", "VGG16"}) {
        RecordingPlacement rec1, rec2;
        auto c1 = ctx(rec1);
        auto c2 = ctx(rec2);
        auto wl1 = makeWorkload(name);
        auto wl2 = makeWorkload(name);
        wl1->build(c1);
        wl2->build(c2);

        Pcg32 rng1(1234), rng2(1234);
        Instruction i1, i2;
        for (std::uint32_t idx = 0; idx < 5; ++idx) {
            const bool has1 =
                wl1->kernels()[0]->generate(0, 0, idx, rng1, i1);
            const bool has2 =
                wl2->kernels()[0]->generate(0, 0, idx, rng2, i2);
            ASSERT_EQ(has1, has2);
            if (!has1)
                break;
            EXPECT_EQ(i1.addrs, i2.addrs) << name;
            EXPECT_EQ(i1.isWrite, i2.isWrite);
        }
    }
}

TEST(Workloads, AddressesStayInsidePlacedBuffers)
{
    for (const auto &name : workloadNames()) {
        RecordingPlacement rec;
        auto c = ctx(rec);
        auto wl = makeWorkload(name);
        wl->build(c);

        Pcg32 rng(99);
        Instruction instr;
        const auto &kernel = *wl->kernels().front();
        for (std::uint32_t idx = 0; idx < 3; ++idx) {
            if (!kernel.generate(1, 0, idx, rng, instr))
                break;
            for (Addr a : instr.addrs) {
                if (a == kAddrInvalid)
                    continue;
                EXPECT_TRUE(rec.pages.count(pageAddr(a)))
                    << name << " addr 0x" << std::hex << a;
            }
        }
    }
}

TEST(Workloads, BeyondLastInstructionReturnsFalse)
{
    RecordingPlacement rec;
    auto c = ctx(rec);
    auto wl = makeWorkload("GUPS");
    wl->build(c);
    const auto &kernel = *wl->kernels().front();
    const KernelInfo info = kernel.info();
    Pcg32 rng(1);
    Instruction instr;
    EXPECT_FALSE(kernel.generate(0, 0, info.instructionsPerWave, rng,
                                 instr));
    EXPECT_FALSE(kernel.generate(info.numCtas, 0, 0, rng, instr));
    EXPECT_FALSE(kernel.generate(0, info.wavesPerCta, 0, rng, instr));
}

TEST(Workloads, ScaleMultipliesInstructionCount)
{
    RecordingPlacement rec1, rec2;
    auto c_small = ctx(rec1, 0.5);
    auto c_big = ctx(rec2, 1.0);
    auto wl_small = makeWorkload("GUPS");
    auto wl_big = makeWorkload("GUPS");
    wl_small->build(c_small);
    wl_big->build(c_big);
    EXPECT_LT(wl_small->kernels()[0]->info().instructionsPerWave,
              wl_big->kernels()[0]->info().instructionsPerWave);
}

TEST(MixKernel, AdjacentStreamUsesFullLines)
{
    AccessStream s;
    s.kind = AccessStream::Kind::Adjacent;
    s.base = 0x1'0000'0000ull;
    s.elems = 1 << 20;
    s.elemBytes = 4;
    MixKernel kernel(KernelInfo{4, 1, 4}, {s});
    Pcg32 rng(3);
    Instruction instr;
    ASSERT_TRUE(kernel.generate(0, 0, 0, rng, instr));
    auto accesses = gpu::coalesce(instr);
    EXPECT_LE(accesses.size(), 5u);
    std::uint32_t full = 0;
    for (const auto &a : accesses)
        full += a.bytes == 64 ? 1 : 0;
    EXPECT_GE(full, 3u);
}

TEST(MixKernel, RandomStreamGroupsLanesPerPage)
{
    AccessStream s;
    s.kind = AccessStream::Kind::Random;
    s.base = 0x1'0000'0000ull;
    s.elems = 1 << 22;
    s.elemBytes = 4;
    s.lanesPerPage = 8;
    MixKernel kernel(KernelInfo{4, 1, 4}, {s});
    Pcg32 rng(3);
    Instruction instr;
    ASSERT_TRUE(kernel.generate(0, 0, 0, rng, instr));
    std::set<Addr> pages;
    for (Addr a : instr.addrs)
        pages.insert(pageAddr(a));
    EXPECT_LE(pages.size(), 8u); // 64 lanes / 8 per page
    EXPECT_GE(pages.size(), 4u); // collisions possible but rare
}

TEST(MixKernel, HotFractionConcentratesAccesses)
{
    AccessStream s;
    s.kind = AccessStream::Kind::Random;
    s.base = 0x1'0000'0000ull;
    s.elems = 1 << 22;
    s.elemBytes = 4;
    s.hotFraction = 1.0; // always hot
    s.hotElems = 1024;   // one page
    MixKernel kernel(KernelInfo{4, 1, 4}, {s});
    Pcg32 rng(3);
    Instruction instr;
    ASSERT_TRUE(kernel.generate(0, 0, 0, rng, instr));
    for (Addr a : instr.addrs)
        EXPECT_LT(a, s.base + 1024 * 4);
}

TEST(MixKernel, StridedStreamHitsDistinctLines)
{
    AccessStream s;
    s.kind = AccessStream::Kind::Strided;
    s.base = 0x1'0000'0000ull;
    s.elems = 1 << 22;
    s.elemBytes = 4;
    s.stride = 256; // 1 KB apart
    MixKernel kernel(KernelInfo{4, 1, 4}, {s});
    Pcg32 rng(3);
    Instruction instr;
    ASSERT_TRUE(kernel.generate(0, 0, 0, rng, instr));
    auto accesses = gpu::coalesce(instr);
    EXPECT_EQ(accesses.size(), kWavefrontSize);
    for (const auto &a : accesses)
        EXPECT_EQ(a.bytes, 4u);
}

TEST(MixKernel, PartitionedRandomStaysInCtaChunk)
{
    AccessStream s;
    s.kind = AccessStream::Kind::PartitionedRandom;
    s.base = 0x1'0000'0000ull;
    s.elems = 1 << 20;
    s.elemBytes = 4;
    const std::uint32_t num_ctas = 16;
    MixKernel kernel(KernelInfo{num_ctas, 1, 4}, {s});
    const std::uint64_t chunk_bytes = (s.elems / num_ctas) * 4;
    Pcg32 rng(3);
    Instruction instr;
    for (std::uint32_t cta : {0u, 7u, 15u}) {
        ASSERT_TRUE(kernel.generate(cta, 0, 0, rng, instr));
        for (Addr a : instr.addrs) {
            const Addr lo = s.base + cta * chunk_bytes;
            // Page-group anchoring may reach slightly before the chunk
            // start (page alignment), never beyond a page.
            EXPECT_GE(a + kPageBytes, lo);
            EXPECT_LT(a, lo + chunk_bytes + kPageBytes);
        }
    }
}

TEST(MixKernel, WriteStreamsMarkInstructionsAsWrites)
{
    AccessStream s;
    s.kind = AccessStream::Kind::Adjacent;
    s.base = 0x1'0000'0000ull;
    s.elems = 1024;
    s.elemBytes = 4;
    s.write = true;
    MixKernel kernel(KernelInfo{1, 1, 1}, {s});
    Pcg32 rng(3);
    Instruction instr;
    ASSERT_TRUE(kernel.generate(0, 0, 0, rng, instr));
    EXPECT_TRUE(instr.isWrite);
}

} // namespace
} // namespace netcrafter::workloads
