/** @file Unit tests for the max-min flow model and M/D/1 estimate. */

#include <gtest/gtest.h>

#include <vector>

#include "src/flow/flow_model.hh"

namespace netcrafter::flow {
namespace {

TEST(FlowModel, SingleLinkEqualSplit)
{
    // Two flows, each demanding more than half of a 10 B/cy link:
    // max-min gives each exactly half.
    FlowModel m;
    const auto link = m.addLink(rateQ16(10));
    const auto a = m.addFlow({link}, rateQ16(8));
    const auto b = m.addFlow({link}, rateQ16(9));
    m.recompute();
    EXPECT_EQ(m.rate(a), rateQ16(5));
    EXPECT_EQ(m.rate(b), rateQ16(5));
    EXPECT_EQ(m.linkLoad(link), rateQ16(10));
    EXPECT_EQ(m.linkUtilizationQ16(link), kRateOne);
}

TEST(FlowModel, DemandLimitedFlowDonatesHeadroom)
{
    // One flow asks for 2 of a 10-capacity link; the leftover 8 goes
    // to the greedy flow instead of an even 5/5 split.
    FlowModel m;
    const auto link = m.addLink(rateQ16(10));
    const auto small = m.addFlow({link}, rateQ16(2));
    const auto big = m.addFlow({link}, rateQ16(100));
    m.recompute();
    EXPECT_EQ(m.rate(small), rateQ16(2));
    EXPECT_EQ(m.rate(big), rateQ16(8));
}

TEST(FlowModel, TwoLinkBottleneck)
{
    // Classic 3-flow, 2-link max-min: flow C crosses both links.
    //   link0 capacity 10: flows A, C
    //   link1 capacity  4: flows B, C
    // link1's share (2 each) binds B and C; A then takes link0's
    // remaining 8.
    FlowModel m;
    const auto l0 = m.addLink(rateQ16(10));
    const auto l1 = m.addLink(rateQ16(4));
    const auto a = m.addFlow({l0}, rateQ16(100));
    const auto b = m.addFlow({l1}, rateQ16(100));
    const auto c = m.addFlow({l0, l1}, rateQ16(100));
    m.recompute();
    EXPECT_EQ(m.rate(b), rateQ16(2));
    EXPECT_EQ(m.rate(c), rateQ16(2));
    EXPECT_EQ(m.rate(a), rateQ16(8));
    EXPECT_EQ(m.linkLoad(l0), rateQ16(10));
    EXPECT_EQ(m.linkLoad(l1), rateQ16(4));
}

TEST(FlowModel, EmptyPathFlowAlwaysGranted)
{
    FlowModel m;
    const auto f = m.addFlow({}, rateQ16(123));
    m.recompute();
    EXPECT_EQ(m.rate(f), rateQ16(123));
}

TEST(FlowModel, RemovedFlowReleasesItsShare)
{
    FlowModel m;
    const auto link = m.addLink(rateQ16(10));
    const auto a = m.addFlow({link}, rateQ16(100));
    const auto b = m.addFlow({link}, rateQ16(100));
    m.recompute();
    EXPECT_EQ(m.rate(a), rateQ16(5));
    m.removeFlow(b);
    m.recompute();
    EXPECT_EQ(m.rate(a), rateQ16(10));
    EXPECT_EQ(m.rate(b), 0u);
    EXPECT_EQ(m.numFlows(), 1u);
}

TEST(FlowModel, RecomputeIsDeterministic)
{
    // The allocation must be a pure function of (capacities, demands):
    // identical models recomputed any number of times agree bit for
    // bit, including after demand churn that exercises the freeze
    // order.
    auto build = [] {
        FlowModel m;
        const auto l0 = m.addLink(rateQ16(16));
        const auto l1 = m.addLink(rateQ16(16));
        m.addFlow({l0}, rateQ16(7));
        m.addFlow({l0, l1}, rateQ16(13));
        m.addFlow({l1}, rateQ16(5));
        m.addFlow({l0}, rateQ16(11));
        return m;
    };
    FlowModel x = build();
    FlowModel y = build();
    for (int round = 0; round < 3; ++round) {
        x.recompute();
        y.recompute();
        for (FlowModel::FlowId f = 0; f < 4; ++f)
            ASSERT_EQ(x.rate(f), y.rate(f)) << "flow " << f;
    }
    // Same-demand churn through setDemand must land on the same
    // answer as the fresh model.
    x.setDemand(1, rateQ16(40));
    x.recompute();
    x.setDemand(1, rateQ16(13));
    x.recompute();
    for (FlowModel::FlowId f = 0; f < 4; ++f)
        EXPECT_EQ(x.rate(f), y.rate(f)) << "flow " << f;
}

TEST(FlowModel, Md1WaitShape)
{
    // Zero at zero utilization or zero service time.
    EXPECT_EQ(FlowModel::md1WaitTicks(0, 10), 0u);
    EXPECT_EQ(FlowModel::md1WaitTicks(kRateOne / 2, 0), 0u);
    // Exact closed form at rho = 1/2: Wq = S/2.
    EXPECT_EQ(FlowModel::md1WaitTicks(kRateOne / 2, 10), 5u);
    // Monotone in rho and in service time.
    const Tick low = FlowModel::md1WaitTicks(kRateOne / 4, 10);
    const Tick high = FlowModel::md1WaitTicks(3 * (kRateOne / 4), 10);
    EXPECT_LT(low, high);
    EXPECT_LT(FlowModel::md1WaitTicks(kRateOne / 2, 5),
              FlowModel::md1WaitTicks(kRateOne / 2, 50));
    // Saturation clamps to a large finite wait, no blow-up.
    const Tick sat = FlowModel::md1WaitTicks(kRateOne, 10);
    EXPECT_GT(sat, high);
    EXPECT_LT(sat, 10'000u);
    // Over-unity input behaves like saturation.
    EXPECT_EQ(FlowModel::md1WaitTicks(2 * kRateOne, 10), sat);
}

} // namespace
} // namespace netcrafter::flow
