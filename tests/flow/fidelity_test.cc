/**
 * @file
 * Tests for fidelity selection (CLI/env parsing), flow-lane
 * conservation and determinism on real runs, and the result-cache
 * fidelity key.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/config/system_config.hh"
#include "src/exp/result_cache.hh"
#include "src/flow/fidelity.hh"
#include "src/flow/fidelity_controller.hh"
#include "src/harness/runner.hh"
#include "src/obs/trace.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter::flow {
namespace {

// Small problem, serial engine: fast enough for a unit test while
// still pushing thousands of packets through the flow lane.
harness::RunResult
runAt(const char *workload, Fidelity fidelity, double scale = 0.05)
{
    const obs::TraceOptions no_trace;
    const sim::ExecPolicy serial{1, false, 1};
    return harness::runWorkload(workload, config::baselineConfig(),
                                scale, /*shards=*/1, no_trace, serial,
                                fidelity);
}

TEST(Fidelity, NamesRoundTrip)
{
    EXPECT_STREQ(fidelityName(Fidelity::Cycle), "cycle");
    EXPECT_STREQ(fidelityName(Fidelity::Flow), "flow");
    EXPECT_STREQ(fidelityName(Fidelity::Hybrid), "hybrid");
    EXPECT_EQ(parseFidelity("cycle"), Fidelity::Cycle);
    EXPECT_EQ(parseFidelity("flow"), Fidelity::Flow);
    EXPECT_EQ(parseFidelity("hybrid"), Fidelity::Hybrid);
    EXPECT_EQ(parseFidelity("Cycle"), std::nullopt);
    EXPECT_EQ(parseFidelity(""), std::nullopt);
    EXPECT_EQ(parseFidelity("fast"), std::nullopt);
}

TEST(FidelityDeathTest, GarbageArgumentIsFatal)
{
    EXPECT_DEATH(parseFidelityOrDie("warp", "--fidelity"),
                 "invalid --fidelity value 'warp'");
}

TEST(FidelityDeathTest, GarbageEnvironmentIsFatal)
{
    // A sweep silently running at the wrong fidelity is worse than an
    // early exit, so the env hook validates instead of ignoring.
    ::setenv("NETCRAFTER_FIDELITY", "approximately", 1);
    EXPECT_DEATH((void)fidelityFromEnv(), "NETCRAFTER_FIDELITY");
    ::unsetenv("NETCRAFTER_FIDELITY");
}

TEST(Fidelity, EnvironmentSelectsAndFallsBack)
{
    ::setenv("NETCRAFTER_FIDELITY", "hybrid", 1);
    EXPECT_EQ(fidelityFromEnv(), Fidelity::Hybrid);
    ::setenv("NETCRAFTER_FIDELITY", "flow", 1);
    EXPECT_EQ(fidelityFromEnv(Fidelity::Cycle), Fidelity::Flow);
    ::unsetenv("NETCRAFTER_FIDELITY");
    EXPECT_EQ(fidelityFromEnv(), Fidelity::Cycle);
    EXPECT_EQ(fidelityFromEnv(Fidelity::Hybrid), Fidelity::Hybrid);
    // Empty string counts as unset, not as garbage.
    ::setenv("NETCRAFTER_FIDELITY", "", 1);
    EXPECT_EQ(fidelityFromEnv(Fidelity::Flow), Fidelity::Flow);
    ::unsetenv("NETCRAFTER_FIDELITY");
}

TEST(FlowLane, CycleModeNeverTouchesTheFlowLane)
{
    const auto r = runAt("GUPS", Fidelity::Cycle);
    EXPECT_EQ(r.fidelity, Fidelity::Cycle);
    EXPECT_EQ(r.flowPackets, 0u);
    EXPECT_EQ(r.flowBytesInjected, 0u);
    EXPECT_EQ(r.flowRecomputes, 0u);
}

TEST(FlowLane, FlowModeConservesPacketsAndBytes)
{
    const auto r = runAt("GUPS", Fidelity::Flow);
    EXPECT_EQ(r.fidelity, Fidelity::Flow);
    // The run must actually exercise the lane...
    EXPECT_GT(r.flowPackets, 0u);
    EXPECT_GT(r.flowBytesInjected, 0u);
    // ...and every epoch-boundary conversion must conserve exactly:
    // nothing the flow lane accepted may be lost or duplicated.
    EXPECT_EQ(r.flowPackets, r.flowPacketsDelivered);
    EXPECT_EQ(r.flowBytesInjected, r.flowBytesDelivered);
}

TEST(FlowLane, HybridModeConservesAcrossLaneTransitions)
{
    // MVT settles into steady state, so hybrid both activates lanes and
    // (on instability) escalates back — the conversion paths in both
    // directions must conserve.
    const auto r = runAt("MVT", Fidelity::Hybrid, 0.1);
    EXPECT_EQ(r.fidelity, Fidelity::Hybrid);
    EXPECT_GT(r.flowCyclePackets, 0u);
    EXPECT_EQ(r.flowPackets, r.flowPacketsDelivered);
    EXPECT_EQ(r.flowBytesInjected, r.flowBytesDelivered);
}

TEST(FlowLane, FlowModeIsDeterministic)
{
    // The flow lane is integer-only by construction; two identical runs
    // must agree on every measurement, not just approximately.
    const auto a = runAt("MT", Fidelity::Flow);
    const auto b = runAt("MT", Fidelity::Flow);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.flowPackets, b.flowPackets);
    EXPECT_EQ(a.flowBytesInjected, b.flowBytesInjected);
    EXPECT_EQ(a.flowMd1WaitTicks, b.flowMd1WaitTicks);
    EXPECT_EQ(a.flowFifoWaitTicks, b.flowFifoWaitTicks);
    EXPECT_TRUE(harness::sameMeasurement(a, b));
}

TEST(CacheKeyFidelity, FidelityIsPartOfTheKey)
{
    exp::Job job{"j1", "GUPS", config::baselineConfig(), 1.0, {}};
    const auto cycle_key = exp::keyOf(job, Fidelity::Cycle);
    const auto flow_key = exp::keyOf(job, Fidelity::Flow);
    const auto hybrid_key = exp::keyOf(job, Fidelity::Hybrid);
    EXPECT_FALSE(cycle_key == flow_key);
    EXPECT_FALSE(cycle_key == hybrid_key);
    EXPECT_FALSE(flow_key == hybrid_key);
    // The single-argument overload is the cycle key: pre-fidelity call
    // sites keep their exact cache identity.
    EXPECT_TRUE(exp::keyOf(job) == cycle_key);
}

TEST(CacheKeyFidelity, ApproximateResultNeverAnswersACycleRequest)
{
    // Regression for the one way the cache could silently lie: a flow
    // run populating the entry a later cycle-accurate request reads.
    exp::ResultCache cache;
    exp::Job job{"j1", "GUPS", config::baselineConfig(), 1.0, {}};

    harness::RunResult flow_result;
    flow_result.workload = "GUPS";
    flow_result.cycles = 111;
    flow_result.fidelity = Fidelity::Flow;

    harness::RunResult cycle_result;
    cycle_result.workload = "GUPS";
    cycle_result.cycles = 222;

    bool hit = true;
    const auto first =
        cache.getOrRun(exp::keyOf(job, Fidelity::Flow),
                       [&] { return flow_result; }, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(first.cycles, 111u);

    const auto second =
        cache.getOrRun(exp::keyOf(job, Fidelity::Cycle),
                       [&] { return cycle_result; }, &hit);
    EXPECT_FALSE(hit) << "cycle request must miss a flow-filled cache";
    EXPECT_EQ(second.cycles, 222u);

    // Each fidelity hits its own entry on re-request.
    const auto again =
        cache.getOrRun(exp::keyOf(job, Fidelity::Flow),
                       [&] { return cycle_result; }, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(again.cycles, 111u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(FlowEpochEnv, ParsesValidValues)
{
    EXPECT_EQ(parseFlowEpochTicksEnv("1"), 1u);
    EXPECT_EQ(parseFlowEpochTicksEnv("256"), 256u);
    EXPECT_EQ(parseFlowEpochTicksEnv("1073741824"), 1u << 30);
    EXPECT_EQ(parseFlowStableEpochsEnv("1"), 1u);
    EXPECT_EQ(parseFlowStableEpochsEnv("4"), 4u);
    EXPECT_EQ(parseFlowStableEpochsEnv("1048576"), 1u << 20);
}

TEST(FlowEpochEnvDeathTest, GarbageIsFatal)
{
    // Epoch 0 would classify every lane instantly; silently clamping
    // hides the typo, so both knobs validate like NETCRAFTER_SHARDS.
    EXPECT_DEATH(parseFlowEpochTicksEnv("0"),
                 "NETCRAFTER_FLOW_EPOCH_TICKS");
    EXPECT_DEATH(parseFlowEpochTicksEnv("256ms"),
                 "NETCRAFTER_FLOW_EPOCH_TICKS");
    EXPECT_DEATH(parseFlowEpochTicksEnv("-16"),
                 "NETCRAFTER_FLOW_EPOCH_TICKS");
    EXPECT_DEATH(parseFlowEpochTicksEnv("1073741825"),
                 "NETCRAFTER_FLOW_EPOCH_TICKS");
    EXPECT_DEATH(parseFlowStableEpochsEnv("0"),
                 "NETCRAFTER_FLOW_STABLE_EPOCHS");
    EXPECT_DEATH(parseFlowStableEpochsEnv("four"),
                 "NETCRAFTER_FLOW_STABLE_EPOCHS");
    EXPECT_DEATH(parseFlowStableEpochsEnv("1048577"),
                 "NETCRAFTER_FLOW_STABLE_EPOCHS");
}

TEST(FlowEpochEnv, EnvironmentOverridesControllerDefaults)
{
    ::unsetenv("NETCRAFTER_FLOW_EPOCH_TICKS");
    ::unsetenv("NETCRAFTER_FLOW_STABLE_EPOCHS");
    EXPECT_EQ(flowEpochTicksFromEnv(
                  FidelityController::kDefaultEpochTicks),
              FidelityController::kDefaultEpochTicks);
    EXPECT_EQ(flowStableEpochsFromEnv(
                  FidelityController::kDefaultStableEpochs),
              FidelityController::kDefaultStableEpochs);

    ::setenv("NETCRAFTER_FLOW_EPOCH_TICKS", "512", 1);
    ::setenv("NETCRAFTER_FLOW_STABLE_EPOCHS", "8", 1);
    EXPECT_EQ(flowEpochTicksFromEnv(
                  FidelityController::kDefaultEpochTicks),
              512u);
    EXPECT_EQ(flowStableEpochsFromEnv(
                  FidelityController::kDefaultStableEpochs),
              8u);

    // A constructed controller picks the override up.
    const FidelityController ctl(config::baselineConfig(),
                                 Fidelity::Hybrid);
    EXPECT_EQ(ctl.epochTicks(), 512u);
    EXPECT_EQ(ctl.stableEpochs(), 8u);

    ::unsetenv("NETCRAFTER_FLOW_EPOCH_TICKS");
    ::unsetenv("NETCRAFTER_FLOW_STABLE_EPOCHS");
}

TEST(FlowEpochEnv, KnobsShiftTheHybridHandoverPoint)
{
    // A much longer epoch with a higher stability requirement delays
    // (or prevents) flow-lane handover, so the hybrid run hands fewer
    // packets to the flow model than the default-knob run. Both remain
    // valid hybrid runs; only the split moves.
    const harness::RunResult defaults = runAt("GUPS", Fidelity::Hybrid);
    ::setenv("NETCRAFTER_FLOW_EPOCH_TICKS", "65536", 1);
    ::setenv("NETCRAFTER_FLOW_STABLE_EPOCHS", "64", 1);
    const harness::RunResult sluggish = runAt("GUPS", Fidelity::Hybrid);
    ::unsetenv("NETCRAFTER_FLOW_EPOCH_TICKS");
    ::unsetenv("NETCRAFTER_FLOW_STABLE_EPOCHS");

    EXPECT_LE(sluggish.flowPackets, defaults.flowPackets);
    EXPECT_EQ(defaults.instructions, sluggish.instructions)
        << "epoch knobs may move the lane split, never the work";
}

} // namespace
} // namespace netcrafter::flow
