/** @file Tests for the mergeable streaming quantile sketch. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/sim/random.hh"
#include "src/stats/quantile.hh"

namespace netcrafter::stats {
namespace {

/** Exact quantile of a sample set, with the same rank convention the
 *  sketch uses: the value at rank max(1, ceil(q * n)). */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> values, double q)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(values.size())));
    rank = std::max<std::uint64_t>(rank, 1);
    return values[rank - 1];
}

TEST(QuantileSketch, EmptySketchReportsZeroes)
{
    QuantileSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.quantile(0.5), 0u);
    EXPECT_EQ(s.quantile(0.999), 0u);
}

TEST(QuantileSketch, SmallValuesAreExact)
{
    // Values below kLinearMax each own a bucket, so quantiles on them
    // equal the exact order statistics.
    QuantileSketch s;
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v < QuantileSketch::kLinearMax; ++v) {
        s.record(v);
        values.push_back(v);
    }
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0})
        EXPECT_EQ(s.quantile(q), exactQuantile(values, q)) << "q=" << q;
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), QuantileSketch::kLinearMax - 1);
}

TEST(QuantileSketch, EstimateNeverUnderstatesAndIsWithinOneBucket)
{
    // Pseudo-random samples spanning several octaves: the estimate
    // must be >= the exact quantile (the sketch reports the bucket's
    // upper bound) and within one sub-bucket of relative error.
    QuantileSketch s;
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 20'000; ++i) {
        const double u = CounterRng::uniform(7, 0, i);
        const auto v = static_cast<std::uint64_t>(
            50.0 * std::exp(6.0 * u));
        s.record(v);
        values.push_back(v);
    }
    const double maxRel =
        1.0 / static_cast<double>(QuantileSketch::kSubBuckets);
    for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        const std::uint64_t exact = exactQuantile(values, q);
        const std::uint64_t est = s.quantile(q);
        EXPECT_GE(est, exact) << "q=" << q;
        EXPECT_LE(static_cast<double>(est),
                  static_cast<double>(exact) * (1.0 + maxRel) + 1.0)
            << "q=" << q;
    }

    // Mean is tracked as an exact integer sum.
    double sum = 0;
    for (std::uint64_t v : values)
        sum += static_cast<double>(v);
    EXPECT_DOUBLE_EQ(s.mean(), sum / static_cast<double>(values.size()));
}

TEST(QuantileSketch, QuantilesAreMonotoneInQ)
{
    QuantileSketch s;
    for (std::uint64_t i = 0; i < 5'000; ++i)
        s.record(CounterRng::draw(3, 1, i) >> 40);
    std::uint64_t prev = 0;
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
        const std::uint64_t cur = s.quantile(q);
        EXPECT_GE(cur, prev) << "q=" << q;
        prev = cur;
    }
    // q=1 reports the max's bucket upper bound: never below the max.
    EXPECT_GE(s.quantile(1.0), s.max());
}

TEST(QuantileSketch, BucketLayoutInvariants)
{
    // Every value maps into a valid bucket whose upper bound is >= the
    // value, and bucket indices are monotone in the value.
    std::uint32_t prevIdx = 0;
    for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 129ull, 255ull,
                            256ull, 1000ull, 65'535ull, 1'000'000ull,
                            (1ull << 40), (1ull << 48) - 1}) {
        const std::uint32_t idx = QuantileSketch::bucketIndex(v);
        ASSERT_LT(idx, QuantileSketch::numBuckets()) << "v=" << v;
        EXPECT_GE(QuantileSketch::bucketUpperBound(idx), v) << "v=" << v;
        EXPECT_GE(idx, prevIdx) << "v=" << v;
        prevIdx = idx;
    }
    // Values beyond the representable range clamp into the top bucket.
    EXPECT_EQ(QuantileSketch::bucketIndex(~0ull),
              QuantileSketch::numBuckets() - 1);
    // Exact region: bucket upper bound is the value itself.
    for (std::uint64_t v = 0; v < QuantileSketch::kLinearMax; ++v)
        EXPECT_EQ(QuantileSketch::bucketUpperBound(
                      QuantileSketch::bucketIndex(v)), v);
}

TEST(QuantileSketch, MergeIsExactAssociativeAndCommutative)
{
    // Three disjoint streams; any parenthesisation / order of merges
    // must give bit-identical counts, mean, and quantiles.
    QuantileSketch a, b, c;
    for (std::uint64_t i = 0; i < 3'000; ++i) {
        a.record(CounterRng::draw(11, 0, i) >> 44);
        b.record(CounterRng::draw(11, 1, i) >> 40);
        c.record(CounterRng::draw(11, 2, i) >> 36);
    }

    QuantileSketch ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);

    QuantileSketch c_ba = c;
    QuantileSketch ba = b;
    ba.merge(a);
    c_ba.merge(ba);

    EXPECT_EQ(ab_c.count(), 9'000u);
    EXPECT_EQ(ab_c.count(), c_ba.count());
    EXPECT_EQ(ab_c.min(), c_ba.min());
    EXPECT_EQ(ab_c.max(), c_ba.max());
    EXPECT_DOUBLE_EQ(ab_c.mean(), c_ba.mean());
    for (double q : {0.5, 0.95, 0.99, 0.999})
        EXPECT_EQ(ab_c.quantile(q), c_ba.quantile(q)) << "q=" << q;

    // Merging equals recording everything into one sketch.
    QuantileSketch all;
    for (std::uint64_t i = 0; i < 3'000; ++i) {
        all.record(CounterRng::draw(11, 0, i) >> 44);
        all.record(CounterRng::draw(11, 1, i) >> 40);
        all.record(CounterRng::draw(11, 2, i) >> 36);
    }
    EXPECT_DOUBLE_EQ(all.mean(), ab_c.mean());
    for (double q : {0.5, 0.95, 0.99, 0.999})
        EXPECT_EQ(all.quantile(q), ab_c.quantile(q)) << "q=" << q;
}

TEST(QuantileSketch, MergeOfEmptyIsIdentity)
{
    QuantileSketch s, empty;
    for (std::uint64_t i = 0; i < 100; ++i)
        s.record(i * 37);
    const std::uint64_t p99 = s.quantile(0.99);
    s.merge(empty);
    EXPECT_EQ(s.count(), 100u);
    EXPECT_EQ(s.quantile(0.99), p99);

    QuantileSketch other = empty;
    other.merge(s);
    EXPECT_EQ(other.count(), s.count());
    EXPECT_EQ(other.quantile(0.99), p99);
}

TEST(QuantileSketch, ResetClears)
{
    QuantileSketch s;
    s.record(42);
    s.record(4'242);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.quantile(0.99), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

} // namespace
} // namespace netcrafter::stats
