/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/stats.hh"

namespace netcrafter::stats {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Average, SingleSampleIsMinAndMax)
{
    Average a;
    a.sample(-5);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), -5.0);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(1);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsByUpperBound)
{
    Distribution d({16, 32, 48, 63});
    d.sample(4);   // <=16
    d.sample(16);  // <=16
    d.sample(17);  // <=32
    d.sample(48);  // <=48
    d.sample(63);  // <=63
    d.sample(64);  // overflow
    EXPECT_EQ(d.total(), 6u);
    EXPECT_EQ(d.bucket(0), 2u);
    EXPECT_EQ(d.bucket(1), 1u);
    EXPECT_EQ(d.bucket(2), 1u);
    EXPECT_EQ(d.bucket(3), 1u);
    EXPECT_EQ(d.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(d.fraction(0), 2.0 / 6.0);
}

TEST(Distribution, EmptyFractionsAreZero)
{
    Distribution d({1, 2});
    EXPECT_DOUBLE_EQ(d.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(d.fraction(2), 0.0);
}

TEST(Distribution, ResetKeepsBounds)
{
    Distribution d({10});
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.total(), 0u);
    d.sample(5);
    EXPECT_EQ(d.bucket(0), 1u);
}

TEST(Registry, CountersPersistByName)
{
    Registry reg;
    reg.counter("a.x").inc(3);
    reg.counter("a.x").inc(4);
    EXPECT_EQ(reg.counter("a.x").value(), 7u);
}

TEST(Registry, SumCountersByPrefix)
{
    Registry reg;
    reg.counter("gpu0.l1.misses").inc(5);
    reg.counter("gpu1.l1.misses").inc(7);
    reg.counter("gpu0.l2.misses").inc(100);
    EXPECT_EQ(reg.sumCounters("gpu0."), 105u);
    EXPECT_EQ(reg.sumCounters("gpu"), 112u);
    EXPECT_EQ(reg.sumCounters("zzz"), 0u);
}

TEST(Registry, DistributionKeepsFirstBounds)
{
    Registry reg;
    auto &d = reg.distribution("lat", {10, 20});
    d.sample(15);
    auto &d2 = reg.distribution("lat", {999});
    EXPECT_EQ(&d, &d2);
    EXPECT_EQ(d2.bounds().size(), 2u);
}

TEST(Registry, DumpContainsEverything)
{
    Registry reg;
    reg.counter("cnt").inc(9);
    reg.average("avg").sample(2.5);
    reg.distribution("dist", {1}).sample(0.5);
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cnt = 9"), std::string::npos);
    EXPECT_NE(out.find("avg"), std::string::npos);
    EXPECT_NE(out.find("dist"), std::string::npos);
}

} // namespace
} // namespace netcrafter::stats
