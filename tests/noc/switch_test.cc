/** @file Unit tests for the pipelined crossbar switch. */

#include <gtest/gtest.h>

#include "src/noc/switch.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {
namespace {

FlitPtr
mkFlitTo(GpuId dst, PacketType type = PacketType::ReadReq)
{
    static std::uint64_t addr = 0;
    auto pkt = makePacket(type, 0, dst, addr += 64);
    return segmentPacket(pkt, 16).front();
}

struct SwitchFixture : ::testing::Test
{
    sim::Engine engine;
    SwitchParams params; // 30-cycle pipeline, 1024-entry buffers
};

TEST_F(SwitchFixture, RoutesByDestination)
{
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(8);
    const std::size_t p1 = sw.addPort(8);
    const std::size_t p2 = sw.addPort(1);
    sw.addRoute(0, p0);
    sw.addRoute(1, p1);
    sw.addRoute(2, p2);

    sw.inBuffer(p0).tryPush(mkFlitTo(1));
    sw.inBuffer(p0).tryPush(mkFlitTo(2));
    engine.run();
    EXPECT_EQ(sw.outBuffer(p1).size(), 1u);
    EXPECT_EQ(sw.outBuffer(p2).size(), 1u);
    EXPECT_EQ(sw.outBuffer(p0).size(), 0u);
    EXPECT_EQ(sw.flitsRouted(), 2u);
}

TEST_F(SwitchFixture, PipelineLatencyApplies)
{
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(1);
    const std::size_t p1 = sw.addPort(1);
    sw.addRoute(1, p1);
    (void)p0;

    sw.inBuffer(p0).tryPush(mkFlitTo(1));
    engine.run();
    // Accept (1) + 30-cycle pipeline + route: >= 31 cycles.
    EXPECT_GE(engine.now(), 31u);
    EXPECT_LE(engine.now(), 40u);
    EXPECT_EQ(sw.outBuffer(p1).size(), 1u);
}

TEST_F(SwitchFixture, ThroughputOneFlitPerCyclePerPort)
{
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(1);
    const std::size_t p1 = sw.addPort(1);
    sw.addRoute(1, p1);

    const int n = 50;
    for (int i = 0; i < n; ++i)
        sw.inBuffer(p0).tryPush(mkFlitTo(1));
    engine.run();
    EXPECT_EQ(sw.outBuffer(p1).size(), static_cast<std::size_t>(n));
    // Pipelined: latency 30 + n cycles of throughput, not 30 * n.
    EXPECT_LT(engine.now(), 30u + n + 10u);
}

TEST_F(SwitchFixture, BackpressureOnFullOutput)
{
    params.bufferEntries = 4;
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(4);
    const std::size_t p1 = sw.addPort(4);
    sw.addRoute(1, p1);

    for (int i = 0; i < 4; ++i)
        sw.inBuffer(p0).tryPush(mkFlitTo(1));
    engine.run();
    // Output buffer holds 4; nothing lost, rest stalled upstream.
    EXPECT_EQ(sw.outBuffer(p1).size(), 4u);

    std::size_t in_flight = sw.inBuffer(p0).size();
    EXPECT_EQ(in_flight, 0u); // all four accepted into the pipeline

    std::size_t accepted = 4; // the first batch
    for (int i = 0; i < 8; ++i)
        accepted += sw.inBuffer(p0).tryPush(mkFlitTo(1)) ? 1 : 0;
    engine.run();
    EXPECT_GT(sw.stallCycles(), 0u);

    // Drain the output; every accepted flit eventually routes.
    std::size_t drained = 0;
    for (int round = 0; round < 20 && drained < accepted; ++round) {
        while (!sw.outBuffer(p1).empty()) {
            sw.outBuffer(p1).pop();
            ++drained;
        }
        engine.run();
    }
    EXPECT_EQ(drained, accepted);
}

TEST_F(SwitchFixture, MissingRoutePanics)
{
    Switch sw(engine, "sw", params);
    sw.addPort(1);
    EXPECT_DEATH(sw.routeFor(7), "no route");
}

/** Ingress processor that duplicates each flit. */
struct Duplicator : IngressProcessor
{
    void
    process(FlitPtr flit, std::vector<FlitPtr> &out) override
    {
        out.push_back(makeFlit(*flit));
        out.push_back(std::move(flit));
    }
};

TEST_F(SwitchFixture, IngressProcessorExpandsFlits)
{
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(1);
    const std::size_t p1 = sw.addPort(1);
    sw.addRoute(1, p1);
    Duplicator dup;
    sw.setIngressProcessor(p0, &dup);

    sw.inBuffer(p0).tryPush(mkFlitTo(1));
    engine.run();
    EXPECT_EQ(sw.outBuffer(p1).size(), 2u);
}

/** Egress processor that counts and accepts. */
struct CountingEgress : EgressProcessor
{
    int accepted = 0;
    bool refuse = false;

    bool
    tryAccept(FlitPtr) override
    {
        if (refuse)
            return false;
        ++accepted;
        return true;
    }
};

TEST_F(SwitchFixture, EgressProcessorInterceptsRoutedFlits)
{
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(1);
    const std::size_t p1 = sw.addPort(1);
    sw.addRoute(1, p1);
    CountingEgress egress;
    sw.setEgressProcessor(p1, &egress);

    sw.inBuffer(p0).tryPush(mkFlitTo(1));
    sw.inBuffer(p0).tryPush(mkFlitTo(1));
    engine.run();
    EXPECT_EQ(egress.accepted, 2);
    EXPECT_EQ(sw.outBuffer(p1).size(), 0u); // processor consumed them
}

TEST_F(SwitchFixture, EgressRefusalStallsUntilNotified)
{
    Switch sw(engine, "sw", params);
    const std::size_t p0 = sw.addPort(1);
    const std::size_t p1 = sw.addPort(1);
    sw.addRoute(1, p1);
    CountingEgress egress;
    egress.refuse = true;
    sw.setEgressProcessor(p1, &egress);

    sw.inBuffer(p0).tryPush(mkFlitTo(1));
    engine.run(200);
    EXPECT_EQ(egress.accepted, 0);

    egress.refuse = false;
    sw.notify();
    engine.run();
    EXPECT_EQ(egress.accepted, 1);
}

} // namespace
} // namespace netcrafter::noc
