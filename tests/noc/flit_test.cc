/** @file Unit and parameterized tests for packet->flit segmentation. */

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "src/noc/flit.hh"

namespace netcrafter::noc {
namespace {

TEST(Flit, ReadRspSegmentsIntoFiveFlits)
{
    auto pkt = makePacket(PacketType::ReadRsp, 0, 1, 0x80);
    auto flits = segmentPacket(pkt, 16);
    ASSERT_EQ(flits.size(), 5u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(flits[i]->occupiedBytes, 16u);
        EXPECT_EQ(flits[i]->freeBytes(), 0u);
    }
    // Tail carries 68 - 64 = 4 bytes, leaving 12 padded (Figure 11).
    EXPECT_EQ(flits[4]->occupiedBytes, 4u);
    EXPECT_EQ(flits[4]->freeBytes(), 12u);
    EXPECT_TRUE(flits[4]->isTail());
    EXPECT_TRUE(flits[0]->isHead());
    EXPECT_FALSE(flits[0]->isTail());
}

TEST(Flit, SingleFlitPacketsHaveHeadEqualTail)
{
    auto pkt = makePacket(PacketType::ReadReq, 0, 1, 0x80);
    auto flits = segmentPacket(pkt, 16);
    ASSERT_EQ(flits.size(), 1u);
    EXPECT_TRUE(flits[0]->isHead());
    EXPECT_TRUE(flits[0]->isTail());
    EXPECT_EQ(flits[0]->occupiedBytes, 12u);
    EXPECT_EQ(flits[0]->freeBytes(), 4u);
}

TEST(Flit, SegmentationConservesBytes)
{
    for (PacketType t :
         {PacketType::ReadReq, PacketType::WriteReq,
          PacketType::PageTableReq, PacketType::ReadRsp,
          PacketType::WriteRsp, PacketType::PageTableRsp}) {
        auto pkt = makePacket(t, 0, 1, 0x40);
        auto flits = segmentPacket(pkt, 16);
        std::uint32_t sum = 0;
        for (const auto &f : flits)
            sum += f->occupiedBytes;
        EXPECT_EQ(sum, pkt->totalBytes()) << packetTypeName(t);
    }
}

TEST(Flit, TrimmedResponseSegmentsIntoTwoFlits)
{
    auto pkt = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    pkt->payloadBytes = 16;
    pkt->trimmed = true;
    auto flits = segmentPacket(pkt, 16);
    ASSERT_EQ(flits.size(), 2u);
    EXPECT_EQ(flits[0]->occupiedBytes, 16u);
    EXPECT_EQ(flits[1]->occupiedBytes, 4u);
}

TEST(Flit, StitchableRules)
{
    auto rsp = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    auto flits = segmentPacket(rsp, 16);
    EXPECT_FALSE(flits[0]->stitchable()); // head of multi-flit packet
    EXPECT_TRUE(flits[4]->stitchable());  // payload-only tail

    auto req = makePacket(PacketType::ReadReq, 0, 1, 0x40);
    auto req_flit = segmentPacket(req, 16).front();
    EXPECT_TRUE(req_flit->stitchable()); // whole single-flit packet
}

TEST(Flit, StitchWireBytesAddMetadataOnlyForPartials)
{
    auto rsp = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    auto tail = segmentPacket(rsp, 16).back();
    EXPECT_EQ(tail->stitchWireBytes(),
              tail->occupiedBytes + kPartialStitchMetaBytes);

    auto req = makePacket(PacketType::ReadReq, 0, 1, 0x40);
    auto whole = segmentPacket(req, 16).front();
    EXPECT_EQ(whole->stitchWireBytes(), whole->occupiedBytes);
}

TEST(Flit, UsedBytesIncludesStitchedPieces)
{
    auto rsp = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    auto tail = segmentPacket(rsp, 16).back();
    ASSERT_EQ(tail->usedBytes(), 4u);

    StitchedPiece piece;
    piece.pkt = makePacket(PacketType::WriteRsp, 0, 1, 0x40);
    piece.bytes = 4;
    piece.wholePacket = true;
    tail->stitched.push_back(piece);
    EXPECT_EQ(tail->usedBytes(), 8u);
    EXPECT_EQ(tail->freeBytes(), 8u);
    EXPECT_TRUE(tail->isStitched());

    StitchedPiece partial;
    partial.pkt = makePacket(PacketType::ReadRsp, 0, 1, 0x80);
    partial.bytes = 4;
    partial.wholePacket = false;
    tail->stitched.push_back(partial);
    EXPECT_EQ(tail->usedBytes(), 8u + 4u + kPartialStitchMetaBytes);
}

TEST(Flit, FlitsForBytesEdgeCases)
{
    EXPECT_EQ(flitsForBytes(0, 16), 1u);
    EXPECT_EQ(flitsForBytes(1, 16), 1u);
    EXPECT_EQ(flitsForBytes(16, 16), 1u);
    EXPECT_EQ(flitsForBytes(17, 16), 2u);
    EXPECT_EQ(flitsForBytes(80, 16), 5u);
    EXPECT_EQ(flitsForBytes(12, 8), 2u);
}

/** Property sweep: segmentation invariants over types x flit sizes. */
class SegmentationSweep
    : public ::testing::TestWithParam<std::tuple<PacketType, int>>
{
};

TEST_P(SegmentationSweep, Invariants)
{
    const PacketType type = std::get<0>(GetParam());
    const std::uint32_t flit_bytes =
        static_cast<std::uint32_t>(std::get<1>(GetParam()));
    auto pkt = makePacket(type, 2, 3, 0x1234000);
    auto flits = segmentPacket(pkt, flit_bytes);

    ASSERT_FALSE(flits.empty());
    EXPECT_EQ(flits.size(),
              flitsForBytes(pkt->totalBytes(), flit_bytes));

    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < flits.size(); ++i) {
        const Flit &f = *flits[i];
        EXPECT_EQ(f.seq, i);
        EXPECT_EQ(f.numFlits, flits.size());
        EXPECT_EQ(f.capacity, flit_bytes);
        EXPECT_LE(f.occupiedBytes, flit_bytes);
        EXPECT_GT(f.occupiedBytes, 0u);
        EXPECT_EQ(f.pkt.get(), pkt.get());
        sum += f.occupiedBytes;
        // Only the tail may be partially filled.
        if (i + 1 < flits.size())
            EXPECT_EQ(f.occupiedBytes, flit_bytes);
    }
    EXPECT_EQ(sum, pkt->totalBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndSizes, SegmentationSweep,
    ::testing::Combine(
        ::testing::Values(PacketType::ReadReq, PacketType::WriteReq,
                          PacketType::PageTableReq, PacketType::ReadRsp,
                          PacketType::WriteRsp,
                          PacketType::PageTableRsp),
        ::testing::Values(8, 16, 32)));

} // namespace
} // namespace netcrafter::noc
