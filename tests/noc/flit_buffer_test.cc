/** @file Unit tests for the bounded flit FIFO. */

#include <gtest/gtest.h>

#include "src/noc/flit_buffer.hh"

namespace netcrafter::noc {
namespace {

FlitPtr
mkFlit()
{
    static std::uint64_t addr = 0;
    auto pkt = makePacket(PacketType::ReadReq, 0, 1, addr += 64);
    return segmentPacket(pkt, 16).front();
}

TEST(FlitBuffer, CapacityEnforced)
{
    FlitBuffer buf(2);
    EXPECT_TRUE(buf.tryPush(mkFlit()));
    EXPECT_TRUE(buf.tryPush(mkFlit()));
    EXPECT_TRUE(buf.full());
    EXPECT_FALSE(buf.tryPush(mkFlit()));
    EXPECT_EQ(buf.size(), 2u);
}

TEST(FlitBuffer, FifoOrder)
{
    FlitBuffer buf(8);
    auto a = mkFlit();
    auto b = mkFlit();
    const Flit *pa = a.get();
    const Flit *pb = b.get();
    buf.tryPush(std::move(a));
    buf.tryPush(std::move(b));
    EXPECT_EQ(buf.pop().get(), pa);
    EXPECT_EQ(buf.pop().get(), pb);
    EXPECT_TRUE(buf.empty());
}

TEST(FlitBuffer, HooksFire)
{
    FlitBuffer buf(4);
    int pushes = 0, pops = 0;
    buf.setOnPush([&] { ++pushes; });
    buf.setOnPop([&] { ++pops; });
    buf.tryPush(mkFlit());
    buf.tryPush(mkFlit());
    buf.pop();
    EXPECT_EQ(pushes, 2);
    EXPECT_EQ(pops, 1);
}

TEST(FlitBuffer, FailedPushDoesNotFireHook)
{
    FlitBuffer buf(1);
    int pushes = 0;
    buf.setOnPush([&] { ++pushes; });
    buf.tryPush(mkFlit());
    buf.tryPush(mkFlit()); // full, dropped by caller
    EXPECT_EQ(pushes, 1);
}

TEST(FlitBuffer, TracksStats)
{
    FlitBuffer buf(4);
    buf.tryPush(mkFlit());
    buf.tryPush(mkFlit());
    buf.tryPush(mkFlit());
    buf.pop();
    EXPECT_EQ(buf.pushes(), 3u);
    EXPECT_EQ(buf.maxOccupancy(), 3u);
}

TEST(FlitBuffer, FrontPeeksWithoutRemoving)
{
    FlitBuffer buf(4);
    auto f = mkFlit();
    const Flit *pf = f.get();
    buf.tryPush(std::move(f));
    EXPECT_EQ(buf.front().get(), pf);
    EXPECT_EQ(buf.size(), 1u);
}

} // namespace
} // namespace netcrafter::noc
