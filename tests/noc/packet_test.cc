/** @file Unit tests for the packet model (Table 1 invariants). */

#include <gtest/gtest.h>

#include "src/noc/packet.hh"

namespace netcrafter::noc {
namespace {

TEST(Packet, HeaderBytesMatchPaper)
{
    // 12B (4B metadata + 8B address) for requests and PT responses;
    // 4B for read/write responses (footnote 2 of the paper).
    EXPECT_EQ(headerBytes(PacketType::ReadReq), 12u);
    EXPECT_EQ(headerBytes(PacketType::WriteReq), 12u);
    EXPECT_EQ(headerBytes(PacketType::PageTableReq), 12u);
    EXPECT_EQ(headerBytes(PacketType::PageTableRsp), 12u);
    EXPECT_EQ(headerBytes(PacketType::ReadRsp), 4u);
    EXPECT_EQ(headerBytes(PacketType::WriteRsp), 4u);
}

TEST(Packet, DefaultPayloadsMatchPaper)
{
    EXPECT_EQ(defaultPayloadBytes(PacketType::ReadReq), 0u);
    EXPECT_EQ(defaultPayloadBytes(PacketType::WriteReq), 64u);
    EXPECT_EQ(defaultPayloadBytes(PacketType::PageTableReq), 0u);
    EXPECT_EQ(defaultPayloadBytes(PacketType::ReadRsp), 64u);
    EXPECT_EQ(defaultPayloadBytes(PacketType::WriteRsp), 0u);
    EXPECT_EQ(defaultPayloadBytes(PacketType::PageTableRsp), 0u);
}

TEST(Packet, TotalBytesRequiredMatchTable1)
{
    auto total = [](PacketType t) {
        return makePacket(t, 0, 1, 0)->totalBytes();
    };
    EXPECT_EQ(total(PacketType::ReadReq), 12u);
    EXPECT_EQ(total(PacketType::WriteReq), 76u);
    EXPECT_EQ(total(PacketType::PageTableReq), 12u);
    EXPECT_EQ(total(PacketType::ReadRsp), 68u);
    EXPECT_EQ(total(PacketType::WriteRsp), 4u);
    EXPECT_EQ(total(PacketType::PageTableRsp), 12u);
}

TEST(Packet, IdsAreUniqueAndResettable)
{
    resetPacketIds();
    auto a = makePacket(PacketType::ReadReq, 0, 1, 0);
    auto b = makePacket(PacketType::ReadReq, 0, 1, 0);
    EXPECT_NE(a->id, b->id);
    EXPECT_EQ(a->id + 1, b->id);
    resetPacketIds();
    auto c = makePacket(PacketType::ReadReq, 0, 1, 0);
    EXPECT_EQ(c->id, a->id);
}

TEST(Packet, PtwClassification)
{
    EXPECT_TRUE(isPtwType(PacketType::PageTableReq));
    EXPECT_TRUE(isPtwType(PacketType::PageTableRsp));
    EXPECT_FALSE(isPtwType(PacketType::ReadReq));
    EXPECT_FALSE(isPtwType(PacketType::ReadRsp));
    EXPECT_TRUE(makePacket(PacketType::PageTableReq, 0, 1, 0)->isPtw());
}

TEST(Packet, ResponseClassification)
{
    EXPECT_TRUE(isResponseType(PacketType::ReadRsp));
    EXPECT_TRUE(isResponseType(PacketType::WriteRsp));
    EXPECT_TRUE(isResponseType(PacketType::PageTableRsp));
    EXPECT_FALSE(isResponseType(PacketType::ReadReq));
    EXPECT_FALSE(isResponseType(PacketType::WriteReq));
    EXPECT_FALSE(isResponseType(PacketType::PageTableReq));
}

TEST(Packet, TrimReducesTotalBytes)
{
    auto pkt = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    EXPECT_EQ(pkt->totalBytes(), 68u);
    pkt->payloadBytes = 16;
    pkt->trimmed = true;
    EXPECT_EQ(pkt->totalBytes(), 20u);
}

TEST(Packet, ToStringMentionsTypeAndTrim)
{
    auto pkt = makePacket(PacketType::ReadRsp, 2, 3, 0x1000);
    EXPECT_NE(pkt->toString().find("ReadRsp"), std::string::npos);
    pkt->trimmed = true;
    pkt->trimSector = 2;
    EXPECT_NE(pkt->toString().find("trimmed"), std::string::npos);
}

TEST(Packet, TypeNamesAreDistinct)
{
    EXPECT_STREQ(packetTypeName(PacketType::ReadReq), "ReadReq");
    EXPECT_STREQ(packetTypeName(PacketType::WriteReq), "WriteReq");
    EXPECT_STREQ(packetTypeName(PacketType::PageTableReq), "PTReq");
    EXPECT_STREQ(packetTypeName(PacketType::ReadRsp), "ReadRsp");
    EXPECT_STREQ(packetTypeName(PacketType::WriteRsp), "WriteRsp");
    EXPECT_STREQ(packetTypeName(PacketType::PageTableRsp), "PTRsp");
}

} // namespace
} // namespace netcrafter::noc
