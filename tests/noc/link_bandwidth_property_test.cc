/**
 * @file
 * Parameterized property: link throughput matches its configured
 * flits/cycle exactly across the bandwidth points used in the paper's
 * Figure 22 sweep, and the GB/s -> flits/cycle conversion composes.
 */

#include <gtest/gtest.h>

#include "src/config/system_config.hh"
#include "src/noc/link.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {
namespace {

class LinkBandwidth : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LinkBandwidth, ThroughputMatchesConfiguredRate)
{
    const std::uint32_t rate = GetParam();
    sim::Engine engine;
    FlitBuffer src(4096), dst(4096);
    Link link(engine, "l", src, dst, rate);

    const std::uint32_t n = rate * 64;
    for (std::uint32_t i = 0; i < n; ++i) {
        auto pkt = makePacket(PacketType::ReadReq, 0, 1, i * 64);
        src.tryPush(segmentPacket(pkt, 16).front());
    }
    engine.run();
    EXPECT_EQ(dst.size(), n);
    // n flits at `rate` per cycle: 64 busy cycles (+1 start-up).
    EXPECT_EQ(link.busyCycles(), 64u);
    EXPECT_LE(engine.now(), 66u);
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkBandwidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u,
                                           32u));

class BandwidthConversion
    : public ::testing::TestWithParam<std::pair<double, std::uint32_t>>
{
};

TEST_P(BandwidthConversion, PaperBandwidthPointsAt16BFlit)
{
    config::SystemConfig cfg;
    cfg.flitBytes = 16;
    cfg.interClusterGBps = GetParam().first;
    EXPECT_EQ(cfg.interFlitsPerCycle(), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Figure22Points, BandwidthConversion,
    ::testing::Values(std::make_pair(16.0, 1u), std::make_pair(32.0, 2u),
                      std::make_pair(64.0, 4u),
                      std::make_pair(128.0, 8u),
                      std::make_pair(256.0, 16u),
                      std::make_pair(512.0, 32u),
                      // 50-100 GB/s Frontier range rounds sensibly.
                      std::make_pair(50.0, 3u),
                      std::make_pair(100.0, 6u)));

} // namespace
} // namespace netcrafter::noc
