/** @file Tests for the CSV flit tracer. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/noc/flit_trace.hh"
#include "src/noc/link.hh"

namespace netcrafter::noc {
namespace {

TEST(FlitTracer, WritesHeaderAndRows)
{
    sim::Engine engine;
    std::ostringstream os;
    FlitTracer tracer(engine, os);
    auto observe = tracer.observer("test-link");

    auto pkt = makePacket(PacketType::ReadRsp, 0, 2, 0x40);
    pkt->trimmed = true;
    for (auto &f : segmentPacket(pkt, 16))
        observe(*f);

    EXPECT_EQ(tracer.rows(), 5u);
    const std::string out = os.str();
    EXPECT_EQ(out.find(FlitTracer::header()), 0u);
    EXPECT_NE(out.find("test-link"), std::string::npos);
    EXPECT_NE(out.find("ReadRsp"), std::string::npos);
    // Every row ends with the trimmed flag = 1.
    std::istringstream lines(out);
    std::string line;
    std::getline(lines, line); // header
    int rows = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.back(), '1');
        ++rows;
    }
    EXPECT_EQ(rows, 5);
}

TEST(FlitTracer, AttachesToLinks)
{
    sim::Engine engine;
    std::ostringstream os;
    FlitTracer tracer(engine, os);
    FlitBuffer src(16), dst(16);
    Link link(engine, "l", src, dst, 1);
    link.setObserver(tracer.observer("wire"));

    auto pkt = makePacket(PacketType::ReadReq, 0, 1, 0x80);
    src.tryPush(segmentPacket(pkt, 16).front());
    engine.run();
    EXPECT_EQ(tracer.rows(), 1u);
    // The row carries the simulated timestamp, not zero.
    EXPECT_NE(os.str().find("\n1,wire,"), std::string::npos);
}

TEST(FlitTracer, RecordsStitchedPieceCount)
{
    sim::Engine engine;
    std::ostringstream os;
    FlitTracer tracer(engine, os);
    auto observe = tracer.observer("x");

    auto parent = segmentPacket(
        makePacket(PacketType::ReadRsp, 0, 2, 0x40), 16).back();
    StitchedPiece piece;
    piece.pkt = makePacket(PacketType::WriteRsp, 0, 2, 0x80);
    piece.bytes = 4;
    piece.wholePacket = true;
    parent->stitched.push_back(piece);
    observe(*parent);

    // ...,occupied(4),used(8),pieces(1),...
    EXPECT_NE(os.str().find(",4,8,1,"), std::string::npos);
}

} // namespace
} // namespace netcrafter::noc
