/** @file Tests for the CSV flit tracer. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/noc/flit_trace.hh"
#include "src/noc/link.hh"

namespace netcrafter::noc {
namespace {

TEST(FlitTracer, WritesHeaderAndRows)
{
    sim::Engine engine;
    FlitTracer tracer;
    auto observe = tracer.observer("test-link", engine);

    auto pkt = makePacket(PacketType::ReadRsp, 0, 2, 0x40);
    pkt->trimmed = true;
    for (auto &f : segmentPacket(pkt, 16))
        observe(*f);

    EXPECT_EQ(tracer.rows(), 5u);
    std::ostringstream os;
    tracer.writeCsv(os);
    const std::string out = os.str();
    EXPECT_EQ(out.find(FlitTracer::header()), 0u);
    EXPECT_NE(out.find("test-link"), std::string::npos);
    EXPECT_NE(out.find("ReadRsp"), std::string::npos);
    // Every row ends with the trimmed flag = 1.
    std::istringstream lines(out);
    std::string line;
    std::getline(lines, line); // header
    int rows = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.back(), '1');
        ++rows;
    }
    EXPECT_EQ(rows, 5);
}

TEST(FlitTracer, AttachesToLinks)
{
    sim::Engine engine;
    FlitTracer tracer;
    FlitBuffer src(16), dst(16);
    Link link(engine, "l", src, dst, 1);
    link.setObserver(tracer.observer("wire", engine));

    auto pkt = makePacket(PacketType::ReadReq, 0, 1, 0x80);
    src.tryPush(segmentPacket(pkt, 16).front());
    engine.run();
    EXPECT_EQ(tracer.rows(), 1u);
    // The row carries the simulated timestamp, not zero.
    std::ostringstream os;
    tracer.writeCsv(os);
    EXPECT_NE(os.str().find("\n1,wire,"), std::string::npos);
}

TEST(FlitTracer, RecordsStitchedPieceCount)
{
    sim::Engine engine;
    FlitTracer tracer;
    auto observe = tracer.observer("x", engine);

    auto parent = segmentPacket(
        makePacket(PacketType::ReadRsp, 0, 2, 0x40), 16).back();
    StitchedPiece piece;
    piece.pkt = makePacket(PacketType::WriteRsp, 0, 2, 0x80);
    piece.bytes = 4;
    piece.wholePacket = true;
    parent->stitched.push_back(piece);
    observe(*parent);

    // ...,occupied(4),used(8),pieces(1),...
    std::ostringstream os;
    tracer.writeCsv(os);
    EXPECT_NE(os.str().find(",4,8,1,"), std::string::npos);
}

// Sharded-run regression: two observers on two engines (one per shard),
// fed the same flit crossings but with observers registered in the
// opposite order and rows appended in a different interleaving, must
// still produce byte-identical CSVs. This is what guarantees the trace
// doesn't depend on shard scheduling.
TEST(FlitTracer, TwoShardMergeIsDeterministic)
{
    auto pkt_a = makePacket(PacketType::ReadReq, 0, 1, 0x80);
    auto pkt_b = makePacket(PacketType::WriteReq, 1, 0, 0x80);
    auto flits_a = segmentPacket(pkt_a, 16);
    auto flits_b = segmentPacket(pkt_b, 16);

    auto record_at = [](sim::Engine &eng, Tick when,
                        std::function<void(const Flit &)> &obs,
                        const Flit &flit) {
        eng.scheduleAbs(when, [&obs, &flit] { obs(flit); });
    };

    // Tracer 1: shard0 first, flits of A at even ticks, B at odd ones.
    FlitTracer tracer1;
    {
        sim::Engine shard0, shard1;
        auto obs0 = tracer1.observer("inter0to1", shard0);
        auto obs1 = tracer1.observer("inter1to0", shard1);
        for (std::size_t i = 0; i < flits_a.size(); ++i)
            record_at(shard0, Tick(2 * i + 2), obs0, *flits_a[i]);
        for (std::size_t i = 0; i < flits_b.size(); ++i)
            record_at(shard1, Tick(2 * i + 3), obs1, *flits_b[i]);
        shard0.run();
        shard1.run();
    }

    // Tracer 2: observers registered the other way round, and the
    // engines pumped in the opposite order.
    FlitTracer tracer2;
    {
        sim::Engine shard0, shard1;
        auto obs1 = tracer2.observer("inter1to0", shard1);
        auto obs0 = tracer2.observer("inter0to1", shard0);
        for (std::size_t i = 0; i < flits_b.size(); ++i)
            record_at(shard1, Tick(2 * i + 3), obs1, *flits_b[i]);
        for (std::size_t i = 0; i < flits_a.size(); ++i)
            record_at(shard0, Tick(2 * i + 2), obs0, *flits_a[i]);
        shard1.run();
        shard0.run();
    }

    ASSERT_EQ(tracer1.rows(), flits_a.size() + flits_b.size());
    ASSERT_EQ(tracer1.rows(), tracer2.rows());
    std::ostringstream os1, os2;
    tracer1.writeCsv(os1);
    tracer2.writeCsv(os2);
    EXPECT_EQ(os1.str(), os2.str());
}

} // namespace
} // namespace netcrafter::noc
