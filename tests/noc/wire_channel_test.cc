/**
 * @file
 * WireChannel tests, including the cross-shard ingress-queue ordering
 * property: randomized traffic pushed through a channel spanning two
 * shards must arrive in exactly the order and at exactly the ticks the
 * serial (same-engine) channel produces.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/noc/flit.hh"
#include "src/noc/flit_buffer.hh"
#include "src/noc/packet.hh"
#include "src/noc/wire_channel.hh"
#include "src/sim/random.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter::noc {
namespace {

/** One observed arrival at the sink: (tick, packet id, flit seq). */
using Arrival = std::tuple<Tick, std::uint64_t, std::uint32_t>;

/** Randomized injection schedule shared by the serial and sharded runs. */
struct Injection
{
    Tick when;
    std::uint32_t bytes;
    std::uint32_t seq;
    std::uint32_t numFlits;
};

std::vector<Injection>
randomSchedule(std::uint64_t seed, std::size_t count)
{
    Pcg32 rng(seed);
    std::vector<Injection> plan;
    Tick when = 1;
    for (std::size_t i = 0; i < count; ++i) {
        when += rng.below(7); // bursts: several flits at one tick
        Injection inj;
        inj.when = when;
        inj.bytes = 1 + rng.below(16);
        inj.numFlits = 1 + rng.below(3);
        inj.seq = rng.below(inj.numFlits);
        plan.push_back(inj);
    }
    return plan;
}

/**
 * Drive @p plan through a channel between @p src_eng and @p dst_eng
 * (distinct when sharded) and record every sink arrival. The sink is
 * deliberately small so credit backpressure kicks in, and the consumer
 * drains one flit per cycle so credits trickle back.
 */
std::vector<Arrival>
runTraffic(sim::ShardedEngine &eng, unsigned dst_shard,
           const std::vector<Injection> &plan)
{
    sim::Engine &src_eng = eng.shard(0);
    sim::Engine &dst_eng = eng.shard(dst_shard);

    FlitBuffer source(1024);
    FlitBuffer sink(4); // small: forces the credit path to matter
    WireChannel channel(src_eng, dst_eng, "test.wire", source, sink,
                        /*flits_per_cycle=*/2, /*latency=*/6,
                        /*src_shard=*/0, dst_shard);
    if (channel.crossShard()) {
        eng.registerPort(channel);
        eng.setLookahead(channel.latency());
    }

    resetPacketIds();
    std::vector<Arrival> arrivals;

    // Consumer: pop one flit per cycle while any are waiting.
    bool drain_scheduled = false;
    std::function<void()> drain = [&] {
        drain_scheduled = false;
        if (sink.empty())
            return;
        FlitPtr flit = sink.pop();
        arrivals.emplace_back(dst_eng.now(), flit->pkt->id, flit->seq);
        if (!sink.empty()) {
            drain_scheduled = true;
            dst_eng.schedule(1, [&] { drain(); });
        }
    };
    sink.setOnPush([&] {
        if (!drain_scheduled) {
            drain_scheduled = true;
            dst_eng.schedule(1, [&] { drain(); });
        }
    });

    for (const Injection &inj : plan) {
        src_eng.schedule(inj.when, [&source, inj] {
            auto pkt = makePacket(PacketType::ReadReq, 0, 1,
                                  0x1000 + inj.bytes);
            FlitPtr flit = makeFlit();
            flit->pkt = std::move(pkt);
            flit->seq = inj.seq;
            flit->numFlits = inj.numFlits;
            flit->occupiedBytes = static_cast<std::uint16_t>(inj.bytes);
            ASSERT_TRUE(source.tryPush(std::move(flit)));
        });
    }

    EXPECT_EQ(eng.run(), sim::RunStatus::Drained);
    eng.alignClocks();
    return arrivals;
}

TEST(WireChannelOrderingPropertyTest, CrossShardMatchesSerialOrder)
{
    // Both window policies must reproduce the serial arrival stream
    // exactly; the adaptive windows are just (possibly much) wider.
    for (const sim::LookaheadMode mode :
         {sim::LookaheadMode::FixedQuantum, sim::LookaheadMode::Adaptive}) {
        for (std::uint64_t seed : {1ull, 7ull, 1234ull, 99991ull}) {
            const std::vector<Injection> plan = randomSchedule(seed, 200);

            sim::ShardedEngine serial(1);
            const std::vector<Arrival> ref = runTraffic(serial, 0, plan);

            sim::ShardedEngine sharded(2);
            sharded.setLookaheadMode(mode);
            const std::vector<Arrival> got = runTraffic(sharded, 1, plan);

            ASSERT_EQ(ref.size(), plan.size()) << "seed " << seed;
            EXPECT_EQ(ref, got)
                << "seed " << seed << " mode "
                << (mode == sim::LookaheadMode::Adaptive ? "adaptive"
                                                         : "fixed");
        }
    }
}

TEST(WireChannelOrderingPropertyTest, AdaptiveWindowRespectsWireBound)
{
    // Safe-window property over real randomized traffic: every bounded
    // adaptive window must span at least the conservative fixed
    // quantum Q = min channel latency — i.e. the adaptive bound never
    // admits a cross-shard delivery earlier than the fixed bound
    // would, it only postpones barriers. Arrival equality with serial
    // is asserted by CrossShardMatchesSerialOrder; this checks the
    // window geometry that equality rests on.
    for (std::uint64_t seed : {3ull, 77ull, 4242ull}) {
        const std::vector<Injection> plan = randomSchedule(seed, 150);

        sim::ShardedEngine sharded(2);
        sharded.setLookaheadMode(sim::LookaheadMode::Adaptive);
        runTraffic(sharded, 1, plan);

        ASSERT_GT(sharded.quantaExecuted(), 0u) << "seed " << seed;
        if (sharded.windowTicksAvg().count() > 0) {
            EXPECT_GE(sharded.windowTicksAvg().min(),
                      static_cast<double>(sharded.lookahead()))
                << "seed " << seed;
        }

        sim::ShardedEngine fixed_q(2);
        fixed_q.setLookaheadMode(sim::LookaheadMode::FixedQuantum);
        runTraffic(fixed_q, 1, plan);
        EXPECT_LE(sharded.quantaExecuted(), fixed_q.quantaExecuted())
            << "seed " << seed;
    }
}

TEST(WireChannelTest, LatencyAndCreditsPreserveFifoWithinTick)
{
    // A burst larger than the per-cycle rate crosses the wire over
    // several cycles but stays FIFO.
    sim::ShardedEngine eng(1);
    std::vector<Injection> burst;
    for (std::uint32_t i = 0; i < 8; ++i)
        burst.push_back({/*when=*/5, /*bytes=*/i + 1, /*seq=*/0,
                         /*numFlits=*/1});
    const std::vector<Arrival> arrivals = runTraffic(eng, 0, burst);
    ASSERT_EQ(arrivals.size(), burst.size());
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        EXPECT_LE(std::get<0>(arrivals[i - 1]), std::get<0>(arrivals[i]));
        EXPECT_LT(std::get<1>(arrivals[i - 1]), std::get<1>(arrivals[i]));
    }
}

TEST(WireChannelTest, CrossShardCountersTrackRematerialization)
{
    const std::vector<Injection> plan = randomSchedule(42, 50);

    sim::ShardedEngine eng(2);
    sim::Engine &src_eng = eng.shard(0);
    sim::Engine &dst_eng = eng.shard(1);
    FlitBuffer source(1024);
    FlitBuffer sink(1024);
    WireChannel channel(src_eng, dst_eng, "test.wire", source, sink,
                        2, 6, 0, 1);
    eng.registerPort(channel);
    eng.setLookahead(channel.latency());

    resetPacketIds();
    std::uint64_t drained = 0;
    sink.setOnPush([&] {
        dst_eng.schedule(1, [&] {
            while (!sink.empty()) {
                sink.pop();
                ++drained;
            }
        });
    });
    for (const Injection &inj : plan) {
        src_eng.schedule(inj.when, [&source, inj] {
            auto pkt = makePacket(PacketType::ReadReq, 0, 1, 0x1000);
            FlitPtr flit = makeFlit();
            flit->pkt = std::move(pkt);
            flit->occupiedBytes = static_cast<std::uint16_t>(inj.bytes);
            source.tryPush(std::move(flit));
        });
    }
    EXPECT_EQ(eng.run(), sim::RunStatus::Drained);

    EXPECT_TRUE(channel.crossShard());
    EXPECT_EQ(channel.flitsTransferred(), plan.size());
    EXPECT_EQ(channel.flitsRematerialized(), plan.size());
    EXPECT_EQ(drained, plan.size());
    EXPECT_GE(channel.maxIngressDepth(), 1u);
    EXPECT_GT(eng.quantaExecuted(), 0u);
}

} // namespace
} // namespace netcrafter::noc
