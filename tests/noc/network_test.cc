/** @file Integration tests for the assembled hierarchical network. */

#include <gtest/gtest.h>

#include "src/noc/network.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {
namespace {

struct NetworkFixture : ::testing::Test
{
    sim::Engine engine;
    config::SystemConfig cfg = config::baselineConfig();
};

TEST_F(NetworkFixture, IntraClusterPacketDelivered)
{
    Network net(engine, cfg);
    PacketPtr got;
    net.rdma(1).setRequestHandler([&](PacketPtr pkt) { got = pkt; });

    auto pkt = makePacket(PacketType::ReadReq, 0, 1, 0x1000);
    net.sendPacket(pkt);
    engine.run();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->id, pkt->id);
    EXPECT_FALSE(got->interCluster);
    // GPU 0 and 1 share cluster 0: nothing crossed an inter link.
    EXPECT_EQ(net.interClusterFlits(), 0u);
}

TEST_F(NetworkFixture, InterClusterPacketCrossesSlowLink)
{
    Network net(engine, cfg);
    PacketPtr got;
    net.rdma(2).setRequestHandler([&](PacketPtr pkt) { got = pkt; });

    auto pkt = makePacket(PacketType::WriteReq, 0, 2, 0x2000);
    net.sendPacket(pkt);
    engine.run();
    ASSERT_NE(got, nullptr);
    EXPECT_TRUE(got->interCluster);
    EXPECT_EQ(net.interClusterFlits(), 5u); // WriteReq is 5 flits
    EXPECT_EQ(net.interClusterMonitor(0, 1).totalFlits(), 5u);
    EXPECT_EQ(net.interClusterMonitor(1, 0).totalFlits(), 0u);
}

TEST_F(NetworkFixture, RoundTripRequestResponse)
{
    Network net(engine, cfg);
    net.rdma(3).setRequestHandler([&](PacketPtr req) {
        auto rsp =
            makePacket(PacketType::ReadRsp, 3, req->src, req->addr);
        rsp->reqId = req->id;
        net.sendPacket(std::move(rsp));
    });
    PacketPtr rsp;
    net.rdma(0).setResponseHandler([&](PacketPtr pkt) { rsp = pkt; });

    auto req = makePacket(PacketType::ReadReq, 0, 3, 0x3000);
    net.sendPacket(req);
    engine.run();
    ASSERT_NE(rsp, nullptr);
    EXPECT_EQ(rsp->reqId, req->id);
    // Both directions used.
    EXPECT_GT(net.interClusterMonitor(0, 1).totalFlits(), 0u);
    EXPECT_GT(net.interClusterMonitor(1, 0).totalFlits(), 0u);
}

TEST_F(NetworkFixture, NoControllersWithoutNetCrafter)
{
    Network net(engine, cfg);
    EXPECT_EQ(net.controller(0, 1), nullptr);
    EXPECT_EQ(net.controller(1, 0), nullptr);
}

TEST_F(NetworkFixture, ControllersPresentWithNetCrafter)
{
    cfg = config::netcrafterConfig();
    Network net(engine, cfg);
    EXPECT_NE(net.controller(0, 1), nullptr);
    EXPECT_NE(net.controller(1, 0), nullptr);
}

TEST_F(NetworkFixture, StitchedTrafficIsUnstitchedBeforeEndpoints)
{
    cfg = config::netcrafterConfig();
    Network net(engine, cfg);
    int delivered = 0;
    net.rdma(2).setRequestHandler([&](PacketPtr) { ++delivered; });

    // Many small single-flit packets: prime stitching targets. The RDMA
    // engine asserts no stitched flit reaches it.
    for (int i = 0; i < 50; ++i) {
        net.sendPacket(
            makePacket(PacketType::ReadReq, 0, 2, 0x1000 + i * 64));
    }
    engine.run();
    EXPECT_EQ(delivered, 50);
}

TEST_F(NetworkFixture, InterClusterLatencyExceedsIntraCluster)
{
    Network net(engine, cfg);
    Tick intra_done = 0, inter_done = 0;
    net.rdma(1).setRequestHandler(
        [&](PacketPtr) { intra_done = engine.now(); });
    net.rdma(2).setRequestHandler(
        [&](PacketPtr) { inter_done = engine.now(); });

    net.sendPacket(makePacket(PacketType::ReadReq, 0, 1, 0x40));
    net.sendPacket(makePacket(PacketType::ReadReq, 0, 2, 0x80));
    engine.run();
    EXPECT_GT(intra_done, 0u);
    EXPECT_GT(inter_done, intra_done); // extra hop through second switch
}

TEST_F(NetworkFixture, EightByteFlitsDoubleTheFlitCount)
{
    cfg.flitBytes = 8;
    Network net(engine, cfg);
    net.rdma(2).setResponseHandler([](PacketPtr) {});
    net.sendPacket(makePacket(PacketType::ReadRsp, 0, 2, 0x40));
    engine.run();
    // 68 bytes at 8B/flit = 9 flits.
    EXPECT_EQ(net.interClusterFlits(), 9u);
}

TEST_F(NetworkFixture, UtilizationAveragesDirections)
{
    Network net(engine, cfg);
    net.rdma(2).setRequestHandler([](PacketPtr) {});
    for (int i = 0; i < 20; ++i)
        net.sendPacket(makePacket(PacketType::WriteReq, 0, 2, i * 64));
    engine.run();
    EXPECT_GT(net.interClusterUtilization(), 0.0);
    EXPECT_LT(net.interClusterUtilization(), 1.0);
}

TEST_F(NetworkFixture, AggregateCensusSumsDirections)
{
    Network net(engine, cfg);
    net.rdma(2).setRequestHandler([&](PacketPtr req) {
        auto rsp =
            makePacket(PacketType::WriteRsp, 2, req->src, req->addr);
        rsp->reqId = req->id;
        net.sendPacket(std::move(rsp));
    });
    net.rdma(0).setResponseHandler([](PacketPtr) {});
    net.sendPacket(makePacket(PacketType::WriteReq, 0, 2, 0x40));
    engine.run();
    auto agg = net.aggregateInterClusterTraffic();
    EXPECT_EQ(agg.totalFlits(),
              net.interClusterMonitor(0, 1).totalFlits() +
                  net.interClusterMonitor(1, 0).totalFlits());
    EXPECT_EQ(agg.totalFlits(), 6u); // 5 req + 1 rsp
}

TEST_F(NetworkFixture, ThreeClusterTopologyRoutes)
{
    cfg.numClusters = 3;
    cfg.gpusPerCluster = 2;
    Network net(engine, cfg);
    int got = 0;
    net.rdma(4).setRequestHandler([&](PacketPtr) { ++got; });
    net.rdma(2).setRequestHandler([&](PacketPtr) { ++got; });

    net.sendPacket(makePacket(PacketType::ReadReq, 0, 4, 0x40));
    net.sendPacket(makePacket(PacketType::ReadReq, 0, 2, 0x80));
    engine.run();
    EXPECT_EQ(got, 2);
    // Direct links used, not multi-hop.
    EXPECT_GT(net.interClusterMonitor(0, 2).totalFlits(), 0u);
    EXPECT_GT(net.interClusterMonitor(0, 1).totalFlits(), 0u);
    EXPECT_EQ(net.interClusterMonitor(1, 2).totalFlits(), 0u);
}

} // namespace
} // namespace netcrafter::noc
