/** @file Unit tests for the RDMA endpoint engine. */

#include <gtest/gtest.h>

#include "src/noc/rdma.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {
namespace {

struct RdmaFixture : ::testing::Test
{
    sim::Engine engine;
};

/** Move every flit from src to dst immediately (a zero-latency wire). */
void
pipe(FlitBuffer &src, FlitBuffer &dst)
{
    while (!src.empty() && !dst.full())
        dst.tryPush(src.pop());
}

TEST_F(RdmaFixture, SegmentsOutgoingPackets)
{
    RdmaEngine rdma(engine, "rdma", 0, 16, 64);
    rdma.sendPacket(makePacket(PacketType::ReadRsp, 0, 1, 0x40));
    engine.run();
    EXPECT_EQ(rdma.txBuffer().size(), 5u);
    EXPECT_EQ(rdma.packetsSent(), 1u);
}

TEST_F(RdmaFixture, ReassemblesAndDispatchesRequests)
{
    RdmaEngine a(engine, "a", 0, 16, 64);
    RdmaEngine b(engine, "b", 1, 16, 64);
    PacketPtr received;
    b.setRequestHandler([&](PacketPtr pkt) { received = pkt; });

    auto pkt = makePacket(PacketType::WriteReq, 0, 1, 0x1000);
    const std::uint64_t id = pkt->id;
    a.sendPacket(pkt);
    engine.run();
    pipe(a.txBuffer(), b.rxBuffer());
    engine.run();

    ASSERT_NE(received, nullptr);
    EXPECT_EQ(received->id, id);
    EXPECT_EQ(received->type, PacketType::WriteReq);
    EXPECT_EQ(b.packetsReceived(), 1u);
}

TEST_F(RdmaFixture, ResponsesGoToResponseHandler)
{
    RdmaEngine a(engine, "a", 0, 16, 64);
    RdmaEngine b(engine, "b", 1, 16, 64);
    int requests = 0, responses = 0;
    b.setRequestHandler([&](PacketPtr) { ++requests; });
    b.setResponseHandler([&](PacketPtr) { ++responses; });

    a.sendPacket(makePacket(PacketType::ReadRsp, 0, 1, 0x40));
    a.sendPacket(makePacket(PacketType::ReadReq, 0, 1, 0x80));
    engine.run();
    pipe(a.txBuffer(), b.rxBuffer());
    engine.run();
    EXPECT_EQ(requests, 1);
    EXPECT_EQ(responses, 1);
}

TEST_F(RdmaFixture, PartialDeliveryWaitsForAllFlits)
{
    RdmaEngine a(engine, "a", 0, 16, 64);
    RdmaEngine b(engine, "b", 1, 16, 64);
    int delivered = 0;
    b.setResponseHandler([&](PacketPtr) { ++delivered; });

    a.sendPacket(makePacket(PacketType::ReadRsp, 0, 1, 0x40));
    engine.run();

    // Deliver four of five flits: no dispatch yet.
    for (int i = 0; i < 4; ++i)
        b.rxBuffer().tryPush(a.txBuffer().pop());
    engine.run();
    EXPECT_EQ(delivered, 0);

    b.rxBuffer().tryPush(a.txBuffer().pop());
    engine.run();
    EXPECT_EQ(delivered, 1);
}

TEST_F(RdmaFixture, InterleavedPacketsReassembleIndependently)
{
    RdmaEngine a(engine, "a", 0, 16, 64);
    RdmaEngine b(engine, "b", 1, 16, 64);
    std::vector<std::uint64_t> order;
    b.setResponseHandler(
        [&](PacketPtr pkt) { order.push_back(pkt->id); });

    auto p1 = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    auto p2 = makePacket(PacketType::ReadRsp, 0, 1, 0x80);
    auto f1 = segmentPacket(p1, 16);
    auto f2 = segmentPacket(p2, 16);

    // Interleave: p2 finishes first.
    for (int i = 0; i < 4; ++i)
        b.rxBuffer().tryPush(f1[i]);
    for (auto &f : f2)
        b.rxBuffer().tryPush(f);
    b.rxBuffer().tryPush(f1[4]);
    engine.run();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], p2->id);
    EXPECT_EQ(order[1], p1->id);
}

TEST_F(RdmaFixture, SendQueueDrainsWhenTxBufferFrees)
{
    RdmaEngine rdma(engine, "rdma", 0, 16, 4);
    rdma.sendPacket(makePacket(PacketType::ReadRsp, 0, 1, 0x40));
    rdma.sendPacket(makePacket(PacketType::ReadRsp, 0, 1, 0x80));
    engine.run();
    EXPECT_EQ(rdma.txBuffer().size(), 4u); // buffer cap
    EXPECT_EQ(rdma.sendQueueDepth(), 6u);

    for (int i = 0; i < 4; ++i)
        rdma.txBuffer().pop();
    engine.run();
    EXPECT_EQ(rdma.txBuffer().size(), 4u);
    EXPECT_EQ(rdma.sendQueueDepth(), 2u);
}

TEST_F(RdmaFixture, MisroutedFlitPanics)
{
    RdmaEngine rdma(engine, "rdma", 0, 16, 64);
    auto pkt = makePacket(PacketType::ReadReq, 1, 5, 0x40); // dst 5 != 0
    rdma.rxBuffer().tryPush(segmentPacket(pkt, 16).front());
    EXPECT_DEATH(engine.run(), "misrouted");
}

} // namespace
} // namespace netcrafter::noc
