/** @file Unit tests for the per-link traffic census. */

#include <gtest/gtest.h>

#include "src/noc/traffic_monitor.hh"

namespace netcrafter::noc {
namespace {

std::vector<FlitPtr>
flitsOf(PacketType type)
{
    return segmentPacket(makePacket(type, 0, 1, 0x40), 16);
}

TEST(TrafficMonitor, CountsFlitsAndBytes)
{
    TrafficMonitor mon;
    for (auto &f : flitsOf(PacketType::ReadRsp))
        mon.observe(*f);
    EXPECT_EQ(mon.totalFlits(), 5u);
    EXPECT_EQ(mon.totalWireBytes(), 80u);
    EXPECT_EQ(mon.totalUsefulBytes(), 68u);
    EXPECT_EQ(mon.totalPaddedBytes(), 12u);
    EXPECT_EQ(mon.flitsOfType(PacketType::ReadRsp), 5u);
    EXPECT_EQ(mon.packetsOfType(PacketType::ReadRsp), 1u);
}

TEST(TrafficMonitor, PaddingBuckets)
{
    TrafficMonitor mon;
    // ReadReq: 12/16 used -> 25% padded.
    mon.observe(*flitsOf(PacketType::ReadReq).front());
    // WriteRsp: 4/16 used -> 75% padded.
    mon.observe(*flitsOf(PacketType::WriteRsp).front());
    // Full flit: 0% padded.
    mon.observe(*flitsOf(PacketType::ReadRsp).front());
    EXPECT_EQ(mon.flitsQuarterPadded(), 1u);
    EXPECT_EQ(mon.flitsThreeQuarterPadded(), 1u);
    EXPECT_EQ(mon.flitsWithPadding(), 2u);
    EXPECT_DOUBLE_EQ(mon.fractionQuarterOrThreeQuarterPadded(),
                     2.0 / 3.0);
}

TEST(TrafficMonitor, PtwBytesSeparated)
{
    TrafficMonitor mon;
    mon.observe(*flitsOf(PacketType::PageTableReq).front()); // 12B
    mon.observe(*flitsOf(PacketType::ReadReq).front());      // 12B
    EXPECT_EQ(mon.ptwBytes(), 12u);
    EXPECT_EQ(mon.dataBytes(), 12u);
    EXPECT_DOUBLE_EQ(mon.ptwByteFraction(), 0.5);
}

TEST(TrafficMonitor, StitchedPiecesAttributedToTheirTypes)
{
    TrafficMonitor mon;
    auto rsp_tail = flitsOf(PacketType::ReadRsp).back();
    StitchedPiece piece;
    piece.pkt = makePacket(PacketType::PageTableReq, 0, 1, 0x80);
    piece.bytes = 12;
    piece.wholePacket = true;
    rsp_tail->stitched.push_back(piece);

    mon.observe(*rsp_tail);
    EXPECT_EQ(mon.totalFlits(), 1u);
    EXPECT_EQ(mon.stitchedParentFlits(), 1u);
    EXPECT_EQ(mon.stitchedPieces(), 1u);
    EXPECT_EQ(mon.flitsOfType(PacketType::PageTableReq), 1u);
    EXPECT_EQ(mon.bytesOfType(PacketType::PageTableReq), 12u);
    EXPECT_EQ(mon.ptwBytes(), 12u);
    // Useful: 4 (tail) + 12 (piece); wire: 16.
    EXPECT_EQ(mon.totalUsefulBytes(), 16u);
    EXPECT_GT(mon.stitchedFlitFraction(), 0.0);
}

TEST(TrafficMonitor, MergeAddsCounts)
{
    TrafficMonitor a, b;
    a.observe(*flitsOf(PacketType::ReadReq).front());
    b.observe(*flitsOf(PacketType::WriteRsp).front());
    b.observe(*flitsOf(PacketType::PageTableRsp).front());
    a.merge(b);
    EXPECT_EQ(a.totalFlits(), 3u);
    EXPECT_EQ(a.flitsOfType(PacketType::WriteRsp), 1u);
    EXPECT_EQ(a.flitsOfType(PacketType::PageTableRsp), 1u);
}

TEST(TrafficMonitor, ResetClears)
{
    TrafficMonitor mon;
    mon.observe(*flitsOf(PacketType::ReadReq).front());
    mon.reset();
    EXPECT_EQ(mon.totalFlits(), 0u);
    EXPECT_EQ(mon.totalWireBytes(), 0u);
}

} // namespace
} // namespace netcrafter::noc
