/** @file Unit tests for the bandwidth-limited link. */

#include <gtest/gtest.h>

#include "src/noc/link.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {
namespace {

FlitPtr
mkFlit(PacketType type = PacketType::ReadReq)
{
    static std::uint64_t addr = 0;
    auto pkt = makePacket(type, 0, 1, addr += 64);
    return segmentPacket(pkt, 16).front();
}

struct LinkFixture : ::testing::Test
{
    sim::Engine engine;
    FlitBuffer src{64};
    FlitBuffer dst{64};
};

TEST_F(LinkFixture, MovesFlitsAtOnePerCycle)
{
    Link link(engine, "l", src, dst, 1);
    for (int i = 0; i < 8; ++i)
        src.tryPush(mkFlit());
    engine.run();
    EXPECT_EQ(dst.size(), 8u);
    EXPECT_EQ(link.flitsTransferred(), 8u);
    // 1 flit/cycle: the last transfer happens at cycle ~8.
    EXPECT_GE(engine.now(), 8u);
    EXPECT_LE(engine.now(), 10u);
}

TEST_F(LinkFixture, HigherBandwidthMovesFaster)
{
    Link link(engine, "l", src, dst, 8);
    for (int i = 0; i < 16; ++i)
        src.tryPush(mkFlit());
    engine.run();
    EXPECT_EQ(dst.size(), 16u);
    EXPECT_LE(engine.now(), 4u); // 16 flits at 8/cycle = 2 cycles
}

TEST_F(LinkFixture, BackpressureWhenSinkFull)
{
    FlitBuffer tiny(2);
    Link link(engine, "l", src, tiny, 4);
    for (int i = 0; i < 6; ++i)
        src.tryPush(mkFlit());
    engine.run();
    // Only two made it; the rest wait at the source.
    EXPECT_EQ(tiny.size(), 2u);
    EXPECT_EQ(src.size(), 4u);

    // Draining the sink resumes the link.
    tiny.pop();
    tiny.pop();
    engine.run();
    EXPECT_EQ(tiny.size(), 2u);
    EXPECT_EQ(src.size(), 2u);
}

TEST_F(LinkFixture, ObserverSeesEveryFlit)
{
    Link link(engine, "l", src, dst, 2);
    int seen = 0;
    link.setObserver([&](const Flit &) { ++seen; });
    for (int i = 0; i < 5; ++i)
        src.tryPush(mkFlit());
    engine.run();
    EXPECT_EQ(seen, 5);
}

TEST_F(LinkFixture, CountsWireAndUsefulBytes)
{
    Link link(engine, "l", src, dst, 1);
    src.tryPush(mkFlit(PacketType::ReadReq));  // 12 useful of 16
    src.tryPush(mkFlit(PacketType::WriteRsp)); // 4 useful of 16
    engine.run();
    EXPECT_EQ(link.bytesTransferred(), 32u);
    EXPECT_EQ(link.usefulBytesTransferred(), 16u);
}

TEST_F(LinkFixture, UtilizationReflectsActivity)
{
    Link link(engine, "l", src, dst, 1);
    for (int i = 0; i < 10; ++i)
        src.tryPush(mkFlit());
    engine.run();
    // 10 flits over ~11 cycles at 1 flit/cycle.
    EXPECT_GT(link.utilization(), 0.8);
    EXPECT_LE(link.utilization(), 1.0);
    EXPECT_EQ(link.busyCycles(), 10u);
}

TEST_F(LinkFixture, IdleLinkCostsNothing)
{
    Link link(engine, "l", src, dst, 1);
    engine.run();
    EXPECT_EQ(engine.eventsExecuted(), 0u);
    EXPECT_EQ(link.flitsTransferred(), 0u);
}

} // namespace
} // namespace netcrafter::noc
