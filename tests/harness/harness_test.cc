/** @file Tests for the experiment harness utilities. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/runner.hh"
#include "src/harness/table.hh"

namespace netcrafter::harness {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os); // must not crash
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.42, 1), "42.0%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, EmptyInputIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Geomean, SingleElementIsIdentity)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({0.25}), 0.25);
    // log/exp round-trip: exact to ~1e-14 relative error.
    EXPECT_NEAR(geomean({1e300}) / 1e300, 1.0, 1e-13);
}

TEST(Geomean, LargeProductsDoNotOverflow)
{
    // 100 factors of 1e30 would overflow a naive product; the log-sum
    // implementation must not.
    std::vector<double> xs(100, 1e30);
    EXPECT_NEAR(geomean(xs) / 1e30, 1.0, 1e-13);
}

TEST(Geomean, NonPositiveDies)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "non-positive");
    EXPECT_DEATH(geomean({-2.0}), "non-positive");
}

TEST(EnvScale, DefaultsToOne)
{
    // NETCRAFTER_SCALE is not set in the test environment.
    EXPECT_GT(envScale(), 0.0);
}

TEST(ParseScaleEnv, AcceptsPositiveNumbers)
{
    EXPECT_DOUBLE_EQ(parseScaleEnv("1"), 1.0);
    EXPECT_DOUBLE_EQ(parseScaleEnv("0.05"), 0.05);
    EXPECT_DOUBLE_EQ(parseScaleEnv("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(parseScaleEnv("1e-3"), 1e-3);
}

TEST(ParseScaleEnvDeathTest, RejectsBadValues)
{
    EXPECT_EXIT(parseScaleEnv("abc"), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
    EXPECT_EXIT(parseScaleEnv("1.5x"), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
    EXPECT_EXIT(parseScaleEnv(""), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
    EXPECT_EXIT(parseScaleEnv("0"), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
    EXPECT_EXIT(parseScaleEnv("-2"), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
    EXPECT_EXIT(parseScaleEnv("nan"), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
    EXPECT_EXIT(parseScaleEnv("inf"), testing::ExitedWithCode(1),
                "NETCRAFTER_SCALE");
}

TEST(ParseShardsEnv, AcceptsPositiveIntegers)
{
    EXPECT_EQ(parseShardsEnv("1"), 1u);
    EXPECT_EQ(parseShardsEnv("4"), 4u);
    EXPECT_EQ(parseShardsEnv("64"), 64u);
}

TEST(ParseShardsEnvDeathTest, RejectsBadValues)
{
    EXPECT_EXIT(parseShardsEnv("0"), testing::ExitedWithCode(1),
                "NETCRAFTER_SHARDS");
    EXPECT_EXIT(parseShardsEnv("-2"), testing::ExitedWithCode(1),
                "NETCRAFTER_SHARDS");
    EXPECT_EXIT(parseShardsEnv("abc"), testing::ExitedWithCode(1),
                "NETCRAFTER_SHARDS");
    EXPECT_EXIT(parseShardsEnv("4x"), testing::ExitedWithCode(1),
                "NETCRAFTER_SHARDS");
    EXPECT_EXIT(parseShardsEnv(""), testing::ExitedWithCode(1),
                "NETCRAFTER_SHARDS");
    EXPECT_EXIT(parseShardsEnv("2.5"), testing::ExitedWithCode(1),
                "NETCRAFTER_SHARDS");
    // strtol saturates, so absurd counts die instead of wrapping.
    EXPECT_EXIT(parseShardsEnv("99999999999999999999"),
                testing::ExitedWithCode(1), "NETCRAFTER_SHARDS");
}

TEST(ParseServeEnv, AcceptsValidValues)
{
    EXPECT_DOUBLE_EQ(parseServeLoadEnv("4"), 4.0);
    EXPECT_DOUBLE_EQ(parseServeLoadEnv("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseServeLoadEnv("12.25"), 12.25);

    EXPECT_EQ(parseServeTicksEnv("1", "NETCRAFTER_SERVE_WARMUP"), 1u);
    EXPECT_EQ(parseServeTicksEnv("20000", "NETCRAFTER_SERVE_WARMUP"),
              20'000u);

    EXPECT_EQ(parseServeSeedEnv("0"), 0u);
    EXPECT_EQ(parseServeSeedEnv("12345"), 12'345u);
}

TEST(ParseServeLoadEnvDeathTest, RejectsBadValues)
{
    EXPECT_EXIT(parseServeLoadEnv("0"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
    EXPECT_EXIT(parseServeLoadEnv("-4"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
    EXPECT_EXIT(parseServeLoadEnv("abc"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
    EXPECT_EXIT(parseServeLoadEnv("4x"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
    EXPECT_EXIT(parseServeLoadEnv(""), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
    EXPECT_EXIT(parseServeLoadEnv("nan"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
    EXPECT_EXIT(parseServeLoadEnv("inf"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_LOAD");
}

TEST(ParseServeTicksEnvDeathTest, RejectsBadValues)
{
    EXPECT_EXIT(parseServeTicksEnv("0", "NETCRAFTER_SERVE_MEASURE"),
                testing::ExitedWithCode(1), "NETCRAFTER_SERVE_MEASURE");
    EXPECT_EXIT(parseServeTicksEnv("-5", "NETCRAFTER_SERVE_MEASURE"),
                testing::ExitedWithCode(1), "NETCRAFTER_SERVE_MEASURE");
    EXPECT_EXIT(parseServeTicksEnv("abc", "NETCRAFTER_SERVE_WARMUP"),
                testing::ExitedWithCode(1), "NETCRAFTER_SERVE_WARMUP");
    EXPECT_EXIT(parseServeTicksEnv("5k", "NETCRAFTER_SERVE_WARMUP"),
                testing::ExitedWithCode(1), "NETCRAFTER_SERVE_WARMUP");
    EXPECT_EXIT(parseServeTicksEnv("", "NETCRAFTER_SERVE_WARMUP"),
                testing::ExitedWithCode(1), "NETCRAFTER_SERVE_WARMUP");
    EXPECT_EXIT(parseServeTicksEnv("2.5", "NETCRAFTER_SERVE_MEASURE"),
                testing::ExitedWithCode(1), "NETCRAFTER_SERVE_MEASURE");
}

TEST(ParseServeSeedEnvDeathTest, RejectsBadValues)
{
    EXPECT_EXIT(parseServeSeedEnv("-1"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_SEED");
    EXPECT_EXIT(parseServeSeedEnv("abc"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_SEED");
    EXPECT_EXIT(parseServeSeedEnv("7x"), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_SEED");
    EXPECT_EXIT(parseServeSeedEnv(""), testing::ExitedWithCode(1),
                "NETCRAFTER_SERVE_SEED");
}

TEST(SameMeasurement, DetectsAnyFieldDifference)
{
    RunResult a;
    a.workload = "GUPS";
    a.cycles = 10;
    a.l1Mpki = 1.5;
    RunResult b = a;
    EXPECT_TRUE(sameMeasurement(a, b));

    // wallSeconds is diagnostics-only and must not affect equality.
    b.wallSeconds = 99.0;
    EXPECT_TRUE(sameMeasurement(a, b));

    b = a;
    b.cycles = 11;
    EXPECT_FALSE(sameMeasurement(a, b));

    b = a;
    b.bytesNeededFrac[2] = 0.5;
    EXPECT_FALSE(sameMeasurement(a, b));

    // Serving measurements participate in equality too.
    b = a;
    b.serveMeasured = 7;
    EXPECT_FALSE(sameMeasurement(a, b));

    b = a;
    b.serveClasses[3].p99 = 1'234;
    EXPECT_FALSE(sameMeasurement(a, b));
}

} // namespace
} // namespace netcrafter::harness
