/** @file Tests for the experiment harness utilities. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/runner.hh"
#include "src/harness/table.hh"

namespace netcrafter::harness {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os); // must not crash
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.42, 1), "42.0%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, NonPositiveDies)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "non-positive");
}

TEST(EnvScale, DefaultsToOne)
{
    // NETCRAFTER_SCALE is not set in the test environment.
    EXPECT_GT(envScale(), 0.0);
}

} // namespace
} // namespace netcrafter::harness
