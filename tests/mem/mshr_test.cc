/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "src/mem/mshr.hh"

namespace netcrafter::mem {
namespace {

TEST(Mshr, AllocateMergeRelease)
{
    Mshr<int> mshr(4);
    EXPECT_FALSE(mshr.outstanding(0x40));
    mshr.allocate(0x40, 1);
    EXPECT_TRUE(mshr.outstanding(0x40));
    mshr.merge(0x40, 2);
    mshr.merge(0x40, 3);
    auto waiters = mshr.release(0x40);
    EXPECT_EQ(waiters, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(mshr.outstanding(0x40));
    EXPECT_EQ(mshr.allocations(), 1u);
    EXPECT_EQ(mshr.merges(), 2u);
}

TEST(Mshr, CapacityCountsDistinctAddresses)
{
    Mshr<int> mshr(2);
    mshr.allocate(0x40, 1);
    mshr.merge(0x40, 2); // merges don't consume entries
    mshr.allocate(0x80, 3);
    EXPECT_TRUE(mshr.full());
    mshr.release(0x40);
    EXPECT_FALSE(mshr.full());
}

TEST(Mshr, DoubleAllocatePanics)
{
    Mshr<int> mshr(4);
    mshr.allocate(0x40, 1);
    EXPECT_DEATH(mshr.allocate(0x40, 2), "duplicate");
}

TEST(Mshr, MergeWithoutEntryPanics)
{
    Mshr<int> mshr(4);
    EXPECT_DEATH(mshr.merge(0x40, 1), "without outstanding");
}

TEST(Mshr, ReleaseWithoutEntryPanics)
{
    Mshr<int> mshr(4);
    EXPECT_DEATH(mshr.release(0x40), "without outstanding");
}

TEST(Mshr, AllocateWhenFullPanics)
{
    Mshr<int> mshr(1);
    mshr.allocate(0x40, 1);
    EXPECT_DEATH(mshr.allocate(0x80, 2), "overflow");
}

} // namespace
} // namespace netcrafter::mem
