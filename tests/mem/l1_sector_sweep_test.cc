/**
 * @file
 * Parameterized sweep of L1 sector granularities (Figure 17's 4/8/16B
 * plus the unsectored 64B case): fill/hit semantics, needed-sector
 * computation, and the monotone property that finer sectors can only
 * raise the miss count of a fixed access trace.
 */

#include <gtest/gtest.h>

#include <deque>

#include "src/mem/l1_cache.hh"
#include "src/sim/engine.hh"
#include "src/sim/random.hh"

namespace netcrafter::mem {
namespace {

class SectorSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SectorSweep, NeededSectorsMatchGranularity)
{
    const std::uint32_t sector = GetParam();
    sim::Engine engine;
    L1Params params;
    params.sectorBytes = sector;
    std::deque<FillRequest> fills;
    L1Cache l1(engine, "l1", params,
               [&](FillRequest req) { fills.push_back(std::move(req)); });

    l1.access(0x1000, 0, 4, false, [] {});
    engine.run();
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills.front().neededSectors, 0b1u);

    l1.access(0x1040, kCacheLineBytes - 4, 4, false, [] {});
    engine.run();
    ASSERT_EQ(fills.size(), 2u);
    EXPECT_EQ(fills.back().neededSectors,
              1ull << (kCacheLineBytes / sector - 1));
}

TEST_P(SectorSweep, SectorFillSatisfiesOnlyItsSector)
{
    const std::uint32_t sector = GetParam();
    if (sector == kCacheLineBytes)
        return; // the unsectored case has a single sector
    sim::Engine engine;
    L1Params params;
    params.sectorBytes = sector;
    std::deque<FillRequest> fills;
    L1Cache l1(engine, "l1", params,
               [&](FillRequest req) { fills.push_back(std::move(req)); });

    int done = 0;
    l1.access(0x2000, 0, 4, false, [&] { ++done; });
    engine.run();
    fills.front().done(0b1);
    fills.pop_front();
    engine.run();
    EXPECT_EQ(done, 1);

    // Same sector hits; the other half of the line misses.
    l1.access(0x2000, sector / 2, 2, false, [&] { ++done; });
    engine.run();
    EXPECT_EQ(done, 2);
    EXPECT_TRUE(fills.empty());

    l1.access(0x2000, kCacheLineBytes / 2, 4, false, [&] { ++done; });
    engine.run();
    EXPECT_EQ(fills.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Granularities, SectorSweep,
                         ::testing::Values(4u, 8u, 16u, 64u));

/**
 * Property: replaying one identical random access trace, miss counts
 * are monotonically non-increasing in sector size (finer sectors can
 * never hit more) when every fill returns exactly the needed sectors.
 */
TEST(SectorSweepProperty, FinerSectorsNeverMissLess)
{
    std::vector<std::uint64_t> misses;
    for (std::uint32_t sector : {4u, 8u, 16u, 64u}) {
        sim::Engine engine;
        L1Params params;
        params.sectorBytes = sector;
        std::deque<FillRequest> fills;
        L1Cache l1(engine, "l1", params, [&](FillRequest req) {
            fills.push_back(std::move(req));
        });

        Pcg32 rng(31337);
        for (int i = 0; i < 4000; ++i) {
            const Addr line = static_cast<Addr>(rng.below(512)) * 64;
            const std::uint32_t offset = 4 * rng.below(15);
            l1.access(line, offset, 4, false, [] {});
            engine.run();
            while (!fills.empty()) {
                auto req = std::move(fills.front());
                fills.pop_front();
                req.done(req.neededSectors);
                engine.run();
            }
        }
        misses.push_back(l1.readMisses());
    }
    // 4B >= 8B >= 16B >= 64B misses.
    for (std::size_t i = 1; i < misses.size(); ++i)
        EXPECT_GE(misses[i - 1], misses[i]) << "sector step " << i;
    // And the spread is real, not degenerate.
    EXPECT_GT(misses.front(), misses.back());
}

} // namespace
} // namespace netcrafter::mem
