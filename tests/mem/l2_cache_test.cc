/** @file Unit tests for the banked write-back L2 cache. */

#include <gtest/gtest.h>

#include "src/mem/l2_cache.hh"
#include "src/sim/engine.hh"

namespace netcrafter::mem {
namespace {

struct L2Fixture : ::testing::Test
{
    sim::Engine engine;
    L2Params params;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<L2Cache> l2;

    void
    build()
    {
        dram = std::make_unique<Dram>(engine, "dram", 100, 1024);
        l2 = std::make_unique<L2Cache>(engine, "l2", params, *dram);
    }
};

TEST_F(L2Fixture, MissThenHitLatencies)
{
    build();
    Tick miss_done = 0, hit_done = 0;
    l2->read(0x1000, [&] { miss_done = engine.now(); });
    engine.run();
    // Miss: 100 lookup + DRAM (1 + 100).
    EXPECT_GE(miss_done, 200u);

    const Tick start = engine.now();
    l2->read(0x1000, [&] { hit_done = engine.now(); });
    engine.run();
    EXPECT_GE(hit_done - start, 100u); // lookup only
    EXPECT_LT(hit_done - start, 110u);
    EXPECT_EQ(l2->hits(), 1u);
    EXPECT_EQ(l2->misses(), 1u);
}

TEST_F(L2Fixture, ConcurrentMissesMerge)
{
    build();
    int done = 0;
    for (int i = 0; i < 4; ++i)
        l2->read(0x2000, [&] { ++done; });
    engine.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(dram->accesses(), 1u); // one fill serves all
}

TEST_F(L2Fixture, DirtyEvictionWritesBack)
{
    // Tiny cache: 2 sets x 2 ways.
    params.sizeBytes = 256;
    params.assoc = 2;
    params.banks = 1;
    build();

    l2->write(0x0, [] {});
    engine.run();
    const std::uint64_t fills = dram->accesses();

    // Evict set 0 by filling conflicting lines (set = line idx % 2).
    l2->read(0x80, [] {});
    l2->read(0x100, [] {});
    engine.run();
    EXPECT_EQ(l2->writebacks(), 1u);
    EXPECT_GE(dram->accesses(), fills + 3); // 2 fills + 1 writeback
}

TEST_F(L2Fixture, MshrFullParksRequests)
{
    params.mshrEntries = 2;
    build();
    int done = 0;
    for (int i = 0; i < 6; ++i)
        l2->read(0x1000 + i * 64, [&] { ++done; });
    engine.run();
    EXPECT_EQ(done, 6);
    EXPECT_GT(l2->mshrStalls(), 0u);
}

TEST_F(L2Fixture, BankConflictsSerialize)
{
    params.banks = 1;
    build();
    std::vector<Tick> done;
    // Two reads to the same (only) bank, different lines.
    l2->read(0x1000, [&] { done.push_back(engine.now()); });
    l2->read(0x2000, [&] { done.push_back(engine.now()); });
    engine.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GE(done[1], done[0] + 1); // pipelined, 1-cycle offset
}

TEST_F(L2Fixture, WriteAllocates)
{
    build();
    l2->write(0x3000, [] {});
    engine.run();
    int done = 0;
    l2->read(0x3000, [&] { ++done; });
    engine.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(l2->hits(), 1u); // the read hits the allocated line
}

} // namespace
} // namespace netcrafter::mem
