/** @file Unit tests for the set-associative sectored tag array. */

#include <gtest/gtest.h>

#include "src/mem/tag_array.hh"
#include "src/sim/random.hh"

#include <unordered_map>

namespace netcrafter::mem {
namespace {

TEST(TagArray, BasicFillAndHit)
{
    TagArray tags(4096, 4, 64, 64); // unsectored
    EXPECT_FALSE(tags.present(0x1000));
    auto ev = tags.fill(0x1000, fullMask(1));
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(tags.present(0x1000));
    EXPECT_TRUE(tags.covers(0x1000, 0x1));
}

TEST(TagArray, LruEvictsLeastRecentlyUsed)
{
    // One set: 256B cache, 4-way, 64B lines with matching set index.
    TagArray tags(256, 4, 64, 64);
    ASSERT_EQ(tags.numSets(), 1u);
    for (Addr a = 0; a < 4 * 64; a += 64)
        tags.fill(a, fullMask(1));
    tags.touch(0x0); // protect the oldest
    auto ev = tags.fill(0x400, fullMask(1));
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, 0x40u); // second-oldest evicted
    EXPECT_TRUE(tags.present(0x0));
}

TEST(TagArray, DirtyBitSurvivesUntilEviction)
{
    TagArray tags(256, 4, 64, 64);
    tags.fill(0x0, fullMask(1));
    tags.markDirty(0x0);
    for (Addr a = 64; a < 5 * 64; a += 64)
        tags.fill(a, fullMask(1));
    // 0x0 was LRU; its eviction must report dirty.
    bool saw_dirty = false;
    auto ev = tags.fill(0x500, fullMask(1));
    saw_dirty |= ev.valid && ev.dirty;
    // Depending on order the dirty line may already be gone; re-check
    // by scanning: at most one fill evicted it.
    EXPECT_FALSE(tags.present(0x0));
    (void)saw_dirty;
}

TEST(TagArray, SectorFillsAccumulate)
{
    TagArray tags(4096, 4, 64, 16); // 4 sectors per line
    tags.fill(0x1000, 0b0001);
    EXPECT_TRUE(tags.covers(0x1000, 0b0001));
    EXPECT_FALSE(tags.covers(0x1000, 0b0010));
    tags.fill(0x1000, 0b0100);
    EXPECT_TRUE(tags.covers(0x1000, 0b0101));
    EXPECT_EQ(tags.validSectors(0x1000), 0b0101u);
}

TEST(TagArray, RefillReplacesVictimSectors)
{
    TagArray tags(256, 4, 64, 16);
    tags.fill(0x0, 0b1111);
    for (Addr a = 64; a <= 4 * 64; a += 64)
        tags.fill(a, 0b0001);
    EXPECT_FALSE(tags.present(0x0));
    // The new line only has its filled sector valid.
    EXPECT_EQ(tags.validSectors(0x100), 0b0001u);
}

TEST(TagArray, InvalidateRemovesLine)
{
    TagArray tags(4096, 4, 64, 64);
    tags.fill(0x40, fullMask(1));
    EXPECT_TRUE(tags.invalidate(0x40));
    EXPECT_FALSE(tags.present(0x40));
    EXPECT_FALSE(tags.invalidate(0x40));
}

TEST(TagArray, SectorsForRange)
{
    TagArray tags(4096, 4, 64, 16);
    EXPECT_EQ(tags.sectorsForRange(0, 4), 0b0001u);
    EXPECT_EQ(tags.sectorsForRange(12, 8), 0b0011u); // straddle
    EXPECT_EQ(tags.sectorsForRange(48, 16), 0b1000u);
    EXPECT_EQ(tags.sectorsForRange(0, 64), 0b1111u);
}

TEST(TagArray, FullMaskHelper)
{
    EXPECT_EQ(fullMask(1), 0x1u);
    EXPECT_EQ(fullMask(4), 0xFu);
    EXPECT_EQ(fullMask(16), 0xFFFFu);
    EXPECT_EQ(fullMask(64), ~0ull);
}

TEST(TagArray, StatsCountFillsAndEvictions)
{
    TagArray tags(256, 4, 64, 64);
    for (Addr a = 0; a < 6 * 64; a += 64)
        tags.fill(a, fullMask(1));
    EXPECT_EQ(tags.fills(), 6u);
    EXPECT_EQ(tags.evictions(), 2u);
}

/**
 * Property: the tag array agrees with a reference model (map with
 * unlimited capacity) on hits for recently touched lines.
 */
TEST(TagArrayProperty, AgreesWithReferenceOnPresence)
{
    TagArray tags(64 * 1024, 4, 64, 16);
    Pcg32 rng(77);
    std::unordered_map<Addr, SectorMask> reference;
    for (int i = 0; i < 20000; ++i) {
        const Addr line = static_cast<Addr>(rng.below(1 << 14)) * 64;
        const SectorMask mask = 1ull << rng.below(4);
        tags.fill(line, mask);
        reference[line] |= mask;
        // The just-filled sector must be visible immediately.
        EXPECT_TRUE(tags.covers(line, mask));
        // Valid sectors are always a subset of everything ever filled.
        EXPECT_EQ(tags.validSectors(line) & ~reference[line], 0u);
    }
}

} // namespace
} // namespace netcrafter::mem
