/** @file Unit tests for the write-through, optionally sectored L1. */

#include <gtest/gtest.h>

#include <deque>

#include "src/mem/l1_cache.hh"
#include "src/sim/engine.hh"

namespace netcrafter::mem {
namespace {

/** Records fill requests; the test decides what each fill returns. */
struct FillStub
{
    std::deque<FillRequest> pending;

    L1Cache::FillFn
    fn()
    {
        return [this](FillRequest req) {
            pending.push_back(std::move(req));
        };
    }

    void
    answer(SectorMask mask)
    {
        ASSERT_FALSE(pending.empty());
        auto req = std::move(pending.front());
        pending.pop_front();
        req.done(mask);
    }
};

struct L1Fixture : ::testing::Test
{
    sim::Engine engine;
    L1Params params;
    FillStub below;
    std::unique_ptr<L1Cache> l1;

    void
    build()
    {
        l1 = std::make_unique<L1Cache>(engine, "l1", params,
                                       below.fn());
    }
};

TEST_F(L1Fixture, MissGoesBelowThenHits)
{
    build();
    int done = 0;
    ASSERT_TRUE(l1->access(0x1000, 0, 8, false, [&] { ++done; }));
    engine.run();
    ASSERT_EQ(below.pending.size(), 1u);
    EXPECT_EQ(below.pending.front().line, 0x1000u);
    EXPECT_EQ(below.pending.front().bytes, 8u);
    below.answer(fullMask(1));
    engine.run();
    EXPECT_EQ(done, 1);

    // Second access hits without going below.
    ASSERT_TRUE(l1->access(0x1000, 8, 8, false, [&] { ++done; }));
    engine.run();
    EXPECT_EQ(done, 2);
    EXPECT_TRUE(below.pending.empty());
    EXPECT_EQ(l1->readHits(), 1u);
    EXPECT_EQ(l1->readMisses(), 1u);
}

TEST_F(L1Fixture, HitLatencyIsLookupLatency)
{
    build();
    l1->access(0x40, 0, 4, false, [] {});
    engine.run();
    below.answer(fullMask(1));
    engine.run();
    const Tick start = engine.now();
    Tick done = 0;
    l1->access(0x40, 0, 4, false, [&] { done = engine.now(); });
    engine.run();
    EXPECT_EQ(done - start, params.lookupLatency);
}

TEST_F(L1Fixture, ConcurrentMissesMergeInMshr)
{
    build();
    int done = 0;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(l1->access(0x2000, 0, 4, false, [&] { ++done; }));
    engine.run();
    EXPECT_EQ(below.pending.size(), 1u); // merged
    below.answer(fullMask(1));
    engine.run();
    EXPECT_EQ(done, 3);
}

TEST_F(L1Fixture, RejectsWhenMshrFull)
{
    params.mshrEntries = 2;
    build();
    EXPECT_TRUE(l1->access(0x40, 0, 4, false, [] {}));
    EXPECT_TRUE(l1->access(0x80, 0, 4, false, [] {}));
    engine.run();
    EXPECT_FALSE(l1->access(0xC0, 0, 4, false, [] {}));
    EXPECT_GT(l1->rejections(), 0u);
}

TEST_F(L1Fixture, SectoredHitNeedsCoveringSectors)
{
    params.sectorBytes = 16;
    build();
    int done = 0;
    l1->access(0x1000, 0, 8, false, [&] { ++done; });
    engine.run();
    below.answer(0b0001); // only sector 0 filled (a trimmed response)
    engine.run();
    EXPECT_EQ(done, 1);

    // Same line, sector 2: must miss and go below again.
    l1->access(0x1000, 32, 8, false, [&] { ++done; });
    engine.run();
    ASSERT_EQ(below.pending.size(), 1u);
    EXPECT_EQ(below.pending.front().neededSectors, 0b0100u);
    below.answer(0b0100);
    engine.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(l1->readMisses(), 2u);
}

TEST_F(L1Fixture, MergedWaiterUncoveredByTrimmedFillReplays)
{
    params.sectorBytes = 16;
    build();
    int first = 0, second = 0;
    // Primary miss needs sector 0; merged miss needs sector 3.
    l1->access(0x1000, 0, 8, false, [&] { ++first; });
    l1->access(0x1000, 48, 8, false, [&] { ++second; });
    engine.run();
    ASSERT_EQ(below.pending.size(), 1u);
    below.answer(0b0001); // trimmed: sector 0 only
    engine.run();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
    // The replayed access issues a new fill for sector 3.
    ASSERT_EQ(below.pending.size(), 1u);
    EXPECT_EQ(below.pending.front().neededSectors, 0b1000u);
    below.answer(0b1000);
    engine.run();
    EXPECT_EQ(second, 1);
}

TEST_F(L1Fixture, WritesGoBelowAndRecycleSlots)
{
    params.mshrEntries = 2;
    build();
    EXPECT_TRUE(l1->access(0x40, 0, 64, true, nullptr));
    EXPECT_TRUE(l1->access(0x80, 0, 64, true, nullptr));
    engine.run();
    EXPECT_EQ(below.pending.size(), 2u);
    EXPECT_TRUE(below.pending.front().isWrite);
    // Slots exhausted by outstanding writes.
    EXPECT_FALSE(l1->access(0xC0, 0, 64, true, nullptr));
    below.answer(0);
    EXPECT_TRUE(l1->access(0xC0, 0, 64, true, nullptr));
    EXPECT_EQ(l1->writeAccesses(), 3u);
}

TEST_F(L1Fixture, WriteDoesNotAllocate)
{
    build();
    l1->access(0x40, 0, 64, true, nullptr);
    engine.run();
    below.answer(0);
    int done = 0;
    // A read to the written line still misses (no-allocate).
    l1->access(0x40, 0, 4, false, [&] { ++done; });
    engine.run();
    EXPECT_EQ(l1->readMisses(), 1u);
    below.answer(fullMask(1));
    engine.run();
    EXPECT_EQ(done, 1);
}

TEST_F(L1Fixture, UnalignedLinePanics)
{
    build();
    EXPECT_DEATH(l1->access(0x41, 0, 4, false, [] {}), "unaligned");
}

} // namespace
} // namespace netcrafter::mem
