/** @file Unit tests for the DRAM latency/bandwidth model. */

#include <gtest/gtest.h>

#include "src/mem/dram.hh"
#include "src/sim/engine.hh"

namespace netcrafter::mem {
namespace {

TEST(Dram, FixedLatencyApplies)
{
    sim::Engine engine;
    Dram dram(engine, "dram", 100, 1024);
    Tick done = 0;
    dram.access(64, [&] { done = engine.now(); });
    engine.run();
    EXPECT_EQ(done, 101u); // 1 occupancy cycle + 100 latency
}

TEST(Dram, BandwidthSerializesAccesses)
{
    sim::Engine engine;
    Dram dram(engine, "dram", 100, 64); // 64 B/cycle
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i)
        dram.access(64, [&] { done.push_back(engine.now()); });
    engine.run();
    ASSERT_EQ(done.size(), 4u);
    // Each 64B access occupies one cycle of bandwidth back-to-back.
    EXPECT_EQ(done[1] - done[0], 1u);
    EXPECT_EQ(done[3] - done[0], 3u);
}

TEST(Dram, LargeAccessOccupiesLonger)
{
    sim::Engine engine;
    Dram dram(engine, "dram", 10, 64);
    Tick first = 0, second = 0;
    dram.access(640, [&] { first = engine.now(); });  // 10 cycles BW
    dram.access(64, [&] { second = engine.now(); });
    engine.run();
    EXPECT_EQ(first, 20u);        // 10 occupancy + 10 latency
    EXPECT_EQ(second, 21u);       // queued behind the big one
}

TEST(Dram, NullCallbackWritesStillConsumeBandwidth)
{
    sim::Engine engine;
    Dram dram(engine, "dram", 10, 64);
    dram.access(64, nullptr);
    Tick done = 0;
    dram.access(64, [&] { done = engine.now(); });
    engine.run();
    EXPECT_EQ(done, 12u); // second access starts at cycle 1
    EXPECT_EQ(dram.accesses(), 2u);
    EXPECT_EQ(dram.bytesAccessed(), 128u);
}

} // namespace
} // namespace netcrafter::mem
