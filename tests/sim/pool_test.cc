/**
 * @file
 * Unit tests for the thread-local object pools behind PacketPtr and
 * FlitPtr: reference counting, recycling, reset-on-release, and the
 * zero-allocation steady state.
 */

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "src/noc/flit.hh"
#include "src/noc/packet.hh"
#include "src/sim/pool.hh"

namespace netcrafter::noc {
namespace {

using sim::ObjectPool;

TEST(Pool, CopiesShareAndLastDropRecycles)
{
    auto &pool = ObjectPool<Packet>::local();
    PacketPtr a = makePacket(PacketType::ReadReq, 0, 1, 0x100);
    Packet *raw = a.get();
    const std::size_t free_while_live = pool.freeCount();
    {
        PacketPtr b = a;
        EXPECT_EQ(b.get(), raw);
    }
    // Dropping a copy must not release the node.
    EXPECT_EQ(pool.freeCount(), free_while_live);
    // b dropped; a still owns the node.
    EXPECT_EQ(a->addr, 0x100u);
    a.reset();
    EXPECT_EQ(a, nullptr);
    // The node returned to the free list and was reset for reuse.
    PacketPtr c = makePacket(PacketType::WriteReq, 2, 3, 0x200);
    EXPECT_EQ(c.get(), raw) << "LIFO free list reuses the node";
    EXPECT_EQ(c->addr, 0x200u);
    EXPECT_EQ(c->payloadBytes, defaultPayloadBytes(PacketType::WriteReq));
    EXPECT_FALSE(c->trimmed);
}

TEST(Pool, MoveDoesNotChangeRefcount)
{
    PacketPtr a = makePacket(PacketType::ReadReq, 0, 1, 0x100);
    Packet *raw = a.get();
    PacketPtr b = std::move(a);
    EXPECT_EQ(a, nullptr);
    EXPECT_EQ(b.get(), raw);
    b.reset();
    // One allocate, one release: acquiring again reuses the node.
    EXPECT_EQ(makePacket(PacketType::ReadReq, 0, 1, 0).get(), raw);
}

TEST(Pool, PayloadCopyDoesNotCopyIdentity)
{
    // makeFlit(const Flit &) copies the payload of a flit that still has
    // live handles; the new node's refcount must be its own.
    PacketPtr pkt = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    auto flits = segmentPacket(pkt, 16);
    FlitPtr copy = makeFlit(*flits.front());
    EXPECT_NE(copy.get(), flits.front().get());
    EXPECT_EQ(copy->pkt.get(), pkt.get());
    EXPECT_EQ(copy->occupiedBytes, flits.front()->occupiedBytes);
    // Dropping the copy must not disturb the original handles.
    copy.reset();
    EXPECT_EQ(flits.front()->pkt.get(), pkt.get());
}

TEST(Pool, ReleasingFlitDropsItsPacketReference)
{
    auto &packet_pool = ObjectPool<Packet>::local();
    PacketPtr pkt = makePacket(PacketType::WriteReq, 0, 1, 0x80);
    Packet *raw = pkt.get();
    auto flits = segmentPacket(pkt, 16);
    pkt.reset();
    // Flits keep the packet alive...
    EXPECT_EQ(flits.front()->pkt.get(), raw);
    const std::size_t free_before = packet_pool.freeCount();
    flits.clear();
    // ...and the last flit's release returns the packet to its pool.
    EXPECT_EQ(packet_pool.freeCount(), free_before + 1);
}

TEST(Pool, RecycledFlitKeepsStitchedCapacity)
{
    PacketPtr parent_pkt = makePacket(PacketType::ReadRsp, 0, 1, 0x40);
    FlitPtr flit = makeFlit();
    flit->pkt = parent_pkt;
    flit->occupiedBytes = 4;
    flit->capacity = 16;
    StitchedPiece piece;
    piece.pkt = makePacket(PacketType::WriteRsp, 1, 0, 0x80);
    piece.bytes = 4;
    flit->stitched.push_back(piece);
    const std::size_t cap = flit->stitched.capacity();
    Flit *raw = flit.get();

    flit.reset();

    FlitPtr again = makeFlit();
    ASSERT_EQ(again.get(), raw);
    EXPECT_TRUE(again->stitched.empty());
    EXPECT_EQ(again->stitched.capacity(), cap)
        << "resetForReuse must keep the stitched vector's storage";
    EXPECT_EQ(again->pkt, nullptr);
    EXPECT_EQ(again->occupiedBytes, 0);
    EXPECT_FALSE(again->pooledOnce);
}

TEST(Pool, SteadyStateDoesNotGrowTheArena)
{
    auto &packet_pool = ObjectPool<Packet>::local();
    auto &flit_pool = ObjectPool<Flit>::local();
    // Warm up: one segmentation cycle populates both pools.
    segmentPacket(makePacket(PacketType::ReadRsp, 0, 1, 0x40), 16);
    const std::size_t packets = packet_pool.allocated();
    const std::size_t flits = flit_pool.allocated();
    EXPECT_GT(packets, 0u);
    EXPECT_GT(flits, 0u);

    for (int i = 0; i < 10000; ++i) {
        auto fs = segmentPacket(
            makePacket(PacketType::ReadRsp, 0, 1, 0x40 + i * 64), 16);
        EXPECT_EQ(fs.size(), 5u);
    }
    EXPECT_EQ(packet_pool.allocated(), packets)
        << "steady-state packet churn must reuse pooled nodes";
    EXPECT_EQ(flit_pool.allocated(), flits)
        << "steady-state flit churn must reuse pooled nodes";
    EXPECT_LE(packet_pool.highWater(), packet_pool.allocated());
    EXPECT_EQ(packet_pool.arenaBytes(),
              packet_pool.allocated() * sizeof(Packet));
}

TEST(Pool, SlabsRetireToTheVaultWhenTheirThreadExits)
{
    // Under whole-window work stealing a shard's packets can outlive
    // the host thread whose pool carved their slab: a node released on
    // thread A joins A's free list even though thread B allocated it,
    // and a still-referenced node must stay valid after B exits. The
    // exiting thread's pool retires its slabs into the process-wide
    // vault instead of freeing them.
    const std::size_t retired_before = ObjectPool<Packet>::retiredSlabs();

    PacketPtr survivor;
    std::thread worker([&survivor] {
        // Allocate from the worker's thread-local pool (forcing at
        // least one slab) and hand a live reference back out.
        survivor = makePacket(PacketType::ReadReq, 2, 3, 0x2000);
        survivor->payloadBytes = 96;
    });
    worker.join();

    // The worker's pool is gone; its slab is vaulted, not freed.
    EXPECT_GT(ObjectPool<Packet>::retiredSlabs(), retired_before);

    // The node is still fully usable from this thread — and releasing
    // it here parks it on *this* thread's free list, which is exactly
    // the cross-thread migration the vault exists to keep safe.
    ASSERT_TRUE(survivor);
    EXPECT_EQ(survivor->src, 2u);
    EXPECT_EQ(survivor->payloadBytes, 96u);
    survivor.reset();
}

TEST(Pool, CountersTrackLiveNodes)
{
    auto &pool = ObjectPool<Packet>::local();
    // Signed net liveness: nodes migrated in from other threads' pools
    // (released here, carved elsewhere) can push the free list past
    // this pool's own arena, so the difference may start negative.
    const auto net = [&pool] {
        return static_cast<std::int64_t>(pool.allocated()) -
               static_cast<std::int64_t>(pool.freeCount());
    };
    const std::int64_t live_before = net();
    std::vector<PacketPtr> held;
    for (int i = 0; i < 300; ++i)
        held.push_back(makePacket(PacketType::ReadReq, 0, 1, i * 64));
    EXPECT_EQ(net(), live_before + 300);
    EXPECT_GE(pool.highWater(),
              static_cast<std::size_t>(
                  std::max<std::int64_t>(live_before + 300, 0)));
    held.clear();
    EXPECT_EQ(net(), live_before);
}

} // namespace
} // namespace netcrafter::noc
