/** @file Unit tests for the discrete-event engine and event queue. */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"
#include "src/sim/small_fn.hh"

namespace netcrafter::sim {
namespace {

/** Minimal intrusive event running an arbitrary callback. */
class TestEvent : public Event
{
  public:
    explicit TestEvent(std::function<void()> fn = nullptr)
        : fn_(std::move(fn))
    {}

    void
    process() override
    {
        if (fn_)
            fn_();
    }

  private:
    std::function<void()> fn_;
};

TEST(EventQueue, OrdersByTick)
{
    EventQueue q;
    std::vector<int> order;
    TestEvent e3([&] { order.push_back(3); });
    TestEvent e1([&] { order.push_back(1); });
    TestEvent e2([&] { order.push_back(2); });
    q.schedule(e3, 30);
    q.schedule(e1, 10);
    q.schedule(e2, 20);
    while (!q.empty())
        q.pop()->process();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<std::unique_ptr<TestEvent>> events;
    for (int i = 0; i < 10; ++i) {
        events.push_back(std::make_unique<TestEvent>(
            [&order, i] { order.push_back(i); }));
        q.schedule(*events.back(), 5);
    }
    while (!q.empty())
        q.pop()->process();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, FarFutureEventsUseTheHeap)
{
    EventQueue q;
    TestEvent near_ev, far_ev;
    q.schedule(near_ev, EventQueue::kWheelSlots - 1);
    q.schedule(far_ev, EventQueue::kWheelSlots + 1000);
    EXPECT_EQ(q.nearScheduled(), 1u);
    EXPECT_EQ(q.farScheduled(), 1u);
    EXPECT_EQ(q.pop(), &near_ev);
    // The far event migrates into the wheel when the base advances.
    EXPECT_EQ(q.nextTick(), EventQueue::kWheelSlots + 1000);
    EXPECT_EQ(q.pop(), &far_ev);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopReportsWhenAndClearsScheduled)
{
    EventQueue q;
    TestEvent ev;
    q.schedule(ev, 123);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 123u);
    Event *popped = q.pop();
    EXPECT_EQ(popped, &ev);
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(popped->when(), 123u);
}

TEST(EventQueue, ClearUnschedulesEverything)
{
    EventQueue q;
    TestEvent near_ev, far_ev;
    q.schedule(near_ev, 3);
    q.schedule(far_ev, 500);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(near_ev.scheduled());
    EXPECT_FALSE(far_ev.scheduled());
    // Both events are reusable after clear().
    q.schedule(near_ev, 1);
    q.schedule(far_ev, 2);
    EXPECT_EQ(q.pop(), &near_ev);
    EXPECT_EQ(q.pop(), &far_ev);
}

TEST(EventQueue, StressRandomOrderMatchesReferenceHeap)
{
    // Random interleaving of schedules and pops, checked against a
    // (tick, seq) multimap reference model. Ticks span several wheel
    // revolutions so wheel<->heap migration is exercised.
    EventQueue q;
    Pcg32 rng(42);
    std::vector<std::unique_ptr<TestEvent>> storage;
    std::vector<std::pair<Tick, const Event *>> reference;
    Tick drain_point = 0;
    std::size_t ref_head = 0;

    auto ref_sorted = [&] {
        std::stable_sort(reference.begin() + ref_head, reference.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
    };

    for (int round = 0; round < 200; ++round) {
        const int pushes = 1 + rng.below(50);
        for (int i = 0; i < pushes; ++i) {
            const Tick when = drain_point + rng.below(1000);
            storage.push_back(std::make_unique<TestEvent>());
            q.schedule(*storage.back(), when);
            reference.emplace_back(when, storage.back().get());
        }
        ref_sorted();
        const int pops = rng.below(static_cast<std::uint32_t>(
            reference.size() - ref_head + 1));
        for (int i = 0; i < pops; ++i) {
            ASSERT_FALSE(q.empty());
            const Event *got = q.pop();
            ASSERT_EQ(got, reference[ref_head].second);
            ASSERT_EQ(got->when(), reference[ref_head].first);
            ASSERT_GE(got->when(), drain_point);
            drain_point = got->when();
            ++ref_head;
        }
    }
    while (ref_head < reference.size()) {
        ASSERT_EQ(q.pop(), reference[ref_head].second);
        ++ref_head;
    }
    EXPECT_TRUE(q.empty());
}

TEST(Engine, AdvancesTime)
{
    Engine engine;
    Tick seen = 0;
    engine.schedule(100, [&] { seen = engine.now(); });
    EXPECT_EQ(engine.run(), RunStatus::Drained);
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(engine.now(), 100u);
}

TEST(Engine, EventsCanScheduleEvents)
{
    Engine engine;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            engine.schedule(10, chain);
    };
    engine.schedule(10, chain);
    EXPECT_EQ(engine.run(), RunStatus::Drained);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(engine.now(), 50u);
}

TEST(Engine, RunLimitStopsAndAdvancesNow)
{
    Engine engine;
    bool late_fired = false;
    engine.schedule(10, [] {});
    engine.schedule(1000, [&] { late_fired = true; });
    EXPECT_EQ(engine.run(100), RunStatus::LimitHit);
    EXPECT_EQ(engine.lastRunStatus(), RunStatus::LimitHit);
    // A limit-hit run reports the cap as the current time.
    EXPECT_EQ(engine.now(), 100u);
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(engine.run(), RunStatus::Drained);
    EXPECT_TRUE(late_fired);
    EXPECT_EQ(engine.now(), 1000u);
}

TEST(Engine, StopRequestHonored)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1, [&] {
        ++fired;
        engine.stop();
    });
    engine.schedule(2, [&] { ++fired; });
    EXPECT_EQ(engine.run(), RunStatus::Stopped);
    EXPECT_EQ(engine.lastRunStatus(), RunStatus::Stopped);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(engine.run(), RunStatus::Drained);
    EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsEvents)
{
    Engine engine;
    for (int i = 0; i < 7; ++i)
        engine.schedule(i + 1, [] {});
    engine.run();
    EXPECT_EQ(engine.eventsExecuted(), 7u);
}

TEST(Engine, IntrusiveEventsFire)
{
    Engine engine;
    struct Counter
    {
        int fired = 0;
        void tick() { ++fired; }
    } counter;
    MemberEvent<Counter, &Counter::tick> ev(&counter);
    engine.schedule(ev, 5);
    EXPECT_TRUE(ev.scheduled());
    engine.run();
    EXPECT_EQ(counter.fired, 1);
    EXPECT_FALSE(ev.scheduled());
    // Intrusive events are reusable once they have fired.
    engine.schedule(ev, 5);
    engine.run();
    EXPECT_EQ(counter.fired, 2);
}

TEST(Engine, CallbackPoolRecyclesNodes)
{
    Engine engine;
    // Steady-state scheduling: one event in flight at a time. The pool
    // must allocate one slab and then stop growing.
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 10000)
            engine.schedule(1, chain);
    };
    engine.schedule(1, chain);
    engine.run();
    EXPECT_EQ(fired, 10000);
    const std::size_t allocated = engine.callbackPoolAllocated();
    EXPECT_GT(allocated, 0u);
    EXPECT_LE(engine.callbackPoolHighWater(), allocated);
    // Everything in flight has been returned.
    EXPECT_EQ(engine.callbackPoolFree(), allocated);
    EXPECT_GT(engine.callbackArenaBytes(), 0u);

    // Re-running the same load must not grow the arena: zero-allocation
    // steady state.
    fired = 0;
    engine.schedule(1, chain);
    engine.run();
    EXPECT_EQ(engine.callbackPoolAllocated(), allocated);
}

TEST(Engine, PoolHighWaterTracksBurst)
{
    Engine engine;
    for (int i = 0; i < 200; ++i)
        engine.schedule(1, [] {});
    EXPECT_GE(engine.callbackPoolHighWater(), 200u);
    engine.run();
    EXPECT_EQ(engine.callbackPoolFree(), engine.callbackPoolAllocated());
}

TEST(SmallFn, InlineCapturesDoNotAllocate)
{
    const std::uint64_t before = SmallFn::heapAllocations();
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    SmallFn fn([a, b, c, d]() mutable { a = b + c + d; });
    fn();
    EXPECT_EQ(SmallFn::heapAllocations(), before);
}

TEST(SmallFn, OversizeCapturesFallBackToHeap)
{
    const std::uint64_t before = SmallFn::heapAllocations();
    std::array<std::uint64_t, 32> big{};
    SmallFn fn([big] { (void)big; });
    fn();
    EXPECT_EQ(SmallFn::heapAllocations(), before + 1);
}

TEST(SmallFn, MoveTransfersOwnership)
{
    int fired = 0;
    SmallFn fn([&fired] { ++fired; });
    SmallFn moved = std::move(fn);
    EXPECT_FALSE(fn);
    EXPECT_TRUE(moved);
    moved();
    EXPECT_EQ(fired, 1);
}

TEST(Pcg32, DeterministicStreams)
{
    Pcg32 a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        std::uint32_t va = a.next();
        EXPECT_EQ(va, b.next());
    }
    // Different seeds diverge (probabilistically certain).
    bool any_diff = false;
    Pcg32 a2(7);
    for (int i = 0; i < 100; ++i)
        any_diff |= a2.next() != c.next();
    EXPECT_TRUE(any_diff);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 rng(123);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // namespace
} // namespace netcrafter::sim
