/** @file Unit tests for the discrete-event engine and event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

namespace netcrafter::sim {
namespace {

TEST(EventQueue, OrdersByTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, StressRandomOrderStaysSorted)
{
    EventQueue q;
    Pcg32 rng(42);
    for (int i = 0; i < 10000; ++i)
        q.schedule(rng.below(100000), [] {});
    Tick prev = 0;
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when);
        EXPECT_GE(when, prev);
        prev = when;
    }
}

TEST(Engine, AdvancesTime)
{
    Engine engine;
    Tick seen = 0;
    engine.schedule(100, [&] { seen = engine.now(); });
    EXPECT_TRUE(engine.run());
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(engine.now(), 100u);
}

TEST(Engine, EventsCanScheduleEvents)
{
    Engine engine;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            engine.schedule(10, chain);
    };
    engine.schedule(10, chain);
    EXPECT_TRUE(engine.run());
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(engine.now(), 50u);
}

TEST(Engine, RunLimitStops)
{
    Engine engine;
    bool late_fired = false;
    engine.schedule(10, [] {});
    engine.schedule(1000, [&] { late_fired = true; });
    EXPECT_FALSE(engine.run(100));
    EXPECT_FALSE(late_fired);
    EXPECT_TRUE(engine.run());
    EXPECT_TRUE(late_fired);
}

TEST(Engine, StopRequestHonored)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1, [&] {
        ++fired;
        engine.stop();
    });
    engine.schedule(2, [&] { ++fired; });
    EXPECT_FALSE(engine.run());
    EXPECT_EQ(fired, 1);
}

TEST(Engine, CountsEvents)
{
    Engine engine;
    for (int i = 0; i < 7; ++i)
        engine.schedule(i + 1, [] {});
    engine.run();
    EXPECT_EQ(engine.eventsExecuted(), 7u);
}

TEST(Pcg32, DeterministicStreams)
{
    Pcg32 a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        std::uint32_t va = a.next();
        EXPECT_EQ(va, b.next());
    }
    // Different seeds diverge (probabilistically certain).
    bool any_diff = false;
    Pcg32 a2(7);
    for (int i = 0; i < 100; ++i)
        any_diff |= a2.next() != c.next();
    EXPECT_TRUE(any_diff);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 rng(123);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // namespace
} // namespace netcrafter::sim
