/**
 * @file
 * Property test: the event queue agrees with a reference model
 * (std::multimap ordered by (tick, insertion sequence)) on delivery
 * order under randomized workloads.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

namespace netcrafter::sim {
namespace {

TEST(EventQueueProperty, MatchesReferenceModel)
{
    Pcg32 rng(404);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue q;
        std::multimap<std::pair<Tick, std::uint64_t>, int> reference;
        std::uint64_t seq = 0;
        std::vector<int> fired;

        int next_id = 0;
        // Interleave pushes and pops randomly.
        for (int op = 0; op < 2000; ++op) {
            if (q.empty() || rng.chance(0.6)) {
                const Tick when = rng.below(1000);
                const int id = next_id++;
                q.schedule(when, [&fired, id] { fired.push_back(id); });
                reference.emplace(std::make_pair(when, seq++), id);
            } else {
                Tick when = 0;
                q.pop(when)();
                auto it = reference.begin();
                ASSERT_EQ(fired.back(), it->second);
                ASSERT_EQ(when, it->first.first);
                reference.erase(it);
            }
        }
        while (!q.empty()) {
            Tick when = 0;
            q.pop(when)();
            auto it = reference.begin();
            ASSERT_EQ(fired.back(), it->second);
            reference.erase(it);
        }
        EXPECT_TRUE(reference.empty());
    }
}

TEST(EventQueueProperty, ClearEmptiesEverything)
{
    EventQueue q;
    for (int i = 0; i < 100; ++i)
        q.schedule(i, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

} // namespace
} // namespace netcrafter::sim
