/**
 * @file
 * Property test: the event queue agrees with a reference model
 * (std::multimap ordered by (tick, insertion sequence)) on delivery
 * order under randomized workloads.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

namespace netcrafter::sim {
namespace {

class IdEvent : public Event
{
  public:
    explicit IdEvent(int id, std::vector<int> &fired)
        : id_(id), fired_(fired)
    {}

    void process() override { fired_.push_back(id_); }

  private:
    int id_;
    std::vector<int> &fired_;
};

TEST(EventQueueProperty, MatchesReferenceModel)
{
    Pcg32 rng(404);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue q;
        std::multimap<std::pair<Tick, std::uint64_t>, int> reference;
        std::uint64_t seq = 0;
        std::vector<int> fired;
        std::vector<std::unique_ptr<IdEvent>> storage;
        // The queue forbids scheduling before the last popped tick, so
        // new ticks are generated at or after the drain point. Spanning
        // many wheel revolutions exercises wheel<->heap migration.
        Tick drain_point = 0;

        int next_id = 0;
        // Interleave pushes and pops randomly.
        for (int op = 0; op < 2000; ++op) {
            if (q.empty() || rng.chance(0.6)) {
                const Tick when = drain_point + rng.below(1000);
                const int id = next_id++;
                storage.push_back(std::make_unique<IdEvent>(id, fired));
                q.schedule(*storage.back(), when);
                reference.emplace(std::make_pair(when, seq++), id);
            } else {
                Event *ev = q.pop();
                const Tick when = ev->when();
                ev->process();
                auto it = reference.begin();
                ASSERT_EQ(fired.back(), it->second);
                ASSERT_EQ(when, it->first.first);
                ASSERT_GE(when, drain_point);
                drain_point = when;
                reference.erase(it);
            }
        }
        while (!q.empty()) {
            q.pop()->process();
            auto it = reference.begin();
            ASSERT_EQ(fired.back(), it->second);
            reference.erase(it);
        }
        EXPECT_TRUE(reference.empty());
    }
}

TEST(EventQueueProperty, ClearEmptiesEverything)
{
    EventQueue q;
    std::vector<std::unique_ptr<IdEvent>> storage;
    std::vector<int> fired;
    for (int i = 0; i < 100; ++i) {
        storage.push_back(std::make_unique<IdEvent>(i, fired));
        q.schedule(*storage.back(), i);
    }
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    for (const auto &ev : storage)
        EXPECT_FALSE(ev->scheduled());
}

} // namespace
} // namespace netcrafter::sim
