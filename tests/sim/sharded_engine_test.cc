/**
 * @file
 * Unit tests for the conservative barrier-synchronized sharded engine:
 * quantum windows, clock alignment, stall accounting, and the wire
 * event phase ordering the protocol's determinism rests on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter::sim {
namespace {

TEST(ShardedEngineTest, SingleShardRunsSerially)
{
    ShardedEngine eng(1);
    ASSERT_EQ(eng.numShards(), 1u);

    std::vector<Tick> fired;
    eng.shard(0).schedule(5, [&] { fired.push_back(eng.shard(0).now()); });
    eng.shard(0).schedule(2, [&] { fired.push_back(eng.shard(0).now()); });

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 2u);
    EXPECT_EQ(fired[1], 5u);
    EXPECT_EQ(eng.quantaExecuted(), 0u); // no barriers when serial
    EXPECT_EQ(eng.eventsExecuted(), 2u);
}

TEST(ShardedEngineTest, TwoShardsDrainIndependentWork)
{
    ShardedEngine eng(2);
    eng.setLookahead(10);

    std::vector<Tick> fired0, fired1;
    for (Tick t : {3u, 17u, 42u})
        eng.shard(0).schedule(t, [&fired0, &eng] {
            fired0.push_back(eng.shard(0).now());
        });
    for (Tick t : {5u, 25u})
        eng.shard(1).schedule(t, [&fired1, &eng] {
            fired1.push_back(eng.shard(1).now());
        });

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(fired0, (std::vector<Tick>{3, 17, 42}));
    EXPECT_EQ(fired1, (std::vector<Tick>{5, 25}));
    EXPECT_EQ(eng.eventsExecuted(), 5u);
    // Windows of 10 ticks starting at the global minimum pending tick:
    // [3,12] [17,26] [42,51] — barriers only where events remain.
    EXPECT_GE(eng.quantaExecuted(), 3u);
}

TEST(ShardedEngineTest, LimitHitStopsBeforeFutureEvents)
{
    ShardedEngine eng(2);
    eng.setLookahead(16);

    bool late_fired = false;
    eng.shard(0).schedule(5, [] {});
    eng.shard(1).schedule(100, [&] { late_fired = true; });

    EXPECT_EQ(eng.run(50), RunStatus::LimitHit);
    EXPECT_FALSE(late_fired);
    // The late event survives and fires on the next run.
    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_TRUE(late_fired);
}

TEST(ShardedEngineTest, AlignClocksBringsAllShardsToGlobalMax)
{
    ShardedEngine eng(2);
    eng.setLookahead(8);

    eng.shard(0).schedule(7, [] {});
    eng.shard(1).schedule(31, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    eng.alignClocks();
    EXPECT_EQ(eng.shard(0).now(), 31u);
    EXPECT_EQ(eng.shard(1).now(), 31u);
    EXPECT_EQ(eng.now(), 31u);
}

TEST(ShardedEngineTest, BarrierStallTicksAccrueOnIdleShard)
{
    ShardedEngine eng(2);
    eng.setLookahead(4);

    // Shard 0 has events across several windows; shard 1 has none, so
    // it stalls for every tick of every window.
    for (Tick t : {1u, 6u, 11u})
        eng.shard(0).schedule(t, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_GT(eng.barrierStallTicks(1), 0u);
    EXPECT_EQ(eng.totalBarrierStallTicks(),
              eng.barrierStallTicks(0) + eng.barrierStallTicks(1));
}

TEST(ShardedEngineTest, RepeatedRunsAcrossKernelBarriers)
{
    // Mimic the inter-kernel pattern: run to drain, align, schedule
    // more, run again — worker threads must park and resume cleanly.
    ShardedEngine eng(2);
    eng.setLookahead(16);

    // Per-shard counters: callbacks run concurrently on their shard's
    // thread, so they must not share mutable state.
    int fired0 = 0, fired1 = 0;
    for (int kernel = 0; kernel < 3; ++kernel) {
        eng.shard(0).schedule(4, [&fired0] { ++fired0; });
        eng.shard(1).schedule(9, [&fired1] { ++fired1; });
        EXPECT_EQ(eng.run(), RunStatus::Drained);
        eng.alignClocks();
    }
    EXPECT_EQ(fired0, 3);
    EXPECT_EQ(fired1, 3);
    EXPECT_EQ(eng.eventsExecuted(), 6u);
}

TEST(ShardedEngineTest, WirePhaseFiresBeforeDefaultAtSameTick)
{
    // The determinism argument requires wire-phase events (deliveries,
    // credit returns) to sort before a tick's default events regardless
    // of scheduling order.
    Engine eng;
    std::vector<int> order;
    eng.schedule(10, [&] { order.push_back(1); }); // default phase
    eng.scheduleWireAbs(10, [&] { order.push_back(0); });
    eng.schedule(10, [&] { order.push_back(2); }); // default phase
    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngineTest, WindowNeverExecutesEventsPastTheQuantum)
{
    // An event scheduled inside a window for a tick beyond it must wait
    // for a later window; runWindow() must not run past its limit.
    Engine eng;
    std::vector<Tick> fired;
    eng.schedule(2, [&] {
        fired.push_back(eng.now());
        eng.schedule(100, [&] { fired.push_back(eng.now()); });
    });
    EXPECT_EQ(eng.runWindow(50), RunStatus::LimitHit);
    EXPECT_EQ(fired, (std::vector<Tick>{2}));
    // runWindow leaves now() at the last executed event, not the limit.
    EXPECT_EQ(eng.now(), 2u);
    EXPECT_EQ(eng.nextEventTick(), 102u);
}

} // namespace
} // namespace netcrafter::sim
