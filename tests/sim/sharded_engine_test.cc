/**
 * @file
 * Unit tests for the conservative barrier-synchronized sharded engine:
 * quantum windows, clock alignment, stall accounting, and the wire
 * event phase ordering the protocol's determinism rests on.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter::sim {
namespace {

TEST(ShardedEngineTest, SingleShardRunsSerially)
{
    ShardedEngine eng(1);
    ASSERT_EQ(eng.numShards(), 1u);

    std::vector<Tick> fired;
    eng.shard(0).schedule(5, [&] { fired.push_back(eng.shard(0).now()); });
    eng.shard(0).schedule(2, [&] { fired.push_back(eng.shard(0).now()); });

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 2u);
    EXPECT_EQ(fired[1], 5u);
    EXPECT_EQ(eng.quantaExecuted(), 0u); // no barriers when serial
    EXPECT_EQ(eng.eventsExecuted(), 2u);
}

TEST(ShardedEngineTest, TwoShardsDrainIndependentWork)
{
    ShardedEngine eng(2);
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(10);

    std::vector<Tick> fired0, fired1;
    for (Tick t : {3u, 17u, 42u})
        eng.shard(0).schedule(t, [&fired0, &eng] {
            fired0.push_back(eng.shard(0).now());
        });
    for (Tick t : {5u, 25u})
        eng.shard(1).schedule(t, [&fired1, &eng] {
            fired1.push_back(eng.shard(1).now());
        });

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(fired0, (std::vector<Tick>{3, 17, 42}));
    EXPECT_EQ(fired1, (std::vector<Tick>{5, 25}));
    EXPECT_EQ(eng.eventsExecuted(), 5u);
    // Fixed windows of 10 ticks starting at the global minimum pending
    // tick: [3,12] [17,26] [42,51] — rounds only where events remain.
    EXPECT_GE(eng.quantaExecuted(), 3u);
}

TEST(ShardedEngineTest, AdaptiveDrainsUnconnectedShardsInOneStride)
{
    // With no registered cross-shard channel, no shard can ever affect
    // another: the adaptive bound is infinite and the whole drain is
    // one unbounded window with no stall on anyone.
    ShardedEngine eng(2);
    ASSERT_EQ(eng.lookaheadMode(), LookaheadMode::Adaptive);

    std::vector<Tick> fired0, fired1;
    for (Tick t : {3u, 17u, 42u})
        eng.shard(0).schedule(t, [&fired0, &eng] {
            fired0.push_back(eng.shard(0).now());
        });
    for (Tick t : {5u, 25u})
        eng.shard(1).schedule(t, [&fired1, &eng] {
            fired1.push_back(eng.shard(1).now());
        });

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(fired0, (std::vector<Tick>{3, 17, 42}));
    EXPECT_EQ(fired1, (std::vector<Tick>{5, 25}));
    EXPECT_EQ(eng.quantaExecuted(), 1u);
    EXPECT_EQ(eng.totalBarrierStallTicks(), 0u);
    // Unbounded windows are excluded from the width distribution.
    EXPECT_EQ(eng.windowTicksDist().total(), 0u);
}

TEST(ShardedEngineTest, LimitHitStopsBeforeFutureEvents)
{
    ShardedEngine eng(2);
    eng.setLookahead(16);

    bool late_fired = false;
    eng.shard(0).schedule(5, [] {});
    eng.shard(1).schedule(100, [&] { late_fired = true; });

    EXPECT_EQ(eng.run(50), RunStatus::LimitHit);
    EXPECT_FALSE(late_fired);
    // The late event survives and fires on the next run.
    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_TRUE(late_fired);
}

TEST(ShardedEngineTest, AlignClocksBringsAllShardsToGlobalMax)
{
    ShardedEngine eng(2);
    eng.setLookahead(8);

    eng.shard(0).schedule(7, [] {});
    eng.shard(1).schedule(31, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    eng.alignClocks();
    EXPECT_EQ(eng.shard(0).now(), 31u);
    EXPECT_EQ(eng.shard(1).now(), 31u);
    EXPECT_EQ(eng.now(), 31u);
}

TEST(ShardedEngineTest, BarrierStallTicksAccrueOnIdleShard)
{
    // The fixed-Q baseline keeps the PR 3 cost model: shard 1 has no
    // events but still executes (and stalls through) every window, and
    // nothing is ever parked or skipped.
    ShardedEngine eng(2);
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(4);

    for (Tick t : {1u, 6u, 11u})
        eng.shard(0).schedule(t, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_GT(eng.barrierStallTicks(1), 0u);
    EXPECT_EQ(eng.idleParks(), 0u);
    EXPECT_EQ(eng.barrierRoundsSkipped(), 0u);
    EXPECT_EQ(eng.totalBarrierStallTicks(),
              eng.barrierStallTicks(0) + eng.barrierStallTicks(1));
}

/**
 * Minimal cross-shard port for protocol tests: carries bare arrival
 * ticks from the source to the destination shard through the same
 * outbox -> sealed -> import lifecycle the wire channels use, with a
 * fixed latency contribution and no credit direction.
 */
class TickPort : public CrossShardPort
{
  public:
    TickPort(Engine &dst_engine, unsigned src_shard, unsigned dst_shard,
             Tick latency)
        : dstEngine_(dst_engine), srcShard_(src_shard),
          dstShard_(dst_shard), latency_(latency)
    {
    }

    /** Called from a source-shard event; arrival must respect latency. */
    void send(Tick arrival) { outbox_.push_back(arrival); }

    const std::vector<Tick> &delivered() const { return delivered_; }

    unsigned srcShard() const override { return srcShard_; }
    unsigned dstShard() const override { return dstShard_; }
    Tick minLatency() const override { return latency_; }

    void
    sealExports() override
    {
        sealed_.insert(sealed_.end(), outbox_.begin(), outbox_.end());
        outbox_.clear();
    }

    Tick
    earliestSealedArrivalAtDst() const override
    {
        Tick earliest = kTickNever;
        for (Tick t : sealed_)
            earliest = std::min(earliest, t);
        return earliest;
    }

    Tick earliestSealedArrivalAtSrc() const override { return kTickNever; }

    void
    importAtDst() override
    {
        for (Tick t : sealed_)
            dstEngine_.scheduleWireAbs(
                t, [this] { delivered_.push_back(dstEngine_.now()); });
        sealed_.clear();
    }

    void importAtSrc() override {}

    std::size_t
    pendingExports() const override
    {
        return outbox_.size() + sealed_.size();
    }

  private:
    Engine &dstEngine_;
    unsigned srcShard_;
    unsigned dstShard_;
    Tick latency_;
    std::vector<Tick> outbox_;
    std::vector<Tick> sealed_;
    std::vector<Tick> delivered_;
};

TEST(ShardedEngineTest, AdaptiveParksIdleShardInsteadOfStalling)
{
    // Same schedule as BarrierStallTicksAccrueOnIdleShard, but under
    // the adaptive protocol: a cross-shard channel bounds the windows,
    // yet the workless shard sleeps through every round instead of
    // spinning at each window tail.
    ShardedEngine eng(2);
    TickPort port(eng.shard(1), 0, 1, 4);
    eng.registerPort(port);
    eng.setLookahead(4);

    for (Tick t : {1u, 6u, 11u})
        eng.shard(0).schedule(t, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(eng.barrierStallTicks(1), 0u);
    EXPECT_GT(eng.idleParks(), 0u);
    EXPECT_EQ(eng.barrierRoundsSkipped(), eng.quantaExecuted());
}

TEST(ShardedEngineTest, AdaptiveWindowNeverNarrowerThanFixedQuantum)
{
    // The adaptive bound min_s(N_s + L_s) - 1 can only widen the fixed
    // window [m, m + Q - 1]: N_s >= m for every shard and L_s >= Q by
    // definition of Q = min channel latency. Every bounded window must
    // therefore span at least Q ticks.
    constexpr Tick kLatency = 10;
    ShardedEngine eng(2);
    ASSERT_EQ(eng.lookaheadMode(), LookaheadMode::Adaptive);
    TickPort port(eng.shard(1), 0, 1, kLatency);
    eng.registerPort(port);
    eng.setLookahead(kLatency);

    for (Tick t : {0u, 40u})
        eng.shard(0).schedule(t, [] {});
    eng.shard(1).schedule(5, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    // [0,9] with both shards runnable, then [40,49] with shard 1
    // parked (its bound no longer constrains the window).
    EXPECT_EQ(eng.quantaExecuted(), 2u);
    EXPECT_EQ(eng.windowTicksDist().total(), 2u);
    EXPECT_GE(eng.windowTicksAvg().min(), static_cast<double>(kLatency));
    EXPECT_EQ(eng.barrierRoundsSkipped(), 1u);
    EXPECT_EQ(eng.idleParks(), 1u);
}

TEST(ShardedEngineTest, ParkedShardWakesForSealedArrival)
{
    // Shard 1 has no events of its own, so it parks immediately; a
    // cross-shard message addressed to it must bring it back into the
    // active set of the window containing the arrival.
    constexpr Tick kLatency = 7;
    ShardedEngine eng(2);
    TickPort port(eng.shard(1), 0, 1, kLatency);
    eng.registerPort(port);
    eng.setLookahead(kLatency);

    eng.shard(0).schedule(3, [&] {
        port.send(eng.shard(0).now() + kLatency);
    });

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(port.delivered(), (std::vector<Tick>{10}));
    EXPECT_EQ(port.pendingExports(), 0u);
    // Both rounds ran solo: first shard 0 sending, then shard 1
    // receiving — no rendezvous was ever needed.
    EXPECT_EQ(eng.quantaExecuted(), 2u);
    EXPECT_EQ(eng.barrierRoundsSkipped(), 2u);
    EXPECT_EQ(eng.idleParks(), 2u);
}

TEST(ShardedEngineTest, RepeatedRunsAcrossKernelBarriers)
{
    // Mimic the inter-kernel pattern: run to drain, align, schedule
    // more, run again — worker threads must park and resume cleanly.
    ShardedEngine eng(2);
    eng.setLookahead(16);

    // Per-shard counters: callbacks run concurrently on their shard's
    // thread, so they must not share mutable state.
    int fired0 = 0, fired1 = 0;
    for (int kernel = 0; kernel < 3; ++kernel) {
        eng.shard(0).schedule(4, [&fired0] { ++fired0; });
        eng.shard(1).schedule(9, [&fired1] { ++fired1; });
        EXPECT_EQ(eng.run(), RunStatus::Drained);
        eng.alignClocks();
    }
    EXPECT_EQ(fired0, 3);
    EXPECT_EQ(fired1, 3);
    EXPECT_EQ(eng.eventsExecuted(), 6u);
}

TEST(ShardedEngineTest, WirePhaseFiresBeforeDefaultAtSameTick)
{
    // The determinism argument requires wire-phase events (deliveries,
    // credit returns) to sort before a tick's default events regardless
    // of scheduling order.
    Engine eng;
    std::vector<int> order;
    eng.schedule(10, [&] { order.push_back(1); }); // default phase
    eng.scheduleWireAbs(10, [&] { order.push_back(0); });
    eng.schedule(10, [&] { order.push_back(2); }); // default phase
    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngineTest, ExecPolicyClampsThreadsToShards)
{
    ShardedEngine wide(4, ExecPolicy{16, false, 1});
    EXPECT_EQ(wide.workThreads(), 4u);
    ShardedEngine dflt(4);
    EXPECT_EQ(dflt.workThreads(), 4u); // 0 = one thread per shard
    ShardedEngine narrow(4, ExecPolicy{2, true, 1});
    EXPECT_EQ(narrow.workThreads(), 2u);
    EXPECT_TRUE(narrow.execPolicy().steal);
    ShardedEngine serial(1, ExecPolicy{8, true, 1});
    EXPECT_EQ(serial.workThreads(), 1u);
}

/**
 * Run the same 4-shard fixed-quantum schedule under one execution
 * policy and return (per-shard fired ticks, total stall ticks). The
 * schedule is uneven on purpose: shard 0 carries 4x the events of
 * shard 3, so multiplexed and stealing executors face real imbalance.
 */
std::array<std::vector<Tick>, 4>
runUnevenSchedule(const ExecPolicy &exec, std::uint64_t *stall_ticks)
{
    ShardedEngine eng(4, exec);
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(8);

    std::array<std::vector<Tick>, 4> fired;
    for (unsigned s = 0; s < 4; ++s) {
        const unsigned count = 4 * (4 - s); // 16, 12, 8, 4 events
        for (unsigned i = 0; i < count; ++i) {
            const Tick when = 1 + 3 * i + s;
            eng.shard(s).schedule(when, [&fired, s, &eng] {
                fired[s].push_back(eng.shard(s).now());
            });
        }
    }
    EXPECT_EQ(eng.run(), RunStatus::Drained);
    *stall_ticks = eng.totalBarrierStallTicks();

    // Counter invariants hold under every policy: attempts split into
    // wins and aborts, and coverage never exceeds the total stall.
    EXPECT_EQ(eng.eventsExecuted(), 40u);
    EXPECT_EQ(eng.stealAttempts(), eng.stealsWon() + eng.stealsAborted());
    EXPECT_LE(eng.coveredStallTicks(), eng.totalBarrierStallTicks());
    EXPECT_EQ(eng.residualStallTicks(),
              eng.totalBarrierStallTicks() - eng.coveredStallTicks());
    return fired;
}

TEST(ShardedEngineTest, ResultsInvariantAcrossThreadCountsAndStealing)
{
    // The tentpole guarantee: shards are deterministic work partitions
    // and threads are mere executors, so event order, per-shard
    // clocks, and the (sim-tick) stall census are identical for every
    // thread count and steal schedule.
    std::uint64_t stall_base = 0, stall_t1 = 0, stall_t2 = 0,
                  stall_steal2 = 0, stall_steal4 = 0;
    const auto base =
        runUnevenSchedule(ExecPolicy{0, false, 1}, &stall_base);
    const auto mux1 =
        runUnevenSchedule(ExecPolicy{1, false, 1}, &stall_t1);
    const auto mux2 =
        runUnevenSchedule(ExecPolicy{2, false, 1}, &stall_t2);
    const auto steal2 =
        runUnevenSchedule(ExecPolicy{2, true, 1}, &stall_steal2);
    const auto steal4 =
        runUnevenSchedule(ExecPolicy{4, true, 1}, &stall_steal4);

    EXPECT_EQ(base, mux1);
    EXPECT_EQ(base, mux2);
    EXPECT_EQ(base, steal2);
    EXPECT_EQ(base, steal4);
    // barrierStallTicks is a pure function of the round protocol.
    EXPECT_EQ(stall_base, stall_t1);
    EXPECT_EQ(stall_base, stall_t2);
    EXPECT_EQ(stall_base, stall_steal2);
    EXPECT_EQ(stall_base, stall_steal4);
}

TEST(ShardedEngineTest, SingleThreadMultiplexesAndCoversStalls)
{
    // One executor over four shards: every round the thread runs all
    // active units back to back, so every unit's window-tail stall
    // except the round's last is covered — the thread was busy, not
    // barrier-bound.
    ShardedEngine eng(4, ExecPolicy{1, false, 1});
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(8);
    ASSERT_EQ(eng.workThreads(), 1u);

    for (unsigned s = 0; s < 4; ++s)
        for (Tick t : {2u, 12u, 22u})
            eng.shard(s).schedule(t + s, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_GT(eng.totalBarrierStallTicks(), 0u);
    EXPECT_GT(eng.coveredStallTicks(), 0u);
    EXPECT_LT(eng.residualStallTicks(), eng.totalBarrierStallTicks());
    // One participating thread per round: every rendezvous is skipped.
    EXPECT_EQ(eng.barrierRoundsSkipped(), eng.quantaExecuted());
    // No second thread exists, so nothing can ever be stolen.
    EXPECT_EQ(eng.stealAttempts(), 0u);
}

TEST(ShardedEngineTest, StealMinBacklogGatesLedgerEligibility)
{
    // With the floor above every shard's backlog the ledger stays
    // empty: spare threads have nothing to claim and the home pass
    // covers all units, bit-identically.
    std::uint64_t stall_gated = 0, stall_open = 0;
    const auto gated = runUnevenSchedule(
        ExecPolicy{2, true, 1'000'000}, &stall_gated);
    const auto open =
        runUnevenSchedule(ExecPolicy{2, true, 1}, &stall_open);
    EXPECT_EQ(gated, open);
    EXPECT_EQ(stall_gated, stall_open);

    ShardedEngine eng(2, ExecPolicy{2, true, 1'000'000});
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(8);
    eng.shard(0).schedule(1, [] {});
    eng.shard(1).schedule(2, [] {});
    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_EQ(eng.stealAttempts(), 0u);
    EXPECT_EQ(eng.stealsWon(), 0u);
}

TEST(ShardedEngineTest, HostSpansRecordExecutorAndCoverage)
{
    // Single executor, host timeline on: every span names thread 0,
    // nothing is "stolen" (units run on their home thread), and in
    // each multi-unit round every span except the last is covered.
    ShardedEngine eng(2, ExecPolicy{1, false, 1});
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(8);
    eng.setHostTimelineEnabled(true);

    eng.shard(0).schedule(1, [] {});
    eng.shard(1).schedule(2, [] {});
    EXPECT_EQ(eng.run(), RunStatus::Drained);

    ASSERT_FALSE(eng.hostSpans(0).empty());
    ASSERT_FALSE(eng.hostSpans(1).empty());
    for (unsigned s = 0; s < 2; ++s) {
        for (const QuantumSpan &span : eng.hostSpans(s)) {
            EXPECT_EQ(span.executor, 0u);
            EXPECT_FALSE(span.stolen);
        }
    }
    // The home pass claims shard 0 then shard 1 in the shared round,
    // so shard 0's span is covered and shard 1's is not.
    EXPECT_TRUE(eng.hostSpans(0).front().covered);
    EXPECT_FALSE(eng.hostSpans(1).front().covered);
    // The coordinator logged one RoundRecord per decided round.
    EXPECT_EQ(eng.roundLog().size(), eng.quantaExecuted());
    EXPECT_EQ(eng.roundLog().front().units, 2u);
    EXPECT_EQ(eng.roundLog().front().threadsWoken, 1u);
}

TEST(ShardedEngineTest, LoadSpreadSamplesRoundImbalance)
{
    // Shard 0 enters each round with a deeper backlog than shard 1;
    // the coordinator's spread samples (a deterministic function of
    // published loads) must see that imbalance.
    ShardedEngine eng(2, ExecPolicy{2, true, 1});
    eng.setLookaheadMode(LookaheadMode::FixedQuantum);
    eng.setLookahead(8);

    for (unsigned i = 0; i < 12; ++i)
        eng.shard(0).schedule(1 + 2 * i, [] {});
    eng.shard(1).schedule(1, [] {});

    EXPECT_EQ(eng.run(), RunStatus::Drained);
    EXPECT_GT(eng.loadSpreadAvg().count(), 0u);
    EXPECT_GT(eng.loadSpreadAvg().max(), 0.0);
}

TEST(ShardedEngineTest, WindowNeverExecutesEventsPastTheQuantum)
{
    // An event scheduled inside a window for a tick beyond it must wait
    // for a later window; runWindow() must not run past its limit.
    Engine eng;
    std::vector<Tick> fired;
    eng.schedule(2, [&] {
        fired.push_back(eng.now());
        eng.schedule(100, [&] { fired.push_back(eng.now()); });
    });
    EXPECT_EQ(eng.runWindow(50), RunStatus::LimitHit);
    EXPECT_EQ(fired, (std::vector<Tick>{2}));
    // runWindow leaves now() at the last executed event, not the limit.
    EXPECT_EQ(eng.now(), 2u);
    EXPECT_EQ(eng.nextEventTick(), 102u);
}

} // namespace
} // namespace netcrafter::sim
