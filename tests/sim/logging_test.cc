/** @file Tests for the logging/error-reporting helpers. */

#include <gtest/gtest.h>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace netcrafter {
namespace {

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat("solo"), "solo");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(NC_PANIC("broken: ", 7), "panic: broken: 7");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(NC_FATAL("bad config ", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeath, AssertPassesAndFails)
{
    NC_ASSERT(1 + 1 == 2, "math works"); // no effect
    EXPECT_DEATH(NC_ASSERT(false, "ctx=", 5), "assertion failed");
}

TEST(Types, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(pageAddr(0x12345), 0x12000u);
}

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(0, 16), 0u);
    EXPECT_EQ(divCeil(1, 16), 1u);
    EXPECT_EQ(divCeil(16, 16), 1u);
    EXPECT_EQ(divCeil(17, 16), 2u);
    EXPECT_EQ(divCeil(68, 16), 5u);
}

TEST(Types, Constants)
{
    EXPECT_EQ(kCacheLineBytes, 64u);
    EXPECT_EQ(kPageBytes, 4096u);
    EXPECT_EQ(kWavefrontSize, 64u);
    EXPECT_GT(kTickNever, 0u);
}

} // namespace
} // namespace netcrafter
