/** @file Tests for config serialization round-tripping. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/config/config_io.hh"

namespace netcrafter::config {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryField)
{
    SystemConfig original = netcrafterConfig();
    original.numClusters = 3;
    original.gpusPerCluster = 4;
    original.interClusterGBps = 42.5;
    original.flitBytes = 8;
    original.netcrafter.poolingWindow = 96;
    original.netcrafter.trimGranularity = 8;
    original.netcrafter.sequencing = SequencingMode::PrioritizeData;
    original.l1FillMode = L1FillMode::SectorAlways;
    original.seed = 12345;

    SystemConfig parsed =
        parseConfigString(configToString(original));
    EXPECT_EQ(configToString(parsed), configToString(original));
    EXPECT_EQ(parsed.numClusters, 3u);
    EXPECT_EQ(parsed.gpusPerCluster, 4u);
    EXPECT_DOUBLE_EQ(parsed.interClusterGBps, 42.5);
    EXPECT_EQ(parsed.flitBytes, 8u);
    EXPECT_EQ(parsed.netcrafter.poolingWindow, 96u);
    EXPECT_EQ(parsed.netcrafter.sequencing,
              SequencingMode::PrioritizeData);
    EXPECT_EQ(parsed.l1FillMode, L1FillMode::SectorAlways);
    EXPECT_EQ(parsed.seed, 12345u);
}

TEST(ConfigIo, PartialOverridesBase)
{
    SystemConfig base = baselineConfig();
    SystemConfig parsed = parseConfigString(
        "network.inter_gbps = 64\nnetcrafter.stitching = true\n", base);
    EXPECT_DOUBLE_EQ(parsed.interClusterGBps, 64.0);
    EXPECT_TRUE(parsed.netcrafter.stitching);
    // Untouched fields keep base values.
    EXPECT_DOUBLE_EQ(parsed.intraClusterGBps, 128.0);
}

TEST(ConfigIo, CommentsAndBlanksIgnored)
{
    SystemConfig parsed = parseConfigString(
        "# a comment\n\n  seed = 7  # trailing comment\n");
    EXPECT_EQ(parsed.seed, 7u);
}

TEST(ConfigIo, UnknownKeyIsFatal)
{
    EXPECT_DEATH(parseConfigString("no.such.key = 1\n"), "unknown key");
}

TEST(ConfigIo, MalformedLineIsFatal)
{
    EXPECT_DEATH(parseConfigString("just words\n"), "expected key");
}

TEST(ConfigIo, BadEnumIsFatal)
{
    EXPECT_DEATH(parseConfigString("netcrafter.sequencing = maybe\n"),
                 "bad sequencing");
    EXPECT_DEATH(parseConfigString("l1.fill_mode = nope\n"),
                 "bad L1 fill mode");
}

TEST(ConfigIo, ModeNames)
{
    EXPECT_STREQ(sequencingModeName(SequencingMode::Off), "off");
    EXPECT_STREQ(sequencingModeName(SequencingMode::PrioritizePtw),
                 "ptw");
    EXPECT_STREQ(sequencingModeName(SequencingMode::PrioritizeData),
                 "data");
    EXPECT_STREQ(l1FillModeName(L1FillMode::FullLine), "full-line");
    EXPECT_STREQ(l1FillModeName(L1FillMode::TrimInterCluster),
                 "trim-inter-cluster");
    EXPECT_STREQ(l1FillModeName(L1FillMode::SectorAlways),
                 "sector-always");
}

TEST(ConfigIo, WriteProducesSortedStableOutput)
{
    const std::string a = configToString(baselineConfig());
    const std::string b = configToString(baselineConfig());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("network.inter_gbps = 16"), std::string::npos);
    EXPECT_NE(a.find("compute.cus_per_gpu = 64"), std::string::npos);
}

} // namespace
} // namespace netcrafter::config
