/** @file Tests for system configuration presets and validation. */

#include <gtest/gtest.h>

#include "src/config/config_io.hh"
#include "src/config/system_config.hh"

namespace netcrafter::config {
namespace {

TEST(SystemConfig, Table2Defaults)
{
    SystemConfig cfg = baselineConfig();
    EXPECT_EQ(cfg.numGpus(), 4u);
    EXPECT_EQ(cfg.cusPerGpu, 64u);
    EXPECT_DOUBLE_EQ(cfg.intraClusterGBps, 128.0);
    EXPECT_DOUBLE_EQ(cfg.interClusterGBps, 16.0);
    EXPECT_EQ(cfg.flitBytes, 16u);
    EXPECT_EQ(cfg.switchLatency, 30u);
    EXPECT_EQ(cfg.switchBufferEntries, 1024u);
    EXPECT_EQ(cfg.l1Bytes, 64u * 1024);
    EXPECT_EQ(cfg.l1Latency, 20u);
    EXPECT_EQ(cfg.l1MshrEntries, 32u);
    EXPECT_EQ(cfg.l2BytesPerGpu, 4ull * 1024 * 1024);
    EXPECT_EQ(cfg.l2Banks, 16u);
    EXPECT_EQ(cfg.l2Latency, 100u);
    EXPECT_EQ(cfg.l1TlbEntries, 32u);
    EXPECT_EQ(cfg.l2TlbEntries, 512u);
    EXPECT_EQ(cfg.pageWalkers, 16u);
    EXPECT_EQ(cfg.pwcEntries, 32u);
    EXPECT_EQ(cfg.netcrafter.clusterQueueEntries, 1024u);
    EXPECT_FALSE(cfg.netcrafter.anyEnabled());
    cfg.validate(); // must not die
}

TEST(SystemConfig, ClusterMapping)
{
    SystemConfig cfg = baselineConfig();
    EXPECT_EQ(cfg.clusterOf(0), 0u);
    EXPECT_EQ(cfg.clusterOf(1), 0u);
    EXPECT_EQ(cfg.clusterOf(2), 1u);
    EXPECT_EQ(cfg.clusterOf(3), 1u);
}

TEST(SystemConfig, BandwidthToFlitsPerCycle)
{
    SystemConfig cfg = baselineConfig();
    // 16 GB/s at 1 GHz with 16B flits = 1 flit/cycle.
    EXPECT_EQ(cfg.interFlitsPerCycle(), 1u);
    EXPECT_EQ(cfg.intraFlitsPerCycle(), 8u);
    cfg.flitBytes = 8;
    EXPECT_EQ(cfg.interFlitsPerCycle(), 2u);
    EXPECT_EQ(cfg.intraFlitsPerCycle(), 16u);
    // Sub-flit bandwidth clamps to 1.
    cfg.flitBytes = 16;
    cfg.interClusterGBps = 4;
    EXPECT_EQ(cfg.interFlitsPerCycle(), 1u);
}

TEST(SystemConfig, IdealPreset)
{
    SystemConfig cfg = idealConfig();
    EXPECT_DOUBLE_EQ(cfg.interClusterGBps, cfg.intraClusterGBps);
    EXPECT_FALSE(cfg.netcrafter.anyEnabled());
}

TEST(SystemConfig, NetcrafterPresetEnablesEverything)
{
    SystemConfig cfg = netcrafterConfig();
    EXPECT_TRUE(cfg.netcrafter.stitching);
    EXPECT_TRUE(cfg.netcrafter.flitPooling);
    EXPECT_TRUE(cfg.netcrafter.selectivePooling);
    EXPECT_EQ(cfg.netcrafter.poolingWindow, 32u);
    EXPECT_TRUE(cfg.netcrafter.trimming);
    EXPECT_EQ(cfg.netcrafter.sequencing, SequencingMode::PrioritizePtw);
    EXPECT_EQ(cfg.l1FillMode, L1FillMode::TrimInterCluster);
    EXPECT_TRUE(cfg.netcrafter.anyEnabled());
    cfg.validate();
}

TEST(SystemConfig, StitchingPreset)
{
    SystemConfig cfg = stitchingConfig(true, true, 64);
    EXPECT_TRUE(cfg.netcrafter.stitching);
    EXPECT_TRUE(cfg.netcrafter.flitPooling);
    EXPECT_TRUE(cfg.netcrafter.selectivePooling);
    EXPECT_EQ(cfg.netcrafter.poolingWindow, 64u);
    EXPECT_FALSE(cfg.netcrafter.trimming);
    cfg.validate();

    SystemConfig no_pool = stitchingConfig(false);
    EXPECT_FALSE(no_pool.netcrafter.flitPooling);
    no_pool.validate();
}

TEST(SystemConfig, SectorCachePreset)
{
    SystemConfig cfg = sectorCacheConfig(16);
    EXPECT_EQ(cfg.l1FillMode, L1FillMode::SectorAlways);
    EXPECT_FALSE(cfg.netcrafter.anyEnabled());
    cfg.validate();
}

TEST(SystemConfigDeath, InvalidFlitSize)
{
    SystemConfig cfg = baselineConfig();
    cfg.flitBytes = 12;
    EXPECT_DEATH(cfg.validate(), "flit size");
}

TEST(SystemConfigDeath, PoolingWithoutStitching)
{
    SystemConfig cfg = baselineConfig();
    cfg.netcrafter.flitPooling = true;
    EXPECT_DEATH(cfg.validate(), "pooling");
}

TEST(SystemConfigDeath, TrimFillModeWithoutTrimming)
{
    SystemConfig cfg = baselineConfig();
    cfg.l1FillMode = L1FillMode::TrimInterCluster;
    EXPECT_DEATH(cfg.validate(), "TrimInterCluster");
}

TEST(SystemConfigDeath, BadTrimGranularity)
{
    SystemConfig cfg = baselineConfig();
    cfg.netcrafter.trimGranularity = 24;
    EXPECT_DEATH(cfg.validate(), "granularity");
}

TEST(ConfigDigest, EqualConfigsShareADigest)
{
    EXPECT_EQ(baselineConfig().digest(), baselineConfig().digest());
    EXPECT_EQ(netcrafterConfig().digest(), netcrafterConfig().digest());

    SystemConfig copy = baselineConfig();
    EXPECT_EQ(copy.digest(), baselineConfig().digest());
}

TEST(ConfigDigest, AnyFieldChangeChangesTheDigest)
{
    const std::uint64_t base = baselineConfig().digest();

    SystemConfig cfg = baselineConfig();
    cfg.interClusterGBps = 32.0;
    EXPECT_NE(cfg.digest(), base);

    cfg = baselineConfig();
    cfg.netcrafter.stitching = true;
    EXPECT_NE(cfg.digest(), base);

    cfg = baselineConfig();
    cfg.seed = 2;
    EXPECT_NE(cfg.digest(), base);

    cfg = baselineConfig();
    cfg.l1FillMode = L1FillMode::SectorAlways;
    EXPECT_NE(cfg.digest(), base);
}

TEST(ConfigDigest, DistinctPresetsAreDistinct)
{
    EXPECT_NE(baselineConfig().digest(), idealConfig().digest());
    EXPECT_NE(baselineConfig().digest(), netcrafterConfig().digest());
    EXPECT_NE(idealConfig().digest(), netcrafterConfig().digest());
}

TEST(ConfigDigest, HexFormIsFixedWidth)
{
    const std::string hex = digestHex(baselineConfig());
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    // Small values zero-pad rather than shrink.
    EXPECT_EQ(digestHex(std::uint64_t{0x5}), "0000000000000005");
    EXPECT_EQ(digestHex(std::uint64_t{0}), "0000000000000000");
}

TEST(ConfigDigest, SurvivesSerializationRoundTrip)
{
    // digest() hashes the serialized form, so a parse round-trip must
    // preserve it.
    const SystemConfig cfg = netcrafterConfig();
    const SystemConfig reparsed =
        parseConfigString(configToString(cfg));
    EXPECT_EQ(cfg.digest(), reparsed.digest());
}

} // namespace
} // namespace netcrafter::config
