/** @file End-to-end tests for the open-loop serving session. */

#include <gtest/gtest.h>

#include "src/config/system_config.hh"
#include "src/harness/runner.hh"
#include "src/serve/serve_config.hh"
#include "src/serve/session.hh"

namespace netcrafter::serve {
namespace {

/** A scenario small enough to drain in well under a second. */
ServeConfig
tinyScenario()
{
    ServeConfig sc;
    sc.enabled = true;
    sc.arrival = ArrivalKind::Poisson;
    sc.offeredLoad = 3.0;
    sc.seed = 42;
    sc.warmupTicks = 1'000;
    sc.measureTicks = 4'000;
    return sc;
}

constexpr double kTinyScale = 0.05;

TEST(ServeSession, RunsDrainAndAccountRequests)
{
    const ServeConfig sc = tinyScenario();
    gpu::MultiGpuSystem sys(config::baselineConfig());
    ServeSession session(sys, sc, kTinyScale);
    const ServeReport report = session.run();

    EXPECT_EQ(report.status, sim::RunStatus::Drained);
    EXPECT_GT(report.injected, 0u);
    // Open loop drains naturally: everything injected completes.
    EXPECT_EQ(report.completed, report.injected);
    EXPECT_GT(report.measured, 0u);
    EXPECT_LE(report.measured, report.injected);
    EXPECT_GE(report.peakInflight, 1u);
    EXPECT_GT(report.throughput, 0.0);
    // The run spans the arrival horizon plus drain.
    EXPECT_GE(report.cycles, sc.warmupTicks + sc.measureTicks);

    // The aggregate covers exactly the per-class measured counts.
    std::uint64_t perClass = 0;
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
        perClass += report.perClass[c].measured;
    EXPECT_EQ(perClass, report.aggregate.measured);
    EXPECT_EQ(report.aggregate.measured, report.measured);
}

TEST(ServeSession, PercentilesAreOrdered)
{
    const ServeConfig sc = tinyScenario();
    gpu::MultiGpuSystem sys(config::baselineConfig());
    const ServeReport report = ServeSession(sys, sc, kTinyScale).run();

    auto checkOrder = [](const ClassLatency &lat) {
        if (lat.measured == 0)
            return;
        EXPECT_GT(lat.p50, 0u);
        EXPECT_LE(lat.p50, lat.p95);
        EXPECT_LE(lat.p95, lat.p99);
        EXPECT_LE(lat.p99, lat.p999);
        EXPECT_GT(lat.meanLatency, 0.0);
    };
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
        checkOrder(report.perClass[c]);
    checkOrder(report.aggregate);
    EXPECT_GT(report.aggregate.measured, 0u);
}

TEST(ServeSession, SameSeedReproduces)
{
    const ServeConfig sc = tinyScenario();
    const harness::RunResult a =
        harness::runServe(sc, config::baselineConfig(), kTinyScale, 1);
    const harness::RunResult b =
        harness::runServe(sc, config::baselineConfig(), kTinyScale, 1);
    EXPECT_TRUE(harness::sameMeasurement(a, b));
}

TEST(ServeSession, DifferentSeedChangesTheSchedule)
{
    ServeConfig sc = tinyScenario();
    const harness::RunResult a =
        harness::runServe(sc, config::baselineConfig(), kTinyScale, 1);
    sc.seed += 1;
    const harness::RunResult b =
        harness::runServe(sc, config::baselineConfig(), kTinyScale, 1);
    EXPECT_FALSE(harness::sameMeasurement(a, b));
}

TEST(ServeSession, BitIdenticalAcrossShardCounts)
{
    // The headline determinism guarantee: every measured field —
    // injected/measured counts, throughput, and all per-class
    // percentiles — is bit-identical for 1, 2, and 4 shards. A shard
    // partitions whole clusters, so the 4-shard point needs a
    // 4-cluster topology (shards > clusters is a loud error now).
    const ServeConfig sc = tinyScenario();
    config::SystemConfig cfg = config::baselineConfig();
    cfg.numClusters = 4;
    const harness::RunResult serial =
        harness::runServe(sc, cfg, kTinyScale, 1);
    const harness::RunResult two =
        harness::runServe(sc, cfg, kTinyScale, 2);
    const harness::RunResult four =
        harness::runServe(sc, cfg, kTinyScale, 4);

    EXPECT_TRUE(harness::sameMeasurement(serial, two));
    EXPECT_TRUE(harness::sameMeasurement(serial, four));

    // Spot-check the serve-specific fields explicitly so a future
    // sameMeasurement regression can't silently exclude them.
    EXPECT_EQ(serial.serveInjected, two.serveInjected);
    EXPECT_EQ(serial.serveMeasured, four.serveMeasured);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(serial.serveClasses[c].p99, two.serveClasses[c].p99)
            << "class " << c;
        EXPECT_EQ(serial.serveClasses[c].p999, four.serveClasses[c].p999)
            << "class " << c;
    }
}

TEST(ServeSession, RunServeFillsHarnessFields)
{
    const ServeConfig sc = tinyScenario();
    const harness::RunResult r =
        harness::runServe(sc, config::baselineConfig(), kTinyScale, 1);

    EXPECT_EQ(r.workload, "serve-poisson");
    EXPECT_DOUBLE_EQ(r.offeredLoad, sc.offeredLoad);
    EXPECT_GT(r.serveInjected, 0u);
    EXPECT_EQ(r.serveCompleted, r.serveInjected);
    EXPECT_GT(r.serveThroughput, 0.0);
    // Slot 3 is the aggregate across classes.
    EXPECT_EQ(r.serveClasses[3].measured, r.serveMeasured);
    // Ordinary measurements ride along with the serving fields.
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
}

TEST(ServeSession, MeasurementWindowBoundsMeasuredCount)
{
    // Halving the measurement window must not increase the measured
    // request count; the warmup phase is always excluded.
    ServeConfig wide = tinyScenario();
    ServeConfig narrow = wide;
    narrow.measureTicks = wide.measureTicks / 2;

    const harness::RunResult a =
        harness::runServe(wide, config::baselineConfig(), kTinyScale, 1);
    const harness::RunResult b = harness::runServe(
        narrow, config::baselineConfig(), kTinyScale, 1);
    EXPECT_GT(a.serveMeasured, 0u);
    EXPECT_GE(a.serveMeasured, b.serveMeasured);
    EXPECT_LT(a.serveMeasured, a.serveInjected);
}

} // namespace
} // namespace netcrafter::serve
