/** @file Tests for serving arrival processes and traffic classes. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/serve/arrival.hh"
#include "src/serve/serve_config.hh"
#include "src/serve/traffic_class.hh"

namespace netcrafter::serve {
namespace {

std::vector<Tick>
gaps(ArrivalKind kind, std::uint64_t seed, std::uint64_t stream,
     double meanGap, std::size_t n)
{
    ArrivalSequence seq(kind, seed, stream, meanGap, BurstParams{});
    std::vector<Tick> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(seq.next());
    return out;
}

TEST(ArrivalSequence, ReplayIsDeterministic)
{
    // A rebuilt sequence with the same (seed, stream) replays exactly:
    // the counter-based generator has no hidden state.
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                             ArrivalKind::Bursty}) {
        const auto a = gaps(kind, 7, 3, 25.0, 500);
        const auto b = gaps(kind, 7, 3, 25.0, 500);
        EXPECT_EQ(a, b) << arrivalKindName(kind);
    }
}

TEST(ArrivalSequence, StreamsAreIndependent)
{
    const auto a = gaps(ArrivalKind::Poisson, 7, 0, 25.0, 200);
    const auto b = gaps(ArrivalKind::Poisson, 7, 1, 25.0, 200);
    const auto c = gaps(ArrivalKind::Poisson, 8, 0, 25.0, 200);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
}

TEST(ArrivalSequence, GapsArePositive)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                             ArrivalKind::Bursty}) {
        // Even at the tightest legal mean every gap is clamped to
        // >= 1 so time always advances.
        for (Tick g : gaps(kind, 1, 0, 1.0, 300))
            ASSERT_GE(g, 1u) << arrivalKindName(kind);
    }
}

TEST(ArrivalSequence, MeanRateMatchesRequest)
{
    // Over many draws the empirical mean gap should sit near the
    // requested one for every arrival process (bursty redistributes
    // gaps between bursts but preserves the long-run rate).
    const double meanGap = 40.0;
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                             ArrivalKind::Bursty}) {
        const auto g = gaps(kind, 13, 2, meanGap, 20'000);
        double sum = 0;
        for (Tick t : g)
            sum += static_cast<double>(t);
        const double empirical = sum / static_cast<double>(g.size());
        EXPECT_NEAR(empirical, meanGap, meanGap * 0.1)
            << arrivalKindName(kind);
    }
}

TEST(ArrivalSequence, BurstyClustersArrivals)
{
    // Bursty traffic at the same mean rate should have far more
    // minimum-gap (back-to-back) arrivals than Poisson.
    const auto poisson = gaps(ArrivalKind::Poisson, 5, 0, 50.0, 10'000);
    const auto bursty = gaps(ArrivalKind::Bursty, 5, 0, 50.0, 10'000);
    auto shortGaps = [](const std::vector<Tick> &g) {
        std::size_t n = 0;
        for (Tick t : g)
            n += t <= 5;
        return n;
    };
    EXPECT_GT(shortGaps(bursty), 2 * shortGaps(poisson));
}

TEST(ArrivalKindParsing, RoundTrips)
{
    EXPECT_EQ(parseArrivalKind("poisson"), ArrivalKind::Poisson);
    EXPECT_EQ(parseArrivalKind("uniform"), ArrivalKind::Uniform);
    EXPECT_EQ(parseArrivalKind("bursty"), ArrivalKind::Bursty);
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                             ArrivalKind::Bursty})
        EXPECT_EQ(parseArrivalKind(arrivalKindName(kind)), kind);
}

TEST(ArrivalKindParsingDeathTest, RejectsUnknownNames)
{
    EXPECT_EXIT(parseArrivalKind("gaussian"),
                testing::ExitedWithCode(1), "unknown arrival process");
    EXPECT_EXIT(parseArrivalKind(""), testing::ExitedWithCode(1),
                "unknown arrival process");
}

TEST(ClassMix, SharesNormalise)
{
    ClassMix mix; // default 0.6 : 0.25 : 0.15
    double total = 0;
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
        total += mix.share(static_cast<TrafficClass>(c));
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_GT(mix.share(TrafficClass::ReadHeavy),
              mix.share(TrafficClass::PtwHeavy));
}

TEST(ClassMix, ParseRoundTrips)
{
    const ClassMix mix = parseClassMix("0.5:0.3:0.2");
    EXPECT_DOUBLE_EQ(mix.weight[0], 0.5);
    EXPECT_DOUBLE_EQ(mix.weight[1], 0.3);
    EXPECT_DOUBLE_EQ(mix.weight[2], 0.2);
    const ClassMix again = parseClassMix(mix.toString());
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
        EXPECT_DOUBLE_EQ(again.weight[c], mix.weight[c]);
}

TEST(ClassMixDeathTest, RejectsMalformedMixes)
{
    EXPECT_EXIT(parseClassMix("1:2"), testing::ExitedWithCode(1),
                "class mix");
    EXPECT_EXIT(parseClassMix("a:b:c"), testing::ExitedWithCode(1),
                "class-mix weight");
    EXPECT_EXIT(parseClassMix("0:0:0"), testing::ExitedWithCode(1),
                "class");
    EXPECT_EXIT(parseClassMix("-1:1:1"), testing::ExitedWithCode(1),
                "class");
}

TEST(ServeConfig, MeanGapScalesWithLoadShareAndGpus)
{
    ServeConfig cfg;
    cfg.offeredLoad = 4.0; // requests per kilocycle, system-wide

    // Doubling the GPU count halves each GPU's share of the load, so
    // the per-stream gap doubles.
    const double g1 = cfg.meanGapTicks(TrafficClass::ReadHeavy, 1);
    const double g2 = cfg.meanGapTicks(TrafficClass::ReadHeavy, 2);
    EXPECT_NEAR(g2, 2.0 * g1, 1e-9);

    // A rarer class gets a proportionally longer gap.
    EXPECT_GT(cfg.meanGapTicks(TrafficClass::PtwHeavy, 1), g1);

    // Gap never collapses below one tick.
    cfg.offeredLoad = 1e9;
    EXPECT_GE(cfg.meanGapTicks(TrafficClass::ReadHeavy, 1), 1.0);
}

TEST(ServeConfig, DigestSeparatesScenarios)
{
    ServeConfig a;
    a.enabled = true;
    ServeConfig b = a;
    EXPECT_EQ(a.digest(), b.digest());
    b.offeredLoad *= 2;
    EXPECT_NE(a.digest(), b.digest());

    ServeConfig off; // disabled scenarios share digest 0
    EXPECT_EQ(off.digest(), 0u);
}

} // namespace
} // namespace netcrafter::serve
