/**
 * @file
 * Teardown census: aborted runs must be detected before a sharded
 * system is destroyed, because pending events hold pooled handles whose
 * thread-local arenas die with the worker threads. A completed run
 * passes the census; an aborted sharded run panics.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/gpu/system.hh"
#include "src/workloads/workload.hh"

namespace netcrafter {
namespace {

config::SystemConfig
tinyConfig()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    return cfg;
}

TEST(TeardownCensus, CompletedRunPassesTheCensus)
{
    gpu::MultiGpuSystem system(tinyConfig(), 2);
    auto wl = workloads::makeWorkload("GUPS");
    const sim::RunStatus status = system.runFor(*wl, 0.34);
    EXPECT_EQ(status, sim::RunStatus::Drained);
    system.auditTeardown(); // must not panic
}

TEST(TeardownCensus, SerialAbortedRunReportsLimitHit)
{
    // Serial systems keep every pooled arena on the caller's thread, so
    // an aborted run is safe to destroy; runFor() reports the abort
    // instead of terminating the process the way run() does.
    gpu::MultiGpuSystem system(tinyConfig(), 1);
    auto wl = workloads::makeWorkload("GUPS");
    const sim::RunStatus status =
        system.runFor(*wl, 0.34, /*max_cycles=*/500);
    EXPECT_EQ(status, sim::RunStatus::LimitHit);
    system.auditTeardown(); // no-op with one shard
}

TEST(TeardownCensusDeathTest, AbortedShardedRunPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Construct, abort, and audit entirely inside the death-test child:
    // the parent never holds an aborted sharded system, whose
    // destruction is exactly the undefined behaviour the census guards
    // against.
    EXPECT_DEATH(
        {
            gpu::MultiGpuSystem system(tinyConfig(), 2);
            auto wl = workloads::makeWorkload("GUPS");
            const sim::RunStatus status =
                system.runFor(*wl, 0.34, /*max_cycles=*/500);
            if (status == sim::RunStatus::Drained) {
                // Mis-calibrated cap: exit cleanly so the death
                // expectation fails loudly rather than hanging.
                std::_Exit(0);
            }
            system.auditTeardown();
            std::_Exit(0);
        },
        "teardown census");
}

} // namespace
} // namespace netcrafter
