/**
 * @file
 * Randomized network fuzzing: thousands of random packets injected at
 * random endpoints under every mechanism combination must all be
 * delivered exactly once with their full byte counts, with no residual
 * state. Catches flow-control, stitching and reassembly corner cases
 * no directed test enumerates.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/noc/network.hh"
#include "src/sim/engine.hh"
#include "src/sim/random.hh"

namespace netcrafter {
namespace {

struct FuzzCase
{
    const char *name;
    bool stitching;
    bool pooling;
    bool selective;
    bool trimming;
    config::SequencingMode sequencing;
    std::uint32_t flitBytes;
};

class NetworkFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(NetworkFuzz, AllPacketsDeliveredIntact)
{
    const FuzzCase &fc = GetParam();
    config::SystemConfig cfg = config::baselineConfig();
    cfg.flitBytes = fc.flitBytes;
    cfg.netcrafter.stitching = fc.stitching;
    cfg.netcrafter.flitPooling = fc.pooling;
    cfg.netcrafter.selectivePooling = fc.selective;
    cfg.netcrafter.trimming = fc.trimming;
    cfg.netcrafter.sequencing = fc.sequencing;
    if (fc.trimming)
        cfg.l1FillMode = config::L1FillMode::TrimInterCluster;

    sim::Engine engine;
    noc::Network net(engine, cfg);

    std::map<std::uint64_t, noc::PacketPtr> sent;
    std::map<std::uint64_t, int> delivered;
    for (GpuId g = 0; g < 4; ++g) {
        auto record = [&](noc::PacketPtr pkt) {
            ++delivered[pkt->id];
        };
        net.rdma(g).setRequestHandler(record);
        net.rdma(g).setResponseHandler(record);
    }

    Pcg32 rng(fc.flitBytes * 1000 + fc.stitching * 2 + fc.trimming);
    const noc::PacketType types[] = {
        noc::PacketType::ReadReq,      noc::PacketType::WriteReq,
        noc::PacketType::PageTableReq, noc::PacketType::ReadRsp,
        noc::PacketType::WriteRsp,     noc::PacketType::PageTableRsp,
    };

    const int kPackets = 2000;
    for (int i = 0; i < kPackets; ++i) {
        const GpuId src = rng.below(4);
        GpuId dst = rng.below(4);
        if (dst == src)
            dst = (dst + 1) % 4;
        auto pkt = noc::makePacket(types[rng.below(6)], src, dst,
                                   0x1'0000'0000ull + rng.below(1 << 20) * 64);
        pkt->latencyCritical = pkt->isPtw();
        if (pkt->type == noc::PacketType::ReadRsp && rng.chance(0.5)) {
            pkt->trimEligible = true;
            pkt->bytesNeeded = static_cast<std::uint8_t>(
                4 + 4 * rng.below(4));
            pkt->neededOffset =
                static_cast<std::uint8_t>(16 * rng.below(4));
        }
        sent[pkt->id] = pkt;
        net.sendPacket(pkt);
        // Occasionally let the network drain partially.
        if (rng.chance(0.05))
            engine.run(engine.now() + rng.below(500));
    }
    ASSERT_EQ(engine.run(50'000'000ull), sim::RunStatus::Drained)
        << "network failed to drain (deadlock?)";

    EXPECT_EQ(delivered.size(), sent.size());
    for (const auto &[id, count] : delivered)
        EXPECT_EQ(count, 1) << "packet " << id << " delivered " << count
                            << " times";
    for (const auto &[id, pkt] : sent)
        EXPECT_TRUE(delivered.count(id)) << pkt->toString();
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, NetworkFuzz,
    ::testing::Values(
        FuzzCase{"plain16", false, false, false, false,
                 config::SequencingMode::Off, 16},
        FuzzCase{"stitch", true, false, false, false,
                 config::SequencingMode::Off, 16},
        FuzzCase{"stitch_pool", true, true, false, false,
                 config::SequencingMode::Off, 16},
        FuzzCase{"stitch_selpool", true, true, true, false,
                 config::SequencingMode::Off, 16},
        FuzzCase{"trim", false, false, false, true,
                 config::SequencingMode::Off, 16},
        FuzzCase{"seq", false, false, false, false,
                 config::SequencingMode::PrioritizePtw, 16},
        FuzzCase{"full", true, true, true, true,
                 config::SequencingMode::PrioritizePtw, 16},
        FuzzCase{"full8B", true, true, true, true,
                 config::SequencingMode::PrioritizePtw, 8}),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace netcrafter
