/**
 * @file
 * Observability determinism: the trace artifacts (Chrome-trace JSON,
 * time-series CSV, lifecycle stats) for one (workload, config, scale)
 * point must be byte-identical whether the simulation ran on 1, 2, or 4
 * shards — and turning tracing on must not change the measurement.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/harness/runner.hh"
#include "src/obs/json_validate.hh"

namespace netcrafter {
namespace {

constexpr double kTinyScale = 0.34;

config::SystemConfig
tinyMeshConfig()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    return cfg;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.is_open()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** The harness's trace-file naming scheme for one run. */
std::string
fileBase(const std::string &workload, const config::SystemConfig &cfg,
         double scale, unsigned shards)
{
    std::ostringstream base;
    base << workload << '-' << config::digestHex(cfg) << "-s" << scale
         << "-n" << shards;
    return base.str();
}

void
expectValidChromeTrace(const std::filesystem::path &path)
{
    std::string error;
    obs::JsonValue root;
    ASSERT_TRUE(obs::parseJson(slurp(path), root, &error))
        << path << ": " << error;
    obs::ChromeTraceSummary summary;
    ASSERT_TRUE(obs::validateChromeTrace(root, &error, &summary))
        << path << ": " << error;
    EXPECT_GT(summary.events, 0u) << path;
}

TEST(ObsDeterminism, TraceArtifactsAreShardInvariant)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "obs-determinism";
    std::filesystem::remove_all(dir);

    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Packets;
    trace.outDir = dir.string();
    trace.sampleInterval = 1000;

    const config::SystemConfig cfg = tinyMeshConfig();
    const std::string app = "GUPS";

    const harness::RunResult serial =
        harness::runWorkload(app, cfg, kTinyScale, 1, trace);
    const harness::RunResult two =
        harness::runWorkload(app, cfg, kTinyScale, 2, trace);
    const harness::RunResult four =
        harness::runWorkload(app, cfg, kTinyScale, 4, trace);

    // The measurement itself stays shard-invariant with tracing on.
    EXPECT_TRUE(sameMeasurement(serial, two));
    EXPECT_TRUE(sameMeasurement(serial, four));

    // Same records collected, none dropped (drops would break identity).
    EXPECT_GT(serial.traceRecords, 0u);
    EXPECT_EQ(serial.traceRecords, two.traceRecords);
    EXPECT_EQ(serial.traceRecords, four.traceRecords);
    EXPECT_EQ(serial.traceDropped, 0u);
    EXPECT_EQ(two.traceDropped, 0u);
    EXPECT_EQ(four.traceDropped, 0u);
    EXPECT_GT(serial.sampleRows, 0u);
    EXPECT_EQ(serial.sampleRows, two.sampleRows);

    // The sim-time artifacts are byte-identical across shard counts.
    const std::string base1 = fileBase(app, cfg, kTinyScale, 1);
    const std::string base2 = fileBase(app, cfg, kTinyScale, 2);
    const std::string base4 = fileBase(app, cfg, kTinyScale, 4);
    const std::string trace1 = slurp(dir / (base1 + ".trace.json"));
    EXPECT_FALSE(trace1.empty());
    EXPECT_EQ(trace1, slurp(dir / (base2 + ".trace.json")));
    EXPECT_EQ(trace1, slurp(dir / (base4 + ".trace.json")));

    const std::string series1 = slurp(dir / (base1 + ".timeseries.csv"));
    EXPECT_FALSE(series1.empty());
    EXPECT_EQ(series1, slurp(dir / (base2 + ".timeseries.csv")));
    EXPECT_EQ(series1, slurp(dir / (base4 + ".timeseries.csv")));

    const std::string stats1 = slurp(dir / (base1 + ".stats.json"));
    EXPECT_FALSE(stats1.empty());
    EXPECT_EQ(stats1, slurp(dir / (base2 + ".stats.json")));
    EXPECT_EQ(stats1, slurp(dir / (base4 + ".stats.json")));

    // Every emitted Chrome trace must satisfy the structural validator,
    // including the host-time lanes (never compared byte-for-byte: they
    // carry wall-clock timings).
    for (const std::string &base : {base1, base2, base4}) {
        expectValidChromeTrace(dir / (base + ".trace.json"));
        expectValidChromeTrace(dir / (base + ".host.trace.json"));
    }
}

TEST(ObsDeterminism, MergedTraceOrderSurvivesWorkStealing)
{
    // The merged sim-time trace is ordered by (tick, lane, sequence):
    // if work stealing could reorder event execution, the byte-for-byte
    // comparison here would catch it. Run the same 4-shard point with
    // stealing off, slurp the artifact, then rerun with stealing on
    // (multiplexed on fewer threads, so steals actually migrate units)
    // and demand the identical file.
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "obs-steal";
    std::filesystem::remove_all(dir);

    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Packets;
    trace.outDir = dir.string();
    trace.sampleInterval = 1000;

    const config::SystemConfig cfg = tinyMeshConfig();
    const std::string app = "GUPS";
    const std::string base = fileBase(app, cfg, kTinyScale, 4);

    const harness::RunResult plain = harness::runWorkload(
        app, cfg, kTinyScale, 4, trace, sim::ExecPolicy{0, false, 1});
    const std::string trace_plain = slurp(dir / (base + ".trace.json"));
    const std::string series_plain =
        slurp(dir / (base + ".timeseries.csv"));
    ASSERT_FALSE(trace_plain.empty());

    // Same file name — the rerun overwrites, which is exactly what
    // lets us compare the two schedules byte for byte.
    const harness::RunResult stolen = harness::runWorkload(
        app, cfg, kTinyScale, 4, trace, sim::ExecPolicy{2, true, 1});
    EXPECT_TRUE(sameMeasurement(plain, stolen));
    EXPECT_EQ(plain.traceRecords, stolen.traceRecords);
    EXPECT_EQ(stolen.traceDropped, 0u);
    EXPECT_EQ(trace_plain, slurp(dir / (base + ".trace.json")));
    EXPECT_EQ(series_plain, slurp(dir / (base + ".timeseries.csv")));
    expectValidChromeTrace(dir / (base + ".host.trace.json"));
}

TEST(ObsDeterminism, TracingDoesNotPerturbTheMeasurement)
{
    const config::SystemConfig cfg = tinyMeshConfig();

    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Full;
    trace.sampleInterval = 500; // in-memory only: no outDir

    const harness::RunResult off =
        harness::runWorkload("GUPS", cfg, kTinyScale, 2);
    const harness::RunResult on =
        harness::runWorkload("GUPS", cfg, kTinyScale, 2, trace);

    EXPECT_TRUE(sameMeasurement(off, on));
    EXPECT_EQ(off.traceRecords, 0u);
    EXPECT_GT(on.traceRecords, 0u);
    EXPECT_GT(on.sampleRows, 0u);
}

} // namespace
} // namespace netcrafter
