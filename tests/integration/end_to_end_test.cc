/**
 * @file
 * End-to-end integration tests: whole-system simulations at small scale
 * validating the paper's directional claims and cross-cutting
 * invariants (determinism, conservation, mechanism effects).
 */

#include <gtest/gtest.h>

#include "src/gpu/system.hh"
#include "src/workloads/workload.hh"

namespace netcrafter {
namespace {

/** A shrunken Table 2 system that keeps integration tests fast. */
config::SystemConfig
tinyConfig()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    return cfg;
}

constexpr double kTinyScale = 0.34; // ~2 instructions per wavefront

struct RunOutcome
{
    Tick cycles;
    std::uint64_t interFlits;
    std::uint64_t interWireBytes;
    std::uint64_t instructions;
    std::size_t outstanding;
    std::uint64_t trimmed;
    std::uint64_t stitched;
    double mpki;
};

RunOutcome
simulate(const std::string &app, const config::SystemConfig &cfg,
         double scale = kTinyScale)
{
    auto wl = workloads::makeWorkload(app);
    gpu::MultiGpuSystem sys(cfg);
    sys.run(*wl, scale);
    RunOutcome out;
    out.cycles = sys.cycles();
    out.interFlits = sys.network().interClusterFlits();
    out.interWireBytes = sys.network().interClusterWireBytes();
    out.instructions = sys.totalInstructions();
    out.outstanding = sys.outstandingRequests();
    out.mpki = sys.l1Mpki();
    out.trimmed = 0;
    out.stitched = 0;
    for (ClusterId f = 0; f < cfg.numClusters; ++f) {
        for (ClusterId t = 0; t < cfg.numClusters; ++t) {
            const auto *ctrl = sys.network().controller(f, t);
            if (!ctrl)
                continue;
            out.trimmed += ctrl->trimStats().packetsTrimmed;
            out.stitched += ctrl->stitchStats().candidatesAbsorbed;
        }
    }
    return out;
}

/** Every Table 3 app (plus GEMM) completes under every major config. */
class AllWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllWorkloads, CompletesOnBaseline)
{
    auto out = simulate(GetParam(), tinyConfig());
    EXPECT_GT(out.cycles, 0u);
    EXPECT_GT(out.instructions, 0u);
    EXPECT_EQ(out.outstanding, 0u); // every request got its response
}

TEST_P(AllWorkloads, CompletesUnderFullNetCrafter)
{
    config::SystemConfig cfg = config::netcrafterConfig();
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    auto out = simulate(GetParam(), cfg);
    EXPECT_GT(out.cycles, 0u);
    EXPECT_EQ(out.outstanding, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AllWorkloads,
    ::testing::Values("GUPS", "MT", "MIS", "IM2COL", "ATAX", "BS",
                      "MM2", "MVT", "SPMV", "PR", "SR", "SYR2K",
                      "VGG16", "LENET", "RNET18", "GEMM"));

TEST(EndToEnd, DeterministicAcrossRuns)
{
    auto a = simulate("GUPS", tinyConfig());
    auto b = simulate("GUPS", tinyConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.interFlits, b.interFlits);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(EndToEnd, SeedChangesSchedule)
{
    config::SystemConfig cfg = tinyConfig();
    auto a = simulate("GUPS", cfg);
    cfg.seed = 999;
    auto b = simulate("GUPS", cfg);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(EndToEnd, IdealBandwidthIsFaster)
{
    config::SystemConfig ideal = config::idealConfig();
    ideal.cusPerGpu = 8;
    ideal.maxWavesPerCu = 4;
    auto base = simulate("GUPS", tinyConfig());
    auto fast = simulate("GUPS", ideal);
    EXPECT_LT(fast.cycles, base.cycles);
}

TEST(EndToEnd, TrimmingShrinksInterClusterTraffic)
{
    config::SystemConfig cfg = tinyConfig();
    cfg.netcrafter.trimming = true;
    cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
    auto base = simulate("GUPS", tinyConfig());
    auto trim = simulate("GUPS", cfg);
    EXPECT_GT(trim.trimmed, 0u);
    EXPECT_LT(trim.interFlits, base.interFlits);
    EXPECT_LT(trim.interWireBytes, base.interWireBytes);
}

TEST(EndToEnd, StitchingShrinksWireFlits)
{
    config::SystemConfig cfg = tinyConfig();
    cfg.netcrafter.stitching = true;
    auto base = simulate("GUPS", tinyConfig());
    auto stitch = simulate("GUPS", cfg);
    EXPECT_GT(stitch.stitched, 0u);
    EXPECT_LT(stitch.interFlits, base.interFlits);
}

TEST(EndToEnd, SequencingAloneChangesNoTrafficVolume)
{
    config::SystemConfig cfg = tinyConfig();
    cfg.netcrafter.sequencing = config::SequencingMode::PrioritizePtw;
    auto base = simulate("GUPS", tinyConfig());
    auto seq = simulate("GUPS", cfg);
    // Sequencing reorders; it neither adds nor removes flits.
    EXPECT_NEAR(static_cast<double>(seq.interFlits),
                static_cast<double>(base.interFlits),
                0.02 * static_cast<double>(base.interFlits));
}

TEST(EndToEnd, SectorCacheRaisesMpkiAboveTrimming)
{
    config::SystemConfig trim_cfg = tinyConfig();
    trim_cfg.netcrafter.trimming = true;
    trim_cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
    config::SystemConfig sector_cfg = tinyConfig();
    sector_cfg.l1FillMode = config::L1FillMode::SectorAlways;

    // PR has hot-line reuse: full-line fills pay off.
    const double scale = 1.0;
    auto base = simulate("PR", tinyConfig(), scale);
    auto trim = simulate("PR", trim_cfg, scale);
    auto sector = simulate("PR", sector_cfg, scale);
    EXPECT_GE(trim.mpki, base.mpki * 0.999);
    EXPECT_GT(sector.mpki, trim.mpki);
}

TEST(EndToEnd, EightByteFlitsStillComplete)
{
    config::SystemConfig cfg = tinyConfig();
    cfg.flitBytes = 8;
    auto out = simulate("MVT", cfg);
    EXPECT_GT(out.interFlits, 0u);
    EXPECT_EQ(out.outstanding, 0u);
}

TEST(EndToEnd, HomogeneousBandwidthWorks)
{
    config::SystemConfig cfg = tinyConfig();
    cfg.intraClusterGBps = 32;
    cfg.interClusterGBps = 32;
    auto out = simulate("SPMV", cfg);
    EXPECT_EQ(out.outstanding, 0u);
}

TEST(EndToEnd, PartitionedWorkloadBarelyUsesNetwork)
{
    auto bs = simulate("BS", tinyConfig());
    auto gups = simulate("GUPS", tinyConfig());
    EXPECT_LT(bs.interFlits, gups.interFlits / 10);
}

TEST(EndToEnd, KernelBarriersExecuteAllKernels)
{
    // PR runs two kernels; instructions must roughly double a single
    // kernel's worth (same shape per kernel).
    auto wl = workloads::makeWorkload("PR");
    gpu::MultiGpuSystem sys(tinyConfig());
    sys.run(*wl, kTinyScale);
    const auto &kernels = wl->kernels();
    ASSERT_EQ(kernels.size(), 2u);
    const auto info = kernels[0]->info();
    const std::uint64_t per_kernel =
        static_cast<std::uint64_t>(info.numCtas) * info.wavesPerCta *
        info.instructionsPerWave;
    EXPECT_EQ(sys.totalInstructions(), 2 * per_kernel);
}

} // namespace
} // namespace netcrafter
