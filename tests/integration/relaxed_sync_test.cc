/**
 * @file
 * Relaxed-sync contract tests: Relaxed mode trades bit-identity with
 * Strict for fewer rendezvous rounds, but it keeps its own determinism
 * contract — the same (workload, config, shards, skew bound) must
 * reproduce the same measurement regardless of executor threads or
 * stealing — and its physical invariants are exact, not approximate:
 * per-channel FIFO order, packet/byte conservation, skew never past
 * the bound, and skew bound 0 degenerating to Strict bit-for-bit.
 */

#include <gtest/gtest.h>

#include "src/config/exec_config.hh"
#include "src/gpu/system.hh"
#include "src/harness/runner.hh"
#include "src/obs/skew_auditor.hh"
#include "src/sim/sharded_engine.hh"
#include "src/workloads/workload.hh"

namespace netcrafter {
namespace {

config::SystemConfig
shrink(config::SystemConfig cfg)
{
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    return cfg;
}

constexpr double kTinyScale = 0.34;
constexpr Tick kBound = 96;

const sim::SyncPolicy kStrict{};
const sim::SyncPolicy kRelaxed{sim::SyncMode::Relaxed, kBound};

harness::RunResult
runPoint(const std::string &app, const config::SystemConfig &cfg,
         unsigned shards, const sim::ExecPolicy &exec,
         const sim::SyncPolicy &sync)
{
    return harness::runWorkload(app, cfg, kTinyScale, shards, {}, exec,
                                flow::Fidelity::Cycle, sync);
}

/**
 * Relaxed determinism: for a fixed skew bound, the epoch schedule is a
 * pure function of pre-barrier simulated state, so repeated runs and
 * every executor mapping (thread count, stealing) must agree
 * measurement-for-measurement.
 */
TEST(RelaxedSyncTest, ReproducibleAcrossRunsAndExecutorPolicies)
{
    const config::SystemConfig cfg = shrink(config::netcrafterConfig());
    const std::string app = "MT";

    const harness::RunResult first =
        runPoint(app, cfg, 4, {0, false, 1}, kRelaxed);
    const harness::RunResult again =
        runPoint(app, cfg, 4, {0, false, 1}, kRelaxed);
    EXPECT_TRUE(sameMeasurement(first, again))
        << "relaxed run not reproducible: " << first.cycles << " vs "
        << again.cycles << " cycles";
    EXPECT_EQ(first.events, again.events);
    EXPECT_EQ(first.maxObservedSkew, again.maxObservedSkew);
    EXPECT_EQ(first.lateArrivals, again.lateArrivals);

    const sim::ExecPolicy policies[] = {
        {1, false, 1}, {2, false, 1}, {2, true, 1}, {4, true, 64}};
    for (const sim::ExecPolicy &exec : policies) {
        const harness::RunResult run =
            runPoint(app, cfg, 4, exec, kRelaxed);
        EXPECT_TRUE(sameMeasurement(first, run))
            << "relaxed run diverged at " << exec.threads
            << " threads, steal=" << exec.steal << ": " << first.cycles
            << " vs " << run.cycles << " cycles";
        EXPECT_EQ(first.events, run.events);
        EXPECT_EQ(first.quantaExecuted, run.quantaExecuted);
        EXPECT_EQ(first.barrierStallTicks, run.barrierStallTicks);
    }
}

/** Skew bound 0 widens no window and slots nothing late: bit-identical
 *  to Strict, including the event census and the sync diagnostics. */
TEST(RelaxedSyncTest, ZeroBoundDegeneratesToStrict)
{
    for (const char *app : {"GUPS", "MT"}) {
        const config::SystemConfig cfg =
            shrink(config::baselineConfig());
        const harness::RunResult strict =
            runPoint(app, cfg, 4, {0, false, 1}, kStrict);
        const harness::RunResult zero = runPoint(
            app, cfg, 4, {0, false, 1},
            sim::SyncPolicy{sim::SyncMode::Relaxed, 0});

        EXPECT_TRUE(sameMeasurement(strict, zero))
            << app << ": skew bound 0 diverged from strict";
        EXPECT_EQ(strict.events, zero.events) << app;
        EXPECT_EQ(strict.interFlits, zero.interFlits) << app;
        EXPECT_EQ(strict.quantaExecuted, zero.quantaExecuted) << app;
        EXPECT_EQ(zero.maxObservedSkew, 0u) << app;
        EXPECT_EQ(zero.lateArrivals, 0u) << app;
        EXPECT_EQ(zero.lateCredits, 0u) << app;
    }
}

/** Strict runs observe no skew and slot nothing late, whatever the
 *  configured bound says. */
TEST(RelaxedSyncTest, StrictObservesNoSkew)
{
    const config::SystemConfig cfg = shrink(config::baselineConfig());
    const harness::RunResult strict =
        runPoint("GUPS", cfg, 4, {0, false, 1}, kStrict);
    EXPECT_EQ(strict.syncMode, sim::SyncMode::Strict);
    EXPECT_EQ(strict.skewBound, 0u);
    EXPECT_EQ(strict.maxObservedSkew, 0u);
    EXPECT_EQ(strict.lateArrivals, 0u);
    EXPECT_EQ(strict.lateDisplacementTicks, 0u);
}

/**
 * The conservation-and-bound property grid: under Relaxed, observed
 * skew never exceeds the bound, instruction counts match Strict
 * exactly (relaxation moves timing, never work), and within each run
 * every transferred inter-cluster flit is delivered at a wire head.
 */
TEST(RelaxedSyncTest, ConservationAndSkewBoundHoldAcrossTheGrid)
{
    const struct
    {
        const char *app;
        config::SystemConfig cfg;
    } points[] = {
        {"GUPS", shrink(config::baselineConfig())},
        {"MT", shrink(config::netcrafterConfig())},
    };
    for (const auto &point : points) {
        const harness::RunResult strict =
            runPoint(point.app, point.cfg, 4, {0, false, 1}, kStrict);
        for (const Tick bound : {Tick{16}, Tick{64}, kBound}) {
            const harness::RunResult run = runPoint(
                point.app, point.cfg, 4, {0, false, 1},
                sim::SyncPolicy{sim::SyncMode::Relaxed, bound});
            EXPECT_EQ(run.syncMode, sim::SyncMode::Relaxed);
            EXPECT_EQ(run.skewBound, bound);
            EXPECT_LE(run.maxObservedSkew, bound)
                << point.app << " at bound " << bound;
            EXPECT_EQ(run.instructions, strict.instructions)
                << point.app << " at bound " << bound
                << ": relaxation changed the work, not just timing";
            EXPECT_EQ(run.wireFlitsDelivered, run.interFlits)
                << point.app << " at bound " << bound;
            // Event and flit counts may drift (timing shifts change
            // MSHR merges) — that is the audited accuracy cost, not a
            // conservation failure. Rounds can only merge, never grow.
            EXPECT_LE(run.quantaExecuted, strict.quantaExecuted)
                << point.app << " at bound " << bound;
        }
    }
}

/**
 * Trace-level FIFO property: fold the skew auditor over the merged
 * link-level stream of a relaxed run — no (src, dst, channel) lane may
 * deliver flits out of departure order, every departure must arrive,
 * and no arrival may precede its departure.
 */
TEST(RelaxedSyncTest, MergedTraceShowsNoChannelReorders)
{
    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Links;
    const config::SystemConfig cfg = shrink(config::netcrafterConfig());

    auto workload = workloads::makeWorkload("MT");
    gpu::MultiGpuSystem system(cfg, 4, trace, {0, false, 1},
                               flow::Fidelity::Cycle, kRelaxed);
    system.run(*workload, kTinyScale);

    const obs::SkewAuditReport report =
        obs::auditSkew(system.traceSink()->merged());
    EXPECT_GT(report.wireArrives, 0u);
    EXPECT_EQ(report.reorderedArrivals, 0u);
    EXPECT_EQ(report.orphanArrivals, 0u);
    EXPECT_EQ(report.undeliveredDeparts, 0u);
    EXPECT_EQ(report.negativeLatencies, 0u);
    EXPECT_TRUE(report.clean());
}

/** Skew bound 0 reproduces the Strict link-level stream bit-for-bit:
 *  same record count, same order-sensitive digest. */
TEST(RelaxedSyncTest, ZeroBoundTraceDigestMatchesStrict)
{
    obs::TraceOptions trace;
    trace.level = obs::TraceLevel::Links;
    const config::SystemConfig cfg = shrink(config::baselineConfig());

    auto strictRun = [&](const sim::SyncPolicy &sync) {
        auto workload = workloads::makeWorkload("GUPS");
        gpu::MultiGpuSystem system(cfg, 4, trace, {0, false, 1},
                                   flow::Fidelity::Cycle, sync);
        system.run(*workload, kTinyScale);
        return obs::auditSkew(system.traceSink()->merged());
    };
    const obs::SkewAuditReport strict = strictRun(kStrict);
    const obs::SkewAuditReport zero =
        strictRun(sim::SyncPolicy{sim::SyncMode::Relaxed, 0});
    EXPECT_GT(strict.records, 0u);
    EXPECT_EQ(strict.records, zero.records);
    EXPECT_EQ(strict.digest, zero.digest);
    EXPECT_TRUE(strict.clean());
    EXPECT_TRUE(zero.clean());
}

TEST(RelaxedSyncConfigTest, ParseSyncModeEnv)
{
    EXPECT_EQ(config::parseSyncModeEnv("strict"),
              sim::SyncMode::Strict);
    EXPECT_EQ(config::parseSyncModeEnv("relaxed"),
              sim::SyncMode::Relaxed);
}

TEST(RelaxedSyncConfigDeathTest, SyncModeEnvRejectsGarbage)
{
    EXPECT_DEATH(config::parseSyncModeEnv("eventual"),
                 "NETCRAFTER_SYNC");
    EXPECT_DEATH(config::parseSyncModeEnv(""), "NETCRAFTER_SYNC");
    EXPECT_DEATH(config::parseSyncModeEnv("Strict "),
                 "NETCRAFTER_SYNC");
}

TEST(RelaxedSyncConfigTest, ParseSkewBoundEnv)
{
    EXPECT_EQ(config::parseSkewBoundEnv("0"), 0u);
    EXPECT_EQ(config::parseSkewBoundEnv("256"), 256u);
    EXPECT_EQ(config::parseSkewBoundEnv("1099511627776"),
              Tick{1} << 40);
}

TEST(RelaxedSyncConfigDeathTest, SkewBoundEnvRejectsGarbage)
{
    EXPECT_DEATH(config::parseSkewBoundEnv("-1"),
                 "NETCRAFTER_SKEW_BOUND");
    EXPECT_DEATH(config::parseSkewBoundEnv("16k"),
                 "NETCRAFTER_SKEW_BOUND");
    EXPECT_DEATH(config::parseSkewBoundEnv(""),
                 "NETCRAFTER_SKEW_BOUND");
    EXPECT_DEATH(config::parseSkewBoundEnv("1099511627777"),
                 "NETCRAFTER_SKEW_BOUND");
}

} // namespace
} // namespace netcrafter
