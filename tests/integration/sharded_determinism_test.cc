/**
 * @file
 * Serial-vs-sharded determinism: the same (workload, config) run on 1,
 * 2, and 4 engine shards must produce bit-identical measurements —
 * figure outputs and the event census alike. These points mirror the
 * fig03 (baseline vs ideal) and fig14 (cumulative NetCrafter
 * mechanisms) grids at test scale.
 */

#include <gtest/gtest.h>

#include "src/harness/runner.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter {
namespace {

/** Scoped override of the process-wide lookahead-mode default. */
class ScopedLookaheadMode
{
  public:
    explicit ScopedLookaheadMode(sim::LookaheadMode mode)
        : prev_(sim::defaultLookaheadMode())
    {
        sim::setDefaultLookaheadMode(mode);
    }
    ~ScopedLookaheadMode() { sim::setDefaultLookaheadMode(prev_); }

    ScopedLookaheadMode(const ScopedLookaheadMode &) = delete;
    ScopedLookaheadMode &operator=(const ScopedLookaheadMode &) = delete;

  private:
    sim::LookaheadMode prev_;
};

config::SystemConfig
shrink(config::SystemConfig cfg)
{
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    return cfg;
}

constexpr double kTinyScale = 0.34;

void
expectShardInvariant(const std::string &app,
                     const config::SystemConfig &cfg, unsigned shards)
{
    const harness::RunResult serial =
        harness::runWorkload(app, cfg, kTinyScale, 1);
    const harness::RunResult parallel =
        harness::runWorkload(app, cfg, kTinyScale, shards);

    EXPECT_TRUE(sameMeasurement(serial, parallel))
        << app << " diverged at " << shards << " shards: serial "
        << serial.cycles << " cycles / " << serial.events
        << " events, sharded " << parallel.cycles << " cycles / "
        << parallel.events << " events";
    // The event census must match exactly, not just the figures.
    EXPECT_EQ(serial.events, parallel.events) << app;
    EXPECT_EQ(serial.interFlits, parallel.interFlits) << app;

    EXPECT_EQ(serial.shards, 1u);
    EXPECT_EQ(serial.crossShardFlits, 0u);
    if (shards > 1) {
        EXPECT_EQ(parallel.shards, shards) << app;
        EXPECT_GT(parallel.quantaExecuted, 0u) << app;
        if (parallel.interFlits > 0)
            EXPECT_GT(parallel.crossShardFlits, 0u) << app;
    }
}

TEST(ShardedDeterminismTest, Fig03PointBaselineTwoShards)
{
    expectShardInvariant("GUPS", shrink(config::baselineConfig()), 2);
}

TEST(ShardedDeterminismTest, Fig03PointIdealTwoShards)
{
    expectShardInvariant("GUPS", shrink(config::idealConfig()), 2);
}

TEST(ShardedDeterminismTest, Fig14PointFullNetcrafterTwoShards)
{
    // Full NetCrafter exercises stitched flits (with pooled piece
    // packets) crossing the shard boundary.
    expectShardInvariant("MT", shrink(config::netcrafterConfig()), 2);
}

TEST(ShardedDeterminismTest, Fig14PointSectorCacheTwoShards)
{
    expectShardInvariant("GUPS", shrink(config::sectorCacheConfig(16)),
                         2);
}

TEST(ShardedDeterminismTest, FourClustersFourShards)
{
    config::SystemConfig cfg = shrink(config::baselineConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    expectShardInvariant("GUPS", cfg, 4);

    config::SystemConfig nc = shrink(config::netcrafterConfig());
    nc.numClusters = 4;
    nc.gpusPerCluster = 1;
    expectShardInvariant("MT", nc, 4);
}

/**
 * The fixed-Q path is kept behind LookaheadMode::FixedQuantum exactly
 * so this regression can pin the two window policies against each
 * other: same (workload, config, shards), bit-identical measurements,
 * and the adaptive windows — never narrower than Q — need at most as
 * many quanta.
 */
void
expectAdaptiveMatchesFixed(const std::string &app,
                           const config::SystemConfig &cfg)
{
    for (const unsigned shards : {1u, 2u, 4u}) {
        harness::RunResult fixed_q, adaptive;
        {
            ScopedLookaheadMode mode(sim::LookaheadMode::FixedQuantum);
            fixed_q = harness::runWorkload(app, cfg, kTinyScale, shards);
        }
        {
            ScopedLookaheadMode mode(sim::LookaheadMode::Adaptive);
            adaptive = harness::runWorkload(app, cfg, kTinyScale, shards);
        }
        EXPECT_TRUE(sameMeasurement(fixed_q, adaptive))
            << app << " diverged between window policies at " << shards
            << " shards: fixed " << fixed_q.cycles << " cycles / "
            << fixed_q.events << " events, adaptive " << adaptive.cycles
            << " cycles / " << adaptive.events << " events";
        EXPECT_EQ(fixed_q.events, adaptive.events) << app;
        EXPECT_EQ(fixed_q.interFlits, adaptive.interFlits) << app;
        if (shards > 1) {
            EXPECT_LE(adaptive.quantaExecuted, fixed_q.quantaExecuted)
                << app << ": adaptive windows can only widen";
        }
    }
}

TEST(ShardedDeterminismTest, AdaptiveMatchesFixedOnFig03Point)
{
    config::SystemConfig cfg = shrink(config::baselineConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    expectAdaptiveMatchesFixed("GUPS", cfg);
}

TEST(ShardedDeterminismTest, AdaptiveMatchesFixedOnFig14Point)
{
    config::SystemConfig nc = shrink(config::netcrafterConfig());
    nc.numClusters = 4;
    nc.gpusPerCluster = 1;
    expectAdaptiveMatchesFixed("MT", nc);
}

/**
 * The work-stealing bit-identity grid: the same (workload, config) at
 * 1, 2, and 4 shards, stealing on and off, across executor thread
 * counts. Every combination must reproduce the serial measurement —
 * flit census, figure metrics, and the full event count — because the
 * claim ledger only picks WHO executes a whole-window unit, never what
 * the unit does.
 */
TEST(ShardedDeterminismTest, StealingIsBitIdenticalAcrossTheGrid)
{
    config::SystemConfig cfg = shrink(config::netcrafterConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    const std::string app = "MT";
    const obs::TraceOptions no_trace;

    const harness::RunResult serial =
        harness::runWorkload(app, cfg, kTinyScale, 1, no_trace);

    struct GridPoint
    {
        unsigned shards;
        sim::ExecPolicy exec;
    };
    const GridPoint grid[] = {
        {2, {0, false, 1}}, {2, {1, true, 1}},  {2, {2, true, 1}},
        {4, {0, false, 1}}, {4, {1, false, 1}}, {4, {2, false, 1}},
        {4, {2, true, 1}},  {4, {4, true, 1}},  {4, {2, true, 64}},
    };
    for (const GridPoint &point : grid) {
        const harness::RunResult run = harness::runWorkload(
            app, cfg, kTinyScale, point.shards, no_trace, point.exec);
        EXPECT_TRUE(sameMeasurement(serial, run))
            << app << " diverged at " << point.shards << " shards, "
            << point.exec.threads << " threads, steal="
            << point.exec.steal << ": serial " << serial.cycles
            << " cycles / " << serial.events << " events, got "
            << run.cycles << " cycles / " << run.events << " events";
        EXPECT_EQ(serial.events, run.events);
        EXPECT_EQ(serial.interFlits, run.interFlits);
        // The deterministic stall census is executor-invariant too,
        // and the steal bookkeeping stays internally consistent.
        EXPECT_EQ(run.stealAttempts, run.stealsWon + run.stealsAborted);
        EXPECT_LE(run.coveredStallTicks, run.barrierStallTicks);
        const unsigned expect_threads =
            point.exec.threads == 0
                ? point.shards
                : std::min(point.exec.threads, point.shards);
        EXPECT_EQ(run.workThreads, expect_threads);
    }
}

TEST(ShardedDeterminismTest, StallCensusIsThreadCountInvariant)
{
    // barrierStallTicks is sim-tick arithmetic over the round protocol
    // and must not move with the executor mapping; only the covered /
    // residual split (host-schedule diagnostics) may differ.
    config::SystemConfig cfg = shrink(config::baselineConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    const obs::TraceOptions no_trace;

    const harness::RunResult four = harness::runWorkload(
        "GUPS", cfg, kTinyScale, 4, no_trace, sim::ExecPolicy{0, false, 1});
    const harness::RunResult mux = harness::runWorkload(
        "GUPS", cfg, kTinyScale, 4, no_trace, sim::ExecPolicy{1, false, 1});
    const harness::RunResult steal = harness::runWorkload(
        "GUPS", cfg, kTinyScale, 4, no_trace, sim::ExecPolicy{2, true, 1});

    EXPECT_TRUE(sameMeasurement(four, mux));
    EXPECT_TRUE(sameMeasurement(four, steal));
    EXPECT_EQ(four.barrierStallTicks, mux.barrierStallTicks);
    EXPECT_EQ(four.barrierStallTicks, steal.barrierStallTicks);
    EXPECT_EQ(four.quantaExecuted, mux.quantaExecuted);
    EXPECT_EQ(four.quantaExecuted, steal.quantaExecuted);
    // A single executor multiplexing four shards covers every round's
    // stall except the last unit's — the covered share must be real.
    if (mux.barrierStallTicks > 0)
        EXPECT_GT(mux.coveredStallTicks, 0u);
}

TEST(ShardedDeterminismTest, TwoShardsMatchFourShardsOnMesh)
{
    // Shard counts that don't divide the system evenly still agree.
    config::SystemConfig cfg = shrink(config::baselineConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    const harness::RunResult two =
        harness::runWorkload("GUPS", cfg, kTinyScale, 2);
    const harness::RunResult four =
        harness::runWorkload("GUPS", cfg, kTinyScale, 3);
    EXPECT_TRUE(sameMeasurement(two, four));
}

} // namespace
} // namespace netcrafter
