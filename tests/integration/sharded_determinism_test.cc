/**
 * @file
 * Serial-vs-sharded determinism: the same (workload, config) run on 1,
 * 2, and 4 engine shards must produce bit-identical measurements —
 * figure outputs and the event census alike. These points mirror the
 * fig03 (baseline vs ideal) and fig14 (cumulative NetCrafter
 * mechanisms) grids at test scale.
 */

#include <gtest/gtest.h>

#include "src/harness/runner.hh"

namespace netcrafter {
namespace {

config::SystemConfig
shrink(config::SystemConfig cfg)
{
    cfg.cusPerGpu = 8;
    cfg.maxWavesPerCu = 4;
    return cfg;
}

constexpr double kTinyScale = 0.34;

void
expectShardInvariant(const std::string &app,
                     const config::SystemConfig &cfg, unsigned shards)
{
    const harness::RunResult serial =
        harness::runWorkload(app, cfg, kTinyScale, 1);
    const harness::RunResult parallel =
        harness::runWorkload(app, cfg, kTinyScale, shards);

    EXPECT_TRUE(sameMeasurement(serial, parallel))
        << app << " diverged at " << shards << " shards: serial "
        << serial.cycles << " cycles / " << serial.events
        << " events, sharded " << parallel.cycles << " cycles / "
        << parallel.events << " events";
    // The event census must match exactly, not just the figures.
    EXPECT_EQ(serial.events, parallel.events) << app;
    EXPECT_EQ(serial.interFlits, parallel.interFlits) << app;

    EXPECT_EQ(serial.shards, 1u);
    EXPECT_EQ(serial.crossShardFlits, 0u);
    if (shards > 1) {
        EXPECT_EQ(parallel.shards, shards) << app;
        EXPECT_GT(parallel.quantaExecuted, 0u) << app;
        if (parallel.interFlits > 0)
            EXPECT_GT(parallel.crossShardFlits, 0u) << app;
    }
}

TEST(ShardedDeterminismTest, Fig03PointBaselineTwoShards)
{
    expectShardInvariant("GUPS", shrink(config::baselineConfig()), 2);
}

TEST(ShardedDeterminismTest, Fig03PointIdealTwoShards)
{
    expectShardInvariant("GUPS", shrink(config::idealConfig()), 2);
}

TEST(ShardedDeterminismTest, Fig14PointFullNetcrafterTwoShards)
{
    // Full NetCrafter exercises stitched flits (with pooled piece
    // packets) crossing the shard boundary.
    expectShardInvariant("MT", shrink(config::netcrafterConfig()), 2);
}

TEST(ShardedDeterminismTest, Fig14PointSectorCacheTwoShards)
{
    expectShardInvariant("GUPS", shrink(config::sectorCacheConfig(16)),
                         2);
}

TEST(ShardedDeterminismTest, FourClustersFourShards)
{
    config::SystemConfig cfg = shrink(config::baselineConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    expectShardInvariant("GUPS", cfg, 4);

    config::SystemConfig nc = shrink(config::netcrafterConfig());
    nc.numClusters = 4;
    nc.gpusPerCluster = 1;
    expectShardInvariant("MT", nc, 4);
}

TEST(ShardedDeterminismTest, TwoShardsMatchFourShardsOnMesh)
{
    // Shard counts that don't divide the system evenly still agree.
    config::SystemConfig cfg = shrink(config::baselineConfig());
    cfg.numClusters = 4;
    cfg.gpusPerCluster = 1;
    const harness::RunResult two =
        harness::runWorkload("GUPS", cfg, kTinyScale, 2);
    const harness::RunResult four =
        harness::runWorkload("GUPS", cfg, kTinyScale, 3);
    EXPECT_TRUE(sameMeasurement(two, four));
}

} // namespace
} // namespace netcrafter
