/** @file Tests for the JSON / CSV exporters. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/exp/export.hh"

namespace netcrafter::exp {
namespace {

ExportRecord
record(const std::string &label, Tick cycles)
{
    ExportRecord r;
    r.label = label;
    r.configDigest = 0xabcd;
    r.scale = 0.5;
    r.result.workload = "GUPS";
    r.result.cycles = cycles;
    r.result.l1Mpki = 1.25;
    return r;
}

TEST(ExportCsv, HeaderPlusOneLinePerRecord)
{
    std::ostringstream os;
    writeCsv({record("a", 10), record("b", 20)}, os);
    const std::string out = os.str();

    std::istringstream lines(out);
    std::string line;
    int n = 0;
    while (std::getline(lines, line))
        ++n;
    EXPECT_EQ(n, 3);

    EXPECT_EQ(out.find("job,workload,config_digest,scale,cycles"), 0u);
    // Digests render zero-padded to 16 hex digits.
    EXPECT_NE(out.find("a,GUPS,000000000000abcd,0.5,10"),
              std::string::npos);
    EXPECT_NE(out.find("b,GUPS,000000000000abcd,0.5,20"),
              std::string::npos);
}

TEST(ExportCsv, QuotesCellsContainingDelimiters)
{
    std::ostringstream os;
    writeCsv({record("with,comma", 1)}, os);
    EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
}

TEST(ExportJson, StructureAndValues)
{
    std::ostringstream os;
    writeJson({record("a", 10)}, os);
    const std::string out = os.str();

    EXPECT_NE(out.find("\"results\": ["), std::string::npos);
    EXPECT_NE(out.find("\"job\": \"a\""), std::string::npos);
    EXPECT_NE(out.find("\"workload\": \"GUPS\""), std::string::npos);
    EXPECT_NE(out.find("\"cycles\": 10"), std::string::npos);
    EXPECT_NE(out.find("\"l1_mpki\": 1.25"), std::string::npos);

    // Balanced braces / brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST(ExportJson, EscapesStrings)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ExportRegistryJson, CoversAllSections)
{
    stats::Registry reg;
    reg.counter("sys.count").inc(7);
    reg.average("sys.lat").sample(2.0);
    reg.average("sys.lat").sample(4.0);
    auto &d = reg.distribution("sys.dist", {10, 20});
    d.sample(5);
    d.sample(15);
    d.sample(99);

    std::ostringstream os;
    writeRegistryJson(reg, os);
    const std::string out = os.str();

    EXPECT_NE(out.find("\"counters\""), std::string::npos);
    EXPECT_NE(out.find("\"sys.count\": 7"), std::string::npos);
    EXPECT_NE(out.find("\"sys.lat\": {\"mean\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"sys.dist\""), std::string::npos);
    EXPECT_NE(out.find("\"bounds\": [10, 20]"), std::string::npos);
    EXPECT_NE(out.find("\"counts\": [1, 1, 1]"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(ExportRecords, FromSweepAndCacheAgree)
{
    SweepSpec spec("s");
    spec.add("j", "GUPS", config::baselineConfig(), 1.0);

    SweepResult res;
    harness::RunResult r;
    r.workload = "GUPS";
    r.cycles = 5;
    res.results.push_back(r);
    res.index.emplace("j", 0);

    const auto from_sweep = recordsFromSweep(spec, res);
    ASSERT_EQ(from_sweep.size(), 1u);
    EXPECT_EQ(from_sweep[0].label, "j");
    EXPECT_EQ(from_sweep[0].configDigest,
              config::baselineConfig().digest());

    ResultCache cache;
    cache.getOrRun(keyOf(spec.jobs()[0]), [&] { return r; });
    const auto from_cache = recordsFromCache(cache);
    ASSERT_EQ(from_cache.size(), 1u);
    EXPECT_EQ(from_cache[0].label, "");
    EXPECT_EQ(from_cache[0].configDigest, from_sweep[0].configDigest);
    EXPECT_EQ(from_cache[0].result.cycles, 5u);
}

} // namespace
} // namespace netcrafter::exp
