/** @file Tests for the (workload, config digest, scale) result cache. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/exp/result_cache.hh"

namespace netcrafter::exp {
namespace {

harness::RunResult
fakeResult(Tick cycles)
{
    harness::RunResult r;
    r.workload = "fake";
    r.cycles = cycles;
    return r;
}

TEST(CacheKey, OrderingAndEquality)
{
    const CacheKey a{"GUPS", 1, 1.0};
    const CacheKey b{"GUPS", 2, 1.0};
    const CacheKey c{"GUPS", 1, 2.0};
    EXPECT_TRUE(a == a);
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a < c);
}

TEST(CacheKey, KeyOfUsesConfigDigest)
{
    Job a{"j1", "GUPS", config::baselineConfig(), 1.0, {}};
    Job b{"j2", "GUPS", config::baselineConfig(), 1.0, {}};
    EXPECT_TRUE(keyOf(a) == keyOf(b));

    b.config.interClusterGBps = 32.0;
    EXPECT_FALSE(keyOf(a) == keyOf(b));
}

TEST(CacheKey, ServeScenarioIsPartOfTheKey)
{
    Job a{"j1", "serve-poisson", config::baselineConfig(), 1.0, {}};
    a.serve.enabled = true;
    Job b = a;
    b.name = "j2";
    EXPECT_TRUE(keyOf(a) == keyOf(b));
    EXPECT_NE(keyOf(a).serveDigest, 0u);

    // Every serving knob must feed the digest: two jobs differing in
    // any of them are distinct simulation points.
    b = a;
    b.serve.offeredLoad = a.serve.offeredLoad * 2;
    EXPECT_FALSE(keyOf(a) == keyOf(b));

    b = a;
    b.serve.arrival = serve::ArrivalKind::Bursty;
    EXPECT_FALSE(keyOf(a) == keyOf(b));

    b = a;
    b.serve.mix.weight[0] += 0.1;
    EXPECT_FALSE(keyOf(a) == keyOf(b));

    b = a;
    b.serve.seed += 1;
    EXPECT_FALSE(keyOf(a) == keyOf(b));

    b = a;
    b.serve.warmupTicks += 1;
    EXPECT_FALSE(keyOf(a) == keyOf(b));

    b = a;
    b.serve.measureTicks += 1;
    EXPECT_FALSE(keyOf(a) == keyOf(b));
}

TEST(CacheKey, ClosedLoopKeysUnchangedByServeFields)
{
    // Mirror of the shards-excluded guarantee: a job that never enables
    // serving keeps the pre-serving cache identity (serveDigest 0), no
    // matter what the dormant serve fields hold.
    Job a{"j1", "GUPS", config::baselineConfig(), 1.0, {}};
    Job b = a;
    b.serve.offeredLoad = 99.0;
    b.serve.seed = 1234;
    EXPECT_TRUE(keyOf(a) == keyOf(b));
    EXPECT_EQ(keyOf(a).serveDigest, 0u);
}

TEST(ResultCache, MissThenHit)
{
    ResultCache cache;
    const CacheKey key{"GUPS", 42, 1.0};
    int runs = 0;
    auto run = [&] {
        ++runs;
        return fakeResult(100);
    };

    bool hit = true;
    auto first = cache.getOrRun(key, run, &hit);
    EXPECT_FALSE(hit);
    auto second = cache.getOrRun(key, run, &hit);
    EXPECT_TRUE(hit);

    EXPECT_EQ(runs, 1);
    EXPECT_EQ(first.cycles, 100u);
    EXPECT_EQ(second.cycles, 100u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, ConcurrentRequestsRunOnce)
{
    ResultCache cache;
    const CacheKey key{"GUPS", 7, 1.0};
    std::atomic<int> runs{0};

    std::vector<std::thread> threads;
    std::vector<Tick> seen(8, 0);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            auto r = cache.getOrRun(key, [&] {
                ++runs;
                // Give other requesters time to pile onto the same key.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return fakeResult(123);
            });
            seen[t] = r.cycles;
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 7u);
    for (Tick c : seen)
        EXPECT_EQ(c, 123u);
}

TEST(ResultCache, SnapshotListsCompletedEntries)
{
    ResultCache cache;
    cache.getOrRun(CacheKey{"A", 1, 1.0}, [] { return fakeResult(1); });
    cache.getOrRun(CacheKey{"B", 2, 0.5}, [] { return fakeResult(2); });

    const auto snap = cache.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first.workload, "A");
    EXPECT_EQ(snap[0].second.cycles, 1u);
    EXPECT_EQ(snap[1].first.workload, "B");
    EXPECT_DOUBLE_EQ(snap[1].first.scale, 0.5);
}

} // namespace
} // namespace netcrafter::exp
