/**
 * @file
 * Tier-1 determinism tests for the thread-pool sweep scheduler: a
 * parallel run must produce RunResults bit-identical to serial
 * execution, and a cached sweep must simulate each unique
 * (workload, config digest, scale) point exactly once.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "src/exp/export.hh"
#include "src/exp/result_cache.hh"
#include "src/exp/scheduler.hh"
#include "src/exp/sweep.hh"

namespace netcrafter::exp {
namespace {

/** Shrunken system so each simulation finishes in milliseconds. */
config::SystemConfig
tiny(bool netcrafter = false)
{
    config::SystemConfig cfg = netcrafter ? config::netcrafterConfig()
                                          : config::baselineConfig();
    cfg.cusPerGpu = 4;
    cfg.maxWavesPerCu = 2;
    return cfg;
}

SweepSpec
smallSweep()
{
    SweepSpec spec("determinism");
    spec.addGrid({"GUPS", "MT"},
                 {{"base", tiny(false)}, {"nc", tiny(true)}}, 0.1);
    return spec;
}

TEST(Scheduler, ParallelMatchesSerialBitExactly)
{
    const SweepSpec spec = smallSweep();

    Scheduler::Options serial_opts;
    serial_opts.workers = 1;
    Scheduler serial(serial_opts);
    const SweepResult s = serial.run(spec);

    Scheduler::Options parallel_opts;
    parallel_opts.workers = 4;
    ResultCache cache;
    Scheduler parallel(parallel_opts, &cache);
    const SweepResult p = parallel.run(spec);

    ASSERT_EQ(s.results.size(), spec.size());
    ASSERT_EQ(p.results.size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        EXPECT_TRUE(harness::sameMeasurement(s.results[i], p.results[i]))
            << "job " << spec.jobs()[i].name
            << " diverged between serial and parallel execution";
    }
}

TEST(Scheduler, Fig03PointIdenticalSerialAndUnderParallelJobs)
{
    // A real fig03 point (full-size baseline config, shrunken scale),
    // as the figure binaries run it when NETCRAFTER_JOBS>1 engages the
    // thread pool: pool-worker execution must reproduce the plain
    // serial measurement bit-for-bit — including the hot-path census
    // (near/far event counts, callback-pool high water) that
    // sameMeasurement now also compares.
    const harness::RunResult serial =
        harness::runWorkload("GUPS", config::baselineConfig(), 0.05);

    SweepSpec spec("fig03-point");
    spec.add("base/GUPS", "GUPS", config::baselineConfig(), 0.05);
    Scheduler::Options opts;
    opts.workers = 2;
    Scheduler sched(opts);
    const SweepResult res = sched.run(spec);
    EXPECT_TRUE(harness::sameMeasurement(serial, res.at("base/GUPS")));
}

TEST(Scheduler, CacheSimulatesEachUniquePointOnce)
{
    // Two sweeps sharing the cache: the second is served entirely from
    // memory, and duplicate points inside one sweep also collapse.
    SweepSpec spec("cached");
    spec.addGrid({"GUPS"}, {{"base", tiny(false)}}, 0.1);
    spec.add("base-again/GUPS", "GUPS", tiny(false), 0.1);

    ResultCache cache;
    Scheduler::Options opts;
    opts.workers = 2;
    Scheduler sched(opts, &cache);

    const SweepResult first = sched.run(spec);
    EXPECT_EQ(first.cacheMisses, 1u) << "one unique point";
    EXPECT_EQ(first.cacheHits, 1u) << "duplicate collapsed";
    EXPECT_TRUE(harness::sameMeasurement(first.at("base/GUPS"),
                                         first.at("base-again/GUPS")));

    const SweepResult second = sched.run(spec);
    EXPECT_EQ(second.cacheMisses, 0u) << "fully cache-served rerun";
    EXPECT_EQ(second.cacheHits, 2u);
    EXPECT_TRUE(harness::sameMeasurement(first.at("base/GUPS"),
                                         second.at("base/GUPS")));

    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Scheduler, TimingsAndIndexPopulated)
{
    SweepSpec spec("timings");
    spec.add("a", "GUPS", tiny(false), 0.1);

    ResultCache cache;
    Scheduler sched(Scheduler::Options(), &cache);
    const SweepResult res = sched.run(spec);

    ASSERT_EQ(res.timings.size(), 1u);
    EXPECT_EQ(res.timings[0].name, "a");
    EXPECT_GT(res.timings[0].seconds, 0.0);
    EXPECT_FALSE(res.timings[0].cacheHit);
    EXPECT_GT(res.wallSeconds, 0.0);
    EXPECT_EQ(res.at("a").workload, "GUPS");
}

TEST(Scheduler, HistoryQualifiesJobNamesAcrossSweeps)
{
    SweepSpec a("sweep-a");
    a.add("x", "GUPS", tiny(false), 0.1);
    SweepSpec b("sweep-b");
    b.add("x", "GUPS", tiny(false), 0.1);

    ResultCache cache;
    Scheduler sched(Scheduler::Options(), &cache);
    sched.run(a);
    sched.run(b);

    ASSERT_EQ(sched.history().size(), 2u);
    EXPECT_EQ(sched.history()[0].first.name, "sweep-a/x");
    EXPECT_EQ(sched.history()[1].first.name, "sweep-b/x");
    EXPECT_TRUE(harness::sameMeasurement(sched.history()[0].second,
                                         sched.history()[1].second));

    // Export records inherit the qualified names, so the "job" column
    // is never empty for scheduler-run jobs.
    const auto records = recordsFromScheduler(sched);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].label, "sweep-a/x");
    EXPECT_EQ(records[1].label, "sweep-b/x");
    EXPECT_EQ(records[0].configDigest, tiny(false).digest());
}

TEST(Scheduler, ShardCountIsNotPartOfTheCacheKey)
{
    // Sharding is an execution strategy, not a design point: a serial
    // run populates the cache, and later 2- and 4-shard schedulers
    // sharing it must hit the same entry without re-simulating.
    SweepSpec spec("shard-invariant");
    spec.add("p/GUPS", "GUPS", tiny(false), 0.1);

    ResultCache cache;
    Scheduler::Options serial_opts;
    serial_opts.workers = 1;
    serial_opts.shards = 1;
    Scheduler serial(serial_opts, &cache);
    const SweepResult s = serial.run(spec);
    EXPECT_EQ(s.cacheMisses, 1u);

    for (unsigned shards : {2u, 4u}) {
        Scheduler::Options opts;
        opts.workers = 1;
        opts.shards = shards;
        Scheduler sharded(opts, &cache);
        EXPECT_EQ(sharded.shards(), shards);
        const SweepResult p = sharded.run(spec);
        EXPECT_EQ(p.cacheMisses, 0u)
            << shards << " shards re-simulated a cached point";
        EXPECT_EQ(p.cacheHits, 1u);
        EXPECT_TRUE(harness::sameMeasurement(s.at("p/GUPS"),
                                             p.at("p/GUPS")));
    }
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Scheduler, ShardsDivideTheAutoWorkerCount)
{
    // With an automatic worker count, run-level workers x intra-run
    // shards must not oversubscribe the host.
    Scheduler::Options opts;
    opts.workers = 0;
    opts.shards = 4;
    Scheduler sched(opts);
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    EXPECT_EQ(sched.workers(), std::max(1u, hw / 4));
    EXPECT_EQ(sched.shards(), 4u);

    // An explicit worker count is honored as given.
    opts.workers = 3;
    Scheduler manual(opts);
    EXPECT_EQ(manual.workers(), 3u);
}

TEST(SchedulerDeathTest, UnknownResultNameIsFatal)
{
    SweepResult res;
    EXPECT_EXIT(res.at("nope"), testing::ExitedWithCode(1),
                "no job named");
}

} // namespace
} // namespace netcrafter::exp
