/** @file Tests for the declarative SweepSpec. */

#include <gtest/gtest.h>

#include "src/exp/sweep.hh"

namespace netcrafter::exp {
namespace {

TEST(SweepSpec, AddAndLookup)
{
    SweepSpec spec("s");
    spec.add("base/GUPS", "GUPS", config::baselineConfig());
    spec.add("ideal/GUPS", "GUPS", config::idealConfig(), 0.5);

    EXPECT_EQ(spec.size(), 2u);
    EXPECT_EQ(spec.indexOf("base/GUPS"), 0u);
    EXPECT_EQ(spec.indexOf("ideal/GUPS"), 1u);
    EXPECT_TRUE(spec.contains("base/GUPS"));
    EXPECT_FALSE(spec.contains("base/MT"));
    EXPECT_EQ(spec.jobs()[1].workload, "GUPS");
    EXPECT_DOUBLE_EQ(spec.jobs()[1].scale, 0.5);
}

TEST(SweepSpec, GridCrossesConfigsAndWorkloads)
{
    SweepSpec spec("grid");
    spec.addGrid({"GUPS", "MT"}, {{"base", config::baselineConfig()},
                                  {"ideal", config::idealConfig()}});

    EXPECT_EQ(spec.size(), 4u);
    EXPECT_TRUE(spec.contains("base/GUPS"));
    EXPECT_TRUE(spec.contains("base/MT"));
    EXPECT_TRUE(spec.contains("ideal/GUPS"));
    EXPECT_TRUE(spec.contains("ideal/MT"));
    // Grid order: all workloads of a config before the next config.
    EXPECT_EQ(spec.jobs()[0].name, "base/GUPS");
    EXPECT_EQ(spec.jobs()[1].name, "base/MT");
    EXPECT_EQ(spec.jobs()[2].name, "ideal/GUPS");
}

TEST(SweepSpecDeathTest, DuplicateNameIsFatal)
{
    SweepSpec spec("dup");
    spec.add("x", "GUPS", config::baselineConfig());
    EXPECT_EXIT(spec.add("x", "MT", config::baselineConfig()),
                testing::ExitedWithCode(1), "duplicate job name");
}

TEST(SweepSpecDeathTest, UnknownNameIsFatal)
{
    SweepSpec spec("s");
    EXPECT_EXIT(spec.indexOf("missing"), testing::ExitedWithCode(1),
                "no job named");
}

} // namespace
} // namespace netcrafter::exp
