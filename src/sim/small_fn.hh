/**
 * @file
 * SmallFn: a move-only callable wrapper with a generous inline buffer,
 * used as the engine's event-callback type. Unlike std::function, any
 * capture up to kInlineBytes is stored inline regardless of trivial
 * copyability, so steady-state event scheduling never touches the heap
 * (std::function's small-object optimization only applies to trivially
 * copyable captures of at most two words, which excludes lambdas that
 * capture a pooled pointer or a completion callback).
 *
 * Oversized callables still work — they fall back to a heap allocation
 * and bump a thread-local counter so the fallback rate is observable in
 * stats (engine.callbackHeapFallbacks).
 */

#ifndef NETCRAFTER_SIM_SMALL_FN_HH
#define NETCRAFTER_SIM_SMALL_FN_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace netcrafter::sim {

namespace detail {

/** Heap-fallback constructions this thread performed (cold-path). */
inline thread_local std::uint64_t smallFnHeapAllocs = 0;

} // namespace detail

/** Move-only `void()` callable with a 64-byte inline buffer. */
class SmallFn
{
  public:
    /** Captures up to this size are stored inline (no allocation). */
    static constexpr std::size_t kInlineBytes = 64;

    SmallFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn>>>
    SmallFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "SmallFn requires a void() callable");
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &HeapOps<Fn>::ops;
            ++detail::smallFnHeapAllocs;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** Invoke the stored callable. Requires a non-empty SmallFn. */
    void operator()() { ops_->invoke(buf_); }

    /** True when a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the stored callable (no-op when empty). */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** Lifetime count of this thread's heap-fallback constructions. */
    static std::uint64_t
    heapAllocations()
    {
        return detail::smallFnHeapAllocs;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    struct InlineOps
    {
        static Fn *
        at(void *p)
        {
            return std::launder(reinterpret_cast<Fn *>(p));
        }
        static void invoke(void *p) { (*at(p))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) Fn(std::move(*at(src)));
            at(src)->~Fn();
        }
        static void destroy(void *p) { at(p)->~Fn(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static Fn *&
        slot(void *p)
        {
            return *std::launder(reinterpret_cast<Fn **>(p));
        }
        static void invoke(void *p) { (*slot(p))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) Fn *(slot(src));
        }
        static void destroy(void *p) { delete slot(p); }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    void
    moveFrom(SmallFn &other) noexcept
    {
        if (other.ops_ != nullptr) {
            ops_ = other.ops_;
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/** Callback type executed when a one-shot event fires. */
using EventFn = SmallFn;

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SMALL_FN_HH
