/**
 * @file
 * Deterministic random number generation (PCG32). Every stochastic choice
 * in the simulator draws from a seeded Pcg32 stream so runs are
 * bit-reproducible across hosts and compilers.
 */

#ifndef NETCRAFTER_SIM_RANDOM_HH
#define NETCRAFTER_SIM_RANDOM_HH

#include <cstdint>

namespace netcrafter {

/**
 * PCG32 generator (O'Neill, pcg-random.org). 64-bit state, 32-bit output.
 * Small, fast, and statistically far better than LCGs.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional stream-selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        // Lemire-style rejection on the top of the range.
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Counter-based random draws: every value is a pure function of
 * (seed, stream, counter), with no generator state at all. Open-loop
 * request streams use this so that draw n of stream s is the same
 * number no matter which engine shard or sweep-scheduler thread
 * evaluates it — the determinism argument reduces to "the inputs are
 * the same", not "the hidden state happened to be the same".
 *
 * The mix is SplitMix64's finalizer over the three inputs combined
 * with distinct odd constants; SplitMix64 passes BigCrush and the
 * finalizer is a bijection, so distinct (seed, stream, counter)
 * triples cannot collide more often than a random function would.
 */
struct CounterRng
{
    /** SplitMix64 finalizer: bijective 64-bit avalanche mix. */
    static std::uint64_t
    mix64(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /** The raw 64-bit draw for (seed, stream, counter). */
    static std::uint64_t
    draw(std::uint64_t seed, std::uint64_t stream, std::uint64_t counter)
    {
        return mix64(mix64(seed ^ 0xd1b54a32d192ed03ull) +
                     mix64(stream * 0x2545f4914f6cdd1dull) +
                     counter * 0x9e3779b97f4a7c15ull);
    }

    /** Uniform double in [0, 1) from the top 53 bits of the draw. */
    static double
    uniform(std::uint64_t seed, std::uint64_t stream,
            std::uint64_t counter)
    {
        return static_cast<double>(draw(seed, stream, counter) >> 11) *
               (1.0 / 9007199254740992.0); // 2^-53
    }
};

} // namespace netcrafter

#endif // NETCRAFTER_SIM_RANDOM_HH
