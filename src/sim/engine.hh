/**
 * @file
 * The simulation engine: owns the event queue and the notion of "now".
 */

#ifndef NETCRAFTER_SIM_ENGINE_HH
#define NETCRAFTER_SIM_ENGINE_HH

#include <cstdint>

#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"

namespace netcrafter::sim {

/**
 * Single-threaded discrete-event simulation engine. Components schedule
 * callbacks at future ticks; run() drains the queue in time order.
 *
 * All times are in core clock cycles at 1 GHz (Table 2), so 1 cycle = 1 ns.
 */
class Engine
{
  public:
    Engine() = default;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in cycles. */
    Tick now() const { return now_; }

    /** Schedule @p fn to fire @p delay cycles from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        queue_.schedule(now_ + delay, std::move(fn));
    }

    /** Schedule @p fn at an absolute tick (must not be in the past). */
    void scheduleAbs(Tick when, EventFn fn);

    /**
     * Run until the event queue drains or @p limit cycles elapse.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool run(Tick limit = kTickNever);

    /** Request that run() return after the current event completes. */
    void stop() { stopRequested_ = true; }

    /** Total events executed since construction. */
    std::uint64_t eventsExecuted() const { return eventsExecuted_; }

    /** Pending event count (for tests and diagnostics). */
    std::size_t pendingEvents() const { return queue_.size(); }

  private:
    EventQueue queue_;
    Tick now_ = 0;
    bool stopRequested_ = false;
    std::uint64_t eventsExecuted_ = 0;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_ENGINE_HH
