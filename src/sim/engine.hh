/**
 * @file
 * The simulation engine: owns the event queue and the notion of "now".
 */

#ifndef NETCRAFTER_SIM_ENGINE_HH
#define NETCRAFTER_SIM_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/logging.hh"
#include "src/sim/small_fn.hh"
#include "src/sim/types.hh"

namespace netcrafter::obs {
class TraceBuffer;
class TraceSink;
struct ShardCell;
} // namespace netcrafter::obs

namespace netcrafter::sim {

/** How a call to Engine::run() ended. */
enum class RunStatus : std::uint8_t
{
    /** The event queue drained completely. */
    Drained,
    /** The cycle limit was reached; now() reports the limit. */
    LimitHit,
    /** stop() was requested by an event. */
    Stopped,
};

/**
 * Single-threaded discrete-event simulation engine. Components schedule
 * callbacks at future ticks; run() drains the queue in time order.
 *
 * All times are in core clock cycles at 1 GHz (Table 2), so 1 cycle = 1 ns.
 *
 * Two scheduling flavours exist:
 *  - intrusive: components statically own an Event (e.g. a MemberEvent)
 *    and pass it to schedule(Event&, delay) — never allocates;
 *  - one-shot: schedule(delay, fn) wraps the callable in a pooled event
 *    node recycled after it fires — steady state never allocates either
 *    (the node pool reaches a high-water mark and stays there, and
 *    SmallFn stores captures up to 64 bytes inline).
 */
class Engine
{
  public:
    Engine() = default;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in cycles. */
    Tick now() const { return now_; }

    /**
     * The engine currently dispatching events on the calling thread, or
     * nullptr outside run()/runWindow(). Shard-owned state that used to
     * be keyed by thread identity (the per-source packet-id counters)
     * keys off this instead: under whole-window work stealing the same
     * shard's windows execute on different host threads across rounds,
     * but always under exactly one engine.
     */
    static Engine *current() { return current_; }

    /**
     * Bump-and-return the engine-owned sequence counter for @p slot
     * (grown on demand). The noc packet-id allocator uses one slot per
     * source GPU, making id sequences a function of the engine's event
     * order alone — identical for every shard count, thread count, and
     * steal schedule.
     */
    std::uint64_t
    bumpScopedId(std::size_t slot)
    {
        if (slot >= scopedIds_.size())
            scopedIds_.resize(slot + 1, 0);
        return ++scopedIds_[slot];
    }

    /** Schedule @p fn to fire @p delay cycles from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        CallbackEvent *ev = acquireCallback();
        ev->fn = std::move(fn);
        queue_.schedule(*ev, now_ + delay);
    }

    /** Schedule @p fn at an absolute tick (must not be in the past). */
    void scheduleAbs(Tick when, EventFn fn);

    /**
     * Schedule @p fn as a wire-phase event at an absolute tick, strictly
     * in the future. Wire-phase events fire before a tick's default
     * events (see event.hh); the inter-cluster channels use this for
     * flit deliveries and credit returns so that serial and sharded
     * execution order them identically.
     */
    void scheduleWireAbs(Tick when, EventFn fn);

    /** Schedule intrusive event @p ev @p delay cycles from now. */
    void
    schedule(Event &ev, Tick delay)
    {
        queue_.schedule(ev, now_ + delay);
    }

    /** Schedule intrusive event @p ev at an absolute tick. */
    void scheduleAbs(Event &ev, Tick when);

    /**
     * Run until the event queue drains, @p limit cycles elapse, or an
     * event calls stop(). When the limit is hit, now() advances to the
     * limit so aborted runs report the cap consistently.
     */
    RunStatus run(Tick limit = kTickNever);

    /**
     * Like run(), but never advances now() past the last executed
     * event: hitting the limit leaves now() at the last event's tick.
     * The sharded engine drains quantum windows with this so that a
     * shard's clock reflects real progress, not the window cap.
     */
    RunStatus runWindow(Tick limit);

    /** Tick of the earliest pending event, or kTickNever when empty. */
    Tick
    nextEventTick() const
    {
        return queue_.empty() ? kTickNever : queue_.nextTick();
    }

    /**
     * Move now() forward to @p when without executing anything. Only
     * meaningful between runs on a drained queue — the sharded engine
     * aligns all shard clocks to the global maximum after a drain so
     * that utilization denominators and the next kernel's dispatch base
     * match the serial engine.
     */
    void
    advanceNow(Tick when)
    {
        NC_ASSERT(when >= now_, "advanceNow() backwards: when=", when,
                  " now=", now_);
        now_ = when;
    }

    /** Request that run() return after the current event completes. */
    void stop() { stopRequested_ = true; }

    /** How the most recent run() ended. */
    RunStatus lastRunStatus() const { return lastRunStatus_; }

    /** Total events executed since construction. */
    std::uint64_t eventsExecuted() const { return eventsExecuted_; }

    /** Pending event count (for tests and diagnostics). */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** The underlying queue (wheel/heap statistics). */
    const EventQueue &queue() const { return queue_; }

    /** One-shot event nodes ever allocated (pool arena size). */
    std::size_t callbackPoolAllocated() const { return poolAllocated_; }

    /** One-shot event nodes currently free for reuse. */
    std::size_t callbackPoolFree() const { return freeList_.size(); }

    /** Peak simultaneously pending one-shot events. */
    std::size_t callbackPoolHighWater() const { return poolHighWater_; }

    /** Approximate bytes held by the one-shot event node arena. */
    std::size_t
    callbackArenaBytes() const
    {
        return poolAllocated_ * sizeof(CallbackEvent);
    }

    /** Record that a SimObject named @p name bound to this engine. */
    void attachObject(const std::string &name)
    {
        attachedNames_.push_back(name);
    }

    /**
     * Names of every SimObject constructed against this engine, in
     * construction order. Diagnostic: lets tests assert that a sharded
     * system's partition covers each component exactly once.
     */
    const std::vector<std::string> &attachedObjectNames() const
    {
        return attachedNames_;
    }

    /**
     * This engine's (shard-local) trace buffer, or nullptr when tracing
     * is disabled. obs::tracepoint() null-checks this on every call —
     * that null-check *is* the disabled-path cost.
     */
    obs::TraceBuffer *trace() const { return trace_; }

    /** The shared trace sink (lane interning), or nullptr. */
    obs::TraceSink *traceSink() const { return traceSink_; }

    /** Attach trace state; the caller keeps ownership of both. */
    void
    setTrace(obs::TraceSink *sink, obs::TraceBuffer *buffer)
    {
        traceSink_ = sink;
        trace_ = buffer;
    }

    /**
     * This engine's live-progress cell on the owning ShardedEngine's
     * ProgressBoard, or nullptr. runWindow() republishes tick/events/
     * backlog into it every 4096 events so a background sampler sees
     * liveness even inside one long window (or a serial drain); the
     * serve/flow subsystems bump its gauges from event context. Writes
     * are relaxed atomic stores — observation only, never an input.
     */
    obs::ShardCell *progressCell() const { return progress_; }

    /** Attach the progress cell; the caller keeps ownership. */
    void setProgressCell(obs::ShardCell *cell) { progress_ = cell; }

  private:
    /** A pooled one-shot event: fires its callback, then recycles. */
    class CallbackEvent final : public Event
    {
      public:
        void
        process() override
        {
            // Release before invoking: the callback may schedule new
            // one-shot events and should be able to reuse this node.
            EventFn local = std::move(fn);
            owner->releaseCallback(this);
            local();
        }

        EventFn fn;
        Engine *owner = nullptr;
    };

    /** Pooled nodes per slab; slabs are never freed while running. */
    static constexpr std::size_t kSlabSize = 64;

    /** Mid-window progress publish cadence: every 4096 events. */
    static constexpr std::uint64_t kProgressMask = 0xFFF;

    /** Relaxed-store tick/events/backlog into the progress cell. */
    void publishProgress();

    CallbackEvent *acquireCallback();

    void
    releaseCallback(CallbackEvent *ev)
    {
        freeList_.push_back(ev);
    }

    /** The engine dispatching on this thread (see current()). */
    static thread_local Engine *current_;

    EventQueue queue_;
    Tick now_ = 0;
    std::vector<std::uint64_t> scopedIds_;
    bool stopRequested_ = false;
    RunStatus lastRunStatus_ = RunStatus::Drained;
    std::uint64_t eventsExecuted_ = 0;

    std::vector<std::unique_ptr<CallbackEvent[]>> slabs_;
    std::vector<CallbackEvent *> freeList_;
    std::size_t poolAllocated_ = 0;
    std::size_t poolHighWater_ = 0;
    std::vector<std::string> attachedNames_;
    obs::TraceBuffer *trace_ = nullptr;
    obs::TraceSink *traceSink_ = nullptr;
    obs::ShardCell *progress_ = nullptr;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_ENGINE_HH
