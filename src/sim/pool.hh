/**
 * @file
 * Thread-local object pools with intrusive, non-atomic reference counts.
 *
 * Packets and flits are the simulator's highest-churn allocations: every
 * memory access materialises a packet plus a handful of flits that die
 * within a few thousand cycles. PooledPtr<T> replaces shared_ptr for
 * these objects: the reference count lives inside the object (no control
 * block), counting is plain integer arithmetic (no atomics — at most
 * one thread touches a pooled object at a time: a shard's window runs
 * on exactly one executor thread per round and the quantum barrier
 * orders rounds, see sharded_engine.hh), and a dead object returns to
 * the releasing thread's free list instead of the heap. Steady state
 * performs zero allocations: the pool grows to its high-water mark and
 * recycles from there. Slabs whose allocating thread exits retire into
 * a process-lifetime vault (see ~ObjectPool) so migrated nodes stay
 * valid.
 *
 * A pooled type T must
 *  - derive publicly from PoolRefCount,
 *  - be default-constructible, and
 *  - provide resetForReuse() restoring the default-constructed state
 *    (keeping any container capacity it wants to recycle).
 */

#ifndef NETCRAFTER_SIM_POOL_HH
#define NETCRAFTER_SIM_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace netcrafter::sim {

template <typename T> class ObjectPool;
template <typename T> class PooledPtr;

/**
 * Intrusive reference count base. Copying a pooled object copies its
 * payload, never its identity as a pool node, so the count stays put.
 */
class PoolRefCount
{
  public:
    PoolRefCount() = default;
    PoolRefCount(const PoolRefCount &) {}
    PoolRefCount &operator=(const PoolRefCount &) { return *this; }

  private:
    template <typename> friend class ObjectPool;
    template <typename> friend class PooledPtr;

    std::uint32_t poolRefs_ = 0;
};

/**
 * Slab-backed free list of T nodes. Access through local(): each thread
 * owns one pool per type, matching the one-system-per-thread execution
 * model of the parallel experiment scheduler.
 */
template <typename T>
class ObjectPool
{
  public:
    /** Nodes allocated per slab; slabs live for the whole process. */
    static constexpr std::size_t kSlabSize = 256;

    /** The calling thread's pool for T. */
    static ObjectPool &
    local()
    {
        thread_local ObjectPool pool;
        return pool;
    }

    ObjectPool() = default;
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /**
     * Retire this pool's slabs into a process-lifetime vault instead of
     * freeing them. A node is released to the *releasing* thread's free
     * list, so once the work-stealing executor runs a shard's window on
     * different host threads across rounds, nodes routinely migrate
     * between per-thread free lists — and a node parked on thread A's
     * free list (or still live inside a long-lived packet) must stay
     * valid after thread B, whose pool carved the slab, exits. The
     * vault is intentionally immortal: slabs retire at worker-thread
     * exit and stay resident until process teardown, which bounds the
     * cost at the high-water footprint of every exited thread.
     */
    ~ObjectPool()
    {
        if (slabs_.empty())
            return;
        std::lock_guard<std::mutex> lock(vaultMutex());
        auto &retired = *vaultSlabs();
        for (auto &slab : slabs_)
            retired.push_back(std::move(slab));
    }

    /** Slabs retired process-wide by exited threads (diagnostics). */
    static std::size_t
    retiredSlabs()
    {
        std::lock_guard<std::mutex> lock(vaultMutex());
        return vaultSlabs()->size();
    }

    /** Acquire a node in its default-constructed state, refcount 1. */
    PooledPtr<T>
    allocate()
    {
        if (free_.empty())
            grow();
        T *obj = free_.back();
        free_.pop_back();
        // Nodes released on this thread but carved by another thread's
        // pool land on this free list too (work stealing migrates
        // units between executors), so the free list can exceed this
        // pool's own arena — clamp instead of underflowing. The
        // high-water mark tracks net local liveness: a diagnostic of
        // this pool's footprint, not a global census.
        const std::size_t live =
            allocated_ > free_.size() ? allocated_ - free_.size() : 0;
        if (live > highWater_)
            highWater_ = live;
        return PooledPtr<T>(obj);
    }

    /** Nodes ever allocated (arena size in nodes). */
    std::size_t allocated() const { return allocated_; }

    /** Nodes currently free for reuse. */
    std::size_t freeCount() const { return free_.size(); }

    /** Peak simultaneously live nodes. */
    std::size_t highWater() const { return highWater_; }

    /** Approximate arena footprint (excludes per-node heap members). */
    std::size_t arenaBytes() const { return allocated_ * sizeof(T); }

  private:
    friend class PooledPtr<T>;

    void
    grow()
    {
        auto slab = std::make_unique<T[]>(kSlabSize);
        free_.reserve(free_.size() + kSlabSize);
        for (std::size_t i = kSlabSize; i-- > 0;)
            free_.push_back(&slab[i]);
        slabs_.push_back(std::move(slab));
        allocated_ += kSlabSize;
    }

    void
    release(T *obj)
    {
        // Reset before recycling: dropping nested PooledPtr members may
        // re-enter release() for other nodes, which is safe because the
        // free-list push happens after the reset completes.
        obj->resetForReuse();
        free_.push_back(obj);
    }

    static std::mutex &
    vaultMutex()
    {
        static std::mutex m;
        return m;
    }

    /**
     * Leaked singleton: the vault must outlive every thread_local pool,
     * including the main thread's (whose destructor runs during static
     * teardown), so it is never destroyed. Still reachable through this
     * pointer, so leak checkers stay quiet.
     */
    static std::vector<std::unique_ptr<T[]>> *
    vaultSlabs()
    {
        static auto *retired = new std::vector<std::unique_ptr<T[]>>();
        return retired;
    }

    std::vector<std::unique_ptr<T[]>> slabs_;
    std::vector<T *> free_;
    std::size_t allocated_ = 0;
    std::size_t highWater_ = 0;
};

/**
 * Shared-ownership handle to a pooled object. Drop-in for the subset of
 * shared_ptr the simulator uses: copy/move, get(), *, ->, bool,
 * (in)equality. When the last handle drops, the object is reset and
 * returned to the releasing thread's pool.
 */
template <typename T>
class PooledPtr
{
  public:
    PooledPtr() = default;
    PooledPtr(std::nullptr_t) {}

    PooledPtr(const PooledPtr &other) : obj_(other.obj_)
    {
        if (obj_)
            ++obj_->poolRefs_;
    }

    PooledPtr(PooledPtr &&other) noexcept : obj_(other.obj_)
    {
        other.obj_ = nullptr;
    }

    PooledPtr &
    operator=(const PooledPtr &other)
    {
        if (this != &other) {
            T *old = obj_;
            obj_ = other.obj_;
            if (obj_)
                ++obj_->poolRefs_;
            unref(old);
        }
        return *this;
    }

    PooledPtr &
    operator=(PooledPtr &&other) noexcept
    {
        if (this != &other) {
            T *old = obj_;
            obj_ = other.obj_;
            other.obj_ = nullptr;
            unref(old);
        }
        return *this;
    }

    PooledPtr &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    ~PooledPtr() { unref(obj_); }

    /** Drop this handle's reference. */
    void
    reset()
    {
        T *old = obj_;
        obj_ = nullptr;
        unref(old);
    }

    T *get() const { return obj_; }
    T &operator*() const { return *obj_; }
    T *operator->() const { return obj_; }
    explicit operator bool() const { return obj_ != nullptr; }

    friend bool
    operator==(const PooledPtr &a, const PooledPtr &b)
    {
        return a.obj_ == b.obj_;
    }
    friend bool
    operator!=(const PooledPtr &a, const PooledPtr &b)
    {
        return a.obj_ != b.obj_;
    }
    friend bool
    operator==(const PooledPtr &a, std::nullptr_t)
    {
        return a.obj_ == nullptr;
    }
    friend bool
    operator!=(const PooledPtr &a, std::nullptr_t)
    {
        return a.obj_ != nullptr;
    }

  private:
    friend class ObjectPool<T>;

    explicit PooledPtr(T *obj) : obj_(obj) { obj_->poolRefs_ = 1; }

    static void
    unref(T *obj)
    {
        if (obj != nullptr && --obj->poolRefs_ == 0)
            ObjectPool<T>::local().release(obj);
    }

    T *obj_ = nullptr;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_POOL_HH
