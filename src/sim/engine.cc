#include "src/sim/engine.hh"

#include <algorithm>

#include "src/obs/progress_board.hh"
#include "src/sim/logging.hh"

namespace netcrafter::sim {

void
Engine::scheduleAbs(Tick when, EventFn fn)
{
    NC_ASSERT(when >= now_, "event scheduled in the past: when=", when,
              " now=", now_);
    CallbackEvent *ev = acquireCallback();
    ev->fn = std::move(fn);
    queue_.schedule(*ev, when);
}

void
Engine::scheduleAbs(Event &ev, Tick when)
{
    NC_ASSERT(when >= now_, "event scheduled in the past: when=", when,
              " now=", now_);
    queue_.schedule(ev, when);
}

void
Engine::scheduleWireAbs(Tick when, EventFn fn)
{
    NC_ASSERT(when > now_, "wire event must be strictly in the future: "
                           "when=", when, " now=", now_);
    CallbackEvent *ev = acquireCallback();
    ev->fn = std::move(fn);
    ev->setPhase(kPhaseWire);
    queue_.schedule(*ev, when);
}

Engine::CallbackEvent *
Engine::acquireCallback()
{
    if (freeList_.empty()) {
        auto slab = std::make_unique<CallbackEvent[]>(kSlabSize);
        freeList_.reserve(poolAllocated_ + kSlabSize);
        for (std::size_t i = 0; i < kSlabSize; ++i) {
            slab[i].owner = this;
            freeList_.push_back(&slab[i]);
        }
        slabs_.push_back(std::move(slab));
        poolAllocated_ += kSlabSize;
    }
    CallbackEvent *ev = freeList_.back();
    freeList_.pop_back();
    ev->setPhase(kPhaseDefault); // recycled nodes may have been wire
    const std::size_t live = poolAllocated_ - freeList_.size();
    poolHighWater_ = std::max(poolHighWater_, live);
    return ev;
}

RunStatus
Engine::run(Tick limit)
{
    const RunStatus status = runWindow(limit);
    if (status == RunStatus::LimitHit) {
        // Advance to the cap so aborted runs report it as "now";
        // pending events all lie strictly beyond the limit.
        now_ = std::max(now_, limit);
    }
    return status;
}

thread_local Engine *Engine::current_ = nullptr;

namespace {

/** Scoped install of Engine::current_ around a dispatch loop. */
class CurrentEngineScope
{
  public:
    explicit CurrentEngineScope(Engine *engine, Engine *&slot)
        : slot_(slot), saved_(slot)
    {
        slot_ = engine;
    }
    ~CurrentEngineScope() { slot_ = saved_; }

    CurrentEngineScope(const CurrentEngineScope &) = delete;
    CurrentEngineScope &operator=(const CurrentEngineScope &) = delete;

  private:
    Engine *&slot_;
    Engine *saved_;
};

} // namespace

RunStatus
Engine::runWindow(Tick limit)
{
    const CurrentEngineScope scope(this, current_);
    stopRequested_ = false;
    while (!queue_.empty()) {
        if (queue_.nextTick() > limit)
            return lastRunStatus_ = RunStatus::LimitHit;
        Event *ev = queue_.pop();
        NC_ASSERT(ev->when() >= now_, "event queue went backwards");
        now_ = ev->when();
        ++eventsExecuted_;
        if ((eventsExecuted_ & kProgressMask) == 0 && progress_ != nullptr)
            publishProgress();
        ev->process();
        if (stopRequested_)
            return lastRunStatus_ = RunStatus::Stopped;
    }
    return lastRunStatus_ = RunStatus::Drained;
}

void
Engine::publishProgress()
{
    progress_->tick.store(now_, std::memory_order_relaxed);
    progress_->events.store(eventsExecuted_, std::memory_order_relaxed);
    progress_->backlog.store(queue_.size(), std::memory_order_relaxed);
}

} // namespace netcrafter::sim
