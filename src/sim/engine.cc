#include "src/sim/engine.hh"

#include "src/sim/logging.hh"

namespace netcrafter::sim {

void
Engine::scheduleAbs(Tick when, EventFn fn)
{
    NC_ASSERT(when >= now_, "event scheduled in the past: when=", when,
              " now=", now_);
    queue_.schedule(when, std::move(fn));
}

bool
Engine::run(Tick limit)
{
    stopRequested_ = false;
    while (!queue_.empty()) {
        if (queue_.nextTick() > limit)
            return false;
        Tick when = 0;
        EventFn fn = queue_.pop(when);
        NC_ASSERT(when >= now_, "event queue went backwards");
        now_ = when;
        ++eventsExecuted_;
        fn();
        if (stopRequested_)
            return false;
    }
    return true;
}

} // namespace netcrafter::sim
