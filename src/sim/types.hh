/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef NETCRAFTER_SIM_TYPES_HH
#define NETCRAFTER_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace netcrafter {

/** Simulation time, measured in core clock cycles (1 GHz). */
using Tick = std::uint64_t;

/** A virtual or physical memory address. */
using Addr = std::uint64_t;

/** Identifier of a GPU (chiplet) in the multi-GPU system. */
using GpuId = std::uint32_t;

/** Identifier of a GPU cluster (group of GPUs on a high-BW network). */
using ClusterId = std::uint32_t;

/** Sentinel meaning "no tick" / "never". */
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Sentinel for an invalid GPU id. */
inline constexpr GpuId kGpuInvalid = std::numeric_limits<GpuId>::max();

/** Bytes per cache line throughout the system (Table 2). */
inline constexpr std::uint32_t kCacheLineBytes = 64;

/** Bytes per OS/GPU page. */
inline constexpr std::uint32_t kPageBytes = 4096;

/** Threads per wavefront (AMD terminology; warp = 32 on NVIDIA). */
inline constexpr std::uint32_t kWavefrontSize = 64;

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Cache-line base address containing @p addr. */
constexpr Addr
lineAddr(Addr addr)
{
    return alignDown(addr, kCacheLineBytes);
}

/** Page base address containing @p addr. */
constexpr Addr
pageAddr(Addr addr)
{
    return alignDown(addr, kPageBytes);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace netcrafter

#endif // NETCRAFTER_SIM_TYPES_HH
