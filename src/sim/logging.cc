#include "src/sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace netcrafter {

bool
quietLogging()
{
    static const bool quiet = std::getenv("NETCRAFTER_QUIET") != nullptr;
    return quiet;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietLogging())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietLogging())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace netcrafter
