#include "src/sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace netcrafter {

namespace {

std::atomic<std::uint64_t> suppressed_warns{0};

} // namespace

bool
quietLogging()
{
    static const bool quiet = std::getenv("NETCRAFTER_QUIET") != nullptr;
    return quiet;
}

std::uint64_t
suppressedWarnCount()
{
    return suppressed_warns.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietLogging())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietLogging())
        std::cerr << "info: " << msg << std::endl;
}

void
noteSuppressedWarn()
{
    suppressed_warns.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail
} // namespace netcrafter
