/**
 * @file
 * Base class for named simulation components.
 */

#ifndef NETCRAFTER_SIM_SIM_OBJECT_HH
#define NETCRAFTER_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "src/sim/engine.hh"

namespace netcrafter::sim {

/**
 * A named component attached to an engine. Provides the scheduling
 * helpers every model needs and a hierarchical name for diagnostics.
 */
class SimObject
{
  public:
    SimObject(Engine &engine, std::string name)
        : engine_(engine), name_(std::move(name))
    {
        engine_.attachObject(name_);
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name, e.g. "gpu1.l2cache". */
    const std::string &name() const { return name_; }

    /** The engine this object is attached to. */
    Engine &engine() const { return engine_; }

    /** Current simulated time. */
    Tick now() const { return engine_.now(); }

  protected:
    /** Schedule a member callback @p delay cycles from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        engine_.schedule(delay, std::move(fn));
    }

  private:
    Engine &engine_;
    std::string name_;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SIM_OBJECT_HH
