/**
 * @file
 * Error-reporting helpers following the gem5 idiom: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (exit(1)), warn()
 * and inform() for non-fatal diagnostics.
 */

#ifndef NETCRAFTER_SIM_LOGGING_HH
#define NETCRAFTER_SIM_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace netcrafter {

namespace detail {

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Bump the process-wide count of warnings muted by NC_WARN_ONCE. */
void noteSuppressedWarn();

} // namespace detail

/** True when NETCRAFTER_QUIET is set; silences warn()/inform(). */
bool quietLogging();

/**
 * Total warnings swallowed by NC_WARN_ONCE call sites after their first
 * occurrence. Lets tests and end-of-run summaries surface how much spam
 * was suppressed.
 */
std::uint64_t suppressedWarnCount();

} // namespace netcrafter

/**
 * Report an internal simulator bug and abort. Use for conditions that can
 * never happen regardless of user input.
 */
#define NC_PANIC(...)                                                        \
    ::netcrafter::detail::panicImpl(__FILE__, __LINE__,                      \
                                    ::netcrafter::detail::concat(__VA_ARGS__))

/**
 * Report a user/configuration error and exit(1). Use for conditions caused
 * by invalid parameters rather than simulator bugs.
 */
#define NC_FATAL(...)                                                        \
    ::netcrafter::detail::fatalImpl(__FILE__, __LINE__,                      \
                                    ::netcrafter::detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define NC_WARN(...)                                                         \
    ::netcrafter::detail::warnImpl(::netcrafter::detail::concat(__VA_ARGS__))

/**
 * Rate-limited warning for per-packet-scale call sites: prints on the
 * first hit only, counting later hits into suppressedWarnCount() instead
 * of flooding stderr. Each call site gets its own counter; the counter is
 * process-wide, so a site stays muted across runs in the same process.
 */
#define NC_WARN_ONCE(...)                                                    \
    do {                                                                     \
        static std::atomic<std::uint64_t> nc_warn_once_hits{0};              \
        if (nc_warn_once_hits.fetch_add(1, std::memory_order_relaxed) ==     \
            0) {                                                             \
            NC_WARN(__VA_ARGS__,                                             \
                    " [further repeats of this warning suppressed]");        \
        } else {                                                             \
            ::netcrafter::detail::noteSuppressedWarn();                      \
        }                                                                    \
    } while (0)

/** Informative status message. */
#define NC_INFORM(...)                                                       \
    ::netcrafter::detail::informImpl(                                        \
        ::netcrafter::detail::concat(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define NC_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            NC_PANIC("assertion failed: " #cond " ", __VA_ARGS__);           \
        }                                                                    \
    } while (0)

#endif // NETCRAFTER_SIM_LOGGING_HH
