/**
 * @file
 * Error-reporting helpers following the gem5 idiom: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (exit(1)), warn()
 * and inform() for non-fatal diagnostics.
 */

#ifndef NETCRAFTER_SIM_LOGGING_HH
#define NETCRAFTER_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace netcrafter {

namespace detail {

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** True when NETCRAFTER_QUIET is set; silences warn()/inform(). */
bool quietLogging();

} // namespace netcrafter

/**
 * Report an internal simulator bug and abort. Use for conditions that can
 * never happen regardless of user input.
 */
#define NC_PANIC(...)                                                        \
    ::netcrafter::detail::panicImpl(__FILE__, __LINE__,                      \
                                    ::netcrafter::detail::concat(__VA_ARGS__))

/**
 * Report a user/configuration error and exit(1). Use for conditions caused
 * by invalid parameters rather than simulator bugs.
 */
#define NC_FATAL(...)                                                        \
    ::netcrafter::detail::fatalImpl(__FILE__, __LINE__,                      \
                                    ::netcrafter::detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define NC_WARN(...)                                                         \
    ::netcrafter::detail::warnImpl(::netcrafter::detail::concat(__VA_ARGS__))

/** Informative status message. */
#define NC_INFORM(...)                                                       \
    ::netcrafter::detail::informImpl(                                        \
        ::netcrafter::detail::concat(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define NC_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            NC_PANIC("assertion failed: " #cond " ", __VA_ARGS__);           \
        }                                                                    \
    } while (0)

#endif // NETCRAFTER_SIM_LOGGING_HH
