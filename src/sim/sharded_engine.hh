/**
 * @file
 * Conservative parallel discrete-event execution: one Engine per shard,
 * advancing in barrier-synchronized quanta bounded by the minimum
 * cross-shard wire latency (the classic conservative-PDES lookahead, as
 * in Graphite's barrier-synchronized cycle-level mode).
 *
 * The system is partitioned so that every component belongs to exactly
 * one shard and all same-cycle interactions stay inside a shard; the
 * only cross-shard traffic flows through latency-L wire channels
 * (noc::WireChannel). A flit departing at tick T arrives at T+L, so as
 * long as every shard stops at the end of a window of Q = min(L) ticks,
 * no shard can receive a message for a tick it has already simulated:
 *
 *     window = [m, m+Q-1], departure T >= m  =>  arrival T+L >= m+Q.
 *
 * Between windows all shards meet at a barrier where each channel's
 * outbox (written only by its source shard during the window) is
 * drained by the destination shard, which re-materializes the payload
 * into its own thread-local object pools (ownership transfer — pooled
 * objects have non-atomic refcounts and never cross threads) and
 * schedules the arrivals as wire-phase events in its own engine.
 * Wire-phase events fire before a tick's default events and same-tick
 * wire events commute, so execution is bit-identical to the serial
 * engine, which runs the very same channels inline on one Engine.
 *
 * Threading model: shard 0 runs on the caller's thread; shards 1..N-1
 * each own a persistent worker thread that parks between run() calls.
 * The same OS thread always drives the same shard for the lifetime of
 * the ShardedEngine, keeping thread-local pools and per-GPU packet-id
 * counters stable across kernels. A ShardedEngine must only be
 * destroyed after its runs drained completely (no pooled objects may
 * outlive the worker threads that own their arenas).
 */

#ifndef NETCRAFTER_SIM_SHARDED_ENGINE_HH
#define NETCRAFTER_SIM_SHARDED_ENGINE_HH

#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace netcrafter::sim {

/**
 * A directed cross-shard message queue, implemented by the wire
 * channels. During a window only the owning side writes; at the barrier
 * the opposite side drains. The barrier provides the happens-before
 * edge, so the queues themselves need no synchronization.
 */
class CrossShardPort
{
  public:
    virtual ~CrossShardPort() = default;

    /** Shard that produces flits (and consumes credit returns). */
    virtual unsigned srcShard() const = 0;

    /** Shard that consumes flits (and produces credit returns). */
    virtual unsigned dstShard() const = 0;

    /** Drain queued flits into the destination shard (its thread). */
    virtual void importAtDst() = 0;

    /** Drain queued credit returns into the source shard (its thread). */
    virtual void importAtSrc() = 0;

    /**
     * Entries still queued in this port's outboxes (flits not yet
     * imported at the destination plus credits not yet returned home).
     * The teardown census walks this; anything non-zero at destruction
     * means an aborted run left in-flight state behind.
     */
    virtual std::size_t pendingExports() const { return 0; }
};

/**
 * One conservative quantum as seen from a shard, on the host clock:
 * which window it covered, when the shard entered/left it (seconds
 * since the ShardedEngine's construction), and how many of its ticks
 * were barrier-imposed idle time. Feeds the host-time trace lanes.
 */
struct QuantumSpan
{
    Tick windowStart = 0;
    Tick windowEnd = 0;
    double hostBegin = 0;
    double hostEnd = 0;
    std::uint64_t stallTicks = 0;
};

/** Drives N shard Engines through conservative barrier-synced quanta. */
class ShardedEngine
{
  public:
    explicit ShardedEngine(unsigned shards);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /** Number of shards (1 = plain serial execution, no threads). */
    unsigned
    numShards() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    /** The engine of shard @p s; components bind to it at build time. */
    Engine &shard(unsigned s) { return *engines_[s]; }
    const Engine &shard(unsigned s) const { return *engines_[s]; }

    /**
     * Register a cross-shard channel endpoint. Must happen before the
     * first run(); registration order fixes the (deterministic) order
     * in which a shard drains its inboxes at each barrier.
     */
    void registerPort(CrossShardPort &port);

    /**
     * Set the conservative lookahead: the minimum latency over all
     * cross-shard channels, in ticks. Defaults to kTickNever (no
     * cross-shard traffic possible, a drain runs as one window).
     */
    void setLookahead(Tick ticks);

    /** The current lookahead. */
    Tick lookahead() const { return lookahead_; }

    /**
     * Drain every shard (or stop once the earliest pending event lies
     * beyond @p limit, returning LimitHit like Engine::run). With one
     * shard this is exactly Engine::run on the caller's thread.
     */
    RunStatus run(Tick limit = kTickNever);

    /**
     * Advance every shard's clock to the global maximum. Call after a
     * drained run(): shards stop at their own last event, but the next
     * kernel must dispatch from the same base tick the serial engine
     * would be at, and utilization denominators read now().
     */
    void alignClocks();

    /** Global time: the maximum over the shard clocks. */
    Tick now() const;

    /** Total events executed across all shards. */
    std::uint64_t eventsExecuted() const;

    /** Barrier-synchronized windows executed (0 when serial). */
    std::uint64_t quantaExecuted() const { return quantaExecuted_; }

    /**
     * Ticks at the tail of windows during which shard @p s had no
     * events left — idle time imposed by the conservative barrier.
     */
    std::uint64_t
    barrierStallTicks(unsigned s) const
    {
        return stallTicks_[s];
    }

    /** Sum of barrierStallTicks over all shards. */
    std::uint64_t totalBarrierStallTicks() const;

    /**
     * Record a QuantumSpan per shard per window (and one span per
     * serial run() call) for the host-time trace. Off by default: the
     * spans cost a clock read per window.
     */
    void setHostTimelineEnabled(bool on) { hostTimeline_ = on; }
    bool hostTimelineEnabled() const { return hostTimeline_; }

    /** Host-time spans recorded for shard @p s, in execution order. */
    const std::vector<QuantumSpan> &
    hostSpans(unsigned s) const
    {
        return hostSpans_[s];
    }

    /**
     * Teardown census: panics if any cross-shard outbox still holds
     * exports or any shard still has pending events. Call before
     * destroying a sharded system whose last run may have aborted
     * (Engine::run hit its limit): pending events can hold pooled
     * handles whose thread-local arenas die with the worker threads,
     * making later destruction undefined. No-op with one shard, where
     * every arena lives on the caller's thread.
     */
    void auditTeardown() const;

    /** Seconds since construction on the host steady clock. */
    double hostSeconds() const;

  private:
    struct Coordination;

    void decide() noexcept;
    void shardLoop(unsigned s);
    void workerMain(unsigned s);

    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<CrossShardPort *> ports_;
    Tick lookahead_ = kTickNever;

    std::unique_ptr<Coordination> coord_;
    std::vector<std::uint64_t> stallTicks_;
    std::uint64_t quantaExecuted_ = 0;

    bool hostTimeline_ = false;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::vector<QuantumSpan>> hostSpans_;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SHARDED_ENGINE_HH
