/**
 * @file
 * Conservative parallel discrete-event execution: one Engine per shard,
 * advancing in barrier-synchronized quanta bounded by conservative
 * lookahead (classic conservative PDES, as in Graphite's
 * barrier-synchronized cycle-level mode).
 *
 * The system is partitioned so that every component belongs to exactly
 * one shard and all same-cycle interactions stay inside a shard; the
 * only cross-shard traffic flows through latency-L wire channels
 * (noc::WireChannel). A flit departing at tick T arrives at T+L, so a
 * window is safe as long as nothing sent inside it can arrive inside
 * it. Two window policies exist (LookaheadMode):
 *
 *  - Fixed: the PR 3 bound. With Q = min(L) over every cross-shard
 *    channel, the window [m, m+Q-1] (m = global minimum pending tick)
 *    is safe: departure T >= m  =>  arrival T+L >= m+Q.
 *
 *  - Adaptive (default): per-quantum, per-shard. Shard s cannot execute
 *    anything before its earliest runnable tick N_s (its next pending
 *    event, or the earliest sealed cross-shard arrival addressed to
 *    it), so it cannot put anything on a wire before N_s either; the
 *    earliest tick at which shard s can make another shard's state
 *    change is N_s + L_s, where L_s is the minimum latency over the
 *    channels leaving s (flits it sources, credits it returns). The
 *    window [m, min_s(N_s + L_s) - 1] is therefore safe, and it is
 *    never smaller than the fixed window because N_s >= m and
 *    L_s >= Q. When no shard can emit at all (no registered channels
 *    leave it), the bound is infinite and every shard drains in one
 *    stride. Both inputs (N_s from the published next-event ticks and
 *    sealed mailboxes, L_s from registration-time channel latencies)
 *    are pre-barrier state computed once by the round coordinator, so
 *    every shard observes the same window: determinism is preserved.
 *
 * Between windows the shards meet at a single sense-reversing barrier:
 * a shared countdown of the round's active shards plus one doorbell
 * word per shard. The last shard to arrive becomes the coordinator: it
 * seals every channel's outbox (moving it to the import side), picks
 * the next window, chooses the next active set, and rings the
 * doorbells of exactly the shards that have work inside the window.
 * Each rung shard first drains the sealed mailboxes addressed to it —
 * re-materializing payloads into its own thread-local pools (pooled
 * objects have non-atomic refcounts and never cross threads) and
 * scheduling the arrivals as wire-phase events — then runs the window.
 * Wire-phase events fire before a tick's default events and same-tick
 * wire events commute, so execution stays bit-identical to the serial
 * engine, which runs the very same channels inline on one Engine.
 *
 * In Adaptive mode a shard with nothing runnable inside the window is
 * not woken at all: it stays parked in a futex-style wait on its
 * doorbell while the coordinator reuses its published next-event tick,
 * and it only pays for the rounds in which it participates (counted by
 * idleParks()). When a single shard has runnable events — the common
 * tail of a run — the coordinator role collapses onto that shard and
 * rounds proceed with no rendezvous at all (counted by
 * barrierRoundsSkipped()). FixedQuantum mode deliberately keeps the
 * PR 3 cost model — every shard executes every round and accrues the
 * full window-tail stall — so benchmarks can quantify the
 * synchronization tax the adaptive path removes against an unchanged
 * baseline.
 *
 * Threading model: shard 0 runs on the caller's thread; shards 1..N-1
 * each own a persistent worker thread that parks between run() calls.
 * The same OS thread always drives the same shard for the lifetime of
 * the ShardedEngine, keeping thread-local pools and per-GPU packet-id
 * counters stable across kernels. A ShardedEngine must only be
 * destroyed after its runs drained completely (no pooled objects may
 * outlive the worker threads that own their arenas).
 */

#ifndef NETCRAFTER_SIM_SHARDED_ENGINE_HH
#define NETCRAFTER_SIM_SHARDED_ENGINE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/types.hh"
#include "src/stats/stats.hh"

namespace netcrafter::sim {

/** How the sharded engine bounds each conservative window. */
enum class LookaheadMode : std::uint8_t
{
    /** Static window of min-channel-latency ticks (the PR 3 bound). */
    FixedQuantum,
    /** Per-quantum window from each shard's earliest possible
     *  cross-shard departure (next-event tick + min outgoing wire
     *  latency). Never smaller than the fixed window; bit-identical
     *  results. */
    Adaptive,
};

/** Process-wide default mode newly built ShardedEngines start in. */
void setDefaultLookaheadMode(LookaheadMode mode);
LookaheadMode defaultLookaheadMode();

/**
 * A directed cross-shard message queue, implemented by the wire
 * channels. During a window only the owning side writes to the outbox;
 * at the barrier the coordinator seals it (moves it to the import
 * side) and the opposite side drains the sealed entries at the start
 * of its next window. The barrier provides the happens-before edges,
 * so the queues themselves need no synchronization.
 */
class CrossShardPort
{
  public:
    virtual ~CrossShardPort() = default;

    /** Shard that produces flits (and consumes credit returns). */
    virtual unsigned srcShard() const = 0;

    /** Shard that consumes flits (and produces credit returns). */
    virtual unsigned dstShard() const = 0;

    /**
     * Minimum wire latency of any message this port can carry, in
     * ticks. Both directions for a wire channel (flits towards the
     * destination, credits back to the source) share the channel's
     * flight latency. Feeds the per-shard earliest-departure bound of
     * the adaptive lookahead; must be >= 1 and constant after
     * registration.
     */
    virtual Tick minLatency() const = 0;

    /**
     * Move everything currently queued in the outboxes to the sealed
     * import side, preserving order. Called only by the round
     * coordinator while every other shard is blocked, so it may touch
     * both sides without synchronization.
     */
    virtual void sealExports() = 0;

    /** Earliest sealed arrival tick addressed to the destination
     *  shard (flit deliveries), or kTickNever when none are queued. */
    virtual Tick earliestSealedArrivalAtDst() const = 0;

    /** Earliest sealed arrival tick addressed to the source shard
     *  (credit returns), or kTickNever. */
    virtual Tick earliestSealedArrivalAtSrc() const = 0;

    /** Drain sealed flits into the destination shard (its thread). */
    virtual void importAtDst() = 0;

    /** Drain sealed credit returns into the source shard (its thread). */
    virtual void importAtSrc() = 0;

    /**
     * Entries still queued in this port's outboxes and sealed inboxes
     * (flits not yet imported at the destination plus credits not yet
     * returned home). The teardown census walks this; anything
     * non-zero at destruction means an aborted run left in-flight
     * state behind.
     */
    virtual std::size_t pendingExports() const { return 0; }
};

/**
 * One conservative quantum as seen from a shard, on the host clock:
 * which window it covered, when the shard entered/left it (seconds
 * since the ShardedEngine's construction), and how many of its ticks
 * were barrier-imposed idle time. Feeds the host-time trace lanes.
 * Parked rounds record no span — the gaps in the timeline are the
 * rounds a shard slept through.
 */
struct QuantumSpan
{
    Tick windowStart = 0;
    Tick windowEnd = 0;
    double hostBegin = 0;
    double hostEnd = 0;
    std::uint64_t stallTicks = 0;
};

/** Drives N shard Engines through conservative barrier-synced quanta. */
class ShardedEngine
{
  public:
    explicit ShardedEngine(unsigned shards);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /** Number of shards (1 = plain serial execution, no threads). */
    unsigned
    numShards() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    /** The engine of shard @p s; components bind to it at build time. */
    Engine &shard(unsigned s) { return *engines_[s]; }
    const Engine &shard(unsigned s) const { return *engines_[s]; }

    /**
     * Register a cross-shard channel endpoint. Must happen before the
     * first run(); registration order fixes the (deterministic) order
     * in which a shard drains its inboxes at each barrier. The port's
     * minLatency() lowers the earliest-departure bound of both shards
     * it touches.
     */
    void registerPort(CrossShardPort &port);

    /**
     * Set the fixed conservative lookahead: the minimum latency over
     * all cross-shard channels, in ticks. Defaults to kTickNever (no
     * cross-shard traffic possible, a drain runs as one window). Used
     * directly by LookaheadMode::FixedQuantum; Adaptive derives its
     * (never smaller) bound from the registered ports instead.
     */
    void setLookahead(Tick ticks);

    /** The current fixed lookahead. */
    Tick lookahead() const { return lookahead_; }

    /** Select the window policy (default: the process-wide default). */
    void setLookaheadMode(LookaheadMode mode) { mode_ = mode; }
    LookaheadMode lookaheadMode() const { return mode_; }

    /**
     * Drain every shard (or stop once the earliest pending event lies
     * beyond @p limit, returning LimitHit like Engine::run). With one
     * shard this is exactly Engine::run on the caller's thread.
     */
    RunStatus run(Tick limit = kTickNever);

    /**
     * Advance every shard's clock to the global maximum. Call after a
     * drained run(): shards stop at their own last event, but the next
     * kernel must dispatch from the same base tick the serial engine
     * would be at, and utilization denominators read now().
     */
    void alignClocks();

    /** Global time: the maximum over the shard clocks. */
    Tick now() const;

    /** Total events executed across all shards. */
    std::uint64_t eventsExecuted() const;

    /** Barrier-synchronized windows executed (0 when serial). */
    std::uint64_t quantaExecuted() const { return quantaExecuted_; }

    /**
     * Ticks at the tail of windows a shard participated in during
     * which it had no events left — idle time imposed by the
     * conservative window. In Adaptive mode, rounds a shard slept
     * through entirely are counted by idleParks(), not here: a parked
     * shard costs neither host cycles nor a barrier slot. In
     * FixedQuantum mode every shard participates in every round, so
     * this accrues the full PR 3 synchronization tax.
     */
    std::uint64_t
    barrierStallTicks(unsigned s) const
    {
        return stallTicks_[s];
    }

    /** Sum of barrierStallTicks over all shards. */
    std::uint64_t totalBarrierStallTicks() const;

    /**
     * Rounds that ran without any barrier rendezvous because a single
     * shard had runnable events (the common tail of a run): the
     * coordinator role stays on that shard and no doorbell is rung.
     * Always 0 in FixedQuantum mode.
     */
    std::uint64_t barrierRoundsSkipped() const
    {
        return barrierRoundsSkipped_;
    }

    /**
     * Times a shard was left parked through a quantum round because
     * nothing inside the window concerned it (summed over rounds and
     * shards). Always 0 in FixedQuantum mode.
     */
    std::uint64_t idleParks() const { return idleParks_; }

    /**
     * Width in ticks of every bounded window executed, bucketed.
     * Unbounded drain-ahead windows (no shard can emit) are excluded;
     * compare total() against quantaExecuted() to count them.
     */
    const stats::Distribution &windowTicksDist() const
    {
        return windowDist_;
    }

    /** Mean/min/max over the same bounded window widths. */
    const stats::Average &windowTicksAvg() const { return windowAvg_; }

    /**
     * Record a QuantumSpan per shard per participated window (and one
     * span per serial run() call) for the host-time trace. Off by
     * default: the spans cost a clock read per window.
     */
    void setHostTimelineEnabled(bool on) { hostTimeline_ = on; }
    bool hostTimelineEnabled() const { return hostTimeline_; }

    /** Host-time spans recorded for shard @p s, in execution order. */
    const std::vector<QuantumSpan> &
    hostSpans(unsigned s) const
    {
        return hostSpans_[s];
    }

    /**
     * Teardown census: panics if any cross-shard outbox still holds
     * exports or any shard still has pending events. Call before
     * destroying a sharded system whose last run may have aborted
     * (Engine::run hit its limit): pending events can hold pooled
     * handles whose thread-local arenas die with the worker threads,
     * making later destruction undefined. No-op with one shard, where
     * every arena lives on the caller's thread.
     */
    void auditTeardown() const;

    /** Seconds since construction on the host steady clock. */
    double hostSeconds() const;

  private:
    struct Coordination;

    void decide() noexcept;
    void shardLoop(unsigned s);
    void workerMain(unsigned s);

    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<CrossShardPort *> ports_;
    Tick lookahead_ = kTickNever;
    LookaheadMode mode_ = defaultLookaheadMode();

    /** Min latency over channels leaving each shard (flit or credit
     *  direction), kTickNever when the shard cannot emit at all. */
    std::vector<Tick> minOutLatency_;

    std::unique_ptr<Coordination> coord_;
    std::vector<std::uint64_t> stallTicks_;
    std::uint64_t quantaExecuted_ = 0;
    std::uint64_t barrierRoundsSkipped_ = 0;
    std::uint64_t idleParks_ = 0;
    stats::Distribution windowDist_;
    stats::Average windowAvg_;

    bool hostTimeline_ = false;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::vector<QuantumSpan>> hostSpans_;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SHARDED_ENGINE_HH
