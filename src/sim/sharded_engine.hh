/**
 * @file
 * Conservative parallel discrete-event execution: one Engine per shard,
 * advancing in barrier-synchronized quanta bounded by the minimum
 * cross-shard wire latency (the classic conservative-PDES lookahead, as
 * in Graphite's barrier-synchronized cycle-level mode).
 *
 * The system is partitioned so that every component belongs to exactly
 * one shard and all same-cycle interactions stay inside a shard; the
 * only cross-shard traffic flows through latency-L wire channels
 * (noc::WireChannel). A flit departing at tick T arrives at T+L, so as
 * long as every shard stops at the end of a window of Q = min(L) ticks,
 * no shard can receive a message for a tick it has already simulated:
 *
 *     window = [m, m+Q-1], departure T >= m  =>  arrival T+L >= m+Q.
 *
 * Between windows all shards meet at a barrier where each channel's
 * outbox (written only by its source shard during the window) is
 * drained by the destination shard, which re-materializes the payload
 * into its own thread-local object pools (ownership transfer — pooled
 * objects have non-atomic refcounts and never cross threads) and
 * schedules the arrivals as wire-phase events in its own engine.
 * Wire-phase events fire before a tick's default events and same-tick
 * wire events commute, so execution is bit-identical to the serial
 * engine, which runs the very same channels inline on one Engine.
 *
 * Threading model: shard 0 runs on the caller's thread; shards 1..N-1
 * each own a persistent worker thread that parks between run() calls.
 * The same OS thread always drives the same shard for the lifetime of
 * the ShardedEngine, keeping thread-local pools and per-GPU packet-id
 * counters stable across kernels. A ShardedEngine must only be
 * destroyed after its runs drained completely (no pooled objects may
 * outlive the worker threads that own their arenas).
 */

#ifndef NETCRAFTER_SIM_SHARDED_ENGINE_HH
#define NETCRAFTER_SIM_SHARDED_ENGINE_HH

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace netcrafter::sim {

/**
 * A directed cross-shard message queue, implemented by the wire
 * channels. During a window only the owning side writes; at the barrier
 * the opposite side drains. The barrier provides the happens-before
 * edge, so the queues themselves need no synchronization.
 */
class CrossShardPort
{
  public:
    virtual ~CrossShardPort() = default;

    /** Shard that produces flits (and consumes credit returns). */
    virtual unsigned srcShard() const = 0;

    /** Shard that consumes flits (and produces credit returns). */
    virtual unsigned dstShard() const = 0;

    /** Drain queued flits into the destination shard (its thread). */
    virtual void importAtDst() = 0;

    /** Drain queued credit returns into the source shard (its thread). */
    virtual void importAtSrc() = 0;
};

/** Drives N shard Engines through conservative barrier-synced quanta. */
class ShardedEngine
{
  public:
    explicit ShardedEngine(unsigned shards);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /** Number of shards (1 = plain serial execution, no threads). */
    unsigned
    numShards() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    /** The engine of shard @p s; components bind to it at build time. */
    Engine &shard(unsigned s) { return *engines_[s]; }
    const Engine &shard(unsigned s) const { return *engines_[s]; }

    /**
     * Register a cross-shard channel endpoint. Must happen before the
     * first run(); registration order fixes the (deterministic) order
     * in which a shard drains its inboxes at each barrier.
     */
    void registerPort(CrossShardPort &port);

    /**
     * Set the conservative lookahead: the minimum latency over all
     * cross-shard channels, in ticks. Defaults to kTickNever (no
     * cross-shard traffic possible, a drain runs as one window).
     */
    void setLookahead(Tick ticks);

    /** The current lookahead. */
    Tick lookahead() const { return lookahead_; }

    /**
     * Drain every shard (or stop once the earliest pending event lies
     * beyond @p limit, returning LimitHit like Engine::run). With one
     * shard this is exactly Engine::run on the caller's thread.
     */
    RunStatus run(Tick limit = kTickNever);

    /**
     * Advance every shard's clock to the global maximum. Call after a
     * drained run(): shards stop at their own last event, but the next
     * kernel must dispatch from the same base tick the serial engine
     * would be at, and utilization denominators read now().
     */
    void alignClocks();

    /** Global time: the maximum over the shard clocks. */
    Tick now() const;

    /** Total events executed across all shards. */
    std::uint64_t eventsExecuted() const;

    /** Barrier-synchronized windows executed (0 when serial). */
    std::uint64_t quantaExecuted() const { return quantaExecuted_; }

    /**
     * Ticks at the tail of windows during which shard @p s had no
     * events left — idle time imposed by the conservative barrier.
     */
    std::uint64_t
    barrierStallTicks(unsigned s) const
    {
        return stallTicks_[s];
    }

    /** Sum of barrierStallTicks over all shards. */
    std::uint64_t totalBarrierStallTicks() const;

  private:
    struct Coordination;

    void decide() noexcept;
    void shardLoop(unsigned s);
    void workerMain(unsigned s);

    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<CrossShardPort *> ports_;
    Tick lookahead_ = kTickNever;

    std::unique_ptr<Coordination> coord_;
    std::vector<std::uint64_t> stallTicks_;
    std::uint64_t quantaExecuted_ = 0;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SHARDED_ENGINE_HH
