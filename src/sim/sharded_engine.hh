/**
 * @file
 * Conservative parallel discrete-event execution: one Engine per shard,
 * advancing in barrier-synchronized quanta bounded by conservative
 * lookahead (classic conservative PDES, as in Graphite's
 * barrier-synchronized cycle-level mode).
 *
 * The system is partitioned so that every component belongs to exactly
 * one shard and all same-cycle interactions stay inside a shard; the
 * only cross-shard traffic flows through latency-L wire channels
 * (noc::WireChannel). A flit departing at tick T arrives at T+L, so a
 * window is safe as long as nothing sent inside it can arrive inside
 * it. Two window policies exist (LookaheadMode):
 *
 *  - Fixed: the PR 3 bound. With Q = min(L) over every cross-shard
 *    channel, the window [m, m+Q-1] (m = global minimum pending tick)
 *    is safe: departure T >= m  =>  arrival T+L >= m+Q.
 *
 *  - Adaptive (default): per-quantum, per-shard. Shard s cannot execute
 *    anything before its earliest runnable tick N_s (its next pending
 *    event, or the earliest sealed cross-shard arrival addressed to
 *    it), so it cannot put anything on a wire before N_s either; the
 *    earliest tick at which shard s can make another shard's state
 *    change is N_s + L_s, where L_s is the minimum latency over the
 *    channels leaving s (flits it sources, credits it returns). The
 *    window [m, min_s(N_s + L_s) - 1] is therefore safe, and it is
 *    never smaller than the fixed window because N_s >= m and
 *    L_s >= Q. When no shard can emit at all (no registered channels
 *    leave it), the bound is infinite and every shard drains in one
 *    stride. Both inputs (N_s from the published next-event ticks and
 *    sealed mailboxes, L_s from registration-time channel latencies)
 *    are pre-barrier state computed once by the round coordinator, so
 *    every shard observes the same window: determinism is preserved.
 *
 * Execution model (PR 7): shards are deterministic work *partitions*,
 * host threads are *executors*, and the two are decoupled by
 * ExecPolicy. Each round, every active shard's whole window — import
 * its sealed cross-shard mailboxes, then Engine::runWindow to the
 * round's window end — is one indivisible work unit. The coordinator
 * publishes the round's units in a steal ledger ordered by published
 * backlog (most-loaded first, shard id as the tie-break); each woken
 * thread claims its *home* units first (shard s is homed on thread
 * s % T — affinity that keeps caches warm, not a correctness
 * requirement), then, when stealing is enabled, CAS-claims leftover
 * units off the top of the ledger. A claim word decides only WHICH
 * thread executes a unit, never WHAT the unit does: the unit's inputs
 * (window, sealed mailboxes, shard engine state) are all pre-barrier
 * state, packet-id counters live in the shard's Engine rather than in
 * thread-local storage, and pooled-object slabs outlive their
 * allocating thread (sim/pool.hh), so replaying the ledger on any
 * executor produces bit-identical results. Ingress stays pinned to the
 * owning shard: sealed mailboxes are drained into the destination
 * shard's engine by whichever thread executes that shard's unit,
 * before the unit's window runs, in port-registration order — exactly
 * the serial order.
 *
 * Between rounds the participating threads meet at a single
 * sense-reversing barrier: a shared countdown plus one doorbell word
 * per thread. The last thread to finish becomes the coordinator: it
 * seals every channel's outbox, picks the next window, chooses the
 * active shard set, builds the steal ledger, and rings the doorbells of
 * exactly the threads that have (or may steal) work. Parked shards cost
 * nothing (idleParks()); rounds with a single participating thread skip
 * the rendezvous entirely (barrierRoundsSkipped()). FixedQuantum mode
 * deliberately keeps the PR 3 cost model — every shard executes every
 * round and accrues the full window-tail stall — so benchmarks can
 * quantify the synchronization tax against an unchanged baseline.
 *
 * Stall accounting: barrierStallTicks keeps its PR 3/5 meaning — idle
 * sim-ticks at the tails of windows a shard participated in. Stealing
 * cannot change that number (the windows are fixed by the protocol);
 * what it changes is whether those ticks cost idle *host* time. A
 * unit's tail stall is "covered" when its executor went on to run
 * another unit in the same round (stolen or home-multiplexed) instead
 * of idling at the barrier; residualStallTicks() = total - covered is
 * the stall that still manifests as host idle time. Steal counters and
 * coverage depend on host scheduling and are diagnostics, never
 * measurements.
 *
 * Bounded relaxed windows (SyncMode::Relaxed with a non-zero skew
 * bound) are free-run regions, not tick fences, so the window-tail
 * rule would score fictional idleness there: a wide window's tail is
 * not a wait, because the round ends when its slowest participant
 * drains. Those rounds instead settle their stall at the next
 * decide(), once the laggard is known: each active shard is charged
 * from the tick its next runnable work existed (its own queue or a
 * sealed arrival — the same signal the strict active set uses to
 * grant idle parks) to the laggard's resume point. Ticks parked with
 * an empty horizon score zero, exactly as strict idle parks do, which
 * keeps the strict and relaxed stall columns comparable. The charge
 * is a pure function of pre-barrier simulation state, so it is
 * executor- and steal-policy-invariant like every other measurement.
 */

#ifndef NETCRAFTER_SIM_SHARDED_ENGINE_HH
#define NETCRAFTER_SIM_SHARDED_ENGINE_HH

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/progress_board.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"
#include "src/stats/stats.hh"

namespace netcrafter::sim {

/** How the sharded engine bounds each conservative window. */
enum class LookaheadMode : std::uint8_t
{
    /** Static window of min-channel-latency ticks (the PR 3 bound). */
    FixedQuantum,
    /** Per-quantum window from each shard's earliest possible
     *  cross-shard departure (next-event tick + min outgoing wire
     *  latency). Never smaller than the fixed window; bit-identical
     *  results. */
    Adaptive,
};

/** Process-wide default mode newly built ShardedEngines start in. */
void setDefaultLookaheadMode(LookaheadMode mode);
LookaheadMode defaultLookaheadMode();

/** How strictly the barrier protocol bounds cross-shard clock skew. */
enum class SyncMode : std::uint8_t
{
    /**
     * Conservative windows only (PR 3/5): nothing sent inside a window
     * can arrive inside it, so results are bit-identical to serial
     * execution at every shard count.
     */
    Strict,

    /**
     * Graphite-style bounded-skew free-running: each round's window is
     * widened to at least skewBound ticks past the slowest shard, so a
     * leading shard may run ahead of a cross-shard arrival addressed to
     * it. Such late arrivals are slotted at the receiver's current tick
     * (per-channel FIFO order and packet/byte conservation still hold
     * exactly — see noc::WireChannel::importAtDst). The doorbell
     * barrier degrades into a periodic epoch rendezvous used only for
     * skew-bound enforcement, ingress, and steal-ledger refresh.
     * Reproducible for a fixed (seed, shards, threads, skew bound) —
     * the epoch schedule is a pure function of pre-barrier sim state,
     * so it is executor-invariant like the strict protocol — but NOT
     * bit-identical to Strict; tools/audit-skew measures the accuracy
     * cost. A skew bound of 0 degenerates to exactly Strict.
     */
    Relaxed,
};

/** Stable lower-case name for a sync mode ("strict"/"relaxed"). */
const char *syncModeName(SyncMode mode);

/**
 * Synchronization policy of a sharded run: the mode plus the skew bound
 * S (in ticks) a Relaxed run may let a shard free-run past the slowest
 * shard. Ignored (and harmless) when the mode is Strict or the system
 * has one shard.
 */
struct SyncPolicy
{
    SyncMode mode = SyncMode::Strict;

    /**
     * Maximum ticks a shard may lead the slowest shard in Relaxed mode.
     * Each epoch window covers [m, max(adaptive_end, m + skewBound)],
     * so 0 reproduces the strict window exactly and larger bounds trade
     * rendezvous rounds for timing displacement on late arrivals. The
     * default equals interLinkLatency — the largest bound the committed
     * VALIDATE_relaxed.json certifies within the 2% error budget;
     * tools/audit-skew re-measures the cost of any larger bound (it
     * grows steeply: see the bench sweep in BENCH_relaxed.json).
     */
    Tick skewBound = 16;
};

/**
 * How a ShardedEngine maps shards (deterministic work partitions) onto
 * host threads (executors). Execution details only: every combination
 * produces bit-identical simulation results.
 */
struct ExecPolicy
{
    /**
     * Executor threads driving the shards; 0 means one per shard (the
     * classic PR 3 mapping). Clamped to [1, shards]. With fewer threads
     * than shards, thread t is home to shards {s : s % threads == t}
     * and multiplexes them within each round.
     */
    unsigned threads = 0;

    /**
     * Let a thread that drained its home units claim whole-window units
     * of other shards off the per-round steal ledger (most-loaded
     * first). Off by default; results are identical either way.
     */
    bool steal = false;

    /**
     * Steal granularity floor: a unit is only *steal*-eligible when its
     * shard's published backlog (pending events) is at least this many
     * events — home execution always covers every unit regardless.
     * Filters out steals whose migration cost (cold caches, pool-node
     * churn) exceeds the work moved.
     */
    std::uint32_t stealMinBacklog = 1;
};

/**
 * A directed cross-shard message queue, implemented by the wire
 * channels. During a window only the owning side writes to the outbox;
 * at the barrier the coordinator seals it (moves it to the import
 * side) and the opposite side drains the sealed entries at the start
 * of its next window. The barrier provides the happens-before edges,
 * so the queues themselves need no synchronization.
 */
class CrossShardPort
{
  public:
    virtual ~CrossShardPort() = default;

    /** Shard that produces flits (and consumes credit returns). */
    virtual unsigned srcShard() const = 0;

    /** Shard that consumes flits (and produces credit returns). */
    virtual unsigned dstShard() const = 0;

    /**
     * Minimum wire latency of any message this port can carry, in
     * ticks. Both directions for a wire channel (flits towards the
     * destination, credits back to the source) share the channel's
     * flight latency. Feeds the per-shard earliest-departure bound of
     * the adaptive lookahead; must be >= 1 and constant after
     * registration.
     */
    virtual Tick minLatency() const = 0;

    /**
     * Move everything currently queued in the outboxes to the sealed
     * import side, preserving order. Called only by the round
     * coordinator while every other thread is blocked, so it may touch
     * both sides without synchronization.
     */
    virtual void sealExports() = 0;

    /** Earliest sealed arrival tick addressed to the destination
     *  shard (flit deliveries), or kTickNever when none are queued. */
    virtual Tick earliestSealedArrivalAtDst() const = 0;

    /** Earliest sealed arrival tick addressed to the source shard
     *  (credit returns), or kTickNever. */
    virtual Tick earliestSealedArrivalAtSrc() const = 0;

    /** Drain sealed flits into the destination shard (on whichever
     *  thread executes the destination shard's unit this round). */
    virtual void importAtDst() = 0;

    /** Drain sealed credit returns into the source shard (on its
     *  unit's executor thread). */
    virtual void importAtSrc() = 0;

    /**
     * Entries still queued in this port's outboxes and sealed inboxes
     * (flits not yet imported at the destination plus credits not yet
     * returned home). The teardown census walks this; anything
     * non-zero at destruction means an aborted run left in-flight
     * state behind.
     */
    virtual std::size_t pendingExports() const { return 0; }
};

/**
 * One conservative quantum as seen from a shard, on the host clock:
 * which window it covered, when its unit entered/left it (seconds
 * since the ShardedEngine's construction), how many of its ticks were
 * barrier-imposed idle time, and which executor ran it. Feeds the
 * host-time trace lanes. Parked rounds record no span — the gaps in
 * the timeline are the rounds a shard slept through.
 */
struct QuantumSpan
{
    Tick windowStart = 0;
    Tick windowEnd = 0;
    double hostBegin = 0;
    double hostEnd = 0;
    std::uint64_t stallTicks = 0;

    /** Executor thread that ran this unit. */
    unsigned executor = 0;

    /** True when the executor was not the shard's home thread. */
    bool stolen = false;

    /** True when the executor ran another unit in the same round after
     *  this one, so stallTicks cost no idle host time. */
    bool covered = false;
};

/** One row of the per-round coordinator log (host-timeline only). */
struct RoundRecord
{
    std::uint64_t round = 0;
    double hostTime = 0;

    /** Active shards (= work units) in the round. */
    std::uint32_t units = 0;

    /** Threads woken for the round. */
    std::uint32_t threadsWoken = 0;

    /** Published-backlog spread max-min over the active shards (the
     *  donor/thief imbalance stealing exists to exploit). */
    std::uint64_t loadSpread = 0;

    /** Observed clock skew at this rendezvous (always 0 in Strict
     *  mode); the per-epoch sample behind maxObservedSkew(). */
    std::uint64_t maxSkew = 0;

    /** Cumulative per-phase host seconds (summed over threads) at the
     *  time the round was decided; zeros unless self-profiling is
     *  armed. Feeds the host-trace phase counter tracks. */
    std::array<double, obs::kPhaseCount> phaseSeconds{};
};

/** Drives N shard Engines through conservative barrier-synced quanta. */
class ShardedEngine
{
  public:
    explicit ShardedEngine(unsigned shards, ExecPolicy exec = {});
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /** Number of shards (1 = plain serial execution, no threads). */
    unsigned
    numShards() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    /** Executor threads (1 when serial; <= numShards() otherwise). */
    unsigned workThreads() const { return threads_; }

    /** The execution policy after clamping. */
    const ExecPolicy &execPolicy() const { return exec_; }

    /** The engine of shard @p s; components bind to it at build time. */
    Engine &shard(unsigned s) { return *engines_[s]; }
    const Engine &shard(unsigned s) const { return *engines_[s]; }

    /**
     * Register a cross-shard channel endpoint. Must happen before the
     * first run(); registration order fixes the (deterministic) order
     * in which a shard's unit drains its inboxes at each barrier. The
     * port's minLatency() lowers the earliest-departure bound of both
     * shards it touches.
     */
    void registerPort(CrossShardPort &port);

    /**
     * Set the fixed conservative lookahead: the minimum latency over
     * all cross-shard channels, in ticks. Defaults to kTickNever (no
     * cross-shard traffic possible, a drain runs as one window). Used
     * directly by LookaheadMode::FixedQuantum; Adaptive derives its
     * (never smaller) bound from the registered ports instead.
     */
    void setLookahead(Tick ticks);

    /** The current fixed lookahead. */
    Tick lookahead() const { return lookahead_; }

    /** Select the window policy (default: the process-wide default). */
    void setLookaheadMode(LookaheadMode mode) { mode_ = mode; }
    LookaheadMode lookaheadMode() const { return mode_; }

    /**
     * Select the synchronization policy. Must be set before the first
     * run(); the mode is part of the result's identity (a Relaxed run
     * is reproducible but not bit-identical to Strict), so it is fixed
     * for the engine's lifetime in practice.
     */
    void setSyncPolicy(SyncPolicy sync) { sync_ = sync; }
    const SyncPolicy &syncPolicy() const { return sync_; }
    SyncMode syncMode() const { return sync_.mode; }

    /**
     * Largest observed clock skew, in ticks: max over epochs of
     * (leading shard clock - slowest shard's next runnable tick),
     * sampled by the coordinator at each bounded-window rendezvous.
     * Always 0 in Strict mode (conservative windows keep every shard
     * inside the safe horizon); in Relaxed mode strictly below the
     * skew bound by construction — the widened window ends at
     * m + skewBound and the next epoch's floor advances by at least
     * the minimum cross-shard latency.
     */
    std::uint64_t maxObservedSkew() const { return maxObservedSkew_; }

    /** Mean/min/max observed skew over the same per-epoch samples. */
    const stats::Average &skewAvg() const { return skewAvg_; }

    /**
     * Drain every shard (or stop once the earliest pending event lies
     * beyond @p limit, returning LimitHit like Engine::run). With one
     * shard this is exactly Engine::run on the caller's thread.
     */
    RunStatus run(Tick limit = kTickNever);

    /**
     * Advance every shard's clock to the global maximum. Call after a
     * drained run(): shards stop at their own last event, but the next
     * kernel must dispatch from the same base tick the serial engine
     * would be at, and utilization denominators read now().
     */
    void alignClocks();

    /** Global time: the maximum over the shard clocks. */
    Tick now() const;

    /** Total events executed across all shards. */
    std::uint64_t eventsExecuted() const;

    /** Barrier-synchronized windows executed (0 when serial). */
    std::uint64_t quantaExecuted() const { return quantaExecuted_; }

    /**
     * Ticks at the tail of windows a shard participated in during
     * which it had no events left — idle time imposed by the
     * conservative window. Deterministic: a pure function of the round
     * protocol, identical for every thread count and steal schedule.
     * In Adaptive mode, rounds a shard slept through entirely are
     * counted by idleParks(), not here. In FixedQuantum mode every
     * shard participates in every round, so this accrues the full PR 3
     * synchronization tax.
     */
    std::uint64_t
    barrierStallTicks(unsigned s) const
    {
        return stallTicks_[s];
    }

    /** Sum of barrierStallTicks over all shards. */
    std::uint64_t totalBarrierStallTicks() const;

    /**
     * Window-tail stall ticks whose executor thread ran another unit
     * in the same round right after — exposure the steal/multiplex
     * schedule converted into useful host time. Host-schedule
     * dependent: a diagnostic, not a measurement.
     */
    std::uint64_t coveredStallTicks() const;

    /** totalBarrierStallTicks() minus coveredStallTicks(): the stall
     *  that still cost idle host time at the barrier. */
    std::uint64_t residualStallTicks() const;

    /** Ledger claims attempted by non-home threads (diagnostic). */
    std::uint64_t stealAttempts() const;

    /** Ledger claims won by non-home threads: units that actually
     *  executed away from their home thread (diagnostic). */
    std::uint64_t stealsWon() const;

    /** Ledger claims lost to a concurrent claimant (diagnostic). */
    std::uint64_t stealsAborted() const;

    /**
     * Mean/max published-backlog spread (max - min pending events over
     * the round's active shards), sampled once per round with >= 2
     * active shards. Deterministic: published loads are sim state.
     */
    const stats::Average &loadSpreadAvg() const { return loadSpread_; }

    /**
     * Rounds that ran without any barrier rendezvous because a single
     * thread participated (the common tail of a run): the coordinator
     * role stays on that thread and no doorbell rendezvous happens.
     * Always 0 in FixedQuantum mode with more than one thread.
     */
    std::uint64_t barrierRoundsSkipped() const
    {
        return barrierRoundsSkipped_;
    }

    /**
     * Times a shard was left parked through a quantum round because
     * nothing inside the window concerned it (summed over rounds and
     * shards). Always 0 in FixedQuantum mode.
     */
    std::uint64_t idleParks() const { return idleParks_; }

    /**
     * Width in ticks of every bounded window executed, bucketed.
     * Unbounded drain-ahead windows (no shard can emit) are excluded;
     * compare total() against quantaExecuted() to count them.
     */
    const stats::Distribution &windowTicksDist() const
    {
        return windowDist_;
    }

    /** Mean/min/max over the same bounded window widths. */
    const stats::Average &windowTicksAvg() const { return windowAvg_; }

    /**
     * Record a QuantumSpan per shard per participated window (and one
     * span per serial run() call) plus a RoundRecord per round for the
     * host-time trace. Off by default: the spans cost a clock read per
     * window.
     */
    void setHostTimelineEnabled(bool on) { hostTimeline_ = on; }
    bool hostTimelineEnabled() const { return hostTimeline_; }

    /** Host-time spans recorded for shard @p s, in execution order. */
    const std::vector<QuantumSpan> &
    hostSpans(unsigned s) const
    {
        return hostSpans_[s];
    }

    /** Per-round coordinator log (empty unless the host timeline is
     *  enabled). */
    const std::vector<RoundRecord> &roundLog() const { return roundLog_; }

    /**
     * Teardown census: panics if any cross-shard outbox still holds
     * exports or any shard still has pending events. Call before
     * destroying a sharded system whose last run may have aborted
     * (Engine::run hit its limit): pending events can hold pooled
     * handles, and while retired slabs keep the memory valid, leaked
     * in-flight state would silently skew any later run. No-op with
     * one shard.
     */
    void auditTeardown() const;

    /** Seconds since construction on the host steady clock. */
    double hostSeconds() const;

    /**
     * The lock-free live-progress board a background sampler
     * (obs::Telemetry) reads. Written unconditionally at window/round
     * granularity with relaxed stores — the cost is a handful of
     * stores per barrier round, never per event — so attaching or
     * detaching a sampler cannot perturb the simulation.
     */
    obs::ProgressBoard &progressBoard() { return board_; }
    const obs::ProgressBoard &progressBoard() const { return board_; }

    /**
     * Arm host-time self-profiling: scoped phase timers (execute /
     * barrier-wait / ingress / steal-scan / export) accumulated per
     * thread into the progress board. Off by default — armed, each
     * phase transition costs one steady-clock read on the executor.
     * Host-time diagnostics only; simulation results are identical
     * either way.
     */
    void setProfilingEnabled(bool on) { profiling_ = on; }
    bool profilingEnabled() const { return profiling_; }

    /** Attribute @p ns of host time to @p p (thread-0 row). The
     *  harness uses this to book artifact export against the run. */
    void
    addPhaseNanos(obs::Phase p, std::uint64_t ns)
    {
        board_.addPhaseNanos(0, p, ns);
    }

    /**
     * Flight-recorder snapshot for hang diagnosis: per-shard published
     * tick/events/backlog/next-event plus claim words, per-thread
     * doorbell words, pending cross-shard exports, the last few trace
     * records per shard, and the suspected stuck shard (earliest
     * published next-event tick with a non-empty backlog). Reads the
     * board and protocol atomics plus — best-effort — non-atomic
     * diagnostic state; meant to run when the engine is wedged or
     * quiescent, so racy reads cost accuracy, not safety-critical
     * state.
     */
    void dumpFlightRecord(std::ostream &os) const;

  private:
    struct Coordination;

    /** Per-thread phase-timer state; touched only by the owning
     *  thread. */
    struct PhaseClock
    {
        bool open = false;
        obs::Phase cur = obs::Phase::Execute;
        std::chrono::steady_clock::time_point last;
    };

    void phaseOpen(unsigned t, obs::Phase p);
    void phaseSwitch(unsigned t, obs::Phase next);
    void phaseFlush(unsigned t);

    /** Coordinator-exclusive: publish round-granularity board state. */
    void publishRound();

    /** Home executor of shard @p s under the round-robin map. */
    unsigned homeThread(unsigned s) const { return s % threads_; }

    void decide() noexcept;
    std::uint64_t execUnit(unsigned s, unsigned t);
    void threadLoop(unsigned t);
    void workerMain(unsigned t);

    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<CrossShardPort *> ports_;
    Tick lookahead_ = kTickNever;
    LookaheadMode mode_ = defaultLookaheadMode();
    SyncPolicy sync_;
    ExecPolicy exec_;
    unsigned threads_ = 1;

    /** Min latency over channels leaving each shard (flit or credit
     *  direction), kTickNever when the shard cannot emit at all. */
    std::vector<Tick> minOutLatency_;

    std::unique_ptr<Coordination> coord_;
    std::vector<std::uint64_t> stallTicks_;
    std::uint64_t quantaExecuted_ = 0;
    std::uint64_t barrierRoundsSkipped_ = 0;
    std::uint64_t idleParks_ = 0;
    stats::Distribution windowDist_;
    stats::Average windowAvg_;
    stats::Average loadSpread_;
    std::uint64_t maxObservedSkew_ = 0;
    stats::Average skewAvg_;

    // Per-thread executor tallies, written only by the owning thread
    // during rounds and read after runs complete.
    std::vector<std::uint64_t> stealAttempts_;
    std::vector<std::uint64_t> stealsWon_;
    std::vector<std::uint64_t> stealsAborted_;
    std::vector<std::uint64_t> coveredStall_;

    bool hostTimeline_ = false;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::vector<QuantumSpan>> hostSpans_;
    std::vector<RoundRecord> roundLog_;

    obs::ProgressBoard board_;
    bool profiling_ = false;
    std::vector<PhaseClock> phaseClocks_;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SHARDED_ENGINE_HH
