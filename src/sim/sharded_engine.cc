#include "src/sim/sharded_engine.hh"

#include <algorithm>
#include <atomic>

#include "src/sim/logging.hh"

namespace netcrafter::sim {

namespace {

/** Bounded-window widths, bucketed relative to the default fixed
 *  quantum of 16 ticks (cfg.interLinkLatency). */
const std::vector<double> kWindowBuckets = {16, 64, 256, 4096};

std::atomic<LookaheadMode> defaultMode{LookaheadMode::Adaptive};

/** a + b saturating at kTickNever (either operand may be the sentinel). */
Tick
satAdd(Tick a, Tick b)
{
    return b >= kTickNever - a ? kTickNever : a + b;
}

} // namespace

void
setDefaultLookaheadMode(LookaheadMode mode)
{
    defaultMode.store(mode, std::memory_order_relaxed);
}

LookaheadMode
defaultLookaheadMode()
{
    return defaultMode.load(std::memory_order_relaxed);
}

/**
 * Shared state of one parallel drain. The quantum barrier is a single
 * sense-reversing rendezvous: `pending` counts the active shards still
 * inside the current round, and the last one to decrement becomes the
 * round coordinator — it runs decide() with exclusive access (every
 * other shard is blocked on its doorbell) and publishes the next
 * window by ringing exactly the doorbells of the shards that have work
 * in it. The doorbell word doubles as the sense: even values 2r mean
 * "execute round r", odd values mean "the drain is over". Shards
 * futex-wait (std::atomic::wait) on their own doorbell, so a shard
 * with nothing to do sleeps through any number of rounds without
 * touching the barrier.
 *
 * The worker threads park on `cv` between run() calls and re-enter the
 * round loop when `generation` advances.
 */
struct ShardedEngine::Coordination
{
    explicit Coordination(unsigned n)
        : door(new std::atomic<std::uint64_t>[n]),
          nextTick(n, kTickNever), lower(n, kTickNever), active(n, 0)
    {
        for (unsigned s = 0; s < n; ++s)
            door[s].store(0, std::memory_order_relaxed);
    }

    /** Active shards still inside the current round. */
    std::atomic<std::uint32_t> pending{0};

    /** Per-shard doorbell/sense word (see above). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> door;

    /** Rounds decided so far; only the coordinator writes it. */
    std::uint64_t round = 0;

    // Decision inputs/outputs. Written by the coordinator, published
    // to the woken shards by the doorbell release/acquire pair.
    Tick limit = kTickNever;
    std::vector<Tick> nextTick;
    std::vector<Tick> lower;
    std::vector<char> active;
    Tick windowStart = 0;
    Tick windowEnd = kTickNever;
    RunStatus status = RunStatus::Drained;

    std::mutex m;
    std::condition_variable cv;
    std::uint64_t generation = 0;
    bool shutdown = false;

    std::vector<std::thread> threads;
};

ShardedEngine::ShardedEngine(unsigned shards)
    : windowDist_(kWindowBuckets),
      epoch_(std::chrono::steady_clock::now())
{
    NC_ASSERT(shards >= 1, "a system needs at least one shard");
    engines_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        engines_.push_back(std::make_unique<Engine>());
    stallTicks_.assign(shards, 0);
    minOutLatency_.assign(shards, kTickNever);
    hostSpans_.resize(shards);

    if (shards > 1) {
        coord_ = std::make_unique<Coordination>(shards);
        for (unsigned s = 1; s < shards; ++s)
            coord_->threads.emplace_back(
                [this, s] { workerMain(s); });
    }
}

ShardedEngine::~ShardedEngine()
{
    if (coord_) {
        {
            std::lock_guard<std::mutex> lk(coord_->m);
            coord_->shutdown = true;
        }
        coord_->cv.notify_all();
        for (auto &t : coord_->threads)
            t.join();
    }
}

void
ShardedEngine::registerPort(CrossShardPort &port)
{
    NC_ASSERT(port.srcShard() < numShards() &&
                  port.dstShard() < numShards(),
              "cross-shard port references an unknown shard");
    NC_ASSERT(port.srcShard() != port.dstShard(),
              "same-shard channels must not register for exchange");
    NC_ASSERT(port.minLatency() >= 1,
              "cross-shard port needs a positive wire latency");
    ports_.push_back(&port);
    // Flits leave the source shard and credits leave the destination,
    // so the channel bounds the earliest departure of both endpoints.
    minOutLatency_[port.srcShard()] =
        std::min(minOutLatency_[port.srcShard()], port.minLatency());
    minOutLatency_[port.dstShard()] =
        std::min(minOutLatency_[port.dstShard()], port.minLatency());
}

void
ShardedEngine::setLookahead(Tick ticks)
{
    NC_ASSERT(ticks >= 1, "conservative lookahead must be >= 1 tick");
    lookahead_ = ticks;
}

/**
 * Round coordinator: every active shard of the previous round has
 * published its earliest pending tick and arrived; every other shard
 * is parked on its doorbell. Seal the channel outboxes, derive the
 * per-shard earliest runnable ticks, pick the next window and its
 * active set, and ring exactly those doorbells (all of them when the
 * drain is over). Exclusive access throughout, so plain writes are
 * safe; every input is pre-barrier state, so any coordinator thread
 * computes the same decision — determinism does not depend on which
 * shard arrives last.
 */
void
ShardedEngine::decide() noexcept
{
    Coordination &c = *coord_;
    const unsigned n = numShards();

    // Seal: outboxes written during the window move to the import
    // side; sealed entries whose destination stayed parked remain
    // queued and keep contributing to the lower bounds below.
    for (CrossShardPort *port : ports_)
        port->sealExports();

    // Earliest runnable tick per shard: its own event queue or a
    // sealed cross-shard arrival addressed to it. Parked shards'
    // published next-event ticks stay valid — only a shard's own
    // thread ever runs its engine.
    for (unsigned s = 0; s < n; ++s)
        c.lower[s] = c.nextTick[s];
    for (const CrossShardPort *port : ports_) {
        c.lower[port->dstShard()] =
            std::min(c.lower[port->dstShard()],
                     port->earliestSealedArrivalAtDst());
        c.lower[port->srcShard()] =
            std::min(c.lower[port->srcShard()],
                     port->earliestSealedArrivalAtSrc());
    }

    Tick m = kTickNever;
    for (unsigned s = 0; s < n; ++s)
        m = std::min(m, c.lower[s]);

    if (m == kTickNever || m > c.limit) {
        c.status =
            m == kTickNever ? RunStatus::Drained : RunStatus::LimitHit;
        ++c.round;
        const std::uint64_t ring = 2 * c.round + 1;
        for (unsigned s = 0; s < n; ++s) {
            c.door[s].store(ring, std::memory_order_release);
            c.door[s].notify_one();
        }
        return;
    }

    Tick window_end;
    if (mode_ == LookaheadMode::Adaptive) {
        // Shard s cannot execute anything before lower[s], hence
        // cannot put anything on a wire before lower[s] either; the
        // earliest it can affect another shard is lower[s] + L_s with
        // L_s the fastest channel leaving it. Shards that cannot emit
        // impose no bound — when nobody can, everyone drains ahead in
        // one unbounded stride.
        window_end = kTickNever;
        for (unsigned s = 0; s < n; ++s) {
            if (minOutLatency_[s] == kTickNever)
                continue;
            const Tick horizon = satAdd(c.lower[s], minOutLatency_[s]);
            if (horizon != kTickNever)
                window_end = std::min(window_end, horizon - 1);
        }
    } else {
        // The PR 3 bound: a static quantum of the global minimum
        // cross-shard latency above the global minimum pending tick.
        window_end = satAdd(m, lookahead_ - 1);
    }
    window_end = std::min(window_end, c.limit);
    NC_ASSERT(window_end >= m, "quantum window excludes its own start");

    c.windowStart = m;
    c.windowEnd = window_end;
    ++quantaExecuted_;
    if (window_end != kTickNever) {
        const double width = static_cast<double>(window_end - m + 1);
        windowDist_.sample(width);
        windowAvg_.sample(width);
    }

    // Active set: shards with anything runnable inside the window.
    // Everyone else sleeps through the round on its doorbell — no
    // spinning through empty quanta, no barrier slot. The fixed-Q
    // baseline keeps the PR 3 cost model instead: every shard runs
    // every round and pays the full window-tail stall, which is
    // exactly the synchronization tax BENCH_parallel.json measures.
    std::uint32_t actives = 0;
    if (mode_ == LookaheadMode::Adaptive) {
        for (unsigned s = 0; s < n; ++s) {
            c.active[s] = c.lower[s] <= window_end ? 1 : 0;
            actives += static_cast<std::uint32_t>(c.active[s]);
        }
        idleParks_ += n - actives;
        if (actives == 1) {
            // Solo round: the coordinator role lands on (or migrates
            // to) the only runnable shard and no rendezvous happens
            // at all.
            ++barrierRoundsSkipped_;
        }
    } else {
        for (unsigned s = 0; s < n; ++s)
            c.active[s] = 1;
        actives = n;
    }

    c.pending.store(actives, std::memory_order_release);
    ++c.round;
    const std::uint64_t ring = 2 * c.round;
    for (unsigned s = 0; s < n; ++s) {
        if (!c.active[s])
            continue;
        c.door[s].store(ring, std::memory_order_release);
        c.door[s].notify_one();
    }
}

void
ShardedEngine::shardLoop(unsigned s)
{
    Engine &engine = *engines_[s];
    Coordination &c = *coord_;

    // Join the drain: publish the earliest pending tick and arrive.
    // The last shard in becomes the coordinator of the first round.
    c.nextTick[s] = engine.nextEventTick();
    std::uint64_t seen = c.door[s].load(std::memory_order_acquire);
    if (c.pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        decide();

    for (;;) {
        c.door[s].wait(seen, std::memory_order_acquire);
        seen = c.door[s].load(std::memory_order_acquire);
        if (seen & 1)
            return; // drain over; c.status is already published

        // Import phase: drain every sealed mailbox addressed to this
        // shard. Flits materialize on this (the destination) thread;
        // credit returns come home to the source side. The mailboxes
        // were sealed by the coordinator that rang this doorbell.
        for (CrossShardPort *port : ports_) {
            if (port->dstShard() == s)
                port->importAtDst();
            if (port->srcShard() == s)
                port->importAtSrc();
        }

        const Tick window_end = c.windowEnd;
        const double host_begin = hostTimeline_ ? hostSeconds() : 0;
        engine.runWindow(window_end);

        // Idle ticks at the window tail: the window forced this shard
        // to wait even though it had nothing left to simulate. An
        // unbounded drain-ahead window has no tail by construction.
        std::uint64_t stall = 0;
        if (window_end != kTickNever) {
            const Tick resume =
                std::max(engine.now() + 1, c.windowStart);
            stall = (window_end + 1) - std::min(window_end + 1, resume);
            stallTicks_[s] += stall;
        }

        if (hostTimeline_) {
            // hostSpans_[s] is only ever touched by shard s's thread.
            hostSpans_[s].push_back(QuantumSpan{
                c.windowStart,
                window_end == kTickNever ? engine.now() : window_end,
                host_begin, hostSeconds(), stall});
        }

        c.nextTick[s] = engine.nextEventTick();
        if (c.pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
            decide();
    }
}

void
ShardedEngine::workerMain(unsigned s)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(coord_->m);
            coord_->cv.wait(lk, [&] {
                return coord_->shutdown || coord_->generation != seen;
            });
            if (coord_->shutdown)
                return;
            seen = coord_->generation;
        }
        shardLoop(s);
    }
}

RunStatus
ShardedEngine::run(Tick limit)
{
    if (numShards() == 1) {
        if (!hostTimeline_)
            return engines_[0]->run(limit);
        // Serial runs have no quanta; record the whole drain as one
        // span so the host-time trace is populated either way.
        const Tick start_tick = engines_[0]->now();
        const double host_begin = hostSeconds();
        const RunStatus status = engines_[0]->run(limit);
        hostSpans_[0].push_back(QuantumSpan{
            start_tick, engines_[0]->now(), host_begin, hostSeconds(), 0});
        return status;
    }

    {
        std::lock_guard<std::mutex> lk(coord_->m);
        coord_->limit = limit;
        // Every shard joins the first round; a worker still unwinding
        // from the previous drain re-arrives through workerMain, so
        // the countdown never releases early.
        coord_->pending.store(numShards(), std::memory_order_release);
        ++coord_->generation;
    }
    coord_->cv.notify_all();
    shardLoop(0); // the caller drives shard 0
    return coord_->status;
}

void
ShardedEngine::alignClocks()
{
    const Tick global = now();
    for (auto &engine : engines_)
        engine->advanceNow(global);
}

Tick
ShardedEngine::now() const
{
    Tick global = 0;
    for (const auto &engine : engines_)
        global = std::max(global, engine->now());
    return global;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t sum = 0;
    for (const auto &engine : engines_)
        sum += engine->eventsExecuted();
    return sum;
}

std::uint64_t
ShardedEngine::totalBarrierStallTicks() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t ticks : stallTicks_)
        sum += ticks;
    return sum;
}

double
ShardedEngine::hostSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

void
ShardedEngine::auditTeardown() const
{
    if (numShards() == 1)
        return;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        const std::size_t pending = ports_[i]->pendingExports();
        if (pending != 0) {
            NC_PANIC("teardown census: cross-shard port #", i, " (",
                     ports_[i]->srcShard(), " -> ",
                     ports_[i]->dstShard(), ") still holds ", pending,
                     " queued exports; an aborted run left in-flight "
                     "state whose pooled arenas die with the worker "
                     "threads");
        }
    }
    for (unsigned s = 0; s < numShards(); ++s) {
        const std::size_t pending = engines_[s]->pendingEvents();
        if (pending != 0) {
            NC_PANIC("teardown census: shard ", s, " still has ", pending,
                     " pending events; pooled handles captured by those "
                     "events outlive the thread-local arenas that own "
                     "them");
        }
    }
}

} // namespace netcrafter::sim
