#include "src/sim/sharded_engine.hh"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <string>

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::sim {

namespace {

/** Bounded-window widths, bucketed relative to the default fixed
 *  quantum of 16 ticks (cfg.interLinkLatency). */
const std::vector<double> kWindowBuckets = {16, 64, 256, 4096};

std::atomic<LookaheadMode> defaultMode{LookaheadMode::Adaptive};

/** a + b saturating at kTickNever (either operand may be the sentinel). */
Tick
satAdd(Tick a, Tick b)
{
    return b >= kTickNever - a ? kTickNever : a + b;
}

} // namespace

void
setDefaultLookaheadMode(LookaheadMode mode)
{
    defaultMode.store(mode, std::memory_order_relaxed);
}

LookaheadMode
defaultLookaheadMode()
{
    return defaultMode.load(std::memory_order_relaxed);
}

const char *
syncModeName(SyncMode mode)
{
    switch (mode) {
      case SyncMode::Strict: return "strict";
      case SyncMode::Relaxed: return "relaxed";
    }
    return "(invalid)";
}

/**
 * Shared state of one parallel drain. The quantum barrier is a single
 * sense-reversing rendezvous: `pending` counts the woken threads still
 * inside the current round, and the last one to decrement becomes the
 * round coordinator — it runs decide() with exclusive access (every
 * other thread is parked on its doorbell) and publishes the next
 * window by ringing exactly the doorbells of the threads that have (or
 * may steal) work in it. The doorbell word doubles as the sense: even
 * values 2r mean "execute round r", odd values mean "the drain is
 * over". Threads futex-wait (std::atomic::wait) on their own doorbell,
 * so a thread with nothing to do sleeps through any number of rounds
 * without touching the barrier.
 *
 * Work units are claimed, not assigned: `claim[s]` holds the round
 * number in which shard s's unit was last claimed, and claiming unit s
 * for round r is a single CAS from the observed stale value (< r) to
 * r. Round numbers only ever grow, so the word never needs resetting
 * and a stale competitor simply loses the CAS. Counting *threads*
 * rather than units in `pending` is what makes the protocol safe: a
 * thread decrements only after its ledger scan is finished, so the
 * coordinator never rebuilds the ledger or the claim inputs while any
 * thread might still be reading them.
 *
 * The worker threads park on `cv` between run() calls and re-enter the
 * round loop when `generation` advances.
 */
struct ShardedEngine::Coordination
{
    Coordination(unsigned shards, unsigned threads)
        : door(new std::atomic<std::uint64_t>[threads]),
          claim(new std::atomic<std::uint64_t>[shards]),
          nextTick(shards, kTickNever), lower(shards, kTickNever),
          load(shards, 0), active(shards, 0), resume(shards, 0),
          ledger(shards, 0), woken(threads, 0)
    {
        for (unsigned t = 0; t < threads; ++t)
            door[t].store(0, std::memory_order_relaxed);
        for (unsigned s = 0; s < shards; ++s)
            claim[s].store(0, std::memory_order_relaxed);
    }

    /** Woken threads still inside the current round. */
    std::atomic<std::uint32_t> pending{0};

    /** Per-thread doorbell/sense word (see above). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> door;

    /** Per-shard claim word: the round that last claimed the unit. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> claim;

    /** Rounds decided so far; only the coordinator writes it. */
    std::uint64_t round = 0;

    // Decision inputs/outputs. Written by the coordinator, published
    // to the woken threads by the doorbell release/acquire pair.
    // nextTick and load are re-published by each unit's executor after
    // its window runs; nothing reads them again until the next
    // decide(), which the thread-counted barrier orders after every
    // executor's writes.
    Tick limit = kTickNever;
    std::vector<Tick> nextTick;
    std::vector<Tick> lower;
    std::vector<std::uint64_t> load;
    std::vector<char> active;

    /** Per-shard resume point (last executed tick + 1, floored at the
     *  window start) published by each unit's executor under a bounded
     *  relaxed window; the next decide() settles the round's
     *  rendezvous-wait stall from these. */
    std::vector<Tick> resume;

    /** Whether the previous round's rendezvous-wait stall has been
     *  charged; cleared each time a bounded relaxed window is issued
     *  so the settle runs exactly once per such round, even across
     *  run() calls. */
    char stallSettled = 1;

    /** Steal-eligible active shards, most-loaded first (shard id as
     *  the tie-break); only the first ledgerSize entries are valid.
     *  Read-only during a round — eligibility is frozen at decide()
     *  time so thieves never race the executors' load updates. */
    std::vector<unsigned> ledger;
    std::uint32_t ledgerSize = 0;

    /** Threads participating in the current round. */
    std::vector<char> woken;

    Tick windowStart = 0;
    Tick windowEnd = kTickNever;
    RunStatus status = RunStatus::Drained;

    std::mutex m;
    std::condition_variable cv;
    std::uint64_t generation = 0;
    bool shutdown = false;

    std::vector<std::thread> threads;
};

ShardedEngine::ShardedEngine(unsigned shards, ExecPolicy exec)
    : exec_(exec), windowDist_(kWindowBuckets),
      epoch_(std::chrono::steady_clock::now())
{
    NC_ASSERT(shards >= 1, "a system needs at least one shard");
    engines_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        engines_.push_back(std::make_unique<Engine>());
    stallTicks_.assign(shards, 0);
    minOutLatency_.assign(shards, kTickNever);
    hostSpans_.resize(shards);

    threads_ = exec.threads == 0 ? shards : exec.threads;
    threads_ = std::clamp(threads_, 1u, shards);
    exec_.threads = threads_;
    if (exec_.stealMinBacklog == 0)
        exec_.stealMinBacklog = 1;

    stealAttempts_.assign(threads_, 0);
    stealsWon_.assign(threads_, 0);
    stealsAborted_.assign(threads_, 0);
    coveredStall_.assign(threads_, 0);

    board_.init(shards, threads_);
    phaseClocks_.resize(threads_);
    for (unsigned s = 0; s < shards; ++s)
        engines_[s]->setProgressCell(&board_.cell(s));

    if (shards > 1) {
        coord_ = std::make_unique<Coordination>(shards, threads_);
        for (unsigned t = 1; t < threads_; ++t)
            coord_->threads.emplace_back(
                [this, t] { workerMain(t); });
    }
}

ShardedEngine::~ShardedEngine()
{
    if (coord_) {
        {
            std::lock_guard<std::mutex> lk(coord_->m);
            coord_->shutdown = true;
        }
        coord_->cv.notify_all();
        for (auto &t : coord_->threads)
            t.join();
    }
}

void
ShardedEngine::registerPort(CrossShardPort &port)
{
    NC_ASSERT(port.srcShard() < numShards() &&
                  port.dstShard() < numShards(),
              "cross-shard port references an unknown shard");
    NC_ASSERT(port.srcShard() != port.dstShard(),
              "same-shard channels must not register for exchange");
    NC_ASSERT(port.minLatency() >= 1,
              "cross-shard port needs a positive wire latency");
    ports_.push_back(&port);
    // Flits leave the source shard and credits leave the destination,
    // so the channel bounds the earliest departure of both endpoints.
    minOutLatency_[port.srcShard()] =
        std::min(minOutLatency_[port.srcShard()], port.minLatency());
    minOutLatency_[port.dstShard()] =
        std::min(minOutLatency_[port.dstShard()], port.minLatency());
}

void
ShardedEngine::setLookahead(Tick ticks)
{
    NC_ASSERT(ticks >= 1, "conservative lookahead must be >= 1 tick");
    lookahead_ = ticks;
}

/**
 * Round coordinator: every woken thread of the previous round has
 * finished its claims and arrived; every other thread is parked on its
 * doorbell. Seal the channel outboxes, derive the per-shard earliest
 * runnable ticks, pick the next window, its active set and its steal
 * ledger, choose which threads to wake, and ring exactly those
 * doorbells (all of them when the drain is over). Exclusive access
 * throughout, so plain writes are safe; every input is pre-barrier
 * state, so any coordinator thread computes the same decision —
 * determinism does not depend on which thread arrives last.
 */
void
ShardedEngine::decide() noexcept
{
    Coordination &c = *coord_;
    const unsigned n = numShards();

    // Seal: outboxes written during the window move to the import
    // side; sealed entries whose destination stayed parked remain
    // queued and keep contributing to the lower bounds below.
    for (CrossShardPort *port : ports_)
        port->sealExports();

    // Earliest runnable tick per shard: its own event queue or a
    // sealed cross-shard arrival addressed to it. Parked shards'
    // published next-event ticks stay valid — a shard's engine only
    // runs under a claimed unit, and claims are per-round exclusive.
    for (unsigned s = 0; s < n; ++s)
        c.lower[s] = c.nextTick[s];
    for (const CrossShardPort *port : ports_) {
        c.lower[port->dstShard()] =
            std::min(c.lower[port->dstShard()],
                     port->earliestSealedArrivalAtDst());
        c.lower[port->srcShard()] =
            std::min(c.lower[port->srcShard()],
                     port->earliestSealedArrivalAtSrc());
    }

    Tick m = kTickNever;
    for (unsigned s = 0; s < n; ++s)
        m = std::min(m, c.lower[s]);

    // Settle the previous bounded relaxed round's stall. A widened
    // window is a free-run region, not a tick fence: the round ends
    // when the slowest participant drains, so a shard stalls only
    // while it is parked at the rendezvous WITH runnable work pending
    // — from when its next work is ready (its own queue or a sealed
    // arrival, the same signal the strict active-set uses to grant
    // idle parks) until the laggard's resume point releases the round.
    // Ticks parked with an empty horizon are idle-park time, not
    // barrier tax, exactly as strict mode scores them. (Strict and
    // skew-bound-0 rounds keep the window-tail accounting in
    // execUnit; unbounded drain-ahead windows count nothing, as
    // before.) The laggard is only known once every unit retires,
    // hence the deferred charge here, under the coordinator's
    // exclusive access and after the lower bounds are current.
    if (!c.stallSettled) {
        c.stallSettled = 1;
        Tick lead = 0;
        for (unsigned s = 0; s < n; ++s)
            if (c.active[s])
                lead = std::max(lead, c.resume[s]);
        for (unsigned s = 0; s < n; ++s) {
            if (!c.active[s])
                continue;
            const Tick ready = std::max(c.resume[s], c.lower[s]);
            if (ready < lead)
                stallTicks_[s] += lead - ready;
        }
    }

    // Observed skew: how far the leading shard's clock ran past the
    // epoch floor the previous (bounded) window allowed. Sampled under
    // the coordinator's exclusive access — every executor's engine
    // writes happen-before this read via the arrival countdown. Strict
    // windows keep every clock at or below the next floor, so the
    // sample stream is all-zero there; unbounded drain-ahead windows
    // are skipped (no cross-shard traffic is possible inside them, so
    // there is no skew to bound).
    std::uint64_t observed_skew = 0;
    if (sync_.mode == SyncMode::Relaxed && m != kTickNever &&
        c.round > 0 && c.windowEnd != kTickNever) {
        Tick lead = 0;
        for (unsigned s = 0; s < n; ++s)
            lead = std::max(lead, engines_[s]->now());
        observed_skew = lead > m ? lead - m : 0;
        maxObservedSkew_ = std::max(maxObservedSkew_, observed_skew);
        skewAvg_.sample(static_cast<double>(observed_skew));
    }

    if (m == kTickNever || m > c.limit) {
        c.status =
            m == kTickNever ? RunStatus::Drained : RunStatus::LimitHit;
        ++c.round;
        publishRound();
        const std::uint64_t ring = 2 * c.round + 1;
        for (unsigned t = 0; t < threads_; ++t) {
            c.door[t].store(ring, std::memory_order_release);
            c.door[t].notify_one();
        }
        return;
    }

    Tick window_end;
    if (mode_ == LookaheadMode::Adaptive) {
        // Shard s cannot execute anything before lower[s], hence
        // cannot put anything on a wire before lower[s] either; the
        // earliest it can affect another shard is lower[s] + L_s with
        // L_s the fastest channel leaving it. Shards that cannot emit
        // impose no bound — when nobody can, everyone drains ahead in
        // one unbounded stride.
        window_end = kTickNever;
        for (unsigned s = 0; s < n; ++s) {
            if (minOutLatency_[s] == kTickNever)
                continue;
            const Tick horizon = satAdd(c.lower[s], minOutLatency_[s]);
            if (horizon != kTickNever)
                window_end = std::min(window_end, horizon - 1);
        }
    } else {
        // The PR 3 bound: a static quantum of the global minimum
        // cross-shard latency above the global minimum pending tick.
        window_end = satAdd(m, lookahead_ - 1);
    }
    if (sync_.mode == SyncMode::Relaxed) {
        // Bounded-skew epoch: widen the window so every shard may
        // free-run up to skewBound ticks past the epoch floor m. Taking
        // the max against the conservative bound keeps skewBound = 0
        // bit-identical to Strict, and wider bounds replace ~S/L
        // conservative rounds with one rendezvous. Arrivals generated
        // inside the widened window can land in a receiver's past;
        // importAtDst slots them at the receiver's current tick, which
        // is what caps the displacement at the skew bound.
        window_end = std::max(window_end, satAdd(m, sync_.skewBound));
    }
    window_end = std::min(window_end, c.limit);
    NC_ASSERT(window_end >= m, "quantum window excludes its own start");

    c.windowStart = m;
    c.windowEnd = window_end;
    c.stallSettled = sync_.mode == SyncMode::Relaxed &&
                             sync_.skewBound > 0 &&
                             window_end != kTickNever
                         ? 0
                         : 1;
    ++quantaExecuted_;
    if (window_end != kTickNever) {
        const double width = static_cast<double>(window_end - m + 1);
        windowDist_.sample(width);
        windowAvg_.sample(width);
    }

    // Active set: shards with anything runnable inside the window.
    // Everyone else sleeps through the round — no spinning through
    // empty quanta, no barrier slot. The fixed-Q baseline keeps the
    // PR 3 cost model instead: every shard runs every round and pays
    // the full window-tail stall, which is exactly the
    // synchronization tax BENCH_parallel.json measures.
    std::uint32_t actives = 0;
    if (mode_ == LookaheadMode::Adaptive) {
        for (unsigned s = 0; s < n; ++s) {
            c.active[s] = c.lower[s] <= window_end ? 1 : 0;
            actives += static_cast<std::uint32_t>(c.active[s]);
        }
        idleParks_ += n - actives;
    } else {
        for (unsigned s = 0; s < n; ++s)
            c.active[s] = 1;
        actives = n;
    }

    // Donor/thief imbalance: the published-backlog spread over the
    // round's units is the headroom stealing can exploit. Published
    // loads are simulation state, so the sample stream is
    // deterministic even though the steals themselves are not.
    std::uint64_t spread = 0;
    if (actives >= 2) {
        std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
        for (unsigned s = 0; s < n; ++s) {
            if (!c.active[s])
                continue;
            lo = std::min(lo, c.load[s]);
            hi = std::max(hi, c.load[s]);
        }
        spread = hi - lo;
        loadSpread_.sample(static_cast<double>(spread));
    }

    // Steal ledger: active units whose published backlog clears the
    // granularity floor, most-loaded first. Frozen here so the round's
    // thieves never read load[] while executors rewrite it.
    c.ledgerSize = 0;
    if (exec_.steal) {
        for (unsigned s = 0; s < n; ++s)
            if (c.active[s] && c.load[s] >= exec_.stealMinBacklog)
                c.ledger[c.ledgerSize++] = s;
        std::sort(c.ledger.begin(), c.ledger.begin() + c.ledgerSize,
                  [&c](unsigned a, unsigned b) {
                      if (c.load[a] != c.load[b])
                          return c.load[a] > c.load[b];
                      return a < b;
                  });
    }

    // Wake the home threads of every active unit — home coverage is
    // what guarantees each unit gets claimed even if no one steals —
    // plus, when stealing, spare threads (lowest index first) up to
    // one thread per unit. A spare can only claim off the ledger, so
    // it may occasionally wake to find everything already taken;
    // that costs one futile scan, never correctness.
    std::fill(c.woken.begin(), c.woken.end(), 0);
    std::uint32_t woken = 0;
    for (unsigned s = 0; s < n; ++s) {
        if (c.active[s] && !c.woken[homeThread(s)]) {
            c.woken[homeThread(s)] = 1;
            ++woken;
        }
    }
    if (exec_.steal) {
        const std::uint32_t target =
            std::min<std::uint32_t>(threads_, actives);
        for (unsigned t = 0; t < threads_ && woken < target; ++t) {
            if (!c.woken[t]) {
                c.woken[t] = 1;
                ++woken;
            }
        }
    }
    if (woken == 1) {
        // Solo round: the coordinator role lands on (or migrates to)
        // the only participating thread and no rendezvous happens.
        ++barrierRoundsSkipped_;
    }

    c.pending.store(woken, std::memory_order_release);
    ++c.round;
    publishRound();

    if (hostTimeline_) {
        RoundRecord rec{c.round, hostSeconds(), actives, woken, spread,
                        observed_skew};
        if (profiling_) {
            for (unsigned p = 0; p < obs::kPhaseCount; ++p)
                rec.phaseSeconds[p] =
                    board_.phaseSeconds(static_cast<obs::Phase>(p));
        }
        roundLog_.push_back(rec);
    }

    // Ring exactly `woken` doorbells and stop: the loop must not touch
    // c.woken after the final ring. Once the last woken thread's door
    // is released, that thread can execute, arrive last, and start the
    // NEXT round's decide() — which rebuilds c.woken. Every read here
    // is sequenced before some later release store on a door whose
    // thread the next round waits on, so stopping at the final ring is
    // what keeps this coordinator ordered before its successor.
    const std::uint64_t ring = 2 * c.round;
    for (unsigned t = 0, rung = 0; rung < woken; ++t) {
        if (!c.woken[t])
            continue;
        c.door[t].store(ring, std::memory_order_release);
        c.door[t].notify_one();
        ++rung;
    }
}

/**
 * Execute shard @p s's whole-window unit on thread @p t: drain the
 * sealed mailboxes addressed to the shard (registration order — the
 * serial order), run the window, account the window-tail stall, and
 * re-publish the shard's next-event tick and backlog for the next
 * decide(). Returns the unit's tail stall so the caller can mark it
 * covered if this thread goes on to run another unit this round.
 */
std::uint64_t
ShardedEngine::execUnit(unsigned s, unsigned t)
{
    Coordination &c = *coord_;
    Engine &engine = *engines_[s];

    // Import phase: flits materialize on the destination shard, credit
    // returns come home to the source side — pinned to the owning
    // shard's unit (not the executing thread), so arrival order is a
    // function of the partition alone.
    phaseSwitch(t, obs::Phase::Ingress);
    for (CrossShardPort *port : ports_) {
        if (port->dstShard() == s)
            port->importAtDst();
        if (port->srcShard() == s)
            port->importAtSrc();
    }

    const Tick window_end = c.windowEnd;
    const double host_begin = hostTimeline_ ? hostSeconds() : 0;
    phaseSwitch(t, obs::Phase::Execute);
    engine.runWindow(window_end);
    phaseSwitch(t, obs::Phase::StealScan);

    // Idle ticks at the window tail: the window forced this shard to
    // wait even though it had nothing left to simulate. An unbounded
    // drain-ahead window has no tail by construction, and a bounded
    // relaxed window is a free-run region whose rendezvous-wait stall
    // only settles at the next decide(), once the round's laggard is
    // known — publish the resume point for it instead of charging the
    // (mostly fictional) tick-fence tail here.
    std::uint64_t stall = 0;
    if (window_end != kTickNever) {
        const Tick resume = std::max(engine.now() + 1, c.windowStart);
        if (sync_.mode == SyncMode::Relaxed && sync_.skewBound > 0) {
            c.resume[s] = resume;
        } else {
            stall = (window_end + 1) - std::min(window_end + 1, resume);
            stallTicks_[s] += stall;
        }
    }

    if (hostTimeline_) {
        // hostSpans_[s] is only ever touched by the unit's executor,
        // and claims make that exclusive per round.
        QuantumSpan span;
        span.windowStart = c.windowStart;
        span.windowEnd = window_end == kTickNever ? engine.now()
                                                  : window_end;
        span.hostBegin = host_begin;
        span.hostEnd = hostSeconds();
        span.stallTicks = stall;
        span.executor = t;
        span.stolen = homeThread(s) != t;
        hostSpans_[s].push_back(span);
    }

    c.nextTick[s] = engine.nextEventTick();
    c.load[s] = engine.pendingEvents();

    // Live-progress publish: this thread holds the unit's claim, so it
    // is the only writer of the cell this round.
    obs::ShardCell &cell = board_.cell(s);
    cell.tick.store(engine.now(), std::memory_order_relaxed);
    cell.events.store(engine.eventsExecuted(), std::memory_order_relaxed);
    cell.backlog.store(c.load[s], std::memory_order_relaxed);
    cell.nextTick.store(c.nextTick[s], std::memory_order_relaxed);
    return stall;
}

void
ShardedEngine::threadLoop(unsigned t)
{
    Coordination &c = *coord_;
    const unsigned n = numShards();

    // Join the drain: publish the home shards' earliest pending ticks
    // and backlogs, then arrive. The last thread in becomes the
    // coordinator of the first round.
    for (unsigned s = t; s < n; s += threads_) {
        c.nextTick[s] = engines_[s]->nextEventTick();
        c.load[s] = engines_[s]->pendingEvents();
    }
    phaseOpen(t, obs::Phase::BarrierWait);
    std::uint64_t seen = c.door[t].load(std::memory_order_acquire);
    if (c.pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        decide();

    for (;;) {
        c.door[t].wait(seen, std::memory_order_acquire);
        seen = c.door[t].load(std::memory_order_acquire);
        if (seen & 1) {
            phaseFlush(t);
            return; // drain over; c.status is already published
        }
        const std::uint64_t r = seen / 2;
        phaseSwitch(t, obs::Phase::StealScan);

        // Tail-stall coverage: when this thread begins another unit in
        // the same round, the previous unit's window-tail stall cost
        // no idle host time — the thread was busy, not barrier-bound.
        std::uint64_t prev_stall = 0;
        unsigned prev_shard = 0;
        bool have_prev = false;
        const auto runUnit = [&](unsigned s) {
            if (have_prev) {
                coveredStall_[t] += prev_stall;
                if (hostTimeline_)
                    hostSpans_[prev_shard].back().covered = true;
            }
            prev_stall = execUnit(s, t);
            prev_shard = s;
            have_prev = true;
        };

        // Home pass: claim own units first, ascending shard order.
        // Every active unit's home thread is woken, so this pass alone
        // covers the round even with stealing disabled.
        for (unsigned s = t; s < n; s += threads_) {
            if (!c.active[s])
                continue;
            std::uint64_t stale =
                c.claim[s].load(std::memory_order_acquire);
            if (stale >= r)
                continue; // already stolen this round
            if (c.claim[s].compare_exchange_strong(
                    stale, r, std::memory_order_acq_rel))
                runUnit(s);
        }

        // Steal pass: walk the ledger (most-loaded donors first) and
        // CAS-claim leftover units. The claim decides only WHO runs
        // the unit; its window, mailboxes, and engine state were all
        // frozen at the barrier, so results are executor-invariant.
        if (exec_.steal) {
            for (std::uint32_t i = 0; i < c.ledgerSize; ++i) {
                const unsigned s = c.ledger[i];
                if (homeThread(s) == t)
                    continue;
                std::uint64_t stale =
                    c.claim[s].load(std::memory_order_acquire);
                if (stale >= r)
                    continue; // somebody already has it
                ++stealAttempts_[t];
                if (c.claim[s].compare_exchange_strong(
                        stale, r, std::memory_order_acq_rel)) {
                    ++stealsWon_[t];
                    runUnit(s);
                } else {
                    ++stealsAborted_[t];
                }
            }
        }

        // Arrive only after the scan is complete: the coordinator must
        // not rebuild the ledger while any thread could still read it.
        phaseSwitch(t, obs::Phase::BarrierWait);
        if (c.pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
            decide();
    }
}

void
ShardedEngine::workerMain(unsigned t)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(coord_->m);
            coord_->cv.wait(lk, [&] {
                return coord_->shutdown || coord_->generation != seen;
            });
            if (coord_->shutdown)
                return;
            seen = coord_->generation;
        }
        threadLoop(t);
    }
}

RunStatus
ShardedEngine::run(Tick limit)
{
    if (numShards() == 1) {
        Engine &engine = *engines_[0];
        const Tick start_tick = engine.now();
        const double host_begin = hostTimeline_ ? hostSeconds() : 0;
        phaseOpen(0, obs::Phase::Execute);
        const RunStatus status = engine.run(limit);
        phaseFlush(0);
        if (hostTimeline_) {
            // Serial runs have no quanta; record the whole drain as
            // one span so the host-time trace is populated either way.
            QuantumSpan span;
            span.windowStart = start_tick;
            span.windowEnd = engine.now();
            span.hostBegin = host_begin;
            span.hostEnd = hostSeconds();
            hostSpans_[0].push_back(span);
        }
        obs::ShardCell &cell = board_.cell(0);
        cell.tick.store(engine.now(), std::memory_order_relaxed);
        cell.events.store(engine.eventsExecuted(),
                          std::memory_order_relaxed);
        cell.backlog.store(engine.pendingEvents(),
                           std::memory_order_relaxed);
        cell.nextTick.store(engine.nextEventTick(),
                            std::memory_order_relaxed);
        return status;
    }

    {
        std::lock_guard<std::mutex> lk(coord_->m);
        coord_->limit = limit;
        // Every thread joins the first round; a worker still unwinding
        // from the previous drain re-arrives through workerMain, so
        // the countdown never releases early.
        coord_->pending.store(threads_, std::memory_order_release);
        ++coord_->generation;
    }
    coord_->cv.notify_all();
    threadLoop(0); // the caller drives thread 0
    return coord_->status;
}

void
ShardedEngine::alignClocks()
{
    const Tick global = now();
    for (auto &engine : engines_)
        engine->advanceNow(global);
}

Tick
ShardedEngine::now() const
{
    Tick global = 0;
    for (const auto &engine : engines_)
        global = std::max(global, engine->now());
    return global;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t sum = 0;
    for (const auto &engine : engines_)
        sum += engine->eventsExecuted();
    return sum;
}

std::uint64_t
ShardedEngine::totalBarrierStallTicks() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t ticks : stallTicks_)
        sum += ticks;
    return sum;
}

std::uint64_t
ShardedEngine::coveredStallTicks() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t ticks : coveredStall_)
        sum += ticks;
    return sum;
}

std::uint64_t
ShardedEngine::residualStallTicks() const
{
    return totalBarrierStallTicks() - coveredStallTicks();
}

std::uint64_t
ShardedEngine::stealAttempts() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : stealAttempts_)
        sum += v;
    return sum;
}

std::uint64_t
ShardedEngine::stealsWon() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : stealsWon_)
        sum += v;
    return sum;
}

std::uint64_t
ShardedEngine::stealsAborted() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : stealsAborted_)
        sum += v;
    return sum;
}

void
ShardedEngine::phaseOpen(unsigned t, obs::Phase p)
{
    if (!profiling_)
        return;
    PhaseClock &pc = phaseClocks_[t];
    pc.open = true;
    pc.cur = p;
    pc.last = std::chrono::steady_clock::now();
}

void
ShardedEngine::phaseSwitch(unsigned t, obs::Phase next)
{
    if (!profiling_)
        return;
    PhaseClock &pc = phaseClocks_[t];
    const auto now = std::chrono::steady_clock::now();
    if (pc.open) {
        board_.addPhaseNanos(
            t, pc.cur,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - pc.last)
                    .count()));
    }
    pc.open = true;
    pc.cur = next;
    pc.last = now;
}

void
ShardedEngine::phaseFlush(unsigned t)
{
    if (!profiling_)
        return;
    PhaseClock &pc = phaseClocks_[t];
    if (pc.open) {
        board_.addPhaseNanos(
            t, pc.cur,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - pc.last)
                    .count()));
    }
    pc.open = false;
}

void
ShardedEngine::publishRound()
{
    Coordination &c = *coord_;
    const unsigned n = numShards();

    board_.round.store(c.round, std::memory_order_relaxed);
    board_.windowStart.store(c.windowStart, std::memory_order_relaxed);
    board_.windowEnd.store(c.windowEnd, std::memory_order_relaxed);
    board_.quanta.store(quantaExecuted_, std::memory_order_relaxed);
    board_.idleParks.store(idleParks_, std::memory_order_relaxed);
    board_.maxSkew.store(maxObservedSkew_, std::memory_order_relaxed);

    // The executors' tallies are plain words, but every executor's
    // writes happen-before the coordinator via the thread-counted
    // arrival countdown, so summing them here is race-free.
    std::uint64_t stall = 0;
    for (unsigned s = 0; s < n; ++s)
        stall += stallTicks_[s];
    board_.stallTicks.store(stall, std::memory_order_relaxed);
    std::uint64_t won = 0;
    for (unsigned t = 0; t < threads_; ++t)
        won += stealsWon_[t];
    board_.stealsWon.store(won, std::memory_order_relaxed);

    for (unsigned s = 0; s < n; ++s)
        board_.cell(s).nextTick.store(c.nextTick[s],
                                      std::memory_order_relaxed);
}

void
ShardedEngine::dumpFlightRecord(std::ostream &os) const
{
    const unsigned n = numShards();
    const auto tick_str = [](Tick t) {
        return t == kTickNever ? std::string("never")
                               : std::to_string(t);
    };

    os << "--- flight record: " << n << " shard(s) x " << threads_
       << " thread(s), barrier round "
       << board_.round.load(std::memory_order_relaxed) << ", window ["
       << tick_str(board_.windowStart.load(std::memory_order_relaxed))
       << ", "
       << tick_str(board_.windowEnd.load(std::memory_order_relaxed))
       << "], quanta "
       << board_.quanta.load(std::memory_order_relaxed)
       << ", stall_ticks "
       << board_.stallTicks.load(std::memory_order_relaxed)
       << ", steals_won "
       << board_.stealsWon.load(std::memory_order_relaxed)
       << ", idle_parks "
       << board_.idleParks.load(std::memory_order_relaxed) << " ---\n";

    unsigned suspect = n;
    Tick suspect_next = kTickNever;
    for (unsigned s = 0; s < n; ++s) {
        const obs::ShardCell &cell = board_.cell(s);
        const Tick next =
            cell.nextTick.load(std::memory_order_relaxed);
        const std::uint64_t backlog =
            cell.backlog.load(std::memory_order_relaxed);
        os << "shard " << s << ": tick="
           << cell.tick.load(std::memory_order_relaxed)
           << " events=" << cell.events.load(std::memory_order_relaxed)
           << " backlog=" << backlog << " next=" << tick_str(next)
           << " claim_round="
           << (coord_ ? coord_->claim[s].load(std::memory_order_relaxed)
                      : 0)
           << " serve_inflight="
           << cell.serveInflight.load(std::memory_order_relaxed)
           << "\n";
        if (backlog > 0 && next < suspect_next) {
            suspect = s;
            suspect_next = next;
        }
    }

    if (coord_) {
        os << "doorbells:";
        for (unsigned t = 0; t < threads_; ++t)
            os << ' ' << coord_->door[t].load(std::memory_order_relaxed);
        os << "\n";
    }

    std::size_t pending_exports = 0;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        const std::size_t pending = ports_[i]->pendingExports();
        pending_exports += pending;
        if (pending != 0) {
            os << "port #" << i << " (" << ports_[i]->srcShard()
               << " -> " << ports_[i]->dstShard() << "): " << pending
               << " pending exports\n";
        }
    }
    os << "pending cross-shard exports: " << pending_exports << "\n";

    constexpr std::size_t kTailRecords = 8;
    for (unsigned s = 0; s < n; ++s) {
        const obs::TraceBuffer *tb = engines_[s]->trace();
        if (tb == nullptr || tb->records().empty())
            continue;
        const auto &recs = tb->records();
        const std::size_t first =
            recs.size() > kTailRecords ? recs.size() - kTailRecords : 0;
        os << "shard " << s << " trace tail (" << recs.size()
           << " records):\n";
        for (std::size_t i = first; i < recs.size(); ++i) {
            const obs::TraceRecord &rec = recs[i];
            os << "  tick=" << rec.tick << " stage="
               << obs::traceStageName(
                      static_cast<obs::TraceStage>(rec.stage))
               << " lane=" << rec.lane << " id=" << rec.id << "\n";
        }
    }

    if (suspect < n) {
        os << "suspect: shard " << suspect << " stuck at barrier round "
           << board_.round.load(std::memory_order_relaxed)
           << " (earliest next-event tick " << tick_str(suspect_next)
           << " with non-empty backlog)\n";
    } else {
        os << "suspect: none (no shard reports a backlog)\n";
    }
}

double
ShardedEngine::hostSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

void
ShardedEngine::auditTeardown() const
{
    if (numShards() == 1)
        return;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        const std::size_t pending = ports_[i]->pendingExports();
        if (pending != 0) {
            NC_PANIC("teardown census: cross-shard port #", i, " (",
                     ports_[i]->srcShard(), " -> ",
                     ports_[i]->dstShard(), ") still holds ", pending,
                     " queued exports; an aborted run left in-flight "
                     "state whose pooled arenas die with the worker "
                     "threads");
        }
    }
    for (unsigned s = 0; s < numShards(); ++s) {
        const std::size_t pending = engines_[s]->pendingEvents();
        if (pending != 0) {
            NC_PANIC("teardown census: shard ", s, " still has ", pending,
                     " pending events; pooled handles captured by those "
                     "events outlive the thread-local arenas that own "
                     "them");
        }
    }
}

} // namespace netcrafter::sim
