#include "src/sim/sharded_engine.hh"

#include <algorithm>

#include "src/sim/logging.hh"

namespace netcrafter::sim {

/**
 * Shared state of one parallel drain. Built once (shards > 1); the
 * worker threads park on `cv` between run() calls and re-enter the
 * barrier loop when `generation` advances.
 */
struct ShardedEngine::Coordination
{
    struct DecideFn
    {
        ShardedEngine *owner;
        void operator()() noexcept { owner->decide(); }
    };

    Coordination(unsigned n, ShardedEngine *owner)
        : decide(n, DecideFn{owner}), quiesce(n)
    {
    }

    /** End-of-import barrier; completion picks the next window. */
    std::barrier<DecideFn> decide;

    /** End-of-window barrier; outboxes are final once it releases. */
    std::barrier<> quiesce;

    std::mutex m;
    std::condition_variable cv;
    std::uint64_t generation = 0;
    bool shutdown = false;

    /** Inputs/outputs of the window decision (completion function). */
    Tick limit = kTickNever;
    std::vector<Tick> nextTick;
    Tick windowEnd = kTickNever;
    Tick windowStart = 0;
    bool stop = false;
    RunStatus status = RunStatus::Drained;

    std::vector<std::thread> threads;
};

ShardedEngine::ShardedEngine(unsigned shards)
    : epoch_(std::chrono::steady_clock::now())
{
    NC_ASSERT(shards >= 1, "a system needs at least one shard");
    engines_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        engines_.push_back(std::make_unique<Engine>());
    stallTicks_.assign(shards, 0);
    hostSpans_.resize(shards);

    if (shards > 1) {
        coord_ = std::make_unique<Coordination>(shards, this);
        coord_->nextTick.assign(shards, kTickNever);
        for (unsigned s = 1; s < shards; ++s)
            coord_->threads.emplace_back(
                [this, s] { workerMain(s); });
    }
}

ShardedEngine::~ShardedEngine()
{
    if (coord_) {
        {
            std::lock_guard<std::mutex> lk(coord_->m);
            coord_->shutdown = true;
        }
        coord_->cv.notify_all();
        for (auto &t : coord_->threads)
            t.join();
    }
}

void
ShardedEngine::registerPort(CrossShardPort &port)
{
    NC_ASSERT(port.srcShard() < numShards() &&
                  port.dstShard() < numShards(),
              "cross-shard port references an unknown shard");
    NC_ASSERT(port.srcShard() != port.dstShard(),
              "same-shard channels must not register for exchange");
    ports_.push_back(&port);
}

void
ShardedEngine::setLookahead(Tick ticks)
{
    NC_ASSERT(ticks >= 1, "conservative lookahead must be >= 1 tick");
    lookahead_ = ticks;
}

/**
 * Barrier completion: every shard has imported its mailboxes and
 * published its earliest pending tick. Pick the global window
 * [m, min(m + lookahead - 1, limit)], or stop when drained / past the
 * limit. Runs on exactly one (unspecified) thread while all others are
 * blocked in the barrier, so plain writes are safe.
 */
void
ShardedEngine::decide() noexcept
{
    Tick m = kTickNever;
    for (Tick t : coord_->nextTick)
        m = std::min(m, t);

    if (m == kTickNever) {
        coord_->stop = true;
        coord_->status = RunStatus::Drained;
        return;
    }
    if (m > coord_->limit) {
        coord_->stop = true;
        coord_->status = RunStatus::LimitHit;
        return;
    }
    coord_->stop = false;
    coord_->windowStart = m;
    const Tick cap = lookahead_ >= kTickNever - m
                         ? kTickNever
                         : m + lookahead_ - 1;
    coord_->windowEnd = std::min(cap, coord_->limit);
    ++quantaExecuted_;
}

void
ShardedEngine::shardLoop(unsigned s)
{
    Engine &engine = *engines_[s];
    for (;;) {
        // Import phase: drain every mailbox addressed to this shard.
        // Flits materialize on this (the destination) thread; credit
        // returns come home to the source side. Outboxes were sealed by
        // the previous quiesce barrier.
        for (CrossShardPort *port : ports_) {
            if (port->dstShard() == s)
                port->importAtDst();
            if (port->srcShard() == s)
                port->importAtSrc();
        }
        coord_->nextTick[s] = engine.nextEventTick();

        coord_->decide.arrive_and_wait();
        if (coord_->stop)
            return;

        const Tick window_end = coord_->windowEnd;
        const double host_begin = hostTimeline_ ? hostSeconds() : 0;
        engine.runWindow(window_end);

        // Idle ticks at the window tail: the barrier forced this shard
        // to wait even though it had nothing left to simulate.
        const Tick resume =
            std::max(engine.now() + 1, coord_->windowStart);
        const std::uint64_t stall =
            (window_end + 1) - std::min(window_end + 1, resume);
        stallTicks_[s] += stall;

        if (hostTimeline_) {
            // hostSpans_[s] is only ever touched by shard s's thread.
            hostSpans_[s].push_back(QuantumSpan{coord_->windowStart,
                                                window_end, host_begin,
                                                hostSeconds(), stall});
        }

        coord_->quiesce.arrive_and_wait();
    }
}

void
ShardedEngine::workerMain(unsigned s)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(coord_->m);
            coord_->cv.wait(lk, [&] {
                return coord_->shutdown || coord_->generation != seen;
            });
            if (coord_->shutdown)
                return;
            seen = coord_->generation;
        }
        shardLoop(s);
    }
}

RunStatus
ShardedEngine::run(Tick limit)
{
    if (numShards() == 1) {
        if (!hostTimeline_)
            return engines_[0]->run(limit);
        // Serial runs have no quanta; record the whole drain as one
        // span so the host-time trace is populated either way.
        const Tick start_tick = engines_[0]->now();
        const double host_begin = hostSeconds();
        const RunStatus status = engines_[0]->run(limit);
        hostSpans_[0].push_back(QuantumSpan{
            start_tick, engines_[0]->now(), host_begin, hostSeconds(), 0});
        return status;
    }

    {
        std::lock_guard<std::mutex> lk(coord_->m);
        coord_->limit = limit;
        ++coord_->generation;
    }
    coord_->cv.notify_all();
    shardLoop(0); // the caller drives shard 0
    return coord_->status;
}

void
ShardedEngine::alignClocks()
{
    const Tick global = now();
    for (auto &engine : engines_)
        engine->advanceNow(global);
}

Tick
ShardedEngine::now() const
{
    Tick global = 0;
    for (const auto &engine : engines_)
        global = std::max(global, engine->now());
    return global;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t sum = 0;
    for (const auto &engine : engines_)
        sum += engine->eventsExecuted();
    return sum;
}

std::uint64_t
ShardedEngine::totalBarrierStallTicks() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t ticks : stallTicks_)
        sum += ticks;
    return sum;
}

double
ShardedEngine::hostSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

void
ShardedEngine::auditTeardown() const
{
    if (numShards() == 1)
        return;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        const std::size_t pending = ports_[i]->pendingExports();
        if (pending != 0) {
            NC_PANIC("teardown census: cross-shard port #", i, " (",
                     ports_[i]->srcShard(), " -> ",
                     ports_[i]->dstShard(), ") still holds ", pending,
                     " queued exports; an aborted run left in-flight "
                     "state whose pooled arenas die with the worker "
                     "threads");
        }
    }
    for (unsigned s = 0; s < numShards(); ++s) {
        const std::size_t pending = engines_[s]->pendingEvents();
        if (pending != 0) {
            NC_PANIC("teardown census: shard ", s, " still has ", pending,
                     " pending events; pooled handles captured by those "
                     "events outlive the thread-local arenas that own "
                     "them");
        }
    }
}

} // namespace netcrafter::sim
