/**
 * @file
 * Intrusive simulation events (gem5-style). A component owns its Event
 * objects statically — scheduling one links it into the event queue
 * without any allocation. One-shot dynamic callbacks instead go through
 * Engine::schedule(Tick, EventFn), which recycles pooled event nodes.
 */

#ifndef NETCRAFTER_SIM_EVENT_HH
#define NETCRAFTER_SIM_EVENT_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace netcrafter::sim {

class EventQueue;

/**
 * Execution phase of an event within its tick. Same-tick events pop in
 * ascending (phase, sequence) order; the wire phase exists so that
 * cross-shard deliveries of the sharded engine (see sharded_engine.hh)
 * can be re-scheduled at a synchronization barrier without perturbing
 * the order the serial engine would have executed them in: wire-phase
 * events at one tick only touch disjoint channel state and therefore
 * commute with each other.
 */
enum : std::uint8_t
{
    /** Inter-cluster wire arrivals (flit deliveries, credit returns). */
    kPhaseWire = 0,
    /** Everything else. */
    kPhaseDefault = 1,
};

/**
 * Base class of everything the event queue can hold. The queue links
 * events intrusively: an Event must not be destroyed or rescheduled
 * while scheduled() is true.
 */
class Event
{
  public:
    Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event's tick is reached. */
    virtual void process() = 0;

    /** True while the event sits in an event queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event fires (or last fired) at. */
    Tick when() const { return when_; }

    /** Intra-tick execution phase (kPhaseWire or kPhaseDefault). */
    std::uint8_t phase() const { return phase_; }

    /**
     * Set the intra-tick phase. Must not be called while scheduled.
     * Wire-phase events must always be scheduled for a strictly future
     * tick: a wire event inserted at the tick currently draining would
     * fire after that tick's default-phase events.
     */
    void
    setPhase(std::uint8_t phase)
    {
        phase_ = phase;
    }

  protected:
    ~Event() = default;

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    std::uint8_t phase_ = kPhaseDefault;
    bool scheduled_ = false;
};

/**
 * An event that calls a member function on its owner — the common case
 * for statically owned events, with no indirection beyond the vtable:
 *
 *   struct Link { MemberEvent<Link, &Link::transfer> transferEvent_; };
 */
template <typename T, void (T::*Handler)()>
class MemberEvent : public Event
{
  public:
    explicit MemberEvent(T *obj) : obj_(obj) {}

    void process() override { (obj_->*Handler)(); }

  private:
    T *obj_;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_EVENT_HH
