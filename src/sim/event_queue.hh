/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 */

#ifndef NETCRAFTER_SIM_EVENT_QUEUE_HH
#define NETCRAFTER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/types.hh"

namespace netcrafter::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A min-heap of (tick, sequence) ordered events. Events scheduled for the
 * same tick fire in insertion order (FIFO), which keeps component behaviour
 * deterministic and easy to reason about.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p fn to run at absolute time @p when. */
    void
    schedule(Tick when, EventFn fn)
    {
        heap_.push_back(Entry{when, nextSeq_++, std::move(fn)});
        siftUp(heap_.size() - 1);
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event. Requires !empty(). */
    Tick nextTick() const { return heap_.front().when; }

    /** Remove and return the earliest event's callback. Requires !empty(). */
    EventFn
    pop(Tick &when_out)
    {
        Entry top = std::move(heap_.front());
        when_out = top.when;
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return std::move(top.fn);
    }

    /** Drop all pending events. */
    void
    clear()
    {
        heap_.clear();
        nextSeq_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;

        bool
        before(const Entry &other) const
        {
            return when < other.when ||
                   (when == other.when && seq < other.seq);
        }
    };

    void
    siftUp(std::size_t i)
    {
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!heap_[i].before(heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t l = 2 * i + 1;
            std::size_t r = 2 * i + 2;
            std::size_t best = i;
            if (l < n && heap_[l].before(heap_[best]))
                best = l;
            if (r < n && heap_[r].before(heap_[best]))
                best = r;
            if (best == i)
                break;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
    }

    std::vector<Entry> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_EVENT_QUEUE_HH
