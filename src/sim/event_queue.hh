/**
 * @file
 * The discrete-event queue at the heart of the simulator: a bucketed
 * near-future timing wheel backed by a binary heap for far-future
 * events.
 *
 * Almost every event a cycle-level model schedules lands within a few
 * cycles of "now" (links and switches wake at now+1, cache lookups a
 * handful of cycles out), so the wheel covers the next kWheelSlots
 * ticks with O(1) push/pop FIFO buckets and a 64-bit occupancy bitmap.
 * Rare long-delay events (DRAM latency, switch pipeline wakeups beyond
 * the horizon) overflow into a comparison-ordered heap and migrate
 * into the wheel as its base advances.
 *
 * Ordering contract: events pop in ascending (tick, phase,
 * schedule-sequence) order — same-tick same-phase events fire in exact
 * insertion order, keeping component behaviour deterministic, and
 * wire-phase events (cross-cluster flit deliveries and credit returns,
 * see event.hh) fire before a tick's default-phase events regardless of
 * when they were inserted. The sharded engine relies on that: it
 * re-schedules wire arrivals at quantum barriers, in an order that may
 * differ from the serial engine's insertion order, and phased popping
 * plus the commutativity of same-tick wire events keeps execution
 * bit-identical. Migration preserves the contract: a tick's bucket only
 * becomes reachable for direct scheduling after every farther-scheduled
 * event for that tick has migrated in (in phase+sequence order), so
 * per-phase bucket appends stay sorted.
 *
 * Contract change vs. the old queue: scheduling strictly before the
 * last popped tick is no longer supported (the engine never did this —
 * it asserts `when >= now()`).
 */

#ifndef NETCRAFTER_SIM_EVENT_QUEUE_HH
#define NETCRAFTER_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "src/sim/event.hh"
#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace netcrafter::sim {

/**
 * Timing-wheel event queue over intrusive Event objects. Events
 * scheduled for the same tick fire in insertion order (FIFO).
 */
class EventQueue
{
  public:
    /** Wheel horizon in ticks; must be a power of two. */
    static constexpr std::size_t kWheelSlots = 64;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Link @p ev into the queue to fire at absolute tick @p when. */
    void
    schedule(Event &ev, Tick when)
    {
        NC_ASSERT(!ev.scheduled_, "event scheduled twice");
        NC_ASSERT(when >= base_, "event scheduled before the queue's "
                                 "drain point: when=", when,
                  " base=", base_);
        ev.when_ = when;
        ev.seq_ = nextSeq_++;
        ev.scheduled_ = true;
        ++count_;
        if (when - base_ < kWheelSlots) {
            pushSlot(&ev);
            ++nearScheduled_;
        } else {
            heapPush(&ev);
            ++farScheduled_;
        }
    }

    /** True when no events remain. */
    bool empty() const { return count_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return count_; }

    /** Tick of the earliest pending event. Requires !empty(). */
    Tick
    nextTick() const
    {
        NC_ASSERT(count_ > 0, "nextTick() on empty event queue");
        if (wheelCount_ > 0)
            return base_ + firstOccupiedOffset();
        return heap_.front()->when_;
    }

    /**
     * Unlink and return the earliest event. Requires !empty(). The
     * returned event is no longer scheduled(); its when() gives the
     * firing tick.
     */
    Event *
    pop()
    {
        NC_ASSERT(count_ > 0, "pop() on empty event queue");
        if (wheelCount_ == 0)
            advanceTo(heap_.front()->when_);
        const Tick tick = base_ + firstOccupiedOffset();
        if (tick != base_)
            advanceTo(tick);

        Slot &slot = slots_[slotOf(tick)];
        Event *ev;
        if (slot.wireHead < slot.wire.size())
            ev = slot.wire[slot.wireHead++];
        else
            ev = slot.q[slot.head++];
        if (slot.wireHead == slot.wire.size() &&
            slot.head == slot.q.size()) {
            slot.wire.clear();
            slot.wireHead = 0;
            slot.q.clear();
            slot.head = 0;
            occupied_ &= ~(std::uint64_t{1} << slotOf(tick));
        }
        --wheelCount_;
        --count_;
        ev->scheduled_ = false;
        return ev;
    }

    /** Drop all pending events and reset the sequence counter. */
    void
    clear()
    {
        for (auto &slot : slots_) {
            for (std::size_t i = slot.wireHead; i < slot.wire.size();
                 ++i)
                slot.wire[i]->scheduled_ = false;
            slot.wire.clear();
            slot.wireHead = 0;
            for (std::size_t i = slot.head; i < slot.q.size(); ++i)
                slot.q[i]->scheduled_ = false;
            slot.q.clear();
            slot.head = 0;
        }
        for (Event *ev : heap_)
            ev->scheduled_ = false;
        heap_.clear();
        occupied_ = 0;
        wheelCount_ = 0;
        count_ = 0;
        nextSeq_ = 0;
        base_ = 0;
    }

    /** Events that went straight into the wheel (near-future). */
    std::uint64_t nearScheduled() const { return nearScheduled_; }

    /** Events that overflowed into the far-future heap. */
    std::uint64_t farScheduled() const { return farScheduled_; }

  private:
    struct Slot
    {
        /** Wire-phase FIFO bucket, drained before q (see event.hh). */
        std::vector<Event *> wire;
        std::size_t wireHead = 0;
        /** Default-phase FIFO bucket: push_back appends, head fronts. */
        std::vector<Event *> q;
        std::size_t head = 0;
    };

    static std::size_t
    slotOf(Tick when)
    {
        return static_cast<std::size_t>(when) & (kWheelSlots - 1);
    }

    void
    pushSlot(Event *ev)
    {
        const std::size_t s = slotOf(ev->when_);
        if (ev->phase_ == kPhaseWire)
            slots_[s].wire.push_back(ev);
        else
            slots_[s].q.push_back(ev);
        occupied_ |= std::uint64_t{1} << s;
        ++wheelCount_;
    }

    /** Offset from base_ of the earliest occupied slot. */
    std::size_t
    firstOccupiedOffset() const
    {
        // Rotate the bitmap so base_'s slot is bit 0; the lowest set
        // bit is then the distance to the earliest pending tick.
        const std::uint64_t rotated =
            std::rotr(occupied_, static_cast<int>(slotOf(base_)));
        return static_cast<std::size_t>(std::countr_zero(rotated));
    }

    /**
     * Advance the wheel base to @p tick (the next tick to drain) and
     * migrate far-future events that entered the extended horizon.
     * Newly covered ticks had empty buckets, and the heap pops in
     * (tick, seq) order, so per-bucket FIFO order stays exact.
     */
    void
    advanceTo(Tick tick)
    {
        base_ = tick;
        while (!heap_.empty() && heap_.front()->when_ - base_ < kWheelSlots) {
            pushSlot(heapPop());
        }
    }

    static bool
    before(const Event *a, const Event *b)
    {
        if (a->when_ != b->when_)
            return a->when_ < b->when_;
        if (a->phase_ != b->phase_)
            return a->phase_ < b->phase_;
        return a->seq_ < b->seq_;
    }

    void
    heapPush(Event *ev)
    {
        heap_.push_back(ev);
        std::size_t i = heap_.size() - 1;
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!before(heap_[i], heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    Event *
    heapPop()
    {
        Event *top = heap_.front();
        heap_.front() = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        std::size_t i = 0;
        for (;;) {
            std::size_t l = 2 * i + 1;
            std::size_t r = 2 * i + 2;
            std::size_t best = i;
            if (l < n && before(heap_[l], heap_[best]))
                best = l;
            if (r < n && before(heap_[r], heap_[best]))
                best = r;
            if (best == i)
                break;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
        return top;
    }

    Slot slots_[kWheelSlots];
    std::uint64_t occupied_ = 0;
    Tick base_ = 0;
    std::size_t wheelCount_ = 0;

    std::vector<Event *> heap_;
    std::uint64_t nextSeq_ = 0;
    std::size_t count_ = 0;

    std::uint64_t nearScheduled_ = 0;
    std::uint64_t farScheduled_ = 0;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_EVENT_QUEUE_HH
