/**
 * @file
 * SelfScheduling: the "wake me once per cycle" pattern shared by the
 * link, switch, RDMA and NetCrafter-controller models. Each of these
 * components sleeps when idle and is woken by buffer hooks; a wake
 * schedules the component's handler one cycle out unless a wake is
 * already pending, so N hook invocations in a cycle cost one event.
 */

#ifndef NETCRAFTER_SIM_SELF_SCHEDULING_HH
#define NETCRAFTER_SIM_SELF_SCHEDULING_HH

#include "src/sim/engine.hh"

namespace netcrafter::sim {

/**
 * Idempotent next-cycle wake-up for a component handler.
 *
 * The handler acknowledges the wake by calling clearPending() — at its
 * start in the common case, or after any "already ran this tick" guard
 * for components that can also be woken through long-delay events (the
 * switch). Clearing inside the handler rather than at fire time keeps
 * a component's wake accounting exact when stale wakes and fresh
 * notifies interleave on the same tick.
 *
 *   class Link {
 *     SelfScheduling<Link, &Link::transfer> wake_;
 *     void transfer() { wake_.clearPending(); ... }
 *   };
 */
template <typename T, void (T::*Handler)()>
class SelfScheduling
{
  public:
    SelfScheduling(Engine &engine, T *obj) : engine_(engine), obj_(obj)
    {}

    SelfScheduling(const SelfScheduling &) = delete;
    SelfScheduling &operator=(const SelfScheduling &) = delete;

    /** Schedule the handler at now+1 unless a wake is already pending. */
    void
    notify()
    {
        if (pending_)
            return;
        pending_ = true;
        engine_.schedule(1, [this] { (obj_->*Handler)(); });
    }

    /** Handler-side acknowledgement that the wake was consumed. */
    void clearPending() { pending_ = false; }

    /** True while a wake is scheduled but not yet acknowledged. */
    bool pending() const { return pending_; }

  private:
    Engine &engine_;
    T *obj_;
    bool pending_ = false;
};

} // namespace netcrafter::sim

#endif // NETCRAFTER_SIM_SELF_SCHEDULING_HH
