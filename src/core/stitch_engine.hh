/**
 * @file
 * The Stitching Engine (Section 4.2 / 4.4): combines partly-filled flits
 * headed for the same destination cluster into a single wire flit, and
 * performs the inverse un-stitching at the receiving end.
 *
 * Two candidate shapes exist:
 *  - a *whole-packet* candidate (a single-flit packet, header+payload)
 *    stitches at zero overhead;
 *  - a *partial* candidate (a payload-only continuation flit) needs a
 *    2B identification tag and a 1B Size field prepended so the receiver
 *    can reunite it with the rest of its packet.
 */

#ifndef NETCRAFTER_CORE_STITCH_ENGINE_HH
#define NETCRAFTER_CORE_STITCH_ENGINE_HH

#include <cstdint>
#include <vector>

#include "src/noc/flit.hh"

namespace netcrafter::core {

/** Statistics kept by a stitching engine instance. */
struct StitchStats
{
    /** Parent flits that absorbed at least one candidate. */
    std::uint64_t parentsStitched = 0;

    /** Candidate flits absorbed (wire flits saved). */
    std::uint64_t candidatesAbsorbed = 0;

    /** Useful candidate bytes moved into parents. */
    std::uint64_t candidateBytes = 0;

    /** Metadata overhead bytes added for partial candidates. */
    std::uint64_t metadataBytes = 0;

    /** Stitched wire flits taken apart at the receive side. */
    std::uint64_t unstitched = 0;
};

/** Performs stitching at the egress and un-stitching at the ingress. */
class StitchEngine
{
  public:
    /**
     * Whether @p candidate fits into @p parent's free bytes. Destination
     * compatibility (same cluster) is the Cluster Queue's responsibility;
     * this checks shape and size only.
     */
    static bool
    fits(const noc::Flit &parent, const noc::Flit &candidate)
    {
        return candidate.stitchable() &&
               candidate.stitchWireBytes() <= parent.freeBytes();
    }

    /**
     * Absorb @p candidate into @p parent. The candidate flit object is
     * consumed; its content travels as a StitchedPiece. Requires
     * fits(parent, *candidate).
     */
    void stitch(noc::Flit &parent, noc::FlitPtr candidate);

    /**
     * Take a stitched wire flit apart: returns the parent flit (stripped
     * of pieces) followed by one reconstructed flit per piece. Non-
     * stitched flits pass through unchanged as a single-element vector.
     */
    std::vector<noc::FlitPtr> unstitch(noc::FlitPtr flit);

    const StitchStats &stats() const { return stats_; }

  private:
    StitchStats stats_;
};

} // namespace netcrafter::core

#endif // NETCRAFTER_CORE_STITCH_ENGINE_HH
