/**
 * @file
 * The Cluster Queue (Section 4.4): an SRAM FIFO structure at the
 * inter-GPU-cluster egress port that buffers flits about to traverse a
 * lower-bandwidth network. It is virtually partitioned two levels deep:
 * first by destination cluster (CQ.dst), then by request type (CQ.type),
 * with PTW-related flits kept in their own partition so Sequencing can
 * prioritize them and Selective Flit Pooling can exempt them from timers.
 */

#ifndef NETCRAFTER_CORE_CLUSTER_QUEUE_HH
#define NETCRAFTER_CORE_CLUSTER_QUEUE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/noc/flit.hh"
#include "src/sim/types.hh"

namespace netcrafter::core {

/** Second-level partition classes (CQ.type). */
enum class CqClass : std::uint8_t
{
    ReadReq = 0,
    WriteReq,
    ReadRsp,
    WriteRsp,
    Ptw, // page table requests and responses, kept apart (Fig. 13, 4c)
};

inline constexpr std::size_t kNumCqClasses = 5;

/** Map a packet type to its Cluster Queue class. */
constexpr CqClass
cqClassOf(noc::PacketType type)
{
    switch (type) {
      case noc::PacketType::ReadReq:
        return CqClass::ReadReq;
      case noc::PacketType::WriteReq:
        return CqClass::WriteReq;
      case noc::PacketType::ReadRsp:
        return CqClass::ReadRsp;
      case noc::PacketType::WriteRsp:
        return CqClass::WriteRsp;
      case noc::PacketType::PageTableReq:
      case noc::PacketType::PageTableRsp:
        return CqClass::Ptw;
    }
    return CqClass::ReadReq;
}

/**
 * Classify a packet for the Cluster Queue. Latency-critical packets
 * (by default PTW-related ones; Figure 8's counterfactual marks sampled
 * data packets instead) occupy the separate priority partition.
 */
constexpr CqClass
cqClassOfPacket(const noc::Packet &pkt)
{
    if (pkt.latencyCritical)
        return CqClass::Ptw;
    switch (pkt.type) {
      case noc::PacketType::PageTableReq:
      case noc::PacketType::PageTableRsp:
        // PTW traffic not flagged latency-critical (PrioritizeData mode)
        // queues with size-compatible plain requests.
        return CqClass::ReadReq;
      default:
        return cqClassOf(pkt.type);
    }
}

/** Identifies one (destination cluster, class) partition. */
struct CqPartitionId
{
    ClusterId dst = 0;
    CqClass cls = CqClass::ReadReq;
};

/**
 * The two-level cluster queue. Total capacity is divided equally among
 * destination clusters (Table 2: 1024 entries, equally partitioned per
 * destination cluster).
 */
class ClusterQueue
{
  public:
    /**
     * @param total_entries total flit-sized entries of SRAM.
     * @param dst_clusters the remote clusters this egress port serves.
     */
    ClusterQueue(std::size_t total_entries,
                 std::vector<ClusterId> dst_clusters);

    /** True when a flit destined to @p dst can be buffered. */
    bool hasSpace(ClusterId dst) const;

    /** Buffer @p flit for destination cluster @p dst; requires space. */
    void push(ClusterId dst, noc::FlitPtr flit);

    /** Whole-queue emptiness. */
    bool empty() const { return totalOccupancy_ == 0; }

    /** Occupancy for one destination cluster. */
    std::size_t occupancy(ClusterId dst) const;

    /** Per-destination capacity budget. */
    std::size_t budgetPerDst() const { return budgetPerDst_; }

    /**
     * Round-robin pick of the next partition to serve. With
     * @p sequencing, non-empty PTW partitions win outright (strict
     * priority) and ignore pooling timers. Data partitions whose pooling
     * timer has not expired are skipped.
     */
    std::optional<CqPartitionId> pickNext(Tick now, bool sequencing);

    /** Head flit of a partition; requires the partition be non-empty. */
    const noc::FlitPtr &front(CqPartitionId id) const;

    /** Pop the head flit of a partition. */
    noc::FlitPtr pop(CqPartitionId id);

    /** Arm the pooling timer of a partition until @p until. */
    void blockUntil(CqPartitionId id, Tick until);

    /** Earliest tick at which any blocked, non-empty partition unblocks. */
    Tick earliestUnblock(Tick now) const;

    /**
     * True when some partition other than @p id could eject a flit right
     * now. Used by work-conserving Flit Pooling: a flit is only deferred
     * while the egress port has other work, so pooling never idles the
     * lower-bandwidth link.
     */
    bool anyOtherServable(CqPartitionId id, Tick now) const;

    /**
     * Find, remove, and return the best stitching candidate for a parent
     * flit headed to @p dst with @p free_bytes of space: the largest
     * stitchable flit whose wire footprint fits, scanning up to
     * @p search_depth entries per partition. @p exclude (the parent
     * itself, which heads one of the scanned queues) is never selected.
     * Returns nullptr when no candidate fits.
     */
    noc::FlitPtr takeCandidate(ClusterId dst, std::uint16_t free_bytes,
                               std::uint32_t search_depth,
                               const noc::Flit *exclude);

    /** Peak total occupancy observed. */
    std::size_t maxOccupancy() const { return maxOccupancy_; }

  private:
    struct DstQueues
    {
        ClusterId dst = 0;
        std::array<std::deque<noc::FlitPtr>, kNumCqClasses> q;
        std::array<Tick, kNumCqClasses> blockedUntil{};
        std::size_t occupancy = 0;
    };

    DstQueues &queuesFor(ClusterId dst);
    const DstQueues &queuesFor(ClusterId dst) const;

    std::vector<DstQueues> dsts_;
    std::size_t budgetPerDst_;
    std::size_t totalOccupancy_ = 0;
    std::size_t maxOccupancy_ = 0;
    std::size_t rr_ = 0;
};

} // namespace netcrafter::core

#endif // NETCRAFTER_CORE_CLUSTER_QUEUE_HH
