/**
 * @file
 * The NetCrafter Controller (Section 4.4, Figure 13): sits at a cluster
 * switch's inter-GPU-cluster egress port and applies Trimming, buffers
 * flits in the Cluster Queue, and performs Stitching (with optional Flit
 * Pooling / Selective Flit Pooling) and Sequencing before flits are
 * pushed onto the lower-bandwidth link.
 */

#ifndef NETCRAFTER_CORE_CONTROLLER_HH
#define NETCRAFTER_CORE_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/config/system_config.hh"
#include "src/core/cluster_queue.hh"
#include "src/core/stitch_engine.hh"
#include "src/core/trim_engine.hh"
#include "src/noc/flit_buffer.hh"
#include "src/noc/switch.hh"
#include "src/sim/self_scheduling.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::core {

/** Aggregate controller statistics. */
struct ControllerStats
{
    std::uint64_t flitsEjected = 0;
    std::uint64_t flitsAccepted = 0;
    std::uint64_t poolingArms = 0;
    std::uint64_t poolingStitchHits = 0; // pooled head later stitched
    std::array<std::uint64_t, kNumCqClasses> armsByClass{};
    std::uint64_t occupancyAtArmSum = 0;
    std::uint64_t idlePumpExits = 0; // pump ended with all blocked
};

/**
 * Egress-side NetCrafter controller. One instance per (cluster switch,
 * inter-cluster output port).
 */
class NetCrafterController : public sim::SimObject,
                             public noc::EgressProcessor
{
  public:
    /**
     * @param cfg NetCrafter mechanism configuration.
     * @param cluster_of maps a GPU id to its cluster.
     * @param dst_clusters remote clusters reachable through this port.
     * @param out the switch output buffer feeding the inter-cluster link.
     * @param egress_rate flits/cycle the lower-bandwidth link accepts.
     * @param wake_switch called when CQ space frees (unstalls routing).
     */
    NetCrafterController(sim::Engine &engine, std::string name,
                         const config::NetCrafterConfig &cfg,
                         std::function<ClusterId(GpuId)> cluster_of,
                         std::vector<ClusterId> dst_clusters,
                         noc::FlitBuffer &out, std::uint32_t egress_rate,
                         std::function<void()> wake_switch);

    /** EgressProcessor: the switch offers a routed flit. */
    bool tryAccept(noc::FlitPtr flit) override;

    const ControllerStats &stats() const { return stats_; }
    const StitchStats &stitchStats() const { return stitch_.stats(); }
    const TrimStats &trimStats() const { return trim_.stats(); }
    const ClusterQueue &clusterQueue() const { return cq_; }

  private:
    void enqueue(noc::FlitPtr flit);
    void completePacket(const noc::PacketPtr &pkt,
                        std::vector<noc::FlitPtr> flits);
    void schedulePump();
    void pump();

    config::NetCrafterConfig cfg_;
    std::function<ClusterId(GpuId)> clusterOf_;
    noc::FlitBuffer &out_;
    std::uint32_t egressRate_;
    std::function<void()> wakeSwitch_;

    TrimEngine trim_;
    StitchEngine stitch_;
    ClusterQueue cq_;

    /** Flits of multi-flit packets awaiting their tail (Trim Engine). */
    std::unordered_map<std::uint64_t, std::vector<noc::FlitPtr>> pending_;

    /** Accumulated-but-not-yet-CQ'd flits per destination cluster, so
     *  admission control covers the trim holding area too. */
    std::unordered_map<ClusterId, std::size_t> pendingPerDst_;

    sim::SelfScheduling<NetCrafterController, &NetCrafterController::pump>
        pumpWake_;
    Tick lastPumpTick_ = kTickNever;
    ControllerStats stats_;
    std::uint16_t traceLane_ = 0;
};

/**
 * Ingress-side un-stitching engine: attached to the inter-cluster input
 * port of the receiving cluster switch; takes stitched wire flits apart
 * before routing.
 */
class Unstitcher : public noc::IngressProcessor
{
  public:
    void
    process(noc::FlitPtr flit, std::vector<noc::FlitPtr> &out) override
    {
        auto restored = stitch_.unstitch(std::move(flit));
        for (auto &f : restored)
            out.push_back(std::move(f));
    }

    const StitchStats &stats() const { return stitch_.stats(); }

  private:
    StitchEngine stitch_;
};

} // namespace netcrafter::core

#endif // NETCRAFTER_CORE_CONTROLLER_HH
