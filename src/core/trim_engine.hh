/**
 * @file
 * The Trim Engine (Section 4.3): shrinks read-response packets crossing
 * the inter-GPU-cluster network down to the single sector the requesting
 * wavefront needs, using the trim bits the requester set in the unused
 * upper address bits of the request.
 */

#ifndef NETCRAFTER_CORE_TRIM_ENGINE_HH
#define NETCRAFTER_CORE_TRIM_ENGINE_HH

#include <cstdint>

#include "src/noc/packet.hh"

namespace netcrafter::core {

/** Statistics kept by a trim engine instance. */
struct TrimStats
{
    /** Read responses whose payload was trimmed. */
    std::uint64_t packetsTrimmed = 0;

    /** Payload bytes removed from the wire. */
    std::uint64_t bytesTrimmed = 0;
};

/** Decides on and applies payload trimming to read responses. */
class TrimEngine
{
  public:
    explicit TrimEngine(std::uint32_t granularity_bytes)
        : granularity_(granularity_bytes)
    {}

    /** Trim granularity (the L1 sector size), bytes. */
    std::uint32_t granularity() const { return granularity_; }

    /**
     * Whether @p pkt should be trimmed: a read response crossing the
     * inter-cluster network whose requester flagged (via the trim bits)
     * that it needs at most one sector, and whose payload still carries
     * the full line.
     */
    bool
    shouldTrim(const noc::Packet &pkt) const
    {
        return pkt.type == noc::PacketType::ReadRsp && pkt.interCluster &&
               pkt.trimEligible && !pkt.trimmed &&
               pkt.payloadBytes > granularity_;
    }

    /**
     * Trim @p pkt's payload to one sector. Requires shouldTrim(pkt).
     * Sets the trimmed flag and the sector index derived from the
     * request's needed-byte offset.
     */
    void
    trim(noc::Packet &pkt)
    {
        stats_.bytesTrimmed += pkt.payloadBytes - granularity_;
        ++stats_.packetsTrimmed;
        pkt.trimSector =
            static_cast<std::uint8_t>(pkt.neededOffset / granularity_);
        pkt.payloadBytes = granularity_;
        pkt.trimmed = true;
    }

    /**
     * Helper for requesters: true when a request touching
     * [@p offset, @p offset + @p bytes) of a line fits one
     * granularity-aligned sector (so the trim-request bit can be set).
     */
    static bool
    fitsOneSector(std::uint32_t offset, std::uint32_t bytes,
                  std::uint32_t granularity)
    {
        if (bytes == 0 || bytes > granularity)
            return false;
        return offset / granularity ==
               (offset + bytes - 1) / granularity;
    }

    const TrimStats &stats() const { return stats_; }

  private:
    std::uint32_t granularity_;
    TrimStats stats_;
};

} // namespace netcrafter::core

#endif // NETCRAFTER_CORE_TRIM_ENGINE_HH
