#include "src/core/controller.hh"

#include <algorithm>

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::core {

NetCrafterController::NetCrafterController(
    sim::Engine &engine, std::string name,
    const config::NetCrafterConfig &cfg,
    std::function<ClusterId(GpuId)> cluster_of,
    std::vector<ClusterId> dst_clusters, noc::FlitBuffer &out,
    std::uint32_t egress_rate, std::function<void()> wake_switch)
    : SimObject(engine, std::move(name)), cfg_(cfg),
      clusterOf_(std::move(cluster_of)), out_(out),
      egressRate_(egress_rate), wakeSwitch_(std::move(wake_switch)),
      trim_(cfg.trimGranularity),
      cq_(cfg.clusterQueueEntries, std::move(dst_clusters)),
      pumpWake_(engine, this)
{
    // Space freed on the inter-cluster link's source buffer lets the
    // controller eject more flits.
    out_.setOnPop([this] { schedulePump(); });
    traceLane_ = obs::internLane(engine, this->name());
}

bool
NetCrafterController::tryAccept(noc::FlitPtr flit)
{
    const ClusterId dst = clusterOf_(flit->pkt->dst);
    // Admission control covers both the CQ and the trim holding area;
    // trimming can only shrink a held packet, so reserving one entry per
    // accepted flit guarantees enqueue() will always find space.
    const std::size_t held = pendingPerDst_[dst];
    if (cq_.occupancy(dst) + held >= cq_.budgetPerDst())
        return false;

    ++stats_.flitsAccepted;
    flit->pkt->interCluster = true;

    if (flit->numFlits == 1) {
        enqueue(std::move(flit));
        return true;
    }

    // Multi-flit packet: hold flits until the tail arrives so the Trim
    // Engine can operate at packet granularity (Figure 13, step 4b).
    noc::PacketPtr pkt = flit->pkt;
    auto &flits = pending_[pkt->id];
    const bool is_tail = flit->isTail();
    flits.push_back(std::move(flit));
    ++pendingPerDst_[dst];
    if (is_tail) {
        std::vector<noc::FlitPtr> whole = std::move(flits);
        pending_.erase(pkt->id);
        pendingPerDst_[dst] -= whole.size();
        completePacket(pkt, std::move(whole));
    }
    return true;
}

void
NetCrafterController::completePacket(const noc::PacketPtr &pkt,
                                     std::vector<noc::FlitPtr> flits)
{
    if (cfg_.trimming && trim_.shouldTrim(*pkt)) {
        const std::uint32_t bytes_before = pkt->totalBytes();
        trim_.trim(*pkt);
        obs::tracepoint(engine(), obs::TraceLevel::Links,
                        obs::TraceKind::CtrlDecision,
                        obs::TraceStage::CtrlTrim, traceLane_, pkt->id,
                        bytes_before, pkt->totalBytes());
        // Re-segment the now-smaller packet; the discarded flits are
        // never transmitted on the lower-bandwidth network.
        flits = noc::segmentPacket(pkt, flits.front()->capacity);
    }
    for (auto &f : flits)
        enqueue(std::move(f));
}

void
NetCrafterController::enqueue(noc::FlitPtr flit)
{
    const ClusterId dst = clusterOf_(flit->pkt->dst);
    cq_.push(dst, std::move(flit));
    schedulePump();
}

void
NetCrafterController::schedulePump()
{
    pumpWake_.notify();
}

void
NetCrafterController::pump()
{
    pumpWake_.clearPending();
    const Tick t = now();
    if (t == lastPumpTick_)
        return; // per-cycle egress budget already spent this tick
    lastPumpTick_ = t;

    const bool sequencing =
        cfg_.sequencing != config::SequencingMode::Off;
    std::uint32_t budget = egressRate_;
    bool freed_space = false;
    while (budget > 0 && !out_.full()) {
        auto pick = cq_.pickNext(t, sequencing);
        if (!pick)
            break;

        // The parent flit under consideration for ejection. Copy the
        // shared pointer: candidate extraction mutates the deque the
        // front reference would point into.
        noc::FlitPtr parent = cq_.front(*pick);
        const bool was_pooled = parent->pooledOnce;

        if (cfg_.stitching) {
            // Absorb candidates while free bytes remain (step 4h allows
            // re-stitching an already-stitched parent).
            while (parent->freeBytes() >= noc::kPartialStitchMetaBytes +
                                              1) {
                noc::FlitPtr cand = cq_.takeCandidate(
                    pick->dst, parent->freeBytes(),
                    cfg_.stitchSearchDepth, parent.get());
                if (!cand)
                    break;
                const std::uint32_t cand_bytes = cand->usedBytes();
                const std::uint32_t cand_pkt =
                    cand->pkt != nullptr
                        ? static_cast<std::uint32_t>(cand->pkt->id)
                        : 0;
                stitch_.stitch(*parent, std::move(cand));
                obs::tracepoint(
                    engine(), obs::TraceLevel::Links,
                    obs::TraceKind::CtrlDecision,
                    obs::TraceStage::CtrlStitch, traceLane_,
                    parent->pkt != nullptr ? parent->pkt->id : 0,
                    cand_bytes, cand_pkt);
                freed_space = true;
            }
        }

        // Pooling pays off only when a data parent has room for a
        // meaningful candidate: mostly-empty flits (>= half padded,
        // e.g. response tails and write acks) are worth waiting for,
        // while deferring a 25%-padded request for a rare 4-byte
        // candidate costs latency for almost no bandwidth. Flits in the
        // latency-critical partition are pooled whenever they have any
        // free bytes under *non-selective* pooling — the behaviour
        // whose cost Figure 18 exposes and Selective Flit Pooling
        // (Optimization II) removes.
        const bool ptw_partition = pick->cls == CqClass::Ptw;
        const bool worth_pooling =
            ptw_partition ? parent->freeBytes() > 0
                          : parent->freeBytes() >= parent->capacity / 2;
        if (cfg_.stitching && cfg_.flitPooling && !parent->isStitched() &&
            !parent->pooledOnce && worth_pooling) {
            const bool exempt = cfg_.selectivePooling && ptw_partition;
            const bool sequenced_ptw = sequencing && ptw_partition;
            // Work-conserving: defer only while the port has other work,
            // so pooling never idles the lower-bandwidth link.
            const bool other_work = cq_.anyOtherServable(*pick, t);
            if (!exempt && !sequenced_ptw && other_work) {
                // Defer ejection hoping a candidate arrives (Opt. I).
                parent->pooledOnce = true;
                cq_.blockUntil(*pick, t + cfg_.poolingWindow);
                ++stats_.poolingArms;
                obs::tracepoint(
                    engine(), obs::TraceLevel::Links,
                    obs::TraceKind::CtrlDecision,
                    obs::TraceStage::CtrlArm, traceLane_,
                    parent->pkt != nullptr ? parent->pkt->id : 0,
                    parent->freeBytes(),
                    static_cast<std::uint32_t>(pick->cls));
                ++stats_.armsByClass[static_cast<std::size_t>(
                    pick->cls)];
                stats_.occupancyAtArmSum += cq_.occupancy(pick->dst);
                continue; // another partition may still eject this cycle
            }
        }

        if (was_pooled && parent->isStitched())
            ++stats_.poolingStitchHits;

        noc::FlitPtr flit = cq_.pop(*pick);
        NC_ASSERT(flit.get() == parent.get(),
                  "CQ front changed under the stitching engine");
        freed_space = true;
        ++stats_.flitsEjected;
        obs::tracepoint(
            engine(), obs::TraceLevel::Links,
            obs::TraceKind::CtrlDecision, obs::TraceStage::CtrlEject,
            traceLane_,
            parent->pkt != nullptr ? parent->pkt->id : 0,
            obs::packFlitBytes(parent->capacity, parent->usedBytes()),
            obs::packFlitSeq(
                static_cast<std::uint32_t>(parent->stitched.size()),
                parent->seq));
        out_.tryPush(std::move(flit));
        --budget;
    }

    if (freed_space && wakeSwitch_)
        wakeSwitch_();

    // Soft pooling timers guarantee a non-empty queue always has a
    // servable partition, so keep pumping until drained. (Probing
    // pickNext here instead would advance the round-robin pointer and
    // starve the probed partition.)
    if (!cq_.empty())
        schedulePump();
}

} // namespace netcrafter::core
