#include "src/core/cluster_queue.hh"

#include <algorithm>

#include "src/sim/logging.hh"

namespace netcrafter::core {

ClusterQueue::ClusterQueue(std::size_t total_entries,
                           std::vector<ClusterId> dst_clusters)
    : budgetPerDst_(dst_clusters.empty()
                        ? total_entries
                        : total_entries / dst_clusters.size())
{
    NC_ASSERT(!dst_clusters.empty(), "cluster queue needs destinations");
    NC_ASSERT(budgetPerDst_ > 0, "cluster queue budget too small");
    for (ClusterId dst : dst_clusters) {
        DstQueues dq;
        dq.dst = dst;
        dsts_.push_back(std::move(dq));
    }
}

ClusterQueue::DstQueues &
ClusterQueue::queuesFor(ClusterId dst)
{
    for (auto &dq : dsts_) {
        if (dq.dst == dst)
            return dq;
    }
    NC_PANIC("cluster queue has no partition for cluster ", dst);
}

const ClusterQueue::DstQueues &
ClusterQueue::queuesFor(ClusterId dst) const
{
    return const_cast<ClusterQueue *>(this)->queuesFor(dst);
}

bool
ClusterQueue::hasSpace(ClusterId dst) const
{
    return queuesFor(dst).occupancy < budgetPerDst_;
}

void
ClusterQueue::push(ClusterId dst, noc::FlitPtr flit)
{
    DstQueues &dq = queuesFor(dst);
    NC_ASSERT(dq.occupancy < budgetPerDst_, "cluster queue overflow");
    const auto cls =
        static_cast<std::size_t>(cqClassOfPacket(*flit->pkt));

    // Flit Pooling waits for "a suitable stitching candidate to arrive"
    // (Section 4.2): if the newcomer is such a candidate for a pooled
    // partition head, cancel that partition's timer so the stitch
    // happens immediately instead of at window expiry.
    if (flit->stitchable()) {
        const std::uint16_t wire = flit->stitchWireBytes();
        for (std::size_t c = 0; c < kNumCqClasses; ++c) {
            if (dq.q[c].empty() || dq.blockedUntil[c] == 0)
                continue;
            if (dq.q[c].front()->freeBytes() >= wire)
                dq.blockedUntil[c] = 0;
        }
    }

    dq.q[cls].push_back(std::move(flit));
    ++dq.occupancy;
    ++totalOccupancy_;
    maxOccupancy_ = std::max(maxOccupancy_, totalOccupancy_);
}

std::size_t
ClusterQueue::occupancy(ClusterId dst) const
{
    return queuesFor(dst).occupancy;
}

std::optional<CqPartitionId>
ClusterQueue::pickNext(Tick now, bool sequencing)
{
    if (totalOccupancy_ == 0)
        return std::nullopt;

    const std::size_t num_partitions = dsts_.size() * kNumCqClasses;

    if (sequencing) {
        // Strict priority for PTW-related flits; timers never apply.
        for (const auto &dq : dsts_) {
            if (!dq.q[static_cast<std::size_t>(CqClass::Ptw)].empty())
                return CqPartitionId{dq.dst, CqClass::Ptw};
        }
    }

    for (std::size_t step = 0; step < num_partitions; ++step) {
        const std::size_t idx = (rr_ + step) % num_partitions;
        const std::size_t dst_idx = idx / kNumCqClasses;
        const std::size_t cls_idx = idx % kNumCqClasses;
        const DstQueues &dq = dsts_[dst_idx];
        if (dq.q[cls_idx].empty())
            continue;
        if (dq.blockedUntil[cls_idx] > now)
            continue;
        rr_ = (idx + 1) % num_partitions;
        return CqPartitionId{dq.dst,
                             static_cast<CqClass>(cls_idx)};
    }

    // Every non-empty partition is inside a pooling window. Rather than
    // idle the lower-bandwidth link, serve a blocked partition early:
    // pooling timers are soft deadlines, and the deferred head (already
    // marked pooledOnce) is re-evaluated for stitching on ejection.
    for (std::size_t step = 0; step < num_partitions; ++step) {
        const std::size_t idx = (rr_ + step) % num_partitions;
        const std::size_t dst_idx = idx / kNumCqClasses;
        const std::size_t cls_idx = idx % kNumCqClasses;
        const DstQueues &dq = dsts_[dst_idx];
        if (dq.q[cls_idx].empty())
            continue;
        rr_ = (idx + 1) % num_partitions;
        return CqPartitionId{dq.dst,
                             static_cast<CqClass>(cls_idx)};
    }
    return std::nullopt;
}

const noc::FlitPtr &
ClusterQueue::front(CqPartitionId id) const
{
    const auto &q = queuesFor(id.dst).q[static_cast<std::size_t>(id.cls)];
    NC_ASSERT(!q.empty(), "front() on empty CQ partition");
    return q.front();
}

noc::FlitPtr
ClusterQueue::pop(CqPartitionId id)
{
    DstQueues &dq = queuesFor(id.dst);
    auto &q = dq.q[static_cast<std::size_t>(id.cls)];
    NC_ASSERT(!q.empty(), "pop() on empty CQ partition");
    noc::FlitPtr flit = std::move(q.front());
    q.pop_front();
    --dq.occupancy;
    --totalOccupancy_;
    return flit;
}

void
ClusterQueue::blockUntil(CqPartitionId id, Tick until)
{
    queuesFor(id.dst).blockedUntil[static_cast<std::size_t>(id.cls)] =
        until;
}

Tick
ClusterQueue::earliestUnblock(Tick now) const
{
    Tick earliest = kTickNever;
    for (const auto &dq : dsts_) {
        for (std::size_t cls = 0; cls < kNumCqClasses; ++cls) {
            if (dq.q[cls].empty())
                continue;
            if (dq.blockedUntil[cls] > now)
                earliest = std::min(earliest, dq.blockedUntil[cls]);
        }
    }
    return earliest;
}

bool
ClusterQueue::anyOtherServable(CqPartitionId id, Tick now) const
{
    for (const auto &dq : dsts_) {
        for (std::size_t cls = 0; cls < kNumCqClasses; ++cls) {
            if (dq.dst == id.dst &&
                cls == static_cast<std::size_t>(id.cls))
                continue;
            if (!dq.q[cls].empty() && dq.blockedUntil[cls] <= now)
                return true;
        }
    }
    return false;
}

noc::FlitPtr
ClusterQueue::takeCandidate(ClusterId dst, std::uint16_t free_bytes,
                            std::uint32_t search_depth,
                            const noc::Flit *exclude)
{
    DstQueues &dq = queuesFor(dst);
    std::deque<noc::FlitPtr> *best_q = nullptr;
    std::size_t best_pos = 0;
    std::uint16_t best_bytes = 0;

    for (auto &q : dq.q) {
        std::size_t depth = std::min<std::size_t>(q.size(), search_depth);
        for (std::size_t i = 0; i < depth; ++i) {
            const noc::Flit &f = *q[i];
            if (&f == exclude || !f.stitchable())
                continue;
            const std::uint16_t wire = f.stitchWireBytes();
            if (wire > free_bytes || wire <= best_bytes)
                continue;
            best_q = &q;
            best_pos = i;
            best_bytes = wire;
        }
    }
    if (best_q == nullptr)
        return nullptr;
    noc::FlitPtr flit = std::move((*best_q)[best_pos]);
    best_q->erase(best_q->begin() +
                  static_cast<std::ptrdiff_t>(best_pos));
    --dq.occupancy;
    --totalOccupancy_;
    return flit;
}

} // namespace netcrafter::core
