#include "src/core/stitch_engine.hh"

#include "src/sim/logging.hh"

namespace netcrafter::core {

void
StitchEngine::stitch(noc::Flit &parent, noc::FlitPtr candidate)
{
    NC_ASSERT(fits(parent, *candidate), "stitch() without fits() check");
    noc::StitchedPiece piece;
    piece.pkt = candidate->pkt;
    piece.bytes = candidate->occupiedBytes;
    piece.seq = candidate->seq;
    piece.numFlits = candidate->numFlits;
    piece.wholePacket = candidate->numFlits == 1;
    if (parent.stitched.empty())
        ++stats_.parentsStitched;
    ++stats_.candidatesAbsorbed;
    stats_.candidateBytes += piece.bytes;
    if (!piece.wholePacket)
        stats_.metadataBytes += noc::kPartialStitchMetaBytes;
    parent.stitched.push_back(std::move(piece));
}

std::vector<noc::FlitPtr>
StitchEngine::unstitch(noc::FlitPtr flit)
{
    std::vector<noc::FlitPtr> out;
    if (!flit->isStitched()) {
        out.push_back(std::move(flit));
        return out;
    }
    ++stats_.unstitched;
    out.reserve(flit->stitched.size() + 1);

    std::vector<noc::StitchedPiece> pieces = std::move(flit->stitched);
    flit->stitched.clear();
    out.push_back(std::move(flit));

    for (auto &piece : pieces) {
        auto restored = noc::makeFlit();
        restored->pkt = std::move(piece.pkt);
        restored->seq = piece.seq;
        restored->numFlits = piece.numFlits;
        restored->occupiedBytes = piece.bytes;
        restored->capacity = out.front()->capacity;
        out.push_back(std::move(restored));
    }
    return out;
}

} // namespace netcrafter::core
