#include "src/noc/packet.hh"

#include <sstream>
#include <vector>

#include "src/sim/engine.hh"

namespace netcrafter::noc {

namespace {

// Ids are namespaced by source GPU: the high bits carry the source and
// the low bits a per-source sequence number. Every packet with source g
// is created while GPU g's shard engine dispatches (requests by the
// requesting chip, responses by the owning chip's L2 callback), so
// per-source counters make the id sequence identical whether a system
// runs on one engine or on several shards — which matters because RDMA
// reassembly and the outstanding-request tables key on it.
//
// The counters live in the dispatching Engine (one slot per source),
// not in thread-local storage: under whole-window work stealing the
// same shard executes on different host threads across rounds, and an
// id sequence keyed by thread identity would fork. Engine ownership
// also makes per-system reset automatic — every MultiGpuSystem builds
// fresh engines. The thread_local vector remains only as a fallback for
// packets created outside any engine dispatch (tests, setup code); it
// is what resetPacketIds() clears.
inline constexpr std::uint64_t kIdStride = std::uint64_t{1} << 44;

thread_local std::vector<std::uint64_t> nextIdBySrc;

std::uint64_t
nextPacketId(GpuId src)
{
    const std::size_t slot =
        src == kGpuInvalid ? 0 : static_cast<std::size_t>(src) + 1;
    if (sim::Engine *engine = sim::Engine::current())
        return slot * kIdStride + engine->bumpScopedId(slot);
    if (slot >= nextIdBySrc.size())
        nextIdBySrc.resize(slot + 1, 0);
    return slot * kIdStride + ++nextIdBySrc[slot];
}

} // namespace

const char *
packetTypeName(PacketType type)
{
    switch (type) {
      case PacketType::ReadReq:
        return "ReadReq";
      case PacketType::WriteReq:
        return "WriteReq";
      case PacketType::PageTableReq:
        return "PTReq";
      case PacketType::ReadRsp:
        return "ReadRsp";
      case PacketType::WriteRsp:
        return "WriteRsp";
      case PacketType::PageTableRsp:
        return "PTRsp";
    }
    return "?";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << packetTypeName(type) << "#" << id << " " << src << "->" << dst
       << " addr=0x" << std::hex << addr << std::dec
       << " bytes=" << totalBytes();
    if (trimmed)
        os << " trimmed(sector=" << static_cast<int>(trimSector) << ")";
    return os.str();
}

PacketPtr
makePacket(PacketType type, GpuId src, GpuId dst, Addr addr)
{
    PacketPtr pkt = sim::ObjectPool<Packet>::local().allocate();
    pkt->id = nextPacketId(src);
    pkt->type = type;
    pkt->src = src;
    pkt->dst = dst;
    pkt->addr = addr;
    pkt->payloadBytes = defaultPayloadBytes(type);
    return pkt;
}

PacketPtr
clonePacket(const Packet &original)
{
    PacketPtr pkt = sim::ObjectPool<Packet>::local().allocate();
    // PoolRefCount's copy assignment leaves the refcount alone, so a
    // plain payload copy (id included) is safe on a fresh node.
    *pkt = original;
    return pkt;
}

void
resetPacketIds()
{
    nextIdBySrc.clear();
}

} // namespace netcrafter::noc
