#include "src/noc/packet.hh"

#include <sstream>
#include <vector>

namespace netcrafter::noc {

namespace {

// Ids are namespaced by source GPU: the high bits carry the source and
// the low bits a per-source sequence number. Every packet with source g
// is created on the shard thread that owns GPU g (requests by the
// requesting chip, responses by the owning chip's L2 callback), so
// per-source counters make the id sequence identical whether a system
// runs on one engine or on several shard threads — which matters
// because RDMA reassembly and the outstanding-request tables key on it.
//
// The counters are thread_local rather than global: the experiment
// scheduler runs independent MultiGpuSystem instances on concurrent
// threads, and each system resets this allocator at construction.
// Sharded systems never reset — their worker threads are born fresh per
// system and persist across kernels.
inline constexpr std::uint64_t kIdStride = std::uint64_t{1} << 44;

thread_local std::vector<std::uint64_t> nextIdBySrc;

std::uint64_t
nextPacketId(GpuId src)
{
    const std::size_t slot =
        src == kGpuInvalid ? 0 : static_cast<std::size_t>(src) + 1;
    if (slot >= nextIdBySrc.size())
        nextIdBySrc.resize(slot + 1, 0);
    return slot * kIdStride + ++nextIdBySrc[slot];
}

} // namespace

const char *
packetTypeName(PacketType type)
{
    switch (type) {
      case PacketType::ReadReq:
        return "ReadReq";
      case PacketType::WriteReq:
        return "WriteReq";
      case PacketType::PageTableReq:
        return "PTReq";
      case PacketType::ReadRsp:
        return "ReadRsp";
      case PacketType::WriteRsp:
        return "WriteRsp";
      case PacketType::PageTableRsp:
        return "PTRsp";
    }
    return "?";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << packetTypeName(type) << "#" << id << " " << src << "->" << dst
       << " addr=0x" << std::hex << addr << std::dec
       << " bytes=" << totalBytes();
    if (trimmed)
        os << " trimmed(sector=" << static_cast<int>(trimSector) << ")";
    return os.str();
}

PacketPtr
makePacket(PacketType type, GpuId src, GpuId dst, Addr addr)
{
    PacketPtr pkt = sim::ObjectPool<Packet>::local().allocate();
    pkt->id = nextPacketId(src);
    pkt->type = type;
    pkt->src = src;
    pkt->dst = dst;
    pkt->addr = addr;
    pkt->payloadBytes = defaultPayloadBytes(type);
    return pkt;
}

PacketPtr
clonePacket(const Packet &original)
{
    PacketPtr pkt = sim::ObjectPool<Packet>::local().allocate();
    // PoolRefCount's copy assignment leaves the refcount alone, so a
    // plain payload copy (id included) is safe on a fresh node.
    *pkt = original;
    return pkt;
}

void
resetPacketIds()
{
    nextIdBySrc.clear();
}

} // namespace netcrafter::noc
