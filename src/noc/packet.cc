#include "src/noc/packet.hh"

#include <sstream>

namespace netcrafter::noc {

namespace {

// thread_local rather than global: the experiment scheduler runs
// independent MultiGpuSystem instances on concurrent threads, and each
// system resets this allocator at construction. A system never
// migrates threads mid-run, so per-thread ids reproduce the serial id
// sequence exactly.
thread_local std::uint64_t nextPacketId = 1;

} // namespace

const char *
packetTypeName(PacketType type)
{
    switch (type) {
      case PacketType::ReadReq:
        return "ReadReq";
      case PacketType::WriteReq:
        return "WriteReq";
      case PacketType::PageTableReq:
        return "PTReq";
      case PacketType::ReadRsp:
        return "ReadRsp";
      case PacketType::WriteRsp:
        return "WriteRsp";
      case PacketType::PageTableRsp:
        return "PTRsp";
    }
    return "?";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << packetTypeName(type) << "#" << id << " " << src << "->" << dst
       << " addr=0x" << std::hex << addr << std::dec
       << " bytes=" << totalBytes();
    if (trimmed)
        os << " trimmed(sector=" << static_cast<int>(trimSector) << ")";
    return os.str();
}

PacketPtr
makePacket(PacketType type, GpuId src, GpuId dst, Addr addr)
{
    PacketPtr pkt = sim::ObjectPool<Packet>::local().allocate();
    pkt->id = nextPacketId++;
    pkt->type = type;
    pkt->src = src;
    pkt->dst = dst;
    pkt->addr = addr;
    pkt->payloadBytes = defaultPayloadBytes(type);
    return pkt;
}

void
resetPacketIds()
{
    nextPacketId = 1;
}

} // namespace netcrafter::noc
