#include "src/noc/switch.hh"

#include <algorithm>

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::noc {

Switch::Switch(sim::Engine &engine, std::string name,
               const SwitchParams &params)
    : SimObject(engine, std::move(name)), params_(params),
      wake_(engine, this)
{
    traceLane_ = obs::internLane(engine, this->name());
}

std::size_t
Switch::addPort(std::uint32_t flits_per_cycle)
{
    Port port;
    port.speed = flits_per_cycle;
    port.in = std::make_unique<FlitBuffer>(params_.bufferEntries);
    port.out = std::make_unique<FlitBuffer>(params_.bufferEntries);
    // Arriving flits wake the switch; space freed in an output buffer may
    // unstall routing, so that wakes the switch too.
    port.in->setOnPush([this] { notify(); });
    port.out->setOnPop([this] { notify(); });
    ports_.push_back(std::move(port));
    return ports_.size() - 1;
}

FlitBuffer &
Switch::inBuffer(std::size_t port)
{
    return *ports_.at(port).in;
}

FlitBuffer &
Switch::outBuffer(std::size_t port)
{
    return *ports_.at(port).out;
}

void
Switch::addRoute(GpuId dst, std::size_t port)
{
    NC_ASSERT(port < ports_.size(), "route to unknown port");
    routes_[dst] = port;
}

void
Switch::setEgressProcessor(std::size_t port, EgressProcessor *proc)
{
    ports_.at(port).egress = proc;
}

void
Switch::setIngressProcessor(std::size_t port, IngressProcessor *proc)
{
    ports_.at(port).ingress = proc;
}

std::size_t
Switch::routeFor(GpuId dst) const
{
    auto it = routes_.find(dst);
    NC_ASSERT(it != routes_.end(), name(), ": no route for GPU ", dst);
    return it->second;
}

void
Switch::notify()
{
    wake_.notify();
}

bool
Switch::hasWork() const
{
    for (const auto &port : ports_) {
        if (!port.in->empty() || !port.pipeline.empty())
            return true;
    }
    return false;
}

void
Switch::cycle()
{
    const Tick t = now();
    if (t == lastCycleTick_) {
        // A stale long-delay wake-up landed on a tick we already
        // processed; per-cycle budgets must not be granted twice.
        return;
    }
    lastCycleTick_ = t;
    wake_.clearPending();

    // Routing stage: drain pipeline heads whose latency elapsed. The
    // crossbar ejects into output buffers (or the NetCrafter Cluster
    // Queue) at the switch's internal rate; the attached link then
    // drains the buffer at its own line rate — so a slow output link
    // backlogs its output queue, exactly where the paper queues flits.
    std::uint32_t crossbar_rate = 1;
    for (const auto &port : ports_)
        crossbar_rate = std::max(crossbar_rate, port.speed);
    std::vector<std::uint32_t> out_budget(ports_.size(), crossbar_rate);

    bool stalled = false;
    for (auto &port : ports_) {
        port.blockedOnOutput = false;
        std::uint32_t routed = 0;
        while (routed < port.speed && !port.pipeline.empty() &&
               port.pipeline.front().readyAt <= t) {
            FlitPtr &flit = port.pipeline.front().flit;
            std::size_t out_port = routeFor(flit->pkt->dst);
            if (out_budget[out_port] == 0)
                break;
            Port &out = ports_[out_port];
            if (out.egress != nullptr) {
                if (!out.egress->tryAccept(flit)) {
                    // Head-of-line blocked; the egress processor wakes
                    // us when it frees space.
                    stalled = true;
                    port.blockedOnOutput = true;
                    break;
                }
            } else {
                if (out.out->full()) {
                    // The output buffer's pop hook wakes us.
                    stalled = true;
                    port.blockedOnOutput = true;
                    break;
                }
                out.out->tryPush(flit);
            }
            --out_budget[out_port];
            ++flitsRouted_;
            obs::tracepoint(engine(), obs::TraceLevel::Full,
                            obs::TraceKind::PktStage,
                            obs::TraceStage::SwitchRoute, traceLane_,
                            flit != nullptr && flit->pkt != nullptr
                                ? flit->pkt->id
                                : 0,
                            static_cast<std::uint32_t>(out_port),
                            flit != nullptr ? flit->seq : 0);
            ++routed;
            port.pipeline.pop_front();
        }
    }
    if (stalled)
        ++stallCycles_;

    // Accept stage: move flits from input buffers into the processing
    // pipeline at line rate, bounded by pipeline occupancy so a clogged
    // pipeline back-pressures the input buffer (and the upstream link).
    for (auto &port : ports_) {
        const std::size_t pipeline_cap =
            static_cast<std::size_t>(port.speed) *
            (params_.pipelineLatency + 2);
        std::uint32_t accepted = 0;
        while (accepted < port.speed && !port.in->empty() &&
               port.pipeline.size() < pipeline_cap) {
            FlitPtr flit = port.in->pop();
            ++accepted;
            if (port.ingress != nullptr) {
                std::vector<FlitPtr> expanded;
                port.ingress->process(std::move(flit), expanded);
                for (auto &f : expanded) {
                    port.pipeline.push_back(
                        PipelineEntry{std::move(f),
                                      t + params_.pipelineLatency});
                }
            } else {
                port.pipeline.push_back(
                    PipelineEntry{std::move(flit),
                                  t + params_.pipelineLatency});
            }
        }
    }

    // Decide when to wake next: immediately while transferable work
    // exists, or exactly when the earliest pipeline entry matures.
    Tick next = kTickNever;
    for (const auto &port : ports_) {
        if (!port.in->empty())
            next = std::min(next, t + 1);
        if (port.pipeline.empty())
            continue;
        const Tick ready = port.pipeline.front().readyAt;
        if (ready > t) {
            next = std::min(next, ready);
        } else if (!port.blockedOnOutput) {
            // Ready but budget-limited this cycle: try again next one.
            // (A head blocked on a full output sleeps until the output's
            // pop hook or the egress processor wakes us.)
            next = std::min(next, t + 1);
        }
    }
    if (next == kTickNever)
        return;
    if (next == t + 1) {
        notify();
    } else if (next < pendingLongWake_ || pendingLongWake_ <= t) {
        pendingLongWake_ = next;
        engine().scheduleAbs(next, [this] { cycle(); });
    }
}

} // namespace netcrafter::noc
