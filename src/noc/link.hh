/**
 * @file
 * A unidirectional, bandwidth-limited link moving flits from a source
 * buffer to a sink buffer. Bandwidth is expressed as flits per core cycle
 * (at 1 GHz and 16B flits: 16 GB/s = 1 flit/cycle, 128 GB/s = 8).
 */

#ifndef NETCRAFTER_NOC_LINK_HH
#define NETCRAFTER_NOC_LINK_HH

#include <cstdint>
#include <string>

#include "src/noc/flit_buffer.hh"
#include "src/sim/self_scheduling.hh"
#include "src/sim/sim_object.hh"
#include "src/stats/stats.hh"

namespace netcrafter::noc {

/**
 * Link between two flit buffers. Each cycle the link moves up to
 * `flitsPerCycle` flits from source to sink, stalling (and thereby
 * propagating back-pressure) when the sink is full. The link sleeps when
 * idle and is woken by the source buffer's push hook.
 */
class Link : public sim::SimObject
{
  public:
    Link(sim::Engine &engine, std::string name, FlitBuffer &source,
         FlitBuffer &sink, std::uint32_t flits_per_cycle,
         Tick latency = 1);

    /** Wake the link; schedules a transfer event if none is pending. */
    void notify();

    /** Flits transferred over the lifetime of the link. */
    std::uint64_t flitsTransferred() const { return flitsTransferred_; }

    /** Wire bytes transferred (flits x capacity). */
    std::uint64_t bytesTransferred() const { return bytesTransferred_; }

    /** Useful (non-padded) bytes transferred. */
    std::uint64_t usefulBytesTransferred() const
    {
        return usefulBytesTransferred_;
    }

    /** Cycles in which at least one flit moved. */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /** Peak flits/cycle capacity. */
    std::uint32_t flitsPerCycle() const { return flitsPerCycle_; }

    /**
     * Utilization over [0, now]: flits moved / (cycles x capacity).
     * This is the quantity plotted in Figure 4.
     */
    double utilization() const;

    /** First tick at which the link did any work (0 if never). */
    Tick firstBusyTick() const { return firstBusyTick_; }

    /** Last tick at which the link did any work. */
    Tick lastBusyTick() const { return lastBusyTick_; }

    /** Observe every flit crossing the link (traffic monitors). */
    void setObserver(std::function<void(const Flit &)> fn)
    {
        observer_ = std::move(fn);
    }

  private:
    void transfer();

    FlitBuffer &source_;
    FlitBuffer &sink_;
    std::uint32_t flitsPerCycle_;
    Tick latency_;
    sim::SelfScheduling<Link, &Link::transfer> wake_;

    std::function<void(const Flit &)> observer_;
    std::uint64_t flitsTransferred_ = 0;
    std::uint64_t bytesTransferred_ = 0;
    std::uint64_t usefulBytesTransferred_ = 0;
    std::uint64_t busyCycles_ = 0;
    Tick firstBusyTick_ = 0;
    Tick lastBusyTick_ = 0;
    bool everBusy_ = false;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_LINK_HH
