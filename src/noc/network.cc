#include "src/noc/network.hh"

#include <algorithm>
#include <string>

#include "src/sim/logging.hh"

namespace netcrafter::noc {

Network::Network(sim::Engine &engine, const config::SystemConfig &cfg,
                 flow::Fidelity fidelity)
    : SimObject(engine, "network"), cfg_(cfg)
{
    cfg_.validate();
    const std::vector<sim::Engine *> cluster_engines(cfg_.numClusters,
                                                     &engine);
    build(cluster_engines, nullptr);
    if (fidelity != flow::Fidelity::Cycle) {
        flowController_ = std::make_unique<flow::FidelityController>(
            cfg_, fidelity);
        for (auto &[key, il] : interLinks_) {
            flowController_->attachInterLink(key.first, key.second,
                                             il.monitor.get(),
                                             il.channel.get());
        }
    }
}

Network::Network(sim::ShardedEngine &engines,
                 const config::SystemConfig &cfg)
    : SimObject(engines.shard(0), "network"), cfg_(cfg),
      numShards_(engines.numShards())
{
    cfg_.validate();
    std::vector<sim::Engine *> cluster_engines;
    cluster_engines.reserve(cfg_.numClusters);
    for (ClusterId c = 0; c < cfg_.numClusters; ++c) {
        cluster_engines.push_back(
            &engines.shard(sim::shardOfCluster(c, numShards_)));
    }
    build(cluster_engines, &engines);
}

void
Network::build(const std::vector<sim::Engine *> &cluster_engines,
               sim::ShardedEngine *sharded)
{
    const std::uint32_t num_gpus = cfg_.numGpus();
    const std::uint32_t intra_rate = cfg_.intraFlitsPerCycle();
    const std::uint32_t inter_rate = cfg_.interFlitsPerCycle();

    SwitchParams sw_params;
    sw_params.pipelineLatency = cfg_.switchLatency;
    sw_params.bufferEntries = cfg_.switchBufferEntries;

    for (ClusterId c = 0; c < cfg_.numClusters; ++c) {
        switches_.push_back(std::make_unique<Switch>(
            *cluster_engines[c],
            "cluster" + std::to_string(c) + ".switch", sw_params));
    }

    // GPU endpoints and GPU <-> cluster-switch links, all on the GPU's
    // cluster engine.
    for (GpuId g = 0; g < num_gpus; ++g) {
        const ClusterId c = cfg_.clusterOf(g);
        sim::Engine &engine = *cluster_engines[c];
        Switch &sw = *switches_[c];
        rdmas_.push_back(std::make_unique<RdmaEngine>(
            engine, "gpu" + std::to_string(g) + ".rdma", g,
            cfg_.flitBytes, cfg_.rdmaBufferEntries));
        RdmaEngine &rdma = *rdmas_.back();

        const std::size_t port = sw.addPort(intra_rate);
        sw.addRoute(g, port);
        gpuLinks_.push_back(std::make_unique<Link>(
            engine, "gpu" + std::to_string(g) + ".up", rdma.txBuffer(),
            sw.inBuffer(port), intra_rate));
        gpuLinks_.push_back(std::make_unique<Link>(
            engine, "gpu" + std::to_string(g) + ".down",
            sw.outBuffer(port), rdma.rxBuffer(), intra_rate));
    }

    // Inter-cluster full mesh: a directed wire channel per ordered
    // cluster pair. With N clusters the per-switch Cluster Queue SRAM is
    // split across the N-1 egress ports so the Table 2 budget is
    // respected.
    const std::size_t cq_entries_per_port =
        cfg_.numClusters > 1
            ? cfg_.netcrafter.clusterQueueEntries / (cfg_.numClusters - 1)
            : cfg_.netcrafter.clusterQueueEntries;

    std::map<std::pair<ClusterId, ClusterId>, std::size_t> inter_port;
    for (ClusterId from = 0; from < cfg_.numClusters; ++from) {
        for (ClusterId to = 0; to < cfg_.numClusters; ++to) {
            if (from == to)
                continue;
            inter_port[{from, to}] =
                switches_[from]->addPort(inter_rate);
            // Route all GPUs of cluster `to` through this port.
            for (GpuId g = 0; g < num_gpus; ++g) {
                if (cfg_.clusterOf(g) == to)
                    switches_[from]->addRoute(g, inter_port[{from, to}]);
            }
        }
    }

    bool any_cross_shard = false;
    for (ClusterId from = 0; from < cfg_.numClusters; ++from) {
        for (ClusterId to = 0; to < cfg_.numClusters; ++to) {
            if (from == to)
                continue;
            const std::size_t out_port = inter_port[{from, to}];
            const std::size_t in_port = inter_port[{to, from}];
            Switch &src_sw = *switches_[from];
            Switch &dst_sw = *switches_[to];
            sim::Engine &src_engine = *cluster_engines[from];
            sim::Engine &dst_engine = *cluster_engines[to];
            const unsigned src_shard =
                sim::shardOfCluster(from, numShards_);
            const unsigned dst_shard =
                sim::shardOfCluster(to, numShards_);

            InterLink il;
            il.monitor = std::make_unique<TrafficMonitor>();
            il.channel = std::make_unique<WireChannel>(
                src_engine, dst_engine,
                "inter" + std::to_string(from) + "to" + std::to_string(to),
                src_sw.outBuffer(out_port), dst_sw.inBuffer(in_port),
                inter_rate, cfg_.interLinkLatency, src_shard, dst_shard);
            TrafficMonitor *mon = il.monitor.get();
            il.channel->setObserver(
                [mon](const Flit &flit) { mon->observe(flit); });
            if (il.channel->crossShard()) {
                NC_ASSERT(sharded != nullptr,
                          "cross-shard channel without a sharded engine");
                sharded->registerPort(*il.channel);
                any_cross_shard = true;
            }

            if (cfg_.netcrafter.anyEnabled()) {
                config::NetCrafterConfig nc_cfg = cfg_.netcrafter;
                nc_cfg.clusterQueueEntries = cq_entries_per_port;
                const config::SystemConfig &sys = cfg_;
                Switch *src_ptr = &src_sw;
                il.controller =
                    std::make_unique<core::NetCrafterController>(
                        src_engine,
                        "cluster" + std::to_string(from) +
                            ".netcrafter.to" + std::to_string(to),
                        nc_cfg,
                        [sys](GpuId g) { return sys.clusterOf(g); },
                        std::vector<ClusterId>{to},
                        src_sw.outBuffer(out_port), inter_rate,
                        [src_ptr] { src_ptr->notify(); });
                src_sw.setEgressProcessor(out_port, il.controller.get());

                il.unstitcher = std::make_unique<core::Unstitcher>();
                dst_sw.setIngressProcessor(in_port, il.unstitcher.get());
            }
            interLinks_.emplace(std::make_pair(from, to), std::move(il));
        }
    }

    // Every inter-cluster channel shares cfg_.interLinkLatency, which
    // is therefore the conservative lookahead.
    if (any_cross_shard)
        sharded->setLookahead(cfg_.interLinkLatency);
}

void
Network::sendPacket(PacketPtr pkt)
{
    NC_ASSERT(pkt->src < rdmas_.size() && pkt->dst < rdmas_.size(),
              "packet endpoints out of range: ", pkt->toString());
    pkt->interCluster =
        cfg_.clusterOf(pkt->src) != cfg_.clusterOf(pkt->dst);
    rdmas_[pkt->src]->sendPacket(std::move(pkt));
}

const TrafficMonitor &
Network::interClusterMonitor(ClusterId from, ClusterId to) const
{
    return *interLinks_.at({from, to}).monitor;
}

const WireChannel &
Network::interClusterChannel(ClusterId from, ClusterId to) const
{
    return *interLinks_.at({from, to}).channel;
}

double
Network::interClusterUtilization() const
{
    if (interLinks_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->utilization();
    return sum / static_cast<double>(interLinks_.size());
}

TrafficMonitor
Network::aggregateInterClusterTraffic() const
{
    // Monitors are additive; re-observe is not possible, so sum fields
    // via a simple merge: rely on the fact that monitors only ever
    // accumulate. We rebuild an aggregate by merging counters.
    TrafficMonitor agg;
    for (const auto &[key, il] : interLinks_)
        agg.merge(*il.monitor);
    return agg;
}

const core::NetCrafterController *
Network::controller(ClusterId from, ClusterId to) const
{
    auto it = interLinks_.find({from, to});
    if (it == interLinks_.end())
        return nullptr;
    return it->second.controller.get();
}

std::uint64_t
Network::interClusterFlits() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->flitsTransferred();
    return sum;
}

std::uint64_t
Network::interClusterWireBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->bytesTransferred();
    return sum;
}

std::uint64_t
Network::crossShardFlits() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->flitsRematerialized();
    return sum;
}

std::size_t
Network::maxIngressDepth() const
{
    std::size_t depth = 0;
    for (const auto &[key, il] : interLinks_)
        depth = std::max(depth, il.channel->maxIngressDepth());
    return depth;
}

std::uint64_t
Network::interClusterFlitsDelivered() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->flitsDelivered();
    return sum;
}

std::uint64_t
Network::interClusterBytesDelivered() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->bytesDelivered();
    return sum;
}

std::uint64_t
Network::lateSlottedFlits() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->lateSlottedFlits();
    return sum;
}

std::uint64_t
Network::lateSlottedCredits() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->lateSlottedCredits();
    return sum;
}

std::uint64_t
Network::lateDisplacementTicks() const
{
    std::uint64_t sum = 0;
    for (const auto &[key, il] : interLinks_)
        sum += il.channel->lateDisplacementTicks();
    return sum;
}

std::uint64_t
Network::maxLateDisplacement() const
{
    std::uint64_t max = 0;
    for (const auto &[key, il] : interLinks_)
        max = std::max(max, il.channel->maxLateDisplacement());
    return max;
}

} // namespace netcrafter::noc
