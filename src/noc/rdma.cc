#include "src/noc/rdma.hh"

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::noc {

RdmaEngine::RdmaEngine(sim::Engine &engine, std::string name, GpuId gpu,
                       std::uint32_t flit_bytes,
                       std::size_t buffer_entries)
    : SimObject(engine, std::move(name)), gpu_(gpu),
      flitBytes_(flit_bytes), tx_(buffer_entries), rx_(buffer_entries),
      txWake_(engine, this), rxWake_(engine, this)
{
    // Space freed in the TX buffer lets queued flits advance.
    tx_.setOnPop([this] {
        if (!sendQueue_.empty())
            txWake_.notify();
    });
    // Arriving flits trigger reassembly.
    rx_.setOnPush([this] { rxWake_.notify(); });
    traceLane_ = obs::internLane(engine, this->name());
}

void
RdmaEngine::sendPacket(PacketPtr pkt)
{
    pkt->injectedAt = now();
    ++packetsSent_;
    obs::tracepoint(engine(), obs::TraceLevel::Packets,
                    obs::TraceKind::PktStage, obs::TraceStage::RdmaInject,
                    traceLane_, pkt->id, pkt->totalBytes(),
                    static_cast<std::uint32_t>(pkt->type));
    for (auto &flit : segmentPacket(pkt, flitBytes_))
        sendQueue_.push_back(std::move(flit));
    txWake_.notify();
}

void
RdmaEngine::pumpTx()
{
    txWake_.clearPending();
    while (!sendQueue_.empty() && !tx_.full()) {
        tx_.tryPush(std::move(sendQueue_.front()));
        sendQueue_.pop_front();
    }
    // A full TX buffer re-arms via the pop hook.
}

void
RdmaEngine::pumpRx()
{
    rxWake_.clearPending();
    while (!rx_.empty()) {
        FlitPtr flit = rx_.pop();
        NC_ASSERT(!flit->isStitched(),
                  name(), ": stitched flit reached endpoint; the cluster "
                          "switch should have un-stitched it");
        PacketPtr pkt = flit->pkt;
        NC_ASSERT(pkt->dst == gpu_, name(), ": misrouted flit for GPU ",
                  pkt->dst);
        std::uint32_t &got = reassembly_[pkt->id];
        got += flit->occupiedBytes;
        NC_ASSERT(got <= pkt->totalBytes(), "reassembly overflow for ",
                  pkt->toString());
        if (got == pkt->totalBytes()) {
            reassembly_.erase(pkt->id);
            ++packetsReceived_;
            obs::tracepoint(engine(), obs::TraceLevel::Packets,
                            obs::TraceKind::PktStage,
                            obs::TraceStage::RdmaDeliver, traceLane_,
                            pkt->id, pkt->totalBytes(),
                            static_cast<std::uint32_t>(pkt->type));
            if (isResponseType(pkt->type)) {
                NC_ASSERT(responseHandler_ != nullptr,
                          name(), ": no response handler");
                responseHandler_(std::move(pkt));
            } else {
                NC_ASSERT(requestHandler_ != nullptr,
                          name(), ": no request handler");
                requestHandler_(std::move(pkt));
            }
        }
    }
}

} // namespace netcrafter::noc
