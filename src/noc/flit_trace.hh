/**
 * @file
 * Flit-level trace recorder: attaches to Link observers and collects one
 * CSV row per flit crossing the observed links — the raw material for
 * offline traffic analysis (occupancy plots, inter-arrival studies,
 * stitching audits) without recompiling the simulator.
 *
 * Sharded-safe by construction: each observer buffers rows privately
 * (an observed link is pumped by exactly one shard thread), and
 * writeCsv() merges the buffers into one deterministic order — sorted
 * by (tick, link, packet id, seq) — so the CSV is byte-identical no
 * matter how the links were partitioned onto shards. Nothing is
 * streamed during the run.
 */

#ifndef NETCRAFTER_NOC_FLIT_TRACE_HH
#define NETCRAFTER_NOC_FLIT_TRACE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/noc/flit.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {

/**
 * Collects per-flit rows and writes them as one merged CSV. Attach via
 * observer():
 *
 *   FlitTracer tracer;
 *   link.setObserver(tracer.observer("inter0to1", engine));
 *   ... run ...
 *   tracer.writeCsv(out);
 *
 * Each observer must only fire on its engine's shard thread (true for
 * link/wire-channel observers). Create observers before the run;
 * writeCsv() and rows() only after it.
 */
class FlitTracer
{
  public:
    FlitTracer() = default;

    /**
     * An observer callback tagging rows with @p link_name and
     * timestamping them from @p engine (the shard that pumps the
     * observed link).
     */
    std::function<void(const Flit &)> observer(std::string link_name,
                                               sim::Engine &engine);

    /** Rows recorded so far, across every observer. */
    std::uint64_t rows() const;

    /** Merge all observers' rows and write the CSV to @p os. */
    void writeCsv(std::ostream &os) const;

    /** The CSV header writeCsv emits. */
    static const char *header();

  private:
    /** One recorded flit crossing; everything the CSV row needs. */
    struct Row
    {
        Tick tick = 0;
        std::uint64_t pktId = 0;
        PacketType type = PacketType::ReadReq;
        GpuId src = 0;
        GpuId dst = 0;
        std::uint32_t seq = 0;
        std::uint32_t numFlits = 0;
        std::uint16_t occupiedBytes = 0;
        std::uint16_t usedBytes = 0;
        std::uint16_t stitchedPieces = 0;
        bool latencyCritical = false;
        bool trimmed = false;
    };

    /** Per-observer buffer: written by one shard thread only. */
    struct Channel
    {
        std::string link;
        sim::Engine *engine = nullptr;
        std::vector<Row> rows;
    };

    /** unique_ptr keeps Channel addresses stable across observer(). */
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_FLIT_TRACE_HH
