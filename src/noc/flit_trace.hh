/**
 * @file
 * Flit-level trace recorder: attaches to Link observers and writes one
 * CSV row per flit crossing the observed links — the raw material for
 * offline traffic analysis (occupancy plots, inter-arrival studies,
 * stitching audits) without recompiling the simulator.
 */

#ifndef NETCRAFTER_NOC_FLIT_TRACE_HH
#define NETCRAFTER_NOC_FLIT_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "src/noc/flit.hh"
#include "src/sim/engine.hh"

namespace netcrafter::noc {

/**
 * Streams a CSV trace of observed flits. Attach via observer():
 *
 *   FlitTracer tracer(engine, out);
 *   link.setObserver(tracer.observer("inter0to1"));
 */
class FlitTracer
{
  public:
    /** @param engine supplies timestamps. @param os receives CSV rows. */
    FlitTracer(sim::Engine &engine, std::ostream &os);

    /** An observer callback tagging rows with @p link_name. */
    std::function<void(const Flit &)> observer(std::string link_name);

    /** Rows written so far. */
    std::uint64_t rows() const { return rows_; }

    /** The CSV header this tracer writes. */
    static const char *header();

  private:
    void record(const std::string &link, const Flit &flit);

    sim::Engine &engine_;
    std::ostream &os_;
    std::uint64_t rows_ = 0;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_FLIT_TRACE_HH
