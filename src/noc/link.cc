#include "src/noc/link.hh"

namespace netcrafter::noc {

Link::Link(sim::Engine &engine, std::string name, FlitBuffer &source,
           FlitBuffer &sink, std::uint32_t flits_per_cycle, Tick latency)
    : SimObject(engine, std::move(name)), source_(source), sink_(sink),
      flitsPerCycle_(flits_per_cycle), latency_(latency),
      wake_(engine, this)
{
    NC_ASSERT(flitsPerCycle_ > 0, "link needs positive bandwidth");
    source_.setOnPush([this] { notify(); });
    // The sink's pop hook belongs to this link: freeing space may unstall
    // a transfer. The sink's push hook belongs to the sink's consumer.
    sink_.setOnPop([this] { notify(); });
    (void)latency_;
}

void
Link::notify()
{
    wake_.notify();
}

void
Link::transfer()
{
    wake_.clearPending();
    std::uint32_t moved = 0;
    while (moved < flitsPerCycle_ && !source_.empty() && !sink_.full()) {
        FlitPtr flit = source_.pop();
        bytesTransferred_ += flit->capacity;
        usefulBytesTransferred_ += flit->usedBytes();
        ++flitsTransferred_;
        ++moved;
        if (observer_)
            observer_(*flit);
        sink_.tryPush(std::move(flit));
    }
    if (moved > 0) {
        ++busyCycles_;
        if (!everBusy_) {
            everBusy_ = true;
            firstBusyTick_ = now();
        }
        lastBusyTick_ = now();
    }
    // Keep draining while work remains and the sink has room; a full sink
    // wakes us again via its pop hook.
    if (!source_.empty() && !sink_.full())
        notify();
}

double
Link::utilization() const
{
    Tick elapsed = now();
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(flitsTransferred_) /
           (static_cast<double>(elapsed) * flitsPerCycle_);
}

} // namespace netcrafter::noc
