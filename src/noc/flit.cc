#include "src/noc/flit.hh"

#include "src/sim/logging.hh"

namespace netcrafter::noc {

FlitPtr
makeFlit()
{
    return sim::ObjectPool<Flit>::local().allocate();
}

FlitPtr
makeFlit(const Flit &other)
{
    FlitPtr flit = sim::ObjectPool<Flit>::local().allocate();
    *flit = other;
    return flit;
}

std::vector<FlitPtr>
segmentPacket(const PacketPtr &pkt, std::uint32_t flit_bytes)
{
    NC_ASSERT(flit_bytes > 0, "flit size must be positive");
    const std::uint32_t total = pkt->totalBytes();
    const std::uint32_t n = flitsForBytes(total, flit_bytes);

    std::vector<FlitPtr> flits;
    flits.reserve(n);
    std::uint32_t remaining = total;
    for (std::uint32_t i = 0; i < n; ++i) {
        FlitPtr flit = makeFlit();
        flit->pkt = pkt;
        flit->seq = i;
        flit->numFlits = n;
        flit->capacity = static_cast<std::uint16_t>(flit_bytes);
        flit->occupiedBytes = static_cast<std::uint16_t>(
            remaining >= flit_bytes ? flit_bytes : remaining);
        remaining -= flit->occupiedBytes;
        flits.push_back(std::move(flit));
    }
    NC_ASSERT(remaining == 0, "segmentation lost bytes");
    return flits;
}

} // namespace netcrafter::noc
