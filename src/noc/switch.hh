/**
 * @file
 * Crossbar-style network switch (Section 5.1): flits entering a port pass
 * through a 30-cycle processing pipeline at the port's line rate, then are
 * routed to the output buffer of the destination port. Full output buffers
 * pause routing, creating back-pressure that propagates upstream.
 *
 * Two extension points realize NetCrafter inside the cluster switch:
 *  - an EgressProcessor attached to a port intercepts flits routed to it
 *    (the NetCrafter controller with its Cluster Queue), and
 *  - an IngressProcessor attached to a port transforms arriving flits
 *    before routing (the un-stitching engine).
 */

#ifndef NETCRAFTER_NOC_SWITCH_HH
#define NETCRAFTER_NOC_SWITCH_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/noc/flit_buffer.hh"
#include "src/sim/self_scheduling.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::noc {

/**
 * Intercepts flits routed toward an output port. Returning false from
 * tryAccept() stalls routing for that flit (back-pressure); the processor
 * must later wake the switch when it can accept again.
 */
class EgressProcessor
{
  public:
    virtual ~EgressProcessor() = default;

    /** Offer @p flit; return false to stall. */
    virtual bool tryAccept(FlitPtr flit) = 0;
};

/**
 * Transforms flits arriving on an input port before they enter the
 * routing pipeline (e.g. un-stitching one wire flit into several).
 */
class IngressProcessor
{
  public:
    virtual ~IngressProcessor() = default;

    /** Expand/rewrite @p flit into zero or more flits appended to @p out. */
    virtual void process(FlitPtr flit, std::vector<FlitPtr> &out) = 0;
};

/** Configuration for one switch. */
struct SwitchParams
{
    /** Pipeline latency in cycles (Table 2: 30). */
    Tick pipelineLatency = 30;

    /** I/O buffer capacity in flits (Table 2: 1024). */
    std::size_t bufferEntries = 1024;
};

/**
 * A switch with N ports. Port speeds (flits/cycle) match the attached
 * link so a 128 GB/s GPU-facing port is not throttled to the 16 GB/s
 * inter-cluster rate.
 */
class Switch : public sim::SimObject
{
  public:
    Switch(sim::Engine &engine, std::string name, const SwitchParams &params);

    /**
     * Add a port with the given line rate; returns the port index.
     * The port's buffers are owned by the switch; links attach to them.
     */
    std::size_t addPort(std::uint32_t flits_per_cycle);

    /** Input buffer of @p port (links deliver into this). */
    FlitBuffer &inBuffer(std::size_t port);

    /** Output buffer of @p port (links drain from this). */
    FlitBuffer &outBuffer(std::size_t port);

    /** Route flits destined for GPU @p dst out of @p port. */
    void addRoute(GpuId dst, std::size_t port);

    /** Attach an egress processor to @p port. */
    void setEgressProcessor(std::size_t port, EgressProcessor *proc);

    /** Attach an ingress processor to @p port. */
    void setIngressProcessor(std::size_t port, IngressProcessor *proc);

    /** Wake the switch scheduler (idempotent within a cycle). */
    void notify();

    /** Output port a flit destined to @p dst routes to. */
    std::size_t routeFor(GpuId dst) const;

    /** Total flits routed through the crossbar. */
    std::uint64_t flitsRouted() const { return flitsRouted_; }

    /** Cycles in which routing stalled on a full output. */
    std::uint64_t stallCycles() const { return stallCycles_; }

  private:
    struct PipelineEntry
    {
        FlitPtr flit;
        Tick readyAt;
    };

    struct Port
    {
        std::uint32_t speed = 1;
        std::unique_ptr<FlitBuffer> in;
        std::unique_ptr<FlitBuffer> out;
        std::deque<PipelineEntry> pipeline;
        IngressProcessor *ingress = nullptr;
        EgressProcessor *egress = nullptr;

        /** Head flit is ready but its output cannot accept it. */
        bool blockedOnOutput = false;
    };

    void cycle();
    bool hasWork() const;

    SwitchParams params_;
    std::vector<Port> ports_;
    std::unordered_map<GpuId, std::size_t> routes_;
    sim::SelfScheduling<Switch, &Switch::cycle> wake_;
    Tick lastCycleTick_ = kTickNever;
    Tick pendingLongWake_ = 0;

    std::uint64_t flitsRouted_ = 0;
    std::uint64_t stallCycles_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_SWITCH_HH
