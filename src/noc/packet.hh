/**
 * @file
 * Network packet model. We follow the paper's simplified PCIe-style
 * packet (Section 4.1, Table 1): a packet is a header plus payload.
 *
 *  - Header is 12 bytes (4B metadata + 8B address) for Read/Write/Page-
 *    Table requests and Page-Table responses; 4 bytes (metadata only) for
 *    Read/Write responses.
 *  - Payload is the 64B cache line for WriteReq and ReadRsp; empty
 *    otherwise (the PT response's 8B physical address lives in its
 *    header's address field).
 *
 * This reproduces Table 1 exactly for 16B flits:
 *
 *    type     occupied required padded flits
 *    ReadReq        16       12      4     1
 *    WriteReq       80       76      4     5
 *    PTReq          16       12      4     1
 *    ReadRsp        80       68     12     5
 *    WriteRsp       16        4     12     1
 *    PTRsp          16       12      4     1
 */

#ifndef NETCRAFTER_NOC_PACKET_HH
#define NETCRAFTER_NOC_PACKET_HH

#include <cstdint>
#include <string>

#include "src/sim/pool.hh"
#include "src/sim/types.hh"

namespace netcrafter::noc {

/** The six traffic categories of Table 1. */
enum class PacketType : std::uint8_t
{
    ReadReq = 0,
    WriteReq,
    PageTableReq,
    ReadRsp,
    WriteRsp,
    PageTableRsp,
};

/** Number of distinct packet types. */
inline constexpr std::size_t kNumPacketTypes = 6;

/** Short printable name of a packet type. */
const char *packetTypeName(PacketType type);

/** Header bytes for a packet type (4B metadata [+ 8B address]). */
constexpr std::uint32_t
headerBytes(PacketType type)
{
    switch (type) {
      case PacketType::ReadRsp:
      case PacketType::WriteRsp:
        return 4;
      default:
        return 12;
    }
}

/** Default payload bytes for a packet type (before any trimming). */
constexpr std::uint32_t
defaultPayloadBytes(PacketType type)
{
    switch (type) {
      case PacketType::WriteReq:
      case PacketType::ReadRsp:
        return kCacheLineBytes;
      default:
        return 0;
    }
}

/** True for page-table-walk related traffic (latency critical, Obs. 3). */
constexpr bool
isPtwType(PacketType type)
{
    return type == PacketType::PageTableReq ||
           type == PacketType::PageTableRsp;
}

/** True for response types. */
constexpr bool
isResponseType(PacketType type)
{
    return type == PacketType::ReadRsp || type == PacketType::WriteRsp ||
           type == PacketType::PageTableRsp;
}

struct Packet;

/**
 * Shared handle to a pooled packet (see sim/pool.hh). Packets recycle
 * through a thread-local arena instead of the heap; holders may keep the
 * handle as long as they like — the node is only reused after the last
 * handle drops.
 */
using PacketPtr = sim::PooledPtr<Packet>;

/**
 * A network packet travelling between two GPUs' RDMA engines.
 *
 * The trim* fields model the three repurposed bits in the unused upper
 * address bits (Section 4.3): one bit saying whether the request needs at
 * most one sector, and two bits giving the sector offset in the 64B line.
 */
struct Packet : sim::PoolRefCount
{
    /** Packet id, unique within one system (the header's id tag). */
    std::uint64_t id = 0;

    PacketType type = PacketType::ReadReq;

    /** Source endpoint (GPU whose RDMA engine injected the packet). */
    GpuId src = kGpuInvalid;

    /** Destination endpoint. */
    GpuId dst = kGpuInvalid;

    /** Memory address the transaction refers to. */
    Addr addr = kAddrInvalid;

    /** Payload bytes carried; reduced by the Trim Engine when trimmed. */
    std::uint32_t payloadBytes = 0;

    /**
     * Bytes of the cache line the requesting wavefront actually needs
     * (set by the coalescer on requests, copied onto responses).
     * 0 means unknown / not applicable.
     */
    std::uint8_t bytesNeeded = 0;

    /** First needed byte's offset within the cache line. */
    std::uint8_t neededOffset = 0;

    /** Trim request bit: requester needs <= one sector of the line. */
    bool trimEligible = false;

    /** Set by the Trim Engine once payload has been trimmed. */
    bool trimmed = false;

    /** Sector index within the line that a trimmed response carries. */
    std::uint8_t trimSector = 0;

    /**
     * Latency-critical marker used by Sequencing and Selective Flit
     * Pooling. Normally set for PTW-related packets; the Figure 8
     * counterfactual instead sets it on a sampled subset of data packets.
     */
    bool latencyCritical = false;

    /** For responses: the id of the request packet being answered. */
    std::uint64_t reqId = 0;

    /** Tick at which the packet was injected (for latency statistics). */
    Tick injectedAt = 0;

    /** True when the src and dst GPUs are in different clusters. */
    bool interCluster = false;

    /** Total bytes on the wire: header plus (possibly trimmed) payload. */
    std::uint32_t
    totalBytes() const
    {
        return headerBytes(type) + payloadBytes;
    }

    /** True for PTW-related packets. */
    bool isPtw() const { return isPtwType(type); }

    /** Debug string. */
    std::string toString() const;

    /** Pool hook: restore the default-constructed state. */
    void resetForReuse() { *this = Packet{}; }
};

/**
 * Create a packet of @p type with a fresh unique id and the type's
 * default payload size. Ids are namespaced by @p src so that the
 * sequence a GPU's packets receive does not depend on how the system is
 * sharded across threads (see packet.cc).
 */
PacketPtr makePacket(PacketType type, GpuId src, GpuId dst, Addr addr);

/**
 * Acquire a fresh pooled packet holding a field-for-field copy of
 * @p original, id included. The wire channels use this to re-materialize
 * a packet into the destination shard's thread-local pool when a flit
 * crosses a shard boundary: pooled refcounts are non-atomic, so the
 * source shard's object must never be shared, and downstream consumers
 * (RDMA reassembly, request/response matching) identify packets by id,
 * never by object address.
 */
PacketPtr clonePacket(const Packet &original);

/** Reset this thread's packet id allocator (run on system construction). */
void resetPacketIds();

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_PACKET_HH
