/**
 * @file
 * Flits: the fixed-size flow-control units packets are segmented into
 * (Section 4.1, Figure 11). A flit may additionally carry *stitched*
 * pieces of other packets in its otherwise-padded bytes (Section 4.2).
 */

#ifndef NETCRAFTER_NOC_FLIT_HH
#define NETCRAFTER_NOC_FLIT_HH

#include <cstdint>
#include <vector>

#include "src/noc/packet.hh"
#include "src/sim/pool.hh"
#include "src/sim/types.hh"

namespace netcrafter::noc {

/** Default flit size used throughout the paper's evaluation. */
inline constexpr std::uint32_t kDefaultFlitBytes = 16;

/**
 * Wire overhead added when stitching a *partial* (payload-only) candidate:
 * a 2-byte identification tag plus a 1-byte Size field (Section 4.2).
 * Whole-packet candidates stitch for free since they carry their header.
 */
inline constexpr std::uint32_t kPartialStitchMetaBytes = 3;

struct Flit;

/** Shared handle to a pooled flit (see sim/pool.hh and PacketPtr). */
using FlitPtr = sim::PooledPtr<Flit>;

/**
 * A candidate flit absorbed into a parent flit by the Stitching Engine.
 * The piece remembers everything needed to reconstruct the original flit
 * at the un-stitching end.
 */
struct StitchedPiece
{
    /** The packet the stitched flit belonged to. */
    PacketPtr pkt;

    /** Useful packet bytes the stitched flit carried. */
    std::uint16_t bytes = 0;

    /** Sequence number of the stitched flit within its packet. */
    std::uint32_t seq = 0;

    /** Total flits of the stitched flit's packet. */
    std::uint32_t numFlits = 1;

    /**
     * True when the candidate contained the complete packet (header and
     * payload); such pieces need no extra metadata on the wire.
     */
    bool wholePacket = false;

    /** Wire bytes consumed: payload plus ID+Size metadata if partial. */
    std::uint16_t
    wireBytes() const
    {
        return bytes + (wholePacket ? 0 : kPartialStitchMetaBytes);
    }
};

/**
 * One flow-control unit. `occupiedBytes` are the useful bytes of the
 * parent packet; `capacity - usedBytes()` are padded (wasted) unless the
 * Stitching Engine fills them with pieces of other packets.
 */
struct Flit : sim::PoolRefCount
{
    /** Parent packet. */
    PacketPtr pkt;

    /** Index of this flit within the parent packet (0-based). */
    std::uint32_t seq = 0;

    /** Total number of flits the parent packet was segmented into. */
    std::uint32_t numFlits = 1;

    /** Useful bytes of the parent packet carried by this flit. */
    std::uint16_t occupiedBytes = 0;

    /** Flit size in bytes (16 by default; 8 in the Fig. 21 study). */
    std::uint16_t capacity = kDefaultFlitBytes;

    /** Pieces of other packets stitched into this flit's free space. */
    std::vector<StitchedPiece> stitched;

    /**
     * Set once Flit Pooling has deferred this flit; after the pooling
     * window expires the flit is ejected even without a candidate
     * (Section 4.2, Optimization I).
     */
    bool pooledOnce = false;

    /** True if this is the first flit of the packet (carries header). */
    bool isHead() const { return seq == 0; }

    /** True if this is the last flit of the packet. */
    bool isTail() const { return seq + 1 == numFlits; }

    /** True when the repurposed type-field encoding marks stitching. */
    bool isStitched() const { return !stitched.empty(); }

    /** Wire bytes in use: own payload plus stitched pieces w/ metadata. */
    std::uint16_t
    usedBytes() const
    {
        std::uint16_t used = occupiedBytes;
        for (const auto &piece : stitched)
            used += piece.wireBytes();
        return used;
    }

    /** Free (padded) bytes available for stitching. */
    std::uint16_t
    freeBytes() const
    {
        std::uint16_t used = usedBytes();
        return used >= capacity ? 0 : capacity - used;
    }

    /**
     * True when this flit can be absorbed as a stitching candidate:
     * either it contains its entire (single-flit) packet, or it is a
     * payload-only continuation flit. Head flits of multi-flit packets
     * are always full in our packet format, so they never qualify by
     * size anyway; excluding them keeps un-stitching simple.
     */
    bool
    stitchable() const
    {
        if (isStitched())
            return false;
        return numFlits == 1 || !isHead();
    }

    /** Wire bytes a stitching of this flit would consume in a parent. */
    std::uint16_t
    stitchWireBytes() const
    {
        return occupiedBytes +
               (numFlits == 1 ? 0 : kPartialStitchMetaBytes);
    }

    /**
     * Pool hook: restore the default-constructed state. clear() rather
     * than reassignment keeps the stitched vector's capacity, so a
     * recycled flit stitches without reallocating.
     */
    void
    resetForReuse()
    {
        pkt = nullptr;
        seq = 0;
        numFlits = 1;
        occupiedBytes = 0;
        capacity = kDefaultFlitBytes;
        stitched.clear();
        pooledOnce = false;
    }
};

/** Acquire a default-initialised flit from this thread's pool. */
FlitPtr makeFlit();

/** Acquire a flit initialised as a copy of @p other's payload. */
FlitPtr makeFlit(const Flit &other);

/**
 * Segment @p pkt into flits of @p flit_bytes each. The head flit carries
 * the header and the first payload bytes; the tail flit may be partly
 * empty (padded) when totalBytes() is not a multiple of the flit size.
 */
std::vector<FlitPtr> segmentPacket(const PacketPtr &pkt,
                                   std::uint32_t flit_bytes);

/** Number of flits @p total_bytes occupy at @p flit_bytes granularity. */
constexpr std::uint32_t
flitsForBytes(std::uint32_t total_bytes, std::uint32_t flit_bytes)
{
    return total_bytes == 0
               ? 1
               : static_cast<std::uint32_t>(
                     divCeil(total_bytes, flit_bytes));
}

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_FLIT_HH
