/**
 * @file
 * Bounded FIFO of flits with push/pop notification hooks, used for the
 * switch I/O buffers and endpoint injection queues. The hooks let idle
 * consumers (links, switch schedulers) wake up without per-cycle polling.
 */

#ifndef NETCRAFTER_NOC_FLIT_BUFFER_HH
#define NETCRAFTER_NOC_FLIT_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "src/noc/flit.hh"
#include "src/sim/logging.hh"

namespace netcrafter::noc {

/** A bounded flit FIFO. */
class FlitBuffer
{
  public:
    explicit FlitBuffer(std::size_t capacity) : capacity_(capacity) {}

    bool empty() const { return q_.empty(); }
    bool full() const { return q_.size() >= capacity_; }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Push @p flit; returns false (and drops nothing) when full. */
    bool
    tryPush(FlitPtr flit)
    {
        if (full())
            return false;
        q_.push_back(std::move(flit));
        ++pushes_;
        if (q_.size() > maxOccupancy_)
            maxOccupancy_ = q_.size();
        if (onPush_)
            onPush_();
        return true;
    }

    /** Front flit; requires !empty(). */
    const FlitPtr &
    front() const
    {
        NC_ASSERT(!q_.empty(), "front() on empty flit buffer");
        return q_.front();
    }

    /** Pop and return the front flit; requires !empty(). */
    FlitPtr
    pop()
    {
        NC_ASSERT(!q_.empty(), "pop() on empty flit buffer");
        FlitPtr flit = std::move(q_.front());
        q_.pop_front();
        if (onPop_)
            onPop_();
        return flit;
    }

    /** Hook invoked after every successful push. */
    void setOnPush(std::function<void()> fn) { onPush_ = std::move(fn); }

    /** Hook invoked after every pop (space freed). */
    void setOnPop(std::function<void()> fn) { onPop_ = std::move(fn); }

    /** Lifetime total of pushed flits. */
    std::uint64_t pushes() const { return pushes_; }

    /** High-water mark of occupancy. */
    std::size_t maxOccupancy() const { return maxOccupancy_; }

  private:
    std::size_t capacity_;
    std::deque<FlitPtr> q_;
    std::function<void()> onPush_;
    std::function<void()> onPop_;
    std::uint64_t pushes_ = 0;
    std::size_t maxOccupancy_ = 0;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_FLIT_BUFFER_HH
