/**
 * @file
 * Per-link traffic census used to regenerate Figures 6, 9, 12 and 20:
 * flit/byte counts per traffic category, padding occupancy buckets, PTW
 * versus data volume, and stitching effectiveness.
 */

#ifndef NETCRAFTER_NOC_TRAFFIC_MONITOR_HH
#define NETCRAFTER_NOC_TRAFFIC_MONITOR_HH

#include <array>
#include <cstdint>

#include "src/noc/flit.hh"
#include "src/noc/packet.hh"

namespace netcrafter::noc {

/** Accumulates a census of every flit it observes on a link. */
class TrafficMonitor
{
  public:
    /** Record one flit crossing the observed link. */
    void observe(const Flit &flit);

    /**
     * Record a whole packet the flow lane carried across the observed
     * link without materializing flits (src/flow/). @p wire_flits is
     * the number of flits the packet synthesizes on the wire — zero
     * for a packet the stitch approximation absorbed into another
     * packet's padding, which is then censused like a stitched piece.
     * Keeps every headline census field (totals, per-type, padding
     * buckets, PTW share, stitch counts) consistent across fidelities.
     */
    void observeFlowPacket(const Packet &pkt, std::uint32_t wire_flits,
                           std::uint32_t flit_bytes);

    // --- Totals ----------------------------------------------------------
    std::uint64_t totalFlits() const { return totalFlits_; }
    std::uint64_t totalWireBytes() const { return totalWireBytes_; }
    std::uint64_t totalUsefulBytes() const { return totalUsefulBytes_; }
    std::uint64_t totalPaddedBytes() const
    {
        return totalWireBytes_ - totalUsefulBytes_;
    }

    // --- Per-category ------------------------------------------------------
    std::uint64_t flitsOfType(PacketType t) const
    {
        return flitsByType_[static_cast<std::size_t>(t)];
    }
    std::uint64_t bytesOfType(PacketType t) const
    {
        return bytesByType_[static_cast<std::size_t>(t)];
    }
    std::uint64_t packetsOfType(PacketType t) const
    {
        return packetsByType_[static_cast<std::size_t>(t)];
    }

    /** Useful bytes of PTW-related traffic (Figure 9 numerator). */
    std::uint64_t ptwBytes() const { return ptwBytes_; }

    /** Useful bytes of data (non-PTW) traffic. */
    std::uint64_t dataBytes() const
    {
        return totalUsefulBytes_ - ptwBytes_;
    }

    /** Fraction of useful bytes that are PTW-related. */
    double
    ptwByteFraction() const
    {
        return totalUsefulBytes_
                   ? static_cast<double>(ptwBytes_) / totalUsefulBytes_
                   : 0.0;
    }

    // --- Padding census (Figure 6) ---------------------------------------
    /** Flits whose padded fraction is ~25% (e.g. 4 of 16 bytes). */
    std::uint64_t flitsQuarterPadded() const { return quarterPadded_; }

    /** Flits whose padded fraction is ~75% (e.g. 12 of 16 bytes). */
    std::uint64_t flitsThreeQuarterPadded() const
    {
        return threeQuarterPadded_;
    }

    /** Flits with any padding at all. */
    std::uint64_t flitsWithPadding() const { return flitsWithPadding_; }

    /** Fraction of flits with ~25% or ~75% padding (Figure 6 metric). */
    double
    fractionQuarterOrThreeQuarterPadded() const
    {
        return totalFlits_ ? static_cast<double>(quarterPadded_ +
                                                 threeQuarterPadded_) /
                                 totalFlits_
                           : 0.0;
    }

    // --- Stitching (Figures 12, 20) ---------------------------------------
    /** Wire flits that carried stitched pieces. */
    std::uint64_t stitchedParentFlits() const
    {
        return stitchedParentFlits_;
    }

    /** Candidate flits absorbed into parents (flits saved). */
    std::uint64_t stitchedPieces() const { return stitchedPieces_; }

    /**
     * Fraction of logical flits that travelled stitched inside another
     * flit instead of on their own (Figure 12 metric).
     */
    double
    stitchedFlitFraction() const
    {
        std::uint64_t logical = totalFlits_ + stitchedPieces_;
        return logical ? static_cast<double>(stitchedPieces_) / logical
                       : 0.0;
    }

    /** Add another monitor's counts into this one (aggregation). */
    void merge(const TrafficMonitor &other);

    void reset();

  private:
    std::uint64_t totalFlits_ = 0;
    std::uint64_t totalWireBytes_ = 0;
    std::uint64_t totalUsefulBytes_ = 0;
    std::uint64_t ptwBytes_ = 0;
    std::uint64_t quarterPadded_ = 0;
    std::uint64_t threeQuarterPadded_ = 0;
    std::uint64_t flitsWithPadding_ = 0;
    std::uint64_t stitchedParentFlits_ = 0;
    std::uint64_t stitchedPieces_ = 0;
    std::array<std::uint64_t, kNumPacketTypes> flitsByType_{};
    std::array<std::uint64_t, kNumPacketTypes> bytesByType_{};
    std::array<std::uint64_t, kNumPacketTypes> packetsByType_{};
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_TRAFFIC_MONITOR_HH
