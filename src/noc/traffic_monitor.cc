#include "src/noc/traffic_monitor.hh"

#include <cstring>

namespace netcrafter::noc {

void
TrafficMonitor::observe(const Flit &flit)
{
    ++totalFlits_;
    totalWireBytes_ += flit.capacity;
    const std::uint16_t used = flit.usedBytes();
    // "Useful" bytes exclude the 3B ID+Size metadata added for partially
    // stitched pieces, so byte-savings numbers account for that overhead.
    std::uint16_t useful = flit.occupiedBytes;
    for (const auto &piece : flit.stitched)
        useful += piece.bytes;
    totalUsefulBytes_ += useful;

    const auto type_idx = static_cast<std::size_t>(flit.pkt->type);
    ++flitsByType_[type_idx];
    bytesByType_[type_idx] += flit.occupiedBytes;
    if (flit.isHead())
        ++packetsByType_[type_idx];
    if (flit.pkt->isPtw())
        ptwBytes_ += flit.occupiedBytes;

    for (const auto &piece : flit.stitched) {
        const auto piece_idx = static_cast<std::size_t>(piece.pkt->type);
        ++flitsByType_[piece_idx];
        bytesByType_[piece_idx] += piece.bytes;
        if (piece.seq == 0)
            ++packetsByType_[piece_idx];
        if (piece.pkt->isPtw())
            ptwBytes_ += piece.bytes;
    }

    const std::uint16_t padded = flit.capacity - used;
    if (padded > 0)
        ++flitsWithPadding_;
    // Figure 6 buckets: a quarter padded (e.g. 4/16B) and three quarters
    // padded (e.g. 12/16B). Use halves of the capacity as boundaries so
    // the same census works for 8B flits.
    const double frac = static_cast<double>(padded) / flit.capacity;
    if (frac > 0.0 && frac <= 0.5)
        ++quarterPadded_;
    else if (frac > 0.5)
        ++threeQuarterPadded_;

    if (flit.isStitched()) {
        ++stitchedParentFlits_;
        stitchedPieces_ += flit.stitched.size();
    }
}

void
TrafficMonitor::observeFlowPacket(const Packet &pkt,
                                  std::uint32_t wire_flits,
                                  std::uint32_t flit_bytes)
{
    const std::uint32_t bytes = pkt.totalBytes();
    const auto type_idx = static_cast<std::size_t>(pkt.type);
    ++packetsByType_[type_idx];
    bytesByType_[type_idx] += bytes;
    totalUsefulBytes_ += bytes;
    if (pkt.isPtw())
        ptwBytes_ += bytes;

    if (wire_flits == 0) {
        // Absorbed by the stitch approximation: one logical flit rode
        // another packet's padding, contributing no wire flits.
        ++flitsByType_[type_idx];
        ++stitchedPieces_;
        return;
    }

    flitsByType_[type_idx] += wire_flits;
    totalFlits_ += wire_flits;
    totalWireBytes_ +=
        static_cast<std::uint64_t>(wire_flits) * flit_bytes;

    // Only the last flit is partially filled; the census buckets are
    // the same halves-of-capacity split observe() uses.
    const std::uint32_t padded = wire_flits * flit_bytes - bytes;
    if (padded > 0) {
        ++flitsWithPadding_;
        const double frac = static_cast<double>(padded) / flit_bytes;
        if (frac <= 0.5)
            ++quarterPadded_;
        else
            ++threeQuarterPadded_;
    }
}

void
TrafficMonitor::merge(const TrafficMonitor &other)
{
    totalFlits_ += other.totalFlits_;
    totalWireBytes_ += other.totalWireBytes_;
    totalUsefulBytes_ += other.totalUsefulBytes_;
    ptwBytes_ += other.ptwBytes_;
    quarterPadded_ += other.quarterPadded_;
    threeQuarterPadded_ += other.threeQuarterPadded_;
    flitsWithPadding_ += other.flitsWithPadding_;
    stitchedParentFlits_ += other.stitchedParentFlits_;
    stitchedPieces_ += other.stitchedPieces_;
    for (std::size_t i = 0; i < kNumPacketTypes; ++i) {
        flitsByType_[i] += other.flitsByType_[i];
        bytesByType_[i] += other.bytesByType_[i];
        packetsByType_[i] += other.packetsByType_[i];
    }
}

void
TrafficMonitor::reset()
{
    *this = TrafficMonitor();
}

} // namespace netcrafter::noc
