/**
 * @file
 * WireChannel: a unidirectional inter-cluster wire with a fixed flight
 * latency and credit-based flow control, replacing the zero-latency
 * Link on cluster-to-cluster connections. The latency is what gives the
 * sharded engine its conservative lookahead (see sim/sharded_engine.hh)
 * — and the channel behaves identically whether its two endpoints share
 * an engine (serial execution, or co-located clusters when the shard
 * count is below the cluster count) or live on different shards.
 *
 * Egress side (source shard): each cycle the channel pops up to
 * `flitsPerCycle` flits from the source buffer, consuming one credit
 * per flit, and puts them "on the wire" to arrive `latency` cycles
 * later. Ingress side (destination shard): an arrival is a wire-phase
 * event that pushes the flit into the sink buffer — guaranteed to have
 * room, because credits mirror the sink's capacity. Every sink pop
 * returns a credit that reaches the egress side `latency` cycles later.
 *
 * When the endpoints are on different shards, a departing flit is
 * snapshotted by value (packet payloads included) into the channel's
 * outbox and re-materialized from the destination shard's thread-local
 * pools after a quantum barrier: pooled refcounts are non-atomic,
 * so a pooled object is never shared across threads — ownership of the
 * bits transfers through the snapshot, and the source-side handles drop
 * on the source thread. Credits travel the opposite way through a tick
 * outbox. At each barrier the round coordinator seals the outboxes
 * (moving them to the sealed import side in order); an importing shard
 * only ever touches the sealed side, so a writer appending to an
 * outbox never races an importer even when the two shards run rounds
 * back-to-back. Every buffer is single-writer/single-reader with the
 * barrier providing the happens-before edge, and the sealed side also
 * answers the coordinator's earliest-arrival queries that bound the
 * adaptive lookahead window.
 */

#ifndef NETCRAFTER_NOC_WIRE_CHANNEL_HH
#define NETCRAFTER_NOC_WIRE_CHANNEL_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/noc/flit_buffer.hh"
#include "src/sim/self_scheduling.hh"
#include "src/sim/sharded_engine.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::noc {

/** Latency + credit flow-controlled channel between two flit buffers. */
class WireChannel : public sim::SimObject, public sim::CrossShardPort
{
  public:
    /**
     * @p src_engine must be the engine of the shard owning @p source's
     * producer; @p dst_engine the one owning @p sink's consumer. They
     * may be the same object (serial / co-located). Initial credits are
     * @p sink's capacity, so deliveries can never overrun it.
     */
    WireChannel(sim::Engine &src_engine, sim::Engine &dst_engine,
                std::string name, FlitBuffer &source, FlitBuffer &sink,
                std::uint32_t flits_per_cycle, Tick latency,
                unsigned src_shard, unsigned dst_shard);

    /** Wake the egress side; schedules a pump if none is pending. */
    void notify();

    /** True when the endpoints live on different shards. */
    bool crossShard() const { return srcShard_ != dstShard_; }

    /** Flight latency in cycles (the shard lookahead contribution). */
    Tick latency() const { return latency_; }

    /** Peak flits/cycle capacity. */
    std::uint32_t flitsPerCycle() const { return flitsPerCycle_; }

    /** Flits put on the wire over the channel's lifetime. */
    std::uint64_t flitsTransferred() const { return flitsTransferred_; }

    /** Wire bytes transferred (flits x capacity). */
    std::uint64_t bytesTransferred() const { return bytesTransferred_; }

    /** Useful (non-padded) bytes transferred. */
    std::uint64_t
    usefulBytesTransferred() const
    {
        return usefulBytesTransferred_;
    }

    /** Cycles in which at least one flit departed. */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /** Utilization over [0, now]: flits moved / (cycles x capacity). */
    double utilization() const;

    /** First tick at which the channel did any work (0 if never). */
    Tick firstBusyTick() const { return firstBusyTick_; }

    /** Last tick at which the channel did any work. */
    Tick lastBusyTick() const { return lastBusyTick_; }

    /** Observe every flit entering the wire (traffic monitors). */
    void
    setObserver(std::function<void(const Flit &)> fn)
    {
        observer_ = std::move(fn);
    }

    /**
     * Credit traffic the flow lane (src/flow/) carried over this wire
     * analytically: the synthesized @p flits never existed as objects,
     * but the channel's transfer and busy counters must cover them so
     * utilization and wire-byte figures read the same at any fidelity.
     */
    void
    creditFlowTraffic(std::uint64_t flits, std::uint64_t wire_bytes,
                      std::uint64_t useful_bytes, Tick tick)
    {
        usefulBytesTransferred_ += useful_bytes;
        if (flits == 0)
            return;
        flitsTransferred_ += flits;
        bytesTransferred_ += wire_bytes;
        busyCycles_ += divCeil(flits, flitsPerCycle_);
        if (!everBusy_) {
            everBusy_ = true;
            firstBusyTick_ = tick;
        }
        lastBusyTick_ = std::max(lastBusyTick_, tick);
    }

    /** Flits re-materialized into the destination shard's pools. */
    std::uint64_t
    flitsRematerialized() const
    {
        return flitsRematerialized_;
    }

    /** Peak sealed-flit backlog observed at an import. */
    std::size_t maxIngressDepth() const { return maxIngressDepth_; }

    /** Flits actually delivered into the sink buffer. After a drained
     *  run this equals flitsTransferred() minus flow-credited synthetic
     *  flits — the exact-conservation invariant the relaxed-sync
     *  auditor gates on (late-slotting displaces deliveries in time,
     *  never drops or duplicates them). */
    std::uint64_t flitsDelivered() const { return flitsDelivered_; }

    /** Wire bytes (flits x capacity) delivered into the sink. */
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }

    /**
     * Cross-shard flit arrivals whose wire arrival tick was already in
     * the receiver's past at import time and were therefore slotted at
     * the receiver's current tick. Only a relaxed-sync run can produce
     * these; under Strict the conservative window proves every arrival
     * is strictly in the receiver's future.
     */
    std::uint64_t lateSlottedFlits() const { return lateSlottedFlits_; }

    /** Credit returns late-slotted at the source side (same rule). */
    std::uint64_t lateSlottedCredits() const
    {
        return lateSlottedCredits_;
    }

    /** Total ticks of forward displacement over all late-slotted
     *  arrivals (flits + credits): sum of (slotted - scheduled). */
    std::uint64_t lateDisplacementTicks() const
    {
        return lateDisplacementTicks_;
    }

    /** Largest single late-slot displacement in ticks; bounded by the
     *  engine's skew bound by construction. */
    std::uint64_t maxLateDisplacement() const
    {
        return maxLateDisplacement_;
    }

    // CrossShardPort interface (used only when crossShard()).
    unsigned srcShard() const override { return srcShard_; }
    unsigned dstShard() const override { return dstShard_; }
    Tick minLatency() const override { return latency_; }
    void sealExports() override;
    Tick earliestSealedArrivalAtDst() const override;
    Tick earliestSealedArrivalAtSrc() const override;
    void importAtDst() override;
    void importAtSrc() override;

    /** Flits + credits still queued for export (teardown census). */
    std::size_t
    pendingExports() const override
    {
        return flitOutbox_.size() + flitSealed_.size() +
               creditOutbox_.size() + creditSealed_.size();
    }

  private:
    /** Value snapshot of a stitched piece for cross-shard transfer. */
    struct WirePiece
    {
        Packet pkt;
        std::uint16_t bytes;
        std::uint32_t seq;
        std::uint32_t numFlits;
        bool wholePacket;
    };

    /** Value snapshot of a flit in flight across a shard boundary. */
    struct WireFlit
    {
        Tick arrival;
        Packet pkt;
        std::uint32_t seq;
        std::uint32_t numFlits;
        std::uint16_t occupiedBytes;
        std::uint16_t capacity;
        bool pooledOnce;
        std::vector<WirePiece> stitched;
    };

    void pump();
    void ship(FlitPtr flit, Tick arrival);
    void deliver(FlitPtr flit);
    void creditArrive();
    void onSinkPop();

    sim::Engine &srcEngine_;
    sim::Engine &dstEngine_;
    FlitBuffer &source_;
    FlitBuffer &sink_;
    std::uint32_t flitsPerCycle_;
    Tick latency_;
    unsigned srcShard_;
    unsigned dstShard_;
    std::size_t credits_;
    sim::SelfScheduling<WireChannel, &WireChannel::pump> wake_;
    std::function<void(const Flit &)> observer_;

    /** Written by the source shard in a window, moved to flitSealed_
     * by the round coordinator (sealExports). */
    std::vector<WireFlit> flitOutbox_;

    /** Written by the destination shard, moved to creditSealed_ by
     * the coordinator. */
    std::vector<Tick> creditOutbox_;

    /** Sealed flits awaiting import on the destination shard. Stays
     * populated across rounds while the destination is parked. */
    std::vector<WireFlit> flitSealed_;

    /** Sealed credit returns awaiting import on the source shard. */
    std::vector<Tick> creditSealed_;

    std::uint64_t flitsTransferred_ = 0;
    std::uint64_t bytesTransferred_ = 0;
    std::uint64_t usefulBytesTransferred_ = 0;
    std::uint64_t busyCycles_ = 0;
    Tick firstBusyTick_ = 0;
    Tick lastBusyTick_ = 0;
    bool everBusy_ = false;
    std::uint64_t flitsRematerialized_ = 0;
    std::size_t maxIngressDepth_ = 0;
    std::uint64_t flitsDelivered_ = 0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t lateSlottedFlits_ = 0;
    std::uint64_t lateSlottedCredits_ = 0;
    std::uint64_t lateDisplacementTicks_ = 0;
    std::uint64_t maxLateDisplacement_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_WIRE_CHANNEL_HH
