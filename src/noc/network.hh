/**
 * @file
 * Builds the hierarchical multi-GPU interconnect of Figure 2: per-cluster
 * switches with high-bandwidth GPU-facing ports, lower-bandwidth
 * latency-bearing wire channels between clusters, per-GPU RDMA endpoints,
 * and — when any NetCrafter mechanism is enabled — a NetCrafter
 * controller on every inter-cluster egress port plus an un-stitching
 * engine on every inter-cluster ingress port.
 *
 * Every component of a cluster (switch, RDMA endpoints, GPU links,
 * controllers, un-stitchers) binds to the engine of the shard owning
 * that cluster (see sim/sharded_engine.hh); only the inter-cluster
 * WireChannels span shards. With a single shard all clusters share one
 * engine and execution is the classic serial simulation.
 */

#ifndef NETCRAFTER_NOC_NETWORK_HH
#define NETCRAFTER_NOC_NETWORK_HH

#include <map>
#include <memory>
#include <vector>

#include "src/config/system_config.hh"
#include "src/core/controller.hh"
#include "src/flow/fidelity.hh"
#include "src/flow/fidelity_controller.hh"
#include "src/noc/link.hh"
#include "src/noc/rdma.hh"
#include "src/noc/switch.hh"
#include "src/noc/traffic_monitor.hh"
#include "src/noc/wire_channel.hh"
#include "src/sim/sharded_engine.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::sim {

/** Canonical cluster-to-shard assignment: round-robin over shards. */
inline unsigned
shardOfCluster(ClusterId cluster, unsigned shards)
{
    return static_cast<unsigned>(cluster) % shards;
}

} // namespace netcrafter::sim

namespace netcrafter::noc {

/** The assembled interconnect. */
class Network : public sim::SimObject
{
  public:
    /**
     * Build on a single engine (serial execution). Flow and Hybrid
     * fidelities additionally instantiate a FidelityController wired
     * to every inter-cluster link's census sinks; the GPU system
     * routes steady-state round trips through it instead of the flit
     * path (see src/flow/fidelity_controller.hh).
     */
    Network(sim::Engine &engine, const config::SystemConfig &cfg,
            flow::Fidelity fidelity = flow::Fidelity::Cycle);

    /**
     * Build across @p engines' shards: cluster c's components bind to
     * shard sim::shardOfCluster(c, N). Cross-shard channels register
     * with @p engines for barrier exchange, and the lookahead is set to
     * the minimum cross-shard channel latency.
     */
    Network(sim::ShardedEngine &engines,
            const config::SystemConfig &cfg);

    /** The RDMA endpoint of GPU @p gpu. */
    RdmaEngine &rdma(GpuId gpu) { return *rdmas_.at(gpu); }

    /** Cluster switch @p cluster. */
    Switch &clusterSwitch(ClusterId cluster)
    {
        return *switches_.at(cluster);
    }

    /** Inject @p pkt at its source GPU's RDMA engine. */
    void sendPacket(PacketPtr pkt);

    /** Census of the directed inter-cluster channel @p from -> @p to. */
    const TrafficMonitor &interClusterMonitor(ClusterId from,
                                              ClusterId to) const;

    /** The directed inter-cluster channel @p from -> @p to. */
    const WireChannel &interClusterChannel(ClusterId from,
                                           ClusterId to) const;

    /** Mean utilization across all inter-cluster channels (Figure 4). */
    double interClusterUtilization() const;

    /** Aggregate census over all inter-cluster channels. */
    TrafficMonitor aggregateInterClusterTraffic() const;

    /** Controller on cluster @p from's port toward @p to, or nullptr. */
    const core::NetCrafterController *controller(ClusterId from,
                                                 ClusterId to) const;

    /** Sum of flits carried by all inter-cluster channels. */
    std::uint64_t interClusterFlits() const;

    /** Sum of wire bytes carried by all inter-cluster channels. */
    std::uint64_t interClusterWireBytes() const;

    /** Flits re-materialized across shard boundaries (0 when serial). */
    std::uint64_t crossShardFlits() const;

    /** Peak per-channel ingress-queue depth at a quantum barrier. */
    std::size_t maxIngressDepth() const;

    /** Sum of flits delivered into sink buffers (conservation side of
     *  interClusterFlits(); excludes flow-credited synthetic flits). */
    std::uint64_t interClusterFlitsDelivered() const;

    /** Sum of wire bytes delivered into sink buffers. */
    std::uint64_t interClusterBytesDelivered() const;

    /** Cross-shard arrivals late-slotted at the receiver's current
     *  tick (relaxed sync only; always 0 under Strict). */
    std::uint64_t lateSlottedFlits() const;

    /** Credit returns late-slotted at the source side. */
    std::uint64_t lateSlottedCredits() const;

    /** Total forward displacement in ticks over all late slots. */
    std::uint64_t lateDisplacementTicks() const;

    /** Largest single late-slot displacement in ticks. */
    std::uint64_t maxLateDisplacement() const;

    const config::SystemConfig &cfg() const { return cfg_; }

    /** The flow-lane controller; nullptr at cycle fidelity. */
    flow::FidelityController *flowController()
    {
        return flowController_.get();
    }
    const flow::FidelityController *flowController() const
    {
        return flowController_.get();
    }

  private:
    struct InterLink
    {
        std::unique_ptr<WireChannel> channel;
        std::unique_ptr<TrafficMonitor> monitor;
        std::unique_ptr<core::NetCrafterController> controller;
        std::unique_ptr<core::Unstitcher> unstitcher;
    };

    void build(const std::vector<sim::Engine *> &cluster_engines,
               sim::ShardedEngine *sharded);

    config::SystemConfig cfg_;
    unsigned numShards_ = 1;
    std::unique_ptr<flow::FidelityController> flowController_;
    std::vector<std::unique_ptr<RdmaEngine>> rdmas_;
    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<std::unique_ptr<Link>> gpuLinks_;
    std::map<std::pair<ClusterId, ClusterId>, InterLink> interLinks_;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_NETWORK_HH
