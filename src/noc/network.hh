/**
 * @file
 * Builds the hierarchical multi-GPU interconnect of Figure 2: per-cluster
 * switches with high-bandwidth GPU-facing ports, lower-bandwidth
 * switch-to-switch links between clusters, per-GPU RDMA endpoints, and —
 * when any NetCrafter mechanism is enabled — a NetCrafter controller on
 * every inter-cluster egress port plus an un-stitching engine on every
 * inter-cluster ingress port.
 */

#ifndef NETCRAFTER_NOC_NETWORK_HH
#define NETCRAFTER_NOC_NETWORK_HH

#include <map>
#include <memory>
#include <vector>

#include "src/config/system_config.hh"
#include "src/core/controller.hh"
#include "src/noc/link.hh"
#include "src/noc/rdma.hh"
#include "src/noc/switch.hh"
#include "src/noc/traffic_monitor.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::noc {

/** The assembled interconnect. */
class Network : public sim::SimObject
{
  public:
    Network(sim::Engine &engine, const config::SystemConfig &cfg);

    /** The RDMA endpoint of GPU @p gpu. */
    RdmaEngine &rdma(GpuId gpu) { return *rdmas_.at(gpu); }

    /** Cluster switch @p cluster. */
    Switch &clusterSwitch(ClusterId cluster)
    {
        return *switches_.at(cluster);
    }

    /** Inject @p pkt at its source GPU's RDMA engine. */
    void sendPacket(PacketPtr pkt);

    /** Census of the directed inter-cluster link @p from -> @p to. */
    const TrafficMonitor &interClusterMonitor(ClusterId from,
                                              ClusterId to) const;

    /** The directed inter-cluster link @p from -> @p to. */
    const Link &interClusterLink(ClusterId from, ClusterId to) const;

    /** Mean utilization across all inter-cluster links (Figure 4). */
    double interClusterUtilization() const;

    /** Aggregate census over all inter-cluster links. */
    TrafficMonitor aggregateInterClusterTraffic() const;

    /** Controller on cluster @p from's port toward @p to, or nullptr. */
    const core::NetCrafterController *controller(ClusterId from,
                                                 ClusterId to) const;

    /** Sum of flits carried by all inter-cluster links. */
    std::uint64_t interClusterFlits() const;

    /** Sum of wire bytes carried by all inter-cluster links. */
    std::uint64_t interClusterWireBytes() const;

    const config::SystemConfig &cfg() const { return cfg_; }

  private:
    struct InterLink
    {
        std::unique_ptr<Link> link;
        std::unique_ptr<TrafficMonitor> monitor;
        std::unique_ptr<core::NetCrafterController> controller;
        std::unique_ptr<core::Unstitcher> unstitcher;
    };

    config::SystemConfig cfg_;
    std::vector<std::unique_ptr<RdmaEngine>> rdmas_;
    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<std::unique_ptr<Link>> gpuLinks_;
    std::map<std::pair<ClusterId, ClusterId>, InterLink> interLinks_;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_NETWORK_HH
