#include "src/noc/flit_trace.hh"

namespace netcrafter::noc {

FlitTracer::FlitTracer(sim::Engine &engine, std::ostream &os)
    : engine_(engine), os_(os)
{
    os_ << header() << "\n";
}

const char *
FlitTracer::header()
{
    return "tick,link,packet_id,type,src,dst,seq,num_flits,"
           "occupied_bytes,used_bytes,stitched_pieces,latency_critical,"
           "trimmed";
}

std::function<void(const Flit &)>
FlitTracer::observer(std::string link_name)
{
    return [this, link = std::move(link_name)](const Flit &flit) {
        record(link, flit);
    };
}

void
FlitTracer::record(const std::string &link, const Flit &flit)
{
    const Packet &pkt = *flit.pkt;
    os_ << engine_.now() << ',' << link << ',' << pkt.id << ','
        << packetTypeName(pkt.type) << ',' << pkt.src << ',' << pkt.dst
        << ',' << flit.seq << ',' << flit.numFlits << ','
        << flit.occupiedBytes << ',' << flit.usedBytes() << ','
        << flit.stitched.size() << ',' << (pkt.latencyCritical ? 1 : 0)
        << ',' << (pkt.trimmed ? 1 : 0) << '\n';
    ++rows_;
}

} // namespace netcrafter::noc
