#include "src/noc/flit_trace.hh"

#include <algorithm>
#include <tuple>

namespace netcrafter::noc {

const char *
FlitTracer::header()
{
    return "tick,link,packet_id,type,src,dst,seq,num_flits,"
           "occupied_bytes,used_bytes,stitched_pieces,latency_critical,"
           "trimmed";
}

std::function<void(const Flit &)>
FlitTracer::observer(std::string link_name, sim::Engine &engine)
{
    auto channel = std::make_unique<Channel>();
    channel->link = std::move(link_name);
    channel->engine = &engine;
    Channel *ch = channel.get();
    channels_.push_back(std::move(channel));
    // The closure only touches its own channel, so concurrent observers
    // on different shard threads never share state.
    return [ch](const Flit &flit) {
        const Packet &pkt = *flit.pkt;
        Row row;
        row.tick = ch->engine->now();
        row.pktId = pkt.id;
        row.type = pkt.type;
        row.src = pkt.src;
        row.dst = pkt.dst;
        row.seq = flit.seq;
        row.numFlits = flit.numFlits;
        row.occupiedBytes = flit.occupiedBytes;
        row.usedBytes = flit.usedBytes();
        row.stitchedPieces =
            static_cast<std::uint16_t>(flit.stitched.size());
        row.latencyCritical = pkt.latencyCritical;
        row.trimmed = pkt.trimmed;
        ch->rows.push_back(row);
    };
}

std::uint64_t
FlitTracer::rows() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->rows.size();
    return n;
}

void
FlitTracer::writeCsv(std::ostream &os) const
{
    // Merge to one deterministic order: a flit crossing is identified
    // by (tick, link, packet, seq) regardless of which shard pumped it.
    struct Keyed
    {
        const Channel *ch;
        const Row *row;
    };
    std::vector<Keyed> merged;
    merged.reserve(static_cast<std::size_t>(rows()));
    for (const auto &ch : channels_)
        for (const Row &row : ch->rows)
            merged.push_back(Keyed{ch.get(), &row});
    std::sort(merged.begin(), merged.end(),
              [](const Keyed &a, const Keyed &b) {
                  return std::tie(a.row->tick, a.ch->link, a.row->pktId,
                                  a.row->seq) <
                         std::tie(b.row->tick, b.ch->link, b.row->pktId,
                                  b.row->seq);
              });

    os << header() << "\n";
    for (const Keyed &k : merged) {
        const Row &r = *k.row;
        os << r.tick << ',' << k.ch->link << ',' << r.pktId << ','
           << packetTypeName(r.type) << ',' << r.src << ',' << r.dst
           << ',' << r.seq << ',' << r.numFlits << ','
           << r.occupiedBytes << ',' << r.usedBytes << ','
           << r.stitchedPieces << ',' << (r.latencyCritical ? 1 : 0)
           << ',' << (r.trimmed ? 1 : 0) << '\n';
    }
}

} // namespace netcrafter::noc
