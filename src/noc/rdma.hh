/**
 * @file
 * Per-GPU RDMA engine (Section 2.1, Figure 2 steps 4a-4e): the endpoint
 * that segments outgoing packets into flits, injects them into the
 * network, and reassembles arriving flits back into packets.
 */

#ifndef NETCRAFTER_NOC_RDMA_HH
#define NETCRAFTER_NOC_RDMA_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "src/noc/flit_buffer.hh"
#include "src/sim/self_scheduling.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::noc {

/**
 * RDMA engine: one per GPU. Outgoing packets wait in an internal queue
 * and are injected flit-by-flit at the attached link's rate as the TX
 * buffer drains; incoming flits are reassembled and complete packets are
 * dispatched to the request or response handler.
 *
 * The ingress side always accepts (the engine never back-pressures the
 * network), which together with MSHR-bounded outstanding requests makes
 * protocol deadlock impossible (Section 4.5).
 */
class RdmaEngine : public sim::SimObject
{
  public:
    using PacketHandler = std::function<void(PacketPtr)>;

    RdmaEngine(sim::Engine &engine, std::string name, GpuId gpu,
               std::uint32_t flit_bytes, std::size_t buffer_entries);

    /** GPU this engine belongs to. */
    GpuId gpu() const { return gpu_; }

    /** Buffer the outgoing link drains flits from. */
    FlitBuffer &txBuffer() { return tx_; }

    /** Buffer the incoming link delivers flits into. */
    FlitBuffer &rxBuffer() { return rx_; }

    /** Handler for incoming request packets (ReadReq/WriteReq/PTReq). */
    void setRequestHandler(PacketHandler fn)
    {
        requestHandler_ = std::move(fn);
    }

    /** Handler for incoming response packets. */
    void setResponseHandler(PacketHandler fn)
    {
        responseHandler_ = std::move(fn);
    }

    /**
     * Queue @p pkt for injection. Stamps injectedAt with the current
     * tick. The internal queue is unbounded; callers bound outstanding
     * traffic through their MSHRs.
     */
    void sendPacket(PacketPtr pkt);

    /** Packets injected so far. */
    std::uint64_t packetsSent() const { return packetsSent_; }

    /** Packets fully reassembled and delivered so far. */
    std::uint64_t packetsReceived() const { return packetsReceived_; }

    /** Outgoing packets not yet fully pushed into the TX buffer. */
    std::size_t sendQueueDepth() const { return sendQueue_.size(); }

  private:
    void pumpTx();
    void pumpRx();

    GpuId gpu_;
    std::uint32_t flitBytes_;
    FlitBuffer tx_;
    FlitBuffer rx_;
    PacketHandler requestHandler_;
    PacketHandler responseHandler_;

    /** Flits of queued packets awaiting TX buffer space, in order. */
    std::deque<FlitPtr> sendQueue_;
    sim::SelfScheduling<RdmaEngine, &RdmaEngine::pumpTx> txWake_;
    sim::SelfScheduling<RdmaEngine, &RdmaEngine::pumpRx> rxWake_;

    /** packet id -> bytes received so far, for reassembly. */
    std::unordered_map<std::uint64_t, std::uint32_t> reassembly_;

    std::uint64_t packetsSent_ = 0;
    std::uint64_t packetsReceived_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::noc

#endif // NETCRAFTER_NOC_RDMA_HH
