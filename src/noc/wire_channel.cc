#include "src/noc/wire_channel.hh"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::noc {

WireChannel::WireChannel(sim::Engine &src_engine,
                         sim::Engine &dst_engine, std::string name,
                         FlitBuffer &source, FlitBuffer &sink,
                         std::uint32_t flits_per_cycle, Tick latency,
                         unsigned src_shard, unsigned dst_shard)
    : SimObject(src_engine, std::move(name)), srcEngine_(src_engine),
      dstEngine_(dst_engine), source_(source), sink_(sink),
      flitsPerCycle_(flits_per_cycle), latency_(latency),
      srcShard_(src_shard), dstShard_(dst_shard),
      credits_(sink.capacity()), wake_(src_engine, this)
{
    NC_ASSERT(flitsPerCycle_ > 0, "wire channel needs positive bandwidth");
    NC_ASSERT(latency_ >= 1, "wire channel latency must be >= 1 cycle");
    NC_ASSERT(!crossShard() || &src_engine != &dst_engine,
              "cross-shard endpoints must use distinct engines");
    traceLane_ = obs::internLane(src_engine, this->name());
    source_.setOnPush([this] { notify(); });
    // The sink's pop hook belongs to this channel: every freed slot is
    // a credit heading back to the egress side. The sink's push hook
    // belongs to the sink's consumer (the switch behind it).
    sink_.setOnPop([this] { onSinkPop(); });
}

void
WireChannel::notify()
{
    wake_.notify();
}

void
WireChannel::pump()
{
    wake_.clearPending();
    std::uint32_t moved = 0;
    while (moved < flitsPerCycle_ && !source_.empty() && credits_ > 0) {
        FlitPtr flit = source_.pop();
        --credits_;
        bytesTransferred_ += flit->capacity;
        usefulBytesTransferred_ += flit->usedBytes();
        ++flitsTransferred_;
        ++moved;
        if (observer_)
            observer_(*flit);
        obs::tracepoint(
            srcEngine_, obs::TraceLevel::Links, obs::TraceKind::FlitXfer,
            obs::TraceStage::WireDepart, traceLane_,
            flit->pkt != nullptr ? flit->pkt->id : 0,
            obs::packFlitBytes(flit->capacity, flit->usedBytes()),
            obs::packFlitSeq(
                static_cast<std::uint32_t>(flit->stitched.size()),
                flit->seq));
        ship(std::move(flit), now() + latency_);
    }
    if (moved > 0) {
        ++busyCycles_;
        if (!everBusy_) {
            everBusy_ = true;
            firstBusyTick_ = now();
        }
        lastBusyTick_ = now();
    }
    // Keep draining while flits and credits remain; an empty credit
    // pool wakes us again via creditArrive().
    if (!source_.empty() && credits_ > 0)
        notify();
}

void
WireChannel::ship(FlitPtr flit, Tick arrival)
{
    if (!crossShard()) {
        srcEngine_.scheduleWireAbs(
            arrival, [this, f = std::move(flit)]() mutable {
                deliver(std::move(f));
            });
        return;
    }

    // Snapshot by value: the pooled flit and packets stay on this
    // (the source) thread and their handles drop right here.
    NC_ASSERT(flit->pkt != nullptr, "wire flit without a parent packet");
    WireFlit &wire = flitOutbox_.emplace_back();
    wire.arrival = arrival;
    wire.pkt = *flit->pkt;
    wire.seq = flit->seq;
    wire.numFlits = flit->numFlits;
    wire.occupiedBytes = flit->occupiedBytes;
    wire.capacity = flit->capacity;
    wire.pooledOnce = flit->pooledOnce;
    wire.stitched.reserve(flit->stitched.size());
    for (const StitchedPiece &piece : flit->stitched) {
        wire.stitched.push_back(WirePiece{*piece.pkt, piece.bytes,
                                          piece.seq, piece.numFlits,
                                          piece.wholePacket});
    }
}

void
WireChannel::deliver(FlitPtr flit)
{
    obs::tracepoint(
        dstEngine_, obs::TraceLevel::Links, obs::TraceKind::FlitXfer,
        obs::TraceStage::WireArrive, traceLane_,
        flit->pkt != nullptr ? flit->pkt->id : 0,
        obs::packFlitBytes(flit->capacity, flit->usedBytes()),
        obs::packFlitSeq(
            static_cast<std::uint32_t>(flit->stitched.size()),
            flit->seq));
    ++flitsDelivered_;
    bytesDelivered_ += flit->capacity;
    const bool pushed = sink_.tryPush(std::move(flit));
    NC_ASSERT(pushed, "wire channel overran its credit window");
}

void
WireChannel::creditArrive()
{
    ++credits_;
    if (!source_.empty())
        notify();
}

void
WireChannel::onSinkPop()
{
    const Tick arrival = dstEngine_.now() + latency_;
    if (!crossShard()) {
        dstEngine_.scheduleWireAbs(arrival, [this] { creditArrive(); });
        return;
    }
    creditOutbox_.push_back(arrival);
}

void
WireChannel::sealExports()
{
    // Coordinator-only: both endpoints are parked at the barrier, so
    // moving outbox -> sealed needs no synchronization. Append rather
    // than swap — a parked destination can accumulate several rounds
    // of traffic, and import order must stay departure order.
    if (!flitOutbox_.empty()) {
        if (flitSealed_.empty()) {
            flitSealed_.swap(flitOutbox_);
        } else {
            flitSealed_.insert(
                flitSealed_.end(),
                std::make_move_iterator(flitOutbox_.begin()),
                std::make_move_iterator(flitOutbox_.end()));
            flitOutbox_.clear();
        }
    }
    if (!creditOutbox_.empty()) {
        if (creditSealed_.empty()) {
            creditSealed_.swap(creditOutbox_);
        } else {
            creditSealed_.insert(creditSealed_.end(),
                                 creditOutbox_.begin(),
                                 creditOutbox_.end());
            creditOutbox_.clear();
        }
    }
}

Tick
WireChannel::earliestSealedArrivalAtDst() const
{
    Tick earliest = kTickNever;
    for (const WireFlit &wire : flitSealed_)
        earliest = std::min(earliest, wire.arrival);
    return earliest;
}

Tick
WireChannel::earliestSealedArrivalAtSrc() const
{
    Tick earliest = kTickNever;
    for (Tick when : creditSealed_)
        earliest = std::min(earliest, when);
    return earliest;
}

void
WireChannel::importAtDst()
{
    if (flitSealed_.size() > maxIngressDepth_)
        maxIngressDepth_ = flitSealed_.size();
    for (WireFlit &wire : flitSealed_) {
        // Re-materialize from this (the destination) thread's pools.
        FlitPtr flit = makeFlit();
        flit->pkt = clonePacket(wire.pkt);
        flit->seq = wire.seq;
        flit->numFlits = wire.numFlits;
        flit->occupiedBytes = wire.occupiedBytes;
        flit->capacity = wire.capacity;
        flit->pooledOnce = wire.pooledOnce;
        flit->stitched.reserve(wire.stitched.size());
        for (WirePiece &piece : wire.stitched) {
            StitchedPiece sp;
            sp.pkt = clonePacket(piece.pkt);
            sp.bytes = piece.bytes;
            sp.seq = piece.seq;
            sp.numFlits = piece.numFlits;
            sp.wholePacket = piece.wholePacket;
            flit->stitched.push_back(std::move(sp));
        }
        ++flitsRematerialized_;
        // Late-slot rule (relaxed sync): an arrival whose wire tick is
        // already in this shard's past lands at the current tick
        // instead (now + 1 — wire events must be strictly future).
        // Sealed arrivals are monotonic in departure order and the
        // clamp is a max against a constant, so per-channel FIFO order
        // survives; the flit itself is always delivered, so packet and
        // byte conservation are exact. Under Strict the conservative
        // window makes the clamp a no-op.
        const Tick slot = std::max(wire.arrival, dstEngine_.now() + 1);
        if (slot > wire.arrival) {
            ++lateSlottedFlits_;
            lateDisplacementTicks_ += slot - wire.arrival;
            maxLateDisplacement_ =
                std::max<std::uint64_t>(maxLateDisplacement_,
                                        slot - wire.arrival);
        }
        dstEngine_.scheduleWireAbs(
            slot, [this, f = std::move(flit)]() mutable {
                deliver(std::move(f));
            });
    }
    flitSealed_.clear();
}

void
WireChannel::importAtSrc()
{
    for (Tick when : creditSealed_) {
        // Same late-slot rule as importAtDst, for credit returns that
        // chase a source shard already running ahead of them.
        const Tick slot = std::max(when, srcEngine_.now() + 1);
        if (slot > when) {
            ++lateSlottedCredits_;
            lateDisplacementTicks_ += slot - when;
            maxLateDisplacement_ = std::max<std::uint64_t>(
                maxLateDisplacement_, slot - when);
        }
        srcEngine_.scheduleWireAbs(slot, [this] { creditArrive(); });
    }
    creditSealed_.clear();
}

double
WireChannel::utilization() const
{
    const Tick elapsed = now();
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(flitsTransferred_) /
           (static_cast<double>(elapsed) * flitsPerCycle_);
}

} // namespace netcrafter::noc
