#include "src/config/config_io.hh"

#include <functional>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "src/sim/logging.hh"

namespace netcrafter::config {

namespace {

/** Field registry: name -> (writer, parser). */
struct Field
{
    std::function<std::string(const SystemConfig &)> write;
    std::function<void(SystemConfig &, const std::string &)> parse;
};

template <typename T>
std::string
toStr(const T &v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::uint64_t
parseU64(const std::string &s)
{
    return std::stoull(s);
}

double
parseDouble(const std::string &s)
{
    return std::stod(s);
}

bool
parseBool(const std::string &s)
{
    if (s == "true" || s == "1")
        return true;
    if (s == "false" || s == "0")
        return false;
    NC_FATAL("bad boolean value '", s, "'");
}

SequencingMode
parseSequencing(const std::string &s)
{
    if (s == "off")
        return SequencingMode::Off;
    if (s == "ptw")
        return SequencingMode::PrioritizePtw;
    if (s == "data")
        return SequencingMode::PrioritizeData;
    NC_FATAL("bad sequencing mode '", s, "'");
}

L1FillMode
parseFillMode(const std::string &s)
{
    if (s == "full-line")
        return L1FillMode::FullLine;
    if (s == "trim-inter-cluster")
        return L1FillMode::TrimInterCluster;
    if (s == "sector-always")
        return L1FillMode::SectorAlways;
    NC_FATAL("bad L1 fill mode '", s, "'");
}

const std::map<std::string, Field> &
fields()
{
#define U64_FIELD(name, expr)                                            \
    {                                                                    \
        name,                                                            \
        {                                                                \
            [](const SystemConfig &c) { return toStr(c.expr); },         \
                [](SystemConfig &c, const std::string &v) {              \
                    c.expr = static_cast<decltype(c.expr)>(              \
                        parseU64(v));                                    \
                }                                                        \
        }                                                                \
    }
#define DBL_FIELD(name, expr)                                            \
    {                                                                    \
        name,                                                            \
        {                                                                \
            [](const SystemConfig &c) { return toStr(c.expr); },         \
                [](SystemConfig &c, const std::string &v) {              \
                    c.expr = parseDouble(v);                             \
                }                                                        \
        }                                                                \
    }
#define BOOL_FIELD(name, expr)                                           \
    {                                                                    \
        name,                                                            \
        {                                                                \
            [](const SystemConfig &c) {                                  \
                return std::string(c.expr ? "true" : "false");           \
            },                                                           \
                [](SystemConfig &c, const std::string &v) {              \
                    c.expr = parseBool(v);                               \
                }                                                        \
        }                                                                \
    }

    static const std::map<std::string, Field> registry = {
        U64_FIELD("topology.clusters", numClusters),
        U64_FIELD("topology.gpus_per_cluster", gpusPerCluster),
        DBL_FIELD("network.intra_gbps", intraClusterGBps),
        DBL_FIELD("network.inter_gbps", interClusterGBps),
        U64_FIELD("network.flit_bytes", flitBytes),
        U64_FIELD("network.switch_latency", switchLatency),
        U64_FIELD("network.inter_link_latency", interLinkLatency),
        U64_FIELD("network.switch_buffer", switchBufferEntries),
        U64_FIELD("network.rdma_buffer", rdmaBufferEntries),
        U64_FIELD("compute.cus_per_gpu", cusPerGpu),
        U64_FIELD("compute.waves_per_cu", maxWavesPerCu),
        U64_FIELD("compute.issue_width", cuIssueWidth),
        U64_FIELD("l1.bytes", l1Bytes),
        U64_FIELD("l1.assoc", l1Assoc),
        U64_FIELD("l1.latency", l1Latency),
        U64_FIELD("l1.mshrs", l1MshrEntries),
        U64_FIELD("l2.bytes", l2BytesPerGpu),
        U64_FIELD("l2.assoc", l2Assoc),
        U64_FIELD("l2.banks", l2Banks),
        U64_FIELD("l2.latency", l2Latency),
        U64_FIELD("l2.mshrs", l2MshrEntries),
        U64_FIELD("dram.latency", dramLatency),
        U64_FIELD("dram.bytes_per_cycle", dramBytesPerCycle),
        U64_FIELD("l1tlb.entries", l1TlbEntries),
        U64_FIELD("l1tlb.latency", l1TlbLatency),
        U64_FIELD("l1tlb.mshrs", l1TlbMshrEntries),
        U64_FIELD("l2tlb.entries", l2TlbEntries),
        U64_FIELD("l2tlb.assoc", l2TlbAssoc),
        U64_FIELD("l2tlb.latency", l2TlbLatency),
        U64_FIELD("l2tlb.mshrs", l2TlbMshrEntries),
        U64_FIELD("gmmu.pwc_entries", pwcEntries),
        U64_FIELD("gmmu.pwc_latency", pwcLatency),
        U64_FIELD("gmmu.walkers", pageWalkers),
        BOOL_FIELD("netcrafter.stitching", netcrafter.stitching),
        BOOL_FIELD("netcrafter.flit_pooling", netcrafter.flitPooling),
        BOOL_FIELD("netcrafter.selective_pooling",
                   netcrafter.selectivePooling),
        U64_FIELD("netcrafter.pooling_window", netcrafter.poolingWindow),
        BOOL_FIELD("netcrafter.trimming", netcrafter.trimming),
        U64_FIELD("netcrafter.trim_granularity",
                  netcrafter.trimGranularity),
        DBL_FIELD("netcrafter.priority_data_fraction",
                  netcrafter.priorityDataFraction),
        U64_FIELD("netcrafter.cluster_queue_entries",
                  netcrafter.clusterQueueEntries),
        U64_FIELD("netcrafter.stitch_search_depth",
                  netcrafter.stitchSearchDepth),
        BOOL_FIELD("netcrafter.force_controller",
                   netcrafter.forceController),
        U64_FIELD("seed", seed),
        {"netcrafter.sequencing",
         {[](const SystemConfig &c) {
              return std::string(
                  sequencingModeName(c.netcrafter.sequencing));
          },
          [](SystemConfig &c, const std::string &v) {
              c.netcrafter.sequencing = parseSequencing(v);
          }}},
        {"l1.fill_mode",
         {[](const SystemConfig &c) {
              return std::string(l1FillModeName(c.l1FillMode));
          },
          [](SystemConfig &c, const std::string &v) {
              c.l1FillMode = parseFillMode(v);
          }}},
    };
#undef U64_FIELD
#undef DBL_FIELD
#undef BOOL_FIELD
    return registry;
}

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

const char *
sequencingModeName(SequencingMode mode)
{
    switch (mode) {
      case SequencingMode::Off:
        return "off";
      case SequencingMode::PrioritizePtw:
        return "ptw";
      case SequencingMode::PrioritizeData:
        return "data";
    }
    return "?";
}

const char *
l1FillModeName(L1FillMode mode)
{
    switch (mode) {
      case L1FillMode::FullLine:
        return "full-line";
      case L1FillMode::TrimInterCluster:
        return "trim-inter-cluster";
      case L1FillMode::SectorAlways:
        return "sector-always";
    }
    return "?";
}

void
writeConfig(const SystemConfig &cfg, std::ostream &os)
{
    for (const auto &[name, field] : fields())
        os << name << " = " << field.write(cfg) << "\n";
}

std::string
configToString(const SystemConfig &cfg)
{
    std::ostringstream os;
    writeConfig(cfg, os);
    return os.str();
}

SystemConfig
parseConfig(std::istream &is, const SystemConfig &base)
{
    SystemConfig cfg = base;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            NC_FATAL("config line ", line_no, ": expected key = value");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        auto it = fields().find(key);
        if (it == fields().end())
            NC_FATAL("config line ", line_no, ": unknown key '", key,
                     "'");
        it->second.parse(cfg, value);
    }
    return cfg;
}

SystemConfig
parseConfigString(const std::string &text, const SystemConfig &base)
{
    std::istringstream is(text);
    return parseConfig(is, base);
}

// Defined here rather than in system_config.cc because the serialized
// text form (the field registry above) is the canonical field
// enumeration: any field added to the registry automatically feeds the
// digest too.
std::uint64_t
SystemConfig::digest() const
{
    const std::string text = configToString(*this);
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64-bit
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
digestHex(const SystemConfig &cfg)
{
    return digestHex(cfg.digest());
}

std::string
digestHex(std::uint64_t digest)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << digest;
    return os.str();
}

} // namespace netcrafter::config
