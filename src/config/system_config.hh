/**
 * @file
 * Whole-system configuration. Defaults reproduce Table 2 (the baseline
 * non-uniform bandwidth multi-GPU configuration) with NetCrafter's
 * mechanisms individually toggleable for the paper's ablations.
 */

#ifndef NETCRAFTER_CONFIG_SYSTEM_CONFIG_HH
#define NETCRAFTER_CONFIG_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "src/sim/types.hh"

namespace netcrafter::config {

/** How the L1 vector cache fills lines (Sections 4.3, 5.3). */
enum class L1FillMode : std::uint8_t
{
    /** Always fetch the whole 64B line (baseline). */
    FullLine,

    /**
     * NetCrafter Trimming: responses crossing the inter-GPU-cluster
     * network for requests needing <= one sector arrive trimmed and fill
     * only that sector; all other fills bring the whole line.
     */
    TrimInterCluster,

    /**
     * Sector-cache baseline (Accel-Sim style): every fill brings only
     * the requested sectors, regardless of which network it crossed.
     */
    SectorAlways,
};

/**
 * What the Sequencing mechanism prioritizes on low-bandwidth links.
 * PrioritizeData exists only for the Figure 8 characterization, which
 * shows that prioritizing an equal number of data accesses *hurts*.
 */
enum class SequencingMode : std::uint8_t
{
    Off,
    PrioritizePtw,  // the NetCrafter design point
    PrioritizeData, // Figure 8 counterfactual
};

/** NetCrafter mechanism toggles (Section 4). */
struct NetCrafterConfig
{
    /** Stitch compatible partly-filled flits (Section 4.2). */
    bool stitching = false;

    /** Delay ejection waiting for stitching candidates (Optimization I). */
    bool flitPooling = false;

    /** Exempt latency-critical (PTW) flits from pooling (Optimization II). */
    bool selectivePooling = false;

    /** Pooling window in cycles (Figure 18/19 sweeps 32-128; best: 32). */
    Tick poolingWindow = 32;

    /** Trim read responses crossing the inter-cluster network (4.3). */
    bool trimming = false;

    /** Trim granularity / L1 sector size in bytes (Figure 17: 4/8/16). */
    std::uint32_t trimGranularity = 16;

    /** Prioritize latency-critical flits on low-bandwidth links (4.3). */
    SequencingMode sequencing = SequencingMode::Off;

    /**
     * Fraction of data packets flagged latency-critical in
     * PrioritizeData mode (matched to the ~13% PTW share, Figure 9).
     */
    double priorityDataFraction = 0.13;

    /** Cluster Queue capacity in 16B entries (Table 2: 1024). */
    std::size_t clusterQueueEntries = 1024;

    /** Entries scanned per partition when hunting stitch candidates. */
    std::uint32_t stitchSearchDepth = 64;

    /**
     * Instantiate the controller (Cluster Queue + class round-robin)
     * even with every mechanism off. Used by characterization
     * experiments (Figure 8) that need the queueing structure as the
     * reference point so only the priority policy differs.
     */
    bool forceController = false;

    /** Any mechanism active => controller is instantiated in switches. */
    bool
    anyEnabled() const
    {
        return stitching || trimming ||
               sequencing != SequencingMode::Off || forceController;
    }
};

/** Full system configuration (Table 2 defaults). */
struct SystemConfig
{
    // --- Topology -------------------------------------------------------
    std::uint32_t numClusters = 2;
    std::uint32_t gpusPerCluster = 2;

    /** Intra-GPU-cluster (GPU <-> cluster switch) bandwidth, GB/s. */
    double intraClusterGBps = 128.0;

    /** Inter-GPU-cluster (switch <-> switch) bandwidth, GB/s. */
    double interClusterGBps = 16.0;

    /** Flit size in bytes (16 default; 8 in the Figure 21 study). */
    std::uint32_t flitBytes = 16;

    /** Switch processing pipeline latency, cycles. */
    Tick switchLatency = 30;

    /**
     * Flight latency of an inter-cluster (switch <-> switch) wire,
     * cycles. Besides modelling the longer off-package hop, this is the
     * conservative lookahead of the sharded engine: shards synchronize
     * every `interLinkLatency` cycles, so larger values mean fewer
     * barriers (see sim/sharded_engine.hh). Must stay below the
     * event-wheel horizon for deliveries to use the near-future path.
     */
    Tick interLinkLatency = 16;

    /** Switch I/O buffer capacity, flits. */
    std::size_t switchBufferEntries = 1024;

    /** RDMA engine I/O buffer capacity, flits. */
    std::size_t rdmaBufferEntries = 1024;

    // --- Compute --------------------------------------------------------
    std::uint32_t cusPerGpu = 64;

    /** Wavefronts resident (schedulable) per CU. */
    std::uint32_t maxWavesPerCu = 8;

    /** Line requests a CU dispatches to its L1 per cycle. */
    std::uint32_t cuIssueWidth = 1;

    // --- L1 vector cache (per CU) ---------------------------------------
    std::uint32_t l1Bytes = 64 * 1024;
    std::uint32_t l1Assoc = 4;
    Tick l1Latency = 20;
    std::uint32_t l1MshrEntries = 32;
    L1FillMode l1FillMode = L1FillMode::FullLine;

    // --- L2 cache (per GPU, shared across GPUs) --------------------------
    std::uint64_t l2BytesPerGpu = 4ull * 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    std::uint32_t l2Banks = 16;
    Tick l2Latency = 100;
    std::uint32_t l2MshrEntries = 64;

    // --- DRAM -------------------------------------------------------------
    Tick dramLatency = 100;

    /** DRAM bandwidth in bytes/cycle (1 TB/s at 1 GHz = 1024 B/cycle). */
    std::uint32_t dramBytesPerCycle = 1024;

    // --- Virtual memory ---------------------------------------------------
    std::uint32_t l1TlbEntries = 32;
    Tick l1TlbLatency = 1;
    std::uint32_t l1TlbMshrEntries = 8;

    std::uint32_t l2TlbEntries = 512;
    std::uint32_t l2TlbAssoc = 8;
    Tick l2TlbLatency = 10;
    std::uint32_t l2TlbMshrEntries = 64;

    std::uint32_t pwcEntries = 32;
    Tick pwcLatency = 10;
    std::uint32_t pageWalkers = 16;

    // --- NetCrafter -------------------------------------------------------
    NetCrafterConfig netcrafter;

    /** Seed for all workload randomness. */
    std::uint64_t seed = 1;

    // --- Derived helpers --------------------------------------------------
    std::uint32_t numGpus() const { return numClusters * gpusPerCluster; }

    ClusterId
    clusterOf(GpuId gpu) const
    {
        return gpu / gpusPerCluster;
    }

    /** Convert GB/s to flits per 1 GHz cycle (>= 1). */
    std::uint32_t
    flitsPerCycle(double gbps) const
    {
        double per_cycle = gbps / flitBytes;
        auto flits = static_cast<std::uint32_t>(per_cycle + 0.5);
        return flits == 0 ? 1 : flits;
    }

    std::uint32_t intraFlitsPerCycle() const
    {
        return flitsPerCycle(intraClusterGBps);
    }

    std::uint32_t interFlitsPerCycle() const
    {
        return flitsPerCycle(interClusterGBps);
    }

    /** Basic validity checks; NC_FATALs on bad combinations. */
    void validate() const;

    /**
     * Stable 64-bit fingerprint of every serialized field (FNV-1a over
     * the config_io text form). Two configs share a digest exactly when
     * configToString() agrees, so it is a safe cache / dedup key for
     * experiment results.
     */
    std::uint64_t digest() const;
};

/** digest() rendered as a fixed-width lowercase hex string. */
std::string digestHex(const SystemConfig &cfg);

/** A raw digest value rendered the same way (16 hex digits). */
std::string digestHex(std::uint64_t digest);

/** Table 2 baseline: non-uniform 128/16 GB/s, no NetCrafter. */
SystemConfig baselineConfig();

/** "Ideal" configuration: inter-cluster links as fast as intra. */
SystemConfig idealConfig();

/** Baseline + full NetCrafter (stitch + selective pooling @32 + trim +
 *  sequencing), the configuration behind the headline Figure 14 bar. */
SystemConfig netcrafterConfig();

/** Baseline + stitching only (optionally with selective pooling). */
SystemConfig stitchingConfig(bool pooling = true, bool selective = true,
                             Tick window = 32);

/** Baseline + 16B sector-cache L1 ("all trimming", Section 5.3). */
SystemConfig sectorCacheConfig(std::uint32_t sector_bytes = 16);

} // namespace netcrafter::config

#endif // NETCRAFTER_CONFIG_SYSTEM_CONFIG_HH
