/**
 * @file
 * Execution-policy knobs: how many host threads drive the shard
 * engines and whether they work-steal across the quantum barrier.
 * Pure execution details — no knob here can change a simulation
 * result, which is why they live outside SystemConfig and its digest.
 */

#ifndef NETCRAFTER_CONFIG_EXEC_CONFIG_HH
#define NETCRAFTER_CONFIG_EXEC_CONFIG_HH

#include <cstdint>

#include "src/sim/sharded_engine.hh"

namespace netcrafter::config {

/**
 * Parse one NETCRAFTER_THREADS value: 0 (one thread per shard) or a
 * positive executor-thread count (sanely capped at 65536; the engine
 * clamps to the shard count). Negative numbers and garbage are fatal —
 * silently running one thread on a typo would make every speedup
 * number lie.
 */
unsigned parseThreadsEnv(const char *text);

/**
 * Parse one NETCRAFTER_STEAL value: 0/1, or the words off/on,
 * false/true. Anything else is fatal.
 */
bool parseStealEnv(const char *text);

/**
 * Parse one NETCRAFTER_STEAL_MIN_BACKLOG value: a positive event-count
 * floor below which a shard's unit is not worth stealing. Zero,
 * negatives, and garbage are fatal.
 */
std::uint32_t parseStealMinBacklogEnv(const char *text);

/**
 * Build an ExecPolicy from the NETCRAFTER_THREADS, NETCRAFTER_STEAL,
 * and NETCRAFTER_STEAL_MIN_BACKLOG environment variables, starting
 * from the defaults (threads = one per shard, stealing off). Unset
 * variables leave the corresponding field untouched; invalid values
 * are fatal.
 */
sim::ExecPolicy execPolicyFromEnv();

/**
 * Parse one NETCRAFTER_SYNC value: "strict" or "relaxed". Anything
 * else is fatal. Unlike the ExecPolicy knobs above, the sync mode DOES
 * change simulation results (a relaxed run is reproducible but not
 * bit-identical to strict), so it flows into the result-cache key and
 * the export columns.
 */
sim::SyncMode parseSyncModeEnv(const char *text);

/**
 * Parse one NETCRAFTER_SKEW_BOUND value: a non-negative tick bound on
 * relaxed-mode clock skew (0 degenerates to strict windows; capped at
 * 2^40 ticks). Negatives and garbage are fatal.
 */
Tick parseSkewBoundEnv(const char *text);

/**
 * Build a SyncPolicy from the NETCRAFTER_SYNC and NETCRAFTER_SKEW_BOUND
 * environment variables, starting from the defaults (strict mode, the
 * default relaxed skew bound). Unset variables leave the field
 * untouched; invalid values are fatal.
 */
sim::SyncPolicy syncPolicyFromEnv();

} // namespace netcrafter::config

#endif // NETCRAFTER_CONFIG_EXEC_CONFIG_HH
