#include "src/config/exec_config.hh"

#include <cstdlib>
#include <cstring>

#include "src/sim/logging.hh"

namespace netcrafter::config {

unsigned
parseThreadsEnv(const char *text)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    // strtol saturates overflow at LONG_MAX, so the upper check also
    // rejects absurdly long digit strings. 0 is legal: one thread per
    // shard, the default mapping.
    if (end == text || *end != '\0' || v < 0 || v > (1L << 16)) {
        NC_FATAL("NETCRAFTER_THREADS must be 0 (one per shard) or a "
                 "positive executor-thread count, got '", text, "'");
    }
    return static_cast<unsigned>(v);
}

bool
parseStealEnv(const char *text)
{
    if (std::strcmp(text, "1") == 0 || std::strcmp(text, "on") == 0 ||
        std::strcmp(text, "true") == 0)
        return true;
    if (std::strcmp(text, "0") == 0 || std::strcmp(text, "off") == 0 ||
        std::strcmp(text, "false") == 0)
        return false;
    NC_FATAL("NETCRAFTER_STEAL must be one of 0/1/on/off/true/false, "
             "got '", text, "'");
}

std::uint32_t
parseStealMinBacklogEnv(const char *text)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > (1L << 30)) {
        NC_FATAL("NETCRAFTER_STEAL_MIN_BACKLOG must be a positive "
                 "event-count floor, got '", text, "'");
    }
    return static_cast<std::uint32_t>(v);
}

sim::ExecPolicy
execPolicyFromEnv()
{
    sim::ExecPolicy exec;
    if (const char *env = std::getenv("NETCRAFTER_THREADS"))
        exec.threads = parseThreadsEnv(env);
    if (const char *env = std::getenv("NETCRAFTER_STEAL"))
        exec.steal = parseStealEnv(env);
    if (const char *env = std::getenv("NETCRAFTER_STEAL_MIN_BACKLOG"))
        exec.stealMinBacklog = parseStealMinBacklogEnv(env);
    return exec;
}

sim::SyncMode
parseSyncModeEnv(const char *text)
{
    if (std::strcmp(text, "strict") == 0)
        return sim::SyncMode::Strict;
    if (std::strcmp(text, "relaxed") == 0)
        return sim::SyncMode::Relaxed;
    NC_FATAL("NETCRAFTER_SYNC must be 'strict' or 'relaxed', got '",
             text, "'");
}

Tick
parseSkewBoundEnv(const char *text)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 0 || v > (1LL << 40)) {
        NC_FATAL("NETCRAFTER_SKEW_BOUND must be a non-negative tick "
                 "bound (0 = strict windows), got '", text, "'");
    }
    return static_cast<Tick>(v);
}

sim::SyncPolicy
syncPolicyFromEnv()
{
    sim::SyncPolicy sync;
    if (const char *env = std::getenv("NETCRAFTER_SYNC"))
        sync.mode = parseSyncModeEnv(env);
    if (const char *env = std::getenv("NETCRAFTER_SKEW_BOUND"))
        sync.skewBound = parseSkewBoundEnv(env);
    return sync;
}

} // namespace netcrafter::config
