/**
 * @file
 * Textual serialization of SystemConfig as `key = value` lines, so
 * experiment configurations can be logged alongside results and loaded
 * back for exact reruns.
 */

#ifndef NETCRAFTER_CONFIG_CONFIG_IO_HH
#define NETCRAFTER_CONFIG_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "src/config/system_config.hh"

namespace netcrafter::config {

/** Write every field of @p cfg as `key = value` lines. */
void writeConfig(const SystemConfig &cfg, std::ostream &os);

/** writeConfig into a string. */
std::string configToString(const SystemConfig &cfg);

/**
 * Parse `key = value` lines (comments start with '#', blank lines
 * ignored) over @p base; unknown keys are fatal (catches typos).
 */
SystemConfig parseConfig(std::istream &is,
                         const SystemConfig &base = SystemConfig{});

/** parseConfig from a string. */
SystemConfig parseConfigString(const std::string &text,
                               const SystemConfig &base = SystemConfig{});

/** Name of a sequencing mode for serialization. */
const char *sequencingModeName(SequencingMode mode);

/** Name of an L1 fill mode for serialization. */
const char *l1FillModeName(L1FillMode mode);

} // namespace netcrafter::config

#endif // NETCRAFTER_CONFIG_CONFIG_IO_HH
