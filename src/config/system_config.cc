#include "src/config/system_config.hh"

#include "src/sim/logging.hh"

namespace netcrafter::config {

void
SystemConfig::validate() const
{
    if (numClusters < 1)
        NC_FATAL("at least one cluster required");
    if (gpusPerCluster < 1)
        NC_FATAL("at least one GPU per cluster required");
    if (flitBytes != 8 && flitBytes != 16 && flitBytes != 32)
        NC_FATAL("unsupported flit size ", flitBytes,
                 " (expected 8, 16 or 32)");
    if (netcrafter.trimGranularity != 4 && netcrafter.trimGranularity != 8 &&
        netcrafter.trimGranularity != 16 &&
        netcrafter.trimGranularity != 32)
        NC_FATAL("unsupported trim granularity ",
                 netcrafter.trimGranularity);
    if (kCacheLineBytes % netcrafter.trimGranularity != 0)
        NC_FATAL("trim granularity must divide the cache line size");
    if (l1FillMode == L1FillMode::TrimInterCluster && !netcrafter.trimming)
        NC_FATAL("TrimInterCluster fill mode requires netcrafter.trimming");
    if (netcrafter.flitPooling && !netcrafter.stitching)
        NC_FATAL("flit pooling only makes sense with stitching enabled");
    if (l1Assoc == 0 || l2Assoc == 0 || l2Banks == 0)
        NC_FATAL("associativities and bank counts must be positive");
    if (interLinkLatency < 1)
        NC_FATAL("inter-cluster link latency must be >= 1 cycle "
                 "(it is the sharded engine's conservative lookahead)");
}

SystemConfig
baselineConfig()
{
    return SystemConfig{};
}

SystemConfig
idealConfig()
{
    SystemConfig cfg;
    cfg.interClusterGBps = cfg.intraClusterGBps;
    return cfg;
}

SystemConfig
netcrafterConfig()
{
    SystemConfig cfg;
    cfg.netcrafter.stitching = true;
    cfg.netcrafter.flitPooling = true;
    cfg.netcrafter.selectivePooling = true;
    cfg.netcrafter.poolingWindow = 32;
    cfg.netcrafter.trimming = true;
    cfg.netcrafter.sequencing = SequencingMode::PrioritizePtw;
    cfg.l1FillMode = L1FillMode::TrimInterCluster;
    return cfg;
}

SystemConfig
stitchingConfig(bool pooling, bool selective, Tick window)
{
    SystemConfig cfg;
    cfg.netcrafter.stitching = true;
    cfg.netcrafter.flitPooling = pooling;
    cfg.netcrafter.selectivePooling = selective;
    cfg.netcrafter.poolingWindow = window;
    return cfg;
}

SystemConfig
sectorCacheConfig(std::uint32_t sector_bytes)
{
    SystemConfig cfg;
    cfg.l1FillMode = L1FillMode::SectorAlways;
    cfg.netcrafter.trimGranularity = sector_bytes;
    return cfg;
}

} // namespace netcrafter::config
