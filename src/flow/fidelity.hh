/**
 * @file
 * Simulation fidelity selection. The simulator can run each experiment
 * point at one of three fidelities:
 *
 *  - Cycle:  the classic flit-level event-driven path. The default, and
 *            bit-identical to what the simulator always produced.
 *  - Flow:   every network round trip rides the analytic flow model
 *            (src/flow/fidelity_controller.hh) from tick 0. Fastest,
 *            least faithful during warmup transients.
 *  - Hybrid: links start on the cycle-accurate flit path and hand
 *            steady-state traffic to the flow model once their measured
 *            epoch rates stabilize; instability escalates them back.
 *
 * Flow and Hybrid are restricted to single-shard execution: the fused
 * fast path completes a whole round trip in one event, which has no
 * meaningful decomposition across conservative shard barriers.
 */

#ifndef NETCRAFTER_FLOW_FIDELITY_HH
#define NETCRAFTER_FLOW_FIDELITY_HH

#include <cstdint>
#include <optional>
#include <string>

namespace netcrafter::flow {

/** The three execution fidelities. */
enum class Fidelity : unsigned char
{
    Cycle = 0,
    Flow,
    Hybrid,
};

/** Short printable name ("cycle", "flow", "hybrid"). */
const char *fidelityName(Fidelity f);

/**
 * Parse a fidelity name. Accepts exactly "cycle", "flow" and "hybrid"
 * (lowercase); anything else returns nullopt so callers can produce a
 * context-specific fatal message.
 */
std::optional<Fidelity> parseFidelity(const std::string &text);

/**
 * Parse @p text (a --fidelity argument or the NETCRAFTER_FIDELITY
 * environment value) or die: unknown names NC_FATAL with the offending
 * text and the accepted spellings. @p what names the source of the
 * value in the error message.
 */
Fidelity parseFidelityOrDie(const std::string &text, const char *what);

/**
 * Fidelity requested through the NETCRAFTER_FIDELITY environment
 * variable; @p fallback when unset. Garbage values are fatal, not
 * ignored: a sweep silently running at the wrong fidelity is far worse
 * than an early exit.
 */
Fidelity fidelityFromEnv(Fidelity fallback = Fidelity::Cycle);

/**
 * Parse one NETCRAFTER_FLOW_EPOCH_TICKS value: the hybrid/flow lane
 * classification epoch length in ticks, >= 1 (capped at 2^30). Zero,
 * negatives, and garbage are fatal.
 */
std::uint64_t parseFlowEpochTicksEnv(const char *text);

/**
 * Parse one NETCRAFTER_FLOW_STABLE_EPOCHS value: stable epochs a lane
 * must string together before the hybrid mode hands it to the flow
 * model, >= 1 (capped at 2^20). Zero, negatives, and garbage are
 * fatal.
 */
std::uint32_t parseFlowStableEpochsEnv(const char *text);

/**
 * NETCRAFTER_FLOW_EPOCH_TICKS from the environment, or @p fallback
 * when unset. Invalid values are fatal.
 */
std::uint64_t flowEpochTicksFromEnv(std::uint64_t fallback);

/**
 * NETCRAFTER_FLOW_STABLE_EPOCHS from the environment, or @p fallback
 * when unset. Invalid values are fatal.
 */
std::uint32_t flowStableEpochsFromEnv(std::uint32_t fallback);

} // namespace netcrafter::flow

#endif // NETCRAFTER_FLOW_FIDELITY_HH
