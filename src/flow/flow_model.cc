#include "src/flow/flow_model.hh"

#include <algorithm>
#include <limits>

#include "src/sim/logging.hh"

namespace netcrafter::flow {

FlowModel::LinkId
FlowModel::addLink(Rate capacity)
{
    NC_ASSERT(capacity > 0, "flow link needs positive capacity");
    links_.push_back(Link{capacity, 0, 0, 0});
    return static_cast<LinkId>(links_.size() - 1);
}

FlowModel::FlowId
FlowModel::addFlow(std::vector<LinkId> path, Rate demand)
{
    for (LinkId l : path)
        NC_ASSERT(l < links_.size(), "flow path references bad link");
    Flow f;
    f.path = std::move(path);
    f.demand = demand;
    f.live = true;
    flows_.push_back(std::move(f));
    ++liveFlows_;
    return static_cast<FlowId>(flows_.size() - 1);
}

void
FlowModel::removeFlow(FlowId flow)
{
    NC_ASSERT(flow < flows_.size() && flows_[flow].live,
              "removing dead flow");
    flows_[flow].live = false;
    flows_[flow].rate = 0;
    --liveFlows_;
}

void
FlowModel::setDemand(FlowId flow, Rate demand)
{
    NC_ASSERT(flow < flows_.size() && flows_[flow].live,
              "demand on dead flow");
    flows_[flow].demand = demand;
}

Rate
FlowModel::linkUtilizationQ16(LinkId link) const
{
    const Link &l = links_[link];
    if (l.load >= l.capacity)
        return kRateOne;
    // load/capacity in Q16; both operands are Q16 so the scale cancels.
    return (l.load << 16) / l.capacity;
}

void
FlowModel::recompute()
{
    ++recomputes_;
    for (Link &l : links_) {
        l.load = 0;
        l.frozenLoad = 0;
        l.unfrozen = 0;
    }
    std::size_t remaining = 0;
    for (Flow &f : flows_) {
        f.rate = 0;
        f.frozen = !f.live;
        if (!f.live)
            continue;
        if (f.demand == 0 || f.path.empty()) {
            // Zero-demand flows get zero; link-free flows are never
            // constrained. Freeze both immediately.
            f.rate = f.demand;
            f.frozen = true;
            continue;
        }
        ++remaining;
        for (LinkId l : f.path)
            ++links_[l].unfrozen;
    }

    while (remaining > 0) {
        // Bottleneck share: the smallest per-flow headroom across
        // links that still carry unfrozen flows. Lowest link id wins
        // ties so the freeze order is reproducible.
        Rate bottleneck_share = std::numeric_limits<Rate>::max();
        for (const Link &l : links_) {
            if (l.unfrozen == 0)
                continue;
            const Rate headroom =
                l.capacity > l.frozenLoad ? l.capacity - l.frozenLoad
                                          : 0;
            bottleneck_share =
                std::min(bottleneck_share, headroom / l.unfrozen);
        }

        // Demand-limited flows whose ask fits under the bottleneck
        // share are satisfied outright; their leftover capacity raises
        // everyone else's share next iteration.
        bool froze_by_demand = false;
        for (Flow &f : flows_) {
            if (f.frozen || f.demand > bottleneck_share)
                continue;
            f.rate = f.demand;
            f.frozen = true;
            froze_by_demand = true;
            --remaining;
            for (LinkId l : f.path) {
                links_[l].frozenLoad += f.rate;
                --links_[l].unfrozen;
            }
        }
        if (froze_by_demand)
            continue;

        // Otherwise saturate the bottleneck link: every unfrozen flow
        // through the most-constrained link freezes at the fair share.
        for (std::size_t li = 0; li < links_.size(); ++li) {
            Link &l = links_[li];
            if (l.unfrozen == 0)
                continue;
            const Rate headroom =
                l.capacity > l.frozenLoad ? l.capacity - l.frozenLoad
                                          : 0;
            if (headroom / l.unfrozen != bottleneck_share)
                continue;
            // Freeze this link's unfrozen flows, in flow-id order.
            for (Flow &f : flows_) {
                if (f.frozen)
                    continue;
                if (std::find(f.path.begin(), f.path.end(),
                              static_cast<LinkId>(li)) == f.path.end())
                    continue;
                f.rate = bottleneck_share;
                f.frozen = true;
                --remaining;
                for (LinkId pl : f.path) {
                    links_[pl].frozenLoad += f.rate;
                    --links_[pl].unfrozen;
                }
            }
            break; // one bottleneck per iteration keeps this exact
        }
    }

    for (Link &l : links_)
        l.load = l.frozenLoad;
}

Tick
FlowModel::md1WaitTicks(Rate rho_q16, Tick service_ticks)
{
    if (rho_q16 == 0 || service_ticks == 0)
        return 0;
    // Clamp rho at 127/128 of capacity: a saturated server then
    // reports a ~64x-service wait rather than infinity; sustained
    // overload is the virtual FIFO servers' job to serialize, not this
    // estimate's. The clamp is deliberately high — near saturation the
    // cycle-accurate system develops deep synchronized bursts (stalled
    // wavefronts re-issue together), and the steep tail of the M/D/1
    // curve is what stands in for that burst amplification.
    constexpr Rate kMaxRho = kRateOne - kRateOne / 128;
    const Rate rho = std::min(rho_q16, kMaxRho);
    return static_cast<Tick>((rho * service_ticks) /
                             (2 * (kRateOne - rho)));
}

} // namespace netcrafter::flow
