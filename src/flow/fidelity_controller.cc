#include "src/flow/fidelity_controller.hh"

#include <algorithm>

#include "src/noc/flit.hh"
#include "src/noc/traffic_monitor.hh"
#include "src/noc/wire_channel.hh"
#include "src/obs/progress_board.hh"
#include "src/sim/engine.hh"
#include "src/sim/logging.hh"

namespace netcrafter::flow {

namespace {

/** Stitch-residency window when flit pooling is off: candidates only
 *  meet parents still queued in the Cluster Queue, a few cycles deep. */
constexpr Tick kUnpooledStitchWindow = 8;

/** Rate slack treated as "no change" when judging lane stability:
 *  a quarter byte per cycle, so idle lanes settle immediately. */
constexpr Rate kStableSlack = kRateOne / 4;

} // namespace

FidelityController::FidelityController(const config::SystemConfig &cfg,
                                       Fidelity fidelity)
    : cfg_(cfg), fidelity_(fidelity),
      epochTicks_(flowEpochTicksFromEnv(kDefaultEpochTicks)),
      stableEpochs_(flowStableEpochsFromEnv(kDefaultStableEpochs)),
      trimEngine_(cfg.netcrafter.trimGranularity)
{
    NC_ASSERT(fidelity != Fidelity::Cycle,
              "cycle fidelity needs no controller");
    const std::uint32_t num_gpus = cfg_.numGpus();
    const std::uint32_t clusters = cfg_.numClusters;
    upLink_.resize(num_gpus);
    downLink_.resize(num_gpus);
    for (GpuId g = 0; g < num_gpus; ++g) {
        upLink_[g].flitsPerCycle = cfg_.intraFlitsPerCycle();
        downLink_[g].flitsPerCycle = cfg_.intraFlitsPerCycle();
    }
    interLegs_.resize(static_cast<std::size_t>(clusters) * clusters);
    lanes_.resize(static_cast<std::size_t>(clusters) * clusters);
    for (ClusterId from = 0; from < clusters; ++from) {
        for (ClusterId to = 0; to < clusters; ++to) {
            Lane &lane = laneOf(from, to);
            // Flow mode rides the model from tick 0; Hybrid warms up
            // on the cycle-accurate path until the lane stabilizes.
            lane.flowLane = fidelity_ == Fidelity::Flow;
            if (from == to) {
                lane.flow = model_.addFlow({}, 0);
                lane.hasFlow = true;
                continue;
            }
            InterLeg &leg = interLegOf(from, to);
            leg.server.flitsPerCycle = cfg_.interFlitsPerCycle();
            leg.link = model_.addLink(
                rateQ16(static_cast<std::uint64_t>(
                    cfg_.interFlitsPerCycle() * cfg_.flitBytes)));
            lane.flow = model_.addFlow({leg.link}, 0);
            lane.hasFlow = true;
        }
    }
}

FidelityController::Lane &
FidelityController::laneOf(ClusterId from, ClusterId to)
{
    return lanes_[static_cast<std::size_t>(from) * cfg_.numClusters +
                  to];
}

FidelityController::InterLeg &
FidelityController::interLegOf(ClusterId from, ClusterId to)
{
    return interLegs_[static_cast<std::size_t>(from) *
                          cfg_.numClusters +
                      to];
}

void
FidelityController::attachInterLink(ClusterId from, ClusterId to,
                                    noc::TrafficMonitor *monitor,
                                    noc::WireChannel *channel)
{
    NC_ASSERT(from != to, "no self inter-cluster link");
    InterLeg &leg = interLegOf(from, to);
    leg.monitor = monitor;
    leg.channel = channel;
}

void
FidelityController::advanceEpochs(Lane &lane, Tick now)
{
    // Response transits are future-dated past the request's service
    // time, so observation times interleave non-monotonically; bytes
    // landing before the lane's current epoch simply count into it.
    if (now < lane.epochStart)
        return;
    while (now - lane.epochStart >= epochTicks_) {
        const Rate rate = (lane.epochBytes << 16) / epochTicks_;
        lane.epochBytes = 0;
        ++stats_.epochsClosed;

        const Rate prev = lane.lastRate;
        const Rate diff = rate > prev ? rate - prev : prev - rate;
        const bool stable = diff <= std::max(prev / 16, kStableSlack);
        lane.lastRate = rate;
        if (lane.hasFlow) {
            model_.setDemand(lane.flow, rate);
            model_.recompute();
        }

        if (stable) {
            if (lane.stableEpochs < stableEpochs_)
                ++lane.stableEpochs;
            if (!lane.flowLane && fidelity_ == Fidelity::Hybrid &&
                lane.stableEpochs >= stableEpochs_) {
                lane.flowLane = true;
                ++stats_.laneActivations;
                // Live-telemetry gauge: hybrid lanes currently riding
                // the flow path. Flow fidelity is single-shard, so the
                // current engine's cell is the only writer.
                if (sim::Engine *e = sim::Engine::current())
                    if (obs::ShardCell *cell = e->progressCell())
                        cell->flowLanesActive.fetch_add(
                            1, std::memory_order_relaxed);
            }
        } else {
            lane.stableEpochs = 0;
            if (lane.flowLane && fidelity_ == Fidelity::Hybrid) {
                // The lane left steady state: new packets go back to
                // the flit path at this epoch boundary. In-flight flow
                // packets complete on their already-computed schedule.
                lane.flowLane = false;
                ++stats_.laneEscalations;
                if (sim::Engine *e = sim::Engine::current())
                    if (obs::ShardCell *cell = e->progressCell())
                        cell->flowLanesActive.fetch_sub(
                            1, std::memory_order_relaxed);
            }
        }

        lane.epochStart += epochTicks_;
        if (now - lane.epochStart >= 4 * epochTicks_) {
            // Long idle gap: one zero-rate close settles the lane,
            // then jump to the epoch containing `now` (still aligned
            // to epochTicks_ multiples) instead of looping per epoch.
            lane.lastRate = 0;
            if (lane.stableEpochs < stableEpochs_)
                ++lane.stableEpochs;
            if (lane.hasFlow) {
                model_.setDemand(lane.flow, 0);
                model_.recompute();
            }
            ++stats_.epochsClosed;
            lane.epochStart =
                now - (now - lane.epochStart) % epochTicks_;
        }
    }
}

bool
FidelityController::classify(const noc::Packet &pkt, Tick now)
{
    Lane &lane =
        laneOf(cfg_.clusterOf(pkt.src), cfg_.clusterOf(pkt.dst));
    advanceEpochs(lane, now);
    if (fidelity_ == Fidelity::Flow || lane.flowLane)
        return true; // transit() accounts the lane bytes
    lane.epochBytes += pkt.totalBytes();
    ++stats_.cyclePackets;
    return false;
}

void
FidelityController::noteCyclePacket(const noc::Packet &pkt, Tick now)
{
    Lane &lane =
        laneOf(cfg_.clusterOf(pkt.src), cfg_.clusterOf(pkt.dst));
    advanceEpochs(lane, now);
    lane.epochBytes += pkt.totalBytes();
    ++stats_.cyclePackets;
}

Tick
FidelityController::serve(LegServer &server, Tick arrival,
                          std::uint32_t flits, bool bypass_queue)
{
    // Fluid pipe in flit-slot units: the leg streams flitsPerCycle
    // flits each cycle, and a packet departs when its last flit has
    // streamed behind the backlog.
    const std::uint64_t arrival_slots =
        static_cast<std::uint64_t>(arrival) * server.flitsPerCycle;
    std::uint64_t start = arrival_slots;
    if (!bypass_queue && server.nextFreeSlots > start) {
        stats_.fifoWaitTicks +=
            (server.nextFreeSlots - start) / server.flitsPerCycle;
        start = server.nextFreeSlots;
    }
    // Bandwidth is consumed either way; a bypassing packet preempts
    // the queue but still occupies the wire.
    server.nextFreeSlots = std::max(server.nextFreeSlots, start) +
                           std::max<std::uint32_t>(flits, 1);
    return divCeil(start + std::max<std::uint32_t>(flits, 1),
                   server.flitsPerCycle);
}

Tick
FidelityController::transit(noc::Packet &pkt, Tick when)
{
    const ClusterId from = cfg_.clusterOf(pkt.src);
    const ClusterId to = cfg_.clusterOf(pkt.dst);
    pkt.interCluster = from != to;
    // Lane demand counts the pre-trim offered load, like the flit
    // path's Cluster Queue does.
    Lane &lane = laneOf(from, to);
    advanceEpochs(lane, when);
    lane.epochBytes += pkt.totalBytes();
    const std::uint32_t flit_bytes = cfg_.flitBytes;
    const bool sequencing =
        cfg_.netcrafter.sequencing != config::SequencingMode::Off;
    const bool bypass = sequencing && pkt.latencyCritical;

    // GPU -> cluster switch, then the switch pipeline.
    Tick t = serve(upLink_[pkt.src], when,
                   noc::flitsForBytes(pkt.totalBytes(), flit_bytes),
                   false);
    t += cfg_.switchLatency;

    if (pkt.interCluster) {
        InterLeg &leg = interLegOf(from, to);

        // Trimming runs at the egress port, exactly as in the flit
        // path: same predicate, same byte arithmetic, same stats.
        if (cfg_.netcrafter.trimming && trimEngine_.shouldTrim(pkt))
            trimEngine_.trim(pkt);

        std::uint32_t wire_flits =
            noc::flitsForBytes(pkt.totalBytes(), flit_bytes);

        // Stitch approximation: a single-flit packet may ride the
        // padding a recent flow packet left on the wire. Donors expire
        // after the pooling window (or a short Cluster-Queue residency
        // when pooling is off).
        bool absorbed = false;
        if (cfg_.netcrafter.stitching) {
            while (!leg.padPool.empty() &&
                   leg.padPool.front().expires <= t)
                leg.padPool.pop_front();
            const bool pool_exempt = cfg_.netcrafter.selectivePooling &&
                                     pkt.latencyCritical;
            if (wire_flits == 1 && !pool_exempt) {
                for (PadDonor &donor : leg.padPool) {
                    if (donor.freeBytes >= pkt.totalBytes()) {
                        donor.freeBytes -= pkt.totalBytes();
                        absorbed = true;
                        ++stats_.stitchedPieces;
                        break;
                    }
                }
            }
            if (!absorbed) {
                const std::uint32_t free =
                    wire_flits * flit_bytes - pkt.totalBytes();
                if (free > 0) {
                    const Tick window =
                        cfg_.netcrafter.flitPooling
                            ? cfg_.netcrafter.poolingWindow
                            : kUnpooledStitchWindow;
                    leg.padPool.push_back(PadDonor{t + window, free});
                    if (leg.padPool.size() >
                        cfg_.netcrafter.stitchSearchDepth)
                        leg.padPool.pop_front();
                }
            }
        }

        if (absorbed) {
            // Rides a parent flit already scheduled: flight time only.
            t += cfg_.interLinkLatency;
        } else {
            const Tick occupancy = std::max<Tick>(
                1, divCeil(wire_flits, leg.server.flitsPerCycle));
            t = serve(leg.server, t, wire_flits, bypass);
            if (!bypass) {
                // The FIFO backlog captures this leg's own serialized
                // queue; the M/D/1 term adds the contention the packet
                // FIFO cannot see — cross-traffic interleaving at the
                // switch crossbar and the burstiness of closed-loop
                // arrivals. Latency only: the bandwidth is already
                // accounted by the server slots above.
                const Tick md1 = FlowModel::md1WaitTicks(
                    model_.linkUtilizationQ16(leg.link), occupancy);
                stats_.md1WaitTicks += md1;
                t += md1;
            }
            t += cfg_.interLinkLatency;
        }

        // Census: synthesize exactly the flits the packet would have
        // put on this wire.
        const std::uint32_t credited = absorbed ? 0 : wire_flits;
        if (leg.monitor) {
            leg.monitor->observeFlowPacket(pkt, credited, flit_bytes);
        }
        if (leg.channel) {
            leg.channel->creditFlowTraffic(
                credited,
                static_cast<std::uint64_t>(credited) * flit_bytes,
                pkt.totalBytes(), t);
        }

        t += cfg_.switchLatency; // destination cluster switch
    }

    // Cluster switch -> destination GPU.
    t = serve(downLink_[pkt.dst], t,
              noc::flitsForBytes(pkt.totalBytes(), flit_bytes), false);

    ++stats_.flowPackets;
    stats_.flowBytesInjected += pkt.totalBytes();
    return t;
}

void
FidelityController::noteDelivered(const noc::Packet &pkt)
{
    ++stats_.flowPacketsDelivered;
    stats_.flowBytesDelivered += pkt.totalBytes();
}

const FlowLaneStats &
FidelityController::stats() const
{
    stats_.recomputes = model_.recomputes();
    return stats_;
}

} // namespace netcrafter::flow
