/**
 * @file
 * FidelityController: the runtime half of the hybrid-fidelity fast
 * path. The cycle-level simulator spends almost all of its events
 * moving flits hop by hop; for steady-state bulk traffic the same
 * timing is computable analytically. The controller owns that analytic
 * machinery:
 *
 *  - A virtual FIFO server per network leg (GPU up-link, GPU down-link
 *    and each directed inter-cluster wire). A packet occupies a leg for
 *    ceil(flits / rate) cycles behind whatever was already queued, so
 *    backlog serialization — the first-order determinant of runtime on
 *    the 16 GB/s inter-cluster wires — is exact.
 *  - A FlowModel (max-min fair share over the inter-cluster links,
 *    recomputed each epoch from measured byte rates) whose per-link
 *    utilization feeds an M/D/1 queueing-delay estimate for the
 *    fine-grained cross-traffic interleaving a FIFO of whole packets
 *    cannot see, added on top of the FIFO backlog (latency only — the
 *    bandwidth is already consumed by the server slots).
 *  - Packet-level replicas of the NetCrafter mechanisms so ablation
 *    configs keep their ordering: Trimming is applied exactly (same
 *    TrimEngine predicate and byte arithmetic), Sequencing lets
 *    latency-critical packets bypass the queue waits, and Stitching is
 *    approximated by a per-link padding pool with pooling-window
 *    expiry (an absorbed single-flit packet rides a recent parent's
 *    padding and puts zero flits on the wire).
 *  - Per-(link, epoch) lane classification for Hybrid mode: every lane
 *    starts on the cycle-accurate flit path, hands over to the flow
 *    model after `stableEpochs()` epochs of stable measured rate, and
 *    escalates back the moment the rate swings. Conversion is
 *    deterministic and happens at epoch boundaries only.
 *  - Census crediting: each flow-lane packet synthesizes exactly the
 *    flits it would have produced into the inter-cluster TrafficMonitor
 *    and WireChannel counters, so figure pipelines read the same
 *    headline fields regardless of fidelity.
 *
 * Conservation is tracked explicitly: every packet and byte injected
 * into the flow lane must be delivered (flowPacketsInjected ==
 * flowPacketsDelivered after a drained run) — the invariant the
 * validation harness and unit tests gate on.
 */

#ifndef NETCRAFTER_FLOW_FIDELITY_CONTROLLER_HH
#define NETCRAFTER_FLOW_FIDELITY_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "src/config/system_config.hh"
#include "src/core/trim_engine.hh"
#include "src/flow/fidelity.hh"
#include "src/flow/flow_model.hh"
#include "src/noc/packet.hh"

namespace netcrafter::noc {
class TrafficMonitor;
class WireChannel;
} // namespace netcrafter::noc

namespace netcrafter::flow {

/** Aggregate diagnostics exported into RunResult. */
struct FlowLaneStats
{
    std::uint64_t flowPackets = 0;
    std::uint64_t cyclePackets = 0;
    std::uint64_t flowPacketsDelivered = 0;
    std::uint64_t flowBytesInjected = 0;
    std::uint64_t flowBytesDelivered = 0;
    std::uint64_t epochsClosed = 0;
    std::uint64_t laneActivations = 0;
    std::uint64_t laneEscalations = 0;
    std::uint64_t stitchedPieces = 0;
    std::uint64_t md1WaitTicks = 0;
    std::uint64_t fifoWaitTicks = 0;
    std::uint64_t recomputes = 0;
};

class FidelityController
{
  public:
    /** Default epoch length for rate measurement and lane
     *  classification; NETCRAFTER_FLOW_EPOCH_TICKS overrides it. */
    static constexpr Tick kDefaultEpochTicks = 256;

    /** Default stable epochs required before a lane joins the flow
     *  model; NETCRAFTER_FLOW_STABLE_EPOCHS overrides it. */
    static constexpr std::uint32_t kDefaultStableEpochs = 4;

    FidelityController(const config::SystemConfig &cfg,
                       Fidelity fidelity);

    Fidelity fidelity() const { return fidelity_; }

    /** Epoch length in ticks this controller classifies lanes with. */
    Tick epochTicks() const { return epochTicks_; }

    /** Stable epochs required before a hybrid lane hands over. */
    std::uint32_t stableEpochs() const { return stableEpochs_; }

    /**
     * Attach the census sinks of the directed inter-cluster link
     * @p from -> @p to. Flow-lane packets crossing that link credit
     * synthesized flits into both. Optional: without sinks the
     * controller still times packets, it just cannot credit them.
     */
    void attachInterLink(ClusterId from, ClusterId to,
                         noc::TrafficMonitor *monitor,
                         noc::WireChannel *channel);

    /**
     * Decide the lane for a packet entering the network at @p now and
     * record its bytes in the source lane's epoch census. True: the
     * caller must route the packet through the flow lane (transit());
     * false: it takes the cycle-accurate flit path, and the caller
     * reports the eventual response via noteCyclePacket() like any
     * other cycle-lane packet.
     */
    bool classify(const noc::Packet &pkt, Tick now);

    /**
     * Epoch bookkeeping for a cycle-lane packet (Hybrid warmup and
     * escalated lanes): measured rates must include both lanes or the
     * hand-over thresholds would starve.
     */
    void noteCyclePacket(const noc::Packet &pkt, Tick now);

    /**
     * Send @p pkt through the flow lane: applies Trimming, the stitch
     * approximation and Sequencing, walks the virtual servers of every
     * leg on the path, credits the census, and returns the absolute
     * tick at which the packet is fully delivered at pkt.dst. @p when
     * is the injection tick (>= now; responses of fused round trips
     * inject in the future, at the owner-side data-ready tick).
     */
    Tick transit(noc::Packet &pkt, Tick when);

    /** Record delivery (called from the completion event). */
    void noteDelivered(const noc::Packet &pkt);

    /** Trim census accumulated by the flow lane (per-run totals). */
    const core::TrimStats &trimStats() const
    {
        return trimEngine_.stats();
    }

    const FlowLaneStats &stats() const;

    /** The epoch-driven max-min model (tests and diagnostics). */
    const FlowModel &model() const { return model_; }

  private:
    /**
     * One virtual FIFO server: a leg's bandwidth serialization, in
     * flit-slot units (cycle * flitsPerCycle) so a leg admits its full
     * per-cycle flit budget — eight 1-flit requests share one cycle on
     * an 8-flit/cycle GPU link, exactly as the flit path pipelines
     * them. Tracking whole cycles per packet instead would serialize
     * small packets 8x and blow up simulated time.
     */
    struct LegServer
    {
        std::uint64_t nextFreeSlots = 0;
        std::uint32_t flitsPerCycle = 1;
    };

    /** Donated flit padding awaiting a stitch candidate. */
    struct PadDonor
    {
        Tick expires = 0;
        std::uint32_t freeBytes = 0;
    };

    /** Directed cluster->cluster lane state (Hybrid classification). */
    struct Lane
    {
        Tick epochStart = 0;
        std::uint64_t epochBytes = 0;
        Rate lastRate = 0;
        std::uint32_t stableEpochs = 0;
        bool flowLane = false;
        FlowModel::FlowId flow = 0;
        bool hasFlow = false;
    };

    /** Per directed inter-cluster link: census sinks + mechanisms. */
    struct InterLeg
    {
        LegServer server;
        noc::TrafficMonitor *monitor = nullptr;
        noc::WireChannel *channel = nullptr;
        FlowModel::LinkId link = 0;
        std::deque<PadDonor> padPool;
    };

    Lane &laneOf(ClusterId from, ClusterId to);
    InterLeg &interLegOf(ClusterId from, ClusterId to);
    void advanceEpochs(Lane &lane, Tick now);

    /**
     * Occupy @p server from @p arrival for @p flits flits; returns the
     * departure tick. Latency-critical packets bypass the FIFO wait
     * (Sequencing) but still consume bandwidth.
     */
    Tick serve(LegServer &server, Tick arrival, std::uint32_t flits,
               bool bypass_queue);

    const config::SystemConfig &cfg_;
    Fidelity fidelity_;

    /** Handover knobs, fixed at construction (see the env parsers in
     *  src/flow/fidelity.hh). The epoch length is a simulation
     *  parameter: changing it changes flow/hybrid results, which is
     *  why it is read once here and not consulted mid-run. */
    Tick epochTicks_ = kDefaultEpochTicks;
    std::uint32_t stableEpochs_ = kDefaultStableEpochs;

    FlowModel model_;

    std::vector<LegServer> upLink_;   // per GPU
    std::vector<LegServer> downLink_; // per GPU
    std::vector<InterLeg> interLegs_; // from * numClusters + to
    std::vector<Lane> lanes_;         // from * numClusters + to

    core::TrimEngine trimEngine_;
    mutable FlowLaneStats stats_;
};

} // namespace netcrafter::flow

#endif // NETCRAFTER_FLOW_FIDELITY_CONTROLLER_HH
