/**
 * @file
 * Analytic flow model: aggregates steady-state packet streams into
 * `Flow` objects with byte rates over shared-bandwidth links, and
 * answers two questions the fidelity controller needs each epoch:
 *
 *  1. What is each flow's max-min fair-share rate given every flow's
 *     measured demand and every link's capacity?
 *  2. How long does a packet expect to wait behind cross traffic on a
 *     link at utilization rho (an M/D/1 queueing-delay estimate)?
 *
 * Everything is integer/Q16 fixed point: recomputation visits flows and
 * links strictly in id order, so the allocation is a pure function of
 * (capacities, demands) with no floating-point association order to
 * leak through — the property the determinism unit test pins down.
 */

#ifndef NETCRAFTER_FLOW_FLOW_MODEL_HH
#define NETCRAFTER_FLOW_FLOW_MODEL_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace netcrafter::flow {

/** Q16 fixed-point rate in bytes per cycle. */
using Rate = std::uint64_t;

/** Q16 scale factor: rateQ16(1) is one byte per cycle. */
inline constexpr Rate kRateOne = Rate{1} << 16;

/** Bytes/cycle expressed in Q16. */
constexpr Rate
rateQ16(std::uint64_t bytes_per_cycle)
{
    return bytes_per_cycle << 16;
}

/**
 * The max-min waterfiller. Links and flows are dense ids; removed flows
 * keep their id (tombstoned) so ids stay stable across recomputes.
 */
class FlowModel
{
  public:
    using LinkId = std::uint32_t;
    using FlowId = std::uint32_t;

    /** Register a link of @p capacity (Q16 bytes/cycle, > 0). */
    LinkId addLink(Rate capacity);

    /**
     * Register a flow traversing @p path with offered demand
     * @p demand (Q16 bytes/cycle). A flow with an empty path is legal
     * (purely intra-switch traffic) and is always granted its demand.
     */
    FlowId addFlow(std::vector<LinkId> path, Rate demand);

    /** Remove a flow; its id is never reused. */
    void removeFlow(FlowId flow);

    /** Update a flow's offered demand (takes effect at recompute()). */
    void setDemand(FlowId flow, Rate demand);

    /**
     * Deterministic max-min fair allocation. Repeatedly freezes either
     * every demand-limited flow (demand <= the current bottleneck
     * share) or every flow through the most-constrained link; integer
     * division throughout, ties broken by lowest id.
     */
    void recompute();

    /** Allocated rate of @p flow after the last recompute(). */
    Rate rate(FlowId flow) const { return flows_[flow].rate; }

    /** Offered demand of @p flow. */
    Rate demand(FlowId flow) const { return flows_[flow].demand; }

    /** Sum of allocated rates crossing @p link. */
    Rate linkLoad(LinkId link) const { return links_[link].load; }

    Rate linkCapacity(LinkId link) const
    {
        return links_[link].capacity;
    }

    /**
     * Utilization of @p link in Q16 (kRateOne == fully loaded),
     * clamped to kRateOne.
     */
    Rate linkUtilizationQ16(LinkId link) const;

    std::size_t numLinks() const { return links_.size(); }
    std::size_t numFlows() const { return liveFlows_; }
    std::uint64_t recomputes() const { return recomputes_; }

    /**
     * M/D/1 mean queueing delay, in ticks, for a deterministic service
     * time of @p service_ticks on a server at utilization @p rho_q16:
     * Wq = rho * S / (2 * (1 - rho)). rho is clamped just below 1 so a
     * transiently saturated link yields a large finite wait instead of
     * a division blow-up. Pure integer math.
     */
    static Tick md1WaitTicks(Rate rho_q16, Tick service_ticks);

  private:
    struct Link
    {
        Rate capacity = 0;
        Rate load = 0;
        // Scratch for recompute().
        Rate frozenLoad = 0;
        std::uint32_t unfrozen = 0;
    };

    struct Flow
    {
        std::vector<LinkId> path;
        Rate demand = 0;
        Rate rate = 0;
        bool live = false;
        bool frozen = false; // recompute() scratch
    };

    std::vector<Link> links_;
    std::vector<Flow> flows_;
    std::size_t liveFlows_ = 0;
    std::uint64_t recomputes_ = 0;
};

} // namespace netcrafter::flow

#endif // NETCRAFTER_FLOW_FLOW_MODEL_HH
