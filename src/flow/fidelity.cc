#include "src/flow/fidelity.hh"

#include <cstdlib>

#include "src/sim/logging.hh"

namespace netcrafter::flow {

const char *
fidelityName(Fidelity f)
{
    switch (f) {
      case Fidelity::Cycle:
        return "cycle";
      case Fidelity::Flow:
        return "flow";
      case Fidelity::Hybrid:
        return "hybrid";
    }
    return "?";
}

std::optional<Fidelity>
parseFidelity(const std::string &text)
{
    if (text == "cycle")
        return Fidelity::Cycle;
    if (text == "flow")
        return Fidelity::Flow;
    if (text == "hybrid")
        return Fidelity::Hybrid;
    return std::nullopt;
}

Fidelity
parseFidelityOrDie(const std::string &text, const char *what)
{
    const auto parsed = parseFidelity(text);
    if (!parsed) {
        NC_FATAL("invalid ", what, " value '", text,
                 "': expected cycle, flow or hybrid");
    }
    return *parsed;
}

Fidelity
fidelityFromEnv(Fidelity fallback)
{
    const char *text = std::getenv("NETCRAFTER_FIDELITY");
    if (text == nullptr || *text == '\0')
        return fallback;
    return parseFidelityOrDie(text, "NETCRAFTER_FIDELITY");
}

std::uint64_t
parseFlowEpochTicksEnv(const char *text)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > (1LL << 30)) {
        NC_FATAL("NETCRAFTER_FLOW_EPOCH_TICKS must be a positive epoch "
                 "length in ticks, got '", text, "'");
    }
    return static_cast<std::uint64_t>(v);
}

std::uint32_t
parseFlowStableEpochsEnv(const char *text)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > (1LL << 20)) {
        NC_FATAL("NETCRAFTER_FLOW_STABLE_EPOCHS must be a positive "
                 "stable-epoch count, got '", text, "'");
    }
    return static_cast<std::uint32_t>(v);
}

std::uint64_t
flowEpochTicksFromEnv(std::uint64_t fallback)
{
    const char *text = std::getenv("NETCRAFTER_FLOW_EPOCH_TICKS");
    if (text == nullptr || *text == '\0')
        return fallback;
    return parseFlowEpochTicksEnv(text);
}

std::uint32_t
flowStableEpochsFromEnv(std::uint32_t fallback)
{
    const char *text = std::getenv("NETCRAFTER_FLOW_STABLE_EPOCHS");
    if (text == nullptr || *text == '\0')
        return fallback;
    return parseFlowStableEpochsEnv(text);
}

} // namespace netcrafter::flow
