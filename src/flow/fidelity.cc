#include "src/flow/fidelity.hh"

#include <cstdlib>

#include "src/sim/logging.hh"

namespace netcrafter::flow {

const char *
fidelityName(Fidelity f)
{
    switch (f) {
      case Fidelity::Cycle:
        return "cycle";
      case Fidelity::Flow:
        return "flow";
      case Fidelity::Hybrid:
        return "hybrid";
    }
    return "?";
}

std::optional<Fidelity>
parseFidelity(const std::string &text)
{
    if (text == "cycle")
        return Fidelity::Cycle;
    if (text == "flow")
        return Fidelity::Flow;
    if (text == "hybrid")
        return Fidelity::Hybrid;
    return std::nullopt;
}

Fidelity
parseFidelityOrDie(const std::string &text, const char *what)
{
    const auto parsed = parseFidelity(text);
    if (!parsed) {
        NC_FATAL("invalid ", what, " value '", text,
                 "': expected cycle, flow or hybrid");
    }
    return *parsed;
}

Fidelity
fidelityFromEnv(Fidelity fallback)
{
    const char *text = std::getenv("NETCRAFTER_FIDELITY");
    if (text == nullptr || *text == '\0')
        return fallback;
    return parseFidelityOrDie(text, "NETCRAFTER_FIDELITY");
}

} // namespace netcrafter::flow
