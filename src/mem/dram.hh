/**
 * @file
 * Simple HBM/GDDR model: fixed access latency plus a bandwidth token
 * bucket (Table 2: 1 TB/s, 100 ns).
 */

#ifndef NETCRAFTER_MEM_DRAM_HH
#define NETCRAFTER_MEM_DRAM_HH

#include <algorithm>
#include <cstdint>
#include <functional>

#include "src/obs/trace_buffer.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::mem {

/** Per-GPU DRAM stack. */
class Dram : public sim::SimObject
{
  public:
    using Callback = std::function<void()>;

    Dram(sim::Engine &engine, std::string name, Tick latency,
         std::uint32_t bytes_per_cycle)
        : SimObject(engine, std::move(name)), latency_(latency),
          bytesPerCycle_(bytes_per_cycle)
    {
        traceLane_ = obs::internLane(engine, this->name());
    }

    /**
     * Perform an access of @p bytes. @p done (may be null for writes
     * nobody waits on) fires when the data is available / committed.
     */
    void
    access(std::uint32_t bytes, Callback done)
    {
        const Tick start = std::max(now(), nextFree_);
        const Tick occupancy =
            std::max<Tick>(1, divCeil(bytes, bytesPerCycle_));
        nextFree_ = start + occupancy;
        ++accesses_;
        bytesAccessed_ += bytes;
        obs::tracepoint(engine(), obs::TraceLevel::Full,
                        obs::TraceKind::PktStage,
                        obs::TraceStage::DramAccess, traceLane_, bytes,
                        bytes);
        if (done) {
            engine().scheduleAbs(start + occupancy + latency_,
                                 std::move(done));
        }
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t bytesAccessed() const { return bytesAccessed_; }

  private:
    Tick latency_;
    std::uint32_t bytesPerCycle_;
    Tick nextFree_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t bytesAccessed_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::mem

#endif // NETCRAFTER_MEM_DRAM_HH
