/**
 * @file
 * Miss Status Holding Register file: tracks outstanding misses per block
 * address and merges secondary misses onto the primary one.
 */

#ifndef NETCRAFTER_MEM_MSHR_HH
#define NETCRAFTER_MEM_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace netcrafter::mem {

/**
 * MSHR file keyed by block address. @tparam Payload is whatever the
 * cache needs to resume a waiting access when the fill arrives.
 */
template <typename Payload>
class Mshr
{
  public:
    explicit Mshr(std::size_t entries) : entries_(entries) {}

    /** True when no new primary miss can be tracked. */
    bool full() const { return table_.size() >= entries_; }

    /** True when a miss for @p addr is already outstanding. */
    bool
    outstanding(Addr addr) const
    {
        return table_.find(addr) != table_.end();
    }

    /**
     * Register a primary miss for @p addr. Requires !outstanding(addr)
     * and !full().
     */
    void
    allocate(Addr addr, Payload payload)
    {
        NC_ASSERT(!outstanding(addr), "duplicate MSHR allocation");
        NC_ASSERT(!full(), "MSHR overflow");
        table_[addr].push_back(std::move(payload));
        ++allocations_;
    }

    /** Merge a secondary miss onto an outstanding entry. */
    void
    merge(Addr addr, Payload payload)
    {
        auto it = table_.find(addr);
        NC_ASSERT(it != table_.end(), "merge without outstanding entry");
        it->second.push_back(std::move(payload));
        ++merges_;
    }

    /** Retire the entry for @p addr, returning all waiting payloads. */
    std::vector<Payload>
    release(Addr addr)
    {
        auto it = table_.find(addr);
        NC_ASSERT(it != table_.end(), "release without outstanding entry");
        std::vector<Payload> waiters = std::move(it->second);
        table_.erase(it);
        return waiters;
    }

    std::size_t size() const { return table_.size(); }
    std::size_t capacity() const { return entries_; }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t merges() const { return merges_; }

  private:
    std::size_t entries_;
    std::unordered_map<Addr, std::vector<Payload>> table_;
    std::uint64_t allocations_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace netcrafter::mem

#endif // NETCRAFTER_MEM_MSHR_HH
