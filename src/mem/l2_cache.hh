/**
 * @file
 * Banked, write-back L2 cache (Table 2: 4 MB/GPU, 16 ways, 16 banks,
 * 100-cycle lookup, 64-entry MSHR). Shared across GPUs: remote GPUs reach
 * it through their RDMA engines. PTEs are cached here alongside data
 * (Section 2.3).
 */

#ifndef NETCRAFTER_MEM_L2_CACHE_HH
#define NETCRAFTER_MEM_L2_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "src/mem/dram.hh"
#include "src/mem/mshr.hh"
#include "src/mem/tag_array.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::mem {

/** Configuration for one L2 cache partition. */
struct L2Params
{
    std::uint64_t sizeBytes = 4ull * 1024 * 1024;
    std::uint32_t assoc = 16;
    std::uint32_t banks = 16;
    Tick lookupLatency = 100;
    std::size_t mshrEntries = 64;
};

/**
 * One GPU's L2 partition. Line-granular: callers pass 64B-aligned line
 * addresses. Misses fetch from the attached DRAM; dirty evictions write
 * back (consuming DRAM bandwidth, nobody waits on them).
 */
class L2Cache : public sim::SimObject
{
  public:
    using Callback = std::function<void()>;

    L2Cache(sim::Engine &engine, std::string name, const L2Params &params,
            Dram &dram);

    /** Read the full line at @p line; @p done fires with data ready. */
    void read(Addr line, Callback done);

    /**
     * Write (allocate) the line at @p line; @p done fires when the write
     * is ordered in the cache.
     */
    void write(Addr line, Callback done);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /** Accesses parked because the MSHR file was full. */
    std::uint64_t mshrStalls() const { return mshrStalls_; }

  private:
    struct Waiter
    {
        bool isWrite;
        Callback done;
    };

    void start(Addr line, bool is_write, Callback done);
    Tick bankReadyTime(Addr line);
    void finishFill(Addr line);
    void drainParked();

    L2Params params_;
    TagArray tags_;
    Dram &dram_;
    Mshr<Waiter> mshr_;
    std::vector<Tick> bankNextFree_;
    std::deque<std::pair<Addr, Waiter>> parked_;

    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t mshrStalls_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::mem

#endif // NETCRAFTER_MEM_L2_CACHE_HH
