/**
 * @file
 * Per-CU write-through L1 vector cache (Table 2: 64 KB, 20-cycle lookup,
 * 32-entry MSHR) with optional 16/8/4-byte sectoring. The L1 does not
 * decide how much data a fill returns — the GPU system does (full line,
 * trimmed sector, or sector-cache fill); the L1 simply installs whatever
 * sector mask the fill delivered and replays waiters.
 */

#ifndef NETCRAFTER_MEM_L1_CACHE_HH
#define NETCRAFTER_MEM_L1_CACHE_HH

#include <cstdint>
#include <functional>

#include "src/mem/mshr.hh"
#include "src/mem/tag_array.hh"
#include "src/sim/sim_object.hh"

namespace netcrafter::mem {

/** Configuration for one L1 vector cache. */
struct L1Params
{
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 4;
    Tick lookupLatency = 20;
    std::size_t mshrEntries = 32;

    /** Sector size; kCacheLineBytes for an unsectored cache. */
    std::uint32_t sectorBytes = kCacheLineBytes;
};

/** A miss forwarded below the L1 (to the local L2 or a remote GPU). */
struct FillRequest
{
    Addr line = 0;

    /** First byte the wavefront needs, relative to the line. */
    std::uint32_t offset = 0;

    /** Distinct bytes the wavefront needs from the line. */
    std::uint32_t bytes = 0;

    /** Sectors the L1 wants installed (subset may arrive). */
    SectorMask neededSectors = 0;

    bool isWrite = false;

    /**
     * Completion: @p filled is the sector mask actually delivered
     * (ignored for writes). Must be invoked exactly once.
     */
    std::function<void(SectorMask filled)> done;
};

/**
 * The L1 vector cache. access() returns false when the MSHR file is
 * exhausted; the CU retries next cycle (modelling issue stall).
 */
class L1Cache : public sim::SimObject
{
  public:
    using Callback = std::function<void()>;
    using FillFn = std::function<void(FillRequest)>;

    L1Cache(sim::Engine &engine, std::string name, const L1Params &params,
            FillFn below);

    /**
     * Issue a coalesced access to @p line needing the byte span
     * [@p offset, @p offset + @p bytes). Reads call @p done when the
     * data is in the cache; writes complete (for the wavefront) at
     * acceptance — the write-through ack only frees the tracking slot.
     *
     * @return false when no MSHR/write slot is available (retry later).
     */
    bool access(Addr line, std::uint32_t offset, std::uint32_t bytes,
                bool is_write, Callback done);

    /**
     * Install a hook invoked whenever an MSHR or write slot frees (a
     * fill landed or a write-through ack returned). The CU uses it to
     * park its issue port on rejection instead of re-polling every
     * cycle (CuParams::wakeOnL1Unblock).
     */
    void setUnblockHook(Callback fn) { onUnblock_ = std::move(fn); }

    std::uint64_t readAccesses() const { return readAccesses_; }
    std::uint64_t readHits() const { return readHits_; }
    std::uint64_t readMisses() const { return readMisses_; }
    std::uint64_t writeAccesses() const { return writeAccesses_; }
    std::uint64_t rejections() const { return rejections_; }

    /** Misses per kilo "accesses" need instruction counts; the CU owns
     *  those, so it reads raw miss counts from here. */

  private:
    struct Waiter
    {
        SectorMask needed;
        std::uint32_t offset;
        std::uint32_t bytes;
        Callback done;
    };

    void handleFill(Addr line, SectorMask filled);
    void retryAccess(Addr line, const Waiter &waiter);

    L1Params params_;
    TagArray tags_;
    FillFn below_;
    Mshr<Waiter> mshr_;
    std::size_t outstandingWrites_ = 0;
    Callback onUnblock_;

    std::uint64_t readAccesses_ = 0;
    std::uint64_t readHits_ = 0;
    std::uint64_t readMisses_ = 0;
    std::uint64_t writeAccesses_ = 0;
    std::uint64_t rejections_ = 0;
};

} // namespace netcrafter::mem

#endif // NETCRAFTER_MEM_L1_CACHE_HH
