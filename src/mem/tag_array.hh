/**
 * @file
 * Set-associative tag array with LRU replacement and optional per-sector
 * valid bits (for the sectored L1 designs of Sections 4.3 and 5.3).
 */

#ifndef NETCRAFTER_MEM_TAG_ARRAY_HH
#define NETCRAFTER_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace netcrafter::mem {

/** Bitmask over the sectors of one cache line. */
using SectorMask = std::uint64_t;

/** Mask covering every sector of a line. */
constexpr SectorMask
fullMask(std::uint32_t num_sectors)
{
    return num_sectors >= 64 ? ~0ull : ((1ull << num_sectors) - 1);
}

/** Result of filling a line: the victim, if a valid line was evicted. */
struct Eviction
{
    bool valid = false;
    Addr line = kAddrInvalid;
    bool dirty = false;
};

/**
 * LRU set-associative tag array. Data values are not stored (this is a
 * timing simulator); only tags, per-sector valid bits, and dirty bits.
 */
class TagArray
{
  public:
    /**
     * @param size_bytes total capacity.
     * @param assoc ways per set.
     * @param line_bytes cache line size.
     * @param sector_bytes sector size; pass line_bytes for an
     *        unsectored cache (one sector spanning the line).
     */
    TagArray(std::uint64_t size_bytes, std::uint32_t assoc,
             std::uint32_t line_bytes, std::uint32_t sector_bytes);

    /** Number of sectors per line. */
    std::uint32_t sectorsPerLine() const { return sectorsPerLine_; }

    /** Sector size in bytes. */
    std::uint32_t sectorBytes() const { return sectorBytes_; }

    /** True when the line's tag is present (any sector valid). */
    bool present(Addr line) const;

    /** Valid-sector mask of @p line (0 when absent). */
    SectorMask validSectors(Addr line) const;

    /** True when every sector in @p needed is valid for @p line. */
    bool covers(Addr line, SectorMask needed) const;

    /**
     * Install (or extend) @p line with the sectors in @p mask, touching
     * LRU. Returns the eviction performed, if any.
     */
    Eviction fill(Addr line, SectorMask mask);

    /** LRU-touch @p line (on hit). No-op when absent. */
    void touch(Addr line);

    /** Mark @p line dirty. No-op when absent. */
    void markDirty(Addr line);

    /** Drop @p line; returns true if it was present. */
    bool invalidate(Addr line);

    /** Mask of sectors covering [offset, offset+bytes) within a line. */
    SectorMask sectorsForRange(std::uint32_t offset,
                               std::uint32_t bytes) const;

    std::uint32_t numSets() const { return numSets_; }
    std::uint64_t fills() const { return fills_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    struct Way
    {
        Addr line = kAddrInvalid;
        SectorMask valid = 0;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t setOf(Addr line) const;
    const Way *findWay(Addr line) const;
    Way *findWay(Addr line);

    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t sectorBytes_;
    std::uint32_t sectorsPerLine_;
    std::uint32_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t fills_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace netcrafter::mem

#endif // NETCRAFTER_MEM_TAG_ARRAY_HH
