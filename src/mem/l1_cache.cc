#include "src/mem/l1_cache.hh"

namespace netcrafter::mem {

L1Cache::L1Cache(sim::Engine &engine, std::string name,
                 const L1Params &params, FillFn below)
    : SimObject(engine, std::move(name)), params_(params),
      tags_(params.sizeBytes, params.assoc, kCacheLineBytes,
            params.sectorBytes),
      below_(std::move(below)), mshr_(params.mshrEntries)
{
    NC_ASSERT(below_ != nullptr, "L1 cache needs a fill path");
}

bool
L1Cache::access(Addr line, std::uint32_t offset, std::uint32_t bytes,
                bool is_write, Callback done)
{
    NC_ASSERT(line % kCacheLineBytes == 0, "unaligned line address");

    if (is_write) {
        // Write-through, no-allocate: forward below; the slot bounds
        // outstanding writes. The wavefront does not wait for the ack.
        if (mshr_.size() + outstandingWrites_ >= mshr_.capacity()) {
            ++rejections_;
            return false;
        }
        ++writeAccesses_;
        ++outstandingWrites_;
        if (tags_.present(line))
            tags_.touch(line); // data updated in place
        FillRequest req;
        req.line = line;
        req.offset = offset;
        req.bytes = bytes;
        req.isWrite = true;
        req.done = [this, done = std::move(done)](SectorMask) {
            NC_ASSERT(outstandingWrites_ > 0, "write ack underflow");
            --outstandingWrites_;
            if (onUnblock_)
                onUnblock_();
            if (done)
                done();
        };
        below_(std::move(req));
        return true;
    }

    ++readAccesses_;
    const SectorMask needed = tags_.sectorsForRange(offset, bytes);

    if (tags_.covers(line, needed)) {
        ++readHits_;
        tags_.touch(line);
        schedule(params_.lookupLatency, std::move(done));
        return true;
    }

    ++readMisses_;
    Waiter waiter{needed, offset, bytes, std::move(done)};
    if (mshr_.outstanding(line)) {
        mshr_.merge(line, std::move(waiter));
        return true;
    }
    if (mshr_.size() + outstandingWrites_ >= mshr_.capacity()) {
        --readAccesses_; // the access will be replayed by the CU
        --readMisses_;
        ++rejections_;
        return false;
    }
    mshr_.allocate(line, std::move(waiter));

    // The lookup pipeline ran before the miss went below. The
    // FillRequest is built inside the callback: capturing it by value
    // (it embeds a std::function) would overflow SmallFn's inline
    // buffer and put a heap allocation back on the miss path.
    schedule(params_.lookupLatency, [this, line, offset, bytes, needed] {
        FillRequest req;
        req.line = line;
        req.offset = offset;
        req.bytes = bytes;
        req.neededSectors = needed;
        req.isWrite = false;
        req.done = [this, line](SectorMask filled) {
            handleFill(line, filled);
        };
        below_(std::move(req));
    });
    return true;
}

void
L1Cache::handleFill(Addr line, SectorMask filled)
{
    NC_ASSERT(filled != 0, "fill delivered no sectors");
    tags_.fill(line, filled);
    auto waiters = mshr_.release(line);
    if (onUnblock_)
        onUnblock_();
    for (auto &w : waiters) {
        if (tags_.covers(line, w.needed)) {
            w.done();
        } else {
            // The fill (e.g. a trimmed sector for the primary miss) does
            // not cover this merged waiter: replay its access.
            retryAccess(line, w);
        }
    }
}

void
L1Cache::retryAccess(Addr line, const Waiter &waiter)
{
    // Replay next cycle; if the MSHR is full the retry loops until a
    // slot frees. Copy what we need from the waiter.
    auto offset = waiter.offset;
    auto bytes = waiter.bytes;
    auto done = waiter.done;
    schedule(1, [this, line, offset, bytes, done]() mutable {
        if (!access(line, offset, bytes, false, done)) {
            Waiter retry{0, offset, bytes, std::move(done)};
            retryAccess(line, retry);
        }
    });
}

} // namespace netcrafter::mem
