#include "src/mem/tag_array.hh"

#include "src/sim/logging.hh"

namespace netcrafter::mem {

TagArray::TagArray(std::uint64_t size_bytes, std::uint32_t assoc,
                   std::uint32_t line_bytes, std::uint32_t sector_bytes)
    : assoc_(assoc), lineBytes_(line_bytes), sectorBytes_(sector_bytes),
      sectorsPerLine_(line_bytes / sector_bytes)
{
    NC_ASSERT(sector_bytes > 0 && line_bytes % sector_bytes == 0,
              "sector size must divide line size");
    const std::uint64_t lines = size_bytes / line_bytes;
    NC_ASSERT(lines >= assoc_, "cache smaller than one set");
    numSets_ = static_cast<std::uint32_t>(lines / assoc_);
    NC_ASSERT(numSets_ > 0, "cache must have at least one set");
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

std::uint32_t
TagArray::setOf(Addr line) const
{
    return static_cast<std::uint32_t>((line / lineBytes_) % numSets_);
}

const TagArray::Way *
TagArray::findWay(Addr line) const
{
    const std::size_t base =
        static_cast<std::size_t>(setOf(line)) * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid != 0 && way.line == line)
            return &way;
    }
    return nullptr;
}

TagArray::Way *
TagArray::findWay(Addr line)
{
    return const_cast<Way *>(
        static_cast<const TagArray *>(this)->findWay(line));
}

bool
TagArray::present(Addr line) const
{
    return findWay(line) != nullptr;
}

SectorMask
TagArray::validSectors(Addr line) const
{
    const Way *way = findWay(line);
    return way ? way->valid : 0;
}

bool
TagArray::covers(Addr line, SectorMask needed) const
{
    return (validSectors(line) & needed) == needed;
}

Eviction
TagArray::fill(Addr line, SectorMask mask)
{
    NC_ASSERT(mask != 0, "fill with empty sector mask");
    ++fills_;
    ++useClock_;
    if (Way *way = findWay(line)) {
        way->valid |= mask;
        way->lastUse = useClock_;
        return Eviction{};
    }

    const std::size_t base =
        static_cast<std::size_t>(setOf(line)) * assoc_;
    Way *victim = &ways_[base];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid == 0) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }

    Eviction ev;
    if (victim->valid != 0) {
        ev.valid = true;
        ev.line = victim->line;
        ev.dirty = victim->dirty;
        ++evictions_;
    }
    victim->line = line;
    victim->valid = mask;
    victim->dirty = false;
    victim->lastUse = useClock_;
    return ev;
}

void
TagArray::touch(Addr line)
{
    if (Way *way = findWay(line))
        way->lastUse = ++useClock_;
}

void
TagArray::markDirty(Addr line)
{
    if (Way *way = findWay(line))
        way->dirty = true;
}

bool
TagArray::invalidate(Addr line)
{
    if (Way *way = findWay(line)) {
        way->valid = 0;
        way->dirty = false;
        way->line = kAddrInvalid;
        return true;
    }
    return false;
}

SectorMask
TagArray::sectorsForRange(std::uint32_t offset, std::uint32_t bytes) const
{
    NC_ASSERT(bytes > 0 && offset + bytes <= lineBytes_,
              "byte range outside line: offset=", offset, " bytes=",
              bytes);
    const std::uint32_t first = offset / sectorBytes_;
    const std::uint32_t last = (offset + bytes - 1) / sectorBytes_;
    SectorMask mask = 0;
    for (std::uint32_t s = first; s <= last; ++s)
        mask |= 1ull << s;
    return mask;
}

} // namespace netcrafter::mem
