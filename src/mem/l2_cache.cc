#include "src/mem/l2_cache.hh"

#include <algorithm>

#include "src/obs/trace_buffer.hh"

namespace netcrafter::mem {

L2Cache::L2Cache(sim::Engine &engine, std::string name,
                 const L2Params &params, Dram &dram)
    : SimObject(engine, std::move(name)), params_(params),
      tags_(params.sizeBytes, params.assoc, kCacheLineBytes,
            kCacheLineBytes),
      dram_(dram), mshr_(params.mshrEntries),
      bankNextFree_(params.banks, 0)
{
    traceLane_ = obs::internLane(engine, this->name());
}

Tick
L2Cache::bankReadyTime(Addr line)
{
    const std::size_t bank =
        (line / kCacheLineBytes) % bankNextFree_.size();
    const Tick start = std::max(now(), bankNextFree_[bank]);
    // Banks are pipelined: one new access per cycle each.
    bankNextFree_[bank] = start + 1;
    return start;
}

void
L2Cache::read(Addr line, Callback done)
{
    start(line, false, std::move(done));
}

void
L2Cache::write(Addr line, Callback done)
{
    start(line, true, std::move(done));
}

void
L2Cache::start(Addr line, bool is_write, Callback done)
{
    ++accesses_;
    obs::tracepoint(engine(), obs::TraceLevel::Full,
                    obs::TraceKind::PktStage, obs::TraceStage::L2Lookup,
                    traceLane_, line, is_write ? 1 : 0);
    const Tick ready = bankReadyTime(line) + params_.lookupLatency;

    if (tags_.present(line)) {
        ++hits_;
        tags_.touch(line);
        if (is_write)
            tags_.markDirty(line);
        engine().scheduleAbs(ready, std::move(done));
        return;
    }

    ++misses_;
    obs::tracepoint(engine(), obs::TraceLevel::Full,
                    obs::TraceKind::PktStage, obs::TraceStage::L2Miss,
                    traceLane_, line, is_write ? 1 : 0);
    Waiter waiter{is_write, std::move(done)};
    if (mshr_.outstanding(line)) {
        mshr_.merge(line, std::move(waiter));
        return;
    }
    if (mshr_.full()) {
        ++mshrStalls_;
        parked_.emplace_back(line, std::move(waiter));
        return;
    }
    mshr_.allocate(line, std::move(waiter));
    // Fetch the line from DRAM after the (pipelined) lookup determined
    // the miss.
    engine().scheduleAbs(ready, [this, line] {
        dram_.access(kCacheLineBytes,
                     [this, line] { finishFill(line); });
    });
}

void
L2Cache::finishFill(Addr line)
{
    // A parked access for the same line may exist; it will hit after the
    // fill when retried.
    Eviction ev = tags_.fill(line, fullMask(1));
    if (ev.valid && ev.dirty) {
        ++writebacks_;
        dram_.access(kCacheLineBytes, nullptr);
    }
    auto waiters = mshr_.release(line);
    for (auto &w : waiters) {
        if (w.isWrite)
            tags_.markDirty(line);
        w.done();
    }
    drainParked();
}

void
L2Cache::drainParked()
{
    // Replay parked accesses now that MSHR space freed. Replaying via
    // start() re-checks tags (the fill may have turned them into hits).
    std::size_t n = parked_.size();
    while (n-- > 0 && !parked_.empty()) {
        if (mshr_.full())
            break;
        auto [line, waiter] = std::move(parked_.front());
        parked_.pop_front();
        start(line, waiter.isWrite, std::move(waiter.done));
    }
}

} // namespace netcrafter::mem
