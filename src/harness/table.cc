#include "src/harness/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace netcrafter::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << (v * 100.0)
       << "%";
    return os.str();
}

} // namespace netcrafter::harness
