#include "src/harness/runner.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/config/exec_config.hh"
#include "src/gpu/system.hh"
#include "src/obs/chrome_trace.hh"
#include "src/serve/session.hh"
#include "src/obs/interval_sampler.hh"
#include "src/obs/lifecycle.hh"
#include "src/obs/progress_board.hh"
#include "src/obs/telemetry.hh"
#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"
#include "src/sim/pool.hh"
#include "src/sim/small_fn.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::harness {

namespace {

/** Per-run output path prefix inside the trace directory. */
std::string
traceFileBase(const obs::TraceOptions &trace,
              const std::string &workload,
              const config::SystemConfig &cfg, double scale,
              unsigned shards)
{
    std::ostringstream base;
    base << trace.outDir << '/' << workload << '-'
         << config::digestHex(cfg) << "-s" << scale << "-n" << shards;
    return base.str();
}

/**
 * Fill every system-derived field of @p r — the measurement and
 * diagnostic census shared by workload and serving runs.
 */
void
collectSystemStats(RunResult &r, gpu::MultiGpuSystem &system,
                   const config::SystemConfig &cfg)
{
    r.cycles = system.cycles();
    r.events = system.engines().eventsExecuted();
    r.instructions = system.totalInstructions();
    r.l1ReadAccesses = system.l1ReadAccesses();
    r.l1ReadMisses = system.l1ReadMisses();
    r.l1Mpki = system.l1Mpki();

    const noc::Network &net = system.network();
    noc::TrafficMonitor census = net.aggregateInterClusterTraffic();
    r.interFlits = census.totalFlits();
    r.interWireBytes = census.totalWireBytes();
    r.interUsefulBytes = census.totalUsefulBytes();
    r.interUtilization = net.interClusterUtilization();
    r.ptwByteFraction = census.ptwByteFraction();
    r.paddedFlitFraction = census.fractionQuarterOrThreeQuarterPadded();
    if (census.totalFlits() > 0) {
        r.quarterPaddedFraction =
            static_cast<double>(census.flitsQuarterPadded()) /
            static_cast<double>(census.totalFlits());
        r.threeQuarterPaddedFraction =
            static_cast<double>(census.flitsThreeQuarterPadded()) /
            static_cast<double>(census.totalFlits());
    }
    r.stitchedFraction = census.stitchedFlitFraction();
    r.stitchedPieces = census.stitchedPieces();

    for (ClusterId from = 0; from < cfg.numClusters; ++from) {
        for (ClusterId to = 0; to < cfg.numClusters; ++to) {
            if (from == to)
                continue;
            const auto *ctrl = net.controller(from, to);
            if (ctrl == nullptr)
                continue;
            r.trimmedPackets += ctrl->trimStats().packetsTrimmed;
            r.bytesTrimmed += ctrl->trimStats().bytesTrimmed;
            r.poolingArms += ctrl->stats().poolingArms;
        }
    }

    r.avgInterReadLatency = system.interClusterReadLatency().mean();
    r.interReads = system.interClusterReadLatency().count();
    r.remoteReads = system.remoteReads();
    r.localReads = system.localReads();
    r.pageWalks = system.pageWalks();
    r.meanWalkLength = system.meanWalkLength();

    const stats::Distribution dist = system.remoteReadBytesNeeded();
    for (std::size_t i = 0; i < 5; ++i)
        r.bytesNeededFrac[i] = dist.fraction(i);

    const sim::ShardedEngine &engines = system.engines();
    r.shards = engines.numShards();
    r.quantaExecuted = engines.quantaExecuted();
    r.barrierStallTicks = engines.totalBarrierStallTicks();
    r.crossShardFlits = system.network().crossShardFlits();
    r.maxIngressDepth = system.network().maxIngressDepth();
    r.barrierRoundsSkipped = engines.barrierRoundsSkipped();
    r.idleParks = engines.idleParks();
    r.workThreads = engines.workThreads();
    r.stealAttempts = engines.stealAttempts();
    r.stealsWon = engines.stealsWon();
    r.stealsAborted = engines.stealsAborted();
    r.coveredStallTicks = engines.coveredStallTicks();
    r.residualStallTicks = engines.residualStallTicks();
    r.loadSpreadMean = engines.loadSpreadAvg().mean();
    r.adaptiveWindowSamples = engines.windowTicksAvg().count();
    r.adaptiveWindowMean = engines.windowTicksAvg().mean();
    r.adaptiveWindowMax = engines.windowTicksAvg().max();
    for (unsigned s = 0; s < engines.numShards(); ++s) {
        const sim::Engine &engine = engines.shard(s);
        r.nearEvents += engine.queue().nearScheduled();
        r.farEvents += engine.queue().farScheduled();
        r.callbackPoolHighWater += engine.callbackPoolHighWater();
        r.callbackArenaBytes += engine.callbackArenaBytes();
    }
    const auto &packet_pool = sim::ObjectPool<noc::Packet>::local();
    const auto &flit_pool = sim::ObjectPool<noc::Flit>::local();
    r.packetPoolHighWater = packet_pool.highWater();
    r.flitPoolHighWater = flit_pool.highWater();
    r.poolArenaBytes = packet_pool.arenaBytes() + flit_pool.arenaBytes();
    r.smallFnHeapAllocs = sim::SmallFn::heapAllocations();

    r.syncMode = engines.syncMode();
    r.skewBound = r.syncMode == sim::SyncMode::Relaxed
                      ? engines.syncPolicy().skewBound
                      : 0;
    r.maxObservedSkew = engines.maxObservedSkew();
    r.meanObservedSkew = engines.skewAvg().mean();
    r.lateArrivals = system.network().lateSlottedFlits();
    r.lateCredits = system.network().lateSlottedCredits();
    r.lateDisplacementTicks = system.network().lateDisplacementTicks();
    r.maxLateDisplacement = system.network().maxLateDisplacement();
    r.wireFlitsDelivered =
        system.network().interClusterFlitsDelivered();
    r.wireBytesDelivered =
        system.network().interClusterBytesDelivered();

    r.fidelity = system.fidelity();
    if (const flow::FidelityController *ctl = system.flowController()) {
        const flow::FlowLaneStats &fs = ctl->stats();
        r.flowPackets = fs.flowPackets;
        r.flowCyclePackets = fs.cyclePackets;
        r.flowPacketsDelivered = fs.flowPacketsDelivered;
        r.flowBytesInjected = fs.flowBytesInjected;
        r.flowBytesDelivered = fs.flowBytesDelivered;
        r.flowEpochsClosed = fs.epochsClosed;
        r.flowLaneActivations = fs.laneActivations;
        r.flowLaneEscalations = fs.laneEscalations;
        r.flowRecomputes = fs.recomputes;
        r.flowMd1WaitTicks = fs.md1WaitTicks;
        r.flowFifoWaitTicks = fs.fifoWaitTicks;
        // Flow-lane trim folds into the headline trim census so
        // figure extraction is fidelity-agnostic.
        r.trimmedPackets += ctl->trimStats().packetsTrimmed;
        r.bytesTrimmed += ctl->trimStats().bytesTrimmed;
    }

    // Host-time self-profiling census. The board accumulates zeros
    // unless profiling was armed, so the columns are free otherwise.
    const obs::ProgressBoard &board = engines.progressBoard();
    r.phaseExecuteSeconds = board.phaseSeconds(obs::Phase::Execute);
    r.phaseBarrierWaitSeconds =
        board.phaseSeconds(obs::Phase::BarrierWait);
    r.phaseIngressSeconds = board.phaseSeconds(obs::Phase::Ingress);
    r.phaseStealScanSeconds =
        board.phaseSeconds(obs::Phase::StealScan);
    r.phaseExportSeconds = board.phaseSeconds(obs::Phase::Export);
}

/** Write the per-run trace artifacts and fill the trace census. */
void
exportTraceArtifacts(RunResult &r, gpu::MultiGpuSystem &system,
                     const obs::TraceOptions &trace,
                     const std::string &name,
                     const config::SystemConfig &cfg, double scale)
{
    if (system.traceSink() != nullptr) {
        const auto t_export = std::chrono::steady_clock::now();
        const obs::TraceSink &sink = *system.traceSink();
        const std::vector<obs::TraceRecord> merged = sink.merged();
        r.traceRecords = sink.totalRecords();
        r.traceDropped = sink.totalDropped();
        if (r.traceDropped > 0) {
            NC_WARN("trace ring overflow: ", r.traceDropped, " of ",
                    r.traceRecords + r.traceDropped,
                    " records dropped for ", name,
                    " - raise TraceOptions::bufferCap or lower the "
                    "trace level");
        }

        obs::TimeSeries series;
        if (trace.sampleInterval > 0) {
            series = obs::IntervalSampler(trace.sampleInterval)
                         .sample(merged, sink.laneNames());
            r.sampleRows = series.rows.size();
        }

        if (!trace.outDir.empty()) {
            std::filesystem::create_directories(trace.outDir);
            const std::string base = traceFileBase(
                trace, name, cfg, scale, system.numShards());
            {
                std::ofstream os(base + ".trace.json");
                obs::writeSimChromeTrace(merged, sink.laneNames(), os);
            }
            {
                std::ofstream os(base + ".host.trace.json");
                obs::writeHostChromeTrace(system.engines(), os);
            }
            if (trace.sampleInterval > 0) {
                std::ofstream os(base + ".timeseries.csv");
                obs::writeTimeSeriesCsv(series, os);
            }
            {
                // Lifecycle stats only: the full collectStats() registry
                // also carries host-execution diagnostics (barrier
                // stalls, pool high-water marks) that legitimately vary
                // with the shard count, and this file must stay
                // byte-identical across shard counts.
                stats::Registry reg;
                obs::foldLifecycle(merged, reg);
                std::ofstream os(base + ".stats.json");
                obs::writeRegistryJson(reg, os);
            }
        }

        // Export runs after collectSystemStats read the board, so the
        // result column is stamped here as well as booked into the
        // board (which the heartbeat sampler reads live).
        const auto ns = std::chrono::duration_cast<
            std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t_export);
        system.engines().addPhaseNanos(
            obs::Phase::Export, static_cast<std::uint64_t>(ns.count()));
        r.phaseExportSeconds +=
            static_cast<double>(ns.count()) * 1e-9;
    }
}

/** Stamp the host wall-clock diagnostics. */
void
finishTiming(RunResult &r,
             std::chrono::steady_clock::time_point t_start)
{
    const auto t_end = std::chrono::steady_clock::now();
    r.wallSeconds =
        std::chrono::duration<double>(t_end - t_start).count();
    if (r.wallSeconds > 0) {
        r.eventsPerSecond =
            static_cast<double>(r.events) / r.wallSeconds;
    }
}

} // namespace

RunResult
runWorkload(const std::string &workload_name,
            const config::SystemConfig &cfg, double scale,
            unsigned shards)
{
    return runWorkload(workload_name, cfg, scale, shards,
                       obs::TraceOptions::fromEnv(),
                       config::execPolicyFromEnv());
}

RunResult
runWorkload(const std::string &workload_name,
            const config::SystemConfig &cfg, double scale,
            unsigned shards, const obs::TraceOptions &trace)
{
    return runWorkload(workload_name, cfg, scale, shards, trace,
                       config::execPolicyFromEnv());
}

RunResult
runWorkload(const std::string &workload_name,
            const config::SystemConfig &cfg, double scale,
            unsigned shards, const obs::TraceOptions &trace,
            const sim::ExecPolicy &exec)
{
    return runWorkload(workload_name, cfg, scale, shards, trace, exec,
                       flow::fidelityFromEnv());
}

RunResult
runWorkload(const std::string &workload_name,
            const config::SystemConfig &cfg, double scale,
            unsigned shards, const obs::TraceOptions &trace,
            const sim::ExecPolicy &exec, flow::Fidelity fidelity)
{
    return runWorkload(workload_name, cfg, scale, shards, trace, exec,
                       fidelity, config::syncPolicyFromEnv());
}

RunResult
runWorkload(const std::string &workload_name,
            const config::SystemConfig &cfg, double scale,
            unsigned shards, const obs::TraceOptions &trace,
            const sim::ExecPolicy &exec, flow::Fidelity fidelity,
            const sim::SyncPolicy &sync)
{
    obs::Telemetry::instance().ensureStartedFromEnv();
    const auto t_start = std::chrono::steady_clock::now();
    const std::uint64_t warn0 = netcrafter::suppressedWarnCount();

    auto workload = workloads::makeWorkload(workload_name);
    gpu::MultiGpuSystem system(cfg, shards, trace, exec, fidelity,
                               sync);
    system.run(*workload, scale * envScale());

    RunResult r;
    r.workload = workload_name;
    collectSystemStats(r, system, cfg);
    r.warningsSuppressed = netcrafter::suppressedWarnCount() - warn0;
    exportTraceArtifacts(r, system, trace, workload_name, cfg, scale);
    finishTiming(r, t_start);
    return r;
}

RunResult
runServe(const serve::ServeConfig &serve,
         const config::SystemConfig &cfg, double scale,
         unsigned shards)
{
    return runServe(serve, cfg, scale, shards,
                    obs::TraceOptions::fromEnv(),
                    config::execPolicyFromEnv());
}

RunResult
runServe(const serve::ServeConfig &serve,
         const config::SystemConfig &cfg, double scale,
         unsigned shards, const obs::TraceOptions &trace)
{
    return runServe(serve, cfg, scale, shards, trace,
                    config::execPolicyFromEnv());
}

RunResult
runServe(const serve::ServeConfig &serve,
         const config::SystemConfig &cfg, double scale,
         unsigned shards, const obs::TraceOptions &trace,
         const sim::ExecPolicy &exec)
{
    return runServe(serve, cfg, scale, shards, trace, exec,
                    flow::fidelityFromEnv());
}

RunResult
runServe(const serve::ServeConfig &serve,
         const config::SystemConfig &cfg, double scale,
         unsigned shards, const obs::TraceOptions &trace,
         const sim::ExecPolicy &exec, flow::Fidelity fidelity)
{
    return runServe(serve, cfg, scale, shards, trace, exec, fidelity,
                    config::syncPolicyFromEnv());
}

RunResult
runServe(const serve::ServeConfig &serve,
         const config::SystemConfig &cfg, double scale,
         unsigned shards, const obs::TraceOptions &trace,
         const sim::ExecPolicy &exec, flow::Fidelity fidelity,
         const sim::SyncPolicy &sync)
{
    NC_ASSERT(serve.enabled, "runServe with serving disabled");
    obs::Telemetry::instance().ensureStartedFromEnv();
    const auto t_start = std::chrono::steady_clock::now();
    const std::uint64_t warn0 = netcrafter::suppressedWarnCount();

    gpu::MultiGpuSystem system(cfg, shards, trace, exec, fidelity,
                               sync);
    serve::ServeSession session(system, serve, scale * envScale());
    const serve::ServeReport report = session.run();
    if (report.status != sim::RunStatus::Drained) {
        NC_FATAL("serving run (", serve.toString(),
                 ") exceeded the cycle limit - the offered load is "
                 "beyond saturation or the limit is undersized");
    }

    RunResult r;
    r.workload =
        std::string("serve-") + serve::arrivalKindName(serve.arrival);
    collectSystemStats(r, system, cfg);
    r.warningsSuppressed = netcrafter::suppressedWarnCount() - warn0;

    r.offeredLoad = serve.offeredLoad;
    r.serveInjected = report.injected;
    r.serveMeasured = report.measured;
    r.serveCompleted = report.completed;
    r.servePeakInflight = report.peakInflight;
    r.serveThroughput = report.throughput;
    auto toResult = [](const serve::ClassLatency &c) {
        ServeClassResult out;
        out.measured = c.measured;
        out.meanLatency = c.meanLatency;
        out.p50 = c.p50;
        out.p95 = c.p95;
        out.p99 = c.p99;
        out.p999 = c.p999;
        return out;
    };
    for (std::size_t c = 0; c < serve::kNumTrafficClasses; ++c)
        r.serveClasses[c] = toResult(report.perClass[c]);
    r.serveClasses[3] = toResult(report.aggregate);

    exportTraceArtifacts(r, system, trace, r.workload, cfg, scale);
    finishTiming(r, t_start);
    return r;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        NC_ASSERT(x > 0, "geomean of non-positive value");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
parseScaleEnv(const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(v) || v <= 0) {
        NC_FATAL("NETCRAFTER_SCALE must be a positive finite number, "
                 "got '", text, "'");
    }
    return v;
}

unsigned
parseShardsEnv(const char *text)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    // strtol saturates overflow at LONG_MAX, so the upper check also
    // rejects absurdly long digit strings.
    if (end == text || *end != '\0' || v < 1 || v > (1L << 16)) {
        NC_FATAL("NETCRAFTER_SHARDS must be a positive shard count, "
                 "got '", text, "'");
    }
    return static_cast<unsigned>(v);
}

double
parseServeLoadEnv(const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(v) || v <= 0) {
        NC_FATAL("NETCRAFTER_SERVE_LOAD must be a positive finite "
                 "requests-per-kilocycle rate, got '", text, "'");
    }
    return v;
}

Tick
parseServeTicksEnv(const char *text, const char *var)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 1) {
        NC_FATAL(var, " must be a positive tick count, got '", text,
                 "'");
    }
    return static_cast<Tick>(v);
}

std::uint64_t
parseServeSeedEnv(const char *text)
{
    // strtoull silently wraps negatives, so reject a leading '-'
    // explicitly.
    if (text[0] == '-')
        NC_FATAL("NETCRAFTER_SERVE_SEED must be a non-negative "
                 "integer, got '", text, "'");
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        NC_FATAL("NETCRAFTER_SERVE_SEED must be a non-negative "
                 "integer, got '", text, "'");
    }
    return static_cast<std::uint64_t>(v);
}

void
applyServeEnv(serve::ServeConfig &serve)
{
    if (const char *env = std::getenv("NETCRAFTER_SERVE_LOAD"))
        serve.offeredLoad = parseServeLoadEnv(env);
    if (const char *env = std::getenv("NETCRAFTER_SERVE_ARRIVAL"))
        serve.arrival = serve::parseArrivalKind(env);
    if (const char *env = std::getenv("NETCRAFTER_SERVE_MIX"))
        serve.mix = serve::parseClassMix(env);
    if (const char *env = std::getenv("NETCRAFTER_SERVE_WARMUP")) {
        serve.warmupTicks =
            parseServeTicksEnv(env, "NETCRAFTER_SERVE_WARMUP");
    }
    if (const char *env = std::getenv("NETCRAFTER_SERVE_MEASURE")) {
        serve.measureTicks =
            parseServeTicksEnv(env, "NETCRAFTER_SERVE_MEASURE");
    }
    if (const char *env = std::getenv("NETCRAFTER_SERVE_SEED"))
        serve.seed = parseServeSeedEnv(env);
}

double
envScale()
{
    // The getenv lookup and validation run once; every runWorkload call
    // afterwards reuses the cached value.
    static const double scale = [] {
        const char *env = std::getenv("NETCRAFTER_SCALE");
        return env == nullptr ? 1.0 : parseScaleEnv(env);
    }();
    return scale;
}

bool
sameMeasurement(const RunResult &a, const RunResult &b)
{
    return a.workload == b.workload && a.cycles == b.cycles &&
           a.events == b.events && a.instructions == b.instructions &&
           a.l1ReadAccesses == b.l1ReadAccesses &&
           a.l1ReadMisses == b.l1ReadMisses && a.l1Mpki == b.l1Mpki &&
           a.interFlits == b.interFlits &&
           a.interWireBytes == b.interWireBytes &&
           a.interUsefulBytes == b.interUsefulBytes &&
           a.interUtilization == b.interUtilization &&
           a.ptwByteFraction == b.ptwByteFraction &&
           a.paddedFlitFraction == b.paddedFlitFraction &&
           a.quarterPaddedFraction == b.quarterPaddedFraction &&
           a.threeQuarterPaddedFraction == b.threeQuarterPaddedFraction &&
           a.stitchedFraction == b.stitchedFraction &&
           a.stitchedPieces == b.stitchedPieces &&
           a.trimmedPackets == b.trimmedPackets &&
           a.bytesTrimmed == b.bytesTrimmed &&
           a.poolingArms == b.poolingArms &&
           a.avgInterReadLatency == b.avgInterReadLatency &&
           a.interReads == b.interReads &&
           a.remoteReads == b.remoteReads &&
           a.localReads == b.localReads && a.pageWalks == b.pageWalks &&
           a.meanWalkLength == b.meanWalkLength &&
           a.bytesNeededFrac == b.bytesNeededFrac &&
           a.offeredLoad == b.offeredLoad &&
           a.serveInjected == b.serveInjected &&
           a.serveMeasured == b.serveMeasured &&
           a.serveCompleted == b.serveCompleted &&
           a.servePeakInflight == b.servePeakInflight &&
           a.serveThroughput == b.serveThroughput &&
           a.serveClasses == b.serveClasses;
    // Everything below the serveClasses field in RunResult is a
    // diagnostic of how the simulator executed, not what it simulated:
    // wall-clock rates, the sharded-execution census, and queue/pool
    // gauges whose per-shard splits depend on the shard count. A
    // serial and a sharded run must compare equal here.
}

} // namespace netcrafter::harness
