#include "src/harness/runner.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/gpu/system.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::harness {

RunResult
runWorkload(const std::string &workload_name,
            const config::SystemConfig &cfg, double scale)
{
    const auto t_start = std::chrono::steady_clock::now();

    auto workload = workloads::makeWorkload(workload_name);
    gpu::MultiGpuSystem system(cfg);
    system.run(*workload, scale * envScale());

    RunResult r;
    r.workload = workload_name;
    r.cycles = system.cycles();
    r.events = system.engine().eventsExecuted();
    r.instructions = system.totalInstructions();
    r.l1ReadAccesses = system.l1ReadAccesses();
    r.l1ReadMisses = system.l1ReadMisses();
    r.l1Mpki = system.l1Mpki();

    const noc::Network &net = system.network();
    noc::TrafficMonitor census = net.aggregateInterClusterTraffic();
    r.interFlits = census.totalFlits();
    r.interWireBytes = census.totalWireBytes();
    r.interUsefulBytes = census.totalUsefulBytes();
    r.interUtilization = net.interClusterUtilization();
    r.ptwByteFraction = census.ptwByteFraction();
    r.paddedFlitFraction = census.fractionQuarterOrThreeQuarterPadded();
    if (census.totalFlits() > 0) {
        r.quarterPaddedFraction =
            static_cast<double>(census.flitsQuarterPadded()) /
            static_cast<double>(census.totalFlits());
        r.threeQuarterPaddedFraction =
            static_cast<double>(census.flitsThreeQuarterPadded()) /
            static_cast<double>(census.totalFlits());
    }
    r.stitchedFraction = census.stitchedFlitFraction();
    r.stitchedPieces = census.stitchedPieces();

    for (ClusterId from = 0; from < cfg.numClusters; ++from) {
        for (ClusterId to = 0; to < cfg.numClusters; ++to) {
            if (from == to)
                continue;
            const auto *ctrl = net.controller(from, to);
            if (ctrl == nullptr)
                continue;
            r.trimmedPackets += ctrl->trimStats().packetsTrimmed;
            r.bytesTrimmed += ctrl->trimStats().bytesTrimmed;
            r.poolingArms += ctrl->stats().poolingArms;
        }
    }

    r.avgInterReadLatency = system.interClusterReadLatency().mean();
    r.interReads = system.interClusterReadLatency().count();
    r.remoteReads = system.remoteReads();
    r.localReads = system.localReads();
    r.pageWalks = system.pageWalks();
    r.meanWalkLength = system.meanWalkLength();

    const auto &dist = system.remoteReadBytesNeeded();
    for (std::size_t i = 0; i < 5; ++i)
        r.bytesNeededFrac[i] = dist.fraction(i);

    const auto t_end = std::chrono::steady_clock::now();
    r.wallSeconds =
        std::chrono::duration<double>(t_end - t_start).count();
    return r;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        NC_ASSERT(x > 0, "geomean of non-positive value");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
envScale()
{
    static const double scale = [] {
        const char *env = std::getenv("NETCRAFTER_SCALE");
        if (env == nullptr)
            return 1.0;
        const double v = std::atof(env);
        return v > 0 ? v : 1.0;
    }();
    return scale;
}

} // namespace netcrafter::harness
