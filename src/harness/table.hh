/**
 * @file
 * Fixed-width table printer for bench output: every figure binary emits
 * the paper's rows/series through this.
 */

#ifndef NETCRAFTER_HARNESS_TABLE_HH
#define NETCRAFTER_HARNESS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace netcrafter::harness {

/** A simple column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    /** Format a double with @p precision decimals. */
    static std::string fmt(double v, int precision = 2);

    /** Format a ratio as a percentage string with @p precision. */
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace netcrafter::harness

#endif // NETCRAFTER_HARNESS_TABLE_HH
