/**
 * @file
 * Experiment harness: runs one (workload, configuration) pair and
 * extracts every statistic the paper's figures need into a flat result
 * record, so each bench binary just sweeps configs and prints rows.
 */

#ifndef NETCRAFTER_HARNESS_RUNNER_HH
#define NETCRAFTER_HARNESS_RUNNER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/config/system_config.hh"
#include "src/flow/fidelity.hh"
#include "src/obs/trace.hh"
#include "src/serve/serve_config.hh"
#include "src/sim/sharded_engine.hh"
#include "src/sim/types.hh"

namespace netcrafter::harness {

/**
 * Per-class latency summary of an open-loop serving run (all zero for
 * closed-loop runs). Percentiles are in cycles, from the mergeable
 * quantile sketch — identical for every shard count.
 */
struct ServeClassResult
{
    std::uint64_t measured = 0;
    double meanLatency = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;

    friend bool operator==(const ServeClassResult &,
                           const ServeClassResult &) = default;
};

/** Everything measured in one simulation run. */
struct RunResult
{
    std::string workload;

    /** End-to-end execution time, cycles. */
    Tick cycles = 0;

    /** Discrete events executed (simulator cost, not modelled time). */
    std::uint64_t events = 0;

    std::uint64_t instructions = 0;
    std::uint64_t l1ReadAccesses = 0;
    std::uint64_t l1ReadMisses = 0;
    double l1Mpki = 0;

    // Inter-cluster link census -----------------------------------------
    std::uint64_t interFlits = 0;
    std::uint64_t interWireBytes = 0;
    std::uint64_t interUsefulBytes = 0;
    double interUtilization = 0;
    double ptwByteFraction = 0;

    /** Fraction of flits ~25% or ~75% padded (Figure 6). */
    double paddedFlitFraction = 0;
    double quarterPaddedFraction = 0;
    double threeQuarterPaddedFraction = 0;

    /** Fraction of logical flits that travelled stitched (Figure 12). */
    double stitchedFraction = 0;
    std::uint64_t stitchedPieces = 0;

    std::uint64_t trimmedPackets = 0;
    std::uint64_t bytesTrimmed = 0;
    std::uint64_t poolingArms = 0;

    // Remote access behaviour -------------------------------------------
    double avgInterReadLatency = 0;
    std::uint64_t interReads = 0;
    std::uint64_t remoteReads = 0;
    std::uint64_t localReads = 0;
    std::uint64_t pageWalks = 0;
    double meanWalkLength = 0;

    /** Bytes-needed census of inter-cluster reads:
     *  <=16 / <=32 / <=48 / <64 / 64 fractions (Figure 7). */
    std::array<double, 5> bytesNeededFrac{};

    // Open-loop serving (all zero for closed-loop runs) -----------------
    /** Offered load in requests per kilocycle (0 = closed-loop run). */
    double offeredLoad = 0;

    /** Requests injected / arrived-in-window / retired. */
    std::uint64_t serveInjected = 0;
    std::uint64_t serveMeasured = 0;
    std::uint64_t serveCompleted = 0;

    /** Peak simultaneously in-flight requests on any single GPU. */
    std::uint64_t servePeakInflight = 0;

    /** Measured completions per kilocycle (saturation-curve y-axis). */
    double serveThroughput = 0;

    /** Latency summaries: read, write, ptw, then the aggregate. */
    std::array<ServeClassResult, 4> serveClasses{};

    /** Host seconds the simulation took (diagnostics only). */
    double wallSeconds = 0;

    // Sharded execution census (diagnostics only: they describe how the
    // simulator ran, not what it simulated — the shard count never
    // changes a measurement) ------------------------------------------
    /** Engine shards the run executed on (1 = serial). */
    unsigned shards = 1;

    /** Barrier-synchronized windows the sharded engine executed. */
    std::uint64_t quantaExecuted = 0;

    /** Summed idle ticks shards spent waiting at window tails. */
    std::uint64_t barrierStallTicks = 0;

    /** Flits re-materialized across shard boundaries. */
    std::uint64_t crossShardFlits = 0;

    /** Peak per-channel ingress-queue depth at a quantum barrier. */
    std::uint64_t maxIngressDepth = 0;

    /** Rounds that ran without a barrier rendezvous because only one
     *  shard had runnable events. */
    std::uint64_t barrierRoundsSkipped = 0;

    /** Rounds a shard slept through entirely (summed over shards and
     *  rounds) instead of spinning at the window tail. */
    std::uint64_t idleParks = 0;

    /** Executor threads that drove the shards (1 = serial). */
    unsigned workThreads = 1;

    /** Whole-window steal claims attempted by non-home threads. */
    std::uint64_t stealAttempts = 0;

    /** Steal claims won: units executed away from their home thread. */
    std::uint64_t stealsWon = 0;

    /** Steal claims lost to a concurrent claimant. */
    std::uint64_t stealsAborted = 0;

    /** Window-tail stall ticks whose executor immediately ran another
     *  unit in the same round — stall converted into useful host time
     *  by multiplexing or stealing. */
    std::uint64_t coveredStallTicks = 0;

    /** barrierStallTicks minus coveredStallTicks: stall that still
     *  cost idle host time at the barrier. */
    std::uint64_t residualStallTicks = 0;

    /** Mean published-backlog spread (max - min pending events) over
     *  each round's active shards — the donor/thief imbalance work
     *  stealing exploits. Deterministic for a given shard count. */
    double loadSpreadMean = 0;

    /** Bounded adaptive-window widths the coordinator picked, in
     *  ticks: sample count, mean, and max (0/0/0 when serial or when
     *  every window was an unbounded drain-ahead stride). */
    std::uint64_t adaptiveWindowSamples = 0;
    double adaptiveWindowMean = 0;
    double adaptiveWindowMax = 0;

    // Simulator hot-path census ----------------------------------------
    /** Events executed per host wall-clock second (diagnostics only). */
    double eventsPerSecond = 0;

    /** Events scheduled within near-future wheels, summed over shards
     *  (diagnostics only: the near/far split depends on each shard's
     *  clock at scheduling time, which sharding changes). */
    std::uint64_t nearEvents = 0;

    /** Events that overflowed into the far-future heaps (diagnostics
     *  only, see nearEvents). */
    std::uint64_t farEvents = 0;

    /** Peak simultaneously pending one-shot callback events, summed
     *  over shards (diagnostics only: per-shard peaks don't sum to the
     *  serial peak). */
    std::uint64_t callbackPoolHighWater = 0;

    /** Bytes held by the engines' one-shot event node arenas
     *  (diagnostics only, see callbackPoolHighWater). */
    std::uint64_t callbackArenaBytes = 0;

    /** Peak live packets in this thread's arena (diagnostics only:
     *  thread-local pools accumulate across runs on a worker thread). */
    std::uint64_t packetPoolHighWater = 0;

    /** Peak live flits in this thread's arena (diagnostics only). */
    std::uint64_t flitPoolHighWater = 0;

    /** Bytes held by this thread's packet + flit arenas (diagnostics). */
    std::uint64_t poolArenaBytes = 0;

    /** SmallFn captures that spilled to the heap on this thread; the
     *  hot path stays at 0 (diagnostics only). */
    std::uint64_t smallFnHeapAllocs = 0;

    // Observability census (diagnostics only: tracing never changes a
    // measurement, and the record count depends on the trace level) ----
    /** Trace records captured across all shards (0 with tracing off). */
    std::uint64_t traceRecords = 0;

    /** Trace records dropped because a shard buffer hit its cap. */
    std::uint64_t traceDropped = 0;

    /** Time-series rows the interval sampler produced. */
    std::uint64_t sampleRows = 0;

    // Flow-lane fidelity census (all zero at cycle fidelity). Unlike
    // the shard count, fidelity CAN change measurements — flow/hybrid
    // results approximate cycle results — which is why it sits below
    // the sameMeasurement() cut as run metadata, and why experiment
    // caches key on it (see exp::ResultCache). ------------------------
    /** Fidelity the run executed at. */
    flow::Fidelity fidelity = flow::Fidelity::Cycle;

    /** Packets whose round trip was fused onto the flow lane. */
    std::uint64_t flowPackets = 0;

    /** Packets classified back to the flit path (Hybrid warmup,
     *  contention windows). */
    std::uint64_t flowCyclePackets = 0;

    /** Flow-lane packets delivered (== flowPackets after a drain). */
    std::uint64_t flowPacketsDelivered = 0;

    /** Post-trim bytes entering / leaving the flow lane; exact
     *  conservation means the two are equal after a drained run. */
    std::uint64_t flowBytesInjected = 0;
    std::uint64_t flowBytesDelivered = 0;

    /** Rate-estimation epochs closed across lanes. */
    std::uint64_t flowEpochsClosed = 0;

    /** Hybrid lane transitions: cycle->flow and flow->cycle. */
    std::uint64_t flowLaneActivations = 0;
    std::uint64_t flowLaneEscalations = 0;

    /** Max-min fair-share recomputations the flow model ran. */
    std::uint64_t flowRecomputes = 0;

    /** Flow-lane wait decomposition: analytic M/D/1 latency added on
     *  top of the virtual-FIFO backlog, and the backlog itself. */
    std::uint64_t flowMd1WaitTicks = 0;
    std::uint64_t flowFifoWaitTicks = 0;

    // Relaxed-sync census. Like fidelity, the sync mode is run
    // metadata that CAN change measurements: a Relaxed run with skew
    // bound S approximates the Strict timing (the skew auditor bounds
    // the error), so results from different sync policies must never
    // be conflated — exp::ResultCache keys on both fields. All the
    // skew counters are zero under Strict. ----------------------------
    /** Synchronization mode the run executed under. */
    sim::SyncMode syncMode = sim::SyncMode::Strict;

    /** Skew bound S in ticks (0 when Strict: shards never diverge). */
    Tick skewBound = 0;

    /** Max observed shard-clock skew at any rendezvous, ticks. Always
     *  <= skewBound by construction. */
    std::uint64_t maxObservedSkew = 0;

    /** Mean observed skew over rendezvous rounds, ticks. */
    double meanObservedSkew = 0;

    /** Cross-shard flit arrivals whose departure-stamped arrival tick
     *  was already in the receiver's past and were slotted at the
     *  receiver's current tick instead (per-channel FIFO preserved). */
    std::uint64_t lateArrivals = 0;

    /** Late-slotted reverse-direction credit returns (see above). */
    std::uint64_t lateCredits = 0;

    /** Summed tick displacement of late-slotted arrivals: how far
     *  forward the slots moved in total. */
    std::uint64_t lateDisplacementTicks = 0;

    /** Largest single late-slot displacement, ticks. */
    std::uint64_t maxLateDisplacement = 0;

    /** Inter-cluster flits delivered at wire heads (conservation
     *  check: equals interFlits after a drained cycle-fidelity run —
     *  flow-lane synthetic flits are credited, not delivered). */
    std::uint64_t wireFlitsDelivered = 0;

    /** Wire bytes delivered at wire heads (see wireFlitsDelivered). */
    std::uint64_t wireBytesDelivered = 0;

    // Host-time self-profiling census (diagnostics only: host seconds
    // per execution phase, summed over executor threads; all zero
    // unless profiling was armed — telemetry running, tracing on, or
    // NETCRAFTER_PROFILE) ----------------------------------------------
    /** Host seconds dispatching events inside windows. */
    double phaseExecuteSeconds = 0;

    /** Host seconds parked at (or coordinating) the round barrier. */
    double phaseBarrierWaitSeconds = 0;

    /** Host seconds draining sealed cross-shard mailboxes. */
    double phaseIngressSeconds = 0;

    /** Host seconds scanning claim words and the steal ledger. */
    double phaseStealScanSeconds = 0;

    /** Host seconds exporting trace artifacts after the run. */
    double phaseExportSeconds = 0;

    /** NC_WARN_ONCE repeats suppressed during the run (diagnostics
     *  only; non-zero means stderr hid repeated warnings). */
    std::uint64_t warningsSuppressed = 0;
};

/**
 * Simulate @p workload_name (a Table 3 abbreviation or "GEMM") under
 * @p cfg. @p scale multiplies per-wavefront instruction counts.
 * @p shards runs the simulation on that many engine shards (clamped to
 * the cluster count); every measured field of the result is identical
 * for every shard count — only the diagnostics differ.
 */
RunResult runWorkload(const std::string &workload_name,
                      const config::SystemConfig &cfg,
                      double scale = 1.0, unsigned shards = 1);

/**
 * As above, with explicit trace options instead of the
 * NETCRAFTER_TRACE_* environment (which the 4-argument overload
 * consults). When @p trace names an output directory, the run writes
 * `<outDir>/<workload>-<digest>-s<scale>-n<shards>.{trace.json,
 * host.trace.json,timeseries.csv,stats.json}` — sim-time and host-time
 * Chrome traces, the interval time-series, and the full statistics
 * registry with the folded packet-lifecycle distributions.
 */
RunResult runWorkload(const std::string &workload_name,
                      const config::SystemConfig &cfg, double scale,
                      unsigned shards, const obs::TraceOptions &trace);

/**
 * As above, additionally pinning the execution policy (executor thread
 * count, work stealing) instead of the NETCRAFTER_THREADS /
 * NETCRAFTER_STEAL / NETCRAFTER_STEAL_MIN_BACKLOG environment the
 * 4-argument overload consults. The policy is an execution detail:
 * every measured field is identical for every policy.
 */
RunResult runWorkload(const std::string &workload_name,
                      const config::SystemConfig &cfg, double scale,
                      unsigned shards, const obs::TraceOptions &trace,
                      const sim::ExecPolicy &exec);

/**
 * As above, additionally pinning the execution fidelity instead of the
 * validated NETCRAFTER_FIDELITY environment every other overload
 * consults (unset = cycle). Fidelity is run metadata, not a config
 * field: flow/hybrid runs approximate the cycle measurement (the
 * validation harness bounds the error), so results from different
 * fidelities must never be conflated — exp::ResultCache keys on it.
 */
RunResult runWorkload(const std::string &workload_name,
                      const config::SystemConfig &cfg, double scale,
                      unsigned shards, const obs::TraceOptions &trace,
                      const sim::ExecPolicy &exec,
                      flow::Fidelity fidelity);

/**
 * As above, additionally pinning the synchronization policy instead of
 * the validated NETCRAFTER_SYNC / NETCRAFTER_SKEW_BOUND environment
 * the fidelity overload consults (unset = Strict). Like fidelity, the
 * sync policy is run metadata: Relaxed runs approximate the Strict
 * measurement within the audited error budget, so results from
 * different policies must never be conflated — exp::ResultCache keys
 * on it. Relaxed runs are reproducible for a fixed (workload, config,
 * shards, skew bound) across thread counts and steal policies.
 */
RunResult runWorkload(const std::string &workload_name,
                      const config::SystemConfig &cfg, double scale,
                      unsigned shards, const obs::TraceOptions &trace,
                      const sim::ExecPolicy &exec,
                      flow::Fidelity fidelity,
                      const sim::SyncPolicy &sync);

/**
 * Run one open-loop serving scenario (@p serve must be enabled) on a
 * system built from @p cfg and fill the serve_* fields alongside every
 * ordinary measurement. The result's workload name is
 * "serve-<arrival>". Like runWorkload, all measured fields are
 * identical for every shard count.
 */
RunResult runServe(const serve::ServeConfig &serve,
                   const config::SystemConfig &cfg, double scale = 1.0,
                   unsigned shards = 1);

/** As above with explicit trace options (see the runWorkload overload). */
RunResult runServe(const serve::ServeConfig &serve,
                   const config::SystemConfig &cfg, double scale,
                   unsigned shards, const obs::TraceOptions &trace);

/** As above with an explicit execution policy (see runWorkload). */
RunResult runServe(const serve::ServeConfig &serve,
                   const config::SystemConfig &cfg, double scale,
                   unsigned shards, const obs::TraceOptions &trace,
                   const sim::ExecPolicy &exec);

/** As above with an explicit fidelity (see the runWorkload overload). */
RunResult runServe(const serve::ServeConfig &serve,
                   const config::SystemConfig &cfg, double scale,
                   unsigned shards, const obs::TraceOptions &trace,
                   const sim::ExecPolicy &exec,
                   flow::Fidelity fidelity);

/** As above with an explicit sync policy (see the runWorkload
 *  overload). */
RunResult runServe(const serve::ServeConfig &serve,
                   const config::SystemConfig &cfg, double scale,
                   unsigned shards, const obs::TraceOptions &trace,
                   const sim::ExecPolicy &exec,
                   flow::Fidelity fidelity,
                   const sim::SyncPolicy &sync);

/** Geometric mean of a sequence of positive ratios. */
double geomean(const std::vector<double> &xs);

/**
 * Problem-size multiplier from the NETCRAFTER_SCALE environment
 * variable (default 1.0) — lets CI shrink or enlarge every experiment.
 * The lookup is cached after the first call; invalid values (anything
 * not a positive finite number) are fatal.
 */
double envScale();

/** Parse and validate one NETCRAFTER_SCALE value; NC_FATAL on bad input. */
double parseScaleEnv(const char *text);

/**
 * Parse and validate one NETCRAFTER_SHARDS value: a positive integer
 * shard count (sanely capped at 65536). Zero, negative numbers, and
 * garbage are fatal — silently running serial on a typo would make
 * every "parallel" benchmark lie.
 */
unsigned parseShardsEnv(const char *text);

/**
 * Parse one NETCRAFTER_SERVE_LOAD value: offered load in requests per
 * kilocycle, a positive finite number. Zero, negatives, and garbage
 * are fatal.
 */
double parseServeLoadEnv(const char *text);

/**
 * Parse one NETCRAFTER_SERVE_WARMUP / NETCRAFTER_SERVE_MEASURE value
 * (@p var names the variable for the error message): a positive tick
 * count. Zero, negatives, and garbage are fatal.
 */
Tick parseServeTicksEnv(const char *text, const char *var);

/** Parse one NETCRAFTER_SERVE_SEED value: a non-negative integer. */
std::uint64_t parseServeSeedEnv(const char *text);

/**
 * Overlay the NETCRAFTER_SERVE_* environment onto @p serve:
 * _LOAD (requests/kilocycle), _ARRIVAL (poisson|uniform|bursty),
 * _MIX (read:write:ptw weights), _WARMUP / _MEASURE (ticks), and
 * _SEED. Unset variables leave the corresponding field untouched;
 * invalid values are fatal. Does not flip serve.enabled — the caller
 * (a --serve flag, a bench) decides whether serving runs at all.
 */
void applyServeEnv(serve::ServeConfig &serve);

/**
 * True when @p a and @p b report identical measurements — every field
 * except the diagnostics (wall-clock rates, shard-execution census,
 * per-shard queue/pool gauges). Exact comparison: the simulator is
 * deterministic, so equal inputs must produce bit-equal outputs — in
 * particular a serial and a sharded run of the same (workload, config)
 * must compare equal.
 */
bool sameMeasurement(const RunResult &a, const RunResult &b);

} // namespace netcrafter::harness

#endif // NETCRAFTER_HARNESS_RUNNER_HH
