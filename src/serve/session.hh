/**
 * @file
 * The open-loop serving session: wires arrival streams, traffic
 * classes, and latency accounting onto a MultiGpuSystem.
 *
 * Model: every (GPU, class) pair owns one request stream. A stream's
 * arrival ticks come from its ArrivalSequence (counter-based draws, so
 * the schedule is a pure function of the serve seed); each arrival
 * dispatches one tagged wavefront of the class's request kernel onto
 * the GPU's CUs, and the wavefront's retirement marks the request
 * complete. Latency = retire tick - arrival tick, i.e. queueing in
 * pendingWaves + CU residency including every memory-system round trip
 * — the end-to-end number an SLO would bound.
 *
 * Phasing: arrivals are generated for [0, warmup + measure); only
 * requests arriving inside [warmup, warmup + measure) are recorded.
 * After the last arrival the system drains naturally (the engine run
 * ends when the queues empty), so tail requests complete and no
 * latency is truncated.
 *
 * Shard invariance: a stream lives entirely on its GPU's shard —
 * arrival events run on the home engine, the wave executes on the home
 * GPU, and the retire hook fires on the same shard, recording into
 * per-GPU sketches. Reports merge those sketches in (class, GPU) order
 * with exact integer merges, so every reported number is bit-identical
 * for 1, 2, or 4 shards.
 */

#ifndef NETCRAFTER_SERVE_SESSION_HH
#define NETCRAFTER_SERVE_SESSION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "src/gpu/system.hh"
#include "src/serve/arrival.hh"
#include "src/serve/serve_config.hh"
#include "src/serve/traffic_class.hh"
#include "src/stats/quantile.hh"

namespace netcrafter::serve {

/** Latency summary of one class (or the aggregate) over a run. */
struct ClassLatency
{
    /** Requests measured (arrived inside the measurement window). */
    std::uint64_t measured = 0;

    double meanLatency = 0;

    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
};

/** Everything a serving run reports. */
struct ServeReport
{
    sim::RunStatus status = sim::RunStatus::Drained;

    /** Requests dispatched (all phases). */
    std::uint64_t injected = 0;

    /** Requests that arrived inside the measurement window. */
    std::uint64_t measured = 0;

    /** Requests retired (equals injected after a drained run). */
    std::uint64_t completed = 0;

    /** Peak simultaneously in-flight requests on any single GPU. */
    std::uint64_t peakInflight = 0;

    /** Measured completions per kilocycle (vs. the offered load). */
    double throughput = 0;

    /** Total cycles including drain. */
    Tick cycles = 0;

    std::array<ClassLatency, kNumTrafficClasses> perClass;
    ClassLatency aggregate;
};

/**
 * One open-loop serving run against @p sys. Construct, call run()
 * once, read the report. The session installs the system's wave-retire
 * hook for the duration of run() and removes it before returning.
 */
class ServeSession
{
  public:
    /** @p scale multiplies class-buffer footprints (not rates). */
    ServeSession(gpu::MultiGpuSystem &sys, const ServeConfig &cfg,
                 double scale = 1.0);

    /**
     * Execute the scenario: warmup + measurement + drain.
     * @p max_cycles bounds the whole run (livelock guard); hitting it
     * surfaces as a non-Drained status in the report.
     */
    ServeReport run(Tick max_cycles = 2'000'000'000ull);

  private:
    /** One injected request, owned by its home GPU's shard. */
    struct Request
    {
        Tick arrival = 0;
        std::uint8_t cls = 0;
        bool measured = false;
    };

    /** One (gpu, class) stream. */
    struct Stream
    {
        ArrivalSequence arrivals;
        GpuId gpu = 0;
        TrafficClass cls = TrafficClass::ReadHeavy;

        /** Stream-local request index: the wave id of the next request. */
        std::uint32_t nextReq = 0;
    };

    /** Shard-local accounting; only GPU g's shard touches index g. */
    struct PerGpu
    {
        std::vector<Request> requests;
        std::array<stats::QuantileSketch, kNumTrafficClasses> sketch;
        std::uint64_t injected = 0;
        std::uint64_t measuredArrivals = 0;
        std::uint64_t completed = 0;
        std::uint64_t inflight = 0;
        std::uint64_t peakInflight = 0;
        std::uint16_t traceLane = 0;
    };

    /** End of arrival generation: warmup + measure. */
    Tick endTick() const
    {
        return cfg_.warmupTicks + cfg_.measureTicks;
    }

    void scheduleArrival(std::size_t stream_idx, Tick when);
    void inject(std::size_t stream_idx, Tick now);
    void onRetire(GpuId g, const gpu::WaveDesc &desc);

    gpu::MultiGpuSystem &sys_;
    ServeConfig cfg_;
    ClassKernels kernels_;
    std::vector<Stream> streams_;
    std::vector<PerGpu> perGpu_;
};

} // namespace netcrafter::serve

#endif // NETCRAFTER_SERVE_SESSION_HH
