/**
 * @file
 * Configuration of one open-loop serving run: which arrival process,
 * how much offered load, the class mix, and the warmup / measurement
 * phase lengths. A ServeConfig is part of a job's identity the same way
 * SystemConfig is — it has a canonical text form and an FNV-1a digest
 * that feeds the experiment ResultCache key, while execution details
 * like the shard count stay excluded.
 */

#ifndef NETCRAFTER_SERVE_SERVE_CONFIG_HH
#define NETCRAFTER_SERVE_SERVE_CONFIG_HH

#include <cstdint>
#include <string>

#include "src/serve/arrival.hh"
#include "src/serve/traffic_class.hh"
#include "src/sim/types.hh"

namespace netcrafter::serve {

/** All knobs of one open-loop serving scenario. */
struct ServeConfig
{
    /** Off by default: jobs without serving keep the closed-loop path. */
    bool enabled = false;

    ArrivalKind arrival = ArrivalKind::Poisson;

    /**
     * Aggregate offered load in requests per kilocycle across the whole
     * system (all GPUs, all classes). Each (gpu, class) stream gets the
     * slice numGpus/share tells it to carry.
     */
    double offeredLoad = 4.0;

    /** Relative request rates of the read/write/ptw classes. */
    ClassMix mix;

    /** Seed feeding every stream's counter-based arrival draws. */
    std::uint64_t seed = 1;

    /** Cycles to run before latencies start counting. */
    Tick warmupTicks = 20'000;

    /** Cycles of the measurement window. */
    Tick measureTicks = 80'000;

    /** Bursty-process shape (ignored by poisson/uniform). */
    BurstParams burst;

    /**
     * Mean inter-arrival gap in ticks of the (gpu, class) stream for
     * @p cls on a @p num_gpus system: each GPU carries 1/num_gpus of
     * the class's share of the aggregate load.
     */
    double meanGapTicks(TrafficClass cls,
                        std::uint32_t num_gpus) const;

    /** Canonical one-line text form (feeds digest()). */
    std::string toString() const;

    /**
     * Stable fingerprint of every field (0 when disabled, so
     * closed-loop cache keys are unchanged by this subsystem).
     */
    std::uint64_t digest() const;

    /** NC_FATAL on non-positive load, bad mix, or empty phases. */
    void validate() const;
};

} // namespace netcrafter::serve

#endif // NETCRAFTER_SERVE_SERVE_CONFIG_HH
