#include "src/serve/serve_config.hh"

#include <cmath>
#include <sstream>

#include "src/sim/logging.hh"

namespace netcrafter::serve {

double
ServeConfig::meanGapTicks(TrafficClass cls,
                          std::uint32_t num_gpus) const
{
    NC_ASSERT(num_gpus > 0, "meanGapTicks with zero GPUs");
    // offeredLoad is requests per 1000 ticks system-wide; this stream
    // carries share(cls)/num_gpus of it.
    const double streamLoad =
        offeredLoad * mix.share(cls) / static_cast<double>(num_gpus);
    NC_ASSERT(streamLoad > 0.0, "stream ", trafficClassName(cls),
              " has zero offered load");
    return std::max(1.0, 1000.0 / streamLoad);
}

std::string
ServeConfig::toString() const
{
    std::ostringstream os;
    os.precision(17);
    os << "arrival=" << arrivalKindName(arrival)
       << " load=" << offeredLoad << " mix=" << mix.toString()
       << " seed=" << seed << " warmup=" << warmupTicks
       << " measure=" << measureTicks << " duty=" << burst.duty
       << " burst=" << burst.meanBurst;
    return os.str();
}

std::uint64_t
ServeConfig::digest() const
{
    if (!enabled)
        return 0;
    const std::string text = toString();
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64-bit
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    // Reserve 0 for "serving disabled".
    return h == 0 ? 1 : h;
}

void
ServeConfig::validate() const
{
    if (!enabled)
        return;
    NC_ASSERT(std::isfinite(offeredLoad) && offeredLoad > 0.0,
              "offered load must be positive, got ", offeredLoad);
    mix.validate();
    NC_ASSERT(warmupTicks > 0, "serve warmup must be > 0 ticks");
    NC_ASSERT(measureTicks > 0, "serve measurement must be > 0 ticks");
    NC_ASSERT(burst.duty > 0.0 && burst.duty <= 1.0,
              "burst duty must be in (0,1], got ", burst.duty);
    NC_ASSERT(burst.meanBurst >= 1.0,
              "mean burst length must be >= 1, got ", burst.meanBurst);
}

} // namespace netcrafter::serve
