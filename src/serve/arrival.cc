#include "src/serve/arrival.hh"

#include <cmath>

#include "src/sim/logging.hh"

namespace netcrafter::serve {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Uniform: return "uniform";
      case ArrivalKind::Bursty: return "bursty";
    }
    return "(invalid)";
}

ArrivalKind
parseArrivalKind(const std::string &text)
{
    if (text == "poisson")
        return ArrivalKind::Poisson;
    if (text == "uniform")
        return ArrivalKind::Uniform;
    if (text == "bursty")
        return ArrivalKind::Bursty;
    NC_FATAL("unknown arrival process '", text,
             "' (want poisson|uniform|bursty)");
}

ArrivalSequence::ArrivalSequence(ArrivalKind kind, std::uint64_t seed,
                                 std::uint64_t stream,
                                 double mean_gap_ticks,
                                 BurstParams burst)
    : kind_(kind), seed_(seed), stream_(stream),
      meanGap_(mean_gap_ticks), burst_(burst)
{
    NC_ASSERT(meanGap_ >= 1.0,
              "arrival mean gap must be >= 1 tick, got ", meanGap_);
    NC_ASSERT(burst_.duty > 0.0 && burst_.duty <= 1.0,
              "burst duty must be in (0,1], got ", burst_.duty);
    NC_ASSERT(burst_.meanBurst >= 1.0,
              "mean burst length must be >= 1, got ", burst_.meanBurst);
}

double
ArrivalSequence::expDraw(double mean)
{
    // u in [0, 1) so log(1 - u) is finite.
    return -std::log(1.0 - u()) * mean;
}

Tick
ArrivalSequence::next()
{
    double gap = 0;
    switch (kind_) {
      case ArrivalKind::Poisson:
        gap = expDraw(meanGap_);
        break;
      case ArrivalKind::Uniform:
        gap = u() * 2.0 * meanGap_;
        break;
      case ArrivalKind::Bursty: {
        if (burstLeft_ == 0) {
            // Start a new on-period: draw its length, and charge the
            // off-period up front so the long-run rate stays at
            // 1/meanGap: K arrivals take K*duty*mean on-time plus
            // K*(1-duty)*mean off-time on average.
            const double k = 1.0 + expDraw(burst_.meanBurst - 1.0);
            burstLeft_ = static_cast<std::uint64_t>(std::llround(k));
            gap = expDraw(static_cast<double>(burstLeft_) * meanGap_ *
                          (1.0 - burst_.duty));
        }
        --burstLeft_;
        gap += expDraw(meanGap_ * burst_.duty);
        break;
      }
    }
    ++generated_;
    const auto ticks = static_cast<Tick>(std::llround(gap));
    return ticks < 1 ? 1 : ticks;
}

} // namespace netcrafter::serve
