/**
 * @file
 * Open-loop arrival processes. Each request stream owns an
 * ArrivalSequence that turns counter-based random draws
 * (sim::CounterRng — pure functions of (seed, stream, draw index))
 * into inter-arrival gaps. Because no generator state is shared
 * between streams, the arrival tick of request n of stream s is the
 * same number whether the simulation runs serially, on 4 engine
 * shards, or under any sweep-scheduler thread count — the determinism
 * precondition for bit-identical saturation curves.
 */

#ifndef NETCRAFTER_SERVE_ARRIVAL_HH
#define NETCRAFTER_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>

#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace netcrafter::serve {

/** The shape of a stream's inter-arrival process. */
enum class ArrivalKind : std::uint8_t
{
    /** Exponential gaps: memoryless, the classic open-loop reference. */
    Poisson = 0,

    /** Gaps uniform in (0, 2 * mean]: same rate, bounded burstiness. */
    Uniform = 1,

    /**
     * Markov-modulated on/off: bursts of closely spaced requests
     * (mean gap duty * mean) separated by off periods sized so the
     * long-run rate still matches the offered load.
     */
    Bursty = 2,
};

/** Stable lower-case name ("poisson", "uniform", "bursty"). */
const char *arrivalKindName(ArrivalKind kind);

/** Inverse of arrivalKindName; NC_FATAL on anything else. */
ArrivalKind parseArrivalKind(const std::string &text);

/** Bursty-process shape knobs (ignored by the other kinds). */
struct BurstParams
{
    /** Fraction of time the stream is "on"; on-gaps = duty * mean. */
    double duty = 0.25;

    /** Mean requests per burst (geometric-ish, always >= 1). */
    double meanBurst = 16.0;
};

/**
 * Generator of one stream's inter-arrival gaps. next() returns the gap
 * (>= 1 tick) before the stream's next request. Every random draw is
 * CounterRng::uniform(seed, stream, drawCounter++), so rebuilding the
 * sequence with the same (kind, seed, stream, mean gap) replays it
 * exactly — tests regenerate and cross-check streams this way.
 */
class ArrivalSequence
{
  public:
    ArrivalSequence(ArrivalKind kind, std::uint64_t seed,
                    std::uint64_t stream, double mean_gap_ticks,
                    BurstParams burst = {});

    /** Gap in ticks before the next arrival (always >= 1). */
    Tick next();

    /** Arrivals generated so far. */
    std::uint64_t generated() const { return generated_; }

    double meanGapTicks() const { return meanGap_; }

  private:
    /** The next counter-based uniform draw in [0, 1). */
    double u() { return CounterRng::uniform(seed_, stream_, draws_++); }

    /** Exponential variate with mean @p mean, from one draw. */
    double expDraw(double mean);

    ArrivalKind kind_;
    std::uint64_t seed_;
    std::uint64_t stream_;
    double meanGap_;
    BurstParams burst_;

    std::uint64_t draws_ = 0;
    std::uint64_t generated_ = 0;

    /** Bursty state: requests left in the current on-period. */
    std::uint64_t burstLeft_ = 0;
};

} // namespace netcrafter::serve

#endif // NETCRAFTER_SERVE_ARRIVAL_HH
