#include "src/serve/session.hh"

#include <algorithm>
#include <string>

#include "src/obs/progress_board.hh"
#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::serve {

namespace {

/**
 * Stream id of (gpu, class) in the CounterRng stream space. Wave seeds
 * use a disjoint id range (offset by kSeedStreamBase) so arrival gaps
 * and wavefront contents never share draws.
 */
constexpr std::uint64_t kSeedStreamBase = 1ull << 32;

std::uint64_t
streamId(GpuId g, TrafficClass cls)
{
    return static_cast<std::uint64_t>(g) * kNumTrafficClasses +
           static_cast<std::uint64_t>(cls);
}

} // namespace

ServeSession::ServeSession(gpu::MultiGpuSystem &sys,
                           const ServeConfig &cfg, double scale)
    : sys_(sys), cfg_(cfg)
{
    NC_ASSERT(cfg_.enabled, "ServeSession with serving disabled");
    cfg_.validate();

    const std::uint32_t num_gpus = sys_.cfg().numGpus();

    workloads::BuildContext ctx;
    ctx.numGpus = num_gpus;
    ctx.scale = scale;
    ctx.seed = cfg_.seed;
    ctx.placement = &sys_;
    // Keep serve buffers clear of any workload VA range so a session
    // can coexist with closed-loop kernels on the same system.
    ctx.nextVa = 0x8'0000'0000ull;
    kernels_ = buildClassKernels(ctx);

    perGpu_.resize(num_gpus);
    streams_.reserve(num_gpus * kNumTrafficClasses);
    for (GpuId g = 0; g < num_gpus; ++g) {
        perGpu_[g].traceLane = obs::internLane(
            sys_.engineFor(g), "gpu" + std::to_string(g) + ".serve");
        for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
            const auto cls = static_cast<TrafficClass>(c);
            streams_.push_back(Stream{
                ArrivalSequence(cfg_.arrival, cfg_.seed,
                                streamId(g, cls),
                                cfg_.meanGapTicks(cls, num_gpus),
                                cfg_.burst),
                g, cls, 0});
        }
    }
}

void
ServeSession::scheduleArrival(std::size_t stream_idx, Tick when)
{
    // The event runs on the stream's home shard: injection touches only
    // GPU-local state, keeping sharded execution race-free and
    // bit-identical.
    sys_.engineFor(streams_[stream_idx].gpu)
        .scheduleAbs(when, [this, stream_idx, when] {
            inject(stream_idx, when);
        });
}

void
ServeSession::inject(std::size_t stream_idx, Tick now)
{
    Stream &stream = streams_[stream_idx];
    PerGpu &local = perGpu_[stream.gpu];

    Request req;
    req.arrival = now;
    req.cls = static_cast<std::uint8_t>(stream.cls);
    req.measured = now >= cfg_.warmupTicks && now < endTick();
    const std::uint64_t local_id = local.requests.size();
    local.requests.push_back(req);

    ++local.injected;
    local.measuredArrivals += req.measured ? 1 : 0;
    ++local.inflight;
    local.peakInflight = std::max(local.peakInflight, local.inflight);
    // Live-telemetry gauge: runs on the GPU's shard, so the cell's
    // single-writer discipline holds; pure observation, never read back.
    if (obs::ShardCell *cell =
            sys_.engineFor(stream.gpu).progressCell())
        cell->serveInflight.fetch_add(1, std::memory_order_relaxed);

    gpu::WaveDesc desc;
    desc.kernel = &kernels_.of(stream.cls);
    desc.cta = stream.gpu; // CTA id = home GPU (PartitionedRandom chunk)
    desc.wave = stream.nextReq++;
    desc.seed = CounterRng::draw(
        cfg_.seed, kSeedStreamBase + streamId(stream.gpu, stream.cls),
        desc.wave);
    desc.serveTag = local_id + 1;

    obs::tracepoint(sys_.engineFor(stream.gpu),
                    obs::TraceLevel::Packets, obs::TraceKind::PktStage,
                    obs::TraceStage::ServeArrive, local.traceLane,
                    (static_cast<std::uint64_t>(stream.gpu) << 32) |
                        local_id,
                    static_cast<std::uint32_t>(stream.cls),
                    req.measured ? 1u : 0u);

    sys_.dispatchServeWave(stream.gpu, desc);

    const Tick next = now + stream.arrivals.next();
    if (next < endTick())
        scheduleArrival(stream_idx, next);
}

void
ServeSession::onRetire(GpuId g, const gpu::WaveDesc &desc)
{
    PerGpu &local = perGpu_[g];
    NC_ASSERT(desc.serveTag >= 1 &&
                  desc.serveTag <= local.requests.size(),
              "retired serve wave with unknown tag ", desc.serveTag);
    const Request &req = local.requests[desc.serveTag - 1];

    const Tick now = sys_.engineFor(g).now();
    NC_ASSERT(now >= req.arrival, "request retired before arrival");
    const Tick latency = now - req.arrival;

    ++local.completed;
    NC_ASSERT(local.inflight > 0, "retire with no requests in flight");
    --local.inflight;
    if (obs::ShardCell *cell = sys_.engineFor(g).progressCell())
        cell->serveInflight.fetch_sub(1, std::memory_order_relaxed);
    if (req.measured)
        local.sketch[req.cls].record(latency);

    obs::tracepoint(sys_.engineFor(g), obs::TraceLevel::Packets,
                    obs::TraceKind::PktStage,
                    obs::TraceStage::ServeRetire, local.traceLane,
                    (static_cast<std::uint64_t>(g) << 32) |
                        (desc.serveTag - 1),
                    static_cast<std::uint32_t>(req.cls),
                    static_cast<std::uint32_t>(
                        std::min<Tick>(latency, 0xffffffffull)));
}

ServeReport
ServeSession::run(Tick max_cycles)
{
    sys_.setWaveRetireHook([this](GpuId g, const gpu::WaveDesc &desc) {
        if (desc.serveTag != 0)
            onRetire(g, desc);
    });

    // Seed the first arrival of every stream. Gaps are >= 1, so the
    // first arrival is strictly after tick 0 and scheduleAbs is safe
    // on a fresh engine.
    const Tick base = sys_.engines().shard(0).now();
    NC_ASSERT(base == 0,
              "serve session must start on a fresh system (now=", base,
              ")");
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        const Tick first = base + streams_[i].arrivals.next();
        if (first < endTick())
            scheduleArrival(i, first);
    }

    // One engine run covers all phases: arrivals self-perpetuate until
    // endTick() and the queues drain once the tail requests retire.
    const sim::RunStatus status = sys_.engines().run(max_cycles);
    sys_.engines().alignClocks();
    sys_.setWaveRetireHook(nullptr);

    ServeReport report;
    report.status = status;
    report.cycles = sys_.cycles();
    for (const PerGpu &local : perGpu_) {
        report.injected += local.injected;
        report.measured += local.measuredArrivals;
        report.completed += local.completed;
        report.peakInflight =
            std::max(report.peakInflight, local.peakInflight);
    }

    // Merge per-GPU sketches in GPU order per class, then fold the
    // class sketches into the aggregate: every merge is an exact
    // bucket-count addition, so the report cannot depend on shards.
    auto summarize = [](const stats::QuantileSketch &s) {
        ClassLatency out;
        out.measured = s.count();
        out.meanLatency = s.mean();
        out.p50 = s.quantile(0.50);
        out.p95 = s.quantile(0.95);
        out.p99 = s.quantile(0.99);
        out.p999 = s.quantile(0.999);
        return out;
    };
    stats::QuantileSketch aggregate;
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        stats::QuantileSketch merged;
        for (const PerGpu &local : perGpu_)
            merged.merge(local.sketch[c]);
        report.perClass[c] = summarize(merged);
        aggregate.merge(merged);
    }
    report.aggregate = summarize(aggregate);
    report.throughput =
        static_cast<double>(report.aggregate.measured) * 1000.0 /
        static_cast<double>(cfg_.measureTicks);
    return report;
}

} // namespace netcrafter::serve
