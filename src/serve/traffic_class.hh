/**
 * @file
 * Serving traffic classes. A request belongs to one of three fixed
 * classes whose memory behaviour is built from the same AccessStream
 * generators the Table 3 workload models use:
 *
 *  - read  (ReadHeavy): adjacent + hot-region random reads — bulk data
 *    traffic, mostly full cache lines;
 *  - write (WriteHeavy): streaming writes with a read tail — exercises
 *    the write path and write-ack traffic;
 *  - ptw   (PtwHeavy): page-granular random reads over a TLB-reach-
 *    exceeding footprint — every access risks a page walk, the
 *    latency-critical class the paper's Sequencing mechanism protects.
 *
 * The class set is fixed (not user-defined) so per-class percentile
 * columns have a stable schema in every exporter.
 */

#ifndef NETCRAFTER_SERVE_TRAFFIC_CLASS_HH
#define NETCRAFTER_SERVE_TRAFFIC_CLASS_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "src/workloads/mix_kernel.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::serve {

enum class TrafficClass : std::uint8_t
{
    ReadHeavy = 0,
    WriteHeavy = 1,
    PtwHeavy = 2,
};

/** Number of traffic classes (fixed schema). */
inline constexpr std::size_t kNumTrafficClasses = 3;

/** Stable short name: "read", "write", "ptw". */
const char *trafficClassName(TrafficClass cls);

/** Relative request-rate weights of the three classes. */
struct ClassMix
{
    /** Indexed by TrafficClass; normalized by totalWeight(). */
    std::array<double, kNumTrafficClasses> weight{0.6, 0.25, 0.15};

    double totalWeight() const;

    /** Normalized share of class @p cls in [0, 1]. */
    double share(TrafficClass cls) const;

    /** Canonical "r:w:p" form (round-trip precision). */
    std::string toString() const;

    /** NC_FATAL unless every weight is finite, >= 0, and sum > 0. */
    void validate() const;
};

/** Parse "r:w:p" (e.g. "0.6:0.25:0.15"); NC_FATAL on junk. */
ClassMix parseClassMix(const std::string &text);

/**
 * The per-class request kernels, built once per serving session.
 * Kernel shape: numCtas = numGpus (a request dispatched on GPU g runs
 * as CTA g, so PartitionedRandom streams stay in g's chunk),
 * wavesPerCta unbounded (the wave id is the stream-local request
 * index), instructionsPerWave = the class's request length.
 */
struct ClassKernels
{
    std::array<std::unique_ptr<workloads::MixKernel>,
               kNumTrafficClasses>
        kernels;

    const workloads::MixKernel &of(TrafficClass cls) const
    {
        return *kernels[static_cast<std::size_t>(cls)];
    }
};

/**
 * Allocate and LASP-place the class buffers through @p ctx and build
 * the three request kernels. @p ctx.scale multiplies footprints (not
 * request lengths — a request's work is part of the serving contract,
 * not the problem size).
 */
ClassKernels buildClassKernels(workloads::BuildContext &ctx);

} // namespace netcrafter::serve

#endif // NETCRAFTER_SERVE_TRAFFIC_CLASS_HH
