#include "src/serve/traffic_class.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "src/sched/lasp.hh"
#include "src/sim/logging.hh"

namespace netcrafter::serve {

namespace {

using sched::BufferPattern;
using workloads::AccessStream;

constexpr std::uint64_t kMiB = 1ull << 20;

/** Footprint scaled like app buffers, but never below one page. */
std::uint64_t
scaledBytes(std::uint64_t bytes, double scale)
{
    const auto scaled = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(bytes) * scale));
    return std::max<std::uint64_t>(scaled, kPageBytes);
}

} // namespace

const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::ReadHeavy: return "read";
      case TrafficClass::WriteHeavy: return "write";
      case TrafficClass::PtwHeavy: return "ptw";
    }
    return "(invalid)";
}

double
ClassMix::totalWeight() const
{
    double sum = 0;
    for (double w : weight)
        sum += w;
    return sum;
}

double
ClassMix::share(TrafficClass cls) const
{
    return weight[static_cast<std::size_t>(cls)] / totalWeight();
}

std::string
ClassMix::toString() const
{
    std::ostringstream os;
    os.precision(17);
    os << weight[0] << ':' << weight[1] << ':' << weight[2];
    return os.str();
}

void
ClassMix::validate() const
{
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        NC_ASSERT(std::isfinite(weight[c]) && weight[c] >= 0.0,
                  "class-mix weight ", c, " invalid: ", weight[c]);
    }
    NC_ASSERT(totalWeight() > 0.0, "class mix has zero total weight");
}

ClassMix
parseClassMix(const std::string &text)
{
    ClassMix mix;
    std::size_t pos = 0;
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        const std::size_t sep = text.find(':', pos);
        const bool last = c + 1 == kNumTrafficClasses;
        if (last != (sep == std::string::npos))
            NC_FATAL("bad class mix '", text, "' (want read:write:ptw)");
        const std::string field = text.substr(
            pos, last ? std::string::npos : sep - pos);
        char *end = nullptr;
        const double w = std::strtod(field.c_str(), &end);
        if (field.empty() || end == nullptr || *end != '\0' ||
            !std::isfinite(w) || w < 0.0) {
            NC_FATAL("bad class-mix weight '", field, "' in '", text,
                     "'");
        }
        mix.weight[c] = w;
        pos = sep + 1;
    }
    if (mix.totalWeight() <= 0.0)
        NC_FATAL("class mix '", text, "' has zero total weight");
    return mix;
}

ClassKernels
buildClassKernels(workloads::BuildContext &ctx)
{
    NC_ASSERT(ctx.placement != nullptr,
              "buildClassKernels without placement");
    ClassKernels out;

    // The shared kernel shape: CTA id = home GPU (so PartitionedRandom
    // streams stay in the dispatching GPU's chunk), the wave id is the
    // stream-local request index and therefore unbounded.
    workloads::KernelInfo shape;
    shape.numCtas = ctx.numGpus;
    shape.wavesPerCta = 0xffffffffu;

    auto makeBuffer = [&](std::uint64_t bytes, BufferPattern pattern) {
        const std::uint64_t sized = scaledBytes(bytes, ctx.scale);
        const Addr base = ctx.alloc(sized);
        sched::placeBuffer(*ctx.placement, base, sized, pattern,
                           ctx.numGpus);
        return std::pair<Addr, std::uint64_t>{base, sized};
    };

    // read: bulk data service. Adjacent scans of a chunked buffer plus
    // hot-region random reads of an interleaved one — mostly full-line
    // traffic, the class Trimming and chunking help most.
    {
        const auto [scanBase, scanBytes] =
            makeBuffer(48 * kMiB, BufferPattern::Chunked);
        const auto [hotBase, hotBytes] =
            makeBuffer(24 * kMiB, BufferPattern::Interleaved);
        std::vector<AccessStream> streams(2);
        streams[0].kind = AccessStream::Kind::Adjacent;
        streams[0].base = scanBase;
        streams[0].elems = scanBytes / 4;
        streams[0].elemBytes = 4;
        streams[0].weight = 3.0;
        streams[1].kind = AccessStream::Kind::Random;
        streams[1].base = hotBase;
        streams[1].elems = hotBytes / 4;
        streams[1].elemBytes = 4;
        streams[1].hotFraction = 0.8;
        streams[1].weight = 1.0;
        workloads::KernelInfo info = shape;
        info.instructionsPerWave = 24;
        out.kernels[0] = std::make_unique<workloads::MixKernel>(
            info, std::move(streams), /*compute_delay=*/6);
    }

    // write: streaming stores into this GPU's chunk plus a read tail —
    // exercises the write path and its ack traffic.
    {
        const auto [dstBase, dstBytes] =
            makeBuffer(32 * kMiB, BufferPattern::Chunked);
        const auto [srcBase, srcBytes] =
            makeBuffer(16 * kMiB, BufferPattern::Interleaved);
        std::vector<AccessStream> streams(2);
        streams[0].kind = AccessStream::Kind::PartitionedRandom;
        streams[0].base = dstBase;
        streams[0].elems = dstBytes / 8;
        streams[0].elemBytes = 8;
        streams[0].lanesPerPage = 16;
        streams[0].write = true;
        streams[0].weight = 3.0;
        streams[1].kind = AccessStream::Kind::Adjacent;
        streams[1].base = srcBase;
        streams[1].elems = srcBytes / 8;
        streams[1].elemBytes = 8;
        streams[1].weight = 1.0;
        workloads::KernelInfo info = shape;
        info.instructionsPerWave = 20;
        out.kernels[1] = std::make_unique<workloads::MixKernel>(
            info, std::move(streams), /*compute_delay=*/6);
    }

    // ptw: page-granular random probes over a footprint far past the
    // L2-TLB reach (lanesPerPage = 1 touches 64 distinct pages per
    // instruction), so nearly every access risks a page walk. This is
    // the latency-critical class Sequencing protects.
    {
        const auto [tblBase, tblBytes] =
            makeBuffer(96 * kMiB, BufferPattern::Interleaved);
        std::vector<AccessStream> streams(1);
        streams[0].kind = AccessStream::Kind::Random;
        streams[0].base = tblBase;
        streams[0].elems = tblBytes / 8;
        streams[0].elemBytes = 8;
        streams[0].lanesPerPage = 1;
        streams[0].weight = 1.0;
        workloads::KernelInfo info = shape;
        info.instructionsPerWave = 12;
        out.kernels[2] = std::make_unique<workloads::MixKernel>(
            info, std::move(streams), /*compute_delay=*/4);
    }

    return out;
}

} // namespace netcrafter::serve
