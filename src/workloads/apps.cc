/**
 * @file
 * The Table 3 application models. Each app is a declarative AppSpec —
 * buffers with LASP placement classes plus weighted access streams —
 * instantiated as MixKernels. Sizes are chosen so footprints exceed the
 * aggregate L2 (forcing memory traffic) and random footprints exceed the
 * L2 TLB reach (producing the PTW traffic of Observations 3/4), while
 * keeping single-configuration simulations interactive.
 */

#include <cmath>

#include "src/sched/lasp.hh"
#include "src/sim/logging.hh"
#include "src/workloads/mix_kernel.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::workloads {

namespace {

using sched::BufferPattern;

/** Declarative buffer description. */
struct BufferSpec
{
    std::uint64_t bytes;
    BufferPattern placement;
};

/** Declarative stream description referencing a buffer by index. */
struct StreamSpec
{
    int buffer;
    AccessStream::Kind kind;
    std::uint8_t elemBytes;
    bool write;
    double weight;
    std::uint64_t stride = 1024;
    double hotFraction = 0;
    std::uint64_t hotElems = 64 * 1024;
};

/** Declarative application description. */
struct AppSpec
{
    const char *name;
    const char *pattern;
    std::vector<BufferSpec> buffers;
    std::vector<StreamSpec> streams;
    std::uint32_t numCtas;
    std::uint32_t wavesPerCta;
    std::uint32_t instrsPerWave;
    std::uint32_t computeDelay;
    std::uint32_t numKernels = 1;
};

/** A workload driven by an AppSpec. */
class MixWorkload : public Workload
{
  public:
    explicit MixWorkload(AppSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return spec_.name; }
    std::string pattern() const override { return spec_.pattern; }

    void
    build(BuildContext &ctx) override
    {
        NC_ASSERT(ctx.placement != nullptr, "build without placement");
        std::vector<Addr> bases;
        std::vector<std::uint64_t> sizes;
        for (const auto &buf : spec_.buffers) {
            const Addr base = ctx.alloc(buf.bytes);
            bases.push_back(base);
            sizes.push_back(buf.bytes);
            sched::placeBuffer(*ctx.placement, base, buf.bytes,
                               buf.placement, ctx.numGpus);
        }

        KernelInfo shape;
        shape.numCtas = spec_.numCtas;
        shape.wavesPerCta = spec_.wavesPerCta;
        shape.instructionsPerWave = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::lround(spec_.instrsPerWave * ctx.scale)));

        std::vector<AccessStream> streams;
        for (const auto &ss : spec_.streams) {
            AccessStream s;
            switch (ss.kind) {
              case AccessStream::Kind::Adjacent:
                s.kind = AccessStream::Kind::Adjacent;
                break;
              case AccessStream::Kind::Random:
                s.kind = AccessStream::Kind::Random;
                break;
              case AccessStream::Kind::Strided:
                s.kind = AccessStream::Kind::Strided;
                break;
              case AccessStream::Kind::PartitionedRandom:
                s.kind = AccessStream::Kind::PartitionedRandom;
                break;
            }
            s.base = bases.at(ss.buffer);
            s.elemBytes = ss.elemBytes;
            s.elems = sizes.at(ss.buffer) / ss.elemBytes;
            s.stride = ss.stride;
            s.hotFraction = ss.hotFraction;
            s.hotElems = ss.hotElems;
            s.write = ss.write;
            s.weight = ss.weight;
            streams.push_back(s);
        }

        kernels_.clear();
        for (std::uint32_t k = 0; k < spec_.numKernels; ++k) {
            kernels_.push_back(std::make_unique<MixKernel>(
                shape, streams, spec_.computeDelay));
        }
    }

    const std::vector<std::unique_ptr<Kernel>> &
    kernels() const override
    {
        return kernels_;
    }

  private:
    AppSpec spec_;
    std::vector<std::unique_ptr<Kernel>> kernels_;
};

constexpr auto kAdj = AccessStream::Kind::Adjacent;
constexpr auto kRnd = AccessStream::Kind::Random;
constexpr auto kStr = AccessStream::Kind::Strided;
constexpr auto kPart = AccessStream::Kind::PartitionedRandom;

constexpr std::uint64_t MiB = 1024ull * 1024;

/** The twelve classic applications of Table 3. */
AppSpec
classicSpec(const std::string &name)
{
    if (name == "GUPS") {
        // Giga-updates per second: random 8B read-modify-writes over a
        // large interleaved table.
        return AppSpec{
            "GUPS", "Random",
            {{64 * MiB, BufferPattern::Interleaved}},
            {{0, kRnd, 8, false, 0.55},
             {0, kRnd, 8, true, 0.45}},
            128, 2, 6, 4};
    }
    if (name == "MT") {
        // Matrix transpose: column-gather reads, row-adjacent writes.
        return AppSpec{
            "MT", "Gather",
            {{32 * MiB, BufferPattern::Interleaved},
             {32 * MiB, BufferPattern::Chunked}},
            {{0, kStr, 4, false, 0.3, 256},
             {0, kAdj, 4, false, 0.3},
             {1, kAdj, 4, true, 0.4}},
            128, 2, 6, 4};
    }
    if (name == "MIS") {
        // Maximal independent set: irregular graph reads, few writes.
        return AppSpec{
            "MIS", "Random",
            {{64 * MiB, BufferPattern::Interleaved},
             {16 * MiB, BufferPattern::Chunked}},
            {{0, kRnd, 4, false, 0.5, 1024, 0.35, 16384},
             {1, kAdj, 4, false, 0.35},
             {0, kRnd, 4, true, 0.15}},
            128, 2, 6, 4};
    }
    if (name == "IM2COL") {
        // Image-to-column: streaming reads/writes over chunked tensors.
        return AppSpec{
            "IM2COL", "Adjacent",
            {{32 * MiB, BufferPattern::Chunked},
             {48 * MiB, BufferPattern::Chunked},
             {16 * MiB, BufferPattern::Interleaved}},
            {{0, kAdj, 4, false, 0.55},
             {1, kAdj, 4, true, 0.3},
             {2, kAdj, 4, false, 0.15}},
            128, 2, 20, 6};
    }
    if (name == "ATAX") {
        // y = A^T (A x): streaming reads of A, scatter writes of y,
        // shared vector x.
        return AppSpec{
            "ATAX", "Scatter",
            {{48 * MiB, BufferPattern::Chunked},
             {8 * MiB, BufferPattern::Interleaved},
             {4 * MiB, BufferPattern::Shared}},
            {{0, kAdj, 4, false, 0.5},
             {1, kStr, 4, true, 0.3, 256},
             {2, kRnd, 4, false, 0.2}},
            128, 2, 8, 4};
    }
    if (name == "BS") {
        // Blackscholes: each CTA works on its own option partition.
        return AppSpec{
            "BS", "Partitioned",
            {{32 * MiB, BufferPattern::Chunked},
             {32 * MiB, BufferPattern::Chunked}},
            {{0, kPart, 4, false, 0.7},
             {1, kPart, 4, true, 0.3}},
            128, 2, 6, 10};
    }
    if (name == "MM2") {
        // Two dense matrix multiplications: adjacent A, column-gather B.
        return AppSpec{
            "MM2", "Gather",
            {{32 * MiB, BufferPattern::Chunked},
             {32 * MiB, BufferPattern::Interleaved},
             {32 * MiB, BufferPattern::Chunked}},
            {{0, kAdj, 4, false, 0.55},
             {1, kStr, 4, false, 0.2, 256},
             {2, kAdj, 4, true, 0.25}},
            128, 2, 5, 6, 2};
    }
    if (name == "MVT") {
        // Matrix-vector product and transpose: gather + scatter.
        return AppSpec{
            "MVT", "Scatter,Gather",
            {{48 * MiB, BufferPattern::Interleaved},
             {8 * MiB, BufferPattern::Interleaved}},
            {{0, kStr, 4, false, 0.55, 512},
             {1, kStr, 4, true, 0.25, 128},
             {0, kAdj, 4, false, 0.2}},
            128, 2, 6, 4};
    }
    if (name == "SPMV") {
        // Sparse matrix-vector: random vector gathers, streaming CSR.
        return AppSpec{
            "SPMV", "Random",
            {{64 * MiB, BufferPattern::Interleaved},
             {32 * MiB, BufferPattern::Chunked}},
            {{0, kRnd, 4, false, 0.34, 1024, 0.3, 16384},
             {1, kAdj, 4, false, 0.48},
             {1, kAdj, 4, true, 0.18}},
            128, 2, 6, 4};
    }
    if (name == "PR") {
        // PageRank: random rank reads over the edge frontier.
        return AppSpec{
            "PR", "Random",
            {{64 * MiB, BufferPattern::Interleaved},
             {32 * MiB, BufferPattern::Chunked}},
            {{0, kRnd, 4, false, 0.45, 1024, 0.55, 16384},
             {1, kAdj, 4, false, 0.35},
             {0, kRnd, 4, true, 0.2}},
            128, 2, 4, 4, 2};
    }
    if (name == "SR") {
        // SHOC reduction: strided tree reduction.
        return AppSpec{
            "SR", "Gather",
            {{48 * MiB, BufferPattern::Interleaved},
             {8 * MiB, BufferPattern::Chunked}},
            {{0, kStr, 4, false, 0.32, 128},
             {0, kAdj, 4, false, 0.48},
             {1, kAdj, 4, true, 0.2}},
            128, 2, 6, 4};
    }
    if (name == "SYR2K") {
        // Symmetric rank-2k update: dense streaming with some gather.
        return AppSpec{
            "SYR2K", "Adjacent",
            {{32 * MiB, BufferPattern::Chunked},
             {32 * MiB, BufferPattern::Interleaved},
             {32 * MiB, BufferPattern::Chunked}},
            {{0, kAdj, 4, false, 0.5},
             {1, kStr, 4, false, 0.05, 256},
             {2, kAdj, 4, false, 0.28},
             {2, kAdj, 4, true, 0.17}},
            128, 2, 20, 6};
    }
    NC_FATAL("unknown classic workload ", name);
}

/**
 * A data-parallel DNN training step: per-layer forward/backward kernels
 * reading replicated weights and local activations, followed by a
 * gradient exchange over interleaved pages (the all-reduce).
 */
AppSpec
dnnSpec(const std::string &name)
{
    if (name == "LENET") {
        return AppSpec{
            "LENET", "-",
            {{8 * MiB, BufferPattern::Chunked},   // weights (replica)
             {16 * MiB, BufferPattern::Chunked},  // activations
             {8 * MiB, BufferPattern::Interleaved}}, // gradients
            {{0, kAdj, 4, false, 0.4},
             {1, kAdj, 4, false, 0.3},
             {1, kAdj, 4, true, 0.1},
             {2, kAdj, 4, false, 0.1},
             {2, kAdj, 4, true, 0.1}},
            64, 2, 10, 16, 4};
    }
    if (name == "VGG16") {
        return AppSpec{
            "VGG16", "-",
            {{48 * MiB, BufferPattern::Chunked},
             {32 * MiB, BufferPattern::Chunked},
             {48 * MiB, BufferPattern::Interleaved}},
            {{0, kAdj, 4, false, 0.22},
             {1, kAdj, 4, false, 0.18},
             {1, kAdj, 4, true, 0.1},
             {2, kAdj, 4, false, 0.22},
             {2, kAdj, 4, true, 0.28}},
            96, 2, 10, 8, 8};
    }
    if (name == "RNET18") {
        return AppSpec{
            "RNET18", "-",
            {{24 * MiB, BufferPattern::Chunked},
             {32 * MiB, BufferPattern::Chunked},
             {24 * MiB, BufferPattern::Interleaved}},
            {{0, kAdj, 4, false, 0.28},
             {1, kAdj, 4, false, 0.22},
             {1, kAdj, 4, true, 0.1},
             {2, kAdj, 4, false, 0.17},
             {2, kAdj, 4, true, 0.23}},
            64, 2, 10, 10, 6};
    }
    NC_FATAL("unknown DNN workload ", name);
}

} // namespace

std::vector<std::string>
workloadNames()
{
    return {"GUPS", "MT",   "MIS",   "IM2COL", "ATAX",
            "BS",   "MM2",  "MVT",   "SPMV",   "PR",
            "SR",   "SYR2K", "VGG16", "LENET",  "RNET18"};
}

WorkloadPtr
makeWorkload(const std::string &name)
{
    if (name == "VGG16" || name == "LENET" || name == "RNET18")
        return std::make_unique<MixWorkload>(dnnSpec(name));
    if (name == "GEMM")
        return makeGemmWorkload();
    return std::make_unique<MixWorkload>(classicSpec(name));
}

std::vector<WorkloadPtr>
makeAllWorkloads()
{
    std::vector<WorkloadPtr> all;
    for (const auto &name : workloadNames())
        all.push_back(makeWorkload(name));
    return all;
}

WorkloadPtr
makeGemmWorkload()
{
    // Large GEMM kernels (Figure 17): dominated by column gathers whose
    // per-line byte needs straddle the 4/8/16B granularity choices.
    AppSpec spec{
        "GEMM", "Gather",
        {{64 * MiB, BufferPattern::Chunked},
         {64 * MiB, BufferPattern::Interleaved},
         {32 * MiB, BufferPattern::Chunked}},
        {{0, kAdj, 8, false, 0.3},
         {1, kStr, 8, false, 0.5, 256},
         {2, kAdj, 8, true, 0.2}},
        128, 2, 6, 6, 2};
    return std::make_unique<MixWorkload>(std::move(spec));
}

} // namespace netcrafter::workloads
