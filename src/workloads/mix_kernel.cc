#include "src/workloads/mix_kernel.hh"

#include "src/sim/logging.hh"

namespace netcrafter::workloads {

MixKernel::MixKernel(KernelInfo shape, std::vector<AccessStream> streams,
                     std::uint32_t compute_delay)
    : shape_(shape), streams_(std::move(streams)),
      computeDelay_(compute_delay)
{
    NC_ASSERT(!streams_.empty(), "MixKernel needs at least one stream");
    for (const auto &s : streams_) {
        NC_ASSERT(s.elems > 0, "stream over empty buffer");
        totalWeight_ += s.weight;
    }
}

const AccessStream &
MixKernel::pickStream(Pcg32 &rng) const
{
    double r = rng.uniform() * totalWeight_;
    for (const auto &s : streams_) {
        if (r < s.weight)
            return s;
        r -= s.weight;
    }
    return streams_.back();
}

bool
MixKernel::generate(std::uint32_t cta, std::uint32_t wave,
                    std::uint32_t idx, Pcg32 &rng, Instruction &out) const
{
    if (cta >= shape_.numCtas || wave >= shape_.wavesPerCta ||
        idx >= shape_.instructionsPerWave)
        return false;

    const AccessStream &s = pickStream(rng);
    out = Instruction();
    out.elemBytes = s.elemBytes;
    out.isWrite = s.write;
    out.computeDelay = computeDelay_;

    // A stable linear position for this wavefront instruction, used by
    // the deterministic (non-random) patterns.
    const std::uint64_t wave_linear =
        static_cast<std::uint64_t>(cta) * shape_.wavesPerCta + wave;
    const std::uint64_t pos =
        wave_linear * shape_.instructionsPerWave + idx;

    switch (s.kind) {
      case AccessStream::Kind::Adjacent: {
        const std::uint64_t start =
            (pos * kWavefrontSize) % s.elems;
        for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane) {
            const std::uint64_t e = (start + lane) % s.elems;
            out.addrs[lane] = s.base + e * s.elemBytes;
        }
        break;
      }
      case AccessStream::Kind::Random: {
        const std::uint32_t group =
            std::max<std::uint32_t>(1, s.lanesPerPage);
        const std::uint64_t elems_per_page = kPageBytes / s.elemBytes;
        const std::uint64_t pages =
            std::max<std::uint64_t>(1, s.elems / elems_per_page);
        const std::uint64_t hot_pages = std::max<std::uint64_t>(
            1, std::min(s.hotElems, s.elems) / elems_per_page);
        std::uint64_t page = 0;
        for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane) {
            if (lane % group == 0) {
                if (s.hotFraction > 0 && rng.chance(s.hotFraction))
                    page = rng.next64() % hot_pages;
                else
                    page = rng.next64() % pages;
            }
            const std::uint64_t e = page * elems_per_page +
                                    rng.next64() % elems_per_page;
            out.addrs[lane] = s.base + (e % s.elems) * s.elemBytes;
        }
        break;
      }
      case AccessStream::Kind::Strided: {
        const std::uint64_t start = (pos * 7919) % s.elems;
        for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane) {
            const std::uint64_t e = (start + lane * s.stride) % s.elems;
            out.addrs[lane] = s.base + e * s.elemBytes;
        }
        break;
      }
      case AccessStream::Kind::PartitionedRandom: {
        const std::uint32_t group =
            std::max<std::uint32_t>(1, s.lanesPerPage);
        const std::uint64_t chunk =
            std::max<std::uint64_t>(1, s.elems / shape_.numCtas);
        const std::uint64_t lo = chunk * cta;
        std::uint64_t anchor = 0;
        for (std::uint32_t lane = 0; lane < kWavefrontSize; ++lane) {
            if (lane % group == 0)
                anchor = lo + rng.next64() % chunk;
            const std::uint64_t page_lo =
                alignDown(anchor * s.elemBytes, kPageBytes) /
                s.elemBytes;
            const std::uint64_t elems_per_page =
                kPageBytes / s.elemBytes;
            const std::uint64_t e =
                page_lo + rng.next64() % elems_per_page;
            out.addrs[lane] = s.base + (e % s.elems) * s.elemBytes;
        }
        break;
      }
    }
    return true;
}

} // namespace netcrafter::workloads
