/**
 * @file
 * Workload model interface. The paper evaluates real OpenCL kernels on
 * MGPUSim; this reproduction models each application as a generator of
 * per-wavefront memory instructions whose access pattern, footprint,
 * data sharing, and bytes-per-wavefront statistics match the app class
 * (Table 3). Compute is abstracted as inter-instruction delay; the full
 * memory path (coalescer, L1/TLB, network, L2, DRAM) is simulated
 * cycle-level.
 */

#ifndef NETCRAFTER_WORKLOADS_WORKLOAD_HH
#define NETCRAFTER_WORKLOADS_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace netcrafter::workloads {

/** One wavefront memory instruction: 64 per-thread addresses. */
struct Instruction
{
    /** Per-thread addresses; kAddrInvalid marks inactive lanes. */
    std::array<Addr, kWavefrontSize> addrs;

    /** Bytes accessed per thread (4 or 8 typical). */
    std::uint8_t elemBytes = 4;

    bool isWrite = false;

    /** Compute cycles the wavefront spends before the next instruction. */
    std::uint32_t computeDelay = 4;

    Instruction() { addrs.fill(kAddrInvalid); }
};

/** Shape of one kernel launch. */
struct KernelInfo
{
    std::uint32_t numCtas = 0;
    std::uint32_t wavesPerCta = 1;
    std::uint32_t instructionsPerWave = 0;
};

/**
 * One kernel of a workload. Instruction generation must be a pure
 * function of (cta, wave, index, rng) so results are deterministic
 * regardless of simulation interleaving; each wavefront gets its own
 * seeded rng stream.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    virtual KernelInfo info() const = 0;

    /**
     * LASP CTA scheduling: the home GPU this CTA should run on
     * (Section 2.2). The default block-distributes CTAs.
     */
    virtual GpuId
    ctaHome(std::uint32_t cta, std::uint32_t num_gpus) const
    {
        const std::uint32_t per_gpu =
            std::max(1u, (info().numCtas + num_gpus - 1) / num_gpus);
        return std::min(cta / per_gpu, num_gpus - 1);
    }

    /**
     * Generate instruction @p idx of wavefront (@p cta, @p wave).
     * @return false when the wavefront has no instruction @p idx.
     */
    virtual bool generate(std::uint32_t cta, std::uint32_t wave,
                          std::uint32_t idx, Pcg32 &rng,
                          Instruction &out) const = 0;
};

/** Data placement directives a workload registers for its buffers. */
class PlacementDirectory
{
  public:
    virtual ~PlacementDirectory() = default;

    /** Place the page containing @p vaddr on @p owner. */
    virtual void place(Addr vaddr, GpuId owner) = 0;
};

/** Build-time context handed to Workload::build. */
struct BuildContext
{
    std::uint32_t numGpus = 4;

    /** Problem size multiplier (1.0 = default evaluation size). */
    double scale = 1.0;

    /** Seed for the workload's own randomized construction. */
    std::uint64_t seed = 1;

    PlacementDirectory *placement = nullptr;

    /** Bump allocator for virtual address space. */
    Addr nextVa = 0x1'0000'0000ull;

    /** Allocate @p bytes of page-aligned virtual address space. */
    Addr
    alloc(std::uint64_t bytes)
    {
        Addr base = nextVa;
        nextVa = alignUp(nextVa + bytes, kPageBytes);
        return base;
    }
};

/** A complete application: placement plus a sequence of kernels. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name as in Table 3 (e.g. "GUPS"). */
    virtual std::string name() const = 0;

    /** Access pattern label as in Table 3 (e.g. "Random"). */
    virtual std::string pattern() const = 0;

    /**
     * Allocate buffers, register LASP data placement, and construct the
     * kernel sequence. Called exactly once before simulation.
     */
    virtual void build(BuildContext &ctx) = 0;

    /** Kernels executed in order, with a barrier between them. */
    virtual const std::vector<std::unique_ptr<Kernel>> &kernels() const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

/** Factory returning a fresh instance of every Table 3 application. */
std::vector<WorkloadPtr> makeAllWorkloads();

/** Factory by Table 3 abbreviation (GUPS, MT, ... RNET18). */
WorkloadPtr makeWorkload(const std::string &name);

/** Names of all Table 3 applications, in the paper's order. */
std::vector<std::string> workloadNames();

/** Large-GEMM workload used in the Figure 17 granularity study. */
WorkloadPtr makeGemmWorkload();

} // namespace netcrafter::workloads

#endif // NETCRAFTER_WORKLOADS_WORKLOAD_HH
