/**
 * @file
 * A composable kernel generator. Each Table 3 application is modelled as
 * one or more MixKernels: every wavefront instruction draws one access
 * stream (weighted) and generates 64 per-thread addresses in that
 * stream's pattern. The four stream kinds reproduce the paper's access
 * classes (random / adjacent / gather-scatter strided / partitioned) and
 * with LASP placement produce the app-class remote-traffic and
 * bytes-per-line profiles of Figures 6, 7 and 9.
 */

#ifndef NETCRAFTER_WORKLOADS_MIX_KERNEL_HH
#define NETCRAFTER_WORKLOADS_MIX_KERNEL_HH

#include <cstdint>
#include <vector>

#include "src/workloads/workload.hh"

namespace netcrafter::workloads {

/** One logical data-structure access stream within a kernel. */
struct AccessStream
{
    enum class Kind : std::uint8_t
    {
        /** All 64 lanes hit consecutive elements (full-line usage). */
        Adjacent,

        /** Each lane hits a uniformly random element. */
        Random,

        /**
         * Lanes stride through the buffer (column accesses / gather /
         * scatter): 64 distinct lines, few bytes needed per line.
         */
        Strided,

        /**
         * Random accesses confined to this CTA's chunk of the buffer —
         * with chunked placement these stay on the home GPU.
         */
        PartitionedRandom,
    };

    Kind kind = Kind::Adjacent;

    /** Buffer base virtual address. */
    Addr base = 0;

    /** Elements in the buffer. */
    std::uint64_t elems = 0;

    /** Bytes per element (4 or 8). */
    std::uint8_t elemBytes = 4;

    /** Elements between lanes for Strided. */
    std::uint64_t stride = 1024;

    /**
     * For Random/PartitionedRandom: lanes per randomly chosen page.
     * Groups of this many lanes land on distinct random lines of one
     * page, modelling the page-level locality real irregular kernels
     * retain (raising the data:PTW traffic ratio toward Figure 9's).
     */
    std::uint8_t lanesPerPage = 8;

    /**
     * For Random: probability an access group targets the hot region
     * (the first hotElems elements). Hot lines get revisited at varying
     * offsets, giving full-line fills cross-access spatial reuse that
     * sector-everywhere fills forfeit (the Figures 14/16 contrast
     * between Trimming and the sector-cache baseline).
     */
    double hotFraction = 0;

    /** Elements in the hot region. */
    std::uint64_t hotElems = 64 * 1024;

    bool write = false;

    /** Relative probability an instruction uses this stream. */
    double weight = 1.0;
};

/** A kernel defined by its shape and weighted access streams. */
class MixKernel : public Kernel
{
  public:
    MixKernel(KernelInfo shape, std::vector<AccessStream> streams,
              std::uint32_t compute_delay = 8);

    KernelInfo info() const override { return shape_; }

    bool generate(std::uint32_t cta, std::uint32_t wave,
                  std::uint32_t idx, Pcg32 &rng,
                  Instruction &out) const override;

  private:
    const AccessStream &pickStream(Pcg32 &rng) const;

    KernelInfo shape_;
    std::vector<AccessStream> streams_;
    std::uint32_t computeDelay_;
    double totalWeight_ = 0;
};

} // namespace netcrafter::workloads

#endif // NETCRAFTER_WORKLOADS_MIX_KERNEL_HH
