#include "src/stats/quantile.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/sim/logging.hh"

namespace netcrafter::stats {

namespace {

/** log2(kLinearMax): exponent of the first log-bucketed octave. */
constexpr std::uint32_t kLinearBits = 7;

/** log2(kSubBuckets). */
constexpr std::uint32_t kSubBits = 6;

} // namespace

std::uint32_t
QuantileSketch::numBuckets()
{
    // Linear region + kSubBuckets per octave for exponents
    // [kLinearBits, kMaxExponent).
    return kLinearMax + (kMaxExponent - kLinearBits) * kSubBuckets;
}

QuantileSketch::QuantileSketch() : counts_(numBuckets(), 0) {}

std::uint32_t
QuantileSketch::bucketIndex(std::uint64_t value)
{
    if (value < kLinearMax)
        return static_cast<std::uint32_t>(value);
    // value in [2^exp, 2^(exp+1)); the top kSubBits bits below the
    // leading one select the sub-bucket.
    std::uint32_t exp = 63 - static_cast<std::uint32_t>(
                                 std::countl_zero(value));
    if (exp >= kMaxExponent)
        exp = kMaxExponent - 1; // clamp absurd samples to the top octave
    const std::uint32_t sub = static_cast<std::uint32_t>(
        (value >> (exp - kSubBits)) & (kSubBuckets - 1));
    return kLinearMax + (exp - kLinearBits) * kSubBuckets + sub;
}

std::uint64_t
QuantileSketch::bucketUpperBound(std::uint32_t index)
{
    if (index < kLinearMax)
        return index;
    const std::uint32_t rel = index - kLinearMax;
    const std::uint32_t exp = kLinearBits + rel / kSubBuckets;
    const std::uint32_t sub = rel % kSubBuckets;
    const std::uint64_t base = 1ull << exp;
    const std::uint64_t width = base >> kSubBits;
    return base + (static_cast<std::uint64_t>(sub) + 1) * width - 1;
}

void
QuantileSketch::record(std::uint64_t value)
{
    ++counts_[bucketIndex(value)];
    sum_ += value;
    min_ = count_ == 0 ? value : std::min(min_, value);
    max_ = count_ == 0 ? value : std::max(max_, value);
    ++count_;
}

double
QuantileSketch::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
QuantileSketch::quantile(double q) const
{
    NC_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: ", q);
    if (count_ == 0)
        return 0;
    // Rank of the requested quantile, 1-based: the smallest rank r
    // such that at least a fraction q of the samples are <= sample r.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return max_; // unreachable: seen == count_ >= rank at the end
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    sum_ += other.sum_;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
    count_ += other.count_;
}

void
QuantileSketch::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

} // namespace netcrafter::stats
