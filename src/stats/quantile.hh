/**
 * @file
 * Streaming quantile estimation for SLO-grade latency percentiles
 * (p50/p95/p99/p999). The sketch is an HdrHistogram-style log-bucketed
 * histogram over non-negative values: exact for values below 128 and
 * within one part in 64 (<1.6% relative error, always rounding *up*)
 * above, with a fixed bucket layout so two sketches merge by
 * element-wise count addition.
 *
 * Why this estimator and not P^2 / t-digest: merges must be exact and
 * order-independent. The sharded engine partitions GPUs across threads
 * and the serving subsystem records each request's latency on its home
 * shard; percentiles reported after a run must be bit-identical for
 * every shard count. Integer bucket counts merge associatively and
 * commutatively, so a quantile computed from the merged counts cannot
 * depend on which shard (or merge order) recorded what. Interpolating
 * sketches cannot make that guarantee.
 */

#ifndef NETCRAFTER_STATS_QUANTILE_HH
#define NETCRAFTER_STATS_QUANTILE_HH

#include <cstdint>
#include <vector>

namespace netcrafter::stats {

/**
 * Fixed-layout log-bucketed quantile sketch for values in
 * [0, 2^48). Values are recorded as unsigned integers (latencies in
 * ticks); quantile() returns the inclusive upper bound of the bucket
 * holding the requested rank, so estimates never understate a latency
 * and are monotone in q by construction.
 */
class QuantileSketch
{
  public:
    /** Values below this are their own bucket (exact). */
    static constexpr std::uint64_t kLinearMax = 128;

    /** Sub-buckets per power-of-two octave above kLinearMax. */
    static constexpr std::uint32_t kSubBuckets = 64;

    /** Highest representable exponent; larger samples clamp. */
    static constexpr std::uint32_t kMaxExponent = 48;

    QuantileSketch();

    /** Record one sample (a latency in ticks). */
    void record(std::uint64_t value);

    /** Samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Exact arithmetic mean of the recorded samples (0 when empty). */
    double mean() const;

    /** Smallest / largest recorded sample (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /**
     * The q-quantile (q in [0, 1]) as the upper bound of the bucket
     * containing rank ceil(q * count): at least q of the samples are
     * <= the returned value. 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    /**
     * Fold @p other into this sketch. Exact: counts add bucket-wise,
     * so merge order can never change a quantile. The running sum
     * behind mean() is an integer too, so even the mean is
     * merge-order-invariant.
     */
    void merge(const QuantileSketch &other);

    void reset();

    /** Index of the bucket @p value lands in (exposed for tests). */
    static std::uint32_t bucketIndex(std::uint64_t value);

    /** Inclusive upper bound of bucket @p index (exposed for tests). */
    static std::uint64_t bucketUpperBound(std::uint32_t index);

    /** Total buckets in the fixed layout. */
    static std::uint32_t numBuckets();

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;

    /** Integer sum of samples; exact for > 2^16 samples of 2^48. */
    unsigned __int128 sum_ = 0;

    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace netcrafter::stats

#endif // NETCRAFTER_STATS_QUANTILE_HH
