#include "src/stats/stats.hh"

#include <iomanip>

namespace netcrafter::stats {

std::uint64_t
Registry::sumCounters(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second.value();
    }
    return sum;
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " = " << c.value() << "\n";
    for (const auto &[name, a] : averages_) {
        os << name << " : mean=" << a.mean() << " min=" << a.min()
           << " max=" << a.max() << " n=" << a.count() << "\n";
    }
    for (const auto &[name, d] : distributions_) {
        os << name << " : total=" << d.total();
        for (std::size_t i = 0; i < d.bounds().size(); ++i) {
            os << " <=" << d.bounds()[i] << ":" << std::setprecision(4)
               << d.fraction(i);
        }
        os << " over:" << d.fraction(d.bounds().size()) << "\n";
    }
}

} // namespace netcrafter::stats
