/**
 * @file
 * Lightweight statistics primitives: scalar counters, averages, and
 * fixed-bucket distributions, grouped into named registries so harness
 * code can dump everything a component recorded.
 */

#ifndef NETCRAFTER_STATS_STATS_HH
#define NETCRAFTER_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace netcrafter::stats {

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max of a sampled quantity (e.g. latency). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Fold @p other into this average. Merge order matters for the
     * floating-point sum, so callers must merge in a deterministic
     * order (e.g. GPU id) when reproducibility is required.
     */
    void
    merge(const Average &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        sum_ += other.sum_;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * A histogram over user-supplied bucket upper bounds. A sample v lands in
 * the first bucket whose bound is >= v; samples above the last bound land
 * in the overflow bucket.
 */
class Distribution
{
  public:
    Distribution() = default;

    explicit Distribution(std::vector<double> upper_bounds)
        : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0)
    {}

    void
    sample(double v)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && v > bounds_[i])
            ++i;
        ++counts_[i];
        ++total_;
    }

    std::uint64_t total() const { return total_; }
    const std::vector<double> &bounds() const { return bounds_; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }

    /** Fold @p other (with identical bucket bounds) into this one. */
    void
    merge(const Distribution &other)
    {
        if (other.counts_.empty())
            return;
        if (counts_.empty()) {
            *this = other;
            return;
        }
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_.at(i);
        total_ += other.total_;
    }

    /** Fraction of samples in bucket @p i, 0 if no samples. */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(counts_.at(i)) / total_ : 0.0;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
    }

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A flat name -> value registry. Components register the statistics they
 * expose; the harness dumps or queries them after a run. Names are
 * hierarchical by convention ("gpu0.l1.misses").
 */
class Registry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Average &average(const std::string &name) { return averages_[name]; }

    Distribution &
    distribution(const std::string &name, std::vector<double> bounds = {})
    {
        auto it = distributions_.find(name);
        if (it == distributions_.end()) {
            it = distributions_
                     .emplace(name, Distribution(std::move(bounds)))
                     .first;
        }
        return it->second;
    }

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumCounters(const std::string &prefix) const;

    /** Dump every statistic in a stable, human-readable format. */
    void dump(std::ostream &os) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }

    void
    reset()
    {
        counters_.clear();
        averages_.clear();
        distributions_.clear();
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace netcrafter::stats

#endif // NETCRAFTER_STATS_STATS_HH
