/**
 * @file
 * IntervalSampler: folds a merged trace-record stream into fixed-period
 * time-series rows (link utilization, walk concurrency, controller
 * decision rates per interval).
 *
 * Sampling is a post-processing step over the canonical merged stream
 * rather than a simulated event: scheduling sampler events inside the
 * engines would perturb the event census and make results depend on the
 * shard count. Folding the already shard-invariant records keeps the
 * CSV byte-identical across 1/2/4 shards for free.
 */

#ifndef NETCRAFTER_OBS_INTERVAL_SAMPLER_HH
#define NETCRAFTER_OBS_INTERVAL_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/trace.hh"

namespace netcrafter::obs {

/** One sampled table: column names plus one row per interval. */
struct TimeSeries
{
    Tick interval = 0;
    std::vector<std::string> columns; ///< excludes interval_start
    struct Row
    {
        Tick intervalStart = 0;
        std::vector<std::uint64_t> values; ///< parallel to columns
    };
    std::vector<Row> rows;

    bool empty() const { return rows.empty(); }
};

/**
 * Classifies lanes by the record kinds seen on them and derives one
 * column per (lane, metric):
 *  - wire lanes:       .flits .wireBytes .usedBytes .stitchedPieces
 *  - GMMU lanes:       .walksStarted .walksCompleted .walksInFlight
 *  - controller lanes: .poolingArms .ejects .stitches .trims
 *  - RDMA lanes:       .packetsInjected .packetsDelivered
 * Count columns are per-interval deltas; walksInFlight is a gauge read
 * at each interval's end and carried across empty intervals.
 */
class IntervalSampler
{
  public:
    explicit IntervalSampler(Tick interval) : interval_(interval) {}

    /**
     * Sample @p records (must already be merged/sorted by tick) against
     * the sink's @p lane_names. Returns an empty series when the
     * interval is 0 or there are no records.
     */
    TimeSeries sample(const std::vector<TraceRecord> &records,
                      const std::vector<std::string> &lane_names) const;

  private:
    Tick interval_;
};

/** Write @p series as CSV: interval_start, then its columns in order. */
void writeTimeSeriesCsv(const TimeSeries &series, std::ostream &os);

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_INTERVAL_SAMPLER_HH
