#include "src/obs/trace_buffer.hh"

#include <algorithm>
#include <cstdlib>

#include "src/sim/logging.hh"

namespace netcrafter::obs {

const char *
traceStageName(TraceStage stage)
{
    switch (stage) {
      case TraceStage::Coalesce: return "coalesce";
      case TraceStage::L1Lookup: return "l1Lookup";
      case TraceStage::L1Miss: return "l1Miss";
      case TraceStage::TlbLookup: return "tlbLookup";
      case TraceStage::TlbMiss: return "tlbMiss";
      case TraceStage::WalkStart: return "walkStart";
      case TraceStage::WalkEnd: return "walkEnd";
      case TraceStage::RdmaInject: return "rdmaInject";
      case TraceStage::RdmaDeliver: return "rdmaDeliver";
      case TraceStage::SwitchRoute: return "switchRoute";
      case TraceStage::WireDepart: return "wireDepart";
      case TraceStage::WireArrive: return "wireArrive";
      case TraceStage::L2Lookup: return "l2Lookup";
      case TraceStage::L2Miss: return "l2Miss";
      case TraceStage::DramAccess: return "dramAccess";
      case TraceStage::Complete: return "complete";
      case TraceStage::CtrlArm: return "ctrlArm";
      case TraceStage::CtrlEject: return "ctrlEject";
      case TraceStage::CtrlStitch: return "ctrlStitch";
      case TraceStage::CtrlTrim: return "ctrlTrim";
      case TraceStage::ServeArrive: return "serveArrive";
      case TraceStage::ServeRetire: return "serveRetire";
      case TraceStage::FlowTransit: return "flowTransit";
      case TraceStage::FlowDeliver: return "flowDeliver";
    }
    return "(invalid)";
}

const TraceOptions &
TraceOptions::fromEnv()
{
    static const TraceOptions opts = [] {
        TraceOptions o;
        const char *out = std::getenv("NETCRAFTER_TRACE_OUT");
        const char *level = std::getenv("NETCRAFTER_TRACE_LEVEL");
        const char *interval = std::getenv("NETCRAFTER_SAMPLE_INTERVAL");
        if (out != nullptr)
            o.outDir = out;
        if (interval != nullptr) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(interval, &end, 10);
            if (end == interval || *end != '\0') {
                NC_FATAL("NETCRAFTER_SAMPLE_INTERVAL must be a "
                         "non-negative tick count, got '", interval, "'");
            }
            o.sampleInterval = static_cast<Tick>(v);
        }
        if (level != nullptr)
            o.level = parseLevel(level);
        else if (!o.outDir.empty() || o.sampleInterval > 0)
            o.level = TraceLevel::Packets;
        return o;
    }();
    return opts;
}

TraceLevel
TraceOptions::parseLevel(const std::string &text)
{
    if (text == "off")
        return TraceLevel::Off;
    if (text == "links")
        return TraceLevel::Links;
    if (text == "packets")
        return TraceLevel::Packets;
    if (text == "full")
        return TraceLevel::Full;
    NC_FATAL("unknown trace level '", text,
             "' (expected off|links|packets|full)");
}

const char *
TraceOptions::levelName(TraceLevel level)
{
    switch (level) {
      case TraceLevel::Off: return "off";
      case TraceLevel::Links: return "links";
      case TraceLevel::Packets: return "packets";
      case TraceLevel::Full: return "full";
    }
    return "(invalid)";
}

void
TraceBuffer::clear()
{
    records_.clear();
    dropped_ = 0;
}

void
TraceBuffer::noteDrop()
{
    ++dropped_;
    NC_WARN_ONCE("trace buffer full (cap ", cap_,
                 " records/shard): dropping records; raise "
                 "TraceOptions::bufferCap or lower the trace level. "
                 "Byte-identity across shard counts no longer holds for "
                 "this run");
}

TraceSink::TraceSink(const TraceOptions &opts, unsigned shards)
    : opts_(opts)
{
    buffers_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        buffers_.push_back(
            std::make_unique<TraceBuffer>(opts_.level, opts_.bufferCap));
    }
    laneNames_.push_back("(unknown)"); // lane 0: tracing-off sentinel
}

std::uint16_t
TraceSink::internLane(const std::string &name)
{
    const auto it = laneIds_.find(name);
    if (it != laneIds_.end())
        return it->second;
    NC_ASSERT(laneNames_.size() < 0xffff, "lane table overflow");
    const auto id = static_cast<std::uint16_t>(laneNames_.size());
    laneNames_.push_back(name);
    laneIds_.emplace(name, id);
    return id;
}

std::vector<TraceRecord>
TraceSink::merged() const
{
    std::vector<TraceRecord> out;
    out.reserve(totalRecords());
    for (const auto &buf : buffers_)
        out.insert(out.end(), buf->records().begin(), buf->records().end());
    // Records comparing equal are byte-identical, so an unstable sort
    // still yields one canonical stream for every shard count.
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
TraceSink::totalRecords() const
{
    std::uint64_t n = 0;
    for (const auto &buf : buffers_)
        n += buf->records().size();
    return n;
}

std::uint64_t
TraceSink::totalDropped() const
{
    std::uint64_t n = 0;
    for (const auto &buf : buffers_)
        n += buf->dropped();
    return n;
}

std::uint16_t
internLane(sim::Engine &engine, const std::string &name)
{
    TraceSink *sink = engine.traceSink();
    return sink != nullptr ? sink->internLane(name) : 0;
}

} // namespace netcrafter::obs
