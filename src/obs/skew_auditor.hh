/**
 * @file
 * SkewAuditor: trace-based accuracy auditor for relaxed-sync runs.
 *
 * A Relaxed run lets shards free-run up to the skew bound past the
 * slowest shard, and slots cross-shard arrivals whose stamped tick is
 * already in the receiver's past at the receiver's current tick. Two
 * properties must survive that relaxation exactly, and both are
 * checkable from the merged trace stream alone:
 *
 *  - per-channel FIFO order: on every directed wire lane, flits arrive
 *    in exactly the order they departed — late-slotting moves arrivals
 *    forward in time but never reorders a channel;
 *  - conservation: every departed flit arrives (no loss, no
 *    duplication), so the per-lane depart and arrive multisets match.
 *
 * The auditor folds one pass over the canonical merged stream (sorted
 * TraceRecords are shard-count independent, see trace.hh) and reports
 * the violation counts plus a record digest. The digest is an FNV-1a
 * fold over every record's fields: two runs produced the same trace iff
 * the digests and record counts match, which is how the skew-bound-0
 * bit-identity gate compares a Relaxed(S=0) run against Strict without
 * holding both streams in memory.
 */

#ifndef NETCRAFTER_OBS_SKEW_AUDITOR_HH
#define NETCRAFTER_OBS_SKEW_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "src/obs/trace.hh"

namespace netcrafter::obs {

/** What one auditSkew() fold observed. */
struct SkewAuditReport
{
    /** Records folded (all kinds). */
    std::uint64_t records = 0;

    /** WireDepart / WireArrive stage records seen. */
    std::uint64_t wireDeparts = 0;
    std::uint64_t wireArrives = 0;

    /** Distinct wire lanes that carried at least one flit. */
    std::uint64_t lanesAudited = 0;

    /** Arrivals that violated their lane's departure order — must be
     *  zero under both Strict and Relaxed execution. */
    std::uint64_t reorderedArrivals = 0;

    /** Arrivals with no matching departure, plus departures that never
     *  arrived — must both be zero after a drained run. */
    std::uint64_t orphanArrivals = 0;
    std::uint64_t undeliveredDeparts = 0;

    /** Arrivals stamped before their departure tick — impossible by
     *  construction; non-zero means a corrupted stream. */
    std::uint64_t negativeLatencies = 0;

    /** Max and summed wire latency (arrive - depart) over all flits,
     *  in ticks. Late-slotting shows up here as added latency. */
    std::uint64_t maxWireLatency = 0;
    std::uint64_t totalWireLatencyTicks = 0;

    /** FNV-1a digest over every record's fields, in stream order. */
    std::uint64_t digest = 0;

    /** True when no FIFO, conservation, or causality violation was
     *  observed. */
    bool
    clean() const
    {
        return reorderedArrivals == 0 && orphanArrivals == 0 &&
               undeliveredDeparts == 0 && negativeLatencies == 0;
    }
};

/**
 * Fold @p merged (the canonical sorted stream from TraceSink::merged())
 * and report per-lane FIFO/conservation violations, wire-latency
 * extrema, and the stream digest. Requires at least TraceLevel::Links
 * so WireDepart/WireArrive records exist; with an empty stream the
 * report is all-zero (and clean()).
 */
SkewAuditReport auditSkew(const std::vector<TraceRecord> &merged);

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_SKEW_AUDITOR_HH
