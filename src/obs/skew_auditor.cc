#include "src/obs/skew_auditor.hh"

#include <algorithm>
#include <unordered_map>

namespace netcrafter::obs {

namespace {

/** FNV-1a fold of one 64-bit word into @p h. */
inline std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (i * 8)) & 0xffu;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Per-lane audit state. Arrivals sharing one tick are a simultaneous
 * batch with no order among them (the canonical sort breaks the tie by
 * packet id on both ends), so FIFO is judged across ticks: an arrival
 * reorders its lane iff a flit that departed after it already arrived
 * at a strictly earlier tick.
 */
struct LaneState
{
    /** Outstanding departures: flit key -> (departure order, tick). */
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint64_t, Tick>>
        outstanding;

    std::uint64_t nextDepartSeq = 0;

    Tick batchTick = 0;
    std::uint64_t maxSeqBeforeBatch = 0;
    std::uint64_t maxSeqInBatch = 0;
    bool sawArrival = false;
    bool anyEarlierBatch = false;
};

/** Flit identity within a lane: packet id and flit sequence number. */
inline std::uint64_t
flitKey(const TraceRecord &rec)
{
    return (rec.id << 16) | (rec.b & 0xffffu);
}

} // namespace

SkewAuditReport
auditSkew(const std::vector<TraceRecord> &merged)
{
    SkewAuditReport report;
    std::unordered_map<std::uint16_t, LaneState> lanes;

    for (const TraceRecord &rec : merged) {
        ++report.records;
        report.digest = fnv1a(report.digest, rec.tick);
        report.digest = fnv1a(report.digest, rec.id);
        report.digest = fnv1a(
            report.digest,
            (static_cast<std::uint64_t>(rec.a) << 32) | rec.b);
        report.digest = fnv1a(
            report.digest,
            (static_cast<std::uint64_t>(rec.lane) << 16) |
                (static_cast<std::uint64_t>(rec.kind) << 8) |
                rec.stage);

        const auto stage = static_cast<TraceStage>(rec.stage);
        if (stage == TraceStage::WireDepart) {
            ++report.wireDeparts;
            LaneState &lane = lanes[rec.lane];
            lane.outstanding.emplace(
                flitKey(rec),
                std::make_pair(lane.nextDepartSeq++, rec.tick));
        } else if (stage == TraceStage::WireArrive) {
            ++report.wireArrives;
            LaneState &lane = lanes[rec.lane];
            const auto it = lane.outstanding.find(flitKey(rec));
            if (it == lane.outstanding.end()) {
                ++report.orphanArrivals;
                continue;
            }
            const auto [depart_seq, depart_tick] = it->second;
            lane.outstanding.erase(it);

            if (rec.tick < depart_tick) {
                ++report.negativeLatencies;
            } else {
                const std::uint64_t latency = rec.tick - depart_tick;
                report.maxWireLatency =
                    std::max(report.maxWireLatency, latency);
                report.totalWireLatencyTicks += latency;
            }

            if (!lane.sawArrival) {
                lane.sawArrival = true;
                lane.batchTick = rec.tick;
                lane.maxSeqInBatch = depart_seq;
            } else if (rec.tick != lane.batchTick) {
                lane.maxSeqBeforeBatch =
                    lane.anyEarlierBatch
                        ? std::max(lane.maxSeqBeforeBatch,
                                   lane.maxSeqInBatch)
                        : lane.maxSeqInBatch;
                lane.anyEarlierBatch = true;
                lane.batchTick = rec.tick;
                lane.maxSeqInBatch = depart_seq;
            } else {
                lane.maxSeqInBatch =
                    std::max(lane.maxSeqInBatch, depart_seq);
            }
            if (lane.anyEarlierBatch &&
                depart_seq < lane.maxSeqBeforeBatch) {
                ++report.reorderedArrivals;
            }
        }
    }

    report.lanesAudited = lanes.size();
    for (const auto &[lane_id, lane] : lanes)
        report.undeliveredDeparts += lane.outstanding.size();
    return report;
}

} // namespace netcrafter::obs
