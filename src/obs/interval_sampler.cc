#include "src/obs/interval_sampler.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "src/sim/logging.hh"

namespace netcrafter::obs {

namespace {

/** Per-lane metrics discovered from the record stream. */
enum Metric : std::uint8_t {
    Flits,
    WireBytes,
    UsedBytes,
    StitchedPieces,
    WalksStarted,
    WalksCompleted,
    WalksInFlight,
    PoolingArms,
    Ejects,
    Stitches,
    Trims,
    PacketsInjected,
    PacketsDelivered,
};

const char *
metricName(Metric m)
{
    switch (m) {
      case Flits: return "flits";
      case WireBytes: return "wireBytes";
      case UsedBytes: return "usedBytes";
      case StitchedPieces: return "stitchedPieces";
      case WalksStarted: return "walksStarted";
      case WalksCompleted: return "walksCompleted";
      case WalksInFlight: return "walksInFlight";
      case PoolingArms: return "poolingArms";
      case Ejects: return "ejects";
      case Stitches: return "stitches";
      case Trims: return "trims";
      case PacketsInjected: return "packetsInjected";
      case PacketsDelivered: return "packetsDelivered";
    }
    return "(invalid)";
}

/** Metrics a record contributes to, with the value added per metric. */
struct Contribution
{
    Metric metric;
    std::uint64_t value;
};

std::size_t
contributionsOf(const TraceRecord &rec, Contribution out[4])
{
    const auto stage = static_cast<TraceStage>(rec.stage);
    switch (stage) {
      case TraceStage::WireDepart:
        out[0] = {Flits, 1};
        out[1] = {WireBytes, rec.a >> 16};
        out[2] = {UsedBytes, rec.a & 0xffffu};
        out[3] = {StitchedPieces, rec.b >> 16};
        return 4;
      case TraceStage::WalkStart:
        out[0] = {WalksStarted, 1};
        return 1;
      case TraceStage::WalkEnd:
        out[0] = {WalksCompleted, 1};
        return 1;
      case TraceStage::CtrlArm:
        out[0] = {PoolingArms, 1};
        return 1;
      case TraceStage::CtrlEject:
        out[0] = {Ejects, 1};
        return 1;
      case TraceStage::CtrlStitch:
        out[0] = {Stitches, 1};
        return 1;
      case TraceStage::CtrlTrim:
        out[0] = {Trims, 1};
        return 1;
      case TraceStage::RdmaInject:
        out[0] = {PacketsInjected, 1};
        return 1;
      case TraceStage::RdmaDeliver:
        out[0] = {PacketsDelivered, 1};
        return 1;
      default:
        return 0;
    }
}

} // namespace

TimeSeries
IntervalSampler::sample(const std::vector<TraceRecord> &records,
                        const std::vector<std::string> &lane_names) const
{
    TimeSeries series;
    series.interval = interval_;
    if (interval_ == 0 || records.empty())
        return series;

    // Pass 1: discover (lane, metric) columns. std::map keys sort by
    // lane name then metric enum order, fixing the column order.
    std::map<std::pair<std::string, Metric>, std::size_t> columns;
    Contribution contribs[4];
    auto laneName = [&](std::uint16_t lane) -> const std::string & {
        NC_ASSERT(lane < lane_names.size(), "unknown trace lane ", lane);
        return lane_names[lane];
    };
    for (const TraceRecord &rec : records) {
        const std::size_t n = contributionsOf(rec, contribs);
        for (std::size_t i = 0; i < n; ++i)
            columns.emplace(
                std::make_pair(laneName(rec.lane), contribs[i].metric), 0);
        if (n > 0 && (contribs[0].metric == WalksStarted ||
                      contribs[0].metric == WalksCompleted)) {
            columns.emplace(
                std::make_pair(laneName(rec.lane), WalksInFlight), 0);
        }
    }
    if (columns.empty())
        return series;
    std::size_t idx = 0;
    for (auto &[key, col] : columns) {
        col = idx++;
        series.columns.push_back(key.first + "." + metricName(key.second));
    }

    // Per-lane running walk concurrency, read at each interval boundary.
    std::map<std::string, std::int64_t> walks_in_flight;

    // Pass 2: accumulate rows. Records are sorted by tick, so one sweep
    // suffices; empty intervals still get a row (zeros + carried gauges).
    const Tick last_tick = records.back().tick;
    const Tick num_intervals = last_tick / interval_ + 1;
    std::vector<std::uint64_t> acc(columns.size(), 0);
    std::size_t next = 0;
    for (Tick iv = 0; iv < num_intervals; ++iv) {
        const Tick start = iv * interval_;
        const Tick end = start + interval_; // exclusive
        std::fill(acc.begin(), acc.end(), 0);
        while (next < records.size() && records[next].tick < end) {
            const TraceRecord &rec = records[next++];
            const std::size_t n = contributionsOf(rec, contribs);
            for (std::size_t i = 0; i < n; ++i) {
                const auto it = columns.find(
                    {laneName(rec.lane), contribs[i].metric});
                acc[it->second] += contribs[i].value;
                if (contribs[i].metric == WalksStarted)
                    ++walks_in_flight[laneName(rec.lane)];
                else if (contribs[i].metric == WalksCompleted)
                    --walks_in_flight[laneName(rec.lane)];
            }
        }
        for (const auto &[lane, count] : walks_in_flight) {
            const auto it = columns.find({lane, WalksInFlight});
            if (it != columns.end())
                acc[it->second] =
                    static_cast<std::uint64_t>(std::max<std::int64_t>(
                        count, 0));
        }
        TimeSeries::Row row;
        row.intervalStart = start;
        row.values = acc;
        series.rows.push_back(std::move(row));
    }
    return series;
}

void
writeTimeSeriesCsv(const TimeSeries &series, std::ostream &os)
{
    os << "interval_start";
    for (const std::string &col : series.columns)
        os << ',' << col;
    os << '\n';
    for (const TimeSeries::Row &row : series.rows) {
        os << row.intervalStart;
        for (const std::uint64_t v : row.values)
            os << ',' << v;
        os << '\n';
    }
}

} // namespace netcrafter::obs
