/**
 * @file
 * Core observability types: trace levels, the 32-byte binary
 * TraceRecord emitted by tracepoints, and the TraceOptions that
 * configure a traced run (from code or from NETCRAFTER_TRACE_*
 * environment variables).
 *
 * Design constraints, in priority order:
 *  - zero overhead when disabled: the tracepoint helper (see
 *    trace_buffer.hh) compiles down to one pointer null-check, and the
 *    whole facility can be compiled out with -DNETCRAFTER_DISABLE_TRACING;
 *  - bit-identical output across shard counts: every TraceRecord field
 *    is derived from simulated state only (ticks, packet ids, byte
 *    counts), never from host time or execution order, so a total-order
 *    sort over all fields reproduces one canonical stream no matter
 *    which shard recorded what.
 */

#ifndef NETCRAFTER_OBS_TRACE_HH
#define NETCRAFTER_OBS_TRACE_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/sim/types.hh"

namespace netcrafter::obs {

/**
 * How much the tracepoints record. Levels are cumulative: each tier
 * includes everything below it.
 */
enum class TraceLevel : std::uint8_t {
    Off = 0,     ///< tracing disabled; tracepoints are a null-check
    Links = 1,   ///< wire flit transfers, PTW walks, controller decisions
    Packets = 2, ///< + RDMA packet inject/deliver and request completion
    Full = 3,    ///< + per-access L1/TLB/L2/DRAM/switch stages
};

/** What a TraceRecord describes; selects how a/b are interpreted. */
enum class TraceKind : std::uint8_t {
    PktStage = 0,     ///< a packet (or walk) reached a lifecycle stage
    FlitXfer = 1,     ///< a flit crossed a wire or switch
    Gauge = 2,        ///< a sampled level (a = value)
    CtrlDecision = 3, ///< a NetCrafterController decision
};

/** The lifecycle stage a record marks. */
enum class TraceStage : std::uint8_t {
    Coalesce = 0,
    L1Lookup,
    L1Miss,
    TlbLookup,
    TlbMiss,
    WalkStart,
    WalkEnd,
    RdmaInject,
    RdmaDeliver,
    SwitchRoute,
    WireDepart,
    WireArrive,
    L2Lookup,
    L2Miss,
    DramAccess,
    Complete,
    CtrlArm,
    CtrlEject,
    CtrlStitch,
    CtrlTrim,
    ServeArrive,
    ServeRetire,
    FlowTransit,
    FlowDeliver,
};

/** Number of TraceStage values (for tables indexed by stage). */
inline constexpr std::size_t kNumTraceStages = 24;

/** Stable lower-case name for a stage ("wireDepart", "walkStart", ...). */
const char *traceStageName(TraceStage stage);

/**
 * One binary trace event. 32 bytes, trivially copyable, and totally
 * ordered over *all* fields so that merging per-shard streams by
 * std::sort yields one canonical sequence: two records that compare
 * equal are byte-identical, so ties cannot introduce shard-count
 * dependent orderings.
 *
 * Field use by kind:
 *  - PktStage:  id = packet id / vpn / line, a,b = stage-specific
 *  - FlitXfer:  id = packet id, a = capacity<<16 | usedBytes,
 *               b = stitchedPieces<<16 | flit seq
 *  - Gauge:     id = 0, a = sampled value
 *  - CtrlDecision: id = packet id, a,b = decision-specific
 */
struct TraceRecord
{
    Tick tick = 0;
    std::uint64_t id = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint16_t lane = 0;
    std::uint8_t kind = 0;
    std::uint8_t stage = 0;
    std::uint32_t pad = 0; ///< keeps the struct a round 32 bytes

    friend auto operator<=>(const TraceRecord &,
                            const TraceRecord &) = default;
};

static_assert(sizeof(TraceRecord) == 32, "TraceRecord must stay compact");

/** Pack the FlitXfer `a` field. */
inline std::uint32_t
packFlitBytes(std::uint32_t capacity, std::uint32_t used_bytes)
{
    return (capacity << 16) | (used_bytes & 0xffffu);
}

/** Pack the FlitXfer `b` field. */
inline std::uint32_t
packFlitSeq(std::uint32_t stitched_pieces, std::uint32_t seq)
{
    return (stitched_pieces << 16) | (seq & 0xffffu);
}

/**
 * Configuration for one traced run. Default-constructed == disabled.
 * When wired from the CLI/environment the three NETCRAFTER_TRACE_OUT /
 * NETCRAFTER_TRACE_LEVEL / NETCRAFTER_SAMPLE_INTERVAL variables map
 * onto outDir / level / sampleInterval.
 */
struct TraceOptions
{
    /** Record tier; Off disables the whole facility. */
    TraceLevel level = TraceLevel::Off;

    /**
     * Directory for trace artifacts (<run>.trace.json,
     * <run>.host.trace.json, <run>.timeseries.csv, <run>.stats.json).
     * Empty keeps everything in memory (tests, benches).
     */
    std::string outDir;

    /**
     * Interval-sampler period in sim ticks; 0 disables time-series
     * sampling.
     */
    Tick sampleInterval = 0;

    /**
     * Per-shard record cap. Records past the cap are counted as
     * dropped; byte-identity across shard counts is only guaranteed
     * when nothing is dropped (smaller shards fill later).
     */
    std::size_t bufferCap = 1u << 22;

    bool enabled() const { return level != TraceLevel::Off; }

    /**
     * Options from the NETCRAFTER_TRACE_* environment, parsed once and
     * cached (same pattern as harness::envScale). Setting
     * NETCRAFTER_TRACE_OUT or NETCRAFTER_SAMPLE_INTERVAL without an
     * explicit level implies level=packets.
     */
    static const TraceOptions &fromEnv();

    /** Parse "off"/"links"/"packets"/"full" (NC_FATAL on junk). */
    static TraceLevel parseLevel(const std::string &text);

    /** Inverse of parseLevel. */
    static const char *levelName(TraceLevel level);
};

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_TRACE_HH
