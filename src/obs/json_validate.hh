/**
 * @file
 * Dependency-free JSON parsing + Chrome-trace validation, used by the
 * trace_validate CLI and the obs tests to check that emitted traces
 * are well-formed and per-lane monotonic without any external schema
 * tooling in the container/CI image.
 */

#ifndef NETCRAFTER_OBS_JSON_VALIDATE_HH
#define NETCRAFTER_OBS_JSON_VALIDATE_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace netcrafter::obs {

/** A parsed JSON document node (recursive). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text into @p out. Returns false and fills @p err (when
 * non-null) on malformed input. Handles the full JSON grammar the
 * repo's writers emit: objects, arrays, strings with escapes, numbers,
 * booleans, null.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string *err);

/** What validateChromeTrace saw, for reporting. */
struct ChromeTraceSummary
{
    std::size_t events = 0;
    std::size_t metadata = 0;
    std::size_t slices = 0;
    std::size_t counters = 0;
    std::size_t instants = 0;
    std::size_t asyncs = 0;
    std::size_t lanes = 0; ///< distinct (pid, tid) pairs
    std::size_t pids = 0;  ///< distinct pids
};

/**
 * Validate a parsed Chrome-trace document: top-level object with a
 * "traceEvents" array; every event is an object with a one-character
 * "ph" and a numeric "pid"; timed events carry a numeric "ts"; and per
 * (pid, tid) lane the "X"/"i" timestamps are non-decreasing in
 * document order. Returns false and fills @p err on the first
 * violation.
 */
bool validateChromeTrace(const JsonValue &root, std::string *err,
                         ChromeTraceSummary *summary);

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_JSON_VALIDATE_HH
