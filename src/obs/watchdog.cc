#include "src/obs/watchdog.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "src/sim/logging.hh"

namespace netcrafter::obs {

Watchdog::Watchdog(Options opts, ClockFn clock, ProgressFn progress,
                   DumpFn dump)
    : opts_(std::move(opts)), clock_(std::move(clock)),
      progress_(std::move(progress)), dump_(std::move(dump))
{
    NC_ASSERT(opts_.noProgressSecs > 0,
              "watchdog needs a positive no-progress threshold");
}

bool
Watchdog::poll()
{
    if (triggered_)
        return false;

    const double now = clock_();
    const std::uint64_t progress = progress_();

    if (progress != lastProgress_ || !haveBaseline_ || progress == 0) {
        // Forward progress (or nothing started yet): reset the fuse.
        lastProgress_ = progress;
        lastChange_ = now;
        haveBaseline_ = true;
        idleSecs_ = 0;
        return false;
    }

    idleSecs_ = now - lastChange_;
    if (idleSecs_ < opts_.noProgressSecs)
        return false;

    fire();
    return true;
}

void
Watchdog::fire()
{
    triggered_ = true;

    std::ostringstream record;
    record << "=== NetCrafter watchdog: no simulation progress for "
           << idleSecs_ << " host seconds (threshold "
           << opts_.noProgressSecs << "s, progress counter stuck at "
           << lastProgress_ << ") ===\n";
    if (dump_)
        dump_(record);

    std::cerr << record.str() << std::flush;
    if (!opts_.dumpPath.empty()) {
        std::ofstream out(opts_.dumpPath);
        if (out) {
            out << record.str();
        } else {
            NC_WARN("watchdog could not open dump file '", opts_.dumpPath,
                    "'; flight record went to stderr only");
        }
    }

    if (opts_.abortOnTrigger) {
        std::cerr << "watchdog: aborting (abort-on-trigger set)\n"
                  << std::flush;
        std::abort();
    }
}

} // namespace netcrafter::obs
